// sfrv-eval: end-to-end evaluation campaign driver.
//
// Expands a (benchmark × TypeConfig × CodegenMode) matrix, runs every cell
// through the predecoded simulator engine on a thread pool, and writes a
// schema-versioned JSON report plus a generated Markdown report mirroring
// the paper's Table III / Fig. 5 / Fig. 6 artifacts.
//
//   sfrv-eval --suite table3 --out report          # full paper-sized run
//   sfrv-eval --suite smoke --out eval-ci -j 2     # CI-sized run
//
// The JSON output is deterministic: identical across thread counts and
// across runs, so it can be checked in (BENCH_eval.json) and diffed.
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "eval/campaign.hpp"
#include "sim/jit.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite table3|smoke|nn|nn-smoke] [--out PREFIX] [-j N]\n"
      "          [--benchmarks a,b,...] [--vls a,b,...] [--mem l1|l2|l3]\n"
      "          [--engine predecoded|fused|reference|jit]\n"
      "          [--backend grs|fast] [--opt O0|O1|O2]\n"
      "          [--jit-threshold N] [--wall-clock] [--no-tuner]\n"
      "\n"
      "  --suite       campaign to run (default: table3). nn is the NN\n"
      "                inference/training tier with a VL sweep; nn-smoke is\n"
      "                its reduced-size clone for CI\n"
      "  --out         output prefix; writes PREFIX.json and PREFIX.md\n"
      "                (default: report)\n"
      "  -j, --jobs    worker threads (default: 1)\n"
      "  --benchmarks  comma-separated subset of the suite (default: all)\n"
      "  --vls         comma-separated VL-sweep axis; each point overrides\n"
      "                the strip-mining setvl cap (0 = legacy fixed-lane\n"
      "                lowering). Default: the suite's axis\n"
      "  --mem         memory level: l1=1, l2=10, l3=100 cycles load latency\n"
      "                (default: l1)\n"
      "  --engine      simulator engine; results are engine-independent, only\n"
      "                wall-clock changes (default: $SFRV_ENGINE or predecoded)\n"
      "  --backend     softfloat math backend; bit- and fflags-identical, only\n"
      "                wall-clock changes (default: $SFRV_BACKEND or grs)\n"
      "  --opt         post-lowering optimization level; outputs and QoR are\n"
      "                bit-identical, cycle metrics improve\n"
      "                (default: $SFRV_OPT or O0)\n"
      "  --jit-threshold  jit engine hotness threshold: blocks interpret until\n"
      "                entered more than N times, then compile; 0 compiles on\n"
      "                first entry. Wall-clock only (default: 8)\n"
      "  --wall-clock  record campaign wall time as `wall_ms` in the JSON\n"
      "                report (host-dependent; off by default so reports stay\n"
      "                byte-deterministic)\n"
      "  --no-tuner    skip the Fig. 6 precision-tuning case study\n",
      argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  return static_cast<bool>(out);
}

/// Full-string integer parse: rejects partial parses like "2abc" (std::atoi
/// silently accepted them) and out-of-range values.
bool parse_int(const char* s, int& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const auto comma = arg.find(',', start);
    const auto end = comma == std::string::npos ? arg.size() : comma;
    if (end > start) out.push_back(arg.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfrv;

  std::string suite = "table3";
  std::string out_prefix = "report";
  std::string benchmarks;
  std::string vls;
  std::string mem_level = "l1";
  std::string engine;
  std::string backend;
  std::string opt;
  int jobs = 1;
  int jit_threshold = -1;  // -1: keep the process default
  bool wall_clock = false;
  bool tuner = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--suite") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      suite = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_prefix = v;
    } else if (arg == "-j" || arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!parse_int(v, jobs) || jobs < 1) {
        std::fprintf(stderr, "invalid job count: %s\n", v);
        return 2;
      }
    } else if (arg == "--benchmarks") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      benchmarks = v;
    } else if (arg == "--vls") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      vls = v;
    } else if (arg == "--mem") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      mem_level = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      engine = v;
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      backend = v;
    } else if (arg == "--opt") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt = v;
    } else if (arg == "--jit-threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!parse_int(v, jit_threshold) || jit_threshold < 0) {
        std::fprintf(stderr, "invalid jit threshold: %s\n", v);
        return 2;
      }
    } else if (arg == "--wall-clock") {
      wall_clock = true;
    } else if (arg == "--no-tuner") {
      tuner = false;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  eval::CampaignSpec spec;
  if (suite == "table3") {
    spec = eval::CampaignSpec::table3();
  } else if (suite == "smoke") {
    spec = eval::CampaignSpec::smoke();
  } else if (suite == "nn") {
    spec = eval::CampaignSpec::nn(eval::SuiteScale::Full);
  } else if (suite == "nn-smoke") {
    spec = eval::CampaignSpec::nn(eval::SuiteScale::Smoke);
    spec.name = "nn-smoke";
  } else {
    std::fprintf(stderr, "unknown suite: %s\n", suite.c_str());
    return usage(argv[0]);
  }
  if (!benchmarks.empty()) spec.benchmarks = split_csv(benchmarks);
  if (!vls.empty()) {
    spec.vls.clear();
    for (const auto& tok : split_csv(vls)) {
      int vl = 0;
      if (!parse_int(tok.c_str(), vl) || vl < 0 || vl > 63) {
        std::fprintf(stderr, "invalid VL point: %s (expected 0..63)\n",
                     tok.c_str());
        return 2;
      }
      spec.vls.push_back(vl);
    }
  }
  spec.tuner_study = tuner && spec.tuner_study;
  if (!engine.empty()) {
    try {
      spec.engine = sim::engine_from_name(engine);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (expected predecoded|fused|reference|jit)\n",
                   e.what());
      return usage(argv[0]);
    }
  }
  if (jit_threshold >= 0) {
    sim::jit::set_default_threshold(static_cast<std::uint32_t>(jit_threshold));
  }
  if (!backend.empty()) {
    try {
      spec.backend = fp::backend_from_name(backend);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (!opt.empty()) {
    try {
      spec.opt = ir::opt_from_name(opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (mem_level == "l1") {
    spec.mem.set_level(sim::kMemL1);
  } else if (mem_level == "l2") {
    spec.mem.set_level(sim::kMemL2);
  } else if (mem_level == "l3") {
    spec.mem.set_level(sim::kMemL3);
  } else {
    std::fprintf(stderr, "unknown memory level: %s\n", mem_level.c_str());
    return usage(argv[0]);
  }

  try {
    const std::size_t n_cells = eval::expand_matrix(spec).size();
    std::printf("sfrv-eval: suite %s, engine %s, backend %s, opt %s, "
                "%zu cells, %d job(s)%s\n",
                spec.name.c_str(),
                std::string(sim::engine_name(spec.engine)).c_str(),
                std::string(fp::backend_name(spec.backend)).c_str(),
                std::string(ir::opt_name(spec.opt)).c_str(), n_cells,
                jobs, spec.runs_tuner() ? ", tuner study" : "");
    const auto t0 = std::chrono::steady_clock::now();
    eval::EvalReport report = eval::run_campaign(spec, jobs);
    if (wall_clock) {
      report.wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
    }

    const std::string json_path = out_prefix + ".json";
    const std::string md_path = out_prefix + ".md";
    if (!write_file(json_path, eval::to_json(report).dump(2) + "\n") ||
        !write_file(md_path, eval::render_markdown(report))) {
      std::fprintf(stderr, "failed to write %s / %s\n", json_path.c_str(),
                   md_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu cells) and %s\n", json_path.c_str(),
                report.cells.size(), md_path.c_str());
    if (report.has_tuner && report.tuner.found) {
      std::printf("tuned assignment: data=%s acc=%s (accuracy %.1f%%)\n",
                  std::string(ir::type_name(report.tuner.best.data)).c_str(),
                  std::string(ir::type_name(report.tuner.best.acc)).c_str(),
                  100 * report.tuner.best.qor);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfrv-eval: %s\n", e.what());
    return 1;
  }
  return 0;
}
