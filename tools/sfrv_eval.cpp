// sfrv-eval: end-to-end evaluation campaign driver.
//
// Expands a (benchmark × TypeConfig × CodegenMode) matrix, runs every cell
// through the predecoded simulator engine on a thread pool, and writes a
// schema-versioned JSON report plus a generated Markdown report mirroring
// the paper's Table III / Fig. 5 / Fig. 6 artifacts.
//
//   sfrv-eval --suite table3 --out report          # full paper-sized run
//   sfrv-eval --suite smoke --out eval-ci -j 2     # CI-sized run
//   sfrv-eval --serve 7475 --cache-dir .cells      # eval-as-a-service daemon
//   sfrv-eval --connect 7475 --suite smoke --out r # thin client
//
// The JSON output is deterministic: identical across thread counts, across
// runs, across cold/warm cell-store passes, and across local vs. --connect
// execution — so it can be checked in (BENCH_eval.json) and diffed.
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "eval/campaign.hpp"
#include "eval/service.hpp"
#include "sim/jit.hpp"
#include "util/verify.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite table3|smoke|nn|nn-smoke] [--out PREFIX] [-j N]\n"
      "          [--benchmarks a,b,...] [--vls a,b,...] [--mem l1|l2|l3]\n"
      "          [--engine predecoded|fused|reference|jit]\n"
      "          [--backend grs|fast] [--opt O0|O1|O2]\n"
      "          [--jit-threshold N] [--verify] [--wall-clock] [--no-tuner]\n"
      "          [--serve ADDR] [--connect ADDR] [--shutdown ADDR]\n"
      "          [--cache-dir DIR] [--cache-bench]\n"
      "          [--list benchmarks|suites|engines|backends|opts]\n"
      "\n"
      "  --suite       campaign to run (default: table3). nn is the NN\n"
      "                inference/training tier with a VL sweep; nn-smoke is\n"
      "                its reduced-size clone for CI\n"
      "  --out         output prefix; writes PREFIX.json and PREFIX.md\n"
      "                (default: report)\n"
      "  -j, --jobs    worker threads (default: 1)\n"
      "  --benchmarks  comma-separated subset of the suite (default: all)\n"
      "  --vls         comma-separated VL-sweep axis; each point overrides\n"
      "                the strip-mining setvl cap (0 = legacy fixed-lane\n"
      "                lowering). Default: the suite's axis\n"
      "  --mem         memory level: l1=1, l2=10, l3=100 cycles load latency\n"
      "                (default: l1)\n"
      "  --engine      simulator engine; results are engine-independent, only\n"
      "                wall-clock changes (default: $SFRV_ENGINE or predecoded)\n"
      "  --backend     softfloat math backend; bit- and fflags-identical, only\n"
      "                wall-clock changes (default: $SFRV_BACKEND or grs)\n"
      "  --opt         post-lowering optimization level; outputs and QoR are\n"
      "                bit-identical, cycle metrics improve\n"
      "                (default: $SFRV_OPT or O0)\n"
      "  --jit-threshold  jit engine hotness threshold: blocks interpret until\n"
      "                entered more than N times, then compile; 0 compiles on\n"
      "                first entry. Wall-clock only (default: 8)\n"
      "  --verify      enable per-pass pipeline verification (equivalent to\n"
      "                SFRV_VERIFY=1): statically check every lowered kernel,\n"
      "                superblock program, and compiled trace, and abort with\n"
      "                a pass-attributed diagnostic on the first violation\n"
      "  --wall-clock  record campaign wall time as `wall_ms` in the JSON\n"
      "                report (host-dependent; off by default so reports stay\n"
      "                byte-deterministic)\n"
      "  --no-tuner    skip the Fig. 6 precision-tuning case study\n"
      "  --serve       run as a daemon on ADDR (\"PORT\", \"HOST:PORT\", or a\n"
      "                Unix socket path); concurrent clients share one\n"
      "                content-addressed cell store. Blocks until --shutdown\n"
      "  --connect     submit the campaign to a daemon at ADDR instead of\n"
      "                running locally; output files are byte-identical to a\n"
      "                local run\n"
      "  --shutdown    ask the daemon at ADDR to exit\n"
      "  --cache-dir   persist the cell store under DIR (one JSON entry per\n"
      "                content address, atomic-rename writes); later runs\n"
      "                reuse any cell whose address matches\n"
      "  --cache-bench run the campaign twice in-process (cold, then warm from\n"
      "                the store), verify the reports are byte-identical, and\n"
      "                record {hits, misses, cold_ms, warm_ms} in the JSON\n"
      "                report (implies --wall-clock)\n"
      "  --list        print the known names of a kind, one per line, and exit\n",
      argv0);
  return 2;
}

int run_list(const std::string& kind) {
  using namespace sfrv;
  if (kind == "benchmarks") {
    // The smoke suite carries every benchmark name (the full suite at full
    // problem sizes would train the paper SVM fixture just to print names).
    for (const auto& b : eval::eval_suite(eval::SuiteScale::Smoke)) {
      std::printf("%s\n", b.bench.name.c_str());
    }
  } else if (kind == "suites") {
    std::printf("table3\nsmoke\nnn\nnn-smoke\n");
  } else if (kind == "engines") {
    std::printf("reference\npredecoded\nfused\njit\n");
  } else if (kind == "backends") {
    std::printf("grs\nfast\n");
  } else if (kind == "opts") {
    std::printf("O0\nO1\nO2\n");
  } else {
    std::fprintf(stderr,
                 "unknown list kind: %s (expected "
                 "benchmarks|suites|engines|backends|opts)\n",
                 kind.c_str());
    return 2;
  }
  return 0;
}

void print_cache_line(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t lookups = hits + misses;
  const double rate =
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits) /
                         static_cast<double>(lookups);
  std::printf("cache: %llu hits, %llu misses (hit rate: %.1f%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), rate);
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  return static_cast<bool>(out);
}

/// Full-string integer parse: rejects partial parses like "2abc" (std::atoi
/// silently accepted them) and out-of-range values.
bool parse_int(const char* s, int& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const auto comma = arg.find(',', start);
    const auto end = comma == std::string::npos ? arg.size() : comma;
    if (end > start) out.push_back(arg.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfrv;

  std::string suite = "table3";
  std::string out_prefix = "report";
  std::string benchmarks;
  std::string vls;
  std::string mem_level = "l1";
  std::string engine;
  std::string backend;
  std::string opt;
  std::string serve_addr;
  std::string connect_addr;
  std::string shutdown_addr;
  std::string cache_dir;
  std::string list_kind;
  int jobs = 1;
  int jit_threshold = -1;  // -1: keep the process default
  bool wall_clock = false;
  bool cache_bench = false;
  bool tuner = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--suite") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      suite = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_prefix = v;
    } else if (arg == "-j" || arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!parse_int(v, jobs) || jobs < 1) {
        std::fprintf(stderr, "invalid job count: %s\n", v);
        return 2;
      }
    } else if (arg == "--benchmarks") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      benchmarks = v;
    } else if (arg == "--vls") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      vls = v;
    } else if (arg == "--mem") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      mem_level = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      engine = v;
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      backend = v;
    } else if (arg == "--opt") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt = v;
    } else if (arg == "--jit-threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!parse_int(v, jit_threshold) || jit_threshold < 0) {
        std::fprintf(stderr, "invalid jit threshold: %s\n", v);
        return 2;
      }
    } else if (arg == "--serve") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      serve_addr = v;
    } else if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      connect_addr = v;
    } else if (arg == "--shutdown") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      shutdown_addr = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cache_dir = v;
    } else if (arg == "--cache-bench") {
      cache_bench = true;
      wall_clock = true;
    } else if (arg == "--list") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      list_kind = v;
    } else if (arg == "--verify") {
      sfrv::verify::set_enabled(true);
    } else if (arg == "--wall-clock") {
      wall_clock = true;
    } else if (arg == "--no-tuner") {
      tuner = false;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (!list_kind.empty()) return run_list(list_kind);
  if (!shutdown_addr.empty()) {
    try {
      eval::shutdown_remote(shutdown_addr);
      std::printf("sfrv-eval: daemon at %s shut down\n", shutdown_addr.c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sfrv-eval: %s\n", e.what());
      return 1;
    }
  }

  eval::CampaignSpec spec;
  if (suite == "table3") {
    spec = eval::CampaignSpec::table3();
  } else if (suite == "smoke") {
    spec = eval::CampaignSpec::smoke();
  } else if (suite == "nn") {
    spec = eval::CampaignSpec::nn(eval::SuiteScale::Full);
  } else if (suite == "nn-smoke") {
    spec = eval::CampaignSpec::nn(eval::SuiteScale::Smoke);
    spec.name = "nn-smoke";
  } else {
    std::fprintf(stderr, "unknown suite: %s\n", suite.c_str());
    return usage(argv[0]);
  }
  if (!benchmarks.empty()) spec.benchmarks = split_csv(benchmarks);
  if (!vls.empty()) {
    spec.vls.clear();
    for (const auto& tok : split_csv(vls)) {
      int vl = 0;
      if (!parse_int(tok.c_str(), vl) || vl < 0 || vl > 63) {
        std::fprintf(stderr, "invalid VL point: %s (expected 0..63)\n",
                     tok.c_str());
        return 2;
      }
      spec.vls.push_back(vl);
    }
  }
  spec.tuner_study = tuner && spec.tuner_study;
  if (!engine.empty()) {
    try {
      spec.engine = sim::engine_from_name(engine);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (expected predecoded|fused|reference|jit)\n",
                   e.what());
      return usage(argv[0]);
    }
  }
  if (jit_threshold >= 0) {
    sim::jit::set_default_threshold(static_cast<std::uint32_t>(jit_threshold));
  }
  if (!backend.empty()) {
    try {
      spec.backend = fp::backend_from_name(backend);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (!opt.empty()) {
    try {
      spec.opt = ir::opt_from_name(opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (mem_level == "l1") {
    spec.mem.set_level(sim::kMemL1);
  } else if (mem_level == "l2") {
    spec.mem.set_level(sim::kMemL2);
  } else if (mem_level == "l3") {
    spec.mem.set_level(sim::kMemL3);
  } else {
    std::fprintf(stderr, "unknown memory level: %s\n", mem_level.c_str());
    return usage(argv[0]);
  }

  if (!serve_addr.empty()) {
    try {
      eval::ServeOptions opts;
      opts.address = serve_addr;
      opts.jobs = jobs;
      opts.cache_dir = cache_dir;
      eval::serve(opts);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sfrv-eval: %s\n", e.what());
      return 1;
    }
  }

  const std::string json_path = out_prefix + ".json";
  const std::string md_path = out_prefix + ".md";

  if (!connect_addr.empty()) {
    try {
      const std::size_t n_cells = eval::expand_matrix(spec).size();
      std::printf("sfrv-eval: suite %s -> daemon at %s, %zu cells\n",
                  spec.name.c_str(), connect_addr.c_str(), n_cells);
      const eval::ClientResult r =
          eval::run_remote(connect_addr, spec, jobs, wall_clock);
      if (!write_file(json_path, r.json) || !write_file(md_path, r.md)) {
        std::fprintf(stderr, "failed to write %s / %s\n", json_path.c_str(),
                     md_path.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu cells) and %s\n", json_path.c_str(), r.cells,
                  md_path.c_str());
      print_cache_line(r.hits, r.misses);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sfrv-eval: %s\n", e.what());
      return 1;
    }
  }

  try {
    const std::size_t n_cells = eval::expand_matrix(spec).size();
    std::printf("sfrv-eval: suite %s, engine %s, backend %s, opt %s, "
                "%zu cells, %d job(s)%s\n",
                spec.name.c_str(),
                std::string(sim::engine_name(spec.engine)).c_str(),
                std::string(fp::backend_name(spec.backend)).c_str(),
                std::string(ir::opt_name(spec.opt)).c_str(), n_cells,
                jobs, spec.runs_tuner() ? ", tuner study" : "");
    std::unique_ptr<eval::CellStore> store;
    if (!cache_dir.empty() || cache_bench) {
      store = std::make_unique<eval::CellStore>(cache_dir);
    }
    const auto t0 = std::chrono::steady_clock::now();
    eval::EvalReport report = eval::run_campaign(spec, jobs, store.get());
    const auto t1 = std::chrono::steady_clock::now();
    const double cold_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (cache_bench) {
      const eval::EvalReport warm = eval::run_campaign(spec, jobs, store.get());
      const double warm_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t1)
                                 .count();
      // The cache-correctness contract, checked in-process: a fully cached
      // rerun must serialize bit-for-bit like the cold pass (telemetry is
      // not attached yet, so the dumps are directly comparable).
      if (eval::to_json(report).dump(2) != eval::to_json(warm).dump(2) ||
          eval::render_markdown(report) != eval::render_markdown(warm)) {
        std::fprintf(stderr,
                     "sfrv-eval: cache determinism violation: warm report "
                     "differs from cold\n");
        return 1;
      }
      report.has_cache = true;
      report.cache.hits = warm.cache.hits;  // warm pass: every lookup hits
      report.cache.misses = warm.cache.misses;
      report.cache.cold_ms = cold_ms;
      report.cache.warm_ms = warm_ms;
      std::printf("cache bench: cold %.1f ms, warm %.1f ms (%.1fx)\n", cold_ms,
                  warm_ms, warm_ms > 0 ? cold_ms / warm_ms : 0.0);
      print_cache_line(report.cache.hits, report.cache.misses);
    } else if (store != nullptr) {
      if (wall_clock) report.has_cache = true;
      print_cache_line(report.cache.hits, report.cache.misses);
    }
    if (wall_clock) report.wall_ms = cold_ms;

    if (!write_file(json_path, eval::to_json(report).dump(2) + "\n") ||
        !write_file(md_path, eval::render_markdown(report))) {
      std::fprintf(stderr, "failed to write %s / %s\n", json_path.c_str(),
                   md_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu cells) and %s\n", json_path.c_str(),
                report.cells.size(), md_path.c_str());
    if (report.has_tuner && report.tuner.found) {
      std::printf("tuned assignment: data=%s acc=%s (accuracy %.1f%%)\n",
                  std::string(ir::type_name(report.tuner.best.data)).c_str(),
                  std::string(ir::type_name(report.tuner.best.acc)).c_str(),
                  100 * report.tuner.best.qor);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfrv-eval: %s\n", e.what());
    return 1;
  }
  return 0;
}
