// gen-isa-doc: render the generated ISA reference (docs/isa-reference.md)
// from the opcode tables. With no argument the document goes to stdout.
//
//   ./build/tools/gen-isa-doc docs/isa-reference.md
#include <cstdio>
#include <fstream>

#include "isa/docgen.hpp"

int main(int argc, char** argv) {
  const std::string doc = sfrv::isa::render_isa_reference();
  if (argc < 2) {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return 0;
  }
  std::ofstream out(argv[1], std::ios::binary);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "gen-isa-doc: failed to write %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %s (%zu bytes)\n", argv[1], doc.size());
  return 0;
}
