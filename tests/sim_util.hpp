// Helpers for simulator tests: build a small program with the assembler,
// run it to completion, and inspect the core.
#pragma once

#include <functional>

#include "asmb/assembler.hpp"
#include "sim/core.hpp"

namespace sfrv::test {

struct RunOptions {
  isa::IsaConfig cfg = isa::IsaConfig::full();
  sim::MemConfig mem{};
  sim::Timing timing{};
};

/// Assemble `body` (which must end the program, e.g. with ebreak), run it,
/// and return the halted core for inspection.
inline sim::Core run_program(const std::function<void(asmb::Assembler&)>& body,
                             RunOptions opts = {}) {
  asmb::Assembler a;
  body(a);
  sim::Core core(opts.cfg, opts.mem, opts.timing);
  core.load_program(a.finish());
  const auto result = core.run(50'000'000);
  if (result != sim::Core::RunResult::Halted) {
    throw std::runtime_error("test program did not halt");
  }
  return core;
}

}  // namespace sfrv::test
