// Post-lowering optimizer (ir/opt.hpp) test suite.
//
//  * Differential matrix: every smoke-suite kernel at every type config and
//    code generator must produce bit-identical outputs, fflags, and array
//    digests at O1/O2 vs O0, under every engine x backend pair — the
//    optimizer's core contract (per-element FP operation order preserved).
//  * Dead-glue elimination unit tests on synthetic programs: load/load and
//    store/load forwarding, addi-chain merging, liveness DCE, branch
//    retargeting after compaction, alias conservatism, and the bail-out on
//    position-dependent control flow.
//  * Regression tests for the cycle-attribution bugfixes: ideal_cycles
//    overlap dedup + vl validation, and inner_ranges normalization.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "asmb/assembler.hpp"
#include "eval/campaign.hpp"
#include "ir/opt.hpp"
#include "kernels/polybench.hpp"
#include "kernels/runner.hpp"
#include "sim/core.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using ir::OptConfig;
namespace reg = asmb::reg;

// ---- OptConfig plumbing -----------------------------------------------------

TEST(OptConfig, LevelNamesRoundTrip) {
  EXPECT_EQ(ir::opt_name(OptConfig::O0()), "O0");
  EXPECT_EQ(ir::opt_name(OptConfig::O1()), "O1");
  EXPECT_EQ(ir::opt_name(OptConfig::O2()), "O2");
  EXPECT_EQ(ir::opt_name(OptConfig{2, true, false}), "custom");
  for (const char* name : {"O0", "O1", "O2"}) {
    EXPECT_EQ(ir::opt_name(ir::opt_from_name(name)), name);
  }
  EXPECT_THROW((void)ir::opt_from_name("O3"), std::runtime_error);
  EXPECT_THROW((void)ir::opt_from_name(""), std::runtime_error);
}

TEST(OptConfig, EnvParsingWarnsAndFallsBack) {
  EXPECT_EQ(ir::opt_from_env(nullptr), OptConfig::O0());
  EXPECT_EQ(ir::opt_from_env(""), OptConfig::O0());
  EXPECT_EQ(ir::opt_from_env("O2"), OptConfig::O2());
  EXPECT_EQ(ir::opt_from_env("bogus"), OptConfig::O0());  // warn + fallback
}

TEST(OptConfig, ValidateRejectsBadUnrollFactors) {
  for (const int bad : {0, -1, 3, 5, 6, 7, 16}) {
    EXPECT_THROW(ir::validate(OptConfig{bad, false, false}),
                 std::runtime_error)
        << "unroll factor " << bad;
  }
  for (const int ok : {1, 2, 4, 8}) {
    EXPECT_NO_THROW(ir::validate(OptConfig{ok, true, true}));
  }
}

// ---- differential matrix ----------------------------------------------------

std::uint64_t output_digest(const kernels::RunResult& r,
                            const std::vector<std::string>& names) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& name : names) {
    const auto& v = r.outputs.at(name);
    mix(v.data(), v.size() * sizeof(double));
  }
  return h;
}

TEST(OptDifferential, BitIdenticalAcrossLevelsEnginesBackends) {
  const auto& suite = eval::eval_suite(eval::SuiteScale::Smoke);
  for (const auto& b : suite) {
    for (const auto& tc : eval::default_type_configs()) {
      for (const auto mode :
           {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
            ir::CodegenMode::ManualVec}) {
        const kernels::KernelSpec spec = b.bench.make(tc.tc);
        const auto base = kernels::run_kernel(
            spec, mode, {}, isa::IsaConfig::full(), sim::Engine::Predecoded,
            fp::MathBackend::Grs, OptConfig::O0());
        const auto base_digest = output_digest(base, spec.output_arrays);
        for (const auto& opt : {OptConfig::O1(), OptConfig::O2()}) {
          for (const auto engine :
               {sim::Engine::Predecoded, sim::Engine::Fused,
                sim::Engine::Reference}) {
            for (const auto backend :
                 {fp::MathBackend::Grs, fp::MathBackend::Fast}) {
              const auto r = kernels::run_kernel(
                  spec, mode, {}, isa::IsaConfig::full(), engine, backend,
                  opt);
              const std::string where =
                  b.bench.name + "/" + tc.name + "/" +
                  std::string(ir::mode_name(mode)) + "/" +
                  std::string(ir::opt_name(opt)) + "/" +
                  std::string(sim::engine_name(engine)) + "/" +
                  std::string(fp::backend_name(backend));
              EXPECT_EQ(r.fflags, base.fflags) << where;
              EXPECT_EQ(output_digest(r, spec.output_arrays), base_digest)
                  << where;
              for (const auto& name : spec.output_arrays) {
                const auto& got = r.outputs.at(name);
                const auto& want = base.outputs.at(name);
                ASSERT_EQ(got.size(), want.size()) << where;
                EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                      got.size() * sizeof(double)),
                          0)
                    << where << " array " << name;
              }
            }
          }
        }
      }
    }
  }
}

TEST(OptDifferential, OptimizedLevelsReduceCycles) {
  // The glue-bound kernels the bench records: O2 must be a real win, not a
  // wash (the >= 1.3x acceptance bar lives in bench_dispatch's JSON; here a
  // conservative floor guards against regressions at smoke sizes).
  const auto tc = kernels::TypeConfig::uniform(ir::ScalarType::F16);
  const auto spec = kernels::make_gemm(tc, 16, 16, 16);
  for (const auto mode :
       {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
        ir::CodegenMode::ManualVec}) {
    const auto o0 = kernels::run_kernel(spec, mode, {}, isa::IsaConfig::full(),
                                        sim::default_engine(),
                                        fp::default_backend(), OptConfig::O0());
    const auto o2 = kernels::run_kernel(spec, mode, {}, isa::IsaConfig::full(),
                                        sim::default_engine(),
                                        fp::default_backend(), OptConfig::O2());
    EXPECT_LT(static_cast<double>(o2.cycles()),
              0.85 * static_cast<double>(o0.cycles()))
        << ir::mode_name(mode);
  }
}

TEST(OptDifferential, StencilForwardingFires) {
  // fdtd2d's +-1 column offsets make unrolled lanes reload their neighbor's
  // value: the dead-glue pass must forward at least some of those loads.
  const auto tc = kernels::TypeConfig::uniform(ir::ScalarType::F16);
  const auto spec = kernels::make_fdtd2d(tc, 2, 8, 8);
  const auto r = kernels::run_kernel(spec, ir::CodegenMode::Scalar, {},
                                     isa::IsaConfig::full(),
                                     sim::default_engine(),
                                     fp::default_backend(), OptConfig::O2());
  EXPECT_GE(r.lowered.glue.loads_forwarded, 1);
  EXPECT_EQ(ir::opt_name(r.lowered.opt), "O2");
}

// ---- campaign-level QoR invariance ------------------------------------------

TEST(Campaign, QorIsOptInvariant) {
  eval::CampaignSpec spec = eval::CampaignSpec::smoke();
  spec.benchmarks = {"gemm", "fdtd2d"};
  spec.tuner_study = false;
  spec.opt = OptConfig::O0();
  const auto o0 = eval::run_campaign(spec, 2);
  spec.opt = OptConfig::O2();
  const auto o2 = eval::run_campaign(spec, 2);
  ASSERT_EQ(o0.cells.size(), o2.cells.size());
  std::uint64_t c0 = 0, c2 = 0;
  for (std::size_t i = 0; i < o0.cells.size(); ++i) {
    EXPECT_EQ(o0.cells[i].sqnr_db, o2.cells[i].sqnr_db)
        << o0.cells[i].benchmark << "/" << o0.cells[i].type_config;
    EXPECT_EQ(o0.cells[i].accuracy, o2.cells[i].accuracy);
    EXPECT_LE(o2.cells[i].cycles, o0.cells[i].cycles);
    c0 += o0.cells[i].cycles;
    c2 += o2.cells[i].cycles;
  }
  EXPECT_LT(c2, c0);
  EXPECT_EQ(o0.opt, "O0");
  EXPECT_EQ(o2.opt, "O2");
}

// ---- cycle-attribution bugfix regressions -----------------------------------

TEST(IdealCycles, RejectsBadVectorLength) {
  const auto tc = kernels::TypeConfig::uniform(ir::ScalarType::F16);
  const auto r = kernels::run_kernel(kernels::make_gemm(tc, 8, 8, 8),
                                     ir::CodegenMode::Scalar);
  EXPECT_THROW((void)r.ideal_cycles(0), std::invalid_argument);
  EXPECT_THROW((void)r.ideal_cycles(-2), std::invalid_argument);
  EXPECT_GT(r.ideal_cycles(2), 0.0);
}

TEST(IdealCycles, OverlappingRangesAttributedOnce) {
  kernels::RunResult r;
  r.text_base = 0x1000;
  r.stats.cycles = 40;
  r.stats.pc_cycles = {10, 10, 10, 10};
  // Overlapping + duplicate ranges used to double-count the shared slots
  // (inner = 60 > total = 40, driving ideal_cycles negative-ish).
  r.lowered.inner_ranges = {{0x1000, 0x1010}, {0x1008, 0x1010},
                            {0x1008, 0x1010}};
  // Merged coverage is the whole text: inner = 40, ideal = 40 - 40 + 40/2.
  EXPECT_DOUBLE_EQ(r.ideal_cycles(2), 20.0);
  EXPECT_DOUBLE_EQ(r.ideal_cycles(1), 40.0);
}

TEST(Lowering, InnerRangesAreNormalized) {
  const auto tc = kernels::TypeConfig::uniform(ir::ScalarType::F16);
  for (const auto& opt : {OptConfig::O0(), OptConfig::O2()}) {
    const auto spec = kernels::make_fdtd2d(tc, 2, 8, 8);
    const auto lk =
        ir::lower(spec.kernel, ir::CodegenMode::ManualVec, spec.init, opt);
    std::uint32_t prev_end = 0;
    for (const auto& [b, e] : lk.inner_ranges) {
      EXPECT_LT(b, e);
      EXPECT_GE(b, prev_end);  // sorted, non-overlapping
      EXPECT_GE(b, lk.program.text_base);
      EXPECT_EQ((b - lk.program.text_base) % 4, 0u);
      EXPECT_EQ((e - lk.program.text_base) % 4, 0u);
      prev_end = e;
    }
    EXPECT_FALSE(lk.inner_ranges.empty());
  }
}

// ---- dead-glue elimination unit tests ---------------------------------------

struct ArchState {
  std::array<std::uint32_t, 32> x{};
  std::array<std::uint64_t, 32> f{};
  std::uint8_t fflags = 0;
  std::vector<std::uint8_t> data;
};

ArchState execute(const asmb::Program& p) {
  sim::Core core;
  core.load_program(p);
  EXPECT_EQ(core.run(), sim::Core::RunResult::Halted);
  ArchState s;
  for (unsigned i = 0; i < 32; ++i) {
    s.x[i] = core.x(i);
    s.f[i] = core.f_bits(i);
  }
  s.fflags = core.fflags();
  s.data.resize(p.data.size());
  if (!s.data.empty()) {
    core.memory().read_block(p.data_base, s.data.data(), s.data.size());
  }
  return s;
}

void expect_same_arch(const asmb::Program& a, const asmb::Program& b) {
  const ArchState sa = execute(a);
  const ArchState sb = execute(b);
  EXPECT_EQ(sa.x, sb.x);
  EXPECT_EQ(sa.f, sb.f);
  EXPECT_EQ(sa.fflags, sb.fflags);
  EXPECT_EQ(sa.data, sb.data);
}

std::size_t count_op(const asmb::Program& p, isa::Op op) {
  std::size_t n = 0;
  for (const auto& i : p.text) n += i.op == op ? 1 : 0;
  return n;
}

using Ranges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

TEST(DeadGlue, ForwardsStoreToLoadAndLoadToLoad) {
  Assembler a;
  const auto buf = a.data_zero(16);
  a.la(reg::t0, buf);
  a.li(reg::t1, 0x3f800000);  // 1.0f
  a.fp_rr(isa::Op::FMV_S_X, reg::ft0, reg::t1);
  a.fsw(reg::ft0, 0, reg::t0);
  a.flw(reg::ft1, 0, reg::t0);  // store-to-load: becomes a copy of ft0
  a.flw(reg::ft2, 0, reg::t0);  // load-to-load: becomes a copy too
  a.fp_rrr(isa::Op::FADD_S, reg::ft3, reg::ft1, reg::ft2);
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges;
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_EQ(gs.loads_forwarded, 2);
  EXPECT_EQ(count_op(prog, isa::Op::FLW), 0u);
  EXPECT_EQ(count_op(prog, isa::Op::FSGNJ_S), 2u);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, DeletesReloadIntoSameRegister) {
  Assembler a;
  const auto buf = a.data_zero(16);
  a.la(reg::t0, buf);
  a.flw(reg::ft1, 4, reg::t0);
  a.flw(reg::ft1, 4, reg::t0);  // exact reload: deleted outright
  a.fp_rrr(isa::Op::FADD_S, reg::ft2, reg::ft1, reg::ft1);
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges;
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_GE(gs.insts_deleted, 1);
  EXPECT_EQ(count_op(prog, isa::Op::FLW), 1u);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, AliasingStoreKillsForwarding) {
  Assembler a;
  const std::uint32_t words[4] = {0, 0x3f800000u, 0, 0};  // buf[4..8) = 1.0f
  const auto buf = a.data_bytes(words, sizeof words, 4);
  a.la(reg::t0, buf);
  a.la(reg::t1, buf + 4);
  a.li(reg::t2, 0x40000000);  // 2.0f
  a.fp_rr(isa::Op::FMV_S_X, reg::ft0, reg::t2);
  a.flw(reg::ft1, 4, reg::t0);  // 1.0f
  a.fsw(reg::ft0, 0, reg::t1);  // same address through another base: aliases
  a.flw(reg::ft2, 4, reg::t0);  // must NOT be forwarded (reads 2.0f)
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges;
  (void)ir::dead_glue_elim(prog, ranges);
  EXPECT_EQ(count_op(prog, isa::Op::FLW), 2u);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, DisjointSameBaseStoreKeepsForwarding) {
  Assembler a;
  const auto buf = a.data_zero(16);
  a.la(reg::t0, buf);
  a.flw(reg::ft1, 4, reg::t0);
  a.fsw(reg::ft0, 8, reg::t0);  // same base, provably disjoint interval
  a.flw(reg::ft2, 4, reg::t0);  // forwarded from ft1
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges;
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_EQ(gs.loads_forwarded, 1);
  EXPECT_EQ(count_op(prog, isa::Op::FLW), 1u);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, MergesAddiChains) {
  Assembler a;
  a.li(reg::t2, 100);
  a.addi(reg::t2, reg::t2, 4);
  a.addi(reg::t2, reg::t2, 8);  // merged into a single +12
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges;
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_EQ(gs.addis_merged, 1);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, InterveningReadBlocksAddiMerge) {
  Assembler a;
  a.li(reg::t2, 100);
  a.addi(reg::t2, reg::t2, 4);
  a.add(reg::t3, reg::t2, reg::t2);  // reads the intermediate value
  a.addi(reg::t2, reg::t2, 8);
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges;
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_EQ(gs.addis_merged, 0);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, DeletesDeadWritesAndRetargetsBranches) {
  Assembler a;
  a.li(reg::t0, 3);
  const auto loop = a.here();
  a.addi(reg::t4, reg::zero, 1);  // dead: overwritten before any read
  a.addi(reg::t4, reg::zero, 2);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);  // back-edge lands on a deleted slot
  a.ebreak();
  auto prog = a.finish();
  const auto original = prog;
  Ranges ranges{{original.text_base + 8,
                 original.text_base + 12}};  // covers the second addi
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_GE(gs.insts_deleted, 1);
  EXPECT_EQ(prog.text.size(), original.text.size() - 1);
  // The inner range followed the compaction.
  EXPECT_EQ(ranges[0].first, original.text_base + 4);
  EXPECT_EQ(ranges[0].second, original.text_base + 8);
  expect_same_arch(original, prog);
}

TEST(DeadGlue, BailsOutOnIndirectControlFlow) {
  Assembler a;
  a.li(reg::t0, 0);
  a.jalr(reg::zero, reg::ra, 0);
  a.ebreak();
  auto prog = a.finish();
  const auto before = prog.text;
  Ranges ranges;
  const auto gs = ir::dead_glue_elim(prog, ranges);
  EXPECT_FALSE(gs.any());
  EXPECT_EQ(prog.text, before);
}

TEST(DeadGlue, EncodedWordsStayInSyncAfterCompaction) {
  Assembler a;
  const auto buf = a.data_zero(16);
  a.la(reg::t0, buf);
  a.flw(reg::ft1, 0, reg::t0);
  a.flw(reg::ft1, 0, reg::t0);
  a.ebreak();
  auto prog = a.finish();
  Ranges ranges;
  (void)ir::dead_glue_elim(prog, ranges);
  ASSERT_EQ(prog.text.size(), prog.text_words.size());
  for (std::size_t i = 0; i < prog.text.size(); ++i) {
    EXPECT_EQ(isa::encode(prog.text[i]), prog.text_words[i]) << i;
  }
}

}  // namespace
}  // namespace sfrv::test
