// Compiler-layer validation: the three code generators (scalar, auto-vec,
// manual-vec) must compute the same results.
//
// For kernels without scalar-reduction reordering (GEMM, SYRK, SYR2K,
// FDTD-2D: all accumulate element-wise in memory), the vectorized code is
// bit-identical to scalar code. Kernels with reductions (ATAX, SVM) may
// legally differ by reassociation, so they are held to golden-reference SQNR
// proximity instead.
#include <gtest/gtest.h>

#include "kernels/qor.hpp"
#include "kernels/suite.hpp"

namespace sfrv::kernels {
namespace {

using ir::CodegenMode;
using ir::ScalarType;

std::vector<double> run_outputs(const KernelSpec& spec, CodegenMode mode) {
  const auto r = run_kernel(spec, mode);
  return r.concat_outputs(spec.output_arrays);
}

std::vector<double> golden_concat(const KernelSpec& spec) {
  std::vector<double> all;
  for (const auto& g : spec.golden) all.insert(all.end(), g.begin(), g.end());
  return all;
}

struct Case {
  const char* bench;
  ScalarType type;
};

class ElementwiseBitExact : public ::testing::TestWithParam<Case> {};

TEST_P(ElementwiseBitExact, AllModesProduceIdenticalBits) {
  const auto [bench, type] = GetParam();
  KernelSpec spec;
  for (const auto& b : benchmark_suite()) {
    if (b.name == bench) spec = b.make(TypeConfig::uniform(type));
  }
  const auto scalar = run_outputs(spec, CodegenMode::Scalar);
  const auto autov = run_outputs(spec, CodegenMode::AutoVec);
  const auto manual = run_outputs(spec, CodegenMode::ManualVec);
  ASSERT_EQ(scalar.size(), autov.size());
  ASSERT_EQ(scalar.size(), manual.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar[i], autov[i]) << bench << " elem " << i << " (auto)";
    ASSERT_EQ(scalar[i], manual[i]) << bench << " elem " << i << " (manual)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ElementwiseBitExact,
    ::testing::Values(Case{"gemm", ScalarType::F16},
                      Case{"gemm", ScalarType::F16Alt},
                      Case{"gemm", ScalarType::F8},
                      Case{"syrk", ScalarType::F16},
                      Case{"syrk", ScalarType::F8},
                      Case{"syr2k", ScalarType::F16},
                      Case{"syr2k", ScalarType::F8},
                      Case{"fdtd2d", ScalarType::F16},
                      Case{"fdtd2d", ScalarType::F16Alt},
                      Case{"fdtd2d", ScalarType::F8}),
    [](const auto& info) {
      return std::string(info.param.bench) + "_" +
             std::string(ir::type_name(info.param.type));
    });

class ReductionSqnrClose : public ::testing::TestWithParam<Case> {};

TEST_P(ReductionSqnrClose, ModesAgreeWithinReassociationNoise) {
  const auto [bench, type] = GetParam();
  KernelSpec spec;
  for (const auto& b : benchmark_suite()) {
    if (b.name == bench) spec = b.make(TypeConfig::uniform(type));
  }
  const auto gold = golden_concat(spec);
  const double s_scalar = sqnr_db(gold, run_outputs(spec, CodegenMode::Scalar));
  const double s_auto = sqnr_db(gold, run_outputs(spec, CodegenMode::AutoVec));
  const double s_manual =
      sqnr_db(gold, run_outputs(spec, CodegenMode::ManualVec));
  // Reassociation may move results, and typically *improves* long reductions
  // (the packed accumulator forms partial sums). Allow a modest loss and a
  // larger gain.
  EXPECT_GT(s_auto, s_scalar - 4.0) << bench;
  EXPECT_LT(s_auto, s_scalar + 16.0) << bench;
  EXPECT_GT(s_manual, s_scalar - 4.0) << bench;
  EXPECT_LT(s_manual, s_scalar + 16.0) << bench;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ReductionSqnrClose,
    ::testing::Values(Case{"atax", ScalarType::F16},
                      Case{"atax", ScalarType::F16Alt},
                      Case{"svm", ScalarType::F16},
                      Case{"svm", ScalarType::F16Alt}),
    [](const auto& info) {
      return std::string(info.param.bench) + "_" +
             std::string(ir::type_name(info.param.type));
    });

TEST(LoweringFloat32, ScalarIsAccurate) {
  for (const auto& b : benchmark_suite()) {
    const auto spec = b.make(TypeConfig::uniform(ScalarType::F32));
    const auto out = run_outputs(spec, CodegenMode::Scalar);
    const double s = sqnr_db(golden_concat(spec), out);
    EXPECT_GT(s, 100.0) << b.name << " float32 scalar SQNR " << s;
  }
}

TEST(LoweringFloat32, VectorModesFallBackToScalar) {
  // float cannot be packed at FLEN=32: auto/manual must emit scalar code
  // with zero vector instructions, and match scalar bit-for-bit.
  const auto spec = make_gemm(TypeConfig::uniform(ScalarType::F32));
  const auto rs = run_kernel(spec, CodegenMode::Scalar);
  const auto rm = run_kernel(spec, CodegenMode::ManualVec);
  EXPECT_EQ(rm.stats.count_where([](isa::Op op) { return isa::is_vector(op); }),
            0u);
  EXPECT_EQ(rs.outputs.at("C"), rm.outputs.at("C"));
}

TEST(LoweringVector, VectorInstructionsActuallyUsed) {
  const auto spec = make_gemm(TypeConfig::uniform(ScalarType::F16));
  const auto r = run_kernel(spec, CodegenMode::ManualVec);
  EXPECT_GT(r.stats.count(isa::Op::VFMAC_R_H), 0u) << "GEMM should vfmac.r";
  const auto spec8 = make_gemm(TypeConfig::uniform(ScalarType::F8));
  const auto r8 = run_kernel(spec8, CodegenMode::ManualVec);
  EXPECT_GT(r8.stats.count(isa::Op::VFMAC_R_B), 0u);
}

TEST(LoweringVector, VectorizationReducesCycles) {
  for (const char* name : {"gemm", "atax", "syrk", "fdtd2d"}) {
    KernelSpec s16;
    for (const auto& b : benchmark_suite()) {
      if (b.name == name) s16 = b.make(TypeConfig::uniform(ScalarType::F16));
    }
    const auto scal = run_kernel(s16, CodegenMode::Scalar);
    const auto man = run_kernel(s16, CodegenMode::ManualVec);
    EXPECT_LT(man.cycles(), scal.cycles()) << name;
  }
}

TEST(LoweringVector, F8FasterThanF16Manual) {
  const auto s16 = make_gemm(TypeConfig::uniform(ScalarType::F16));
  const auto s8 = make_gemm(TypeConfig::uniform(ScalarType::F8));
  const auto r16 = run_kernel(s16, CodegenMode::ManualVec);
  const auto r8 = run_kernel(s8, CodegenMode::ManualVec);
  EXPECT_LT(r8.cycles(), r16.cycles());
}

TEST(LoweringMixed, ManualUsesXfauxAutoUsesConversions) {
  // The Fig. 4/5 signature: mixed precision (f32 accumulator over f16 data).
  const auto& f = svm_fixture();
  const auto spec = make_svm({ScalarType::F16, ScalarType::F32}, f.model, f.test);
  const auto man = run_kernel(spec, CodegenMode::ManualVec);
  EXPECT_GT(man.stats.count(isa::Op::VFDOTPEX_S_H), 0u);
  EXPECT_EQ(man.stats.count(isa::Op::FCVT_S_H), 0u)
      << "manual code needs no conversion instructions";
  const auto aut = run_kernel(spec, CodegenMode::AutoVec);
  EXPECT_GT(aut.stats.count(isa::Op::FCVT_S_H), 0u)
      << "auto-vectorized code converts each product lane";
  EXPECT_GT(aut.stats.count(isa::Op::VFMUL_H), 0u);
  EXPECT_EQ(aut.stats.count(isa::Op::VFDOTPEX_S_H), 0u);
}

TEST(LoweringMixed, ManualMatchesScalarBitForBit) {
  // fmacex (scalar) and vfdotpex (vector) accumulate in the same order with
  // the same single-rounding steps, so mixed manual == mixed scalar exactly.
  const auto& f = svm_fixture();
  const auto spec = make_svm({ScalarType::F16, ScalarType::F32}, f.model, f.test);
  const auto scal = run_kernel(spec, CodegenMode::Scalar);
  const auto man = run_kernel(spec, CodegenMode::ManualVec);
  EXPECT_EQ(scal.outputs.at("scores"), man.outputs.at("scores"));
}

TEST(LoweringExs, WideningConfigsUseTheExSdotpUnit) {
  // The ExSdotp generator's signature shape: a (data, one-step-wider acc)
  // reduction lowers to the packed widening dot product — one vfexsdotp per
  // vector chunk, no per-lane conversion instructions, and none of the
  // 32-bit-accumulator vfdotpex ops.
  const auto& f = svm_fixture();
  struct Pair {
    ScalarType data, acc;
    isa::Op op;
  };
  const Pair pairs[] = {
      {ScalarType::F16, ScalarType::F32, isa::Op::VFEXSDOTP_S_H},
      {ScalarType::F16Alt, ScalarType::F32, isa::Op::VFEXSDOTP_S_AH},
      {ScalarType::F8, ScalarType::F16, isa::Op::VFEXSDOTP_H_B},
      {ScalarType::P8, ScalarType::P16, isa::Op::VFEXSDOTP_P16_P8},
  };
  for (const auto& p : pairs) {
    const auto spec = make_svm({p.data, p.acc}, f.model, f.test);
    const auto exs = run_kernel(spec, CodegenMode::ManualVecExs);
    EXPECT_GT(exs.stats.count(p.op), 0u)
        << ir::type_name(p.data) << "/" << ir::type_name(p.acc);
    EXPECT_EQ(exs.stats.count(isa::Op::VFDOTPEX_S_H) +
                  exs.stats.count(isa::Op::VFDOTPEX_S_AH) +
                  exs.stats.count(isa::Op::VFDOTPEX_S_B),
              0u)
        << ir::type_name(p.data) << ": exsdotp replaces the dotpex family";
    EXPECT_EQ(exs.stats.count(isa::Op::FCVT_S_H), 0u)
        << ir::type_name(p.data) << ": no per-lane conversions";
    // And the reduction is computed correctly (association differs from
    // scalar, so hold to golden proximity like the other reduction modes).
    const double s_scal =
        sqnr_db(golden_concat(spec), run_outputs(spec, CodegenMode::Scalar));
    const double s_exs = sqnr_db(golden_concat(spec), run_outputs(spec, CodegenMode::ManualVecExs));
    EXPECT_GT(s_exs, s_scal - 4.0)
        << ir::type_name(p.data) << "/" << ir::type_name(p.acc);
  }
}

TEST(LoweringExs, UniformConfigsLowerIdenticallyToManualVec) {
  // Without a one-step-wider accumulator there is nothing for the ExSdotp
  // unit to do: the generator must produce the same code as ManualVec —
  // same instruction and cycle counts, bit-identical outputs.
  for (const ScalarType t :
       {ScalarType::F16, ScalarType::F8, ScalarType::P8}) {
    const auto spec = make_gemm(TypeConfig::uniform(t));
    const auto man = run_kernel(spec, CodegenMode::ManualVec);
    const auto exs = run_kernel(spec, CodegenMode::ManualVecExs);
    EXPECT_EQ(man.stats.instructions, exs.stats.instructions)
        << ir::type_name(t);
    EXPECT_EQ(man.cycles(), exs.cycles()) << ir::type_name(t);
    EXPECT_EQ(man.outputs.at("C"), exs.outputs.at("C")) << ir::type_name(t);
    EXPECT_EQ(exs.stats.count(ir::exsdotp_op(t)), 0u) << ir::type_name(t);
  }
}

TEST(LoweringExs, ExpandingF32AccumulatorStillUsesDotpex) {
  // data + F32 accumulator where F32 is NOT one step wider (f8 data): the
  // ExSdotp generator has no opcode for the two-step widening and must keep
  // the ManualVec expanding dot product.
  const auto& f = svm_fixture();
  const auto spec = make_svm({ScalarType::F8, ScalarType::F32}, f.model, f.test);
  const auto exs = run_kernel(spec, CodegenMode::ManualVecExs);
  EXPECT_GT(exs.stats.count(isa::Op::VFDOTPEX_S_B), 0u);
  EXPECT_EQ(exs.stats.count(isa::Op::VFEXSDOTP_H_B), 0u);
  const auto man = run_kernel(spec, CodegenMode::ManualVec);
  EXPECT_EQ(man.outputs.at("scores"), exs.outputs.at("scores"));
}

TEST(LoweringIdeal, IdealCyclesBracketMeasured) {
  const auto spec = make_gemm(TypeConfig::uniform(ScalarType::F16));
  const auto scal = run_kernel(spec, CodegenMode::Scalar);
  const auto man = run_kernel(spec, CodegenMode::ManualVec);
  const double ideal = scal.ideal_cycles(2);
  EXPECT_LT(ideal, static_cast<double>(scal.cycles()));
  // Measured vectorized cycles cannot beat the ideal by more than noise.
  EXPECT_GT(static_cast<double>(man.cycles()), 0.95 * ideal);
}

TEST(LoweringMixed, InvariantVarOperandInVectorLoop) {
  // The atax shape that mixed precision exposes: y[j] += A[i][j] * s with a
  // float accumulator s feeding float16 lanes. The vectorizer must convert
  // s once in the preheader, and all modes must agree bit for bit with the
  // scalar code's rounding-per-element semantics... or at least compute a
  // correct result; atax reductions reassociate, so hold to SQNR proximity.
  const auto spec = make_atax({ScalarType::F16, ScalarType::F32});
  const auto gold = golden_concat(spec);
  for (const auto mode :
       {CodegenMode::Scalar, CodegenMode::AutoVec, CodegenMode::ManualVec}) {
    const auto out = run_outputs(spec, mode);
    EXPECT_GT(sqnr_db(gold, out), 55.0) << ir::mode_name(mode);
  }
}

TEST(LoweringFallback, AllInvariantAccumulateRunsAsScalar) {
  // y[j] += s with s loop-invariant: no streaming operand carries the lanes,
  // so the vectorizer must reject the loop and fall back to scalar code
  // (previously an assert / a silent miscompile in release builds).
  KernelSpec spec;
  ir::Kernel& k = spec.kernel;
  k.name = "invariant_accum";
  const int n = 6;
  const int Y = k.add_array("y", ScalarType::F16, 1, n);
  const int s = k.add_var("s", ScalarType::F16);
  const int i = k.fresh_loop_var();
  const int j = k.fresh_loop_var();
  ir::Loop li{i, 0, ir::Bound::fixed(1), {}};
  li.body.push_back(ir::assign_var(s, ir::Expr::constant(0.25)));
  ir::Loop lj{j, 0, ir::Bound::fixed(n), {}};
  lj.body.push_back(
      ir::accum(ir::ArrayRef{Y, ir::Index::constant(0), ir::Index{j, 0}},
                ir::Expr::variable(s)));
  li.body.push_back(std::move(lj));
  k.body.push_back(std::move(li));
  spec.init.resize(1);
  spec.output_arrays = {"y"};

  for (const auto mode :
       {CodegenMode::Scalar, CodegenMode::AutoVec, CodegenMode::ManualVec}) {
    const auto r = run_kernel(spec, mode);
    for (const double v : r.outputs.at("y")) {
      EXPECT_EQ(v, 0.25) << ir::mode_name(mode);
    }
  }
}

TEST(LoweringFallback, AccumulatedVarReadInSameLoopRunsAsScalar) {
  // {acc += A[j]*B[j]; y[j] += A[j]*acc} reads the reduction variable as an
  // operand of the same loop: the packed accumulator lanes are not the home
  // register, so the loop must not vectorize. All modes then share the
  // scalar lowering and must agree bit for bit.
  KernelSpec spec;
  ir::Kernel& k = spec.kernel;
  k.name = "acc_read";
  const int n = 8;
  const int A = k.add_array("A", ScalarType::F16, 1, n);
  const int B = k.add_array("B", ScalarType::F16, 1, n);
  const int Y = k.add_array("y", ScalarType::F16, 1, n);
  const int acc = k.add_var("acc", ScalarType::F32);
  const int j = k.fresh_loop_var();
  auto ref = [&](int arr) {
    return ir::ArrayRef{arr, ir::Index::constant(0), ir::Index{j, 0}};
  };
  ir::Loop lj{j, 0, ir::Bound::fixed(n), {}};
  lj.body.push_back(ir::accum_var(
      acc, ir::Expr::mul(ir::Expr::load(ref(A)), ir::Expr::load(ref(B)))));
  lj.body.push_back(ir::accum(
      ref(Y), ir::Expr::mul(ir::Expr::load(ref(A)), ir::Expr::variable(acc))));
  k.body.push_back(std::move(lj));
  spec.init.resize(3);
  spec.init[static_cast<std::size_t>(A)] = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.init[static_cast<std::size_t>(B)] = {0.5, 0.5, 0.5, 0.5, 1, 1, 1, 1};
  spec.output_arrays = {"y"};

  const auto scal = run_kernel(spec, CodegenMode::Scalar);
  const auto man = run_kernel(spec, CodegenMode::ManualVec);
  const auto aut = run_kernel(spec, CodegenMode::AutoVec);
  EXPECT_EQ(scal.outputs.at("y"), man.outputs.at("y"));
  EXPECT_EQ(scal.outputs.at("y"), aut.outputs.at("y"));
  // Sanity: the first element saw acc = 0.5 (1*0.5), so y[0] = 1 * 0.5.
  EXPECT_EQ(scal.outputs.at("y").front(), 0.5);
}

TEST(LoweringEpilogue, OddTripCountsStayCorrect) {
  // 30 columns: f8 vectors (4 lanes) leave a 2-element epilogue; results must
  // match the scalar code bit-for-bit on the elementwise kernel.
  const auto spec = make_fdtd2d(TypeConfig::uniform(ScalarType::F8), 2, 9, 9);
  const auto scal = run_kernel(spec, CodegenMode::Scalar);
  const auto man = run_kernel(spec, CodegenMode::ManualVec);
  const auto aut = run_kernel(spec, CodegenMode::AutoVec);
  EXPECT_EQ(scal.outputs.at("hz"), man.outputs.at("hz"));
  EXPECT_EQ(scal.outputs.at("hz"), aut.outputs.at("hz"));
  EXPECT_EQ(scal.outputs.at("ex"), man.outputs.at("ex"));
  EXPECT_EQ(scal.outputs.at("ey"), aut.outputs.at("ey"));
}

}  // namespace
}  // namespace sfrv::kernels
