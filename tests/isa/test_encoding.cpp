// Encoder/decoder round-trip over the entire opcode table, pattern
// disjointness, and decode rejection of unallocated words.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/isa.hpp"

namespace sfrv::isa {
namespace {

std::mt19937 rng(12345);

/// Random valid instruction for an opcode (fields appropriate to layout).
Inst random_inst(Op op) {
  Inst i;
  i.op = op;
  auto reg = [] { return static_cast<std::uint8_t>(rng() & 31); };
  switch (layout(op)) {
    case Lay::U:
      i.rd = reg();
      i.imm = static_cast<std::int32_t>(rng() & 0xfffff000);
      break;
    case Lay::J:
      i.rd = reg();
      i.imm = (static_cast<std::int32_t>(rng() % 0x200000) - 0x100000) & ~1;
      break;
    case Lay::Iimm:
      i.rd = reg();
      i.rs1 = reg();
      i.imm = static_cast<std::int32_t>(rng() % 4096) - 2048;
      break;
    case Lay::Bimm:
      i.rs1 = reg();
      i.rs2 = reg();
      i.imm = ((static_cast<std::int32_t>(rng() % 8192) - 4096) & ~1);
      break;
    case Lay::Simm:
      i.rs1 = reg();
      i.rs2 = reg();
      i.imm = static_cast<std::int32_t>(rng() % 4096) - 2048;
      break;
    case Lay::Shamt:
      i.rd = reg();
      i.rs1 = reg();
      i.imm = static_cast<std::int32_t>(rng() & 31);
      break;
    case Lay::R:
    case Lay::FpR2:
    case Lay::Vec:
      i.rd = reg();
      i.rs1 = reg();
      i.rs2 = reg();
      break;
    case Lay::FullWord:
      break;
    case Lay::Csr:
      i.rd = reg();
      i.rs1 = reg();
      i.imm = static_cast<std::int32_t>(rng() & 0xfff);
      break;
    case Lay::FpRrm:
      i.rd = reg();
      i.rs1 = reg();
      i.rs2 = reg();
      i.rm = static_cast<std::uint8_t>(rng() % 5);
      break;
    case Lay::FpR4:
      i.rd = reg();
      i.rs1 = reg();
      i.rs2 = reg();
      i.rs3 = reg();
      i.rm = static_cast<std::uint8_t>(rng() % 5);
      break;
    case Lay::FpUnaryRm:
      i.rd = reg();
      i.rs1 = reg();
      i.rm = static_cast<std::uint8_t>(rng() % 5);
      break;
    case Lay::FpUnary:
    case Lay::VecUnary:
      i.rd = reg();
      i.rs1 = reg();
      break;
  }
  return i;
}

class EncodingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode) {
  const Op op = static_cast<Op>(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const Inst inst = random_inst(op);
    const std::uint32_t word = encode(inst);
    const auto back = decode(word);
    ASSERT_TRUE(back.has_value())
        << mnemonic(op) << " word=0x" << std::hex << word;
    EXPECT_EQ(*back, inst) << mnemonic(op) << " word=0x" << std::hex << word
                           << " decoded as " << mnemonic(back->op);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, EncodingRoundTrip,
                         ::testing::Range(0, static_cast<int>(kNumOps)),
                         [](const auto& info) {
                           std::string n{mnemonic(static_cast<Op>(info.param))};
                           for (auto& c : n)
                             if (c == '.') c = '_';
                           return n;
                         });

TEST(Encoding, PatternsAreDisjoint) {
  // No two opcodes may match the same canonical word.
  for (std::size_t a = 0; a < kNumOps; ++a) {
    const auto pa = encoding_pattern(static_cast<Op>(a));
    for (std::size_t b = a + 1; b < kNumOps; ++b) {
      const auto pb = encoding_pattern(static_cast<Op>(b));
      const std::uint32_t common = pa.mask & pb.mask;
      EXPECT_FALSE((pa.match & common) == (pb.match & common))
          << mnemonic(static_cast<Op>(a)) << " vs "
          << mnemonic(static_cast<Op>(b));
    }
  }
}

TEST(Encoding, CanonicalWordsDecodeToThemselves) {
  for (std::size_t a = 0; a < kNumOps; ++a) {
    const Op op = static_cast<Op>(a);
    const auto p = encoding_pattern(op);
    const auto dec = decode(p.match);
    ASSERT_TRUE(dec.has_value()) << mnemonic(op);
    EXPECT_EQ(dec->op, op) << mnemonic(op) << " decoded as "
                           << mnemonic(dec->op);
  }
}

TEST(Encoding, RejectsUnallocatedWords) {
  // Random garbage mostly fails to decode; whatever decodes must re-encode
  // to the same word (consistency under fuzz).
  int decoded = 0;
  for (int t = 0; t < 200'000; ++t) {
    const std::uint32_t w = rng();
    const auto d = decode(w);
    if (!d) continue;
    ++decoded;
    // Round-trip only guaranteed when operand fields fully cover the word
    // complement of the mask; loads carry all remaining bits in operands.
    const auto p = encoding_pattern(d->op);
    EXPECT_EQ(encode(*d) & p.mask, w & p.mask);
  }
  EXPECT_GT(decoded, 0);
}

TEST(Encoding, BaseOpcodesMatchRiscvSpec) {
  // Spot-check canonical encodings against the RISC-V ISA manual values.
  EXPECT_EQ(encode({.op = Op::ADDI, .rd = 1, .rs1 = 2, .imm = 3}),
            0x00310093u);  // addi ra, sp, 3
  EXPECT_EQ(encode({.op = Op::ADD, .rd = 3, .rs1 = 4, .rs2 = 5}),
            0x005201b3u);  // add gp, tp, t0
  EXPECT_EQ(encode({.op = Op::LW, .rd = 10, .rs1 = 2, .imm = 16}),
            0x01012503u);  // lw a0, 16(sp)
  EXPECT_EQ(encode({.op = Op::SW, .rs1 = 2, .rs2 = 10, .imm = 16}),
            0x00a12823u);  // sw a0, 16(sp)
  EXPECT_EQ(encode({.op = Op::EBREAK}), 0x00100073u);
  EXPECT_EQ(encode({.op = Op::ECALL}), 0x00000073u);
  EXPECT_EQ(encode({.op = Op::MUL, .rd = 1, .rs1 = 2, .rs2 = 3}),
            0x023100b3u);
  // fadd.s fa0, fa1, fa2 with RNE static rounding.
  EXPECT_EQ(encode({.op = Op::FADD_S, .rd = 10, .rs1 = 11, .rs2 = 12}),
            0x00c58553u);
}

TEST(Encoding, PaperSchemeFormatFields) {
  // The paper: 16-bit types use an unused fmt configuration, binary8
  // repurposes the Q slot (fmt=11).
  const auto h = encode({.op = Op::FADD_H, .rd = 1, .rs1 = 2, .rs2 = 3});
  EXPECT_EQ((h >> 25) & 0x3u, 0x2u) << "binary16 fmt field";
  const auto b = encode({.op = Op::FADD_B, .rd = 1, .rs1 = 2, .rs2 = 3});
  EXPECT_EQ((b >> 25) & 0x3u, 0x3u) << "binary8 uses the repurposed Q slot";
  // Vectorial ops use the OP major opcode with the unused bit-31 prefix.
  const auto v = encode({.op = Op::VFADD_H, .rd = 1, .rs1 = 2, .rs2 = 3});
  EXPECT_EQ(v & 0x7fu, 0x33u);
  EXPECT_EQ(v >> 31, 1u);
}

TEST(Disasm, SpotChecks) {
  EXPECT_EQ(disassemble({.op = Op::ADDI, .rd = 1, .rs1 = 2, .imm = 3}),
            "addi ra, sp, 3");
  EXPECT_EQ(disassemble({.op = Op::LW, .rd = 10, .rs1 = 2, .imm = 16}),
            "lw a0, 16(sp)");
  EXPECT_EQ(disassemble({.op = Op::FSW, .rs1 = 2, .rs2 = 10, .imm = 8}),
            "fsw fa0, 8(sp)");
  EXPECT_EQ(disassemble({.op = Op::VFMAC_H, .rd = 10, .rs1 = 11, .rs2 = 12}),
            "vfmac.h fa0, fa1, fa2");
  EXPECT_EQ(disassemble({.op = Op::FMACEX_S_H, .rd = 8, .rs1 = 9, .rs2 = 10}),
            "fmacex.s.h fs0, fs1, fa0");
  EXPECT_EQ(
      disassemble({.op = Op::FCVT_W_S, .rd = 10, .rs1 = 11, .rm = 1}),
      "fcvt.w.s a0, fa1");
  EXPECT_EQ(disassemble({.op = Op::BEQ, .rs1 = 1, .rs2 = 2, .imm = -8}, 0x100),
            "beq ra, sp, 0xf8");
  EXPECT_EQ(disassemble({.op = Op::VFCPKA_H_S, .rd = 1, .rs1 = 2, .rs2 = 3}),
            "vfcpka.h.s ft1, ft2, ft3");
}

}  // namespace
}  // namespace sfrv::isa
