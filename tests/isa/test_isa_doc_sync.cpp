// Tier-1 guard: docs/isa-reference.md is generated from the opcode tables
// and must match its renderer bit for bit. If this fails, regenerate with
//   ./build/tools/gen-isa-doc docs/isa-reference.md
#include "isa/docgen.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "isa/opcodes.hpp"

namespace sfrv::isa {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

TEST(IsaDocSync, CheckedInReferenceMatchesRenderer) {
  const std::string path = std::string(SFRV_SOURCE_DIR) + "/docs/isa-reference.md";
  const std::string checked_in = read_file(path);
  ASSERT_FALSE(checked_in.empty()) << "missing or unreadable: " << path;
  const std::string rendered = render_isa_reference();
  EXPECT_EQ(checked_in, rendered)
      << "docs/isa-reference.md is out of sync with the opcode tables; "
         "regenerate with ./build/tools/gen-isa-doc docs/isa-reference.md";
}

TEST(IsaDocSync, ReferenceListsEveryMnemonic) {
  const std::string doc = render_isa_reference();
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const auto mnem = mnemonic(static_cast<Op>(i));
    EXPECT_NE(doc.find("`" + std::string(mnem) + "`"), std::string::npos)
        << "mnemonic missing from the reference: " << mnem;
  }
}

}  // namespace
}  // namespace sfrv::isa
