// IsaConfig semantics and the paper's Table II vector-format geometry.
#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace sfrv::isa {
namespace {

using fp::FpFormat;

TEST(TableII, VectorLanesMatchPaper) {
  // Paper Table II: rows FLEN = 64 / 32 / 16; columns F, Xf16, Xf16alt, Xf8.
  // FLEN=64: 2, 4, 4, 8
  EXPECT_EQ(vector_lanes(FpFormat::F32, 64), 2);
  EXPECT_EQ(vector_lanes(FpFormat::F16, 64), 4);
  EXPECT_EQ(vector_lanes(FpFormat::F16Alt, 64), 4);
  EXPECT_EQ(vector_lanes(FpFormat::F8, 64), 8);
  // FLEN=32: x, 2, 2, 4
  EXPECT_EQ(vector_lanes(FpFormat::F32, 32), 0);
  EXPECT_EQ(vector_lanes(FpFormat::F16, 32), 2);
  EXPECT_EQ(vector_lanes(FpFormat::F16Alt, 32), 2);
  EXPECT_EQ(vector_lanes(FpFormat::F8, 32), 4);
  // FLEN=16: x, x, x, 2
  EXPECT_EQ(vector_lanes(FpFormat::F32, 16), 0);
  EXPECT_EQ(vector_lanes(FpFormat::F16, 16), 0);
  EXPECT_EQ(vector_lanes(FpFormat::F16Alt, 16), 0);
  EXPECT_EQ(vector_lanes(FpFormat::F8, 16), 2);
}

TEST(IsaConfig, ExtensionGating) {
  const auto base = IsaConfig::rv32imf();
  EXPECT_TRUE(base.supports(Op::ADD));
  EXPECT_TRUE(base.supports(Op::MUL));
  EXPECT_TRUE(base.supports(Op::FADD_S));
  EXPECT_FALSE(base.supports(Op::FADD_H));
  EXPECT_FALSE(base.supports(Op::VFADD_H));
  EXPECT_FALSE(base.supports(Op::FMACEX_S_H));

  const auto full = IsaConfig::full();
  EXPECT_TRUE(full.supports(Op::FADD_H));
  EXPECT_TRUE(full.supports(Op::FADD_AH));
  EXPECT_TRUE(full.supports(Op::FADD_B));
  EXPECT_TRUE(full.supports(Op::VFADD_H));
  EXPECT_TRUE(full.supports(Op::VFMAC_B));
  EXPECT_TRUE(full.supports(Op::FMACEX_S_H));
  EXPECT_TRUE(full.supports(Op::VFDOTPEX_S_H));
}

TEST(IsaConfig, VectorGatingFollowsFlen) {
  // FLEN=16: only binary8 vectors remain available.
  const auto tiny = IsaConfig::full(16);
  EXPECT_FALSE(tiny.supports(Op::VFADD_H));
  EXPECT_FALSE(tiny.supports(Op::VFADD_AH));
  EXPECT_TRUE(tiny.supports(Op::VFADD_B));
  // FLEN=64 keeps all smallFloat vectors.
  const auto wide = IsaConfig::full(64);
  EXPECT_TRUE(wide.supports(Op::VFADD_H));
  EXPECT_TRUE(wide.supports(Op::VFADD_B));
}

TEST(IsaConfig, ScalarOpsUnaffectedByFlen) {
  const auto tiny = IsaConfig::full(16);
  EXPECT_TRUE(tiny.supports(Op::FADD_B));
  EXPECT_TRUE(tiny.supports(Op::FADD_H)) << "scalar f16 fits FLEN=16";
}

TEST(OpcodeMetadata, TableIInventory) {
  // Paper Table I operation families must all be present.
  EXPECT_EQ(mnemonic(Op::FADD_H), "fadd.h");
  EXPECT_EQ(extension(Op::FADD_H), Ext::Xf16);
  EXPECT_EQ(mnemonic(Op::FCVT_H_S), "fcvt.h.s");
  EXPECT_EQ(mnemonic(Op::VFADD_H), "vfadd.h");
  EXPECT_EQ(extension(Op::VFADD_H), Ext::Xfvec);
  EXPECT_EQ(mnemonic(Op::VFCVT_X_H), "vfcvt.x.h");
  EXPECT_EQ(mnemonic(Op::VFCPKA_H_S), "vfcpka.h.s");
  EXPECT_EQ(mnemonic(Op::FMACEX_S_H), "fmacex.s.h");
  EXPECT_EQ(extension(Op::FMACEX_S_H), Ext::Xfaux);
  EXPECT_EQ(mnemonic(Op::VFDOTPEX_S_H), "vfdotpex.s.h");
  EXPECT_EQ(extension(Op::VFDOTPEX_S_H), Ext::Xfaux);
}

TEST(OpcodeMetadata, RegisterFileRouting) {
  EXPECT_TRUE(rd_is_int(Op::FEQ_H));
  EXPECT_TRUE(rd_is_int(Op::FCVT_W_H));
  EXPECT_TRUE(rd_is_int(Op::FMV_X_H));
  EXPECT_TRUE(rd_is_int(Op::FCLASS_B));
  EXPECT_FALSE(rd_is_int(Op::FADD_H));
  EXPECT_FALSE(rd_is_int(Op::VFCVT_X_H)) << "vector int-cvt stays in FP lanes";
  EXPECT_TRUE(rs1_is_int(Op::FMV_H_X));
  EXPECT_TRUE(rs1_is_int(Op::FCVT_H_W));
  EXPECT_TRUE(rs1_is_int(Op::FLH));
  EXPECT_TRUE(rs1_is_int(Op::FSH));
  EXPECT_FALSE(rs1_is_int(Op::VFCVT_H_X));
  EXPECT_TRUE(rd_is_int(Op::VFEQ_H)) << "vector compares write a lane mask";
}

TEST(OpcodeMetadata, VectorOpCounts) {
  // Every scalar arithmetic family has vector forms for all three
  // smallFloat formats.
  int vec_ops = 0;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (is_vector(static_cast<Op>(i))) ++vec_ops;
  }
  EXPECT_GE(vec_ops, 75);
}

}  // namespace
}  // namespace sfrv::isa
