// Precision-tuner tests: synthetic problems with known optima, and the
// paper's Section V-C case study (variable-to-type assignment for the SVM).
#include <gtest/gtest.h>

#include <map>

#include "energy/model.hpp"
#include "kernels/qor.hpp"
#include "kernels/suite.hpp"
#include "tuner/tuner.hpp"

namespace sfrv::tuner {
namespace {

using ir::ScalarType;

double width_cost(const TypeVector& t) {
  double w = 0;
  for (auto x : t) w += ir::width_bits(x);
  return w;
}

TEST(Tuner, ExhaustiveFindsCheapestFeasible) {
  // QoR grows with total width; threshold demands at least 48 bits total.
  Problem p;
  p.slot_names = {"a", "b"};
  p.slot_domains = {{ScalarType::F8, ScalarType::F16, ScalarType::F32},
                    {ScalarType::F8, ScalarType::F16, ScalarType::F32}};
  p.qor = [](const TypeVector& t) { return width_cost(t); };
  p.cost = width_cost;
  p.qor_threshold = 48;
  const auto r = tune_exhaustive(p);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.best.cost, 48);  // 16+32 or 32+16
  EXPECT_EQ(r.explored.size(), 9u);
}

TEST(Tuner, GreedyPromotesTheEffectiveSlot) {
  // Only slot "b" affects QoR: greedy must widen b, not a.
  Problem p;
  p.slot_names = {"a", "b"};
  p.slot_domains = {{ScalarType::F8, ScalarType::F16, ScalarType::F32},
                    {ScalarType::F8, ScalarType::F16, ScalarType::F32}};
  p.qor = [](const TypeVector& t) {
    return static_cast<double>(ir::width_bits(t[1]));
  };
  p.cost = width_cost;
  p.qor_threshold = 32;
  const auto r = tune_greedy(p);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.best.types[0], ScalarType::F8) << "slot a stays narrow";
  EXPECT_EQ(r.best.types[1], ScalarType::F32);
}

TEST(Tuner, InfeasibleProblemReportsFailure) {
  Problem p;
  p.slot_names = {"a"};
  p.slot_domains = {{ScalarType::F8, ScalarType::F16}};
  p.qor = [](const TypeVector&) { return 0.0; };
  p.cost = width_cost;
  p.qor_threshold = 1.0;
  EXPECT_FALSE(tune_greedy(p).found);
  EXPECT_FALSE(tune_exhaustive(p).found);
}

/// The Section V-C case study: tune {data, accumulator} types of the SVM
/// under a strict accuracy constraint, minimizing execution cycles (the
/// platform objective: the Xfaux expanding ops make the mixed assignment
/// both the fastest and the accurate one).
class SvmCaseStudy : public ::testing::Test {
 protected:
  struct Measured {
    double accuracy = 0;
    double cycles = 0;
  };

  static Measured measure(const TypeVector& t) {
    static std::map<std::pair<int, int>, Measured> cache;
    const auto key = std::make_pair(static_cast<int>(t[0]), static_cast<int>(t[1]));
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const auto& f = kernels::svm_fixture();
    const auto spec = kernels::make_svm({t[0], t[1]}, f.model, f.test);
    const auto r = kernels::run_kernel(spec, ir::CodegenMode::ManualVec);
    const auto rows = kernels::reshape_scores(r.outputs.at("scores"),
                                              f.test.samples, f.model.classes);
    Measured m;
    m.accuracy = kernels::classification_accuracy(rows, f.test.labels);
    m.cycles = static_cast<double>(r.cycles());
    cache[key] = m;
    return m;
  }

  static Problem svm_problem(double threshold) {
    Problem p;
    p.slot_names = {"data", "accumulator"};
    p.slot_domains = {
        {ScalarType::F8, ScalarType::F16Alt, ScalarType::F16, ScalarType::F32},
        {ScalarType::F8, ScalarType::F16Alt, ScalarType::F16, ScalarType::F32}};
    p.qor = [](const TypeVector& t) { return measure(t).accuracy; };
    p.cost = [](const TypeVector& t) { return measure(t).cycles; };
    p.qor_threshold = threshold;
    return p;
  }
};

TEST_F(SvmCaseStudy, StrictConstraintPicksThePaperAssignment) {
  // Paper: "a float variable for the final accumulation and float16 for
  // other variables" under the no-classification-errors constraint.
  const auto r = tune_exhaustive(svm_problem(1.0));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.best.types[0], ScalarType::F16) << "data assigned float16";
  EXPECT_EQ(r.best.types[1], ScalarType::F32) << "accumulator assigned float";
  EXPECT_EQ(measure(r.best.types).accuracy, 1.0);
  // Narrower alternatives violate the constraint: all-float16 loses a
  // classification, float8 data loses several.
  EXPECT_LT(measure({ScalarType::F16, ScalarType::F16}).accuracy, 1.0);
  EXPECT_LT(measure({ScalarType::F8, ScalarType::F32}).accuracy, 1.0);
}

TEST_F(SvmCaseStudy, GreedyFindsAFeasibleConfig) {
  const auto g = tune_greedy(svm_problem(1.0));
  ASSERT_TRUE(g.found);
  EXPECT_EQ(measure(g.best.types).accuracy, 1.0);
}

TEST_F(SvmCaseStudy, RelaxedConstraintAllowsNarrowerCheaperTypes) {
  // Paper: tolerating ~5% errors lets the type assignment shrink further.
  const auto strict = tune_exhaustive(svm_problem(1.0));
  const auto relaxed = tune_exhaustive(svm_problem(0.95));
  ASSERT_TRUE(strict.found);
  ASSERT_TRUE(relaxed.found);
  EXPECT_LT(relaxed.best.cost, strict.best.cost);
  EXPECT_LT(ir::width_bits(relaxed.best.types[0]) +
                ir::width_bits(relaxed.best.types[1]),
            ir::width_bits(strict.best.types[0]) +
                ir::width_bits(strict.best.types[1]));
}

}  // namespace
}  // namespace sfrv::tuner
