// Macro-assembler tests: label fixups, pseudo-instruction expansion, data
// segment layout, and encoded-image consistency.
#include <gtest/gtest.h>

#include "asmb/assembler.hpp"
#include "isa/encoding.hpp"

namespace sfrv::asmb {
namespace {

using isa::Op;

TEST(Assembler, BackwardBranchFixup) {
  Assembler a;
  const auto top = a.here();
  a.nop();
  a.nop();
  a.beq(reg::a0, reg::a1, top);
  const auto prog = a.finish();
  // beq at index 2, target index 0: offset = -8.
  EXPECT_EQ(prog.text[2].imm, -8);
}

TEST(Assembler, ForwardBranchFixup) {
  Assembler a;
  const auto end = a.make_label();
  a.bne(reg::a0, reg::a1, end);
  a.nop();
  a.nop();
  a.bind(end);
  a.ebreak();
  const auto prog = a.finish();
  EXPECT_EQ(prog.text[0].imm, 12);
}

TEST(Assembler, JalFixup) {
  Assembler a;
  const auto fn = a.make_label();
  a.jal(reg::ra, fn);
  a.ebreak();
  a.bind(fn);
  a.ret();
  const auto prog = a.finish();
  EXPECT_EQ(prog.text[0].imm, 8);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a;
  const auto l = a.make_label();
  a.j(l);
  EXPECT_THROW((void)a.finish(), std::runtime_error);
}

TEST(Assembler, LiExpansion) {
  // Small constants: one addi. Large: lui (+ addi when low bits remain).
  Assembler a1;
  a1.li(reg::a0, 42);
  EXPECT_EQ(a1.finish().text.size(), 1u);

  Assembler a2;
  a2.li(reg::a0, 0x12345000);
  EXPECT_EQ(a2.finish().text.size(), 1u) << "page-aligned needs only lui";

  Assembler a3;
  a3.li(reg::a0, 0x12345678);
  EXPECT_EQ(a3.finish().text.size(), 2u);
}

TEST(Assembler, LiHighBit11Compensation) {
  // Values whose low 12 bits have bit 11 set need the lui part bumped.
  for (std::int32_t v : {0x00000800, 0x00000fff, 0x7ffff800, -0x800, -2047}) {
    Assembler a;
    a.li(reg::a0, v);
    const auto prog = a.finish();
    // Interpret: execute by hand.
    std::int64_t acc = 0;
    for (const auto& i : prog.text) {
      if (i.op == Op::LUI) {
        acc = i.imm;
      } else {
        // The machine add wraps modulo 2^32; model it in unsigned space.
        acc = static_cast<std::int32_t>(static_cast<std::uint32_t>(acc) +
                                        static_cast<std::uint32_t>(i.imm));
      }
    }
    EXPECT_EQ(static_cast<std::int32_t>(acc), v) << v;
  }
}

TEST(Assembler, DataSegmentAlignmentAndSymbols) {
  Assembler a;
  const std::uint8_t one = 1;
  const auto b0 = a.data_bytes(&one, 1, 1);
  const auto w = a.data_u32(0xdeadbeef);  // must 4-align past the byte
  const auto z = a.data_zero(10, 8);      // 8-aligned
  a.set_symbol("blob", z);
  a.ebreak();
  const auto prog = a.finish();
  EXPECT_EQ(b0, kDefaultDataBase);
  EXPECT_EQ(w % 4, 0u);
  EXPECT_EQ(z % 8, 0u);
  EXPECT_EQ(prog.symbol("blob"), z);
  // The word is stored little-endian at its offset.
  const auto off = w - kDefaultDataBase;
  EXPECT_EQ(prog.data[off], 0xef);
  EXPECT_EQ(prog.data[off + 3], 0xde);
}

TEST(Assembler, EncodedWordsMatchInstructions) {
  Assembler a;
  a.li(reg::t0, 7);
  a.add(reg::t1, reg::t0, reg::t0);
  a.fp_rrr(Op::VFMAC_H, reg::fa0, reg::fa1, reg::fa2);
  a.ebreak();
  const auto prog = a.finish();
  ASSERT_EQ(prog.text.size(), prog.text_words.size());
  for (std::size_t i = 0; i < prog.text.size(); ++i) {
    EXPECT_EQ(prog.text_words[i], isa::encode(prog.text[i]));
    const auto dec = isa::decode(prog.text_words[i]);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, prog.text[i]);
  }
}

TEST(Assembler, PcTracksEmission) {
  Assembler a;
  EXPECT_EQ(a.pc(), kDefaultTextBase);
  a.nop();
  a.nop();
  EXPECT_EQ(a.pc(), kDefaultTextBase + 8);
}

TEST(Assembler, SetFrmEmitsCsrWrite) {
  Assembler a;
  a.set_frm(fp::RoundingMode::RTZ);
  const auto prog = a.finish();
  ASSERT_EQ(prog.text.size(), 1u);
  EXPECT_EQ(prog.text[0].op, Op::CSRRWI);
  EXPECT_EQ(prog.text[0].imm, 0x002);
  EXPECT_EQ(prog.text[0].rs1, 1);  // zimm = RTZ
}

}  // namespace
}  // namespace sfrv::asmb
