// Exhaustive binary8 coverage for the remaining operation families
// (min/max, sign injection, classification, comparisons under RMM) and
// f32->f16/f8 conversion sweeps across every rounding mode.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::F8;

TEST(F8ExhaustiveMinMax, MatchesIeeeMinNumMaxNum) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 lo = fp::fmin(fa, fb, fl);
      const F8 hi = fp::fmax(fa, fb, fl);
      if (fa.is_nan() && fb.is_nan()) {
        EXPECT_TRUE(lo.is_quiet_nan());
        EXPECT_TRUE(hi.is_quiet_nan());
        continue;
      }
      if (fa.is_nan()) {
        EXPECT_EQ(lo.bits, fb.bits);
        EXPECT_EQ(hi.bits, fb.bits);
        continue;
      }
      if (fb.is_nan()) {
        EXPECT_EQ(lo.bits, fa.bits);
        EXPECT_EQ(hi.bits, fa.bits);
        continue;
      }
      const double da = fp::to_double(fa);
      const double db = fp::to_double(fb);
      EXPECT_EQ(fp::to_double(lo), std::fmin(da, db)) << std::hex << a << "," << b;
      EXPECT_EQ(fp::to_double(hi), std::fmax(da, db)) << std::hex << a << "," << b;
    }
  }
}

TEST(F8ExhaustiveSgnj, PureBitSemantics) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      EXPECT_EQ(fp::copy_sign(fa, fb).bits, (a & 0x7f) | (b & 0x80));
      EXPECT_EQ(fp::copy_sign_neg(fa, fb).bits, (a & 0x7f) | (~b & 0x80));
      EXPECT_EQ(fp::copy_sign_xor(fa, fb).bits, a ^ (b & 0x80));
    }
  }
}

TEST(F8ExhaustiveClassify, ExactlyOneClassBit) {
  int counts[10] = {};
  for (unsigned a = 0; a < 256; ++a) {
    const auto mask = fp::classify(F8{static_cast<std::uint8_t>(a)});
    EXPECT_EQ(std::popcount(static_cast<unsigned>(mask)), 1) << std::hex << a;
    for (int b = 0; b < 10; ++b) {
      if (mask & (1u << b)) ++counts[b];
    }
  }
  // binary8 (1/5/2) population: 1 of each inf/zero per sign, 3 subnormals
  // per sign, 2^7-... normals, 2 sNaN payloads and 4-2 qNaN? Verify totals:
  EXPECT_EQ(counts[0], 1);   // -inf
  EXPECT_EQ(counts[3], 1);   // -0
  EXPECT_EQ(counts[4], 1);   // +0
  EXPECT_EQ(counts[7], 1);   // +inf
  EXPECT_EQ(counts[2], 3);   // -subnormal
  EXPECT_EQ(counts[5], 3);   // +subnormal
  EXPECT_EQ(counts[8], 2);   // signaling NaN (payload 01, both signs)
  EXPECT_EQ(counts[9], 4);   // quiet NaN (1x payloads, both signs)
  EXPECT_EQ(counts[1], 120); // -normal
  EXPECT_EQ(counts[6], 120); // +normal
}

TEST(ConvertSweep, F32ToF16AllModesSampled) {
  // Dense sweep over the binary32 space (stride through exponents) checking
  // correctly rounded narrowing in every mode, including RMM via tie logic.
  for (RoundingMode rm : kAllRoundingModes) {
    for (std::uint64_t base = 0; base < 0x1'0000'0000ull; base += 0x000f'377f) {
      const auto x = fp::F32::from_bits(static_cast<std::uint32_t>(base));
      Flags fl;
      const auto got = fp::convert<Binary16>(x, rm, fl);
      Flags fl2;
      const auto want = fp::from_double<Binary16>(fp::to_double(x), rm, fl2);
      ASSERT_TRUE(same_value(got, want))
          << std::hex << base << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TEST(ConvertSweep, RmmTiesAwayFromZero) {
  // Directed RMM ties: value exactly between two f16 neighbours.
  Flags fl;
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10.
  const double tie = 1.0 + std::ldexp(1.0, -11);
  const auto up = fp::from_double<Binary16>(tie, RoundingMode::RMM, fl);
  EXPECT_EQ(fp::to_double(up), 1.0 + std::ldexp(1.0, -10));
  const auto dn = fp::from_double<Binary16>(-tie, RoundingMode::RMM, fl);
  EXPECT_EQ(fp::to_double(dn), -(1.0 + std::ldexp(1.0, -10)));
  // RNE goes to even (1.0) instead.
  const auto even = fp::from_double<Binary16>(tie, RoundingMode::RNE, fl);
  EXPECT_EQ(fp::to_double(even), 1.0);
}

TEST(ConvertSweep, SubnormalBoundaryF16) {
  // Values straddling the f16 subnormal threshold convert correctly.
  const double min_normal = std::ldexp(1.0, -14);
  const double min_sub = std::ldexp(1.0, -24);
  Flags fl;
  EXPECT_EQ(fp::to_double(fp::from_double<Binary16>(min_normal, RoundingMode::RNE, fl)),
            min_normal);
  EXPECT_EQ(fp::to_double(fp::from_double<Binary16>(min_sub, RoundingMode::RNE, fl)),
            min_sub);
  fl.clear();
  // Half the smallest subnormal rounds to zero (RNE) with UF+NX.
  const auto z = fp::from_double<Binary16>(min_sub / 2, RoundingMode::RNE, fl);
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(fl.test(Flags::UF));
  EXPECT_TRUE(fl.test(Flags::NX));
  // But RUP rounds it up to the smallest subnormal.
  fl.clear();
  const auto s = fp::from_double<Binary16>(min_sub / 2, RoundingMode::RUP, fl);
  EXPECT_EQ(fp::to_double(s), min_sub);
}

TEST(ConvertSweep, OverflowBoundaryF8) {
  // binary8 max finite = 57344; the next representable step is 8192 wide.
  Flags fl;
  EXPECT_EQ(fp::to_double(fp::from_double<Binary8>(57344.0, RoundingMode::RNE, fl)),
            57344.0);
  EXPECT_EQ(fl.bits, 0u);
  // Halfway to the (absent) next value rounds to infinity under RNE.
  fl.clear();
  const auto inf = fp::from_double<Binary8>(61440.0, RoundingMode::RNE, fl);
  EXPECT_TRUE(inf.is_inf());
  EXPECT_TRUE(fl.test(Flags::OF));
  // RTZ clamps to max finite.
  fl.clear();
  const auto clamp = fp::from_double<Binary8>(1e6, RoundingMode::RTZ, fl);
  EXPECT_EQ(fp::to_double(clamp), 57344.0);
}

}  // namespace
}  // namespace sfrv::test
