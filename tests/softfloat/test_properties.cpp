// Property-based tests on arithmetic invariants, parameterized over formats
// and rounding modes.
#include <gtest/gtest.h>

#include <cmath>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

template <class F>
struct Properties : public ::testing::Test {};

using AllFormats =
    ::testing::Types<Binary8, Binary16, Binary16Alt, Binary32, Binary64>;
TYPED_TEST_SUITE(Properties, AllFormats);

constexpr int kSamples = 20'000;

TYPED_TEST(Properties, AddCommutes) {
  using F = TypeParam;
  for (RoundingMode rm : kAllRoundingModes) {
    for (int i = 0; i < kSamples / 5; ++i) {
      const auto a = random_bits<F>();
      const auto b = random_bits<F>();
      Flags f1, f2;
      ASSERT_TRUE(same_value(fp::add(a, b, rm, f1), fp::add(b, a, rm, f2)));
      ASSERT_EQ(f1.bits, f2.bits);
    }
  }
}

TYPED_TEST(Properties, MulCommutes) {
  using F = TypeParam;
  for (RoundingMode rm : kAllRoundingModes) {
    for (int i = 0; i < kSamples / 5; ++i) {
      const auto a = random_bits<F>();
      const auto b = random_bits<F>();
      Flags f1, f2;
      ASSERT_TRUE(same_value(fp::mul(a, b, rm, f1), fp::mul(b, a, rm, f2)));
      ASSERT_EQ(f1.bits, f2.bits);
    }
  }
}

TYPED_TEST(Properties, AdditiveIdentity) {
  using F = TypeParam;
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_finite<F>();
    Flags fl;
    const auto r = fp::add(a, Float<F>::zero(false), RoundingMode::RNE, fl);
    if (a.is_zero()) continue;  // signed-zero rules handled elsewhere
    ASSERT_EQ(r.bits, a.bits);
    ASSERT_EQ(fl.bits, 0u);
  }
}

TYPED_TEST(Properties, MultiplicativeIdentity) {
  using F = TypeParam;
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_finite<F>();
    Flags fl;
    const auto r = fp::mul(a, Float<F>::one(false), RoundingMode::RNE, fl);
    ASSERT_EQ(r.bits, a.bits);
    ASSERT_EQ(fl.bits, 0u);
  }
}

TYPED_TEST(Properties, NegationSymmetryRoundToNearest) {
  using F = TypeParam;
  // RNE and RMM are sign-symmetric: -(a+b) == (-a)+(-b).
  for (RoundingMode rm : {RoundingMode::RNE, RoundingMode::RMM}) {
    for (int i = 0; i < kSamples / 2; ++i) {
      const auto a = random_finite<F>();
      const auto b = random_finite<F>();
      Flags f1, f2;
      const auto lhs = fp::negate(fp::add(a, b, rm, f1));
      const auto rhs = fp::add(fp::negate(a), fp::negate(b), rm, f2);
      if (lhs.is_nan()) continue;
      if (lhs.is_zero() && rhs.is_zero()) continue;  // zero signs differ by rule
      ASSERT_EQ(lhs.bits, rhs.bits);
    }
  }
}

TYPED_TEST(Properties, DirectedModesAreDuals) {
  using F = TypeParam;
  // RDN(a+b) == -RUP((-a)+(-b)).
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_finite<F>();
    const auto b = random_finite<F>();
    Flags f1, f2;
    const auto down = fp::add(a, b, RoundingMode::RDN, f1);
    const auto up =
        fp::negate(fp::add(fp::negate(a), fp::negate(b), RoundingMode::RUP, f2));
    if (down.is_nan()) continue;
    ASSERT_EQ(down.bits, up.bits);
    ASSERT_EQ(f1.bits, f2.bits);
  }
}

TYPED_TEST(Properties, SubIsAddOfNegation) {
  using F = TypeParam;
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_bits<F>();
    const auto b = random_bits<F>();
    Flags f1, f2;
    ASSERT_TRUE(same_value(fp::sub(a, b, RoundingMode::RNE, f1),
                           fp::add(a, fp::negate(b), RoundingMode::RNE, f2)));
  }
}

TYPED_TEST(Properties, SqrtSquareWithinOneUlp) {
  using F = TypeParam;
  // sqrt(x)^2 stays within 1 relative step of x for normal positive x
  // (two correctly rounded ops compose to < 1 ulp of drift at this scale).
  for (int i = 0; i < kSamples; ++i) {
    auto x = fp::abs(random_finite<F>());
    if (!x.is_normal()) continue;
    Flags fl;
    const auto s = fp::sqrt(x, RoundingMode::RNE, fl);
    const auto sq = fp::mul(s, s, RoundingMode::RNE, fl);
    if (!sq.is_finite() || sq.is_zero()) continue;
    const double rel =
        std::abs(fp::to_double(sq) / fp::to_double(x) - 1.0);
    ASSERT_LE(rel, std::ldexp(1.0, -F::man_bits + 1));
  }
}

TYPED_TEST(Properties, FmaMatchesMulAddWhenExact) {
  using F = TypeParam;
  // With c = 0, fma(a, b, 0) equals mul(a, b) in every rounding mode.
  for (RoundingMode rm : kAllRoundingModes) {
    for (int i = 0; i < kSamples / 5; ++i) {
      const auto a = random_finite<F>();
      const auto b = random_finite<F>();
      Flags f1, f2;
      const auto via_fma = fp::fma(a, b, Float<F>::zero(false), rm, f1);
      const auto via_mul = fp::mul(a, b, rm, f2);
      if (via_mul.is_zero()) continue;  // +-0 + +0 sign rule differs from mul
      ASSERT_TRUE(same_value(via_fma, via_mul))
          << std::hex << static_cast<std::uint64_t>(a.bits) << " "
          << static_cast<std::uint64_t>(b.bits)
          << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TYPED_TEST(Properties, ConversionMonotonic) {
  using F = TypeParam;
  // Narrowing from binary64 preserves order (weakly).
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_finite<Binary64>();
    const auto b = random_finite<Binary64>();
    const double da = fp::to_double(a);
    const double db = fp::to_double(b);
    Flags fl;
    const auto ca = fp::convert<F>(a, RoundingMode::RNE, fl);
    const auto cb = fp::convert<F>(b, RoundingMode::RNE, fl);
    if (da <= db) {
      ASSERT_LE(fp::to_double(ca), fp::to_double(cb));
    } else {
      ASSERT_GE(fp::to_double(ca), fp::to_double(cb));
    }
  }
}

TYPED_TEST(Properties, QuantizationIdempotent) {
  using F = TypeParam;
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_finite<F>();
    const double once = fp::quantize<F>(fp::to_double(a));
    const double twice = fp::quantize<F>(once);
    ASSERT_EQ(once, twice);
  }
}

TYPED_TEST(Properties, MinMaxOrdering) {
  using F = TypeParam;
  for (int i = 0; i < kSamples; ++i) {
    const auto a = random_finite<F>();
    const auto b = random_finite<F>();
    Flags fl;
    const auto lo = fp::fmin(a, b, fl);
    const auto hi = fp::fmax(a, b, fl);
    ASSERT_LE(fp::to_double(lo), fp::to_double(hi));
    ASSERT_TRUE(same_value(lo, a) || same_value(lo, b));
    ASSERT_TRUE(same_value(hi, a) || same_value(hi, b));
  }
}

}  // namespace
}  // namespace sfrv::test
