// The Scalar<> emulation types: the host-side analogue of the paper's
// float8/float16/float16alt C keywords.
#include <gtest/gtest.h>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::float16;
using fp::float16alt;
using fp::float32;
using fp::float8;

TEST(ScalarEmulation, BasicArithmetic) {
  const float16 a = 1.5;
  const float16 b = 2.25;
  EXPECT_EQ((a + b).to_double(), 3.75);
  EXPECT_EQ((a * b).to_double(), 3.375);
  EXPECT_EQ((b - a).to_double(), 0.75);
  EXPECT_EQ((b / a).to_double(), 1.5);
}

TEST(ScalarEmulation, PrecisionLossMatchesFormat) {
  // 1/3 in binary16 vs binary16alt vs binary8: error grows as mantissa
  // shrinks.
  const double third16 = (float16{1.0} / float16{3.0}).to_double();
  const double third16a = (float16alt{1.0} / float16alt{3.0}).to_double();
  const double third8 = (float8{1.0} / float8{3.0}).to_double();
  const double exact = 1.0 / 3.0;
  EXPECT_LT(std::abs(third16 - exact), 1e-3);
  EXPECT_LT(std::abs(third16a - exact), 3e-3);
  EXPECT_GT(std::abs(third16a - exact), std::abs(third16 - exact));
  EXPECT_GT(std::abs(third8 - exact), std::abs(third16a - exact));
}

TEST(ScalarEmulation, EnvironmentFlagsAccumulate) {
  auto& env = fp::fp_env();
  env.flags.clear();
  const float8 big = 50000.0;
  const float8 r = big * big;  // overflows binary8
  EXPECT_TRUE(r.raw().is_inf());
  EXPECT_TRUE(env.flags.test(Flags::OF));
  env.flags.clear();
}

TEST(ScalarEmulation, EnvironmentRoundingMode) {
  auto& env = fp::fp_env();
  env.rm = RoundingMode::RTZ;
  const float16 a = 1.0;
  const float16 ulp_half = std::ldexp(1.0, -11);
  const float16 r = a + ulp_half;
  EXPECT_EQ(r.to_double(), 1.0) << "RTZ truncates";
  env.rm = RoundingMode::RUP;
  const float16 r2 = a + ulp_half;
  EXPECT_GT(r2.to_double(), 1.0) << "RUP rounds up";
  env.rm = RoundingMode::RNE;
}

TEST(ScalarEmulation, CrossFormatConversion) {
  const float32 x = 3.14159265;
  const auto h = x.to<Binary16>();
  const auto b = x.to<Binary16Alt>();
  const auto q = x.to<Binary8>();
  EXPECT_NEAR(h.to_double(), 3.14159265, 2e-3);
  EXPECT_NEAR(b.to_double(), 3.14159265, 2e-2);
  EXPECT_NEAR(q.to_double(), 3.14159265, 5e-1);
}

TEST(ScalarEmulation, FmaAccumulate) {
  float32 acc = 1.0;
  acc.fma_accumulate(float32{2.0}, float32{3.0});
  EXPECT_EQ(acc.to_double(), 7.0);
}

TEST(ScalarEmulation, DotProductExpandingVsNative) {
  // The Xfaux motivation: accumulating binary16 products into a binary32
  // accumulator is more accurate than accumulating in binary16.
  fp::fp_env().rm = RoundingMode::RNE;
  std::vector<double> xs, ys;
  for (int i = 0; i < 256; ++i) {
    xs.push_back(0.01 * (i % 17) - 0.05);
    ys.push_back(0.02 * (i % 13) - 0.1);
  }
  double exact = 0;
  float16 acc16{0.0};
  float32 acc32{0.0};
  for (int i = 0; i < 256; ++i) {
    exact += xs[i] * ys[i];
    const float16 a = xs[i];
    const float16 b = ys[i];
    acc16 += a * b;
    // fmacex.s.h-style: widen operands, fused accumulate in binary32.
    acc32.fma_accumulate(a.to<Binary32>(), b.to<Binary32>());
  }
  EXPECT_LT(std::abs(acc32.to_double() - exact), std::abs(acc16.to_double() - exact));
}

}  // namespace
}  // namespace sfrv::test
