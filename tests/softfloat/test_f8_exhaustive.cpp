// Exhaustive verification of binary8 (1/5/2) arithmetic: every operand pair
// for add/sub/mul/div under every host-representable rounding mode, plus a
// full sweep of unary operations, the complete f8 <-> {f16, f32} conversion
// space, comparison/flag semantics, and the NaN-boxing contract for scalar
// sub-FLEN register writes. binary8 has only 256 bit patterns, so most of
// the operation space is checkable against the double-precision reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "sim/core.hpp"
#include "sim_util.hpp"
#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::F8;

class F8ExhaustiveBinop : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(F8ExhaustiveBinop, Add) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::add(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x + y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm) << " got=0x" << unsigned{got.bits}
          << " want=0x" << unsigned{want.bits};
    }
  }
}

TEST_P(F8ExhaustiveBinop, Sub) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::sub(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x - y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

TEST_P(F8ExhaustiveBinop, Mul) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::mul(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x * y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

TEST_P(F8ExhaustiveBinop, Div) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::div(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x / y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllHostModes, F8ExhaustiveBinop,
                         ::testing::ValuesIn(kHostRoundingModes),
                         [](const auto& info) {
                           return std::string(fp::rounding_mode_name(info.param));
                         });

TEST(F8Exhaustive, SqrtAllValues) {
  for (unsigned a = 0; a < 256; ++a) {
    const F8 fa{static_cast<std::uint8_t>(a)};
    Flags fl;
    const F8 got = fp::sqrt(fa, RoundingMode::RNE, fl);
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(std::sqrt(fp::to_double(fa)),
                                                 RoundingMode::RNE, fl2);
    ASSERT_TRUE(same_value(got, want)) << "a=0x" << std::hex << a;
  }
}

TEST(F8Exhaustive, FmaSampledTriples) {
  // ~2M deterministic triples against the host double fma. The reference is
  // only trusted where the narrowing is stable under a 1-ulp perturbation of
  // the double result (the three-operand fma can straddle a binary8 tie
  // point with a deviation below double precision in rare corners).
  int checked = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    const auto a = F8{static_cast<std::uint8_t>(rng()())};
    const auto b = F8{static_cast<std::uint8_t>(rng()())};
    const auto c = F8{static_cast<std::uint8_t>(rng()())};
    Flags fl;
    const F8 got = fp::fma(a, b, c, RoundingMode::RNE, fl);
    const double r =
        std::fma(fp::to_double(a), fp::to_double(b), fp::to_double(c));
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(r, RoundingMode::RNE, fl2);
    const F8 wlo = fp::from_double<fp::Binary8>(
        std::nextafter(r, -std::numeric_limits<double>::infinity()),
        RoundingMode::RNE, fl2);
    const F8 whi = fp::from_double<fp::Binary8>(
        std::nextafter(r, std::numeric_limits<double>::infinity()),
        RoundingMode::RNE, fl2);
    if (!same_value(want, wlo) || !same_value(want, whi)) continue;
    ++checked;
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << unsigned{a.bits} << " b=0x" << unsigned{b.bits}
        << " c=0x" << unsigned{c.bits};
  }
  EXPECT_GT(checked, 1'500'000);
}

TEST(F8Exhaustive, WidenNarrowRoundTrip) {
  // Every binary8 value must survive widening to any larger format and back.
  for (unsigned a = 0; a < 256; ++a) {
    const F8 fa{static_cast<std::uint8_t>(a)};
    Flags fl;
    const auto f16 = fp::convert<fp::Binary16>(fa, RoundingMode::RNE, fl);
    const auto back16 = fp::convert<fp::Binary8>(f16, RoundingMode::RNE, fl);
    ASSERT_TRUE(same_value(fa, back16)) << "via binary16, a=0x" << std::hex << a;
    const auto f32 = fp::convert<fp::Binary32>(fa, RoundingMode::RNE, fl);
    const auto back32 = fp::convert<fp::Binary8>(f32, RoundingMode::RNE, fl);
    ASSERT_TRUE(same_value(fa, back32)) << "via binary32, a=0x" << std::hex << a;
  }
}

TEST(F8Exhaustive, CompareMatchesHost) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      const double da = fp::to_double(fa);
      const double db = fp::to_double(fb);
      Flags fl;
      ASSERT_EQ(fp::feq(fa, fb, fl), da == db) << std::hex << a << " " << b;
      ASSERT_EQ(fp::flt(fa, fb, fl), da < db) << std::hex << a << " " << b;
      ASSERT_EQ(fp::fle(fa, fb, fl), da <= db) << std::hex << a << " " << b;
    }
  }
}

TEST(F8Exhaustive, CompareFlagSemantics) {
  // IEEE 754 / RISC-V F: flt/fle are signaling (NV on any NaN operand),
  // feq is quiet (NV only for a signaling NaN). Exhaustive over all pairs.
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      const bool any_nan = fa.is_nan() || fb.is_nan();
      const bool any_snan = fa.is_signaling_nan() || fb.is_signaling_nan();
      Flags fe, fl, fle;
      (void)fp::feq(fa, fb, fe);
      (void)fp::flt(fa, fb, fl);
      (void)fp::fle(fa, fb, fle);
      ASSERT_EQ(fe.bits, any_snan ? Flags::NV : 0) << std::hex << a << " " << b;
      ASSERT_EQ(fl.bits, any_nan ? Flags::NV : 0) << std::hex << a << " " << b;
      ASSERT_EQ(fle.bits, any_nan ? Flags::NV : 0) << std::hex << a << " " << b;
    }
  }
}

// ---- conversion space f8 <-> {f16, f32} -------------------------------------

TEST(F8Exhaustive, WidenToF16MatchesOracle) {
  // Widening is exact: every value must match the host-double oracle with no
  // flags (NaNs canonicalize; signaling NaNs raise NV).
  for (unsigned a = 0; a < 256; ++a) {
    const F8 fa{static_cast<std::uint8_t>(a)};
    Flags fl;
    const auto got = fp::convert<fp::Binary16>(fa, RoundingMode::RNE, fl);
    Flags fl2;
    const auto want =
        fp::from_double<fp::Binary16>(fp::to_double(fa), RoundingMode::RNE, fl2);
    ASSERT_TRUE(same_value(got, want)) << "a=0x" << std::hex << a;
    if (!fa.is_nan()) {
      ASSERT_EQ(fl.bits, 0u) << "widening raised flags, a=0x" << std::hex << a;
    }
  }
}

TEST(F8Exhaustive, WidenToF32MatchesOracle) {
  for (unsigned a = 0; a < 256; ++a) {
    const F8 fa{static_cast<std::uint8_t>(a)};
    Flags fl;
    const auto got = fp::convert<fp::Binary32>(fa, RoundingMode::RNE, fl);
    Flags fl2;
    const auto want =
        fp::from_double<fp::Binary32>(fp::to_double(fa), RoundingMode::RNE, fl2);
    ASSERT_TRUE(same_value(got, want)) << "a=0x" << std::hex << a;
    if (!fa.is_nan()) {
      ASSERT_EQ(fl.bits, 0u) << "widening raised flags, a=0x" << std::hex << a;
    }
  }
}

class F8NarrowingConvert : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(F8NarrowingConvert, FromF16Exhaustive) {
  // All 65536 binary16 inputs. binary16 is exactly representable in double,
  // so one correctly rounded double->binary8 narrowing is the oracle.
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const fp::F16 fa = fp::F16::from_bits(a);
    Flags fl;
    const F8 got = fp::convert<fp::Binary8>(fa, rm, fl);
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(fp::to_double(fa), rm, fl2);
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << a << " rm=" << fp::rounding_mode_name(rm)
        << " got=0x" << unsigned{got.bits} << " want=0x" << unsigned{want.bits};
  }
}

TEST_P(F8NarrowingConvert, FromF32Sampled) {
  // The f32 input space is not exhaustively checkable; 500k deterministic
  // random bit patterns per rounding mode (covering NaNs, infinities,
  // subnormals and the whole exponent range) against the same oracle.
  const RoundingMode rm = GetParam();
  for (int i = 0; i < 500'000; ++i) {
    const fp::F32 fa = fp::F32::from_bits(static_cast<std::uint32_t>(rng()()));
    Flags fl;
    const F8 got = fp::convert<fp::Binary8>(fa, rm, fl);
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(fp::to_double(fa), rm, fl2);
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << fa.bits << " rm="
        << fp::rounding_mode_name(rm);
  }
}

INSTANTIATE_TEST_SUITE_P(AllHostModes, F8NarrowingConvert,
                         ::testing::ValuesIn(kHostRoundingModes),
                         [](const auto& info) {
                           return std::string(fp::rounding_mode_name(info.param));
                         });

// ---- NaN-boxing of scalar sub-FLEN writes -----------------------------------

TEST(F8NaNBoxing, ExecContextWritesBoxUpperBits) {
  // Scalar sub-FLEN writes must fill f[reg] above the value with ones up to
  // FLEN (the RISC-V NaN-boxing convention); reads take the low bits.
  for (const int flen : {32, 64}) {
    sim::ExecContext ctx;
    ctx.flen_mask = sim::width_mask(flen);
    ctx.write_fp(3, 8, 0x5a);
    EXPECT_EQ(ctx.f[3], (~std::uint64_t{0xff} & ctx.flen_mask) | 0x5a)
        << "flen=" << flen;
    EXPECT_EQ(ctx.read_fp(3, 8), 0x5au);
    ctx.write_fp(3, 16, 0x1234);
    EXPECT_EQ(ctx.f[3], (~std::uint64_t{0xffff} & ctx.flen_mask) | 0x1234)
        << "flen=" << flen;
    // A full-FLEN write leaves no box bits.
    ctx.write_fp(3, flen, 0x0123456789abcdefull);
    EXPECT_EQ(ctx.f[3], 0x0123456789abcdefull & ctx.flen_mask);
  }
}

TEST(F8NaNBoxing, ScalarOpsBoxThroughTheCore) {
  // End-to-end: fmv.b.x, flb, and fcvt.b.s all produce NaN-boxed registers,
  // under every engine (the differential contract includes the box bits).
  for (const auto engine :
       {sim::Engine::Reference, sim::Engine::Predecoded, sim::Engine::Fused}) {
    asmb::Assembler a;
    const std::uint32_t buf = a.data_zero(16);
    a.la(asmb::reg::t0, buf);
    a.li(asmb::reg::t1, 0x3c);  // 1.0 in binary8
    a.emit({.op = isa::Op::FMV_B_X, .rd = 1, .rs1 = asmb::reg::t1});
    a.emit({.op = isa::Op::SB, .rs1 = asmb::reg::t0, .rs2 = asmb::reg::t1});
    a.emit({.op = isa::Op::FLB, .rd = 2, .rs1 = asmb::reg::t0});
    // 2.0f -> binary8 (0x40): li the f32 pattern, move, convert.
    a.li(asmb::reg::t2, 0x40000000);
    a.emit({.op = isa::Op::FMV_S_X, .rd = 3, .rs1 = asmb::reg::t2});
    a.emit({.op = isa::Op::FCVT_B_S, .rd = 4, .rs1 = 3});
    a.ebreak();

    sim::Core core(isa::IsaConfig::full());
    core.set_engine(engine);
    core.load_program(a.finish());
    ASSERT_EQ(core.run(), sim::Core::RunResult::Halted);

    const std::uint64_t boxed_one = 0xffffff3cull;
    const std::uint64_t boxed_two = 0xffffff40ull;
    EXPECT_EQ(core.f_bits(1), boxed_one) << sim::engine_name(engine);
    EXPECT_EQ(core.f_bits(2), boxed_one) << sim::engine_name(engine);
    EXPECT_EQ(core.f_bits(4), boxed_two) << sim::engine_name(engine);
    // The f32 intermediate occupies full FLEN=32: no box bits.
    EXPECT_EQ(core.f_bits(3), 0x40000000ull) << sim::engine_name(engine);
  }
}

}  // namespace
}  // namespace sfrv::test
