// Exhaustive verification of binary8 (1/5/2) arithmetic: every operand pair
// for add/sub/mul/div under every host-representable rounding mode, plus a
// full sweep of unary operations. binary8 has only 256 bit patterns, so the
// whole operation space is checkable against the double-precision reference.
#include <gtest/gtest.h>

#include <cmath>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::F8;

class F8ExhaustiveBinop : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(F8ExhaustiveBinop, Add) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::add(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x + y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm) << " got=0x" << unsigned{got.bits}
          << " want=0x" << unsigned{want.bits};
    }
  }
}

TEST_P(F8ExhaustiveBinop, Sub) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::sub(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x - y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

TEST_P(F8ExhaustiveBinop, Mul) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::mul(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x * y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

TEST_P(F8ExhaustiveBinop, Div) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      Flags fl;
      const F8 got = fp::div(fa, fb, rm, fl);
      const F8 want =
          host_ref_binop(fa, fb, rm, [](double x, double y) { return x / y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " b=0x" << b << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllHostModes, F8ExhaustiveBinop,
                         ::testing::ValuesIn(kHostRoundingModes),
                         [](const auto& info) {
                           return std::string(fp::rounding_mode_name(info.param));
                         });

TEST(F8Exhaustive, SqrtAllValues) {
  for (unsigned a = 0; a < 256; ++a) {
    const F8 fa{static_cast<std::uint8_t>(a)};
    Flags fl;
    const F8 got = fp::sqrt(fa, RoundingMode::RNE, fl);
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(std::sqrt(fp::to_double(fa)),
                                                 RoundingMode::RNE, fl2);
    ASSERT_TRUE(same_value(got, want)) << "a=0x" << std::hex << a;
  }
}

TEST(F8Exhaustive, FmaSampledTriples) {
  // ~2M deterministic triples against the host double fma. The reference is
  // only trusted where the narrowing is stable under a 1-ulp perturbation of
  // the double result (the three-operand fma can straddle a binary8 tie
  // point with a deviation below double precision in rare corners).
  int checked = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    const auto a = F8{static_cast<std::uint8_t>(rng()())};
    const auto b = F8{static_cast<std::uint8_t>(rng()())};
    const auto c = F8{static_cast<std::uint8_t>(rng()())};
    Flags fl;
    const F8 got = fp::fma(a, b, c, RoundingMode::RNE, fl);
    const double r =
        std::fma(fp::to_double(a), fp::to_double(b), fp::to_double(c));
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(r, RoundingMode::RNE, fl2);
    const F8 wlo = fp::from_double<fp::Binary8>(
        std::nextafter(r, -std::numeric_limits<double>::infinity()),
        RoundingMode::RNE, fl2);
    const F8 whi = fp::from_double<fp::Binary8>(
        std::nextafter(r, std::numeric_limits<double>::infinity()),
        RoundingMode::RNE, fl2);
    if (!same_value(want, wlo) || !same_value(want, whi)) continue;
    ++checked;
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << unsigned{a.bits} << " b=0x" << unsigned{b.bits}
        << " c=0x" << unsigned{c.bits};
  }
  EXPECT_GT(checked, 1'500'000);
}

TEST(F8Exhaustive, WidenNarrowRoundTrip) {
  // Every binary8 value must survive widening to any larger format and back.
  for (unsigned a = 0; a < 256; ++a) {
    const F8 fa{static_cast<std::uint8_t>(a)};
    Flags fl;
    const auto f16 = fp::convert<fp::Binary16>(fa, RoundingMode::RNE, fl);
    const auto back16 = fp::convert<fp::Binary8>(f16, RoundingMode::RNE, fl);
    ASSERT_TRUE(same_value(fa, back16)) << "via binary16, a=0x" << std::hex << a;
    const auto f32 = fp::convert<fp::Binary32>(fa, RoundingMode::RNE, fl);
    const auto back32 = fp::convert<fp::Binary8>(f32, RoundingMode::RNE, fl);
    ASSERT_TRUE(same_value(fa, back32)) << "via binary32, a=0x" << std::hex << a;
  }
}

TEST(F8Exhaustive, CompareMatchesHost) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const F8 fa{static_cast<std::uint8_t>(a)};
      const F8 fb{static_cast<std::uint8_t>(b)};
      const double da = fp::to_double(fa);
      const double db = fp::to_double(fb);
      Flags fl;
      ASSERT_EQ(fp::feq(fa, fb, fl), da == db) << std::hex << a << " " << b;
      ASSERT_EQ(fp::flt(fa, fb, fl), da < db) << std::hex << a << " " << b;
      ASSERT_EQ(fp::fle(fa, fb, fl), da <= db) << std::hex << a << " " << b;
    }
  }
}

}  // namespace
}  // namespace sfrv::test
