// Directed tests for IEEE special values: NaN propagation and canonicalization,
// infinities, signed zeros, min/max semantics, classification, and the
// RISC-V-specific corner cases (canonical NaN, fmin(-0,+0), FMA NV rule).
#include <gtest/gtest.h>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

template <class F>
struct SpecialValues : public ::testing::Test {};

using AllFormats =
    ::testing::Types<Binary8, Binary16, Binary16Alt, Binary32, Binary64>;
TYPED_TEST_SUITE(SpecialValues, AllFormats);

TYPED_TEST(SpecialValues, NanPropagationIsCanonical) {
  using F = TypeParam;
  const auto qnan = Float<F>::quiet_nan();
  // A NaN with payload bits must still produce the canonical NaN.
  const auto payload_nan = Float<F>::from_parts(
      true, static_cast<unsigned>(F::exp_field_max), F::man_mask);
  const auto one = Float<F>::one();
  Flags fl;
  EXPECT_EQ(fp::add(payload_nan, one, RoundingMode::RNE, fl).bits, qnan.bits);
  EXPECT_EQ(fp::mul(one, payload_nan, RoundingMode::RNE, fl).bits, qnan.bits);
  EXPECT_EQ(fp::div(payload_nan, payload_nan, RoundingMode::RNE, fl).bits,
            qnan.bits);
  EXPECT_EQ(fl.bits, 0u) << "quiet NaN operands must not raise flags";
}

TYPED_TEST(SpecialValues, SignalingNanRaisesInvalid) {
  using F = TypeParam;
  const auto snan = Float<F>::from_parts(
      false, static_cast<unsigned>(F::exp_field_max), 1);  // quiet bit clear
  ASSERT_TRUE(snan.is_signaling_nan());
  const auto one = Float<F>::one();
  Flags fl;
  const auto r = fp::add(snan, one, RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
}

TYPED_TEST(SpecialValues, InfinityArithmetic) {
  using F = TypeParam;
  const auto pinf = Float<F>::inf(false);
  const auto ninf = Float<F>::inf(true);
  const auto one = Float<F>::one();
  Flags fl;
  EXPECT_EQ(fp::add(pinf, one, RoundingMode::RNE, fl).bits, pinf.bits);
  EXPECT_EQ(fp::add(pinf, pinf, RoundingMode::RNE, fl).bits, pinf.bits);
  EXPECT_EQ(fl.bits, 0u);
  // inf - inf is invalid.
  const auto r = fp::add(pinf, ninf, RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
  // inf * 0 is invalid.
  fl.clear();
  const auto r2 = fp::mul(pinf, Float<F>::zero(), RoundingMode::RNE, fl);
  EXPECT_TRUE(r2.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
}

TYPED_TEST(SpecialValues, DivisionSpecials) {
  using F = TypeParam;
  const auto one = Float<F>::one();
  const auto zero = Float<F>::zero();
  Flags fl;
  const auto r = fp::div(one, zero, RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_inf());
  EXPECT_FALSE(r.sign());
  EXPECT_TRUE(fl.test(Flags::DZ));
  fl.clear();
  const auto r2 = fp::div(zero, zero, RoundingMode::RNE, fl);
  EXPECT_TRUE(r2.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
  EXPECT_FALSE(fl.test(Flags::DZ)) << "0/0 is NV, not DZ";
  fl.clear();
  const auto r3 = fp::div(Float<F>::one(true), zero, RoundingMode::RNE, fl);
  EXPECT_TRUE(r3.is_inf());
  EXPECT_TRUE(r3.sign());
}

TYPED_TEST(SpecialValues, SignedZeroRules) {
  using F = TypeParam;
  const auto pz = Float<F>::zero(false);
  const auto nz = Float<F>::zero(true);
  Flags fl;
  // (+0) + (-0) = +0 except in RDN where it is -0.
  EXPECT_FALSE(fp::add(pz, nz, RoundingMode::RNE, fl).sign());
  EXPECT_TRUE(fp::add(pz, nz, RoundingMode::RDN, fl).sign());
  EXPECT_TRUE(fp::add(nz, nz, RoundingMode::RNE, fl).sign());
  // x - x = +0 (RNE) / -0 (RDN) for finite x.
  const auto one = Float<F>::one();
  EXPECT_FALSE(fp::sub(one, one, RoundingMode::RNE, fl).sign());
  EXPECT_TRUE(fp::sub(one, one, RoundingMode::RDN, fl).sign());
  // sqrt(-0) = -0 with no flags.
  fl.clear();
  const auto r = fp::sqrt(nz, RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.sign());
  EXPECT_EQ(fl.bits, 0u);
}

TYPED_TEST(SpecialValues, SqrtOfNegativeIsInvalid) {
  using F = TypeParam;
  Flags fl;
  const auto r = fp::sqrt(Float<F>::one(true), RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
}

TYPED_TEST(SpecialValues, MinMaxNanAndZeroSemantics) {
  using F = TypeParam;
  const auto one = Float<F>::one();
  const auto qnan = Float<F>::quiet_nan();
  Flags fl;
  // One NaN operand: return the other operand (754-2008 minNum/maxNum).
  EXPECT_EQ(fp::fmin(qnan, one, fl).bits, one.bits);
  EXPECT_EQ(fp::fmax(one, qnan, fl).bits, one.bits);
  EXPECT_EQ(fl.bits, 0u);
  // Both NaN: canonical NaN.
  EXPECT_EQ(fp::fmin(qnan, qnan, fl).bits, Float<F>::quiet_nan().bits);
  // Signaling NaN raises NV but still returns the other operand.
  const auto snan = Float<F>::from_parts(
      false, static_cast<unsigned>(F::exp_field_max), 1);
  fl.clear();
  EXPECT_EQ(fp::fmin(snan, one, fl).bits, one.bits);
  EXPECT_TRUE(fl.test(Flags::NV));
  // fmin(-0,+0) = -0; fmax(-0,+0) = +0.
  const auto pz = Float<F>::zero(false);
  const auto nz = Float<F>::zero(true);
  fl.clear();
  EXPECT_TRUE(fp::fmin(nz, pz, fl).sign());
  EXPECT_TRUE(fp::fmin(pz, nz, fl).sign());
  EXPECT_FALSE(fp::fmax(nz, pz, fl).sign());
  EXPECT_FALSE(fp::fmax(pz, nz, fl).sign());
}

TYPED_TEST(SpecialValues, FmaInvalidRule) {
  using F = TypeParam;
  // RISC-V: fma(0, inf, c) raises NV even when c is a quiet NaN.
  Flags fl;
  const auto r = fp::fma(Float<F>::zero(), Float<F>::inf(),
                         Float<F>::quiet_nan(), RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
  // fma(inf, 1, -inf) is also invalid.
  fl.clear();
  const auto r2 = fp::fma(Float<F>::inf(), Float<F>::one(), Float<F>::inf(true),
                          RoundingMode::RNE, fl);
  EXPECT_TRUE(r2.is_quiet_nan());
  EXPECT_TRUE(fl.test(Flags::NV));
  // fma(inf, 1, qNaN) without the 0*inf case: quiet NaN, no NV.
  fl.clear();
  const auto r3 = fp::fma(Float<F>::inf(), Float<F>::one(),
                          Float<F>::quiet_nan(), RoundingMode::RNE, fl);
  EXPECT_TRUE(r3.is_quiet_nan());
  EXPECT_FALSE(fl.test(Flags::NV));
}

TYPED_TEST(SpecialValues, Classify) {
  using F = TypeParam;
  using fp::FpClass;
  auto cls = [](Float<F> x) { return fp::classify(x); };
  EXPECT_EQ(cls(Float<F>::inf(true)), static_cast<std::uint16_t>(FpClass::NegInf));
  EXPECT_EQ(cls(Float<F>::one(true)),
            static_cast<std::uint16_t>(FpClass::NegNormal));
  EXPECT_EQ(cls(Float<F>::min_subnormal(true)),
            static_cast<std::uint16_t>(FpClass::NegSubnormal));
  EXPECT_EQ(cls(Float<F>::zero(true)),
            static_cast<std::uint16_t>(FpClass::NegZero));
  EXPECT_EQ(cls(Float<F>::zero(false)),
            static_cast<std::uint16_t>(FpClass::PosZero));
  EXPECT_EQ(cls(Float<F>::min_subnormal(false)),
            static_cast<std::uint16_t>(FpClass::PosSubnormal));
  EXPECT_EQ(cls(Float<F>::one(false)),
            static_cast<std::uint16_t>(FpClass::PosNormal));
  EXPECT_EQ(cls(Float<F>::inf(false)),
            static_cast<std::uint16_t>(FpClass::PosInf));
  const auto snan =
      Float<F>::from_parts(false, static_cast<unsigned>(F::exp_field_max), 1);
  EXPECT_EQ(cls(snan), static_cast<std::uint16_t>(FpClass::SignalingNan));
  EXPECT_EQ(cls(Float<F>::quiet_nan()),
            static_cast<std::uint16_t>(FpClass::QuietNan));
}

TYPED_TEST(SpecialValues, SignInjection) {
  using F = TypeParam;
  const auto pos = Float<F>::one(false);
  const auto neg = Float<F>::one(true);
  EXPECT_TRUE(fp::copy_sign(pos, neg).sign());
  EXPECT_FALSE(fp::copy_sign(neg, pos).sign());
  EXPECT_TRUE(fp::copy_sign_neg(pos, pos).sign());
  EXPECT_FALSE(fp::copy_sign_neg(pos, neg).sign());
  EXPECT_TRUE(fp::copy_sign_xor(neg, pos).sign());
  EXPECT_FALSE(fp::copy_sign_xor(neg, neg).sign());
  // Sign injection must preserve NaN payloads (it is a raw bit operation).
  const auto snan =
      Float<F>::from_parts(false, static_cast<unsigned>(F::exp_field_max), 1);
  EXPECT_EQ(fp::copy_sign(snan, pos).man_field(), snan.man_field());
}

}  // namespace
}  // namespace sfrv::test
