// binary32/binary64 arithmetic against the host FPU, which is itself
// IEEE-correct for these formats: a direct one-rounding reference.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::F32;
using fp::F64;

/// Fenced accessors keep the host FP ops inside the HostRounding guard (see
/// fence_fp in test_util.hpp).
float host_f32(F32 v) {
  return static_cast<float>(fence_fp(std::bit_cast<float>(v.bits)));
}
F32 to_f32(float v) {
  return F32{std::bit_cast<std::uint32_t>(static_cast<float>(fence_fp(v)))};
}
double host_f64(F64 v) { return fence_fp(std::bit_cast<double>(v.bits)); }
F64 to_f64(double v) { return F64{std::bit_cast<std::uint64_t>(fence_fp(v))}; }

constexpr int kPairs = 200'000;

TEST(F32Arith, AddSubMulDivVsHost) {
  for (RoundingMode rm : kHostRoundingModes) {
    HostRounding guard(rm);
    for (int i = 0; i < kPairs / 4; ++i) {
      const auto a = random_bits<Binary32>();
      const auto b = random_bits<Binary32>();
      const float fa = host_f32(a);
      const float fb = host_f32(b);
      Flags fl;
      ASSERT_TRUE(same_value(fp::add(a, b, rm, fl), to_f32(fa + fb)))
          << std::hex << a.bits << "+" << b.bits;
      ASSERT_TRUE(same_value(fp::sub(a, b, rm, fl), to_f32(fa - fb)))
          << std::hex << a.bits << "-" << b.bits;
      ASSERT_TRUE(same_value(fp::mul(a, b, rm, fl), to_f32(fa * fb)))
          << std::hex << a.bits << "*" << b.bits;
      ASSERT_TRUE(same_value(fp::div(a, b, rm, fl), to_f32(fa / fb)))
          << std::hex << a.bits << "/" << b.bits;
    }
  }
}

TEST(F32Arith, FmaVsHostFmaf) {
  for (int i = 0; i < kPairs; ++i) {
    const auto a = random_bits<Binary32>();
    const auto b = random_bits<Binary32>();
    const auto c = random_bits<Binary32>();
    Flags fl;
    const auto got = fp::fma(a, b, c, RoundingMode::RNE, fl);
    const auto want = to_f32(std::fmaf(host_f32(a), host_f32(b), host_f32(c)));
    ASSERT_TRUE(same_value(got, want))
        << std::hex << a.bits << " " << b.bits << " " << c.bits;
  }
}

TEST(F32Arith, SqrtVsHost) {
  for (int i = 0; i < kPairs; ++i) {
    const auto a = random_bits<Binary32>();
    Flags fl;
    const auto got = fp::sqrt(a, RoundingMode::RNE, fl);
    const auto want = to_f32(std::sqrt(host_f32(a)));
    ASSERT_TRUE(same_value(got, want)) << std::hex << a.bits;
  }
}

TEST(F64Arith, AddMulDivVsHost) {
  for (RoundingMode rm : kHostRoundingModes) {
    HostRounding guard(rm);
    for (int i = 0; i < kPairs / 4; ++i) {
      const auto a = random_bits<Binary64>();
      const auto b = random_bits<Binary64>();
      const double fa = host_f64(a);
      const double fb = host_f64(b);
      Flags fl;
      ASSERT_TRUE(same_value(fp::add(a, b, rm, fl), to_f64(fa + fb)))
          << std::hex << a.bits << "+" << b.bits;
      ASSERT_TRUE(same_value(fp::mul(a, b, rm, fl), to_f64(fa * fb)))
          << std::hex << a.bits << "*" << b.bits;
      ASSERT_TRUE(same_value(fp::div(a, b, rm, fl), to_f64(fa / fb)))
          << std::hex << a.bits << "/" << b.bits;
    }
  }
}

TEST(F64Arith, FmaVsHost) {
  for (int i = 0; i < kPairs; ++i) {
    const auto a = random_bits<Binary64>();
    const auto b = random_bits<Binary64>();
    const auto c = random_bits<Binary64>();
    Flags fl;
    const auto got = fp::fma(a, b, c, RoundingMode::RNE, fl);
    const auto want = to_f64(std::fma(host_f64(a), host_f64(b), host_f64(c)));
    ASSERT_TRUE(same_value(got, want))
        << std::hex << a.bits << " " << b.bits << " " << c.bits;
  }
}

TEST(F64Arith, SqrtVsHost) {
  for (int i = 0; i < kPairs; ++i) {
    const auto a = random_bits<Binary64>();
    Flags fl;
    const auto got = fp::sqrt(a, RoundingMode::RNE, fl);
    const auto want = to_f64(std::sqrt(host_f64(a)));
    ASSERT_TRUE(same_value(got, want)) << std::hex << a.bits;
  }
}

TEST(F32Convert, NarrowF64ToF32VsHost) {
  for (RoundingMode rm : kHostRoundingModes) {
    HostRounding guard(rm);
    for (int i = 0; i < kPairs / 4; ++i) {
      const auto a = random_bits<Binary64>();
      Flags fl;
      const auto got = fp::convert<Binary32>(a, rm, fl);
      const auto want = to_f32(static_cast<float>(host_f64(a)));
      ASSERT_TRUE(same_value(got, want)) << std::hex << a.bits;
    }
  }
}

}  // namespace
}  // namespace sfrv::test
