// The full 7x7 scalar convert matrix. rt_convert_fn used to be backed by a
// table hardcoded at 5x5, so adding formats past the original five silently
// indexed out of the table; this suite pins the fixed contract: every
// (to, from) pair over ALL formats resolves to a callable entry under both
// backends, diagonal entries are identities, exact values survive every
// route, and NaN/NaR map across the IEEE/posit boundary as documented.
#include <gtest/gtest.h>

#include "softfloat/posit.hpp"
#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::FpFormat;
using fp::MathBackend;

constexpr FpFormat kAllFormats[] = {
    FpFormat::F8,  FpFormat::F16, FpFormat::F16Alt, FpFormat::F32,
    FpFormat::F64, FpFormat::P8,  FpFormat::P16,
};

std::uint64_t width_mask(FpFormat f) {
  const unsigned w = fp::format_width(f);
  return w == 64 ? ~0ull : (1ull << w) - 1;
}

TEST(ConvertMatrix, EveryPairResolvesUnderBothBackends) {
  static_assert(std::size(kAllFormats) == fp::kNumFormats,
                "update kAllFormats when adding a format");
  for (const FpFormat to : kAllFormats) {
    for (const FpFormat from : kAllFormats) {
      for (const MathBackend b : {MathBackend::Grs, MathBackend::Fast}) {
        const auto fn = fp::rt_convert_fn(to, from, b);
        ASSERT_NE(fn, nullptr)
            << fp::format_name(from) << "->" << fp::format_name(to) << " ("
            << fp::backend_name(b) << ")";
        // The entry must be genuinely callable, not just non-null: a table
        // sized below kNumFormats x kNumFormats would hand back garbage
        // neighbouring pointers here.
        Flags fl;
        const std::uint64_t one =
            fp::rt_convert(from, FpFormat::F64, fp::from_host(1.0).bits,
                           RoundingMode::RNE, fl);
        Flags fl2;
        const std::uint64_t out = fn(one, RoundingMode::RNE, fl2);
        EXPECT_EQ(fp::rt_to_double(to, out), 1.0)
            << fp::format_name(from) << "->" << fp::format_name(to) << " ("
            << fp::backend_name(b) << ")";
        EXPECT_EQ(fl2.bits, 0u) << "converting 1.0 must be exact";
      }
    }
  }
}

TEST(ConvertMatrix, DiagonalIsIdentityOnEveryPattern) {
  // Self-conversion preserves bits for every non-NaN pattern. IEEE
  // diagonals canonicalize NaNs (sNaN additionally raises NV), so they must
  // still produce a quiet NaN; posits have no NaN payloads at all, so the
  // posit diagonal (a resize to the same width) is a bit-for-bit identity
  // including NaR.
  std::mt19937_64 gen(97);
  for (const FpFormat f : kAllFormats) {
    const auto fn = fp::rt_convert_fn(f, f);
    const bool posit = f == FpFormat::P8 || f == FpFormat::P16;
    const unsigned w = fp::format_width(f);
    const int trials = w <= 16 ? (1 << w) : 200'000;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t a =
          (w <= 16 ? static_cast<std::uint64_t>(t) : gen()) & width_mask(f);
      Flags fl;
      const std::uint64_t out = fn(a, RoundingMode::RNE, fl);
      const auto cls = fp::rt_classify(f, a);
      if (!posit &&
          (cls == static_cast<std::uint16_t>(fp::FpClass::SignalingNan) ||
           cls == static_cast<std::uint16_t>(fp::FpClass::QuietNan))) {
        ASSERT_EQ(fp::rt_classify(f, out),
                  static_cast<std::uint16_t>(fp::FpClass::QuietNan))
            << fp::format_name(f) << " a=0x" << std::hex << a;
        continue;
      }
      ASSERT_EQ(out, a) << fp::format_name(f) << " a=0x" << std::hex << a;
      ASSERT_EQ(fl.bits, 0u)
          << fp::format_name(f) << " flags a=0x" << std::hex << a;
    }
  }
}

TEST(ConvertMatrix, SharedExactValuesSurviveEveryRoute) {
  // Values exactly representable in EVERY format (including posit8 and the
  // 2-fraction-bit binary8): any (from -> to) conversion of them must be
  // exact, flag-free, and rounding-mode independent.
  const double values[] = {0.0, 1.0, -1.0, 2.0, -2.0, 0.5, -0.5, 4.0, -4.0};
  for (const double v : values) {
    for (const FpFormat from : kAllFormats) {
      Flags fl;
      const std::uint64_t src = fp::rt_convert(
          from, FpFormat::F64, fp::from_host(v).bits, RoundingMode::RNE, fl);
      ASSERT_EQ(fl.bits, 0u);
      for (const FpFormat to : kAllFormats) {
        for (const RoundingMode rm : kAllRoundingModes) {
          Flags fc;
          const std::uint64_t dst = fp::rt_convert(to, from, src, rm, fc);
          ASSERT_EQ(fp::rt_to_double(to, dst), v)
              << fp::format_name(from) << "->" << fp::format_name(to)
              << " v=" << v << " rm=" << fp::rounding_mode_name(rm);
          ASSERT_EQ(fc.bits, 0u)
              << fp::format_name(from) << "->" << fp::format_name(to)
              << " v=" << v;
        }
      }
    }
  }
}

TEST(ConvertMatrix, NanAndNarMapAcrossTheFamilyBoundary) {
  for (const FpFormat from : kAllFormats) {
    const bool from_posit = from == FpFormat::P8 || from == FpFormat::P16;
    Flags fl;
    // The source format's "no value" pattern.
    const std::uint64_t nan_src =
        from_posit
            ? (from == FpFormat::P8 ? std::uint64_t{fp::Posit8::nar_bits}
                                    : std::uint64_t{fp::Posit16::nar_bits})
            : fp::rt_convert(
                  from, FpFormat::F64,
                  Float<fp::Binary64>::quiet_nan().bits, RoundingMode::RNE,
                  fl);
    for (const FpFormat to : kAllFormats) {
      const bool to_posit = to == FpFormat::P8 || to == FpFormat::P16;
      Flags fc;
      const std::uint64_t dst =
          fp::rt_convert(to, from, nan_src, RoundingMode::RNE, fc);
      if (to_posit) {
        const std::uint64_t nar = to == FpFormat::P8
                                      ? std::uint64_t{fp::Posit8::nar_bits}
                                      : std::uint64_t{fp::Posit16::nar_bits};
        EXPECT_EQ(dst, nar) << fp::format_name(from) << "->"
                            << fp::format_name(to) << " must yield NaR";
      } else {
        EXPECT_EQ(fp::rt_classify(to, dst),
                  static_cast<std::uint16_t>(fp::FpClass::QuietNan))
            << fp::format_name(from) << "->" << fp::format_name(to);
      }
    }
    // And infinities collapse into NaR when entering posit space.
    if (!from_posit) {
      Flags fi;
      const std::uint64_t inf = fp::rt_convert(
          from, FpFormat::F64, Float<fp::Binary64>::inf(false).bits,
          RoundingMode::RNE, fi);
      Flags fc;
      EXPECT_EQ(fp::rt_convert(FpFormat::P8, from, inf, RoundingMode::RNE, fc),
                std::uint64_t{fp::Posit8::nar_bits})
          << fp::format_name(from) << " +inf -> p8";
      EXPECT_EQ(
          fp::rt_convert(FpFormat::P16, from, inf, RoundingMode::RNE, fc),
          std::uint64_t{fp::Posit16::nar_bits})
          << fp::format_name(from) << " +inf -> p16";
    }
  }
}

}  // namespace
}  // namespace sfrv::test
