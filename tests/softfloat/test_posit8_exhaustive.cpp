// Exhaustive differential validation of the posit8 implementation against an
// independent oracle, mirroring tests/softfloat/test_f8_exhaustive.cpp for
// the IEEE binary8 format.
//
// The oracle is MPFR-free and exact by construction:
//
//  * An independent pattern decoder (`oracle_value`) re-derives the real
//    value of every posit pattern with a bit-at-a-time scan (regime run,
//    es=2 exponent, fraction) assembled via std::ldexp — deliberately a
//    different algorithm shape from posit.hpp's decode(). Every posit8 value
//    is exact in double (significand <= 4 bits, scale in [-24, 24]).
//
//  * A brute-force rounding oracle (`oracle_round8`) maps a real value to a
//    posit8 pattern by searching a sorted table of all 255 real patterns.
//    Posit rounding is RNE over the *bit string*, not the value: the
//    decision boundary between adjacent patterns with bodies b and b+1 is
//    the value of the 9-bit posit with body 2b+1 — the arithmetic midpoint
//    where only fraction bits are truncated, but the geometric mean where
//    regime/exponent bits are (e.g. the boundary between 2^20 and maxpos =
//    2^24 is 2^22). The oracle derives every boundary from its own decoder
//    at width 9, keeping it independent and exact (boundaries have <= 5-bit
//    significands, scale in [-28, 28]). Ties go to the even body pattern;
//    saturation clamps to +-maxpos beyond the dynamic range and nonzero
//    values below minpos clamp to +-minpos (never to zero).
//
//  * Operation results are formed exactly before rounding. Sums and products
//    of posit8 values are exact in double (bit span <= 53 for sums, <= 8
//    significant bits for products). Quotients use the host's correctly
//    rounded double division: a 53-bit-rounded quotient cannot land on a
//    posit8 rounding boundary it wasn't already exactly on, because the
//    relative gap between a quotient of 4-bit-significand values and any
//    5-bit-significand boundary is at least 1/(15*31*15) ~ 2^-13 >> 2^-53
//    unless the difference is exactly zero. Square roots avoid host sqrt
//    entirely: sqrt(v) vs boundary m compares as v vs m^2, which is exact
//    (m^2 has <= 10 significant bits). FMA intermediates can span more than
//    64 bits, so the FMA sweep uses a correctly rounded long double
//    intermediate with a 1-ulp stability guard and asserts near-total
//    coverage.
//
// Posit arithmetic ignores the rounding mode and raises no IEEE flags; both
// properties are asserted across every operand pair. Conversions posit8 ->
// IEEE honour rm/flags and are checked against from_double of the oracle
// value; IEEE -> posit8 is checked exhaustively (all 65536 binary16
// patterns) and by directed+random binary32 sampling against oracle_round8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "softfloat/posit.hpp"
#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::fp {
namespace {

using test::kAllRoundingModes;
using test::rng;

constexpr std::uint8_t kNar8 = 0x80;

// ---- independent oracle ----------------------------------------------------

/// Decode a posit pattern (es = 2) to its exact real value by scanning bits
/// one at a time. Independent of posit.hpp's field-extraction decode.
double oracle_value(unsigned bits, int width) {
  const unsigned mask = (1u << width) - 1;
  const unsigned sign_bit = 1u << (width - 1);
  bits &= mask;
  if (bits == 0) return 0.0;
  if (bits == sign_bit) return std::numeric_limits<double>::quiet_NaN();
  const bool neg = (bits & sign_bit) != 0;
  const unsigned body = neg ? (~bits + 1u) & mask : bits;  // two's complement
  int i = width - 2;
  const unsigned r0 = (body >> i) & 1u;
  int run = 0;
  while (i >= 0 && ((body >> i) & 1u) == r0) {
    ++run;
    --i;
  }
  --i;  // regime terminator (absent when the run fills the body)
  const int k = r0 ? run - 1 : -run;
  int e = 0;
  for (int j = 0; j < 2; ++j) {  // es = 2; bits cut off by the regime are 0
    e <<= 1;
    if (i >= 0) e |= static_cast<int>((body >> i) & 1u);
    --i;
  }
  double frac = 1.0, w = 0.5;
  for (; i >= 0; --i, w *= 0.5) {
    if ((body >> i) & 1u) frac += w;
  }
  const double v = std::ldexp(frac, 4 * k + e);
  return neg ? -v : v;
}

struct TableEntry {
  double value;
  std::uint8_t pattern;
};

/// All positive posit8 patterns (0x01..0x7f) sorted by value.
const std::vector<TableEntry>& positive_table() {
  static const std::vector<TableEntry> table = [] {
    std::vector<TableEntry> t;
    for (unsigned p = 1; p < 0x80; ++p)
      t.push_back({oracle_value(p, 8), static_cast<std::uint8_t>(p)});
    std::sort(t.begin(), t.end(),
              [](const TableEntry& a, const TableEntry& b) {
                return a.value < b.value;
              });
    return t;
  }();
  return table;
}

/// Nearest positive posit8 pattern to v > 0: ties to the even body pattern,
/// clamped to [minpos, maxpos] (never rounding to zero or NaR).
std::uint8_t oracle_round8_pos(long double v) {
  const auto& t = positive_table();
  if (v >= static_cast<long double>(t.back().value)) return t.back().pattern;
  if (v <= static_cast<long double>(t.front().value)) return t.front().pattern;
  // First entry with value >= v.
  auto it = std::lower_bound(t.begin(), t.end(), v,
                             [](const TableEntry& e, long double x) {
                               return static_cast<long double>(e.value) < x;
                             });
  if (static_cast<long double>(it->value) == v) return it->pattern;
  const TableEntry lo = *(it - 1), hi = *it;
  // Bit-string RNE boundary: the 9-bit posit halfway *in the encoding*
  // between body b and b+1 (see the file comment). Exact in double.
  const double mid =
      oracle_value((static_cast<unsigned>(lo.pattern) << 1) | 1u, 9);
  if (v < static_cast<long double>(mid)) return lo.pattern;
  if (v > static_cast<long double>(mid)) return hi.pattern;
  return (lo.pattern & 1u) == 0 ? lo.pattern : hi.pattern;
}

std::uint8_t oracle_round8(long double v) {
  if (std::isnan(v) || std::isinf(v)) return kNar8;
  if (v == 0) return 0;
  if (v > 0) return oracle_round8_pos(v);
  return static_cast<std::uint8_t>(-oracle_round8_pos(-v));
}

const RtOps& p8() { return rt_ops(FpFormat::P8); }

/// Run a grs-table binary op and assert posit contract invariants: no flags,
/// rm-independence, and NaR absorption. Returns the RNE result.
template <class Fn>
std::uint8_t run_bin(Fn op, unsigned a, unsigned b) {
  Flags fl;
  const auto r =
      static_cast<std::uint8_t>(op(a, b, RoundingMode::RNE, fl));
  EXPECT_EQ(fl.bits, 0u) << "posit arithmetic must not raise flags";
  for (const auto rm : kAllRoundingModes) {
    Flags fl2;
    EXPECT_EQ(static_cast<std::uint8_t>(op(a, b, rm, fl2)), r)
        << "posit arithmetic must ignore rm";
  }
  return r;
}

// ---- decoder cross-check ---------------------------------------------------

TEST(Posit8Exhaustive, IndependentDecoderAgreesWithImplementation) {
  for (unsigned a = 0; a < 256; ++a) {
    const double want = oracle_value(a, 8);
    const double got = posit_to_double<Posit8>(a);
    if (a == kNar8) {
      EXPECT_TRUE(std::isnan(got));
      continue;
    }
    EXPECT_EQ(got, want) << "pattern 0x" << std::hex << a;
  }
  // Same cross-check for the posit16 decoder (values also exact in double).
  for (unsigned a = 0; a < 65536; ++a) {
    const double want = oracle_value(a, 16);
    const double got = posit_to_double<Posit16>(a);
    if (a == 0x8000) {
      EXPECT_TRUE(std::isnan(got));
      continue;
    }
    ASSERT_EQ(got, want) << "pattern 0x" << std::hex << a;
  }
}

TEST(Posit8Exhaustive, PatternOrderIsValueOrder) {
  // The defining posit encoding property: two's-complement integer order of
  // the patterns is the value order. The sorted oracle table must come out
  // in pattern order.
  const auto& t = positive_table();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i].value, t[i - 1].value);
    EXPECT_EQ(t[i].pattern, t[i - 1].pattern + 1);
  }
}

// ---- exhaustive arithmetic -------------------------------------------------

TEST(Posit8Exhaustive, AddAllPairs) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t got = run_bin(p8().add, a, b);
      if (a == kNar8 || b == kNar8) {
        ASSERT_EQ(got, kNar8);
        continue;
      }
      // Exact in double: both operands are 4-bit-significand values with
      // bit-0 exponent >= -27 and magnitude <= 2^25 (span <= 53 bits).
      const double sum = oracle_value(a, 8) + oracle_value(b, 8);
      ASSERT_EQ(got, oracle_round8(sum))
          << "a=0x" << std::hex << a << " b=0x" << b;
    }
  }
}

TEST(Posit8Exhaustive, SubAllPairs) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t got = run_bin(p8().sub, a, b);
      if (a == kNar8 || b == kNar8) {
        ASSERT_EQ(got, kNar8);
        continue;
      }
      const double diff = oracle_value(a, 8) - oracle_value(b, 8);
      ASSERT_EQ(got, oracle_round8(diff))
          << "a=0x" << std::hex << a << " b=0x" << b;
    }
  }
}

TEST(Posit8Exhaustive, MulAllPairs) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t got = run_bin(p8().mul, a, b);
      if (a == kNar8 || b == kNar8) {
        ASSERT_EQ(got, kNar8);
        continue;
      }
      // Exact in double: the product of two 4-bit significands has <= 8
      // significant bits.
      const double prod = oracle_value(a, 8) * oracle_value(b, 8);
      ASSERT_EQ(got, oracle_round8(prod))
          << "a=0x" << std::hex << a << " b=0x" << b;
    }
  }
}

TEST(Posit8Exhaustive, DivAllPairs) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t got = run_bin(p8().div, a, b);
      if (a == kNar8 || b == kNar8 || b == 0) {
        ASSERT_EQ(got, kNar8) << "x/0 and NaR must produce NaR";
        continue;
      }
      // The host's correctly rounded division is a safe oracle here: the
      // quotient's distance to any posit8 value or tie midpoint is either
      // exactly zero or at least ~2^-13 relative, far above the 2^-53
      // double-rounding error (see file comment).
      const double q = oracle_value(a, 8) / oracle_value(b, 8);
      ASSERT_EQ(got, oracle_round8(q))
          << "a=0x" << std::hex << a << " b=0x" << b;
    }
  }
}

TEST(Posit8Exhaustive, SqrtAllValues) {
  // Fully exact oracle: for v > 0, sqrt(v) compares against a candidate
  // boundary m as v vs m^2, and m^2 is exact in double (<= 12-bit sig).
  const auto& t = positive_table();
  for (unsigned a = 0; a < 256; ++a) {
    Flags fl;
    const auto got =
        static_cast<std::uint8_t>(p8().sqrt(a, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u);
    if (a == 0) {
      ASSERT_EQ(got, 0u);
      continue;
    }
    if (a & 0x80) {  // NaR and all negatives
      ASSERT_EQ(got, kNar8) << "sqrt of negative/NaR must be NaR";
      continue;
    }
    const double v = oracle_value(a, 8);
    // Nearest pattern to sqrt(v) via squared comparisons. sqrt of the posit8
    // positive range lands in [2^-12, 2^12], strictly inside the table.
    std::uint8_t want = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      const double lo = t[i - 1].value, hi = t[i].value;
      if (v < lo * lo || v > hi * hi) continue;
      if (v == lo * lo) {
        want = t[i - 1].pattern;
      } else if (v == hi * hi) {
        want = t[i].pattern;
      } else {
        // Bit-string RNE boundary between the two patterns, squared
        // (exact: the 9-bit boundary has a <= 5-bit significand).
        const double mid = oracle_value(
            (static_cast<unsigned>(t[i - 1].pattern) << 1) | 1u, 9);
        const double mid2 = mid * mid;
        if (v < mid2)
          want = t[i - 1].pattern;
        else if (v > mid2)
          want = t[i].pattern;
        else
          want = (t[i - 1].pattern & 1u) == 0 ? t[i - 1].pattern
                                              : t[i].pattern;
      }
      break;
    }
    ASSERT_NE(want, 0u) << "oracle failed to bracket sqrt(0x" << std::hex << a
                        << ")";
    ASSERT_EQ(got, want) << "a=0x" << std::hex << a;
  }
}

/// TwoSum: the exact error of the rounded long double sum x + y. The sum is
/// exact iff the returned error is zero.
long double two_sum_err(long double x, long double y, long double s) {
  const long double yp = s - x;
  return (x - (s - yp)) + (y - yp);
}

TEST(Posit8Exhaustive, FmaAllPairsStridedAddend) {
  // a, b exhaustive; c strided through the pattern space (zero included;
  // NaR absorption is covered on the a/b axes). The product is exact in
  // long double (<= 8 significant bits) but product + c can span more than
  // 64 bits. TwoSum recovers the exact rounding error of the long double
  // sum: when it is zero the sum is exact and the oracle (tie rule
  // included) applies directly; otherwise the true value lies strictly
  // between the sum and its neighbour in the error's direction, so the
  // triple is checkable whenever both ends of that 1-ulp interval round the
  // same way. Only a decision boundary inside a 1-ulp64 window forces a
  // skip, which is vanishingly rare on this grid.
  std::uint64_t checked = 0, skipped = 0;
  const long double inf = std::numeric_limits<long double>::infinity();
  for (unsigned c = 0; c < 256; c += 17) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        Flags fl;
        const auto got = static_cast<std::uint8_t>(
            p8().fma(a, b, c, RoundingMode::RNE, fl));
        EXPECT_EQ(fl.bits, 0u);
        if (a == kNar8 || b == kNar8 || c == kNar8) {
          ASSERT_EQ(got, kNar8);
          continue;
        }
        const long double prod =  // exact: <= 8 significant bits
            static_cast<long double>(oracle_value(a, 8)) * oracle_value(b, 8);
        const long double vc = oracle_value(c, 8);
        const long double s = prod + vc;
        const long double err = two_sum_err(prod, vc, s);
        const std::uint8_t want = oracle_round8(s);
        if (err != 0 &&
            oracle_round8(std::nextafterl(s, err > 0 ? inf : -inf)) != want) {
          ++skipped;
          continue;
        }
        ++checked;
        ASSERT_EQ(got, want) << "a=0x" << std::hex << a << " b=0x" << b
                             << " c=0x" << c;
      }
    }
  }
  EXPECT_GT(checked, (checked + skipped) * 999 / 1000)
      << "stability guard skipped too many triples to claim coverage";
}

// ---- comparisons, min/max, sign injection, classify ------------------------

TEST(Posit8Exhaustive, ComparisonsAreSignedPatternOrder) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const auto sa = static_cast<std::int8_t>(a);
      const auto sb = static_cast<std::int8_t>(b);
      Flags fl;
      EXPECT_EQ(p8().feq(a, b, fl), sa == sb);
      EXPECT_EQ(p8().flt(a, b, fl), sa < sb);
      EXPECT_EQ(p8().fle(a, b, fl), sa <= sb);
      EXPECT_EQ(fl.bits, 0u) << "posit compares raise no flags (no sNaN)";
      // Cross-check against real-value order for real operands: the posit
      // encoding's monotonicity means both orders must agree.
      if (a != kNar8 && b != kNar8) {
        const double va = oracle_value(a, 8), vb = oracle_value(b, 8);
        EXPECT_EQ(sa < sb, va < vb);
        EXPECT_EQ(sa == sb, va == vb);
      }
    }
  }
}

TEST(Posit8Exhaustive, MinMaxPropagateNarAndFollowValueOrder) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t mn = run_bin(p8().min, a, b);
      const std::uint8_t mx = run_bin(p8().max, a, b);
      if (a == kNar8 || b == kNar8) {
        // Arithmetic convention: NaR poisons min/max (unlike IEEE fmin/fmax,
        // which prefer the number).
        EXPECT_EQ(mn, kNar8);
        EXPECT_EQ(mx, kNar8);
        continue;
      }
      const bool a_smaller = oracle_value(a, 8) < oracle_value(b, 8) ||
                             (a == b);
      EXPECT_EQ(mn, a_smaller ? a : b);
      EXPECT_EQ(mx, a_smaller ? b : a);
    }
  }
}

TEST(Posit8Exhaustive, SignInjectionMatchesValueSemantics) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t j = run_bin(p8().sgnj, a, b);
      const std::uint8_t jn = run_bin(p8().sgnjn, a, b);
      const std::uint8_t jx = run_bin(p8().sgnjx, a, b);
      if (a == kNar8) {
        // |NaR| = NaR; sign injection cannot un-poison it.
        EXPECT_EQ(j, kNar8);
        EXPECT_EQ(jn, kNar8);
        EXPECT_EQ(jx, kNar8);
        continue;
      }
      const double va = oracle_value(a, 8);
      const bool sb = (b & 0x80) != 0;
      EXPECT_EQ(oracle_value(j, 8), sb ? -std::fabs(va) : std::fabs(va));
      EXPECT_EQ(oracle_value(jn, 8), sb ? std::fabs(va) : -std::fabs(va));
      EXPECT_EQ(oracle_value(jx, 8), sb ? -va : va);
    }
  }
}

TEST(Posit8Exhaustive, ClassifyAllValues) {
  for (unsigned a = 0; a < 256; ++a) {
    const std::uint16_t got = p8().classify(a);
    std::uint16_t want;
    if (a == kNar8) {
      want = static_cast<std::uint16_t>(FpClass::QuietNan);
    } else if (a == 0) {
      want = static_cast<std::uint16_t>(FpClass::PosZero);
    } else if (a & 0x80) {
      want = static_cast<std::uint16_t>(FpClass::NegNormal);
    } else {
      want = static_cast<std::uint16_t>(FpClass::PosNormal);
    }
    EXPECT_EQ(got, want) << "pattern 0x" << std::hex << a;
  }
}

// ---- posit8 <-> IEEE conversions -------------------------------------------

TEST(Posit8Exhaustive, ToBinary16AllValuesAllModes) {
  const RtCvtFn cvt = rt_convert_fn(FpFormat::F16, FpFormat::P8);
  ASSERT_NE(cvt, nullptr);
  for (unsigned a = 0; a < 256; ++a) {
    for (const auto rm : kAllRoundingModes) {
      Flags fl;
      const auto got = static_cast<std::uint16_t>(cvt(a, rm, fl));
      if (a == kNar8) {
        EXPECT_EQ(got, F16::quiet_nan().bits);
        EXPECT_EQ(fl.bits, 0u);
        continue;
      }
      // Oracle: round the independently decoded (exact) value into binary16
      // with the IEEE converter. posit8 reaches 2^24, so overflow/inexact
      // flags are live here and must match.
      Flags fl2;
      const F16 want = from_double<Binary16>(oracle_value(a, 8), rm, fl2);
      ASSERT_EQ(got, want.bits)
          << "a=0x" << std::hex << a << " rm=" << rounding_mode_name(rm);
      ASSERT_EQ(fl.bits, fl2.bits)
          << "a=0x" << std::hex << a << " rm=" << rounding_mode_name(rm);
    }
  }
}

TEST(Posit8Exhaustive, ToBinary32IsExactForAllValues) {
  // Every posit8 real (4-bit significand, scale in [-24, 24]) is exactly
  // representable in binary32: the conversion must be flag-free and
  // rm-independent, and the value must round-trip through the oracle.
  const RtCvtFn cvt = rt_convert_fn(FpFormat::F32, FpFormat::P8);
  ASSERT_NE(cvt, nullptr);
  for (unsigned a = 0; a < 256; ++a) {
    Flags fl;
    const auto rne = static_cast<std::uint32_t>(cvt(a, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u) << "exact conversion must not raise flags";
    for (const auto rm : kAllRoundingModes) {
      Flags fl2;
      EXPECT_EQ(static_cast<std::uint32_t>(cvt(a, rm, fl2)), rne);
    }
    if (a == kNar8) {
      EXPECT_EQ(rne, F32::quiet_nan().bits);
      continue;
    }
    ASSERT_EQ(to_double(F32::from_bits(rne)), oracle_value(a, 8))
        << "a=0x" << std::hex << a;
  }
}

TEST(Posit8Exhaustive, FromBinary16AllPatternsAllModes) {
  const RtCvtFn cvt = rt_convert_fn(FpFormat::P8, FpFormat::F16);
  ASSERT_NE(cvt, nullptr);
  for (unsigned h = 0; h < 65536; ++h) {
    const F16 x = F16::from_bits(h);
    Flags fl;
    const auto rne =
        static_cast<std::uint8_t>(cvt(h, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u) << "IEEE -> posit raises no flags";
    for (const auto rm : kAllRoundingModes) {
      Flags fl2;
      ASSERT_EQ(static_cast<std::uint8_t>(cvt(h, rm, fl2)), rne)
          << "IEEE -> posit ignores rm; h=0x" << std::hex << h;
    }
    std::uint8_t want;
    if (x.is_nan() || x.is_inf()) {
      want = kNar8;  // no infinities in the projective reals
    } else {
      want = oracle_round8(to_double(x));  // +-0 -> 0 falls out of the oracle
    }
    ASSERT_EQ(rne, want) << "h=0x" << std::hex << h;
  }
}

TEST(Posit8Exhaustive, FromBinary32DirectedAndRandom) {
  const RtCvtFn cvt = rt_convert_fn(FpFormat::P8, FpFormat::F32);
  ASSERT_NE(cvt, nullptr);
  std::vector<std::uint32_t> patterns = {
      0x00000000u, 0x80000000u,  // +-0
      0x7f800000u, 0xff800000u,  // +-inf -> NaR
      0x7fc00000u, 0x7f800001u,  // quiet/signalling NaN -> NaR
      0x00000001u, 0x00400000u,  // subnormals (far below minpos)
      0x7f7fffffu, 0xff7fffffu,  // +-FLT_MAX (far beyond maxpos)
      0x3f800000u, 0x40490fdbu,  // 1.0, pi
  };
  // Boundary stress: rounding boundaries between adjacent posit8 patterns
  // (the 9-bit bit-string ties — geometric means in the regime region),
  // nudged both ways, plus the boundaries themselves (all exact in
  // binary32: <= 5-bit significands).
  for (const unsigned lo : {3u, 0x40u, 0x7eu, 0x19u}) {
    const double mid = oracle_value((lo << 1) | 1u, 9);
    Flags fl;
    patterns.push_back(from_double<Binary32>(mid, RoundingMode::RNE, fl).bits);
    patterns.push_back(patterns.back() + 1);
    patterns.push_back(patterns.back() - 2);
  }
  for (int i = 0; i < 300000; ++i)
    patterns.push_back(static_cast<std::uint32_t>(rng()()));
  for (const auto w : patterns) {
    const F32 x = F32::from_bits(w);
    Flags fl;
    const auto got = static_cast<std::uint8_t>(cvt(w, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u);
    std::uint8_t want;
    if (x.is_nan() || x.is_inf()) {
      want = kNar8;
    } else {
      want = oracle_round8(to_double(x));
    }
    ASSERT_EQ(got, want) << "w=0x" << std::hex << w;
  }
}

// ---- posit8 <-> posit16 resize ---------------------------------------------

TEST(Posit8Exhaustive, WidenToPosit16IsExactAndRoundTrips) {
  const RtCvtFn widen = rt_convert_fn(FpFormat::P16, FpFormat::P8);
  const RtCvtFn narrow = rt_convert_fn(FpFormat::P8, FpFormat::P16);
  ASSERT_NE(widen, nullptr);
  ASSERT_NE(narrow, nullptr);
  for (unsigned a = 0; a < 256; ++a) {
    Flags fl;
    const auto wide =
        static_cast<std::uint16_t>(widen(a, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u);
    if (a == kNar8) {
      EXPECT_EQ(wide, 0x8000u);
    } else {
      // posit8's scale range and significand both fit posit16: exact.
      ASSERT_EQ(oracle_value(wide, 16), oracle_value(a, 8))
          << "a=0x" << std::hex << a;
    }
    const auto back =
        static_cast<std::uint8_t>(narrow(wide, RoundingMode::RNE, fl));
    ASSERT_EQ(back, a) << "widen/narrow round trip broke 0x" << std::hex << a;
  }
}

TEST(Posit8Exhaustive, NarrowFromPosit16AllPatterns) {
  const RtCvtFn narrow = rt_convert_fn(FpFormat::P8, FpFormat::P16);
  ASSERT_NE(narrow, nullptr);
  for (unsigned a = 0; a < 65536; ++a) {
    Flags fl;
    const auto got =
        static_cast<std::uint8_t>(narrow(a, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u);
    if (a == 0x8000) {
      ASSERT_EQ(got, kNar8);
      continue;
    }
    // Every posit16 value is exact in double (<= 12-bit significand, scale
    // in [-56, 56]), so the posit8 rounding oracle applies directly.
    ASSERT_EQ(got, oracle_round8(oracle_value(a, 16)))
        << "a=0x" << std::hex << a;
  }
}

// ---- integer conversions ---------------------------------------------------

TEST(Posit8Exhaustive, ToInt32MatchesBinary64Path) {
  // Differential oracle: posit8 values are exact in binary64, and the
  // binary64 integer converter is IEEE-proven elsewhere; the posit path must
  // agree bit-for-bit (including rm behaviour). NaR follows the NaN
  // convention: most-negative / max with NV.
  for (unsigned a = 0; a < 256; ++a) {
    for (const auto rm : kAllRoundingModes) {
      Flags fl;
      const std::int32_t got = p8().to_int32(a, rm, fl);
      Flags flu;
      const std::uint32_t gotu = p8().to_uint32(a, rm, flu);
      if (a == kNar8) {
        EXPECT_EQ(got, std::numeric_limits<std::int32_t>::min());
        EXPECT_EQ(fl.bits, Flags::NV);
        EXPECT_EQ(gotu, std::numeric_limits<std::uint32_t>::max());
        EXPECT_EQ(flu.bits, Flags::NV);
        continue;
      }
      const std::uint64_t w = from_host(oracle_value(a, 8)).bits;
      Flags fl2, flu2;
      ASSERT_EQ(got, rt_ops(FpFormat::F64).to_int32(w, rm, fl2));
      ASSERT_EQ(fl.bits, fl2.bits);
      ASSERT_EQ(gotu, rt_ops(FpFormat::F64).to_uint32(w, rm, flu2));
      ASSERT_EQ(flu.bits, flu2.bits);
    }
  }
}

TEST(Posit8Exhaustive, FromInt32IsNearestWithSaturation) {
  std::vector<std::int32_t> values = {0,      1,       -1,      2,    3,
                                      15,     16,      17,      100,  -100,
                                      1 << 20, -(1 << 20), (1 << 24),
                                      (1 << 24) + 1, std::numeric_limits<std::int32_t>::max(),
                                      std::numeric_limits<std::int32_t>::min()};
  for (int i = 0; i < 20000; ++i)
    values.push_back(static_cast<std::int32_t>(rng()()));
  for (const auto v : values) {
    Flags fl;
    const auto got = static_cast<std::uint8_t>(
        p8().from_int32(v, RoundingMode::RNE, fl));
    EXPECT_EQ(fl.bits, 0u);
    ASSERT_EQ(got, oracle_round8(static_cast<long double>(v)))
        << "v=" << v;
  }
}

// ---- posit16 spot checks against the same oracle machinery -----------------

TEST(Posit16Sampled, BinopsAgainstLongDoubleOracle) {
  // Nearest-posit16 oracle: pattern order is value order (verified for the
  // encoding above), so decode neighbours directly. Comparisons happen in
  // long double; sums of posit16 values can span more than 64 bits, so an
  // unstable rounding (exact sum within 1 ulp64 of a decision boundary) is
  // skipped and counted, like the posit8 FMA sweep.
  const auto round16 = [](long double v) -> std::uint16_t {
    if (std::isnan(v) || std::isinf(v)) return 0x8000;
    if (v == 0) return 0;
    const bool neg = v < 0;
    const long double m = neg ? -v : v;
    // Binary search over positive patterns 1..0x7fff (value-ordered).
    unsigned lo = 1, hi = 0x7fff;
    if (m >= static_cast<long double>(oracle_value(hi, 16))) {
      lo = hi;
    } else if (m <= static_cast<long double>(oracle_value(lo, 16))) {
      hi = lo;
    } else {
      while (hi - lo > 1) {
        const unsigned mid = lo + (hi - lo) / 2;
        if (static_cast<long double>(oracle_value(mid, 16)) <= m)
          lo = mid;
        else
          hi = mid;
      }
      const long double vlo = oracle_value(lo, 16), vhi = oracle_value(hi, 16);
      if (m == vhi) {
        lo = hi;
      } else if (m != vlo) {
        // Bit-string RNE boundary: the 17-bit posit between the adjacent
        // bodies (<= 13-bit significand, exact in double).
        const long double midv = oracle_value((lo << 1) | 1u, 17);
        if (m > midv)
          lo = hi;
        else if (m == midv && (lo & 1u))
          lo = hi;  // tie to the even body pattern
      }
    }
    const auto p = static_cast<std::uint16_t>(lo);
    return neg ? static_cast<std::uint16_t>(-p) : p;
  };

  const auto& ops = rt_ops(FpFormat::P16);
  const long double inf = std::numeric_limits<long double>::infinity();
  std::uint64_t checked = 0, skipped = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng()());
    const auto b = static_cast<std::uint16_t>(rng()());
    struct Case {
      RtBinFn fn;
      long double exact;
      long double err;  // TwoSum error: exact result = exact + err
      bool valid;
    };
    const long double va = oracle_value(a, 16), vb = oracle_value(b, 16);
    const bool nar = a == 0x8000 || b == 0x8000;
    const long double sum = va + vb, diff = va - vb;
    const Case cases[] = {
        // Sums can span > 64 bits; TwoSum recovers the exact error so only
        // a boundary within 1 ulp64 of the rounded sum forces a skip.
        {ops.add, sum, two_sum_err(va, vb, sum), true},
        {ops.sub, diff, two_sum_err(va, -vb, diff), true},
        {ops.mul, va * vb, 0.0L, true},  // exact: <= 24 significant bits
        // Correctly rounded 64-bit quotient; the posit16 separation bound
        // (~2^-48 relative) keeps the rounded value on the right side of
        // every decision boundary, so no guard is needed: treat as exact.
        {ops.div, va / vb, 0.0L, b != 0},
    };
    for (const auto& c : cases) {
      Flags fl;
      const auto got = static_cast<std::uint16_t>(
          c.fn(a, b, RoundingMode::RNE, fl));
      EXPECT_EQ(fl.bits, 0u);
      if (nar || !c.valid) {
        ASSERT_EQ(got, 0x8000u);
        continue;
      }
      const std::uint16_t want = round16(c.exact);
      if (c.err != 0 &&
          round16(std::nextafterl(c.exact, c.err > 0 ? inf : -inf)) != want) {
        ++skipped;
        continue;
      }
      ++checked;
      ASSERT_EQ(got, want) << "a=0x" << std::hex << a << " b=0x" << b;
    }
  }
  EXPECT_GT(checked, (checked + skipped) * 999 / 1000);
}

}  // namespace
}  // namespace sfrv::fp
