// MathBackend::Fast vs MathBackend::Grs differential suite.
//
// The backend contract is bit- AND fflags-identity for every table entry.
// binary8 is checked exhaustively: every operand pair for every binary-op
// table under every rounding mode, every unary/compare/convert table entry,
// and the packed-lane entries over full lane sweeps. The host-FP formats
// (f16 / f16alt / f32) are checked with an exhaustive unary sweep where the
// space allows, a full cross product of a boundary-value set (exponent
// edges, subnormals, specials -- the values the single-rounding argument has
// to survive), and deterministic random fuzzing on top.
#include <gtest/gtest.h>

#include <vector>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::MathBackend;
using fp::RtOps;
using fp::RtVecOps;

const RtOps& grs(FpFormat f) { return fp::rt_ops(f, MathBackend::Grs); }
const RtOps& fast(FpFormat f) { return fp::rt_ops(f, MathBackend::Fast); }

/// One scalar binary entry, both backends, bits + flags must agree.
void check_bin(fp::RtBinFn g, fp::RtBinFn f, std::uint64_t a, std::uint64_t b,
               RoundingMode rm, const char* what) {
  Flags fg, ff;
  const std::uint64_t rg = g(a, b, rm, fg);
  const std::uint64_t rf = f(a, b, rm, ff);
  ASSERT_EQ(rg, rf) << what << " bits a=0x" << std::hex << a << " b=0x" << b
                    << " rm=" << fp::rounding_mode_name(rm);
  ASSERT_EQ(fg.bits, ff.bits) << what << " flags a=0x" << std::hex << a
                              << " b=0x" << b << " rm="
                              << fp::rounding_mode_name(rm);
}

// ---- binary8: exhaustive over every table ----------------------------------

struct NamedBin {
  const char* name;
  fp::RtBinFn RtOps::*entry;
};

const NamedBin kF8BinOps[] = {
    {"add", &RtOps::add}, {"sub", &RtOps::sub}, {"mul", &RtOps::mul},
    {"div", &RtOps::div}, {"min", &RtOps::min}, {"max", &RtOps::max},
    {"sgnj", &RtOps::sgnj}, {"sgnjn", &RtOps::sgnjn}, {"sgnjx", &RtOps::sgnjx},
};

class F8LutVsGrs : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(F8LutVsGrs, EveryBinaryTableEntry) {
  const RoundingMode rm = GetParam();
  for (const auto& op : kF8BinOps) {
    const fp::RtBinFn g = grs(FpFormat::F8).*(op.entry);
    const fp::RtBinFn f = fast(FpFormat::F8).*(op.entry);
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        check_bin(g, f, a, b, rm, op.name);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_P(F8LutVsGrs, UnaryAndIntConvertTables) {
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 256; ++a) {
    Flags fg, ff;
    ASSERT_EQ(grs(FpFormat::F8).sqrt(a, rm, fg),
              fast(FpFormat::F8).sqrt(a, rm, ff))
        << "sqrt a=0x" << std::hex << a;
    ASSERT_EQ(fg.bits, ff.bits) << "sqrt flags a=0x" << std::hex << a;

    fg.clear();
    ff.clear();
    ASSERT_EQ(grs(FpFormat::F8).to_int32(a, rm, fg),
              fast(FpFormat::F8).to_int32(a, rm, ff))
        << "to_int32 a=0x" << std::hex << a;
    ASSERT_EQ(fg.bits, ff.bits) << "to_int32 flags a=0x" << std::hex << a;

    fg.clear();
    ff.clear();
    ASSERT_EQ(grs(FpFormat::F8).to_uint32(a, rm, fg),
              fast(FpFormat::F8).to_uint32(a, rm, ff))
        << "to_uint32 a=0x" << std::hex << a;
    ASSERT_EQ(fg.bits, ff.bits) << "to_uint32 flags a=0x" << std::hex << a;

    ASSERT_EQ(grs(FpFormat::F8).classify(a), fast(FpFormat::F8).classify(a))
        << "classify a=0x" << std::hex << a;
  }
}

TEST_P(F8LutVsGrs, ConvertTables) {
  const RoundingMode rm = GetParam();
  // f8 -> wider: 256 entries per destination.
  for (const FpFormat to :
       {FpFormat::F16, FpFormat::F16Alt, FpFormat::F32, FpFormat::F64}) {
    const auto g = fp::rt_convert_fn(to, FpFormat::F8, MathBackend::Grs);
    const auto f = fp::rt_convert_fn(to, FpFormat::F8, MathBackend::Fast);
    for (unsigned a = 0; a < 256; ++a) {
      Flags fg, ff;
      ASSERT_EQ(g(a, rm, fg), f(a, rm, ff))
          << "f8->" << fp::format_name(to) << " a=0x" << std::hex << a;
      ASSERT_EQ(fg.bits, ff.bits)
          << "f8->" << fp::format_name(to) << " flags a=0x" << std::hex << a;
    }
  }
  // 16-bit -> f8: the full 65536-pattern source space per mode.
  for (const FpFormat from : {FpFormat::F16, FpFormat::F16Alt}) {
    const auto g = fp::rt_convert_fn(FpFormat::F8, from, MathBackend::Grs);
    const auto f = fp::rt_convert_fn(FpFormat::F8, from, MathBackend::Fast);
    for (unsigned a = 0; a < 0x10000; ++a) {
      Flags fg, ff;
      ASSERT_EQ(g(a, rm, fg), f(a, rm, ff))
          << fp::format_name(from) << "->f8 a=0x" << std::hex << a;
      ASSERT_EQ(fg.bits, ff.bits)
          << fp::format_name(from) << "->f8 flags a=0x" << std::hex << a;
    }
  }
}

TEST(F8LutVsGrs, CompareTables) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      for (const auto entry : {&RtOps::feq, &RtOps::flt, &RtOps::fle}) {
        Flags fg, ff;
        ASSERT_EQ((grs(FpFormat::F8).*entry)(a, b, fg),
                  (fast(FpFormat::F8).*entry)(a, b, ff))
            << "cmp a=0x" << std::hex << a << " b=0x" << b;
        ASSERT_EQ(fg.bits, ff.bits)
            << "cmp flags a=0x" << std::hex << a << " b=0x" << b;
      }
    }
  }
}

TEST_P(F8LutVsGrs, PackedLaneEntries) {
  // Exhaustive over the lane-0 pair space with the other three lanes set to
  // a moving pattern, for every lane count and both replicate settings.
  const RoundingMode rm = GetParam();
  const RtVecOps& vg = fp::rt_vec_ops(FpFormat::F8, MathBackend::Grs);
  const RtVecOps& vf = fp::rt_vec_ops(FpFormat::F8, MathBackend::Fast);
  for (const auto entry : {&RtVecOps::add, &RtVecOps::sub, &RtVecOps::mul,
                           &RtVecOps::div, &RtVecOps::min, &RtVecOps::max}) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        const std::uint64_t va = a | (std::uint64_t{b} << 8) |
                                 (std::uint64_t{a ^ 0x80} << 16) |
                                 (std::uint64_t{0x7f} << 24);
        const std::uint64_t vb = b | (std::uint64_t{a} << 8) |
                                 (std::uint64_t{b ^ 0x55} << 16) |
                                 (std::uint64_t{a} << 24);
        const int lanes = 1 + static_cast<int>((a + b) % 4);
        const bool rep = ((a ^ b) & 1) != 0;
        Flags fg, ff;
        ASSERT_EQ((vg.*entry)(va, vb, lanes, rep, rm, fg),
                  (vf.*entry)(va, vb, lanes, rep, rm, ff))
            << "vec a=0x" << std::hex << va << " b=0x" << vb;
        ASSERT_EQ(fg.bits, ff.bits)
            << "vec flags a=0x" << std::hex << va << " b=0x" << vb;
      }
    }
  }
  // Packed sqrt and compares, full 16-bit sweep of the low two lanes.
  for (unsigned a = 0; a < 0x10000; ++a) {
    Flags fg, ff;
    ASSERT_EQ(vg.sqrt(a, 2, rm, fg), vf.sqrt(a, 2, rm, ff))
        << "vsqrt a=0x" << std::hex << a;
    ASSERT_EQ(fg.bits, ff.bits) << "vsqrt flags a=0x" << std::hex << a;
  }
  for (const auto entry : {&RtVecOps::feq, &RtVecOps::flt, &RtVecOps::fle}) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        const std::uint64_t va = a | (std::uint64_t{b} << 8);
        const std::uint64_t vb = b | (std::uint64_t{a} << 8);
        Flags fg, ff;
        ASSERT_EQ((vg.*entry)(va, vb, 2, fg), (vf.*entry)(va, vb, 2, ff))
            << "vcmp a=0x" << std::hex << va << " b=0x" << vb;
        ASSERT_EQ(fg.bits, ff.bits)
            << "vcmp flags a=0x" << std::hex << va << " b=0x" << vb;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, F8LutVsGrs,
                         ::testing::ValuesIn(kAllRoundingModes),
                         [](const auto& info) {
                           return std::string(
                               fp::rounding_mode_name(info.param));
                         });

// ---- host-FP formats: boundary cross product + fuzz ------------------------

/// Values the host fast path has to survive: specials, zeros, subnormal
/// extremes, exponent-range edges (the f32/f16alt add exactness guard and
/// the div subnormal guard), powers of two, and odd-mantissa neighbours.
template <class F>
std::vector<std::uint64_t> boundary_values() {
  using T = Float<F>;
  std::vector<std::uint64_t> vals;
  const std::uint64_t specials[] = {
      T::zero(false).bits,          T::zero(true).bits,
      T::inf(false).bits,           T::inf(true).bits,
      T::quiet_nan().bits,          static_cast<std::uint64_t>(T::quiet_nan().bits | 1),
      T::min_subnormal(false).bits, T::min_subnormal(true).bits,
      T::min_normal(false).bits,    T::min_normal(true).bits,
      T::max_finite(false).bits,    T::max_finite(true).bits,
      T::one(false).bits,           T::one(true).bits,
      // Signaling NaN: exponent all ones, quiet bit clear, payload 1.
      (T::inf(false).bits | 1u),
  };
  vals.insert(vals.end(), std::begin(specials), std::end(specials));
  // Every exponent field at mantissa 0 (both signs), plus dense mantissa
  // patterns at the edge/centre exponents where the guards change behaviour.
  constexpr unsigned emax = static_cast<unsigned>(F::exp_field_max);
  for (unsigned e = 0; e <= emax; ++e) {
    vals.push_back(T::from_parts(false, e, 0).bits);
    vals.push_back(T::from_parts(true, e, 0).bits);
  }
  for (const unsigned e : {0u, 1u, 2u, emax / 2, emax / 2 + 1, emax - 1, emax}) {
    for (const std::uint64_t m :
         {std::uint64_t{1}, F::man_mask >> 1, F::man_mask}) {
      vals.push_back(T::from_parts(false, e, m).bits);
      vals.push_back(T::from_parts(true, e, m).bits);
    }
  }
  return vals;
}

template <class F>
void check_host_fast_format(FpFormat tag, int fuzz_pairs) {
  const RtOps& g = grs(tag);
  const RtOps& f = fast(tag);
  const auto vals = boundary_values<F>();
  const NamedBin ops[] = {{"add", &RtOps::add},
                          {"sub", &RtOps::sub},
                          {"mul", &RtOps::mul},
                          {"div", &RtOps::div}};
  for (const RoundingMode rm : kAllRoundingModes) {
    for (const auto& op : ops) {
      // Full boundary cross product.
      for (const std::uint64_t a : vals) {
        for (const std::uint64_t b : vals) {
          check_bin(g.*(op.entry), f.*(op.entry), a, b, rm, op.name);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
      // Random bit patterns (covers the whole encoding space).
      for (int i = 0; i < fuzz_pairs; ++i) {
        const std::uint64_t a = random_bits<F>().bits;
        const std::uint64_t b = random_bits<F>().bits;
        check_bin(g.*(op.entry), f.*(op.entry), a, b, rm, op.name);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    // Unary sweep: exhaustive for 16-bit formats, boundary+fuzz for f32.
    if (F::width == 16) {
      for (unsigned a = 0; a < 0x10000; ++a) {
        Flags fg, ff;
        ASSERT_EQ(g.sqrt(a, rm, fg), f.sqrt(a, rm, ff))
            << "sqrt a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits) << "sqrt flags a=0x" << std::hex << a;
      }
    } else {
      for (const std::uint64_t a : vals) {
        Flags fg, ff;
        ASSERT_EQ(g.sqrt(a, rm, fg), f.sqrt(a, rm, ff))
            << "sqrt a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits) << "sqrt flags a=0x" << std::hex << a;
      }
      for (int i = 0; i < fuzz_pairs; ++i) {
        const std::uint64_t a = random_bits<F>().bits;
        Flags fg, ff;
        ASSERT_EQ(g.sqrt(a, rm, fg), f.sqrt(a, rm, ff))
            << "sqrt a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits) << "sqrt flags a=0x" << std::hex << a;
      }
    }
  }
}

TEST(HostFastVsGrs, Binary16) {
  check_host_fast_format<Binary16>(FpFormat::F16, 20'000);
}

TEST(HostFastVsGrs, Binary16Alt) {
  check_host_fast_format<Binary16Alt>(FpFormat::F16Alt, 20'000);
}

TEST(HostFastVsGrs, Binary32) {
  check_host_fast_format<Binary32>(FpFormat::F32, 40'000);
}

TEST(HostFastVsGrs, Binary32SubnormalDivision) {
  // Directed pressure on the division subnormal-guard boundary: quotients
  // landing in and just above the subnormal range of the target format.
  for (const RoundingMode rm : kAllRoundingModes) {
    for (int i = 0; i < 60'000; ++i) {
      // Small numerator, large denominator: quotient near/below min normal.
      auto a = random_finite<fp::Binary32>();
      auto b = random_finite<fp::Binary32>();
      const std::uint64_t ab =
          (a.bits & ~fp::Binary32::exp_mask) |
          (static_cast<std::uint64_t>(1 + (rng()() % 40)) << 23);
      const std::uint64_t bb =
          (b.bits & ~fp::Binary32::exp_mask) |
          (static_cast<std::uint64_t>(120 + (rng()() % 60)) << 23);
      check_bin(grs(FpFormat::F32).div, fast(FpFormat::F32).div, ab, bb, rm,
                "div-subnormal");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(HostFastVsGrs, WideningConvertsToF32) {
  for (const FpFormat from : {FpFormat::F16, FpFormat::F16Alt}) {
    const auto g = fp::rt_convert_fn(FpFormat::F32, from, MathBackend::Grs);
    const auto f = fp::rt_convert_fn(FpFormat::F32, from, MathBackend::Fast);
    for (const RoundingMode rm : kAllRoundingModes) {
      for (unsigned a = 0; a < 0x10000; ++a) {
        Flags fg, ff;
        ASSERT_EQ(g(a, rm, fg), f(a, rm, ff))
            << fp::format_name(from) << "->f32 a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits)
            << fp::format_name(from) << "->f32 flags a=0x" << std::hex << a;
      }
    }
  }
}

TEST(HostFastVsGrs, PackedLaneEntriesMatch) {
  // f16/f16alt packed entries: random packed registers, all lane counts.
  for (const FpFormat tag : {FpFormat::F16, FpFormat::F16Alt}) {
    const RtVecOps& vg = fp::rt_vec_ops(tag, MathBackend::Grs);
    const RtVecOps& vf = fp::rt_vec_ops(tag, MathBackend::Fast);
    for (const RoundingMode rm : kAllRoundingModes) {
      for (const auto entry :
           {&RtVecOps::add, &RtVecOps::sub, &RtVecOps::mul, &RtVecOps::div}) {
        for (int i = 0; i < 20'000; ++i) {
          const std::uint64_t a = rng()();
          const std::uint64_t b = rng()();
          const int lanes = 1 + static_cast<int>(rng()() % 4);
          const bool rep = (rng()() & 1) != 0;
          Flags fg, ff;
          ASSERT_EQ((vg.*entry)(a, b, lanes, rep, rm, fg),
                    (vf.*entry)(a, b, lanes, rep, rm, ff))
              << fp::format_name(tag) << " vec a=0x" << std::hex << a
              << " b=0x" << b;
          ASSERT_EQ(fg.bits, ff.bits)
              << fp::format_name(tag) << " vec flags a=0x" << std::hex << a
              << " b=0x" << b;
        }
      }
      for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t a = rng()();
        const int lanes = 1 + static_cast<int>(rng()() % 4);
        Flags fg, ff;
        ASSERT_EQ(vg.sqrt(a, lanes, rm, fg), vf.sqrt(a, lanes, rm, ff))
            << fp::format_name(tag) << " vsqrt a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits)
            << fp::format_name(tag) << " vsqrt flags a=0x" << std::hex << a;
      }
    }
  }
}

TEST(Backend, F64AndUnprovenEntriesShareTheGrsImplementation) {
  // binary64 is the host width: the fast table must be the Grs table. The
  // unproven scalar entries (sign injection, from_int*) keep the Grs
  // pointers too.
  EXPECT_EQ(fast(FpFormat::F64).add, grs(FpFormat::F64).add);
  EXPECT_EQ(fast(FpFormat::F64).fma, grs(FpFormat::F64).fma);
  EXPECT_EQ(fast(FpFormat::F16).sgnj, grs(FpFormat::F16).sgnj);
  EXPECT_EQ(fast(FpFormat::F8).from_int32, grs(FpFormat::F8).from_int32);
  // And the accelerated entries really are rebound.
  EXPECT_NE(fast(FpFormat::F8).add, grs(FpFormat::F8).add);
  EXPECT_NE(fast(FpFormat::F16).add, grs(FpFormat::F16).add);
  EXPECT_NE(fast(FpFormat::F16).fma, grs(FpFormat::F16).fma);
  EXPECT_NE(fast(FpFormat::F32).div, grs(FpFormat::F32).div);
}

// ---- guarded-exact fma / mac / dotp ----------------------------------------

template <class F>
void check_fma_format(FpFormat tag, int fuzz_triples) {
  const RtOps& g = grs(tag);
  const RtOps& f = fast(tag);
  const auto vals = boundary_values<F>();
  for (const RoundingMode rm : kAllRoundingModes) {
    // Boundary triples: all pairs from the set, with c sweeping a stride so
    // the product/addend span crosses the exactness guard both ways.
    for (std::size_t i = 0; i < vals.size(); ++i) {
      for (std::size_t j = 0; j < vals.size(); ++j) {
        const std::uint64_t c = vals[(i * 7 + j * 13 + 5) % vals.size()];
        Flags fg, ff;
        ASSERT_EQ(g.fma(vals[i], vals[j], c, rm, fg),
                  f.fma(vals[i], vals[j], c, rm, ff))
            << "fma a=0x" << std::hex << vals[i] << " b=0x" << vals[j]
            << " c=0x" << c << " rm=" << fp::rounding_mode_name(rm);
        ASSERT_EQ(fg.bits, ff.bits)
            << "fma flags a=0x" << std::hex << vals[i] << " b=0x" << vals[j]
            << " c=0x" << c << " rm=" << fp::rounding_mode_name(rm);
      }
    }
    for (int i = 0; i < fuzz_triples; ++i) {
      const std::uint64_t a = random_bits<F>().bits;
      const std::uint64_t b = random_bits<F>().bits;
      const std::uint64_t c = random_bits<F>().bits;
      Flags fg, ff;
      ASSERT_EQ(g.fma(a, b, c, rm, fg), f.fma(a, b, c, rm, ff))
          << "fma a=0x" << std::hex << a << " b=0x" << b << " c=0x" << c
          << " rm=" << fp::rounding_mode_name(rm);
      ASSERT_EQ(fg.bits, ff.bits)
          << "fma flags a=0x" << std::hex << a << " b=0x" << b << " c=0x" << c
          << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TEST(HostFastVsGrs, FmaBinary8Exhaustive) {
  // binary8's span always fits, so the fast fma never delegates on finite
  // non-zero operands: check the whole operand cube at a fixed addend grid.
  const RtOps& g = grs(FpFormat::F8);
  const RtOps& f = fast(FpFormat::F8);
  for (const RoundingMode rm : kAllRoundingModes) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        for (unsigned c = (a + b) % 8; c < 256; c += 8) {
          Flags fg, ff;
          ASSERT_EQ(g.fma(a, b, c, rm, fg), f.fma(a, b, c, rm, ff))
              << "fma a=0x" << std::hex << a << " b=0x" << b << " c=0x" << c
              << " rm=" << fp::rounding_mode_name(rm);
          ASSERT_EQ(fg.bits, ff.bits)
              << "fma flags a=0x" << std::hex << a << " b=0x" << b << " c=0x"
              << c << " rm=" << fp::rounding_mode_name(rm);
        }
      }
    }
  }
}

TEST(HostFastVsGrs, FmaBinary16) {
  check_fma_format<Binary16>(FpFormat::F16, 30'000);
}

TEST(HostFastVsGrs, FmaBinary16Alt) {
  check_fma_format<Binary16Alt>(FpFormat::F16Alt, 30'000);
}

TEST(HostFastVsGrs, FmaBinary32) {
  check_fma_format<Binary32>(FpFormat::F32, 60'000);
}

TEST(HostFastVsGrs, FmaBinary32AccumulationShapes) {
  // The guard's sweet spot: |a*b| ~ |c|. Build triples whose product and
  // addend exponents are deliberately close, where the fast path must take
  // (not delegate) the exact branch and still agree bit-for-bit.
  const RtOps& g = grs(FpFormat::F32);
  const RtOps& f = fast(FpFormat::F32);
  for (const RoundingMode rm : kAllRoundingModes) {
    for (int i = 0; i < 60'000; ++i) {
      const auto a = random_finite<fp::Binary32>();
      const auto b = random_finite<fp::Binary32>();
      // c's exponent field ~ ea + eb - bias (+/- 2): addend aligned with
      // the product.
      const int ea = a.bits >> 23 & 0xff ? int(a.bits >> 23 & 0xff) : 1;
      const int eb = b.bits >> 23 & 0xff ? int(b.bits >> 23 & 0xff) : 1;
      int ec = ea + eb - 127 + static_cast<int>(rng()() % 5) - 2;
      ec = std::min(std::max(ec, 0), 254);
      const std::uint64_t c =
          (rng()() & 0x807fffffu) | (static_cast<std::uint32_t>(ec) << 23);
      Flags fg, ff;
      ASSERT_EQ(g.fma(a.bits, b.bits, c, rm, fg),
                f.fma(a.bits, b.bits, c, rm, ff))
          << "fma a=0x" << std::hex << a.bits << " b=0x" << b.bits << " c=0x"
          << c << " rm=" << fp::rounding_mode_name(rm);
      ASSERT_EQ(fg.bits, ff.bits)
          << "fma flags a=0x" << std::hex << a.bits << " b=0x" << b.bits
          << " c=0x" << c << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TEST(HostFastVsGrs, VecMacAndDotpMatch) {
  for (const FpFormat tag : {FpFormat::F8, FpFormat::F16, FpFormat::F16Alt}) {
    const RtVecOps& vg = fp::rt_vec_ops(tag, MathBackend::Grs);
    const RtVecOps& vf = fp::rt_vec_ops(tag, MathBackend::Fast);
    for (const RoundingMode rm : kAllRoundingModes) {
      for (int i = 0; i < 30'000; ++i) {
        const std::uint64_t a = rng()();
        const std::uint64_t b = rng()();
        const std::uint64_t d = rng()();
        const int lanes = 1 + static_cast<int>(rng()() % 4);
        const bool rep = (rng()() & 1) != 0;
        Flags fg, ff;
        ASSERT_EQ(vg.mac(a, b, d, lanes, rep, rm, fg),
                  vf.mac(a, b, d, lanes, rep, rm, ff))
            << fp::format_name(tag) << " mac a=0x" << std::hex << a << " b=0x"
            << b << " d=0x" << d;
        ASSERT_EQ(fg.bits, ff.bits)
            << fp::format_name(tag) << " mac flags a=0x" << std::hex << a
            << " b=0x" << b << " d=0x" << d;

        fg.clear();
        ff.clear();
        ASSERT_EQ(vg.dotp(a, b, d & 0xffffffffu, lanes, rep, rm, fg),
                  vf.dotp(a, b, d & 0xffffffffu, lanes, rep, rm, ff))
            << fp::format_name(tag) << " dotp a=0x" << std::hex << a
            << " b=0x" << b << " acc=0x" << (d & 0xffffffffu);
        ASSERT_EQ(fg.bits, ff.bits)
            << fp::format_name(tag) << " dotp flags a=0x" << std::hex << a
            << " b=0x" << b << " acc=0x" << (d & 0xffffffffu);
      }
    }
  }
}

// ---- posit8: exhaustive LUT vs integer-exact core --------------------------

TEST(Posit8LutVsGrs, EveryBinaryTableEntryEveryMode) {
  // Posit arithmetic ignores the rounding mode, but the table contract is
  // still checked under every mode: a fast entry that accidentally consulted
  // rm would diverge here.
  for (const RoundingMode rm : kAllRoundingModes) {
    for (const auto& op : kF8BinOps) {
      const fp::RtBinFn g = grs(FpFormat::P8).*(op.entry);
      const fp::RtBinFn f = fast(FpFormat::P8).*(op.entry);
      for (unsigned a = 0; a < 256; ++a) {
        for (unsigned b = 0; b < 256; ++b) {
          check_bin(g, f, a, b, rm, op.name);
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(Posit8LutVsGrs, SqrtCompareAndClassifyTables) {
  for (unsigned a = 0; a < 256; ++a) {
    Flags fg, ff;
    ASSERT_EQ(grs(FpFormat::P8).sqrt(a, RoundingMode::RNE, fg),
              fast(FpFormat::P8).sqrt(a, RoundingMode::RNE, ff))
        << "sqrt a=0x" << std::hex << a;
    ASSERT_EQ(fg.bits, ff.bits) << "sqrt flags a=0x" << std::hex << a;
    ASSERT_EQ(grs(FpFormat::P8).classify(a), fast(FpFormat::P8).classify(a))
        << "classify a=0x" << std::hex << a;
    for (unsigned b = 0; b < 256; ++b) {
      for (const auto entry : {&RtOps::feq, &RtOps::flt, &RtOps::fle}) {
        Flags cg, cf;
        ASSERT_EQ((grs(FpFormat::P8).*entry)(a, b, cg),
                  (fast(FpFormat::P8).*entry)(a, b, cf))
            << "cmp a=0x" << std::hex << a << " b=0x" << b;
        ASSERT_EQ(cg.bits, cf.bits)
            << "cmp flags a=0x" << std::hex << a << " b=0x" << b;
      }
    }
  }
}

TEST(Posit8LutVsGrs, PackedLaneEntries) {
  // Same moving-pattern sweep as the binary8 packed test: lane 0 pair space
  // exhaustive, upper lanes varying, all lane counts and replicate settings.
  const RtVecOps& vg = fp::rt_vec_ops(FpFormat::P8, MathBackend::Grs);
  const RtVecOps& vf = fp::rt_vec_ops(FpFormat::P8, MathBackend::Fast);
  for (const auto entry : {&RtVecOps::add, &RtVecOps::sub, &RtVecOps::mul,
                           &RtVecOps::div, &RtVecOps::min, &RtVecOps::max}) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        const std::uint64_t va = a | (std::uint64_t{b} << 8) |
                                 (std::uint64_t{a ^ 0x80} << 16) |
                                 (std::uint64_t{0x7f} << 24);
        const std::uint64_t vb = b | (std::uint64_t{a} << 8) |
                                 (std::uint64_t{b ^ 0x55} << 16) |
                                 (std::uint64_t{a} << 24);
        const int lanes = 1 + static_cast<int>((a + b) % 4);
        const bool rep = ((a ^ b) & 1) != 0;
        Flags fg, ff;
        ASSERT_EQ((vg.*entry)(va, vb, lanes, rep, RoundingMode::RNE, fg),
                  (vf.*entry)(va, vb, lanes, rep, RoundingMode::RNE, ff))
            << "vec a=0x" << std::hex << va << " b=0x" << vb;
        ASSERT_EQ(fg.bits, ff.bits)
            << "vec flags a=0x" << std::hex << va << " b=0x" << vb;
      }
    }
  }
  for (const auto entry : {&RtVecOps::feq, &RtVecOps::flt, &RtVecOps::fle}) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        const std::uint64_t va = a | (std::uint64_t{b} << 8);
        const std::uint64_t vb = b | (std::uint64_t{a} << 8);
        Flags fg, ff;
        ASSERT_EQ((vg.*entry)(va, vb, 2, fg), (vf.*entry)(va, vb, 2, ff))
            << "vcmp a=0x" << std::hex << va << " b=0x" << vb;
        ASSERT_EQ(fg.bits, ff.bits)
            << "vcmp flags a=0x" << std::hex << va << " b=0x" << vb;
      }
    }
  }
}

TEST(Posit8LutVsGrs, NeverRaisesFlags) {
  // Posit arithmetic is flag-free by construction; both backends must honor
  // that for every table entry the LUTs accelerate.
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      for (const auto& op : kF8BinOps) {
        Flags fl;
        (void)(fast(FpFormat::P8).*(op.entry))(a, b, RoundingMode::RNE, fl);
        ASSERT_EQ(fl.bits, 0u)
            << op.name << " a=0x" << std::hex << a << " b=0x" << b;
      }
    }
  }
}

TEST(Backend, Posit16AndUnprovenPositEntriesShareTheGrsImplementation) {
  // posit16's fast table is the Grs table entry-for-entry (a 2^32 LUT is not
  // worth baking), and posit8's non-LUT entries keep their Grs pointers.
  EXPECT_EQ(fast(FpFormat::P16).add, grs(FpFormat::P16).add);
  EXPECT_EQ(fast(FpFormat::P16).fma, grs(FpFormat::P16).fma);
  EXPECT_EQ(fast(FpFormat::P16).sqrt, grs(FpFormat::P16).sqrt);
  EXPECT_EQ(fast(FpFormat::P16).to_int32, grs(FpFormat::P16).to_int32);
  EXPECT_EQ(fast(FpFormat::P8).fma, grs(FpFormat::P8).fma);
  EXPECT_EQ(fast(FpFormat::P8).sgnj, grs(FpFormat::P8).sgnj);
  EXPECT_EQ(fast(FpFormat::P8).from_int32, grs(FpFormat::P8).from_int32);
  // And the LUT entries really are rebound.
  EXPECT_NE(fast(FpFormat::P8).add, grs(FpFormat::P8).add);
  EXPECT_NE(fast(FpFormat::P8).sqrt, grs(FpFormat::P8).sqrt);
}

TEST(Posit8LutVsGrs, ConvertTables) {
  // Every posit8 convert row/column present in the 7x7 table, both backends.
  for (const FpFormat other :
       {FpFormat::F8, FpFormat::F16, FpFormat::F16Alt, FpFormat::F32,
        FpFormat::F64, FpFormat::P16}) {
    for (const RoundingMode rm : kAllRoundingModes) {
      for (unsigned a = 0; a < 256; ++a) {
        Flags fg, ff;
        ASSERT_EQ(fp::rt_convert_fn(other, FpFormat::P8, MathBackend::Grs)(
                      a, rm, fg),
                  fp::rt_convert_fn(other, FpFormat::P8, MathBackend::Fast)(
                      a, rm, ff))
            << "p8->" << fp::format_name(other) << " a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits)
            << "p8->" << fp::format_name(other) << " flags a=0x" << std::hex
            << a;
      }
      const unsigned src_width = other == FpFormat::F8 ? 8u : 16u;
      const unsigned limit =
          other == FpFormat::F32 || other == FpFormat::F64
              ? 0u  // fuzzed below instead
              : (1u << src_width);
      for (unsigned a = 0; a < limit; ++a) {
        Flags fg, ff;
        ASSERT_EQ(fp::rt_convert_fn(FpFormat::P8, other, MathBackend::Grs)(
                      a, rm, fg),
                  fp::rt_convert_fn(FpFormat::P8, other, MathBackend::Fast)(
                      a, rm, ff))
            << fp::format_name(other) << "->p8 a=0x" << std::hex << a;
        ASSERT_EQ(fg.bits, ff.bits)
            << fp::format_name(other) << "->p8 flags a=0x" << std::hex << a;
      }
    }
  }
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t a32 = rng()() & 0xffffffffu;
    const std::uint64_t a64 = rng()();
    Flags fg, ff;
    ASSERT_EQ(
        fp::rt_convert_fn(FpFormat::P8, FpFormat::F32, MathBackend::Grs)(
            a32, RoundingMode::RNE, fg),
        fp::rt_convert_fn(FpFormat::P8, FpFormat::F32, MathBackend::Fast)(
            a32, RoundingMode::RNE, ff))
        << "f32->p8 a=0x" << std::hex << a32;
    ASSERT_EQ(
        fp::rt_convert_fn(FpFormat::P8, FpFormat::F64, MathBackend::Grs)(
            a64, RoundingMode::RNE, fg),
        fp::rt_convert_fn(FpFormat::P8, FpFormat::F64, MathBackend::Fast)(
            a64, RoundingMode::RNE, ff))
        << "f64->p8 a=0x" << std::hex << a64;
  }
}

// ---- exsdotp: widening dot-product entries ---------------------------------

TEST(HostFastVsGrs, ExSdotpEntriesMatch) {
  // The fast backend rebinds exsdotp for binary8 (widen to f16) and both
  // 16-bit formats (widen to f32); posit8 keeps the Grs entry. Fuzz all
  // four with full 32-bit packed registers, wide accumulators, every lane
  // count, both replicate settings, every rounding mode.
  for (const FpFormat tag :
       {FpFormat::F8, FpFormat::F16, FpFormat::F16Alt, FpFormat::P8}) {
    const RtVecOps& vg = fp::rt_vec_ops(tag, MathBackend::Grs);
    const RtVecOps& vf = fp::rt_vec_ops(tag, MathBackend::Fast);
    const int max_lanes = tag == FpFormat::F8 || tag == FpFormat::P8 ? 4 : 2;
    for (const RoundingMode rm : kAllRoundingModes) {
      for (int i = 0; i < 30'000; ++i) {
        const std::uint64_t a = rng()() & 0xffffffffu;
        const std::uint64_t b = rng()() & 0xffffffffu;
        const std::uint64_t acc = rng()() & 0xffffffffu;
        const int lanes = 2 * (1 + static_cast<int>(rng()() % (max_lanes / 2)));
        const bool rep = (rng()() & 1) != 0;
        Flags fg, ff;
        ASSERT_EQ(vg.exsdotp(a, b, acc, lanes, rep, rm, fg),
                  vf.exsdotp(a, b, acc, lanes, rep, rm, ff))
            << fp::format_name(tag) << " exsdotp a=0x" << std::hex << a
            << " b=0x" << b << " acc=0x" << acc << " lanes=" << lanes
            << " rep=" << rep;
        ASSERT_EQ(fg.bits, ff.bits)
            << fp::format_name(tag) << " exsdotp flags a=0x" << std::hex << a
            << " b=0x" << b << " acc=0x" << acc;
      }
    }
  }
}

TEST(Backend, ExSdotpUnsupportedFormatsShareTheTrapEntry) {
  // binary64 and posit16 have no one-step-wider neighbour: both backends
  // must keep the same (trapping) entry, so a decoder bug shows up as a
  // loud failure instead of a silent backend divergence.
  EXPECT_EQ(fast(FpFormat::F64).add, grs(FpFormat::F64).add);  // sanity
  EXPECT_EQ(fp::rt_vec_ops(FpFormat::F64, MathBackend::Fast).exsdotp,
            fp::rt_vec_ops(FpFormat::F64, MathBackend::Grs).exsdotp);
  EXPECT_EQ(fp::rt_vec_ops(FpFormat::P16, MathBackend::Fast).exsdotp,
            fp::rt_vec_ops(FpFormat::P16, MathBackend::Grs).exsdotp);
  // posit8's exsdotp is served by the Grs implementation under both names.
  EXPECT_EQ(fp::rt_vec_ops(FpFormat::P8, MathBackend::Fast).exsdotp,
            fp::rt_vec_ops(FpFormat::P8, MathBackend::Grs).exsdotp);
  // The rebound fast entries really are distinct implementations.
  EXPECT_NE(fp::rt_vec_ops(FpFormat::F8, MathBackend::Fast).exsdotp,
            fp::rt_vec_ops(FpFormat::F8, MathBackend::Grs).exsdotp);
  EXPECT_NE(fp::rt_vec_ops(FpFormat::F16, MathBackend::Fast).exsdotp,
            fp::rt_vec_ops(FpFormat::F16, MathBackend::Grs).exsdotp);
}

}  // namespace
}  // namespace sfrv::test
