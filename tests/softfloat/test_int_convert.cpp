// FP <-> int32/uint32 conversions with RISC-V clamping and flag semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

template <class F>
struct IntConvert : public ::testing::Test {};

using AllFormats =
    ::testing::Types<Binary8, Binary16, Binary16Alt, Binary32, Binary64>;
TYPED_TEST_SUITE(IntConvert, AllFormats);

/// Host-side reference for FP -> int32 with RISC-V clamping.
std::int32_t ref_to_int32(double v, RoundingMode rm, bool& invalid) {
  invalid = false;
  if (std::isnan(v)) {
    invalid = true;
    return std::numeric_limits<std::int32_t>::max();
  }
  double r;
  switch (rm) {
    case RoundingMode::RNE: r = std::nearbyint(v); break;  // host default RNE
    case RoundingMode::RTZ: r = std::trunc(v); break;
    case RoundingMode::RDN: r = std::floor(v); break;
    case RoundingMode::RUP: r = std::ceil(v); break;
    case RoundingMode::RMM: r = std::round(v); break;
  }
  if (r > 2147483647.0) {
    invalid = true;
    return std::numeric_limits<std::int32_t>::max();
  }
  if (r < -2147483648.0) {
    invalid = true;
    return std::numeric_limits<std::int32_t>::min();
  }
  return static_cast<std::int32_t>(r);
}

TYPED_TEST(IntConvert, ToInt32MatchesReference) {
  using F = TypeParam;
  for (RoundingMode rm : kAllRoundingModes) {
    for (int i = 0; i < 50'000; ++i) {
      const auto a = random_bits<F>();
      Flags fl;
      const auto got = fp::to_int32(a, rm, fl);
      bool invalid = false;
      const auto want = ref_to_int32(fp::to_double(a), rm, invalid);
      ASSERT_EQ(got, want)
          << "bits=0x" << std::hex << static_cast<std::uint64_t>(a.bits)
          << " rm=" << fp::rounding_mode_name(rm);
      ASSERT_EQ(fl.test(Flags::NV), invalid)
          << "bits=0x" << std::hex << static_cast<std::uint64_t>(a.bits);
    }
  }
}

TYPED_TEST(IntConvert, ToUint32Negative) {
  using F = TypeParam;
  Flags fl;
  // -1.0 converts to 0 with NV.
  EXPECT_EQ(fp::to_uint32(Float<F>::one(true), RoundingMode::RTZ, fl), 0u);
  EXPECT_TRUE(fl.test(Flags::NV));
  // -0.25 truncates to 0: inexact but valid.
  fl.clear();
  const auto small_neg = fp::from_double<F>(-0.25);
  EXPECT_EQ(fp::to_uint32(small_neg, RoundingMode::RTZ, fl), 0u);
  EXPECT_FALSE(fl.test(Flags::NV));
  EXPECT_TRUE(fl.test(Flags::NX));
  // -0.0 converts to 0 exactly.
  fl.clear();
  EXPECT_EQ(fp::to_uint32(Float<F>::zero(true), RoundingMode::RNE, fl), 0u);
  EXPECT_EQ(fl.bits, 0u);
}

TYPED_TEST(IntConvert, NanAndInfClamp) {
  using F = TypeParam;
  Flags fl;
  EXPECT_EQ(fp::to_int32(Float<F>::quiet_nan(), RoundingMode::RNE, fl),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(fl.test(Flags::NV));
  fl.clear();
  EXPECT_EQ(fp::to_int32(Float<F>::inf(false), RoundingMode::RNE, fl),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(fp::to_int32(Float<F>::inf(true), RoundingMode::RNE, fl),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(fp::to_uint32(Float<F>::inf(true), RoundingMode::RNE, fl), 0u);
  EXPECT_EQ(fp::to_uint32(Float<F>::quiet_nan(), RoundingMode::RNE, fl),
            std::numeric_limits<std::uint32_t>::max());
}

TYPED_TEST(IntConvert, FromInt32RoundTripSmall) {
  using F = TypeParam;
  // Integers up to the significand width convert exactly and round-trip.
  const int maxexact = (1 << std::min(F::man_bits + 1, 10)) - 1;
  for (int v = -maxexact; v <= maxexact; ++v) {
    Flags fl;
    const auto f = fp::from_int32<F>(v, RoundingMode::RNE, fl);
    EXPECT_EQ(fl.bits, 0u) << v;
    EXPECT_EQ(fp::to_double(f), static_cast<double>(v)) << v;
    const auto back = fp::to_int32(f, RoundingMode::RNE, fl);
    EXPECT_EQ(back, v);
  }
}

TYPED_TEST(IntConvert, FromInt32MatchesHost) {
  using F = TypeParam;
  for (RoundingMode rm : kHostRoundingModes) {
    for (int i = 0; i < 50'000; ++i) {
      const auto v = static_cast<std::int32_t>(rng()());
      Flags fl;
      const auto got = fp::from_int32<F>(v, rm, fl);
      Flags fl2;
      const auto want = fp::from_double<F>(static_cast<double>(v), rm, fl2);
      ASSERT_TRUE(same_value(got, want))
          << v << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TYPED_TEST(IntConvert, FromUint32MatchesHost) {
  using F = TypeParam;
  for (RoundingMode rm : kHostRoundingModes) {
    for (int i = 0; i < 50'000; ++i) {
      const auto v = static_cast<std::uint32_t>(rng()());
      Flags fl;
      const auto got = fp::from_uint32<F>(v, rm, fl);
      Flags fl2;
      const auto want = fp::from_double<F>(static_cast<double>(v), rm, fl2);
      ASSERT_TRUE(same_value(got, want))
          << v << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TEST(IntConvertEdge, Uint32MaxIntoBinary32) {
  // 0xffffffff rounds to 2^32 in binary32 (inexact).
  Flags fl;
  const auto f = fp::from_uint32<Binary32>(0xffffffffu, RoundingMode::RNE, fl);
  EXPECT_TRUE(fl.test(Flags::NX));
  EXPECT_EQ(fp::to_double(f), 4294967296.0);
}

TEST(IntConvertEdge, Int32MinExactInBinary32) {
  Flags fl;
  const auto f = fp::from_int32<Binary32>(std::numeric_limits<std::int32_t>::min(),
                                          RoundingMode::RNE, fl);
  EXPECT_EQ(fl.bits, 0u);
  EXPECT_EQ(fp::to_double(f), -2147483648.0);
  const auto back = fp::to_int32(f, RoundingMode::RNE, fl);
  EXPECT_EQ(back, std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(fl.bits, 0u);
}

TEST(IntConvertEdge, Binary8Saturation) {
  // binary8 max finite is 57344; large ints overflow to inf on the FP side
  // but FP->int of max finite stays in range.
  Flags fl;
  const auto maxf = fp::F8::max_finite(false);
  EXPECT_EQ(fp::to_int32(maxf, RoundingMode::RNE, fl), 57344);
  EXPECT_EQ(fl.bits, 0u);
  fl.clear();
  const auto f = fp::from_int32<Binary8>(100000, RoundingMode::RNE, fl);
  EXPECT_TRUE(f.is_inf());
  EXPECT_TRUE(fl.test(Flags::OF));
}

// ---- exhaustive saturation/flag audit (f8 / f16 / f16alt) -------------------
//
// The RISC-V F-extension flag contract for FCVT.W/WU, audited value-by-value:
//  * NaN / infinity / out-of-range-after-rounding results raise NV alone and
//    return the mandated clamp value -- the NX of any discarded fraction is
//    suppressed (the operation is invalid, not inexact).
//  * In-range results raise NX exactly when rounding discarded bits,
//    including negative inputs of FCVT.WU that round to 0 (those are valid).
// The oracle computes the exact rounded integer from the (exactly
// representable) double value; every bit pattern of the 8/16-bit formats is
// checked under every rounding mode, full fflags byte compared.

/// Exact integer rounding of a finite double in mode `rm`.
double ref_round_integer(double v, RoundingMode rm) {
  switch (rm) {
    case RoundingMode::RNE: return std::nearbyint(v);  // host default mode
    case RoundingMode::RTZ: return std::trunc(v);
    case RoundingMode::RDN: return std::floor(v);
    case RoundingMode::RUP: return std::ceil(v);
    case RoundingMode::RMM: return std::round(v);  // ties away from zero
  }
  return v;
}

struct IntCvtRef {
  std::int64_t val = 0;  ///< result, reinterpreted by the caller
  std::uint8_t flags = 0;
};

IntCvtRef ref_to_int32_flags(double v, RoundingMode rm) {
  if (std::isnan(v)) return {std::numeric_limits<std::int32_t>::max(), Flags::NV};
  if (std::isinf(v)) {
    return {v < 0 ? std::numeric_limits<std::int32_t>::min()
                  : std::numeric_limits<std::int32_t>::max(),
            Flags::NV};
  }
  const double r = ref_round_integer(v, rm);
  if (r > 2147483647.0) {
    return {std::numeric_limits<std::int32_t>::max(), Flags::NV};
  }
  if (r < -2147483648.0) {
    return {std::numeric_limits<std::int32_t>::min(), Flags::NV};
  }
  return {static_cast<std::int64_t>(r),
          static_cast<std::uint8_t>(r != v ? Flags::NX : 0)};
}

IntCvtRef ref_to_uint32_flags(double v, RoundingMode rm) {
  if (std::isnan(v)) {
    return {static_cast<std::int64_t>(0xffffffffu), Flags::NV};
  }
  if (std::isinf(v)) {
    return {v < 0 ? 0 : static_cast<std::int64_t>(0xffffffffu), Flags::NV};
  }
  const double r = ref_round_integer(v, rm);
  if (r > 4294967295.0) {
    return {static_cast<std::int64_t>(0xffffffffu), Flags::NV};
  }
  if (r < 0.0) return {0, Flags::NV};  // rounded to a negative integer
  return {static_cast<std::int64_t>(r),
          static_cast<std::uint8_t>(r != v ? Flags::NX : 0)};
}

template <class F>
void audit_int_convert_format() {
  const unsigned patterns = 1u << F::width;
  for (const RoundingMode rm : kAllRoundingModes) {
    for (unsigned a = 0; a < patterns; ++a) {
      const auto fa = Float<F>::from_bits(a);
      const double v = fp::to_double(fa);

      Flags fl;
      const std::int32_t got_i = fp::to_int32(fa, rm, fl);
      const IntCvtRef want_i = ref_to_int32_flags(v, rm);
      ASSERT_EQ(got_i, static_cast<std::int32_t>(want_i.val))
          << F::name << " to_int32 a=0x" << std::hex << a
          << " rm=" << fp::rounding_mode_name(rm);
      ASSERT_EQ(fl.bits, want_i.flags)
          << F::name << " to_int32 flags a=0x" << std::hex << a
          << " rm=" << fp::rounding_mode_name(rm) << " v=" << v;

      fl.clear();
      const std::uint32_t got_u = fp::to_uint32(fa, rm, fl);
      const IntCvtRef want_u = ref_to_uint32_flags(v, rm);
      ASSERT_EQ(got_u, static_cast<std::uint32_t>(want_u.val))
          << F::name << " to_uint32 a=0x" << std::hex << a
          << " rm=" << fp::rounding_mode_name(rm);
      ASSERT_EQ(fl.bits, want_u.flags)
          << F::name << " to_uint32 flags a=0x" << std::hex << a
          << " rm=" << fp::rounding_mode_name(rm) << " v=" << v;
    }
  }
}

TEST(IntConvertAudit, Binary8AllValuesAllModes) {
  audit_int_convert_format<Binary8>();
}

TEST(IntConvertAudit, Binary16AllValuesAllModes) {
  audit_int_convert_format<Binary16>();
}

TEST(IntConvertAudit, Binary16AltAllValuesAllModes) {
  audit_int_convert_format<Binary16Alt>();
}

TEST(IntConvertAudit, FastBackendTablesAgree) {
  // The LUT-backed f8 entries must reproduce the audited semantics exactly
  // (the backend suite checks fast==grs; this pins fast==oracle directly).
  const fp::RtOps& f = fp::rt_ops(FpFormat::F8, fp::MathBackend::Fast);
  for (const RoundingMode rm : kAllRoundingModes) {
    for (unsigned a = 0; a < 256; ++a) {
      const double v = fp::to_double(fp::F8::from_bits(a));
      Flags fl;
      const std::int32_t got = f.to_int32(a, rm, fl);
      const IntCvtRef want = ref_to_int32_flags(v, rm);
      ASSERT_EQ(got, static_cast<std::int32_t>(want.val)) << std::hex << a;
      ASSERT_EQ(fl.bits, want.flags) << std::hex << a;
    }
  }
}

}  // namespace
}  // namespace sfrv::test
