// Exhaustive verification of binary16 unary operations, conversions and
// comparisons against the host-double oracle: all 65536 bit patterns per
// host-representable rounding mode. The binary-op space (65536^2) is covered
// pairwise elsewhere (test_f16_bf16_arith.cpp randomized, and the backend
// differential suite); here every *single-operand* behaviour is pinned
// exactly, extending the binary8 exhaustive suite one format up.
#include <gtest/gtest.h>

#include <cmath>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

using fp::BF16;
using fp::F16;
using fp::F32;
using fp::F8;

class F16Exhaustive : public ::testing::TestWithParam<RoundingMode> {};

TEST_P(F16Exhaustive, SqrtAllValues) {
  // Host double sqrt is correctly rounded in the current rounding direction,
  // and 53 >= 2p + 2 makes the second rounding innocuous (see
  // tests/test_util.hpp header), so sqrt-then-narrow is an exact oracle.
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    Flags fl;
    const F16 got = fp::sqrt(fa, rm, fl);
    double r;
    {
      HostRounding guard(rm);
      r = fence_fp(std::sqrt(fence_fp(fp::to_double(fa))));
    }
    Flags fl2;
    const F16 want = fp::from_double<fp::Binary16>(r, rm, fl2);
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << a << " rm=" << fp::rounding_mode_name(rm)
        << " got=0x" << got.bits << " want=0x" << want.bits;
  }
}

TEST_P(F16Exhaustive, NarrowToF8MatchesOracle) {
  // binary16 -> binary8: every source pattern, result and flags, against a
  // single correctly rounded narrowing of the exact double value.
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    Flags fl;
    const F8 got = fp::convert<fp::Binary8>(fa, rm, fl);
    Flags fl2;
    const F8 want = fp::from_double<fp::Binary8>(fp::to_double(fa), rm, fl2);
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << a << " rm=" << fp::rounding_mode_name(rm);
    // Flag oracle: the same value rounded once raises the same NX/UF/OF.
    // (NaN inputs excluded: to_double() quiets them, hiding the NV.)
    if (!fa.is_nan()) {
      ASSERT_EQ(fl.bits, fl2.bits)
          << "flags a=0x" << std::hex << a << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

TEST_P(F16Exhaustive, NarrowToBf16MatchesOracle) {
  // binary16 -> binary16alt loses mantissa bits (10 -> 7) but gains range,
  // so results can round but never overflow; oracle as above.
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    Flags fl;
    const BF16 got = fp::convert<fp::Binary16Alt>(fa, rm, fl);
    Flags fl2;
    const BF16 want =
        fp::from_double<fp::Binary16Alt>(fp::to_double(fa), rm, fl2);
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << a << " rm=" << fp::rounding_mode_name(rm);
    if (!fa.is_nan()) {
      ASSERT_EQ(fl.bits, fl2.bits)
          << "flags a=0x" << std::hex << a << " rm="
          << fp::rounding_mode_name(rm);
    }
  }
}

TEST_P(F16Exhaustive, WidenToF32IsExact) {
  // Widening to binary32 covers both more precision and more range: every
  // value converts exactly, with flags only for a signaling NaN input.
  const RoundingMode rm = GetParam();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    Flags fl;
    const F32 got = fp::convert<fp::Binary32>(fa, rm, fl);
    Flags fl2;
    const F32 want = fp::from_double<fp::Binary32>(fp::to_double(fa), rm, fl2);
    ASSERT_TRUE(same_value(got, want)) << "a=0x" << std::hex << a;
    if (!fa.is_nan()) {
      ASSERT_EQ(fl.bits, 0u) << "widening raised flags, a=0x" << std::hex << a;
      // Round-trip: exactness means narrowing back recovers the input.
      Flags fl3;
      const F16 back = fp::convert<fp::Binary16>(got, RoundingMode::RNE, fl3);
      ASSERT_TRUE(same_value(fa, back)) << "a=0x" << std::hex << a;
      ASSERT_EQ(fl3.bits, 0u) << "round-trip raised flags, a=0x" << std::hex << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllHostModes, F16Exhaustive,
                         ::testing::ValuesIn(kHostRoundingModes),
                         [](const auto& info) {
                           return std::string(
                               fp::rounding_mode_name(info.param));
                         });

/// Second operands for the comparison sweep: the full classification space
/// plus values adjacent to every first operand's neighbourhood boundaries.
std::vector<F16> compare_partners() {
  std::vector<F16> v;
  for (const std::uint16_t bits :
       {std::uint16_t{0x0000}, std::uint16_t{0x8000},   // +-0
        std::uint16_t{0x0001}, std::uint16_t{0x8001},   // min subnormals
        std::uint16_t{0x03ff}, std::uint16_t{0x83ff},   // max subnormals
        std::uint16_t{0x0400}, std::uint16_t{0x8400},   // min normals
        std::uint16_t{0x3c00}, std::uint16_t{0xbc00},   // +-1
        std::uint16_t{0x3c01}, std::uint16_t{0x4000},   // 1+ulp, 2
        std::uint16_t{0x7bff}, std::uint16_t{0xfbff},   // max finite
        std::uint16_t{0x7c00}, std::uint16_t{0xfc00},   // +-inf
        std::uint16_t{0x7e00}, std::uint16_t{0xfe00},   // quiet NaNs
        std::uint16_t{0x7d00}, std::uint16_t{0x7c01}}) {  // signaling NaNs
    v.push_back(F16{bits});
  }
  for (int i = 0; i < 44; ++i) {
    v.push_back(F16::from_bits(rng()()));
  }
  return v;
}

TEST(F16Exhaustive, CompareMatchesHostAllValues) {
  const auto partners = compare_partners();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    const double da = fp::to_double(fa);
    for (const F16 fb : partners) {
      const double db = fp::to_double(fb);
      Flags fl;
      ASSERT_EQ(fp::feq(fa, fb, fl), da == db) << std::hex << a << " " << fb.bits;
      ASSERT_EQ(fp::flt(fa, fb, fl), da < db) << std::hex << a << " " << fb.bits;
      ASSERT_EQ(fp::fle(fa, fb, fl), da <= db) << std::hex << a << " " << fb.bits;
    }
  }
}

TEST(F16Exhaustive, CompareFlagSemanticsAllValues) {
  // IEEE 754 / RISC-V F: flt/fle signal on any NaN, feq only on sNaN.
  const auto partners = compare_partners();
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    for (const F16 fb : partners) {
      const bool any_nan = fa.is_nan() || fb.is_nan();
      const bool any_snan = fa.is_signaling_nan() || fb.is_signaling_nan();
      Flags fe, fl, fle;
      (void)fp::feq(fa, fb, fe);
      (void)fp::flt(fa, fb, fl);
      (void)fp::fle(fa, fb, fle);
      ASSERT_EQ(fe.bits, any_snan ? Flags::NV : 0)
          << std::hex << a << " " << fb.bits;
      ASSERT_EQ(fl.bits, any_nan ? Flags::NV : 0)
          << std::hex << a << " " << fb.bits;
      ASSERT_EQ(fle.bits, any_nan ? Flags::NV : 0)
          << std::hex << a << " " << fb.bits;
    }
  }
}

TEST(F16Exhaustive, ClassifyMatchesStructure) {
  for (unsigned a = 0; a < 0x10000; ++a) {
    const F16 fa = F16::from_bits(a);
    const std::uint16_t cls = fp::classify(fa);
    // Exactly one class bit, and it agrees with the predicate structure.
    ASSERT_EQ(cls & (cls - 1), 0) << std::hex << a;
    ASSERT_NE(cls, 0) << std::hex << a;
    const double da = fp::to_double(fa);
    if (fa.is_nan()) {
      ASSERT_TRUE(cls & 0x300) << std::hex << a;
      ASSERT_TRUE(std::isnan(da)) << std::hex << a;
    } else if (std::isinf(da)) {
      ASSERT_EQ(cls, fa.sign() ? 0x001u : 0x080u) << std::hex << a;
    } else if (da == 0) {
      ASSERT_EQ(cls, fa.sign() ? 0x008u : 0x010u) << std::hex << a;
    } else if (fa.is_subnormal()) {
      ASSERT_EQ(cls, fa.sign() ? 0x004u : 0x020u) << std::hex << a;
    } else {
      ASSERT_EQ(cls, fa.sign() ? 0x002u : 0x040u) << std::hex << a;
    }
  }
}

}  // namespace
}  // namespace sfrv::test
