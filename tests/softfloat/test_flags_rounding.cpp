// Exception-flag semantics (overflow, underflow, inexact, invalid, divide by
// zero) and rounding-mode behaviour at format boundaries.
#include <gtest/gtest.h>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

template <class F>
struct FlagTests : public ::testing::Test {};

using AllFormats =
    ::testing::Types<Binary8, Binary16, Binary16Alt, Binary32, Binary64>;
TYPED_TEST_SUITE(FlagTests, AllFormats);

TYPED_TEST(FlagTests, OverflowBehaviourPerRoundingMode) {
  using F = TypeParam;
  const auto maxf = Float<F>::max_finite(false);
  Flags fl;
  // max * max overflows in every format.
  const auto r_rne = fp::mul(maxf, maxf, RoundingMode::RNE, fl);
  EXPECT_TRUE(r_rne.is_inf());
  EXPECT_TRUE(fl.test(Flags::OF));
  EXPECT_TRUE(fl.test(Flags::NX));

  // RTZ clamps to max finite instead of infinity.
  fl.clear();
  const auto r_rtz = fp::mul(maxf, maxf, RoundingMode::RTZ, fl);
  EXPECT_EQ(r_rtz.bits, maxf.bits);
  EXPECT_TRUE(fl.test(Flags::OF));

  // RDN: positive overflow clamps, negative overflow goes to -inf.
  fl.clear();
  EXPECT_EQ(fp::mul(maxf, maxf, RoundingMode::RDN, fl).bits, maxf.bits);
  const auto nmax = Float<F>::max_finite(true);
  fl.clear();
  EXPECT_TRUE(fp::mul(maxf, nmax, RoundingMode::RDN, fl).is_inf());
  // RUP mirrored.
  fl.clear();
  EXPECT_TRUE(fp::mul(maxf, maxf, RoundingMode::RUP, fl).is_inf());
  fl.clear();
  EXPECT_EQ(fp::mul(maxf, nmax, RoundingMode::RUP, fl).bits, nmax.bits);
}

TYPED_TEST(FlagTests, UnderflowOnTinyInexactResult) {
  using F = TypeParam;
  const auto minsub = Float<F>::min_subnormal(false);
  const auto half = fp::from_double<F>(0.5);
  Flags fl;
  // min_subnormal * 0.5 is tiny and inexact: UF + NX, rounds to zero (RNE).
  const auto r = fp::mul(minsub, half, RoundingMode::RNE, fl);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(fl.test(Flags::UF));
  EXPECT_TRUE(fl.test(Flags::NX));
}

TYPED_TEST(FlagTests, ExactSubnormalResultRaisesNothing) {
  using F = TypeParam;
  // min_subnormal + min_subnormal = 2*min_subnormal exactly: no flags.
  const auto minsub = Float<F>::min_subnormal(false);
  Flags fl;
  const auto r = fp::add(minsub, minsub, RoundingMode::RNE, fl);
  EXPECT_EQ(fl.bits, 0u);
  EXPECT_EQ(fp::to_double(r), 2.0 * fp::to_double(minsub));
}

TYPED_TEST(FlagTests, InexactOnRounding) {
  using F = TypeParam;
  // 1 + ulp/2 is inexact in every format: 1 + 2^-(man_bits+1).
  const auto one = Float<F>::one();
  const auto tiny = fp::from_double<F>(std::ldexp(1.0, -(F::man_bits + 1)));
  Flags fl;
  const auto r = fp::add(one, tiny, RoundingMode::RNE, fl);
  EXPECT_EQ(r.bits, one.bits) << "halfway rounds to even (1.0)";
  EXPECT_TRUE(fl.test(Flags::NX));
  EXPECT_FALSE(fl.test(Flags::UF));
  EXPECT_FALSE(fl.test(Flags::OF));
}

TYPED_TEST(FlagTests, ExactOperationsRaiseNothing) {
  using F = TypeParam;
  Flags fl;
  const auto two = fp::from_double<F>(2.0);
  const auto three = fp::from_double<F>(3.0);
  (void)fp::add(two, three, RoundingMode::RNE, fl);
  (void)fp::mul(two, three, RoundingMode::RNE, fl);
  (void)fp::sub(three, two, RoundingMode::RNE, fl);
  (void)fp::div(three, fp::from_double<F>(1.5), RoundingMode::RNE, fl);
  EXPECT_EQ(fl.bits, 0u);
}

TYPED_TEST(FlagTests, TiesToEvenAndToAway) {
  using F = TypeParam;
  // 1 + 1.5*ulp: RNE rounds to 1+2ulp (even), RMM rounds away -> 1+2ulp too.
  // 1 + 0.5*ulp: RNE -> 1.0 (even), RMM -> 1+ulp (away from zero).
  const double ulp = std::ldexp(1.0, -F::man_bits);
  const auto a = Float<F>::one();
  const auto half_ulp = fp::from_double<F>(ulp / 2);
  Flags fl;
  const auto rne = fp::add(a, half_ulp, RoundingMode::RNE, fl);
  EXPECT_EQ(fp::to_double(rne), 1.0);
  const auto rmm = fp::add(a, half_ulp, RoundingMode::RMM, fl);
  EXPECT_EQ(fp::to_double(rmm), 1.0 + ulp);
}

TYPED_TEST(FlagTests, DirectedRoundingBrackets) {
  using F = TypeParam;
  // For random inexact sums, RDN result <= exact <= RUP result and
  // |RTZ| <= |exact|.
  for (int i = 0; i < 20'000; ++i) {
    const auto a = random_finite<F>();
    const auto b = random_finite<F>();
    Flags fl;
    const auto rdn = fp::add(a, b, RoundingMode::RDN, fl);
    const auto rup = fp::add(a, b, RoundingMode::RUP, fl);
    if (rdn.is_nan() || rup.is_nan()) continue;
    const double exact = fp::to_double(a) + fp::to_double(b);
    EXPECT_LE(fp::to_double(rdn), exact);
    EXPECT_GE(fp::to_double(rup), exact);
  }
}

TYPED_TEST(FlagTests, SubnormalRoundTripThroughArithmetic) {
  using F = TypeParam;
  // Dividing the minimum normal by 2 produces an exact subnormal.
  const auto minn = Float<F>::min_normal(false);
  const auto two = fp::from_double<F>(2.0);
  Flags fl;
  const auto half_min = fp::div(minn, two, RoundingMode::RNE, fl);
  EXPECT_EQ(fl.bits, 0u) << "exact halving of min normal";
  EXPECT_TRUE(half_min.is_subnormal());
  const auto back = fp::mul(half_min, two, RoundingMode::RNE, fl);
  EXPECT_EQ(back.bits, minn.bits);
}

}  // namespace
}  // namespace sfrv::test
