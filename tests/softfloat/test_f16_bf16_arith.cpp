// Randomized verification of binary16 and binary16alt arithmetic against
// double-precision references (valid per the 2p+2 double-rounding bound),
// plus exhaustive unary sweeps over all 65536 bit patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "softfloat/softfloat.hpp"
#include "test_util.hpp"

namespace sfrv::test {
namespace {

template <class F>
struct Fixture16 : public ::testing::Test {};

using Formats16 = ::testing::Types<Binary16, Binary16Alt>;

TYPED_TEST_SUITE(Fixture16, Formats16);

constexpr int kRandomPairs = 200'000;

TYPED_TEST(Fixture16, AddRandomAllModes) {
  using F = TypeParam;
  for (RoundingMode rm : kHostRoundingModes) {
    for (int i = 0; i < kRandomPairs / 4; ++i) {
      const auto a = random_bits<F>();
      const auto b = random_bits<F>();
      Flags fl;
      const auto got = fp::add(a, b, rm, fl);
      const auto want =
          host_ref_binop(a, b, rm, [](double x, double y) { return x + y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a.bits << " b=0x" << b.bits
          << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TYPED_TEST(Fixture16, MulRandomAllModes) {
  using F = TypeParam;
  for (RoundingMode rm : kHostRoundingModes) {
    for (int i = 0; i < kRandomPairs / 4; ++i) {
      const auto a = random_bits<F>();
      const auto b = random_bits<F>();
      Flags fl;
      const auto got = fp::mul(a, b, rm, fl);
      const auto want =
          host_ref_binop(a, b, rm, [](double x, double y) { return x * y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a.bits << " b=0x" << b.bits
          << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TYPED_TEST(Fixture16, DivRandomAllModes) {
  using F = TypeParam;
  for (RoundingMode rm : kHostRoundingModes) {
    for (int i = 0; i < kRandomPairs / 4; ++i) {
      const auto a = random_bits<F>();
      const auto b = random_bits<F>();
      Flags fl;
      const auto got = fp::div(a, b, rm, fl);
      const auto want =
          host_ref_binop(a, b, rm, [](double x, double y) { return x / y; });
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a.bits << " b=0x" << b.bits
          << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TYPED_TEST(Fixture16, SqrtExhaustive) {
  using F = TypeParam;
  for (unsigned a = 0; a < 0x10000; ++a) {
    const auto fa = Float<F>::from_bits(a);
    Flags fl;
    const auto got = fp::sqrt(fa, RoundingMode::RNE, fl);
    Flags fl2;
    const auto want =
        fp::from_double<F>(std::sqrt(fp::to_double(fa)), RoundingMode::RNE, fl2);
    ASSERT_TRUE(same_value(got, want)) << "a=0x" << std::hex << a;
  }
}

TYPED_TEST(Fixture16, FmaRandom) {
  using F = TypeParam;
  // The double fma result is correctly rounded to 53 bits, but narrowing it
  // can double-round when the true value sits just past a target tie point
  // with the deviation below double precision (possible because the addend
  // exponent can be hundreds of binades below the product). The reference is
  // therefore only trusted when the narrowing is stable under a 1-ulp
  // perturbation of the double result, which brackets the true value.
  int checked = 0;
  for (int i = 0; i < kRandomPairs; ++i) {
    const auto a = random_bits<F>();
    const auto b = random_bits<F>();
    const auto c = random_bits<F>();
    Flags fl;
    const auto got = fp::fma(a, b, c, RoundingMode::RNE, fl);
    const double r =
        std::fma(fp::to_double(a), fp::to_double(b), fp::to_double(c));
    Flags fl2;
    const auto want = fp::from_double<F>(r, RoundingMode::RNE, fl2);
    const auto wlo = fp::from_double<F>(
        std::nextafter(r, -std::numeric_limits<double>::infinity()),
        RoundingMode::RNE, fl2);
    const auto whi = fp::from_double<F>(
        std::nextafter(r, std::numeric_limits<double>::infinity()),
        RoundingMode::RNE, fl2);
    if (!same_value(want, wlo) || !same_value(want, whi)) continue;
    ++checked;
    ASSERT_TRUE(same_value(got, want))
        << "a=0x" << std::hex << a.bits << " b=0x" << b.bits << " c=0x" << c.bits;
  }
  EXPECT_GT(checked, kRandomPairs / 2) << "guard must not reject most samples";
}

TYPED_TEST(Fixture16, ConvertToF8Exhaustive) {
  using F = TypeParam;
  for (RoundingMode rm : kHostRoundingModes) {
    for (unsigned a = 0; a < 0x10000; ++a) {
      const auto fa = Float<F>::from_bits(a);
      Flags fl;
      const auto got = fp::convert<Binary8>(fa, rm, fl);
      Flags fl2;
      const auto want = fp::from_double<Binary8>(fp::to_double(fa), rm, fl2);
      ASSERT_TRUE(same_value(got, want))
          << "a=0x" << std::hex << a << " rm=" << fp::rounding_mode_name(rm);
    }
  }
}

TYPED_TEST(Fixture16, WidenToF32IsExact) {
  using F = TypeParam;
  for (unsigned a = 0; a < 0x10000; ++a) {
    const auto fa = Float<F>::from_bits(a);
    Flags fl;
    const auto wide = fp::convert<Binary32>(fa, RoundingMode::RNE, fl);
    if (!fa.is_nan()) {
      ASSERT_EQ(fl.bits, 0u) << "widening must be exact, a=0x" << std::hex << a;
      const auto back = fp::convert<F>(wide, RoundingMode::RNE, fl);
      ASSERT_TRUE(same_value(fa, back)) << "a=0x" << std::hex << a;
    }
  }
}

TEST(F16AltVsF16, DynamicRangeDifference) {
  // binary16alt trades precision for range: 65504 is the binary16 max, while
  // binary16alt reaches ~3.4e38 but cannot represent 2049 exactly.
  Flags fl;
  const auto big16 = fp::from_double<Binary16>(1.0e10, RoundingMode::RNE, fl);
  EXPECT_TRUE(big16.is_inf()) << "1e10 overflows binary16";
  fl.clear();
  const auto bigalt = fp::from_double<Binary16Alt>(1.0e10, RoundingMode::RNE, fl);
  EXPECT_TRUE(bigalt.is_finite()) << "1e10 fits binary16alt";

  fl.clear();
  const auto p16 = fp::from_double<Binary16>(2049.0, RoundingMode::RNE, fl);
  EXPECT_NE(fp::to_double(p16), 2049.0) << "2049 not exact in binary16 (11-bit)";
  fl.clear();
  const auto p16b = fp::from_double<Binary16>(1025.0, RoundingMode::RNE, fl);
  EXPECT_EQ(fp::to_double(p16b), 1025.0) << "1025 exact in binary16";
  fl.clear();
  const auto palt = fp::from_double<Binary16Alt>(129.0, RoundingMode::RNE, fl);
  EXPECT_EQ(fp::to_double(palt), 129.0) << "129 exact in binary16alt (8-bit)";
  fl.clear();
  const auto palt2 = fp::from_double<Binary16Alt>(257.0, RoundingMode::RNE, fl);
  EXPECT_NE(fp::to_double(palt2), 257.0) << "257 not exact in binary16alt";
}

}  // namespace
}  // namespace sfrv::test
