// Eval-layer tests: JSON model, matrix expansion, deterministic parallel
// aggregation (byte-identical reports at -j1 and -jN), report round-trip,
// and the tuner case study. Campaign-level tests run the Smoke suite so the
// whole file stays in ctest-friendly time.
#include "eval/campaign.hpp"

#include <gtest/gtest.h>

#include "eval/json.hpp"
#include "eval/report.hpp"

namespace sfrv::eval {
namespace {

// ---- Json ------------------------------------------------------------------

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");

  const Json v = Json::parse("  [1, 2.25, \"x\", true, null]  ");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array().size(), 5u);
  EXPECT_EQ(v.array()[0].as_int(), 1);
  EXPECT_EQ(v.array()[1].as_double(), 2.25);
  EXPECT_EQ(v.array()[2].as_string(), "x");
  EXPECT_TRUE(v.array()[3].as_bool());
  EXPECT_TRUE(v.array()[4].is_null());
}

TEST(Json, StringEscapes) {
  const std::string raw = "a\"b\\c\nd\te\x01";
  const std::string dumped = Json(raw).dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(Json::parse(dumped).as_string(), raw);
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Json v(JsonObject{{"z", Json(1)}, {"a", Json(2)}});
  EXPECT_EQ(v.dump(), "{\"z\":1,\"a\":2}");
  EXPECT_EQ(v.at("z").as_int(), 1);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
}

TEST(Json, DoubleShortestRoundTrip) {
  for (const double d : {0.1, 1.0 / 3.0, 1e-30, 123456789.123456789}) {
    const Json parsed = Json::parse(Json(d).dump());
    EXPECT_EQ(parsed.as_double(), d);
  }
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("42 garbage"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, NonFiniteDoublesRejectedAtSerialization) {
  EXPECT_THROW((void)Json(std::numeric_limits<double>::infinity()).dump(),
               std::runtime_error);
}

// ---- matrix expansion ------------------------------------------------------

TEST(ExpandMatrix, FullCrossProductInOrder) {
  const CampaignSpec spec = CampaignSpec::smoke();
  const auto cells = expand_matrix(spec);
  const auto& suite = eval_suite(SuiteScale::Smoke);
  ASSERT_EQ(cells.size(),
            suite.size() * spec.type_configs.size() * spec.modes.size());
  // Benchmark-major, then type config, then mode.
  std::size_t i = 0;
  for (const auto& b : suite) {
    for (const auto& tc : spec.type_configs) {
      for (const auto mode : spec.modes) {
        EXPECT_EQ(cells[i].benchmark, &b);
        EXPECT_EQ(cells[i].type_config.name, tc.name);
        EXPECT_EQ(cells[i].mode, mode);
        ++i;
      }
    }
  }
}

TEST(ExpandMatrix, BenchmarkFilterAndUnknownName) {
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"gemm", "fdtd2d"};
  const auto cells = expand_matrix(spec);
  EXPECT_EQ(cells.size(), 2 * spec.type_configs.size() * spec.modes.size());
  EXPECT_EQ(cells.front().benchmark->bench.name, "gemm");
  EXPECT_EQ(cells.back().benchmark->bench.name, "fdtd2d");

  spec.benchmarks = {"nope"};
  EXPECT_THROW((void)expand_matrix(spec), std::runtime_error);
}

TEST(ExpandMatrix, CoversAcceptanceMatrix) {
  // The acceptance criterion: the paper's 6 benchmarks plus the NN tier
  // (conv2d, fully_connected, nn_train) x 4 modes (scalar, auto-vec,
  // manual-vec, manual-vec-exsdotp) x >= 7 type configs (the paper's five
  // plus posit8/posit16).
  const CampaignSpec spec = CampaignSpec::table3();
  EXPECT_EQ(eval_suite(spec.scale).size(), 9u);
  EXPECT_EQ(spec.modes.size(), 4u);
  EXPECT_GE(spec.type_configs.size(), 7u);
}

TEST(ExpandMatrix, VlAxisIsInnermost) {
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"gemm"};
  spec.modes = {ir::CodegenMode::ManualVec};
  spec.vls = {0, 2, 4};
  const auto cells = expand_matrix(spec);
  ASSERT_EQ(cells.size(), spec.type_configs.size() * spec.vls.size());
  std::size_t i = 0;
  for (const auto& tc : spec.type_configs) {
    for (const int vl : spec.vls) {
      EXPECT_EQ(cells[i].type_config.name, tc.name);
      EXPECT_EQ(cells[i].vl, vl);
      ++i;
    }
  }
}

TEST(ExpandMatrix, NnPresetShape) {
  const CampaignSpec spec = CampaignSpec::nn(SuiteScale::Smoke);
  EXPECT_EQ(spec.name, "nn");
  EXPECT_FALSE(spec.tuner_study);
  const auto cells = expand_matrix(spec);
  // 3 NN benchmarks x {float16, minifloat-nn} x manual-vec-exsdotp x 4 VLs.
  EXPECT_EQ(cells.size(), 3u * 2u * 1u * 4u);
  for (const auto& c : cells) {
    EXPECT_EQ(c.mode, ir::CodegenMode::ManualVecExs);
  }
}

// ---- campaign determinism and round-trip -----------------------------------

/// Small-but-representative campaign: two benchmarks (one with an accuracy
/// hook), the full type-config and mode matrix.
CampaignSpec small_spec(bool tuner = false) {
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"svm", "atax"};
  spec.tuner_study = tuner;
  return spec;
}

TEST(Campaign, ParallelAggregationIsDeterministic) {
  const EvalReport serial = run_campaign(small_spec(), 1);
  const EvalReport parallel = run_campaign(small_spec(), 4);
  EXPECT_EQ(to_json(serial).dump(2), to_json(parallel).dump(2));
}

TEST(Campaign, ReportIsEngineInvariant) {
  // The same campaign through all three engines must produce byte-identical
  // JSON apart from the recorded engine name — the report measures the
  // simulated machine, not the simulator.
  std::vector<std::string> dumps;
  for (const auto e : {sim::Engine::Reference, sim::Engine::Predecoded,
                       sim::Engine::Fused}) {
    CampaignSpec spec = small_spec();
    spec.engine = e;
    EvalReport report = run_campaign(spec, 2);
    EXPECT_EQ(report.engine, sim::engine_name(e));
    report.engine.clear();  // normalize the one intentional difference
    dumps.push_back(to_json(report).dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST(Campaign, ReportIsBackendInvariant) {
  // The math backends are bit- and fflags-identical by contract, so the
  // report -- cycles, instruction mix, SQNR, accuracy -- must be
  // byte-identical apart from the recorded backend name.
  std::vector<std::string> dumps;
  for (const auto b : {fp::MathBackend::Grs, fp::MathBackend::Fast}) {
    CampaignSpec spec = small_spec();
    spec.backend = b;
    EvalReport report = run_campaign(spec, 2);
    EXPECT_EQ(report.backend, fp::backend_name(b));
    report.backend.clear();  // normalize the one intentional difference
    dumps.push_back(to_json(report).dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(Campaign, ReportJsonRoundTrips) {
  const EvalReport report = run_campaign(small_spec(/*tuner=*/true), 2);
  const std::string dumped = to_json(report).dump(2);
  const EvalReport reparsed = report_from_json(Json::parse(dumped));
  EXPECT_EQ(to_json(reparsed).dump(2), dumped);
  EXPECT_EQ(reparsed.cells.size(), report.cells.size());
  EXPECT_TRUE(reparsed.has_tuner);
}

TEST(Campaign, CellMetricsAreConsistent) {
  const EvalReport report = run_campaign(small_spec(), 2);
  ASSERT_FALSE(report.cells.empty());
  for (const auto& c : report.cells) {
    EXPECT_GT(c.cycles, 0u) << c.benchmark;
    EXPECT_GT(c.instructions, 0u) << c.benchmark;
    EXPECT_GE(c.cycles, c.instructions) << c.benchmark;
    // Class counts decompose the instruction total.
    std::uint64_t sum = 0;
    for (const auto& [cls, n] : c.class_counts) sum += n;
    EXPECT_EQ(sum, c.instructions) << c.benchmark;
    EXPECT_GT(c.energy.total(), 0.0) << c.benchmark;
    if (c.benchmark == "svm") {
      EXPECT_GE(c.accuracy, 0.0);
      EXPECT_LE(c.accuracy, 1.0);
    } else {
      EXPECT_LT(c.accuracy, 0.0);  // N/A marker
    }
  }
  // The report knows the paper shape: smallFloat SIMD beats scalar float.
  const CellResult* base =
      report.find_cell("svm", "float", ir::CodegenMode::Scalar);
  const CellResult* f16 =
      report.find_cell("svm", "float16", ir::CodegenMode::ManualVec);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(f16, nullptr);
  EXPECT_LT(f16->cycles, base->cycles);
  EXPECT_LT(f16->energy.total(), base->energy.total());
}

TEST(Campaign, MarkdownRendersAllSections) {
  const EvalReport report = run_campaign(small_spec(/*tuner=*/true), 2);
  const std::string md = render_markdown(report);
  EXPECT_NE(md.find("## Cycles per cell"), std::string::npos);
  EXPECT_NE(md.find("## Speedup of manual vectorization"), std::string::npos);
  EXPECT_NE(md.find("## Quality of results"), std::string::npos);
  EXPECT_NE(md.find("Fig. 5"), std::string::npos);
  EXPECT_NE(md.find("## Mixed-precision case study (Fig. 6)"),
            std::string::npos);
}

TEST(TunerStudy, EvaluatesGridAndFindsFeasible) {
  const TunerStudy study = run_tuner_study(SuiteScale::Smoke, {});
  EXPECT_EQ(study.benchmark, "svm");
  EXPECT_EQ(study.objective, "cycles");
  // Exhaustive over {data, acc} x 6 types (IEEE + posits).
  EXPECT_EQ(study.explored.size(), 36u);
  ASSERT_TRUE(study.found);
  EXPECT_TRUE(study.best.feasible);
  EXPECT_GE(study.best.qor, study.qor_threshold);
  // Best is the cheapest feasible configuration evaluated.
  for (const auto& t : study.explored) {
    if (t.feasible) EXPECT_LE(study.best.cost, t.cost);
  }
  // Slot pairs the promotion lattice cannot order are recorded as skipped
  // trials — infeasible, qor = -1, cost = 0 — not simulated.
  std::size_t skipped = 0;
  for (const auto& t : study.explored) {
    if (ir::comparable(t.data, t.acc)) {
      EXPECT_GE(t.qor, 0.0) << ir::type_name(t.data) << "/"
                            << ir::type_name(t.acc);
      EXPECT_GT(t.cost, 0.0);
    } else {
      ++skipped;
      EXPECT_FALSE(t.feasible);
      EXPECT_EQ(t.qor, -1.0);
      EXPECT_EQ(t.cost, 0.0);
    }
  }
  // 7 unordered pairs ({f16, f16alt} plus 2 posits x 3 narrow IEEE types),
  // each in both slot orders.
  EXPECT_EQ(skipped, 14u);
}

TEST(ReportCodec, UnknownSchemaAndNamesRejected) {
  EXPECT_THROW((void)report_from_json(Json::parse(
                   R"({"schema":"sfrv-eval-report/v999"})")),
               std::runtime_error);
  EXPECT_THROW((void)scalar_type_from_name("float128"), std::runtime_error);
  EXPECT_THROW((void)mode_from_name("jit"), std::runtime_error);
}

}  // namespace
}  // namespace sfrv::eval
