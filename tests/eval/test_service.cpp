// Service tier: a loopback daemon on a Unix-domain socket, exercised
// through the public client API. Checks the byte-identity contract (remote
// == local, warm == cold), the per-run telemetry, error propagation for bad
// specs, and clean shutdown.
#include "eval/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>

#include <unistd.h>

#include "eval/campaign.hpp"
#include "eval/report.hpp"

namespace sfrv::eval {
namespace {

namespace fs = std::filesystem;

CampaignSpec tiny_campaign() {
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"gemm", "atax"};
  spec.type_configs = {
      {"float16", kernels::TypeConfig::uniform(ir::ScalarType::F16)},
  };
  spec.modes = {ir::CodegenMode::Scalar, ir::CodegenMode::ManualVec};
  spec.tuner_study = false;
  return spec;
}

/// Daemon on a temp-dir Unix socket for one test's lifetime. run_remote
/// retries the dial until the listener is up.
struct Daemon {
  std::string address;
  std::thread thread;

  Daemon() {
    static int counter = 0;
    address = (fs::temp_directory_path() /
               ("sfrv-eval-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter++) + ".sock"))
                  .string();
    ServeOptions opts;
    opts.address = address;
    opts.jobs = 2;
    opts.verbose = false;
    thread = std::thread([opts] { serve(opts); });
    wait_ready();
  }

  void wait_ready() const {
    // The listener needs a beat to bind; probe with an empty connection.
    for (int i = 0; i < 200; ++i) {
      if (fs::exists(address)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "daemon did not come up on " << address;
  }

  ~Daemon() {
    if (thread.joinable()) {
      try {
        shutdown_remote(address);
      } catch (const std::exception&) {
        // Already shut down by the test body.
      }
      thread.join();
    }
  }
};

TEST(EvalService, RemoteRunMatchesLocalByteForByte) {
  const CampaignSpec spec = tiny_campaign();
  const EvalReport local = run_campaign(spec, 2);
  const std::string local_json = to_json(local).dump(2) + "\n";
  const std::string local_md = render_markdown(local);

  Daemon daemon;
  std::size_t streamed = 0;
  const ClientResult cold = run_remote(
      daemon.address, spec, 2, false,
      [&](std::size_t, std::size_t total, bool) {
        ++streamed;
        EXPECT_EQ(total, local.cells.size());
      });
  EXPECT_EQ(cold.json, local_json);
  EXPECT_EQ(cold.md, local_md);
  EXPECT_EQ(cold.cells, local.cells.size());
  EXPECT_EQ(streamed, local.cells.size());
  EXPECT_EQ(cold.misses, local.cells.size());

  // Warm rerun against the daemon's shared store: all hits, same bytes.
  const ClientResult warm = run_remote(daemon.address, spec, 2);
  EXPECT_EQ(warm.json, local_json);
  EXPECT_EQ(warm.md, local_md);
  EXPECT_EQ(warm.hits, local.cells.size());
  EXPECT_EQ(warm.misses, 0u);
}

TEST(EvalService, ConcurrentClientsShareTheStore) {
  const CampaignSpec spec = tiny_campaign();
  Daemon daemon;
  ClientResult a, b;
  std::thread ta([&] { a = run_remote(daemon.address, spec, 1); });
  std::thread tb([&] { b = run_remote(daemon.address, spec, 1); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.md, b.md);
  // Between them every cell was computed at least once; a sequential third
  // client is fully served.
  const ClientResult c = run_remote(daemon.address, spec, 1);
  EXPECT_EQ(c.hits, c.cells);
  EXPECT_EQ(c.misses, 0u);
}

TEST(EvalService, ServerErrorsPropagateAndTheDaemonSurvives) {
  Daemon daemon;
  CampaignSpec bad = tiny_campaign();
  bad.benchmarks = {"no-such-benchmark"};
  EXPECT_THROW((void)run_remote(daemon.address, bad, 1), std::runtime_error);
  // The daemon outlives the bad request.
  const ClientResult ok = run_remote(daemon.address, tiny_campaign(), 1);
  EXPECT_GT(ok.cells, 0u);
}

TEST(EvalService, ShutdownStopsTheDaemon) {
  Daemon daemon;
  shutdown_remote(daemon.address);
  daemon.thread.join();
  // A further connection attempt must fail fast.
  EXPECT_THROW((void)run_remote(daemon.address, tiny_campaign(), 1),
               std::runtime_error);
}

TEST(EvalService, RejectsBadAddresses) {
  EXPECT_THROW((void)run_remote("not-a-port", tiny_campaign(), 1),
               std::runtime_error);
  EXPECT_THROW((void)run_remote("localhost:0", tiny_campaign(), 1),
               std::runtime_error);
  ServeOptions opts;
  opts.address = "999999";
  EXPECT_THROW(serve(opts), std::runtime_error);
}

}  // namespace
}  // namespace sfrv::eval
