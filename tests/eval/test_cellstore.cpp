// Content-addressed cell store: per-axis key sensitivity (any field of what
// a result is a function of must change the address), cross-process address
// stability (a pinned constant), memory and disk round trips, the
// never-serve-questionable-entries contract (truncation, corruption, key
// mismatch, schema drift), and the end-to-end cache-correctness contract —
// a warm campaign rerun serializes byte-identically with a 100% hit rate.
#include "eval/cellstore.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "eval/campaign.hpp"
#include "eval/report.hpp"
#include "kernels/runner.hpp"

namespace sfrv::eval {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp dir, removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("sfrv-cellstore-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

/// A fully pinned synthetic key (schema included, so the constant below
/// survives report schema bumps).
CellKey synthetic_key() {
  CellKey key;
  key.kernel_digest = 0x0123456789abcdefull;
  key.data = ir::ScalarType::F16;
  key.acc = ir::ScalarType::F32;
  key.mode = ir::CodegenMode::ManualVec;
  key.vl = 4;
  key.engine = sim::Engine::Predecoded;
  key.backend = fp::MathBackend::Grs;
  key.opt.unroll_factor = 2;
  key.opt.ptr_strength_reduction = true;
  key.opt.dead_glue_elim = false;
  key.opt.vl_cap = 4;
  key.mem_load_latency = 10;
  key.mem_store_latency = 1;
  key.mem_level = 1;
  key.mem_size = 8u << 20;
  key.schema = "sfrv-cellstore-test/v1";
  return key;
}

TEST(CellKey, EveryAxisChangesTheAddress) {
  const CellKey base = synthetic_key();
  const std::string addr = base.address();
  EXPECT_EQ(addr.size(), 32u);

  auto expect_differs = [&](CellKey k, const char* what) {
    EXPECT_NE(k.address(), addr) << "axis did not affect the address: "
                                 << what;
  };
  {
    CellKey k = base;
    k.kernel_digest ^= 1;
    expect_differs(k, "kernel digest");
  }
  {
    CellKey k = base;
    k.data = ir::ScalarType::F8;
    expect_differs(k, "data type");
  }
  {
    CellKey k = base;
    k.acc = ir::ScalarType::F16;
    expect_differs(k, "acc type");
  }
  {
    CellKey k = base;
    k.mode = ir::CodegenMode::Scalar;
    expect_differs(k, "codegen mode");
  }
  {
    CellKey k = base;
    k.vl = 2;
    expect_differs(k, "vl");
  }
  {
    CellKey k = base;
    k.engine = sim::Engine::Jit;
    expect_differs(k, "engine");
  }
  {
    CellKey k = base;
    k.backend = fp::MathBackend::Fast;
    expect_differs(k, "backend");
  }
  {
    CellKey k = base;
    k.opt.unroll_factor = 4;
    expect_differs(k, "opt unroll");
  }
  {
    CellKey k = base;
    k.opt.ptr_strength_reduction = false;
    expect_differs(k, "opt strength reduction");
  }
  {
    CellKey k = base;
    k.opt.dead_glue_elim = true;
    expect_differs(k, "opt dead glue");
  }
  {
    CellKey k = base;
    k.mem_load_latency = 100;
    expect_differs(k, "mem load latency");
  }
  {
    CellKey k = base;
    k.mem_store_latency = 10;
    expect_differs(k, "mem store latency");
  }
  {
    CellKey k = base;
    k.mem_level = 2;
    expect_differs(k, "mem level");
  }
  {
    CellKey k = base;
    k.schema = "sfrv-cellstore-test/v2";
    expect_differs(k, "schema version");
  }
}

TEST(CellKey, AddressIsStableAcrossProcesses) {
  // Pinned constant: the address must not depend on process layout, pointer
  // values, or hash seeding — a disk cache written by one process (or `-j`
  // worker) must be readable by any other. If this fails, the canonical text
  // or the FNV seeding changed, and every persistent cache is invalidated —
  // bump the report schema if that is intentional.
  EXPECT_EQ(synthetic_key().address(), "ffadc6fa7abe1be96938c50ded5230b9");
}

TEST(CellKey, DefaultSchemaIsTheReportSchema) {
  // A report schema bump must invalidate every cached cell.
  EXPECT_EQ(CellKey{}.schema, std::string(kReportSchema));
}

TEST(CellKey, KernelTextFeedsTheDigest) {
  // Two smoke benchmarks at the same TypeConfig/mode/etc. differ only in
  // kernel content — their planned digests (and addresses) must differ.
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"gemm", "atax"};
  spec.type_configs = {{"float16", kernels::TypeConfig::uniform(
                                       ir::ScalarType::F16)}};
  spec.modes = {ir::CodegenMode::Scalar};
  spec.tuner_study = false;
  const auto planned = plan_campaign(spec);
  ASSERT_EQ(planned.size(), 2u);
  EXPECT_NE(planned[0].key.kernel_digest, planned[1].key.kernel_digest);
  EXPECT_NE(planned[0].key.address(), planned[1].key.address());

  // Planning is deterministic: a second pass reproduces the digests.
  const auto again = plan_campaign(spec);
  EXPECT_EQ(planned[0].key.address(), again[0].key.address());
  EXPECT_EQ(planned[1].key.address(), again[1].key.address());
}

TEST(CellStore, MemoryRoundTrip) {
  CellStore store;
  const CellKey key = synthetic_key();
  EXPECT_FALSE(store.lookup(key).has_value());

  CellResult cell;
  cell.benchmark = "gemm";
  cell.cycles = 1234;
  cell.sqnr_db = 42.5;
  store.insert(key, cell);
  const auto hit = store.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cell_to_json(*hit).dump(), cell_to_json(cell).dump());

  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
}

TEST(CellStore, DiskRoundTripAcrossInstances) {
  const TempDir dir;
  const CellKey key = synthetic_key();
  CellResult cell;
  cell.benchmark = "gemm";
  cell.cycles = 99;
  {
    CellStore store(dir.str());
    store.insert(key, cell);
  }
  CellStore fresh(dir.str());
  const auto hit = fresh.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cell_to_json(*hit).dump(), cell_to_json(cell).dump());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);

  // Promoted into memory: the second lookup does not touch disk again.
  (void)fresh.lookup(key);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  EXPECT_EQ(fresh.stats().hits, 2u);
}

TEST(CellStore, QuestionableDiskEntriesAreRecomputedNeverServed) {
  const TempDir dir;
  const CellKey key = synthetic_key();
  const std::string entry =
      dir.str() + "/" + key.address() + ".json";
  CellResult cell;
  cell.benchmark = "gemm";
  cell.cycles = 7;
  {
    CellStore store(dir.str());
    store.insert(key, cell);
  }

  auto write_entry = [&](const std::string& text) {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << text;
  };
  auto read_entry = [&] {
    std::ifstream in(entry, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  const std::string good = read_entry();

  // Truncated mid-document.
  write_entry(good.substr(0, good.size() / 2));
  {
    CellStore store(dir.str());
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().rejected, 1u);
    EXPECT_EQ(store.stats().misses, 1u);
  }
  // Unparsable garbage.
  write_entry("not json at all");
  {
    CellStore store(dir.str());
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().rejected, 1u);
  }
  // Parses, but the recorded key text does not match the requested address
  // (tampering or a hash collision): must not be served.
  {
    CellKey other = synthetic_key();
    other.vl = 7;
    const Json forged(JsonObject{{"schema", Json(key.schema)},
                                 {"key", Json(other.canonical())},
                                 {"cell", cell_to_json(cell)}});
    write_entry(forged.dump(2));
    CellStore store(dir.str());
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().rejected, 1u);
  }
  // Another schema version.
  {
    const Json foreign(JsonObject{{"schema", Json("sfrv-cellstore-test/v0")},
                                  {"key", Json(key.canonical())},
                                  {"cell", cell_to_json(cell)}});
    write_entry(foreign.dump(2));
    CellStore store(dir.str());
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.stats().rejected, 1u);
  }
  // A miss recomputes and rewrites: the store heals the entry.
  {
    CellStore store(dir.str());
    ASSERT_FALSE(store.lookup(key).has_value());
    store.insert(key, cell);
    CellStore fresh(dir.str());
    ASSERT_TRUE(fresh.lookup(key).has_value());
  }
}

/// Small campaign for end-to-end store tests: one benchmark, two configs,
/// two modes, no tuner.
CampaignSpec tiny_campaign() {
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"gemm"};
  spec.type_configs = {
      {"float", kernels::TypeConfig::uniform(ir::ScalarType::F32)},
      {"float16", kernels::TypeConfig::uniform(ir::ScalarType::F16)},
  };
  spec.modes = {ir::CodegenMode::Scalar, ir::CodegenMode::ManualVec};
  spec.tuner_study = false;
  return spec;
}

TEST(CellStore, WarmCampaignIsByteIdenticalWithFullHitRate) {
  const CampaignSpec spec = tiny_campaign();
  CellStore store;

  const EvalReport cold = run_campaign(spec, 2, &store);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, cold.cells.size());

  const EvalReport warm = run_campaign(spec, 2, &store);
  EXPECT_EQ(warm.cache.hits, warm.cells.size());
  EXPECT_EQ(warm.cache.misses, 0u);

  // The cache-correctness contract: served == recomputed, byte for byte
  // (telemetry only lives in memory unless has_cache is set, so the dumps
  // compare directly), and independent of the thread count.
  EXPECT_EQ(to_json(cold).dump(2), to_json(warm).dump(2));
  EXPECT_EQ(render_markdown(cold), render_markdown(warm));
  const EvalReport serial = run_campaign(spec, 1, &store);
  EXPECT_EQ(to_json(cold).dump(2), to_json(serial).dump(2));
}

TEST(CellStore, TunerAndCampaignShareContentCells) {
  // The smoke campaign's SVM matrix cells coincide with tuner grid points
  // (display names differ, content matches): a campaign that runs both must
  // see nonzero store hits even on a cold pass.
  CampaignSpec spec = CampaignSpec::smoke();
  spec.benchmarks = {"svm"};
  CellStore store;
  const EvalReport report = run_campaign(spec, 2, &store);
  ASSERT_TRUE(report.has_tuner);
  EXPECT_GT(report.cache.hits, 0u);
  // And the shared cells must not leak tuner display names into the matrix.
  for (const auto& c : report.cells) {
    EXPECT_EQ(c.benchmark, "svm");
    EXPECT_TRUE(c.type_config == "float" || c.type_config == "float16" ||
                c.type_config == "float16alt" || c.type_config == "float8" ||
                c.type_config == "mixed" || c.type_config == "posit8" ||
                c.type_config == "posit16")
        << c.type_config;
  }
}

TEST(CampaignSpecCodec, RoundTripsToTheSameReport) {
  const CampaignSpec spec = tiny_campaign();
  const CampaignSpec parsed = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(to_json(run_campaign(spec, 1)).dump(2),
            to_json(run_campaign(parsed, 1)).dump(2));
}

TEST(CampaignSpecCodec, RejectsUnknownScale) {
  Json doc = spec_to_json(tiny_campaign());
  JsonObject obj = doc.object();
  for (auto& [k, v] : obj) {
    if (k == "scale") v = Json("huge");
  }
  EXPECT_THROW((void)spec_from_json(Json(obj)), std::runtime_error);
}

}  // namespace
}  // namespace sfrv::eval
