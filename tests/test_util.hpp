// Shared helpers for the test suite: deterministic random bit generators and
// host-reference floating-point operations with directed rounding.
//
// Reference correctness argument: every smallFloat format has precision
// p <= 24 and double has 53 >= 2p + 2 significant bits, so computing the
// operation exactly (or correctly rounded) in double and then narrowing with
// the library's own converter yields the correctly rounded result in the
// target format (Figueroa's "double rounding is innocuous" bound). The
// converter itself is validated independently by exhaustive widening /
// narrowing tests.
#pragma once

#include <cfenv>
#include <cmath>
#include <cstdint>
#include <random>

#include "softfloat/softfloat.hpp"

namespace sfrv::test {

using fp::Binary16;
using fp::Binary16Alt;
using fp::Binary32;
using fp::Binary64;
using fp::Binary8;
using fp::Flags;
using fp::Float;
using fp::FpFormat;
using fp::RoundingMode;

/// Deterministic generator for reproducible tests.
inline std::mt19937_64& rng() {
  static std::mt19937_64 gen(0xC0FFEE123456789ull);
  return gen;
}

template <class F>
Float<F> random_bits() {
  return Float<F>::from_bits(rng()());
}

/// Random finite value with uniformly random fields (covers subnormals,
/// zeros and the whole exponent range).
template <class F>
Float<F> random_finite() {
  for (;;) {
    auto f = random_bits<F>();
    if (f.is_finite()) return f;
  }
}

/// RAII host rounding-direction guard for fesetround-based references.
class HostRounding {
 public:
  explicit HostRounding(RoundingMode rm) : saved_(fegetround()) {
    switch (rm) {
      case RoundingMode::RNE: fesetround(FE_TONEAREST); break;
      case RoundingMode::RTZ: fesetround(FE_TOWARDZERO); break;
      case RoundingMode::RDN: fesetround(FE_DOWNWARD); break;
      case RoundingMode::RUP: fesetround(FE_UPWARD); break;
      case RoundingMode::RMM: fesetround(FE_TONEAREST); break;  // no host RMM
    }
  }
  ~HostRounding() { fesetround(saved_); }
  HostRounding(const HostRounding&) = delete;
  HostRounding& operator=(const HostRounding&) = delete;

 private:
  int saved_;
};

/// Optimization fence: forces `v` through an opaque register so the compiler
/// can neither constant-fold the surrounding FP operation nor schedule it
/// across fesetround calls (GCC's -frounding-math does not model fesetround
/// as a barrier).
inline double fence_fp(double v) {
#if defined(__x86_64__)
  asm volatile("" : "+x"(v));
#else
  volatile double tmp = v;
  v = tmp;
#endif
  return v;
}

/// Host-double reference for a binary operation, narrowed through the
/// library converter. Valid for formats with precision <= 24 (see header
/// comment); RMM is excluded (no host equivalent).
template <class F, class Op>
Float<F> host_ref_binop(Float<F> a, Float<F> b, RoundingMode rm, Op op) {
  double r;
  {
    HostRounding guard(rm);
    r = fence_fp(op(fence_fp(fp::to_double(a)), fence_fp(fp::to_double(b))));
  }
  Flags fl;
  return fp::from_double<F>(r, rm, fl);
}

inline const RoundingMode kAllRoundingModes[] = {
    RoundingMode::RNE, RoundingMode::RTZ, RoundingMode::RDN,
    RoundingMode::RUP, RoundingMode::RMM};

inline const RoundingMode kHostRoundingModes[] = {
    RoundingMode::RNE, RoundingMode::RTZ, RoundingMode::RDN, RoundingMode::RUP};

/// NaN-aware bit equality: all NaNs produced by the library are canonical,
/// so compare bit patterns but let any-NaN==any-NaN for host references.
template <class F>
bool same_value(Float<F> x, Float<F> y) {
  if (x.is_nan() && y.is_nan()) return true;
  return x.bits == y.bits;
}

}  // namespace sfrv::test
