// Dynamic vector length (setvl) conformance: grant rules at the ISA level,
// vl=0 no-op semantics, JIT trace invalidation when a block is re-entered
// under a different VL, and the strip-mined kernel lowering — O2's unrolled
// setvl loops must match O0's bit-for-bit (outputs and fflags), and
// elementwise kernels must be bit-identical across every VL choice.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "asmb/assembler.hpp"
#include "kernels/nn.hpp"
#include "kernels/runner.hpp"
#include "sim/core.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using isa::Op;
namespace reg = asmb::reg;

constexpr sim::Engine kEngines[] = {sim::Engine::Reference,
                                    sim::Engine::Predecoded,
                                    sim::Engine::Fused, sim::Engine::Jit};

sim::Core run_on(const asmb::Program& prog, sim::Engine e) {
  sim::Core core(isa::IsaConfig::full());
  core.set_engine(e);
  if (e == sim::Engine::Jit) core.set_jit_threshold(0);
  core.load_program(prog);
  EXPECT_EQ(core.run(1'000'000), sim::Core::RunResult::Halted)
      << sim::engine_name(e);
  return core;
}

TEST(Setvl, GrantRules) {
  // vl = min(AVL, VLMAX for the element width, cap when nonzero). At
  // FLEN=32, VLMAX is 4 byte lanes (ew=0) or 2 halfword lanes (ew=1).
  struct Case {
    std::uint32_t avl;
    int ew;
    int cap;
    std::uint32_t want;
  };
  const Case cases[] = {
      {0, 1, 0, 0},    // AVL 0: nothing granted
      {1, 1, 0, 1},    // sub-lane grant
      {2, 1, 0, 2},    // exactly VLMAX
      {3, 1, 0, 2},    // AVL above VLMAX clamps
      {100, 1, 0, 2},  //
      {100, 0, 0, 4},  // byte lanes: VLMAX 4
      {3, 0, 0, 3},    // non-dividing tail grant
      {100, 0, 3, 3},  // explicit cap below VLMAX
      {2, 0, 3, 2},    // AVL below the cap wins
      {1, 0, 3, 1},    //
  };
  for (const auto& c : cases) {
    Assembler a;
    a.li(reg::t1, static_cast<std::int32_t>(c.avl));
    a.setvl(reg::t2, reg::t1, c.ew, c.cap);
    a.ebreak();
    const asmb::Program prog = a.finish();
    for (const auto e : kEngines) {
      sim::Core core = run_on(prog, e);
      EXPECT_EQ(core.x(reg::t2), c.want)
          << "avl=" << c.avl << " ew=" << c.ew << " cap=" << c.cap
          << " engine=" << sim::engine_name(e);
      EXPECT_EQ(core.context().vl, c.want);
    }
  }
}

TEST(Setvl, VlZeroMakesVecMemopsNoOps) {
  Assembler a;
  const std::uint32_t buf = a.data_zero(64);
  a.la(reg::s0, buf);
  a.li(reg::t0, 0x1234abcd);
  a.sw(reg::t0, 0, reg::s0);
  // Full VL: the packed load observes the pattern.
  a.li(reg::t1, 4);
  a.setvl(reg::zero, reg::t1, 1, 0);
  a.vflh(1, 0, reg::s0);
  // VL 0: neither the load nor the store may touch anything.
  a.li(reg::t1, 0);
  a.setvl(reg::zero, reg::t1, 1, 0);
  a.vflh(1, 8, reg::s0);   // must leave f1 unchanged
  a.vfsh(1, 16, reg::s0);  // must write nothing
  a.ebreak();
  const asmb::Program prog = a.finish();

  for (const auto e : kEngines) {
    sim::Core core = run_on(prog, e);
    EXPECT_EQ(core.f_bits(1) & 0xffffffffull, 0x1234abcdull)
        << sim::engine_name(e);
    std::uint8_t tail[4] = {1, 2, 3, 4};
    core.memory().read_block(buf + 16, tail, sizeof tail);
    for (const std::uint8_t b : tail) {
      EXPECT_EQ(b, 0) << sim::engine_name(e);
    }
  }
}

TEST(Setvl, JitInvalidatesStaleVlTraces) {
  // A loop whose body re-executes under a different VL each iteration: the
  // trace compiled at vl=2 on the first pass is stale on the second (vl=1)
  // and must be unmapped and retranslated, not replayed with folded masks.
  Assembler a;
  const std::uint32_t buf = a.data_zero(64);
  a.la(reg::s0, buf);
  a.li(reg::t0, 0x40004000);  // two f16 lanes of 2.0
  a.sw(reg::t0, 0, reg::s0);
  a.li(reg::t0, 2);   // iterations
  a.li(reg::t3, 2);   // first AVL: full VL
  const auto loop = a.here();
  a.setvl(reg::zero, reg::t3, 1, 0);
  a.li(reg::t3, 1);   // second pass runs at vl=1
  // setvl is untranslatable (VL is constant within a trace), so the vector
  // body must start its own block to become a VL-keyed trace: jump to it.
  a.emit({.op = Op::JAL, .rd = reg::zero, .imm = 4});
  a.vflh(1, 0, reg::s0);
  a.fp_rrr(Op::VFADD_H, 2, 1, 1);
  a.vfsh(2, 8, reg::s0);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
  const asmb::Program prog = a.finish();

  sim::Core jit = run_on(prog, sim::Engine::Jit);
  EXPECT_GE(jit.jit_stats().vl_invalidations, 1u);

  const sim::Core ref = run_on(prog, sim::Engine::Reference);
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(jit.f_bits(r), ref.f_bits(r)) << "f" << r;
    EXPECT_EQ(jit.x(r), ref.x(r)) << "x" << r;
  }
  EXPECT_EQ(jit.stats().cycles, ref.stats().cycles);
}

// ---- strip-mined kernel lowering -------------------------------------------

ir::OptConfig with_vl(ir::OptConfig opt, int cap) {
  opt.vl_cap = cap;
  return opt;
}

void expect_bit_identical(const kernels::RunResult& a,
                          const kernels::RunResult& b,
                          const std::vector<std::string>& outputs,
                          const std::string& what) {
  for (const auto& name : outputs) {
    const auto& va = a.outputs.at(name);
    const auto& vb = b.outputs.at(name);
    ASSERT_EQ(va.size(), vb.size()) << what << " " << name;
    for (std::size_t i = 0; i < va.size(); ++i) {
      std::uint64_t ba, bb;
      std::memcpy(&ba, &va[i], sizeof ba);
      std::memcpy(&bb, &vb[i], sizeof bb);
      EXPECT_EQ(ba, bb) << what << " " << name << "[" << i << "]";
    }
  }
  EXPECT_EQ(a.fflags, b.fflags) << what;
}

TEST(StripMine, O2MatchesO0BitForBit) {
  // The unroller may only replicate strip bodies (exhausted strips
  // self-neutralize through zero-grant setvl), never reorder element math:
  // outputs and accrued fflags must match O0 exactly at every cap, including
  // caps that do not divide the trip count (f8: 4 lanes against trips of 10).
  struct Shape {
    const char* what;
    kernels::KernelSpec spec;
    ir::CodegenMode mode;
  };
  const Shape shapes[] = {
      {"fully_connected/f16",
       kernels::make_fully_connected(
           kernels::TypeConfig::uniform(ir::ScalarType::F16), 6, 10),
       ir::CodegenMode::ManualVec},
      {"fully_connected/f8",
       kernels::make_fully_connected(
           kernels::TypeConfig::uniform(ir::ScalarType::F8), 6, 10),
       ir::CodegenMode::ManualVec},
      {"nn_train/mixed8",
       kernels::make_nn_train({ir::ScalarType::F8, ir::ScalarType::F16}, 5, 6),
       ir::CodegenMode::ManualVecExs},
  };
  for (const auto& s : shapes) {
    for (const int cap : {1, 2, 4}) {
      const auto o0 = kernels::run_kernel(
          s.spec, s.mode, {}, isa::IsaConfig::full(), sim::Engine::Predecoded,
          fp::default_backend(), with_vl(ir::OptConfig::O0(), cap));
      const auto o2 = kernels::run_kernel(
          s.spec, s.mode, {}, isa::IsaConfig::full(), sim::Engine::Predecoded,
          fp::default_backend(), with_vl(ir::OptConfig::O2(), cap));
      const std::string what =
          std::string(s.what) + " cap=" + std::to_string(cap);
      expect_bit_identical(o0, o2, s.spec.output_arrays, what);
      EXPECT_LE(o2.stats.cycles, o0.stats.cycles) << what;
    }
  }
}

TEST(StripMine, ElementwiseKernelBitIdenticalAcrossVls) {
  // conv2d accumulates each output element through the same per-element tap
  // order regardless of how elements group into lanes, so — unlike the
  // reduction kernels, whose lane order legitimately shifts with VL — its
  // outputs must be bit-identical across the legacy lowering and every cap.
  const kernels::KernelSpec spec = kernels::make_conv2d(
      kernels::TypeConfig::uniform(ir::ScalarType::F16), 6, 6, 3);
  const auto base = kernels::run_kernel(
      spec, ir::CodegenMode::ManualVec, {}, isa::IsaConfig::full(),
      sim::Engine::Predecoded, fp::default_backend(), ir::OptConfig::O0());
  for (const int cap : {1, 2, 4}) {
    const auto strip = kernels::run_kernel(
        spec, ir::CodegenMode::ManualVec, {}, isa::IsaConfig::full(),
        sim::Engine::Predecoded, fp::default_backend(),
        with_vl(ir::OptConfig::O0(), cap));
    expect_bit_identical(base, strip, spec.output_arrays,
                         "conv2d cap=" + std::to_string(cap));
  }
}

TEST(StripMine, EnginesAgreeOnStripMinedKernels) {
  // Per-VL-point conformance: the same strip-mined cell must be bit- and
  // cycle-identical across all four engines (the golden matrix pins this
  // against checked-in digests; this is the direct four-way comparison).
  const kernels::KernelSpec spec = kernels::make_fully_connected(
      {ir::ScalarType::F8, ir::ScalarType::F16}, 6, 10);
  std::vector<kernels::RunResult> runs;
  for (const auto e : kEngines) {
    runs.push_back(kernels::run_kernel(
        spec, ir::CodegenMode::ManualVecExs, {}, isa::IsaConfig::full(), e,
        fp::default_backend(), with_vl(ir::OptConfig::O0(), 2)));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_bit_identical(runs[0], runs[i], spec.output_arrays,
                         std::string("engine ") +
                             std::string(sim::engine_name(kEngines[i])));
    EXPECT_EQ(runs[0].stats.cycles, runs[i].stats.cycles);
    EXPECT_EQ(runs[0].stats.instructions, runs[i].stats.instructions);
  }
}

}  // namespace
}  // namespace sfrv::test
