// Xfvec/Xfaux execution: packed-SIMD lanes vs lane-wise soft-float reference,
// cast-and-pack, expanding dot products, replicated-operand variants, vector
// compares, and FLEN=64 lane geometry.
#include <gtest/gtest.h>

#include <random>

#include "sim_util.hpp"
#include "softfloat/softfloat.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using fp::Flags;
using fp::FpFormat;
using fp::RoundingMode;
using isa::Op;
namespace reg = asmb::reg;

std::uint64_t lane_get(std::uint64_t v, int l, int w) {
  return (v >> (l * w)) & ((w == 64) ? ~0ull : ((1ull << w) - 1));
}

struct VecCase {
  FpFormat fmt;
  int width;
  Op vadd, vmul, vmac, vadd_r, veq, vlt, vdotp, vcpka;
};

const VecCase kVecCases[] = {
    {FpFormat::F16, 16, Op::VFADD_H, Op::VFMUL_H, Op::VFMAC_H, Op::VFADD_R_H,
     Op::VFEQ_H, Op::VFLT_H, Op::VFDOTPEX_S_H, Op::VFCPKA_H_S},
    {FpFormat::F16Alt, 16, Op::VFADD_AH, Op::VFMUL_AH, Op::VFMAC_AH,
     Op::VFADD_R_AH, Op::VFEQ_AH, Op::VFLT_AH, Op::VFDOTPEX_S_AH,
     Op::VFCPKA_AH_S},
    {FpFormat::F8, 8, Op::VFADD_B, Op::VFMUL_B, Op::VFMAC_B, Op::VFADD_R_B,
     Op::VFEQ_B, Op::VFLT_B, Op::VFDOTPEX_S_B, Op::VFCPKA_B_S},
};

class VectorFp : public ::testing::TestWithParam<int> {};

TEST_P(VectorFp, LanewiseArithMatchesSoftfloat) {
  const VecCase& vc = kVecCases[GetParam()];
  const int lanes = 32 / vc.width;
  std::mt19937_64 gen(7 + GetParam());
  for (int t = 0; t < 1000; ++t) {
    const std::uint32_t va = static_cast<std::uint32_t>(gen());
    const std::uint32_t vb = static_cast<std::uint32_t>(gen());
    const std::uint32_t vc0 = static_cast<std::uint32_t>(gen());
    auto core = run_program([&](Assembler& a) {
      const auto da = a.data_u32(va);
      const auto db = a.data_u32(vb);
      const auto dc = a.data_u32(vc0);
      a.la(reg::s0, da);
      a.la(reg::s1, db);
      a.la(reg::s2, dc);
      a.flw(reg::ft0, 0, reg::s0);
      a.flw(reg::ft1, 0, reg::s1);
      a.flw(reg::fa2, 0, reg::s2);  // accumulator for vfmac
      a.fp_rrr(vc.vadd, reg::fa0, reg::ft0, reg::ft1);
      a.fp_rrr(vc.vmul, reg::fa1, reg::ft0, reg::ft1);
      a.fp_rrr(vc.vmac, reg::fa2, reg::ft0, reg::ft1);
      a.fp_rrr(vc.vadd_r, reg::fa3, reg::ft0, reg::ft1);
      a.ebreak();
    });
    Flags fl;
    for (int l = 0; l < lanes; ++l) {
      const auto al = lane_get(va, l, vc.width);
      const auto bl = lane_get(vb, l, vc.width);
      const auto cl = lane_get(vc0, l, vc.width);
      ASSERT_EQ(lane_get(core.f_bits(reg::fa0), l, vc.width),
                fp::rt_add(vc.fmt, al, bl, RoundingMode::RNE, fl))
          << "vfadd lane " << l;
      ASSERT_EQ(lane_get(core.f_bits(reg::fa1), l, vc.width),
                fp::rt_mul(vc.fmt, al, bl, RoundingMode::RNE, fl))
          << "vfmul lane " << l;
      ASSERT_EQ(lane_get(core.f_bits(reg::fa2), l, vc.width),
                fp::rt_fma(vc.fmt, al, bl, cl, RoundingMode::RNE, fl))
          << "vfmac lane " << l;
      const auto b0 = lane_get(vb, 0, vc.width);
      ASSERT_EQ(lane_get(core.f_bits(reg::fa3), l, vc.width),
                fp::rt_add(vc.fmt, al, b0, RoundingMode::RNE, fl))
          << "vfadd.r lane " << l;
    }
  }
}

TEST_P(VectorFp, CompareWritesLaneMask) {
  const VecCase& vc = kVecCases[GetParam()];
  const int lanes = 32 / vc.width;
  std::mt19937_64 gen(11 + GetParam());
  for (int t = 0; t < 500; ++t) {
    const std::uint32_t va = static_cast<std::uint32_t>(gen());
    const std::uint32_t vb = static_cast<std::uint32_t>(gen());
    auto core = run_program([&](Assembler& a) {
      const auto da = a.data_u32(va);
      const auto db = a.data_u32(vb);
      a.la(reg::s0, da);
      a.la(reg::s1, db);
      a.flw(reg::ft0, 0, reg::s0);
      a.flw(reg::ft1, 0, reg::s1);
      a.fp_rrr(vc.veq, reg::a0, reg::ft0, reg::ft1);
      a.fp_rrr(vc.vlt, reg::a1, reg::ft0, reg::ft1);
      a.ebreak();
    });
    Flags fl;
    std::uint32_t eq_mask = 0, lt_mask = 0;
    for (int l = 0; l < lanes; ++l) {
      const auto al = lane_get(va, l, vc.width);
      const auto bl = lane_get(vb, l, vc.width);
      if (fp::rt_feq(vc.fmt, al, bl, fl)) eq_mask |= 1u << l;
      if (fp::rt_flt(vc.fmt, al, bl, fl)) lt_mask |= 1u << l;
    }
    ASSERT_EQ(core.x(reg::a0), eq_mask);
    ASSERT_EQ(core.x(reg::a1), lt_mask);
  }
}

TEST_P(VectorFp, CastAndPack) {
  const VecCase& vc = kVecCases[GetParam()];
  // vfcpka.fmt.s packs two f32 scalars into lanes 0-1 (paper Table I).
  // Values chosen exact in every format including binary8 (2-bit mantissa).
  const float s1 = 1.5f, s2 = -2.5f;
  auto core = run_program([&](Assembler& a) {
    const auto d1 = a.data_bytes(&s1, 4, 4);
    const auto d2 = a.data_bytes(&s2, 4, 4);
    a.la(reg::s0, d1);
    a.la(reg::s1, d2);
    a.flw(reg::ft0, 0, reg::s0);
    a.flw(reg::ft1, 0, reg::s1);
    a.fp_rrr(vc.vcpka, reg::fa0, reg::ft0, reg::ft1);
    a.ebreak();
  });
  EXPECT_EQ(fp::rt_to_double(vc.fmt, lane_get(core.f_bits(reg::fa0), 0, vc.width)),
            1.5);
  // (second scalar checked below)
  EXPECT_EQ(fp::rt_to_double(vc.fmt, lane_get(core.f_bits(reg::fa0), 1, vc.width)),
            -2.5);
}

TEST_P(VectorFp, ExpandingDotProduct) {
  const VecCase& vc = kVecCases[GetParam()];
  const int lanes = 32 / vc.width;
  std::mt19937_64 gen(23 + GetParam());
  for (int t = 0; t < 500; ++t) {
    const std::uint32_t va = static_cast<std::uint32_t>(gen());
    const std::uint32_t vb = static_cast<std::uint32_t>(gen());
    const float acc0 = 0.5f;
    auto core = run_program([&](Assembler& a) {
      const auto da = a.data_u32(va);
      const auto db = a.data_u32(vb);
      const auto dacc = a.data_bytes(&acc0, 4, 4);
      a.la(reg::s0, da);
      a.la(reg::s1, db);
      a.la(reg::s2, dacc);
      a.flw(reg::ft0, 0, reg::s0);
      a.flw(reg::ft1, 0, reg::s1);
      a.flw(reg::fa0, 0, reg::s2);
      a.fp_rrr(vc.vdotp, reg::fa0, reg::ft0, reg::ft1);
      a.ebreak();
    });
    Flags fl;
    std::uint64_t acc = fp::rt_from_double(FpFormat::F32, 0.5, RoundingMode::RNE, fl);
    for (int l = 0; l < lanes; ++l) {
      const auto wa = fp::rt_convert(FpFormat::F32, vc.fmt,
                                     lane_get(va, l, vc.width), RoundingMode::RNE, fl);
      const auto wb = fp::rt_convert(FpFormat::F32, vc.fmt,
                                     lane_get(vb, l, vc.width), RoundingMode::RNE, fl);
      acc = fp::rt_fma(FpFormat::F32, wa, wb, acc, RoundingMode::RNE, fl);
    }
    ASSERT_EQ(core.f_bits(reg::fa0) & 0xffffffffu, acc)
        << "va=0x" << std::hex << va << " vb=0x" << vb;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVecFormats, VectorFp, ::testing::Range(0, 3),
                         [](const auto& info) {
                           return std::string(
                               fp::format_name(kVecCases[info.param].fmt));
                         });

TEST(VectorFp8, CpkbFillsUpperLanes) {
  // binary8 vectors have 4 lanes at FLEN=32: vfcpka fills 0-1, vfcpkb 2-3.
  const float s1 = 1.0f, s2 = 2.0f, s3 = 3.0f, s4 = 4.0f;
  auto core = run_program([&](Assembler& a) {
    const auto d = a.data_bytes(&s1, 4, 4);
    a.data_bytes(&s2, 4, 4);
    a.data_bytes(&s3, 4, 4);
    a.data_bytes(&s4, 4, 4);
    a.la(reg::s0, d);
    a.flw(reg::ft0, 0, reg::s0);
    a.flw(reg::ft1, 4, reg::s0);
    a.flw(reg::ft2, 8, reg::s0);
    a.flw(reg::ft3, 12, reg::s0);
    a.fp_rrr(Op::VFCPKA_B_S, reg::fa0, reg::ft0, reg::ft1);
    a.fp_rrr(Op::VFCPKB_B_S, reg::fa0, reg::ft2, reg::ft3);
    a.ebreak();
  });
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(fp::rt_to_double(FpFormat::F8, lane_get(core.f_bits(reg::fa0), l, 8)),
              1.0 + l)
        << "lane " << l;
  }
}

TEST(VectorFp, SameWidthFormatConversion) {
  // vfcvt.ah.h / vfcvt.h.ah convert both lanes between the 16-bit formats.
  Flags fl;
  const std::uint64_t h0 = fp::rt_from_double(FpFormat::F16, 1.25, RoundingMode::RNE, fl);
  const std::uint64_t h1 = fp::rt_from_double(FpFormat::F16, -3.5, RoundingMode::RNE, fl);
  const std::uint32_t packed = static_cast<std::uint32_t>(h0 | (h1 << 16));
  auto core = run_program([&](Assembler& a) {
    const auto d = a.data_u32(packed);
    a.la(reg::s0, d);
    a.flw(reg::ft0, 0, reg::s0);
    a.emit({.op = Op::VFCVT_AH_H, .rd = reg::fa0, .rs1 = reg::ft0});
    a.emit({.op = Op::VFCVT_H_AH, .rd = reg::fa1, .rs1 = reg::fa0});
    a.ebreak();
  });
  EXPECT_EQ(fp::rt_to_double(FpFormat::F16Alt, lane_get(core.f_bits(reg::fa0), 0, 16)), 1.25);
  EXPECT_EQ(fp::rt_to_double(FpFormat::F16Alt, lane_get(core.f_bits(reg::fa0), 1, 16)), -3.5);
  EXPECT_EQ(core.f_bits(reg::fa1) & 0xffffffffu, packed) << "round trip exact";
}

TEST(VectorFp, IntVectorConversions) {
  // vfcvt.x.h then vfcvt.h.x round-trips small integers lane-wise.
  Flags fl;
  const std::uint64_t h0 = fp::rt_from_double(FpFormat::F16, 7.0, RoundingMode::RNE, fl);
  const std::uint64_t h1 = fp::rt_from_double(FpFormat::F16, -9.0, RoundingMode::RNE, fl);
  const std::uint32_t packed = static_cast<std::uint32_t>(h0 | (h1 << 16));
  auto core = run_program([&](Assembler& a) {
    const auto d = a.data_u32(packed);
    a.la(reg::s0, d);
    a.flw(reg::ft0, 0, reg::s0);
    a.emit({.op = Op::VFCVT_X_H, .rd = reg::fa0, .rs1 = reg::ft0});
    a.emit({.op = Op::VFCVT_H_X, .rd = reg::fa1, .rs1 = reg::fa0});
    a.ebreak();
  });
  EXPECT_EQ(lane_get(core.f_bits(reg::fa0), 0, 16), 7u);
  EXPECT_EQ(lane_get(core.f_bits(reg::fa0), 1, 16),
            static_cast<std::uint64_t>(static_cast<std::uint16_t>(-9)));
  EXPECT_EQ(core.f_bits(reg::fa1) & 0xffffffffu, packed);
}

TEST(VectorFlen64, FourF16LanesAndEightF8Lanes) {
  // Paper Table II FLEN=64 row: Xf16 -> 4 lanes, Xf8 -> 8 lanes.
  RunOptions opts;
  opts.cfg = isa::IsaConfig::full(64);
  std::mt19937_64 gen(31);
  const std::uint64_t va = gen(), vb = gen();
  auto core = run_program(
      [&](Assembler& a) {
        const auto da = a.data_bytes(&va, 8, 8);
        const auto db = a.data_bytes(&vb, 8, 8);
        a.la(reg::s0, da);
        a.la(reg::s1, db);
        // Assemble 64-bit registers from two 32-bit loads is not available
        // (no FLD); drive the registers directly instead.
        a.ebreak();
      },
      opts);
  core.set_f_bits(0, va);
  core.set_f_bits(1, vb);
  // Execute single vector instructions via a fresh program.
  asmb::Assembler a2;
  a2.fp_rrr(Op::VFADD_H, 2, 0, 1);
  a2.fp_rrr(Op::VFADD_B, 3, 0, 1);
  a2.ebreak();
  sim::Core c2(opts.cfg);
  const auto prog = a2.finish();
  c2.load_program(prog);
  c2.set_f_bits(0, va);
  c2.set_f_bits(1, vb);
  ASSERT_EQ(c2.run(), sim::Core::RunResult::Halted);
  Flags fl;
  for (int l = 0; l < 4; ++l) {
    ASSERT_EQ(lane_get(c2.f_bits(2), l, 16),
              fp::rt_add(FpFormat::F16, lane_get(va, l, 16), lane_get(vb, l, 16),
                         RoundingMode::RNE, fl))
        << "f16 lane " << l;
  }
  for (int l = 0; l < 8; ++l) {
    ASSERT_EQ(lane_get(c2.f_bits(3), l, 8),
              fp::rt_add(FpFormat::F8, lane_get(va, l, 8), lane_get(vb, l, 8),
                         RoundingMode::RNE, fl))
        << "f8 lane " << l;
  }
}

TEST(VectorGating, F16VectorsUnavailableAtFlen16) {
  asmb::Assembler a;
  a.fp_rrr(Op::VFADD_H, 2, 0, 1);
  a.ebreak();
  sim::Core core(isa::IsaConfig::full(16));
  core.load_program(a.finish());
  EXPECT_THROW(core.run(), sim::SimError);
}

}  // namespace
}  // namespace sfrv::test
