// Backend selection plumbing: SFRV_BACKEND / SFRV_ENGINE environment
// contracts (invalid values warn and fall back, never throw), name round
// trips, Core::set_backend re-lowering, and the (engine x backend)
// conformance matrix on an FP-heavy program -- every pair must retire to
// bit-identical architectural state, fflags, and cycle counts.
#include <gtest/gtest.h>

#include <vector>

#include "ir/opt.hpp"
#include "sim/core.hpp"
#include "sim_util.hpp"
#include "softfloat/runtime.hpp"
#include "test_util.hpp"
#include "util/env.hpp"

namespace sfrv::test {
namespace {

using fp::MathBackend;
using sim::Engine;

TEST(BackendNames, RoundTripAndRejection) {
  EXPECT_EQ(fp::backend_name(MathBackend::Grs), "grs");
  EXPECT_EQ(fp::backend_name(MathBackend::Fast), "fast");
  EXPECT_EQ(fp::backend_from_name("grs"), MathBackend::Grs);
  EXPECT_EQ(fp::backend_from_name("fast"), MathBackend::Fast);
  EXPECT_THROW((void)fp::backend_from_name("lut"), std::runtime_error);
  EXPECT_THROW((void)fp::backend_from_name(""), std::runtime_error);
}

TEST(BackendNames, EnvContractWarnsAndFallsBack) {
  // SFRV_BACKEND: unset/empty -> Grs; valid values parse; anything else
  // falls back to Grs (with a stderr warning) instead of throwing -- the
  // resolution runs inside static initialization where a throw would abort.
  EXPECT_EQ(fp::backend_from_env(nullptr), MathBackend::Grs);
  EXPECT_EQ(fp::backend_from_env(""), MathBackend::Grs);
  EXPECT_EQ(fp::backend_from_env("grs"), MathBackend::Grs);
  EXPECT_EQ(fp::backend_from_env("fast"), MathBackend::Fast);
  EXPECT_EQ(fp::backend_from_env("FAST"), MathBackend::Grs);  // case-sensitive
  EXPECT_EQ(fp::backend_from_env("bogus"), MathBackend::Grs);
}

TEST(EngineNames, EnvContractWarnsAndFallsBack) {
  // SFRV_ENGINE: the same contract, falling back to Predecoded.
  EXPECT_EQ(sim::engine_from_env(nullptr), Engine::Predecoded);
  EXPECT_EQ(sim::engine_from_env(""), Engine::Predecoded);
  EXPECT_EQ(sim::engine_from_env("reference"), Engine::Reference);
  EXPECT_EQ(sim::engine_from_env("predecoded"), Engine::Predecoded);
  EXPECT_EQ(sim::engine_from_env("fused"), Engine::Fused);
  EXPECT_EQ(sim::engine_from_env("jit"), Engine::Jit);
  EXPECT_EQ(sim::engine_from_env("bogus"), Engine::Predecoded);
  EXPECT_EQ(sim::engine_from_env("Fused"), Engine::Predecoded);
  EXPECT_EQ(sim::engine_from_env("JIT"), Engine::Predecoded);  // case-sensitive
}

TEST(EnvParsers, SharedHelperContractAcrossAllThreeVariables) {
  // SFRV_ENGINE / SFRV_BACKEND / SFRV_OPT all resolve through
  // util::parse_env_enum: unset or empty selects the fallback, a valid name
  // parses, anything else warns on stderr and falls back — never throws
  // (resolution runs inside static initialization). One helper, one
  // contract; an invalid value must behave identically for every variable.
  for (const char* invalid : {"bogus", " O1", "O1 ", "o1", "3", "--"}) {
    EXPECT_EQ(sim::engine_from_env(invalid), Engine::Predecoded) << invalid;
    EXPECT_EQ(fp::backend_from_env(invalid), MathBackend::Grs) << invalid;
    EXPECT_EQ(ir::opt_name(ir::opt_from_env(invalid)), "O0") << invalid;
  }
  EXPECT_EQ(ir::opt_name(ir::opt_from_env(nullptr)), "O0");
  EXPECT_EQ(ir::opt_name(ir::opt_from_env("")), "O0");
  EXPECT_EQ(ir::opt_name(ir::opt_from_env("O2")), "O2");
  // Direct helper check: fallback passes through untouched on bad input.
  const int parsed = util::parse_env_enum(
      "nope", 7, [](const char*) -> int { throw std::runtime_error("no"); },
      "SFRV_TEST", "anything");
  EXPECT_EQ(parsed, 7);
  const int ok = util::parse_env_enum(
      "13", 7, [](const char* v) { return std::atoi(v); }, "SFRV_TEST",
      "a number");
  EXPECT_EQ(ok, 13);
}

/// FP-heavy program touching every fast-path family: f8/f16 packed SIMD
/// (LUT + host-double lanes), scalar f32 arithmetic including div/sqrt,
/// converts through f8, compares, and int converts.
void fp_workout(asmb::Assembler& a) {
  using isa::Op;
  namespace reg = asmb::reg;
  a.li(reg::t0, 40);
  // Seed FP registers through integer moves (NaN-boxed by the core).
  a.li(reg::t1, 0x3c3c5a7e);
  a.emit({.op = Op::FMV_S_X, .rd = 1, .rs1 = reg::t1});
  a.li(reg::t1, 0x40404040);
  a.emit({.op = Op::FMV_S_X, .rd = 2, .rs1 = reg::t1});
  a.li(reg::t1, 0x3c003c00);
  a.emit({.op = Op::FMV_S_X, .rd = 3, .rs1 = reg::t1});
  a.li(reg::t1, 0x41c84000);
  a.emit({.op = Op::FMV_S_X, .rd = 4, .rs1 = reg::t1});
  const auto loop = a.here();
  // Packed f8 (4 lanes) and f16 (2 lanes).
  a.fp_rrr(Op::VFADD_B, 5, 1, 2);
  a.fp_rrr(Op::VFMUL_B, 6, 1, 2);
  a.fp_rrr(Op::VFDIV_B, 7, 6, 2);
  a.fp_rrr(Op::VFSQRT_B, 8, 6, 0);
  a.fp_rrr(Op::VFMIN_B, 9, 5, 6);
  a.fp_rrr(Op::VFADD_H, 10, 3, 4);
  a.fp_rrr(Op::VFMUL_H, 11, 3, 4);
  a.fp_rrr(Op::VFDIV_H, 12, 11, 3);
  a.fp_rrr(Op::VFEQ_B, reg::t2, 5, 6);
  // Scalar f32 through the host-double path, plus the GRS-fallback fma.
  a.fp_rrr(Op::FADD_S, 13, 1, 2);
  a.fp_rrr(Op::FMUL_S, 14, 1, 2);
  a.fp_rrr(Op::FDIV_S, 15, 14, 2);
  a.fp_rrr(Op::FSQRT_S, 16, 14, 0);
  a.fp_r4(Op::FMADD_S, 17, 13, 14, 15);
  // Conversions through the 8-bit LUT space and int converts.
  a.fp_rrr(Op::FCVT_B_S, 18, 13, 0);
  a.fp_rrr(Op::FCVT_H_B, 19, 18, 0);
  a.fp_rrr(Op::FCVT_S_H, 20, 19, 0);
  a.fp_rrr(Op::FCVT_W_S, reg::t3, 16, 0);
  // Rotate inputs so iterations explore different values.
  a.fp_rrr(Op::FSGNJX_S, 1, 13, 20);
  a.fp_rrr(Op::FADD_H, 3, 19, 12);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
}

struct Digest {
  std::vector<std::uint64_t> f;
  std::vector<std::uint32_t> x;
  std::uint8_t fflags;
  std::uint64_t cycles;
  std::uint64_t instructions;

  bool operator==(const Digest&) const = default;
};

Digest run_pair(Engine e, MathBackend b) {
  asmb::Assembler a;
  fp_workout(a);
  sim::Core core;
  core.set_engine(e);
  core.set_backend(b);
  core.load_program(a.finish());
  EXPECT_EQ(core.run(), sim::Core::RunResult::Halted);
  Digest d;
  for (unsigned r = 0; r < 32; ++r) d.f.push_back(core.f_bits(r));
  for (unsigned r = 0; r < 32; ++r) d.x.push_back(core.x(r));
  d.fflags = core.fflags();
  d.cycles = core.stats().cycles;
  d.instructions = core.stats().instructions;
  return d;
}

TEST(BackendConformance, EveryEngineBackendPairIsBitIdentical) {
  const Digest baseline = run_pair(Engine::Reference, MathBackend::Grs);
  ASSERT_NE(baseline.fflags, 0);  // the workout must actually raise flags
  for (const Engine e : {Engine::Reference, Engine::Predecoded, Engine::Fused,
                         Engine::Jit}) {
    for (const MathBackend b : {MathBackend::Grs, MathBackend::Fast}) {
      const Digest d = run_pair(e, b);
      EXPECT_EQ(d, baseline) << sim::engine_name(e) << "/"
                             << fp::backend_name(b);
    }
  }
}

TEST(BackendConformance, SetBackendAfterLoadRelowers) {
  // Switching the backend after load_program must re-bind the micro-op
  // entry points (and the fused stream) -- results stay identical, and the
  // accessor reflects the change.
  asmb::Assembler a;
  fp_workout(a);
  const asmb::Program prog = a.finish();

  sim::Core before;
  before.set_backend(MathBackend::Fast);
  before.load_program(prog);
  ASSERT_EQ(before.run(), sim::Core::RunResult::Halted);

  sim::Core after;
  after.set_engine(Engine::Fused);
  after.load_program(prog);
  after.set_backend(MathBackend::Fast);
  EXPECT_EQ(after.backend(), MathBackend::Fast);
  ASSERT_EQ(after.run(), sim::Core::RunResult::Halted);

  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(before.f_bits(r), after.f_bits(r)) << r;
  }
  EXPECT_EQ(before.fflags(), after.fflags());
  EXPECT_EQ(before.stats().cycles, after.stats().cycles);
}

TEST(BackendConformance, DefaultBackendIsProcessWide) {
  // Core picks up fp::default_backend() (SFRV_BACKEND) so CI can steer the
  // whole suite; a fresh core and the resolved default must agree.
  sim::Core core;
  EXPECT_EQ(core.backend(), fp::default_backend());
}

}  // namespace
}  // namespace sfrv::test
