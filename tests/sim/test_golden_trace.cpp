// Golden-trace conformance vectors: every kernel of the smoke suite, at
// every type configuration and code generator, is executed to completion
// and its architectural outcome — cycle and instruction counts, per-opcode
// retirement counts, load/store totals, and the bit patterns of every
// output array — is folded into a 64-bit digest. The digests are checked in
// under tests/data/golden_digests.txt and verified under ALL simulator
// engines, so any engine, decoder, lowering, or softfloat change that
// perturbs a single bit of architectural state (or a single cycle of the
// timing model) fails loudly instead of drifting silently.
//
// Regenerating after an *intentional* behavior change:
//   ./build/tests/test_golden_trace --regen
// (or SFRV_REGEN_GOLDEN=1 ./build/tests/test_golden_trace). Regeneration
// computes the vectors with the predecoded engine and rewrites the file in
// the source tree; re-run the test afterwards to confirm all engines agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eval/campaign.hpp"
#include "kernels/runner.hpp"

namespace sfrv::test {
namespace {

constexpr const char* kGoldenPath =
    SFRV_SOURCE_DIR "/tests/data/golden_digests.txt";

/// FNV-1a 64 over a heterogeneous byte stream.
class Digest {
 public:
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    u64(s.size());
  }

  [[nodiscard]] std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h_));
    return buf;
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// The conformance matrix: the smoke suite across the campaign's type
/// configs (the paper's five plus posit8/posit16) and the scalar/auto-vec/
/// manual-vec generators, plus pinned O2 and ExSdotp-widening blocks.
struct GoldenCell {
  std::string name;  // bench/type_config/mode[/opt-level]
  const eval::EvalBenchmark* bench;
  kernels::TypeConfig tc;
  ir::CodegenMode mode;
  ir::OptConfig opt;  // pinned explicitly so SFRV_OPT cannot perturb digests
};

std::vector<GoldenCell> golden_matrix() {
  std::vector<GoldenCell> cells;
  for (const auto& b : eval::eval_suite(eval::SuiteScale::Smoke)) {
    for (const auto& tc : eval::default_type_configs()) {
      for (const auto mode :
           {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
            ir::CodegenMode::ManualVec}) {
        cells.push_back({b.bench.name + "/" + tc.name + "/" +
                             std::string(ir::mode_name(mode)),
                         &b, tc.tc, mode, ir::OptConfig::O0()});
      }
    }
  }
  // One unrolled configuration (float16 across all benches and modes) pins
  // the post-lowering optimizer's codegen: cycle counts, glue elimination,
  // and output bit-identity all fold into these digests.
  for (const auto& b : eval::eval_suite(eval::SuiteScale::Smoke)) {
    for (const auto mode :
         {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
          ir::CodegenMode::ManualVec}) {
      cells.push_back({b.bench.name + "/float16/" +
                           std::string(ir::mode_name(mode)) + "/O2",
                       &b, kernels::TypeConfig::uniform(ir::ScalarType::F16),
                       mode, ir::OptConfig::O2()});
    }
  }
  // ExSdotp rows: every benchmark under the manual-vec-exsdotp generator at
  // the four widening (data, acc) pairs the ExSdotp unit serves, one per
  // vfexsdotp opcode. Uniform configs lower identically to manual-vec, so
  // only the widening pairs add signal.
  const std::pair<const char*, kernels::TypeConfig> widening[] = {
      {"mixed8", {ir::ScalarType::F8, ir::ScalarType::F16}},
      {"mixed", {ir::ScalarType::F16, ir::ScalarType::F32}},
      {"mixed16alt", {ir::ScalarType::F16Alt, ir::ScalarType::F32}},
      {"posit-mixed", {ir::ScalarType::P8, ir::ScalarType::P16}},
  };
  for (const auto& b : eval::eval_suite(eval::SuiteScale::Smoke)) {
    for (const auto& [name, tc] : widening) {
      cells.push_back({b.bench.name + "/" + std::string(name) + "/" +
                           std::string(ir::mode_name(
                               ir::CodegenMode::ManualVecExs)),
                       &b, tc, ir::CodegenMode::ManualVecExs,
                       ir::OptConfig::O0()});
    }
  }
  // Dynamic-VL rows: the strip-mined setvl lowering pinned at representative
  // sweep points — sub-lane (vl1), full-lane (vl2) at O0 and under the O2
  // unroller, and the widening ExSdotp path. Digests fold both the outputs
  // (pinned lane order at each VL) and the setvl-loop cycle shape.
  const auto with_vl = [](ir::OptConfig opt, int cap) {
    opt.vl_cap = cap;
    return opt;
  };
  const auto f16 = kernels::TypeConfig::uniform(ir::ScalarType::F16);
  const kernels::TypeConfig mixed8{ir::ScalarType::F8, ir::ScalarType::F16};
  for (const auto& b : eval::eval_suite(eval::SuiteScale::Smoke)) {
    cells.push_back({b.bench.name + "/float16/manual-vec/vl1", &b, f16,
                     ir::CodegenMode::ManualVec,
                     with_vl(ir::OptConfig::O0(), 1)});
    cells.push_back({b.bench.name + "/float16/manual-vec/vl2", &b, f16,
                     ir::CodegenMode::ManualVec,
                     with_vl(ir::OptConfig::O0(), 2)});
    cells.push_back({b.bench.name + "/float16/manual-vec/vl2-O2", &b, f16,
                     ir::CodegenMode::ManualVec,
                     with_vl(ir::OptConfig::O2(), 2)});
    cells.push_back({b.bench.name + "/mixed8/manual-vec-exsdotp/vl2", &b,
                     mixed8, ir::CodegenMode::ManualVecExs,
                     with_vl(ir::OptConfig::O0(), 2)});
  }
  return cells;
}

/// Execute one cell under `engine` and digest its architectural outcome.
std::string run_digest(const GoldenCell& cell, sim::Engine engine) {
  const kernels::KernelSpec spec = cell.bench->bench.make(cell.tc);
  const kernels::RunResult r = kernels::run_kernel(
      spec, cell.mode, {}, isa::IsaConfig::full(), engine,
      fp::default_backend(), cell.opt);

  Digest d;
  d.u64(r.stats.cycles);
  d.u64(r.stats.instructions);
  d.u64(r.stats.load_count);
  d.u64(r.stats.store_count);
  for (std::size_t op = 0; op < isa::kNumOps; ++op) {
    if (r.stats.op_count[op] == 0) continue;
    d.u64(op);
    d.u64(r.stats.op_count[op]);
  }
  for (const auto& name : spec.output_arrays) {
    d.str(name);
    for (const double v : r.outputs.at(name)) {
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof v);
      std::memcpy(&bits, &v, sizeof bits);
      d.u64(bits);
    }
  }
  return d.hex();
}

std::map<std::string, std::string> load_golden() {
  std::map<std::string, std::string> golden;
  std::ifstream in(kGoldenPath);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name, digest;
    ls >> name >> digest;
    if (!name.empty() && !digest.empty()) golden[name] = digest;
  }
  return golden;
}

class GoldenTrace : public ::testing::TestWithParam<sim::Engine> {};

TEST_P(GoldenTrace, MatchesCheckedInDigests) {
  const sim::Engine engine = GetParam();
  const auto golden = load_golden();
  ASSERT_FALSE(golden.empty())
      << "no golden vectors at " << kGoldenPath
      << " — regenerate with: ./build/tests/test_golden_trace --regen";

  const auto cells = golden_matrix();
  EXPECT_EQ(golden.size(), cells.size())
      << "golden file is stale (matrix shape changed) — regenerate";
  for (const auto& cell : cells) {
    const auto it = golden.find(cell.name);
    ASSERT_NE(it, golden.end())
        << cell.name << " missing from golden file — regenerate";
    EXPECT_EQ(run_digest(cell, engine), it->second)
        << cell.name << " diverged under the " << sim::engine_name(engine)
        << " engine. If the behavior change is intentional, regenerate with "
           "./build/tests/test_golden_trace --regen and re-run.";
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, GoldenTrace,
                         ::testing::Values(sim::Engine::Reference,
                                           sim::Engine::Predecoded,
                                           sim::Engine::Fused,
                                           sim::Engine::Jit),
                         [](const auto& info) {
                           return std::string(sim::engine_name(info.param));
                         });

int regenerate() {
  std::ofstream out(kGoldenPath, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", kGoldenPath);
    return 1;
  }
  out << "# Golden architectural-state digests (see "
         "tests/sim/test_golden_trace.cpp).\n"
         "# Regenerate: ./build/tests/test_golden_trace --regen\n";
  for (const auto& cell : golden_matrix()) {
    out << cell.name << ' ' << run_digest(cell, sim::Engine::Predecoded)
        << '\n';
  }
  std::printf("wrote %s\n", kGoldenPath);
  return out ? 0 : 1;
}

}  // namespace
}  // namespace sfrv::test

// Custom main (overrides gtest_main): --regen rewrites the golden file in
// the source tree instead of running the comparison.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  bool regen = std::getenv("SFRV_REGEN_GOLDEN") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") regen = true;
  }
  if (regen) return sfrv::test::regenerate();
  return RUN_ALL_TESTS();
}
