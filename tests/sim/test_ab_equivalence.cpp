// Randomized four-way differential suite: the predecoded micro-op engine,
// the superblock-fused engine, AND the jit trace-compilation engine must
// match the retained reference interpreter bit-for-bit on architectural
// state (x/f register files, memory, fflags/frm) AND on the timing model
// (cycles, instruction/load/store counts) across every extension
// configuration. Streams read the cycle CSR mid-run, so a single
// mis-accounted cycle also shows up as an architectural divergence.
//
// Each random stream runs three ways:
//  * free-run — every engine to completion at full speed (fused pairs,
//    block-local dispatch, and compiled traces fully exercised), final
//    state + memory compared;
//  * per-instruction lockstep — run(1) on all engines, full state compared
//    after every retired instruction (this also drives the fused engine's
//    budget-split/mid-pair resync paths and the jit's bounded trace path);
//  * random-chunk lockstep — run(k), k in [1, 8], so fused pairs and trace
//    prefixes execute between observation points and state is compared at
//    interior pcs.
// The streams' jalr groups produce dynamic targets that land in the middle
// of fused pairs (the +12 skip), covering the entry-map fallback and
// mid-trace jalr entry. The jit runs twice with the hotness threshold
// forced both ways: 0 (every block compiles on first entry) and nonzero
// (early entries interpret cold through the fused path, later ones run
// compiled — the hot/cold transition happens mid-stream).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "asmb/assembler.hpp"
#include "sim/core.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using isa::Cls;
using isa::IsaConfig;
using isa::Lay;
using isa::Op;
namespace reg = asmb::reg;

constexpr std::uint8_t kBaseReg = reg::s0;  // holds the scratch-buffer address
constexpr std::size_t kBufBytes = 256;

class StreamGen {
 public:
  StreamGen(const IsaConfig& cfg, std::uint64_t seed) : rng_(seed) {
    for (std::size_t k = 0; k < isa::kNumOps; ++k) {
      const Op op = static_cast<Op>(k);
      if (!cfg.supports(op)) continue;
      // ECALL/EBREAK would end the stream early.
      if (op == Op::ECALL || op == Op::EBREAK) continue;
      pool_.push_back(op);
    }
  }

  /// Emit `count` random instruction groups into `a`, followed by ebreak.
  /// JALR expands to a two-instruction auipc pair, so "skip one" forward
  /// displacements are only allowed when the following group is a single
  /// instruction (a skip landing mid-pair would read a garbage base).
  void emit_stream(Assembler& a, int count) {
    std::vector<Op> ops(static_cast<std::size_t>(count));
    for (auto& op : ops) op = pick_op();
    for (int i = 0; i < count; ++i) {
      const bool allow_skip = i + 1 < count && ops[i + 1] != Op::JALR;
      const Op op = ops[i];
      if (op == Op::JALR) {
        // Register-indirect targets are made trackable with an auipc pair:
        // target = auipc_pc + imm lands on the next instruction (+8) or
        // skips one (+12). rd may alias the base, exercising the
        // read-before-link-write ordering.
        std::uint8_t base = int_rd();
        if (base == 0) base = reg::t1;
        a.emit({.op = Op::AUIPC, .rd = base, .imm = 0});
        a.emit({.op = Op::JALR, .rd = int_rd(), .rs1 = base,
                .imm = fwd_imm(allow_skip) + 4});
        continue;
      }
      a.emit(random_inst(op, allow_skip));
    }
    a.ebreak();
  }

 private:
  Op pick_op() { return pool_[rng_() % pool_.size()]; }
  std::uint8_t xreg() { return static_cast<std::uint8_t>(rng_() & 31); }
  std::uint8_t freg() { return static_cast<std::uint8_t>(rng_() & 31); }
  /// Integer destination that never clobbers the scratch-buffer base.
  std::uint8_t int_rd() {
    const auto r = xreg();
    return r == kBaseReg ? static_cast<std::uint8_t>(r + 1) : r;
  }
  std::uint8_t rand_rm() {
    const std::uint8_t m[] = {0, 1, 2, 3, 4, isa::kRmDyn};
    return m[rng_() % 6];
  }
  std::int32_t mem_offset() {
    return static_cast<std::int32_t>(rng_() % 63) * 4;
  }
  /// Forward branch/jump displacement that stays inside the stream: +8 skips
  /// one instruction, +4 is a plain fall-through (taken or not).
  std::int32_t fwd_imm(bool allow_skip) {
    return (allow_skip && (rng_() & 1) != 0) ? 8 : 4;
  }

  isa::Inst random_inst(Op op, bool allow_skip) {
    isa::Inst i{.op = op};
    const auto cls = isa::op_class(op);
    switch (isa::layout(op)) {
      case Lay::U:
        i.rd = int_rd();
        i.imm = static_cast<std::int32_t>((rng_() & 0xfffff) << 12);
        break;
      case Lay::J:
        i.rd = int_rd();
        i.imm = fwd_imm(allow_skip);
        break;
      case Lay::Bimm:
        i.rs1 = xreg();
        i.rs2 = xreg();
        i.imm = fwd_imm(allow_skip);
        break;
      case Lay::Iimm:
        if (cls == Cls::Load || cls == Cls::FpLoad) {
          i.rd = cls == Cls::Load ? int_rd() : freg();
          i.rs1 = kBaseReg;
          i.imm = mem_offset();
        } else {
          i.rd = int_rd();
          i.rs1 = xreg();
          i.imm = static_cast<std::int32_t>(rng_() & 0xfff) - 2048;
        }
        break;
      case Lay::Simm:
        i.rs1 = kBaseReg;
        i.rs2 = cls == Cls::Store ? xreg() : freg();
        i.imm = mem_offset();
        break;
      case Lay::Shamt:
        i.rd = int_rd();
        i.rs1 = xreg();
        i.imm = static_cast<std::int32_t>(rng_() & 31);
        break;
      case Lay::R:
        i.rd = int_rd();
        i.rs1 = xreg();
        i.rs2 = xreg();
        break;
      case Lay::FullWord:
        break;  // fence
      case Lay::Csr: {
        const std::int32_t addrs[] = {0x001, 0x002, 0x003, 0xc00, 0xc02};
        i.rd = int_rd();
        i.rs1 = xreg();  // zimm for the I variants: same 5-bit range
        i.imm = addrs[rng_() % 5];
        break;
      }
      case Lay::FpRrm:
      case Lay::FpR2:
        i.rd = isa::rd_is_int(op) ? int_rd() : freg();
        i.rs1 = freg();
        i.rs2 = freg();
        i.rm = rand_rm();
        break;
      case Lay::FpR4:
        i.rd = freg();
        i.rs1 = freg();
        i.rs2 = freg();
        i.rs3 = freg();
        i.rm = rand_rm();
        break;
      case Lay::FpUnaryRm:
      case Lay::FpUnary:
        i.rd = isa::rd_is_int(op) ? int_rd() : freg();
        i.rs1 = isa::rs1_is_int(op) ? xreg() : freg();
        i.rm = rand_rm();
        break;
      case Lay::Vec:
        i.rd = isa::rd_is_int(op) ? int_rd() : freg();
        i.rs1 = freg();
        i.rs2 = freg();
        break;
      case Lay::VecUnary:
        i.rd = freg();
        i.rs1 = freg();
        break;
    }
    return i;
  }

  std::mt19937_64 rng_;
  std::vector<Op> pool_;
};

/// Seed both cores with identical random architectural state.
void seed_state(sim::Core& core, std::uint64_t seed) {
  std::mt19937_64 sr(seed ^ 0x5eed5eed5eed5eedull);
  for (unsigned r = 1; r < 32; ++r) {
    core.set_x(r, static_cast<std::uint32_t>(sr()));
  }
  for (unsigned r = 0; r < 32; ++r) core.set_f_bits(r, sr());
  core.set_fflags(static_cast<std::uint8_t>(sr() & 0x1f));
  core.set_frm(static_cast<fp::RoundingMode>(sr() % 5));
}

constexpr sim::Engine kEngines[] = {sim::Engine::Reference,
                                    sim::Engine::Predecoded,
                                    sim::Engine::Fused, sim::Engine::Jit};

/// Full architectural + timing state comparison between two cores.
::testing::AssertionResult state_eq(const sim::Core& a, const sim::Core& b) {
  auto fail = [&](const char* what, std::uint64_t va, std::uint64_t vb) {
    return ::testing::AssertionFailure()
           << sim::engine_name(a.engine()) << " vs "
           << sim::engine_name(b.engine()) << ": " << what << " " << va
           << " != " << vb << " (pc=0x" << std::hex << a.pc() << ")";
  };
  if (a.pc() != b.pc()) return fail("pc", a.pc(), b.pc());
  for (unsigned r = 0; r < 32; ++r) {
    if (a.x(r) != b.x(r)) return fail("x reg", a.x(r), b.x(r));
    if (a.f_bits(r) != b.f_bits(r)) return fail("f reg", a.f_bits(r), b.f_bits(r));
  }
  if (a.fflags() != b.fflags()) return fail("fflags", a.fflags(), b.fflags());
  if (a.frm() != b.frm()) {
    return fail("frm", static_cast<std::uint64_t>(a.frm()),
                static_cast<std::uint64_t>(b.frm()));
  }
  if (a.halted() != b.halted()) return fail("halted", a.halted(), b.halted());
  const sim::Stats& sa = a.stats();
  const sim::Stats& sb = b.stats();
  if (sa.cycles != sb.cycles) return fail("cycles", sa.cycles, sb.cycles);
  if (sa.instructions != sb.instructions) {
    return fail("instructions", sa.instructions, sb.instructions);
  }
  if (sa.load_count != sb.load_count) {
    return fail("loads", sa.load_count, sb.load_count);
  }
  if (sa.store_count != sb.store_count) {
    return fail("stores", sa.store_count, sb.store_count);
  }
  return ::testing::AssertionSuccess();
}

void expect_same_memory(const sim::Core& a, const sim::Core& b,
                        std::uint32_t buf, std::uint64_t seed) {
  std::vector<std::uint8_t> ma(kBufBytes), mb(kBufBytes);
  a.memory().read_block(buf, ma.data(), kBufBytes);
  b.memory().read_block(buf, mb.data(), kBufBytes);
  EXPECT_EQ(ma, mb) << sim::engine_name(a.engine()) << " vs "
                    << sim::engine_name(b.engine()) << " seed=" << seed;
}

struct Stream {
  asmb::Program prog;
  std::uint32_t buf = 0;
};

Stream make_stream(const IsaConfig& cfg, std::uint64_t seed, int count) {
  Assembler a;
  Stream s;
  s.buf = a.data_zero(kBufBytes);
  a.la(kBaseReg, s.buf);
  StreamGen gen(cfg, seed);
  gen.emit_stream(a, count);
  s.prog = a.finish();
  return s;
}

sim::Core make_core(const IsaConfig& cfg, const Stream& s, sim::Engine e,
                    std::uint64_t seed) {
  sim::Core core(cfg);
  core.set_engine(e);
  if (e == sim::Engine::Jit) core.set_jit_threshold(0);  // always compiled
  core.load_program(s.prog);
  seed_state(core, seed);
  return core;
}

/// All differential cores for one stream: the kEngines set (jit at
/// threshold 0, every block compiled on first entry) plus a second jit
/// core with a nonzero threshold, so the hot/cold promotion happens
/// mid-stream and cold entries interpret through the fused path.
std::vector<sim::Core> make_cores(const IsaConfig& cfg, const Stream& s,
                                  std::uint64_t seed) {
  std::vector<sim::Core> cores;
  for (const auto e : kEngines) cores.push_back(make_core(cfg, s, e, seed));
  cores.push_back(make_core(cfg, s, sim::Engine::Jit, seed));
  cores.back().set_jit_threshold(3);
  return cores;
}

/// Lockstep every engine in chunks of `chunk(rng)` instructions, comparing
/// the full state at every chunk boundary.
template <typename ChunkFn>
void lockstep(const IsaConfig& cfg, const Stream& s, std::uint64_t seed,
              ChunkFn chunk) {
  std::vector<sim::Core> cores = make_cores(cfg, s, seed);
  std::mt19937_64 cr(seed ^ 0xC0DEC0DEC0DEull);
  for (std::uint64_t retired = 0; retired < 1'000'000;) {
    const std::uint64_t k = chunk(cr);
    for (auto& c : cores) c.run(k);
    retired += k;
    for (std::size_t i = 1; i < cores.size(); ++i) {
      ASSERT_TRUE(state_eq(cores[0], cores[i]))
          << "seed=" << seed << " after " << retired << " budgeted steps";
    }
    if (cores[0].halted()) break;
  }
  ASSERT_TRUE(cores[0].halted()) << "stream did not halt, seed=" << seed;
  for (std::size_t i = 1; i < cores.size(); ++i) {
    expect_same_memory(cores[0], cores[i], s.buf, seed);
  }
}

/// Run one random stream through all engines; returns executed instructions.
std::uint64_t run_stream(const IsaConfig& cfg, std::uint64_t seed, int count) {
  const Stream s = make_stream(cfg, seed, count);

  // Free-run: every engine at full speed (fused pairs + block dispatch +
  // compiled traces).
  std::vector<sim::Core> cores = make_cores(cfg, s, seed);
  for (auto& c : cores) {
    EXPECT_EQ(c.run(1'000'000), sim::Core::RunResult::Halted)
        << sim::engine_name(c.engine()) << " seed=" << seed;
  }
  for (std::size_t i = 1; i < cores.size(); ++i) {
    EXPECT_TRUE(state_eq(cores[0], cores[i])) << "seed=" << seed;
    expect_same_memory(cores[0], cores[i], s.buf, seed);
  }

  // Per-instruction lockstep: state checked at every retired instruction.
  lockstep(cfg, s, seed, [](std::mt19937_64&) -> std::uint64_t { return 1; });
  // Random-chunk lockstep: fused pairs execute between observation points.
  lockstep(cfg, s, seed,
           [](std::mt19937_64& r) -> std::uint64_t { return 1 + r() % 8; });

  return cores[0].stats().instructions;
}

void run_config(const IsaConfig& cfg) {
  std::uint64_t executed = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    executed += run_stream(cfg, 0xAB000000u + s, 1500);
  }
  EXPECT_GE(executed, 10'000u) << "stream generator under-delivers coverage";
}

TEST(AbEquivalence, FullSmallFloatConfig) { run_config(IsaConfig::full()); }

TEST(AbEquivalence, Rv32imfBaseline) { run_config(IsaConfig::rv32imf()); }

TEST(AbEquivalence, FullConfigFlen64) { run_config(IsaConfig::full(64)); }

TEST(AbEquivalence, FullConfigFlen16) { run_config(IsaConfig::full(16)); }

TEST(AbEquivalence, IntegerOnlyConfig) {
  run_config(IsaConfig({isa::Ext::I, isa::Ext::M, isa::Ext::Zicsr}, 32));
}

TEST(AbEquivalence, PositOnlyConfig) {
  // Without the IEEE smallFloat extensions the stream pool concentrates on
  // the posit scalar/vector ops and vfexsdotp.p16.p8, giving them the same
  // four-way engine fuzz density the IEEE formats get from full().
  run_config(IsaConfig(
      {isa::Ext::I, isa::Ext::M, isa::Ext::Zicsr, isa::Ext::F,
       isa::Ext::Xposit},
      32));
}

TEST(AbEquivalence, FuzzPoolCoversPositAndExSdotp) {
  // The stream generator draws from every op full() supports: pin that the
  // PR 7 additions are actually in that pool, so the differential coverage
  // above cannot silently regress to the pre-posit op set.
  const IsaConfig cfg = IsaConfig::full();
  for (const Op op :
       {Op::FADD_P8, Op::FMADD_P16, Op::FSQRT_P8, Op::FCVT_P8_P16,
        Op::VFADD_P8, Op::VFMAC_P8, Op::VFDOTPEX_S_P8,
        Op::VFEXSDOTP_H_B, Op::VFEXSDOTP_R_H_B, Op::VFEXSDOTP_S_H,
        Op::VFEXSDOTP_S_AH, Op::VFEXSDOTP_P16_P8, Op::VFEXSDOTP_R_P16_P8}) {
    EXPECT_TRUE(cfg.supports(op)) << isa::mnemonic(op);
  }
}

TEST(AbEquivalence, FuzzPoolCoversDynamicVl) {
  // Same guard for the dynamic-VL additions: setvl (random ew/cap fields and
  // AVL values, including zero and oversize grants) and the VL-aware packed
  // memops must stay in the differential fuzz pool, so every engine's VL
  // masking, trace keying, and partial-width memory access get four-way
  // coverage from the streams above.
  const IsaConfig cfg = IsaConfig::full();
  for (const Op op :
       {Op::SETVL, Op::VFLB, Op::VFLH, Op::VFSB, Op::VFSH}) {
    EXPECT_TRUE(cfg.supports(op)) << isa::mnemonic(op);
  }
}

// Deterministic guard: the canonical loop shapes must actually fuse (the
// randomized suite would still pass if the builder degenerated to all
// singles), and the fused run must stay cycle-identical across a taken
// back-edge that crosses fused pairs.
TEST(Superblock, FusesLoopPairsAndStaysIdentical) {
  Assembler a;
  a.li(asmb::reg::t0, 1000);
  const auto loop = a.here();
  a.fp_rrr(Op::VFADD_B, asmb::reg::fa0, asmb::reg::fa1, asmb::reg::fa2);
  a.fp_rrr(Op::VFMUL_B, asmb::reg::fa3, asmb::reg::fa1, asmb::reg::fa2);
  a.fp_rrr(Op::VFSUB_H, asmb::reg::ft0, asmb::reg::ft1, asmb::reg::ft2);
  a.fp_rrr(Op::VFMIN_H, asmb::reg::ft3, asmb::reg::ft1, asmb::reg::ft2);
  a.addi(asmb::reg::t0, asmb::reg::t0, -1);
  a.bne(asmb::reg::t0, asmb::reg::zero, loop);
  a.ebreak();
  const asmb::Program prog = a.finish();

  sim::Core uop(isa::IsaConfig::full());
  sim::Core fus(isa::IsaConfig::full());
  fus.set_engine(sim::Engine::Fused);
  uop.load_program(prog);
  fus.load_program(prog);

  // The loop body must fuse: two vec/vec pairs plus the addi+bne back-edge.
  EXPECT_GE(fus.superblocks().fused_pairs(), 3u);

  EXPECT_EQ(uop.run(), sim::Core::RunResult::Halted);
  EXPECT_EQ(fus.run(), sim::Core::RunResult::Halted);
  EXPECT_TRUE(state_eq(uop, fus));
}

// Falling through the last text instruction (no ebreak) must raise the same
// fetch fault with the same fully-retired state under every engine — the
// fused block walker must not run off the end of its op array.
TEST(Superblock, FallthroughOffTextEndMatchesAllEngines) {
  Assembler a;
  a.addi(asmb::reg::t0, asmb::reg::zero, 1);
  a.addi(asmb::reg::t1, asmb::reg::zero, 2);
  a.addi(asmb::reg::t2, asmb::reg::zero, 3);
  const asmb::Program prog = a.finish();

  std::vector<sim::Core> cores;
  for (const auto e : kEngines) {
    sim::Core c(isa::IsaConfig::full());
    c.set_engine(e);
    if (e == sim::Engine::Jit) c.set_jit_threshold(0);  // trace, not interp
    c.load_program(prog);
    EXPECT_THROW(c.run(), sim::SimError) << sim::engine_name(e);
    cores.push_back(std::move(c));
  }
  for (std::size_t i = 1; i < cores.size(); ++i) {
    EXPECT_TRUE(state_eq(cores[0], cores[i]));
  }
}

// A fault in the *second* half of a fused pair (addi + out-of-bounds lw)
// must leave the same post-exception state as the predecoded engine: the
// addi retired (pc, cycles, instret, register write), the load did not.
TEST(Superblock, FaultInSecondHalfOfPairRetiresFirstHalf) {
  Assembler a;
  a.li(asmb::reg::t0, 0x7ff00000);  // far outside the 8 MiB memory (1 inst)
  a.addi(asmb::reg::t3, asmb::reg::zero, 0);  // filler: aligns the pair below
  a.addi(asmb::reg::t1, asmb::reg::zero, 7);
  a.emit({.op = Op::LW, .rd = asmb::reg::t2, .rs1 = asmb::reg::t0});
  a.ebreak();
  const asmb::Program prog = a.finish();

  std::vector<sim::Core> cores;
  for (const auto e : kEngines) {
    sim::Core c(isa::IsaConfig::full());
    c.set_engine(e);
    if (e == sim::Engine::Jit) c.set_jit_threshold(0);  // mid-trace fault
    c.load_program(prog);
    if (e == sim::Engine::Fused) {
      // The shape under test must actually fuse into an addi+lw pair.
      bool has_pair = false;
      for (const auto& fo : c.superblocks().ops()) {
        has_pair |= fo.len == 2 && fo.u1.op == Op::ADDI && fo.u2.op == Op::LW;
      }
      EXPECT_TRUE(has_pair);
    }
    EXPECT_THROW(c.run(), std::out_of_range) << sim::engine_name(e);
    cores.push_back(std::move(c));
  }
  EXPECT_EQ(cores[0].x(asmb::reg::t1), 7u);  // first half's write landed
  EXPECT_EQ(cores[0].stats().instructions, 3u);  // li (2 uops) + addi
  for (std::size_t i = 1; i < cores.size(); ++i) {
    EXPECT_TRUE(state_eq(cores[0], cores[i]));
  }
}

}  // namespace
}  // namespace sfrv::test
