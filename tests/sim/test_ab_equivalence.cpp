// Randomized A/B equivalence suite: the predecoded micro-op engine must
// match the retained reference interpreter bit-for-bit on architectural
// state (x/f register files, memory, fflags/frm) AND on the timing model
// (cycles, instruction/load/store counts) across every extension
// configuration. Streams read the cycle CSR mid-run, so a single
// mis-accounted cycle also shows up as an architectural divergence.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "asmb/assembler.hpp"
#include "sim/core.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using isa::Cls;
using isa::IsaConfig;
using isa::Lay;
using isa::Op;
namespace reg = asmb::reg;

constexpr std::uint8_t kBaseReg = reg::s0;  // holds the scratch-buffer address
constexpr std::size_t kBufBytes = 256;

class StreamGen {
 public:
  StreamGen(const IsaConfig& cfg, std::uint64_t seed) : rng_(seed) {
    for (std::size_t k = 0; k < isa::kNumOps; ++k) {
      const Op op = static_cast<Op>(k);
      if (!cfg.supports(op)) continue;
      // ECALL/EBREAK would end the stream early.
      if (op == Op::ECALL || op == Op::EBREAK) continue;
      pool_.push_back(op);
    }
  }

  /// Emit `count` random instruction groups into `a`, followed by ebreak.
  /// JALR expands to a two-instruction auipc pair, so "skip one" forward
  /// displacements are only allowed when the following group is a single
  /// instruction (a skip landing mid-pair would read a garbage base).
  void emit_stream(Assembler& a, int count) {
    std::vector<Op> ops(static_cast<std::size_t>(count));
    for (auto& op : ops) op = pick_op();
    for (int i = 0; i < count; ++i) {
      const bool allow_skip = i + 1 < count && ops[i + 1] != Op::JALR;
      const Op op = ops[i];
      if (op == Op::JALR) {
        // Register-indirect targets are made trackable with an auipc pair:
        // target = auipc_pc + imm lands on the next instruction (+8) or
        // skips one (+12). rd may alias the base, exercising the
        // read-before-link-write ordering.
        std::uint8_t base = int_rd();
        if (base == 0) base = reg::t1;
        a.emit({.op = Op::AUIPC, .rd = base, .imm = 0});
        a.emit({.op = Op::JALR, .rd = int_rd(), .rs1 = base,
                .imm = fwd_imm(allow_skip) + 4});
        continue;
      }
      a.emit(random_inst(op, allow_skip));
    }
    a.ebreak();
  }

 private:
  Op pick_op() { return pool_[rng_() % pool_.size()]; }
  std::uint8_t xreg() { return static_cast<std::uint8_t>(rng_() & 31); }
  std::uint8_t freg() { return static_cast<std::uint8_t>(rng_() & 31); }
  /// Integer destination that never clobbers the scratch-buffer base.
  std::uint8_t int_rd() {
    const auto r = xreg();
    return r == kBaseReg ? static_cast<std::uint8_t>(r + 1) : r;
  }
  std::uint8_t rand_rm() {
    const std::uint8_t m[] = {0, 1, 2, 3, 4, isa::kRmDyn};
    return m[rng_() % 6];
  }
  std::int32_t mem_offset() {
    return static_cast<std::int32_t>(rng_() % 63) * 4;
  }
  /// Forward branch/jump displacement that stays inside the stream: +8 skips
  /// one instruction, +4 is a plain fall-through (taken or not).
  std::int32_t fwd_imm(bool allow_skip) {
    return (allow_skip && (rng_() & 1) != 0) ? 8 : 4;
  }

  isa::Inst random_inst(Op op, bool allow_skip) {
    isa::Inst i{.op = op};
    const auto cls = isa::op_class(op);
    switch (isa::layout(op)) {
      case Lay::U:
        i.rd = int_rd();
        i.imm = static_cast<std::int32_t>((rng_() & 0xfffff) << 12);
        break;
      case Lay::J:
        i.rd = int_rd();
        i.imm = fwd_imm(allow_skip);
        break;
      case Lay::Bimm:
        i.rs1 = xreg();
        i.rs2 = xreg();
        i.imm = fwd_imm(allow_skip);
        break;
      case Lay::Iimm:
        if (cls == Cls::Load || cls == Cls::FpLoad) {
          i.rd = cls == Cls::Load ? int_rd() : freg();
          i.rs1 = kBaseReg;
          i.imm = mem_offset();
        } else {
          i.rd = int_rd();
          i.rs1 = xreg();
          i.imm = static_cast<std::int32_t>(rng_() & 0xfff) - 2048;
        }
        break;
      case Lay::Simm:
        i.rs1 = kBaseReg;
        i.rs2 = cls == Cls::Store ? xreg() : freg();
        i.imm = mem_offset();
        break;
      case Lay::Shamt:
        i.rd = int_rd();
        i.rs1 = xreg();
        i.imm = static_cast<std::int32_t>(rng_() & 31);
        break;
      case Lay::R:
        i.rd = int_rd();
        i.rs1 = xreg();
        i.rs2 = xreg();
        break;
      case Lay::FullWord:
        break;  // fence
      case Lay::Csr: {
        const std::int32_t addrs[] = {0x001, 0x002, 0x003, 0xc00, 0xc02};
        i.rd = int_rd();
        i.rs1 = xreg();  // zimm for the I variants: same 5-bit range
        i.imm = addrs[rng_() % 5];
        break;
      }
      case Lay::FpRrm:
      case Lay::FpR2:
        i.rd = isa::rd_is_int(op) ? int_rd() : freg();
        i.rs1 = freg();
        i.rs2 = freg();
        i.rm = rand_rm();
        break;
      case Lay::FpR4:
        i.rd = freg();
        i.rs1 = freg();
        i.rs2 = freg();
        i.rs3 = freg();
        i.rm = rand_rm();
        break;
      case Lay::FpUnaryRm:
      case Lay::FpUnary:
        i.rd = isa::rd_is_int(op) ? int_rd() : freg();
        i.rs1 = isa::rs1_is_int(op) ? xreg() : freg();
        i.rm = rand_rm();
        break;
      case Lay::Vec:
        i.rd = isa::rd_is_int(op) ? int_rd() : freg();
        i.rs1 = freg();
        i.rs2 = freg();
        break;
      case Lay::VecUnary:
        i.rd = freg();
        i.rs1 = freg();
        break;
    }
    return i;
  }

  std::mt19937_64 rng_;
  std::vector<Op> pool_;
};

/// Seed both cores with identical random architectural state.
void seed_state(sim::Core& core, std::uint64_t seed) {
  std::mt19937_64 sr(seed ^ 0x5eed5eed5eed5eedull);
  for (unsigned r = 1; r < 32; ++r) {
    core.set_x(r, static_cast<std::uint32_t>(sr()));
  }
  for (unsigned r = 0; r < 32; ++r) core.set_f_bits(r, sr());
  core.set_fflags(static_cast<std::uint8_t>(sr() & 0x1f));
  core.set_frm(static_cast<fp::RoundingMode>(sr() % 5));
}

/// Run one random stream through both engines; returns executed instructions.
std::uint64_t run_stream(const IsaConfig& cfg, std::uint64_t seed, int count) {
  Assembler a;
  const std::uint32_t buf = a.data_zero(kBufBytes);
  a.la(kBaseReg, buf);
  StreamGen gen(cfg, seed);
  gen.emit_stream(a, count);
  const asmb::Program prog = a.finish();

  sim::Core uop_core(cfg);
  sim::Core ref_core(cfg);
  ref_core.set_engine(sim::Core::Engine::Reference);
  uop_core.load_program(prog);
  ref_core.load_program(prog);
  seed_state(uop_core, seed);
  seed_state(ref_core, seed);

  EXPECT_EQ(uop_core.run(1'000'000), sim::Core::RunResult::Halted);
  EXPECT_EQ(ref_core.run(1'000'000), sim::Core::RunResult::Halted);

  // Architectural state.
  EXPECT_EQ(uop_core.pc(), ref_core.pc());
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(uop_core.x(r), ref_core.x(r)) << "x" << r << " seed=" << seed;
    EXPECT_EQ(uop_core.f_bits(r), ref_core.f_bits(r))
        << "f" << r << " seed=" << seed;
  }
  EXPECT_EQ(uop_core.fflags(), ref_core.fflags()) << "seed=" << seed;
  EXPECT_EQ(uop_core.frm(), ref_core.frm()) << "seed=" << seed;

  // Memory (all stores are confined to the scratch buffer).
  std::vector<std::uint8_t> m_uop(kBufBytes), m_ref(kBufBytes);
  uop_core.memory().read_block(buf, m_uop.data(), kBufBytes);
  ref_core.memory().read_block(buf, m_ref.data(), kBufBytes);
  EXPECT_EQ(m_uop, m_ref) << "seed=" << seed;

  // Timing model.
  EXPECT_EQ(uop_core.stats().cycles, ref_core.stats().cycles)
      << "seed=" << seed;
  EXPECT_EQ(uop_core.stats().instructions, ref_core.stats().instructions);
  EXPECT_EQ(uop_core.stats().load_count, ref_core.stats().load_count);
  EXPECT_EQ(uop_core.stats().store_count, ref_core.stats().store_count);

  return uop_core.stats().instructions;
}

void run_config(const IsaConfig& cfg) {
  std::uint64_t executed = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    executed += run_stream(cfg, 0xAB000000u + s, 1500);
  }
  EXPECT_GE(executed, 10'000u) << "stream generator under-delivers coverage";
}

TEST(AbEquivalence, FullSmallFloatConfig) { run_config(IsaConfig::full()); }

TEST(AbEquivalence, Rv32imfBaseline) { run_config(IsaConfig::rv32imf()); }

TEST(AbEquivalence, FullConfigFlen64) { run_config(IsaConfig::full(64)); }

TEST(AbEquivalence, FullConfigFlen16) { run_config(IsaConfig::full(16)); }

TEST(AbEquivalence, IntegerOnlyConfig) {
  run_config(IsaConfig({isa::Ext::I, isa::Ext::M, isa::Ext::Zicsr}, 32));
}

}  // namespace
}  // namespace sfrv::test
