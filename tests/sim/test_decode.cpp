// Decode-cache tests: DecodedOp lane plans, timing classes, pre-bound
// handlers, and piecewise handler execution over a bare ExecContext.
#include <gtest/gtest.h>

#include "sim/decode.hpp"

namespace sfrv::sim {
namespace {

using fp::FpFormat;
using isa::Inst;
using isa::IsaConfig;
using isa::Op;

DecodedOp dec(Inst i, IsaConfig cfg = IsaConfig::full()) {
  return decode_op(i, cfg, Timing{});
}

TEST(Decode, VectorLanePlansFollowTableII) {
  // FLEN=32: binary8 packs 4 lanes, the 16-bit formats pack 2.
  auto u = dec({.op = Op::VFADD_B});
  EXPECT_EQ(u.fmt, FpFormat::F8);
  EXPECT_EQ(u.width, 8);
  EXPECT_EQ(u.lanes, 4);

  u = dec({.op = Op::VFADD_H});
  EXPECT_EQ(u.fmt, FpFormat::F16);
  EXPECT_EQ(u.width, 16);
  EXPECT_EQ(u.lanes, 2);

  u = dec({.op = Op::VFMAC_AH});
  EXPECT_EQ(u.fmt, FpFormat::F16Alt);
  EXPECT_EQ(u.lanes, 2);

  // FLEN=64 doubles every lane count.
  u = dec({.op = Op::VFADD_B}, IsaConfig::full(64));
  EXPECT_EQ(u.lanes, 8);
  u = dec({.op = Op::VFADD_H}, IsaConfig::full(64));
  EXPECT_EQ(u.lanes, 4);

  // Scalar ops carry a width but no lane plan.
  u = dec({.op = Op::FADD_H});
  EXPECT_EQ(u.width, 16);
  EXPECT_EQ(u.lanes, 0);
}

TEST(Decode, XfauxOpsBindExpandingPlans) {
  // Expanding dot product: packed smallFloat operands, f32 accumulator.
  auto u = dec({.op = Op::VFDOTPEX_S_H});
  EXPECT_EQ(u.fmt, FpFormat::F16);
  EXPECT_EQ(u.lanes, 2);
  EXPECT_FALSE(u.replicate);
  u = dec({.op = Op::VFDOTPEX_S_R_B});
  EXPECT_EQ(u.lanes, 4);
  EXPECT_TRUE(u.replicate);

  // Expanding scalar ops read the small width and write binary32.
  u = dec({.op = Op::FMACEX_S_B});
  EXPECT_EQ(u.width, 32);
  EXPECT_EQ(u.width2, 8);
}

TEST(Decode, ConversionWidthsArePreResolved) {
  auto u = dec({.op = Op::FCVT_H_S});
  EXPECT_EQ(u.width, 16);
  EXPECT_EQ(u.width2, 32);
  u = dec({.op = Op::FCVT_S_B});
  EXPECT_EQ(u.width, 32);
  EXPECT_EQ(u.width2, 8);
}

TEST(Decode, ReplicationVariants) {
  EXPECT_FALSE(dec({.op = Op::VFADD_B}).replicate);
  EXPECT_TRUE(dec({.op = Op::VFADD_R_B}).replicate);
  EXPECT_TRUE(dec({.op = Op::VFMAC_R_H}).replicate);
}

TEST(Decode, TimingClasses) {
  EXPECT_EQ(dec({.op = Op::LW}).tclass, TimingClass::Load);
  EXPECT_EQ(dec({.op = Op::FLH}).tclass, TimingClass::Load);
  EXPECT_EQ(dec({.op = Op::SW}).tclass, TimingClass::Store);
  EXPECT_EQ(dec({.op = Op::FSB}).tclass, TimingClass::Store);
  EXPECT_EQ(dec({.op = Op::JAL}).tclass, TimingClass::Jump);
  EXPECT_EQ(dec({.op = Op::BEQ}).tclass, TimingClass::Branch);
  EXPECT_EQ(dec({.op = Op::ADD}).tclass, TimingClass::None);
  EXPECT_EQ(dec({.op = Op::FADD_S}).tclass, TimingClass::None);
}

TEST(Decode, BaseCyclesPreResolveIterativeUnits) {
  EXPECT_EQ(dec({.op = Op::ADD}).base_cycles, 1);
  EXPECT_EQ(dec({.op = Op::DIV}).base_cycles, 32);
  EXPECT_EQ(dec({.op = Op::FDIV_S}).base_cycles, 15);
  EXPECT_EQ(dec({.op = Op::FDIV_H}).base_cycles, 9);
  EXPECT_EQ(dec({.op = Op::FDIV_B}).base_cycles, 5);
  EXPECT_EQ(dec({.op = Op::FSQRT_S}).base_cycles, 15);
  EXPECT_EQ(dec({.op = Op::VFSQRT_B}).base_cycles, 5);
}

TEST(Decode, UnsupportedOpsBindFaultingHandler) {
  // Faults must fire at execution time (when the PC reaches the op), not at
  // load time -- matching the reference interpreter.
  const auto u = dec({.op = Op::FADD_H}, IsaConfig::rv32imf());
  ASSERT_NE(u.fn, nullptr);
  ExecContext ctx;
  EXPECT_THROW(u.fn(ctx, u), SimError);
}

TEST(Decode, VectorOpsUnsupportedAtNarrowFlen) {
  const auto u = dec({.op = Op::VFADD_H}, IsaConfig::full(16));
  ExecContext ctx;
  EXPECT_THROW(u.fn(ctx, u), SimError);
  // binary8 vectors still fit two lanes in FLEN=16.
  EXPECT_EQ(dec({.op = Op::VFADD_B}, IsaConfig::full(16)).lanes, 2);
}

TEST(Decode, HandlersExecutePiecewise) {
  // An integer handler driven directly, no Core involved.
  auto u = dec({.op = Op::ADDI, .rd = 5, .rs1 = 6, .imm = 42});
  ExecContext ctx;
  ctx.x[6] = 100;
  u.fn(ctx, u);
  EXPECT_EQ(ctx.x[5], 142u);
  EXPECT_EQ(ctx.pc, 4u);

  // A scalar FP handler: result must match the softfloat table directly.
  u = dec({.op = Op::FADD_H, .rd = 3, .rs1 = 1, .rs2 = 2, .rm = isa::kRmDyn});
  ctx.f[1] = 0x3c00;  // 1.0 (binary16)
  ctx.f[2] = 0x4000;  // 2.0
  u.fn(ctx, u);
  EXPECT_EQ(ctx.f[3] & 0xffff, 0x4200u);  // 3.0
  EXPECT_EQ(ctx.pc, 8u);

  // A packed handler with the full 4-lane binary8 plan.
  u = dec({.op = Op::VFADD_B, .rd = 4, .rs1 = 1, .rs2 = 2});
  ctx.f[1] = 0x3c3c3c3c;  // 1.0 in all four binary8 lanes
  ctx.f[2] = 0x3c3c3c3c;
  u.fn(ctx, u);
  EXPECT_EQ(ctx.f[4], 0x40404040u);  // 2.0 lanewise
}

TEST(Decode, WritesToX0AreDiscarded) {
  auto u = dec({.op = Op::ADDI, .rd = 0, .rs1 = 0, .imm = 7});
  ExecContext ctx;
  u.fn(ctx, u);
  EXPECT_EQ(ctx.x[0], 0u);
}

TEST(Decode, ProgramLoweringPreservesIndexing) {
  const std::vector<Inst> text = {
      {.op = Op::ADDI, .rd = 1, .rs1 = 0, .imm = 1},
      {.op = Op::FADD_S, .rd = 2, .rs1 = 1, .rs2 = 1, .rm = isa::kRmDyn},
      {.op = Op::EBREAK},
  };
  const auto uops = decode_program(text, IsaConfig::full(), Timing{});
  ASSERT_EQ(uops.size(), text.size());
  for (std::size_t k = 0; k < text.size(); ++k) {
    EXPECT_EQ(uops[k].op, text[k].op) << k;
    ASSERT_NE(uops[k].fn, nullptr) << k;
  }
}

}  // namespace
}  // namespace sfrv::sim
