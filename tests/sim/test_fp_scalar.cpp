// Scalar FP execution across all four formats: results must match the
// soft-float library called directly, flags must accumulate in fcsr, and
// static/dynamic rounding-mode selection must behave per the ISA.
#include <gtest/gtest.h>

#include <random>

#include "sim_util.hpp"
#include "softfloat/softfloat.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using fp::Flags;
using fp::FpFormat;
using fp::RoundingMode;
using isa::Op;
namespace reg = asmb::reg;

struct FmtCase {
  FpFormat fmt;
  Op fadd, fmul, fdiv, fsqrt, fmadd, fmin, feq, flt, fclass;
  Op load, store;
  int width;
};

const FmtCase kFmtCases[] = {
    {FpFormat::F32, Op::FADD_S, Op::FMUL_S, Op::FDIV_S, Op::FSQRT_S,
     Op::FMADD_S, Op::FMIN_S, Op::FEQ_S, Op::FLT_S, Op::FCLASS_S, Op::FLW,
     Op::FSW, 32},
    {FpFormat::F16, Op::FADD_H, Op::FMUL_H, Op::FDIV_H, Op::FSQRT_H,
     Op::FMADD_H, Op::FMIN_H, Op::FEQ_H, Op::FLT_H, Op::FCLASS_H, Op::FLH,
     Op::FSH, 16},
    {FpFormat::F16Alt, Op::FADD_AH, Op::FMUL_AH, Op::FDIV_AH, Op::FSQRT_AH,
     Op::FMADD_AH, Op::FMIN_AH, Op::FEQ_AH, Op::FLT_AH, Op::FCLASS_AH, Op::FLH,
     Op::FSH, 16},
    {FpFormat::F8, Op::FADD_B, Op::FMUL_B, Op::FDIV_B, Op::FSQRT_B,
     Op::FMADD_B, Op::FMIN_B, Op::FEQ_B, Op::FLT_B, Op::FCLASS_B, Op::FLB,
     Op::FSB, 8},
};

class ScalarFpFormats : public ::testing::TestWithParam<int> {};

TEST_P(ScalarFpFormats, ArithMatchesSoftfloat) {
  const FmtCase& fc = kFmtCases[GetParam()];
  std::mt19937_64 gen(99 + GetParam());
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t abits = gen() & ((1ull << fc.width) - 1);
    const std::uint64_t bbits = gen() & ((1ull << fc.width) - 1);
    const std::uint64_t cbits = gen() & ((1ull << fc.width) - 1);
    auto core = run_program([&](Assembler& a) {
      const auto da = a.data_bytes(&abits, 8, 8);
      const auto db = a.data_bytes(&bbits, 8, 8);
      const auto dc = a.data_bytes(&cbits, 8, 8);
      a.la(reg::s0, da);
      a.la(reg::s1, db);
      a.la(reg::s2, dc);
      a.emit({.op = fc.load, .rd = reg::ft0, .rs1 = reg::s0, .imm = 0});
      a.emit({.op = fc.load, .rd = reg::ft1, .rs1 = reg::s1, .imm = 0});
      a.emit({.op = fc.load, .rd = reg::ft2, .rs1 = reg::s2, .imm = 0});
      a.fp_rrr(fc.fadd, reg::fa0, reg::ft0, reg::ft1, 0 /* RNE static */);
      a.fp_rrr(fc.fmul, reg::fa1, reg::ft0, reg::ft1, 0);
      a.fp_rrr(fc.fdiv, reg::fa2, reg::ft0, reg::ft1, 0);
      a.fp_rr(fc.fsqrt, reg::fa3, reg::ft0, 0);
      a.fp_r4(fc.fmadd, reg::fa4, reg::ft0, reg::ft1, reg::ft2, 0);
      a.fp_rrr(fc.fmin, reg::fa5, reg::ft0, reg::ft1);
      a.ebreak();
    });
    Flags fl;
    const auto rm = RoundingMode::RNE;
    EXPECT_EQ(core.f_bits(reg::fa0) & ((1ull << fc.width) - 1),
              fp::rt_add(fc.fmt, abits, bbits, rm, fl));
    EXPECT_EQ(core.f_bits(reg::fa1) & ((1ull << fc.width) - 1),
              fp::rt_mul(fc.fmt, abits, bbits, rm, fl));
    EXPECT_EQ(core.f_bits(reg::fa2) & ((1ull << fc.width) - 1),
              fp::rt_div(fc.fmt, abits, bbits, rm, fl));
    EXPECT_EQ(core.f_bits(reg::fa3) & ((1ull << fc.width) - 1),
              fp::rt_sqrt(fc.fmt, abits, rm, fl));
    EXPECT_EQ(core.f_bits(reg::fa4) & ((1ull << fc.width) - 1),
              fp::rt_fma(fc.fmt, abits, bbits, cbits, rm, fl));
    EXPECT_EQ(core.f_bits(reg::fa5) & ((1ull << fc.width) - 1),
              fp::rt_min(fc.fmt, abits, bbits, fl));
  }
}

TEST_P(ScalarFpFormats, LoadComputeStoreRoundTrip) {
  const FmtCase& fc = kFmtCases[GetParam()];
  // 2.5 * 1.5 + 0.25 computed through memory.
  Flags fl;
  const auto q = [&](double v) {
    return fp::rt_from_double(fc.fmt, v, RoundingMode::RNE, fl);
  };
  const std::uint64_t x = q(2.5), y = q(1.5), z = q(0.25);
  auto core = run_program([&](Assembler& a) {
    const auto dx = a.data_bytes(&x, 8, 8);
    const auto dy = a.data_bytes(&y, 8, 8);
    const auto dz = a.data_bytes(&z, 8, 8);
    const auto out = a.data_zero(8, 8);
    a.la(reg::s0, dx);
    a.la(reg::s1, dy);
    a.la(reg::s2, dz);
    a.la(reg::s3, out);
    a.emit({.op = fc.load, .rd = reg::ft0, .rs1 = reg::s0, .imm = 0});
    a.emit({.op = fc.load, .rd = reg::ft1, .rs1 = reg::s1, .imm = 0});
    a.emit({.op = fc.load, .rd = reg::ft2, .rs1 = reg::s2, .imm = 0});
    a.fp_r4(fc.fmadd, reg::fa0, reg::ft0, reg::ft1, reg::ft2);
    a.emit({.op = fc.store, .rs1 = reg::s3, .rs2 = reg::fa0, .imm = 0});
    a.ebreak();
  });
  std::uint64_t stored = 0;
  core.memory().read_block(core.memory().config().size > 0 ? 0x100000 + 24 : 0,
                           &stored, fc.width / 8);
  EXPECT_EQ(fp::rt_to_double(fc.fmt, stored), 2.5 * 1.5 + 0.25);
}

TEST_P(ScalarFpFormats, CompareAndClassify) {
  const FmtCase& fc = kFmtCases[GetParam()];
  Flags fl;
  const std::uint64_t one = fp::rt_from_double(fc.fmt, 1.0, RoundingMode::RNE, fl);
  const std::uint64_t two = fp::rt_from_double(fc.fmt, 2.0, RoundingMode::RNE, fl);
  auto core = run_program([&](Assembler& a) {
    const auto d1 = a.data_bytes(&one, 8, 8);
    const auto d2 = a.data_bytes(&two, 8, 8);
    a.la(reg::s0, d1);
    a.la(reg::s1, d2);
    a.emit({.op = fc.load, .rd = reg::ft0, .rs1 = reg::s0, .imm = 0});
    a.emit({.op = fc.load, .rd = reg::ft1, .rs1 = reg::s1, .imm = 0});
    a.fp_rrr(fc.feq, reg::a0, reg::ft0, reg::ft0);
    a.fp_rrr(fc.flt, reg::a1, reg::ft0, reg::ft1);
    a.fp_rrr(fc.flt, reg::a2, reg::ft1, reg::ft0);
    a.fp_rr(fc.fclass, reg::a3, reg::ft0);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), 1u);
  EXPECT_EQ(core.x(reg::a1), 1u);
  EXPECT_EQ(core.x(reg::a2), 0u);
  EXPECT_EQ(core.x(reg::a3),
            static_cast<std::uint32_t>(fp::FpClass::PosNormal));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, ScalarFpFormats, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(
                               fp::format_name(kFmtCases[info.param].fmt));
                         });

TEST(ScalarFp, StaticVsDynamicRounding) {
  // 1.0 + ulp/2 in binary16: RTZ truncates, RUP rounds up. Exercise both the
  // static rm field and the dynamic frm CSR.
  Flags fl;
  const std::uint64_t one = 0x3c00, half_ulp = 0x1000 /* 2^-11 */;
  auto core = run_program([&](Assembler& a) {
    const auto d1 = a.data_bytes(&one, 8, 8);
    const auto d2 = a.data_bytes(&half_ulp, 8, 8);
    a.la(reg::s0, d1);
    a.la(reg::s1, d2);
    a.flh(reg::ft0, 0, reg::s0);
    a.flh(reg::ft1, 0, reg::s1);
    a.fp_rrr(Op::FADD_H, reg::fa0, reg::ft0, reg::ft1,
             static_cast<std::uint8_t>(RoundingMode::RTZ));
    a.fp_rrr(Op::FADD_H, reg::fa1, reg::ft0, reg::ft1,
             static_cast<std::uint8_t>(RoundingMode::RUP));
    a.set_frm(RoundingMode::RUP);
    a.fp_rrr(Op::FADD_H, reg::fa2, reg::ft0, reg::ft1);  // DYN -> RUP
    a.ebreak();
  });
  EXPECT_EQ(core.f_bits(reg::fa0) & 0xffff, 0x3c00u) << "RTZ keeps 1.0";
  EXPECT_EQ(core.f_bits(reg::fa1) & 0xffff, 0x3c01u) << "RUP bumps one ulp";
  EXPECT_EQ(core.f_bits(reg::fa2) & 0xffff, 0x3c01u) << "dynamic RUP";
}

TEST(ScalarFp, FflagsAccumulateAndClear) {
  auto core = run_program([&](Assembler& a) {
    a.li(reg::t0, 1);
    a.fp_rr(Op::FCVT_S_W, reg::ft0, reg::t0);  // 1.0f, exact
    a.li(reg::t1, 0);
    a.fp_rr(Op::FCVT_S_W, reg::ft1, reg::t1);  // 0.0f
    a.fp_rrr(Op::FDIV_S, reg::fa0, reg::ft0, reg::ft1);  // 1/0 -> DZ
    a.csrrs(reg::a0, 0x001, reg::zero);  // read fflags
    a.csrrwi(reg::zero, 0x001, 0);       // clear
    a.csrrs(reg::a1, 0x001, reg::zero);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), Flags::DZ);
  EXPECT_EQ(core.x(reg::a1), 0u);
}

TEST(ScalarFp, ConversionChainAllFormats) {
  // f32 -> f16 -> f8 -> f16 -> f32 on a value representable in binary8.
  auto core = run_program([&](Assembler& a) {
    a.li(reg::t0, 12);  // 12.0 = 1.5 * 2^3, exact in all formats
    a.fp_rr(Op::FCVT_S_W, reg::ft0, reg::t0);
    a.fp_rr(Op::FCVT_H_S, reg::ft1, reg::ft0);
    a.fp_rr(Op::FCVT_B_H, reg::ft2, reg::ft1);
    a.fp_rr(Op::FCVT_H_B, reg::ft3, reg::ft2);
    a.fp_rr(Op::FCVT_S_H, reg::ft4, reg::ft3);
    a.fp_rr(Op::FCVT_W_S, reg::a0, reg::ft4);
    // And the binary16alt leg.
    a.fp_rr(Op::FCVT_AH_S, reg::ft5, reg::ft0);
    a.fp_rr(Op::FCVT_S_AH, reg::ft6, reg::ft5);
    a.fp_rr(Op::FCVT_W_S, reg::a1, reg::ft6);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), 12u);
  EXPECT_EQ(core.x(reg::a1), 12u);
  EXPECT_EQ(core.fflags(), 0u) << "whole chain exact";
}

TEST(ScalarFp, ExpandingMacSemantics) {
  // fmacex.s.h: f32 accumulator += h * h without explicit conversions
  // (the Fig. 5 motivation).
  Flags fl;
  const std::uint64_t a16 = fp::rt_from_double(FpFormat::F16, 0.1, RoundingMode::RNE, fl);
  const std::uint64_t b16 = fp::rt_from_double(FpFormat::F16, 0.2, RoundingMode::RNE, fl);
  auto core = run_program([&](Assembler& a) {
    const auto da = a.data_bytes(&a16, 8, 8);
    const auto db = a.data_bytes(&b16, 8, 8);
    a.la(reg::s0, da);
    a.la(reg::s1, db);
    a.flh(reg::ft0, 0, reg::s0);
    a.flh(reg::ft1, 0, reg::s1);
    a.li(reg::t0, 2);
    a.fp_rr(Op::FCVT_S_W, reg::fa0, reg::t0);  // acc = 2.0f
    a.fp_rrr(Op::FMACEX_S_H, reg::fa0, reg::ft0, reg::ft1);
    a.ebreak();
  });
  // Reference: widen both halves exactly, fused f32 accumulate.
  const std::uint64_t wa = fp::rt_convert(FpFormat::F32, FpFormat::F16, a16, RoundingMode::RNE, fl);
  const std::uint64_t wb = fp::rt_convert(FpFormat::F32, FpFormat::F16, b16, RoundingMode::RNE, fl);
  const std::uint64_t two = fp::rt_from_double(FpFormat::F32, 2.0, RoundingMode::RNE, fl);
  const std::uint64_t want = fp::rt_fma(FpFormat::F32, wa, wb, two, RoundingMode::RNE, fl);
  EXPECT_EQ(core.f_bits(reg::fa0) & 0xffffffff, want);
}

TEST(ScalarFp, NanBoxingOnWrite) {
  // A 16-bit scalar result must be NaN-boxed to FLEN=32.
  auto core = run_program([&](Assembler& a) {
    a.li(reg::t0, 1);
    a.fp_rr(Op::FCVT_H_W, reg::ft0, reg::t0);
    a.ebreak();
  });
  EXPECT_EQ(core.f_bits(reg::ft0), 0xffff3c00u);
}

TEST(ScalarFp, FmvTransfersAndSignExtension) {
  auto core = run_program([&](Assembler& a) {
    a.li(reg::t0, 0xbc00);  // -1.0 in binary16 (bit 15 set)
    a.fp_rr(Op::FMV_H_X, reg::ft0, reg::t0);
    a.fp_rr(Op::FMV_X_H, reg::a0, reg::ft0);
    a.li(reg::t1, 0x7f800000);  // +inf binary32
    a.fp_rr(Op::FMV_S_X, reg::ft1, reg::t1);
    a.fp_rr(Op::FMV_X_S, reg::a1, reg::ft1);
    a.fp_rr(Op::FCLASS_S, reg::a2, reg::ft1);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), 0xffffbc00u) << "fmv.x.h sign-extends";
  EXPECT_EQ(core.x(reg::a1), 0x7f800000u);
  EXPECT_EQ(core.x(reg::a2), static_cast<std::uint32_t>(fp::FpClass::PosInf));
}

}  // namespace
}  // namespace sfrv::test
