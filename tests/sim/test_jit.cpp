// Engine::Jit translation-cache unit tests: hotness-threshold promotion
// (blocks interpret until entered more than `threshold` times), wholesale
// invalidation on Core::set_backend (compiled traces hold bound softfloat
// pointers), mid-block jalr entry (a dynamic target that is not a cached
// trace start), and the cap/eviction path. Architectural identity across
// all of it is the fuzzer's job (test_ab_equivalence.cpp); these tests pin
// the cache *mechanics* plus spot-check results against Engine::Predecoded.
#include <gtest/gtest.h>

#include "asmb/assembler.hpp"
#include "sim/core.hpp"

namespace sfrv::test {
namespace {

using isa::Op;
using sim::Engine;
namespace reg = asmb::reg;

/// count-iteration counting loop; the loop head is (re-)entered via the
/// taken back-edge `count - 1` times.
asmb::Program counting_loop(int count) {
  asmb::Assembler a;
  a.li(reg::t0, count);
  a.addi(reg::t1, reg::zero, 0);
  const auto loop = a.here();
  a.addi(reg::t1, reg::t1, 3);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
  return a.finish();
}

sim::Core make_jit_core(const asmb::Program& prog, std::uint32_t threshold) {
  sim::Core core;
  core.set_engine(Engine::Jit);
  core.set_jit_threshold(threshold);
  core.load_program(prog);
  return core;
}

void expect_matches_predecoded(sim::Core& jit, const asmb::Program& prog) {
  sim::Core pre;
  pre.set_backend(jit.backend());
  pre.load_program(prog);
  ASSERT_EQ(pre.run(), sim::Core::RunResult::Halted);
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(jit.x(r), pre.x(r)) << "x" << r;
    EXPECT_EQ(jit.f_bits(r), pre.f_bits(r)) << "f" << r;
  }
  EXPECT_EQ(jit.pc(), pre.pc());
  EXPECT_EQ(jit.fflags(), pre.fflags());
  EXPECT_EQ(jit.stats().cycles, pre.stats().cycles);
  EXPECT_EQ(jit.stats().instructions, pre.stats().instructions);
}

TEST(JitCache, HotnessThresholdPromotion) {
  // With threshold T the loop head compiles on its (T+1)-th entry. The head
  // is entered count-1 times (taken back-edges), so count = T+2 is the
  // first iteration count that compiles anything (the entry block runs
  // once and never gets hot).
  constexpr std::uint32_t kT = 3;
  {
    sim::Core cold = make_jit_core(counting_loop(kT + 1), kT);
    ASSERT_EQ(cold.run(), sim::Core::RunResult::Halted);
    EXPECT_EQ(cold.jit_stats().translations, 0u);
    EXPECT_EQ(cold.jit_cache_size(), 0u);
    EXPECT_GT(cold.jit_stats().interp_entries, 0u);
    expect_matches_predecoded(cold, counting_loop(kT + 1));
  }
  {
    // count = kT+3: the head's (kT+1)-th entry compiles, and the one after
    // it is the first cache hit.
    sim::Core hot = make_jit_core(counting_loop(kT + 3), kT);
    ASSERT_EQ(hot.run(), sim::Core::RunResult::Halted);
    EXPECT_EQ(hot.jit_stats().translations, 1u);
    EXPECT_EQ(hot.jit_cache_size(), 1u);
    EXPECT_GT(hot.jit_stats().hits, 0u);
    expect_matches_predecoded(hot, counting_loop(kT + 3));
  }
  // Threshold 0 compiles every entered block on first entry.
  {
    sim::Core eager = make_jit_core(counting_loop(4), 0);
    ASSERT_EQ(eager.run(), sim::Core::RunResult::Halted);
    EXPECT_GE(eager.jit_stats().translations, 2u);  // entry block + loop head
    EXPECT_EQ(eager.jit_stats().interp_entries, 0u);
    expect_matches_predecoded(eager, counting_loop(4));
  }
}

TEST(JitCache, SetBackendInvalidatesAndRecompiles) {
  // FP ops bind softfloat table entries into the micro-ops, which compiled
  // traces capture; switching the backend must drop every trace.
  asmb::Assembler a;
  a.li(reg::t0, 20);
  a.li(reg::t1, 0x3c003c00);
  a.emit({.op = Op::FMV_S_X, .rd = 1, .rs1 = reg::t1});
  const auto loop = a.here();
  a.fp_rrr(Op::VFADD_H, 2, 1, 1);
  a.fp_rrr(Op::FMUL_S, 3, 1, 2);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
  const asmb::Program prog = a.finish();

  sim::Core core = make_jit_core(prog, 0);
  ASSERT_EQ(core.run(), sim::Core::RunResult::Halted);
  ASSERT_GT(core.jit_cache_size(), 0u);

  // Robust under SFRV_BACKEND=fast runs: always switch to the *other* one.
  const fp::MathBackend other = core.backend() == fp::MathBackend::Grs
                                    ? fp::MathBackend::Fast
                                    : fp::MathBackend::Grs;
  core.set_backend(other);
  EXPECT_EQ(core.jit_cache_size(), 0u);
  EXPECT_GE(core.jit_stats().invalidations, 1u);

  // A rerun under the new backend recompiles and still matches predecoded.
  core.load_program(prog);
  core.clear_stats();
  ASSERT_EQ(core.run(), sim::Core::RunResult::Halted);
  EXPECT_GT(core.jit_cache_size(), 0u);
  expect_matches_predecoded(core, prog);
}

TEST(JitCache, MidBlockJalrEntryCompilesSuffix) {
  // The jalr lands 12 bytes past the auipc — on the *middle* of the trace
  // compiled from the entry block. That index is not a cached trace start:
  // the driver misses, counts an entry, and (threshold 0) compiles a suffix
  // trace at the landing pc. Both paths must retire identically.
  asmb::Assembler a;
  a.emit({.op = Op::AUIPC, .rd = reg::t2, .imm = 0});
  a.emit({.op = Op::JALR, .rd = reg::ra, .rs1 = reg::t2, .imm = 12});
  a.addi(reg::s1, reg::zero, 111);  // skipped
  a.addi(reg::s2, reg::zero, 222);  // jalr target: mid-trace index
  a.addi(reg::s3, reg::zero, 333);
  a.ebreak();
  const asmb::Program prog = a.finish();

  sim::Core core = make_jit_core(prog, 0);
  ASSERT_EQ(core.run(), sim::Core::RunResult::Halted);
  EXPECT_EQ(core.x(reg::s1), 0u);
  EXPECT_EQ(core.x(reg::s2), 222u);
  EXPECT_EQ(core.x(reg::s3), 333u);
  // Entry trace + the suffix trace at the landing index.
  EXPECT_EQ(core.jit_stats().translations, 2u);
  expect_matches_predecoded(core, prog);
}

TEST(JitCache, CapEvictionKeepsResultsIdentical) {
  // Four distinct trace starts (two loop entries, two loop heads — plus
  // fall-through re-entries) against a 2-trace cap force the flush-all
  // eviction path at least once; results must not change.
  asmb::Assembler a;
  a.li(reg::t0, 5);
  const auto l1 = a.here();
  a.addi(reg::t1, reg::t1, 1);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, l1);
  a.li(reg::t0, 5);
  const auto l2 = a.here();
  a.addi(reg::t2, reg::t2, 2);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, l2);
  a.ebreak();
  const asmb::Program prog = a.finish();

  sim::Core core = make_jit_core(prog, 0);
  core.set_jit_cache_cap(2);
  ASSERT_EQ(core.run(), sim::Core::RunResult::Halted);
  EXPECT_GE(core.jit_stats().evictions, 1u);
  EXPECT_LE(core.jit_cache_size(), 2u);
  EXPECT_EQ(core.x(reg::t1), 5u);
  EXPECT_EQ(core.x(reg::t2), 10u);
  expect_matches_predecoded(core, prog);
}

TEST(JitCache, TelemetryAndKnobAccessors) {
  sim::Core core = make_jit_core(counting_loop(50), 0);
  EXPECT_EQ(core.jit_threshold(), 0u);
  core.set_jit_cache_cap(0);  // clamps to 1
  ASSERT_EQ(core.run(), sim::Core::RunResult::Halted);
  const sim::jit::JitStats& st = core.jit_stats();
  EXPECT_GT(st.lookups, 0u);
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.hit_rate(), 0.0);
  EXPECT_LE(st.hit_rate(), 1.0);
  EXPECT_GT(st.slots, 0u);
  EXPECT_LE(core.jit_cache_size(), 1u);
}

}  // namespace
}  // namespace sfrv::test
