// Directed semantics tests for the RV32I base ISA and the M extension.
#include <gtest/gtest.h>

#include "sim_util.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
namespace reg = asmb::reg;

TEST(Rv32i, ArithmeticImmediates) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::a0, 100);
    a.addi(reg::a1, reg::a0, -30);      // 70
    a.emit({.op = isa::Op::SLTI, .rd = reg::a2, .rs1 = reg::a1, .imm = 71});
    a.emit({.op = isa::Op::XORI, .rd = reg::a3, .rs1 = reg::a0, .imm = 0xff});
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a1), 70u);
  EXPECT_EQ(core.x(reg::a2), 1u);
  EXPECT_EQ(core.x(reg::a3), 100u ^ 0xffu);
}

TEST(Rv32i, LuiAddiLargeConstants) {
  for (std::int32_t v : {0x12345678, -0x12345678, 0x7fffffff, -2048, 2047,
                         0x800, -0x801, 0, 1, -1, static_cast<std::int32_t>(0x80000000)}) {
    auto core = run_program([v](Assembler& a) {
      a.li(reg::a0, v);
      a.ebreak();
    });
    EXPECT_EQ(core.x(reg::a0), static_cast<std::uint32_t>(v)) << v;
  }
}

TEST(Rv32i, ShiftsAndCompares) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::a0, -8);
    a.srai(reg::a1, reg::a0, 1);   // -4
    a.srli(reg::a2, reg::a0, 28);  // 0xf
    a.slli(reg::a3, reg::a0, 2);   // -32
    a.li(reg::t0, 5);
    a.li(reg::t1, -3);
    a.emit({.op = isa::Op::SLT, .rd = reg::a4, .rs1 = reg::t1, .rs2 = reg::t0});
    a.emit({.op = isa::Op::SLTU, .rd = reg::a5, .rs1 = reg::t1, .rs2 = reg::t0});
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a1), static_cast<std::uint32_t>(-4));
  EXPECT_EQ(core.x(reg::a2), 0xfu);
  EXPECT_EQ(core.x(reg::a3), static_cast<std::uint32_t>(-32));
  EXPECT_EQ(core.x(reg::a4), 1u) << "-3 < 5 signed";
  EXPECT_EQ(core.x(reg::a5), 0u) << "0xfffffffd > 5 unsigned";
}

TEST(Rv32i, LoadStoreAllWidths) {
  auto core = run_program([](Assembler& a) {
    const auto buf = a.data_zero(16);
    a.la(reg::s0, buf);
    a.li(reg::a0, 0x80);       // sign bit for byte
    a.sb(reg::a0, 0, reg::s0);
    a.li(reg::a1, 0x8000);     // sign bit for half
    a.sh(reg::a1, 4, reg::s0);
    a.li(reg::a2, 0x12345678);
    a.sw(reg::a2, 8, reg::s0);
    a.lbu(reg::t0, 0, reg::s0);
    a.emit({.op = isa::Op::LB, .rd = reg::t1, .rs1 = reg::s0, .imm = 0});
    a.lhu(reg::t2, 4, reg::s0);
    a.lh(reg::t3, 4, reg::s0);
    a.lw(reg::t4, 8, reg::s0);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::t0), 0x80u);
  EXPECT_EQ(core.x(reg::t1), 0xffffff80u);
  EXPECT_EQ(core.x(reg::t2), 0x8000u);
  EXPECT_EQ(core.x(reg::t3), 0xffff8000u);
  EXPECT_EQ(core.x(reg::t4), 0x12345678u);
}

TEST(Rv32i, BranchesAndLoop) {
  // Sum 1..10 with a bne loop.
  auto core = run_program([](Assembler& a) {
    a.li(reg::a0, 0);
    a.li(reg::t0, 1);
    a.li(reg::t1, 11);
    const auto loop = a.here();
    a.add(reg::a0, reg::a0, reg::t0);
    a.addi(reg::t0, reg::t0, 1);
    a.bne(reg::t0, reg::t1, loop);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), 55u);
}

TEST(Rv32i, ForwardBranchAndJal) {
  auto core = run_program([](Assembler& a) {
    const auto skip = a.make_label();
    const auto end = a.make_label();
    a.li(reg::a0, 1);
    a.li(reg::a1, 1);
    a.beq(reg::a0, reg::a1, skip);
    a.li(reg::a2, 111);  // skipped
    a.bind(skip);
    a.li(reg::a2, 222);
    a.j(end);
    a.li(reg::a2, 333);  // skipped
    a.bind(end);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a2), 222u);
}

TEST(Rv32i, FunctionCallReturn) {
  auto core = run_program([](Assembler& a) {
    const auto fn = a.make_label();
    a.li(reg::a0, 5);
    a.jal(reg::ra, fn);
    a.addi(reg::a1, reg::a0, 1);  // after return: a1 = 16
    a.ebreak();
    a.bind(fn);
    a.slli(reg::a0, reg::a0, 1);  // a0 = 10
    a.addi(reg::a0, reg::a0, 5);  // a0 = 15
    a.ret();
  });
  EXPECT_EQ(core.x(reg::a1), 16u);
}

TEST(Rv32i, X0IsHardwiredZero) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::zero, 42);
    a.mv(reg::a0, reg::zero);
    a.ebreak();
  });
  EXPECT_EQ(core.x(0), 0u);
  EXPECT_EQ(core.x(reg::a0), 0u);
}

TEST(Rv32m, MultiplyFamily) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::a0, -7);
    a.li(reg::a1, 6);
    a.mul(reg::t0, reg::a0, reg::a1);
    a.emit({.op = isa::Op::MULH, .rd = reg::t1, .rs1 = reg::a0, .rs2 = reg::a1});
    a.emit({.op = isa::Op::MULHU, .rd = reg::t2, .rs1 = reg::a0, .rs2 = reg::a1});
    a.emit({.op = isa::Op::MULHSU, .rd = reg::t3, .rs1 = reg::a0, .rs2 = reg::a1});
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::t0), static_cast<std::uint32_t>(-42));
  EXPECT_EQ(core.x(reg::t1), 0xffffffffu);  // high of -42
  // mulhu: 0xfffffff9 * 6 = 0x5_FFFFFFD6 -> high = 5
  EXPECT_EQ(core.x(reg::t2), 5u);
  EXPECT_EQ(core.x(reg::t3), 0xffffffffu);
}

TEST(Rv32m, DivisionEdgeCases) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::a0, -20);
    a.li(reg::a1, 6);
    a.emit({.op = isa::Op::DIV, .rd = reg::t0, .rs1 = reg::a0, .rs2 = reg::a1});
    a.emit({.op = isa::Op::REM, .rd = reg::t1, .rs1 = reg::a0, .rs2 = reg::a1});
    // Division by zero: quotient -1, remainder = dividend.
    a.li(reg::a2, 0);
    a.emit({.op = isa::Op::DIV, .rd = reg::t2, .rs1 = reg::a0, .rs2 = reg::a2});
    a.emit({.op = isa::Op::REM, .rd = reg::t3, .rs1 = reg::a0, .rs2 = reg::a2});
    // Overflow: INT_MIN / -1.
    a.li(reg::a3, static_cast<std::int32_t>(0x80000000));
    a.li(reg::a4, -1);
    a.emit({.op = isa::Op::DIV, .rd = reg::t4, .rs1 = reg::a3, .rs2 = reg::a4});
    a.emit({.op = isa::Op::REM, .rd = reg::t5, .rs1 = reg::a3, .rs2 = reg::a4});
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::t0), static_cast<std::uint32_t>(-3));  // trunc toward 0
  EXPECT_EQ(core.x(reg::t1), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(core.x(reg::t2), 0xffffffffu);
  EXPECT_EQ(core.x(reg::t3), static_cast<std::uint32_t>(-20));
  EXPECT_EQ(core.x(reg::t4), 0x80000000u);
  EXPECT_EQ(core.x(reg::t5), 0u);
}

TEST(Sim, UnsupportedInstructionTraps) {
  asmb::Assembler a;
  a.fp_rrr(isa::Op::FADD_H, 0, 1, 2);
  a.ebreak();
  sim::Core core(isa::IsaConfig::rv32imf());
  core.load_program(a.finish());
  EXPECT_THROW(core.run(), sim::SimError);
}

TEST(Sim, FetchOutsideTextTraps) {
  asmb::Assembler a;
  a.nop();  // no ebreak: falls off the end
  sim::Core core;
  core.load_program(a.finish());
  EXPECT_THROW(core.run(), sim::SimError);
}

TEST(Sim, MemoryOutOfBoundsTraps) {
  asmb::Assembler a;
  a.li(reg::a0, 0x7fffff8);  // beyond the 8 MiB default
  a.lw(reg::a1, 0, reg::a0);
  a.ebreak();
  sim::Core core;
  core.load_program(a.finish());
  EXPECT_THROW(core.run(), std::out_of_range);
}

TEST(Sim, ExitCodeViaEcall) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::a0, 17);
    a.emit({.op = isa::Op::ECALL});
  });
  EXPECT_EQ(core.exit_code(), 17u);
}

}  // namespace
}  // namespace sfrv::test
