// Additional Xfaux / vector coverage: expanding ops for every smallFloat
// format, replicated dot products, vector sgnj/min/max/sqrt, and NaN-box
// interactions between scalar and vector views of a register.
#include <gtest/gtest.h>

#include <random>

#include "sim_util.hpp"
#include "softfloat/softfloat.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using fp::Flags;
using fp::FpFormat;
using fp::RoundingMode;
using isa::Op;
namespace reg = asmb::reg;

std::uint64_t lane_get(std::uint64_t v, int l, int w) {
  return (v >> (l * w)) & ((1ull << w) - 1);
}

struct ExCase {
  FpFormat fmt;
  int width;
  Op fmulex, fmacex, vdotp_r;
};

const ExCase kExCases[] = {
    {FpFormat::F16, 16, Op::FMULEX_S_H, Op::FMACEX_S_H, Op::VFDOTPEX_S_R_H},
    {FpFormat::F16Alt, 16, Op::FMULEX_S_AH, Op::FMACEX_S_AH,
     Op::VFDOTPEX_S_R_AH},
    {FpFormat::F8, 8, Op::FMULEX_S_B, Op::FMACEX_S_B, Op::VFDOTPEX_S_R_B},
};

class XfauxFormats : public ::testing::TestWithParam<int> {};

TEST_P(XfauxFormats, ExpandingMulAndMacMatchWidenedF32) {
  const ExCase& ec = kExCases[GetParam()];
  std::mt19937_64 gen(55 + GetParam());
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = gen() & ((1ull << ec.width) - 1);
    const std::uint64_t b = gen() & ((1ull << ec.width) - 1);
    const std::uint32_t acc0 = static_cast<std::uint32_t>(gen());
    auto core = run_program([&](Assembler& as) {
      const auto da = as.data_bytes(&a, 8, 8);
      const auto db = as.data_bytes(&b, 8, 8);
      const auto dc = as.data_u32(acc0);
      as.la(reg::s0, da);
      as.la(reg::s1, db);
      as.la(reg::s2, dc);
      if (ec.width == 16) {
        as.flh(reg::ft0, 0, reg::s0);
        as.flh(reg::ft1, 0, reg::s1);
      } else {
        as.flb(reg::ft0, 0, reg::s0);
        as.flb(reg::ft1, 0, reg::s1);
      }
      as.flw(reg::fa0, 0, reg::s2);  // accumulator
      as.fp_rrr(ec.fmulex, reg::fa1, reg::ft0, reg::ft1);
      as.fp_rrr(ec.fmacex, reg::fa0, reg::ft0, reg::ft1);
      as.ebreak();
    });
    Flags fl;
    const auto wa =
        fp::rt_convert(FpFormat::F32, ec.fmt, a, RoundingMode::RNE, fl);
    const auto wb =
        fp::rt_convert(FpFormat::F32, ec.fmt, b, RoundingMode::RNE, fl);
    const auto want_mul = fp::rt_mul(FpFormat::F32, wa, wb, RoundingMode::RNE, fl);
    const auto want_mac =
        fp::rt_fma(FpFormat::F32, wa, wb, acc0, RoundingMode::RNE, fl);
    auto canon = [](std::uint64_t bits) {
      // Compare NaNs as canonical (payloads collapse on any path).
      const auto f = fp::F32::from_bits(bits);
      return f.is_nan() ? fp::F32::quiet_nan().bits : f.bits;
    };
    ASSERT_EQ(canon(core.f_bits(reg::fa1) & 0xffffffff), canon(want_mul))
        << std::hex << a << " " << b;
    ASSERT_EQ(canon(core.f_bits(reg::fa0) & 0xffffffff), canon(want_mac))
        << std::hex << a << " " << b << " acc=" << acc0;
  }
}

TEST_P(XfauxFormats, ReplicatedDotProduct) {
  const ExCase& ec = kExCases[GetParam()];
  const int lanes = 32 / ec.width;
  std::mt19937_64 gen(77 + GetParam());
  for (int t = 0; t < 300; ++t) {
    const std::uint32_t va = static_cast<std::uint32_t>(gen());
    const std::uint32_t vb = static_cast<std::uint32_t>(gen());
    auto core = run_program([&](Assembler& as) {
      const auto da = as.data_u32(va);
      const auto db = as.data_u32(vb);
      as.la(reg::s0, da);
      as.la(reg::s1, db);
      as.flw(reg::ft0, 0, reg::s0);
      as.flw(reg::ft1, 0, reg::s1);
      as.fp_rr(Op::FMV_S_X, reg::fa0, reg::zero);  // acc = +0
      as.fp_rrr(ec.vdotp_r, reg::fa0, reg::ft0, reg::ft1);
      as.ebreak();
    });
    Flags fl;
    std::uint64_t acc = 0;  // +0.0f
    const auto wb = fp::rt_convert(FpFormat::F32, ec.fmt,
                                   lane_get(vb, 0, ec.width), RoundingMode::RNE, fl);
    for (int l = 0; l < lanes; ++l) {
      const auto wa = fp::rt_convert(FpFormat::F32, ec.fmt,
                                     lane_get(va, l, ec.width), RoundingMode::RNE, fl);
      acc = fp::rt_fma(FpFormat::F32, wa, wb, acc, RoundingMode::RNE, fl);
    }
    auto canon = [](std::uint64_t bits) {
      const auto f = fp::F32::from_bits(bits);
      return f.is_nan() ? fp::F32::quiet_nan().bits : f.bits;
    };
    ASSERT_EQ(canon(core.f_bits(reg::fa0) & 0xffffffff), canon(acc))
        << std::hex << va << " " << vb;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, XfauxFormats, ::testing::Range(0, 3),
                         [](const auto& info) {
                           return std::string(
                               fp::format_name(kExCases[info.param].fmt));
                         });

TEST(VectorMisc, SgnjMinMaxSqrtLanewise) {
  std::mt19937_64 gen(99);
  for (int t = 0; t < 300; ++t) {
    const std::uint32_t va = static_cast<std::uint32_t>(gen());
    const std::uint32_t vb = static_cast<std::uint32_t>(gen());
    auto core = run_program([&](Assembler& as) {
      const auto da = as.data_u32(va);
      const auto db = as.data_u32(vb);
      as.la(reg::s0, da);
      as.la(reg::s1, db);
      as.flw(reg::ft0, 0, reg::s0);
      as.flw(reg::ft1, 0, reg::s1);
      as.fp_rrr(Op::VFSGNJ_H, reg::fa0, reg::ft0, reg::ft1);
      as.fp_rrr(Op::VFSGNJN_H, reg::fa1, reg::ft0, reg::ft1);
      as.fp_rrr(Op::VFSGNJX_H, reg::fa2, reg::ft0, reg::ft1);
      as.fp_rrr(Op::VFMIN_H, reg::fa3, reg::ft0, reg::ft1);
      as.fp_rrr(Op::VFMAX_H, reg::fa4, reg::ft0, reg::ft1);
      as.fp_rr(Op::VFSQRT_H, reg::fa5, reg::ft0);
      as.ebreak();
    });
    Flags fl;
    for (int l = 0; l < 2; ++l) {
      const auto al = lane_get(va, l, 16);
      const auto bl = lane_get(vb, l, 16);
      ASSERT_EQ(lane_get(core.f_bits(reg::fa0), l, 16),
                fp::rt_sgnj(FpFormat::F16, al, bl));
      ASSERT_EQ(lane_get(core.f_bits(reg::fa1), l, 16),
                fp::rt_sgnjn(FpFormat::F16, al, bl));
      ASSERT_EQ(lane_get(core.f_bits(reg::fa2), l, 16),
                fp::rt_sgnjx(FpFormat::F16, al, bl));
      ASSERT_EQ(lane_get(core.f_bits(reg::fa3), l, 16),
                fp::rt_min(FpFormat::F16, al, bl, fl));
      ASSERT_EQ(lane_get(core.f_bits(reg::fa4), l, 16),
                fp::rt_max(FpFormat::F16, al, bl, fl));
      ASSERT_EQ(lane_get(core.f_bits(reg::fa5), l, 16),
                fp::rt_sqrt(FpFormat::F16, al, RoundingMode::RNE, fl));
    }
  }
}

TEST(NanBoxing, ScalarWriteBoxesVectorReadSeesLanes) {
  // A scalar f16 write NaN-boxes the register; a subsequent vector op sees
  // lane 0 = the value and lane 1 = 0xffff (a NaN in both 16-bit formats).
  auto core = run_program([&](Assembler& as) {
    as.li(reg::t0, 2);
    as.fp_rr(Op::FCVT_H_W, reg::ft0, reg::t0);  // boxed 2.0h
    as.fp_rr(Op::FMV_S_X, reg::ft1, reg::zero);
    as.fp_rrr(Op::VFADD_H, reg::fa0, reg::ft0, reg::ft1);
    as.ebreak();
  });
  EXPECT_EQ(lane_get(core.f_bits(reg::fa0), 0, 16),
            0x4000u) << "lane0: 2.0 + 0.0";
  const auto lane1 = fp::F16::from_bits(lane_get(core.f_bits(reg::fa0), 1, 16));
  EXPECT_TRUE(lane1.is_nan()) << "lane1: boxing pattern + 0 stays NaN";
}

TEST(VectorCompare, ScalarCompareIgnoresUpperLanes) {
  // Scalar f16 compare must only consider the low half even when the upper
  // half contains live vector data.
  auto core = run_program([&](Assembler& as) {
    const std::uint32_t packed = 0x3c00 | (0xbc00u << 16);  // {1.0, -1.0}
    const auto d = as.data_u32(packed);
    as.la(reg::s0, d);
    as.flw(reg::ft0, 0, reg::s0);
    as.flw(reg::ft1, 0, reg::s0);
    as.fp_rrr(Op::FEQ_H, reg::a0, reg::ft0, reg::ft1);
    as.fp_rrr(Op::VFEQ_H, reg::a1, reg::ft0, reg::ft1);
    as.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), 1u);
  EXPECT_EQ(core.x(reg::a1), 0b11u);
}

}  // namespace
}  // namespace sfrv::test
