// ExSdotp (widening sum-of-dot-products) execution: the vfexsdotp family
// accumulates packed narrow products into a FULL vector register of
// one-step-wider lanes — wide lane wl chains two fused steps over narrow
// lanes 2*wl and 2*wl+1, each operand widened exactly first. These tests pin
// that contract across all four (narrow, wide) pairs the unit serves:
//
//  * lane-order pinning: the result equals the documented
//    fma(w(a[2wl+1]), w(b[2wl+1]), fma(w(a[2wl]), w(b[2wl]), acc[wl]))
//    chain, and directed inputs prove the order is observable (the reversed
//    chain produces different bits);
//  * exact-wide-intermediate property: dot products whose terms overflow or
//    round in the narrow format are exact in the wide accumulator, checked
//    against an exactly-representable double reference;
//  * conformance: bits and accumulated fflags are identical across all four
//    engines and both math backends.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim_util.hpp"
#include "softfloat/softfloat.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using fp::Flags;
using fp::FpFormat;
using fp::RoundingMode;
using isa::Op;
namespace reg = asmb::reg;

struct ExsCase {
  FpFormat narrow, wide;
  int w;  // narrow lane width; wide lanes are 2*w
  Op op, op_r;
};

const ExsCase kCases[] = {
    {FpFormat::F8, FpFormat::F16, 8, Op::VFEXSDOTP_H_B, Op::VFEXSDOTP_R_H_B},
    {FpFormat::F16, FpFormat::F32, 16, Op::VFEXSDOTP_S_H,
     Op::VFEXSDOTP_R_S_H},
    {FpFormat::F16Alt, FpFormat::F32, 16, Op::VFEXSDOTP_S_AH,
     Op::VFEXSDOTP_R_S_AH},
    {FpFormat::P8, FpFormat::P16, 8, Op::VFEXSDOTP_P16_P8,
     Op::VFEXSDOTP_R_P16_P8},
};

std::uint64_t lane_get(std::uint64_t v, int l, int w) {
  return (v >> (l * w)) & ((w == 64) ? ~0ull : ((1ull << w) - 1));
}

/// Encode a double into any format (IEEE or posit) through the 7x7 convert
/// table; the value must be exactly representable for directed tests.
std::uint64_t enc(FpFormat f, double v) {
  Flags fl;
  return fp::rt_convert(f, FpFormat::F64, fp::from_host(v).bits,
                        RoundingMode::RNE, fl);
}

/// The pinned reference chain, written against the scalar rt_* entry points
/// (mirroring how test_fp_vector.cpp pins the vfdotpex contract).
std::uint32_t ref_exsdotp(const ExsCase& ec, std::uint32_t va,
                          std::uint32_t vb, std::uint32_t acc, bool rep,
                          RoundingMode rm, Flags& fl) {
  const int lanes = 32 / ec.w;
  const int ww = 2 * ec.w;
  std::uint64_t wb0 = 0;
  if (rep) {
    wb0 = fp::rt_convert(ec.wide, ec.narrow, lane_get(vb, 0, ec.w),
                         RoundingMode::RNE, fl);
  }
  std::uint64_t out = 0;
  for (int wl = 0; wl < lanes / 2; ++wl) {
    std::uint64_t accl = lane_get(acc, wl, ww);
    for (int k = 0; k < 2; ++k) {
      const int l = 2 * wl + k;
      const std::uint64_t wa = fp::rt_convert(
          ec.wide, ec.narrow, lane_get(va, l, ec.w), RoundingMode::RNE, fl);
      const std::uint64_t wb =
          rep ? wb0
              : fp::rt_convert(ec.wide, ec.narrow, lane_get(vb, l, ec.w),
                               RoundingMode::RNE, fl);
      accl = fp::rt_fma(ec.wide, wa, wb, accl, rm, fl);
    }
    out |= accl << (wl * ww);
  }
  return static_cast<std::uint32_t>(out);
}

/// One vfexsdotp through the simulator: load a, b, acc, execute, halt.
sim::Core run_one(Op op, std::uint32_t va, std::uint32_t vb,
                  std::uint32_t acc, RoundingMode rm = RoundingMode::RNE) {
  return run_program([&](Assembler& a) {
    const auto da = a.data_u32(va);
    const auto db = a.data_u32(vb);
    const auto dacc = a.data_u32(acc);
    a.la(reg::s0, da);
    a.la(reg::s1, db);
    a.la(reg::s2, dacc);
    a.flw(reg::ft0, 0, reg::s0);
    a.flw(reg::ft1, 0, reg::s1);
    a.flw(reg::fa0, 0, reg::s2);
    a.set_frm(rm);
    a.fp_rrr(op, reg::fa0, reg::ft0, reg::ft1);
    a.ebreak();
  });
}

class ExSdotp : public ::testing::TestWithParam<int> {};

TEST_P(ExSdotp, MatchesPinnedLaneOrderReferenceWithFlags) {
  const ExsCase& ec = kCases[GetParam()];
  const bool posit = ec.narrow == FpFormat::P8;
  std::mt19937_64 gen(31 + GetParam());
  const RoundingMode rms[] = {RoundingMode::RNE, RoundingMode::RTZ,
                              RoundingMode::RUP};
  for (int t = 0; t < 400; ++t) {
    const auto va = static_cast<std::uint32_t>(gen());
    const auto vb = static_cast<std::uint32_t>(gen());
    const auto acc = static_cast<std::uint32_t>(gen());
    const RoundingMode rm = rms[t % 3];
    for (const bool rep : {false, true}) {
      auto core = run_one(rep ? ec.op_r : ec.op, va, vb, acc, rm);
      Flags fl;
      const std::uint32_t want = ref_exsdotp(ec, va, vb, acc, rep, rm, fl);
      ASSERT_EQ(core.f_bits(reg::fa0), want)
          << fp::format_name(ec.narrow) << " rep=" << rep << " va=0x"
          << std::hex << va << " vb=0x" << vb << " acc=0x" << acc;
      ASSERT_EQ(core.fflags(), fl.bits)
          << fp::format_name(ec.narrow) << " rep=" << rep;
      if (posit) {
        EXPECT_EQ(core.fflags(), 0u) << "posit exsdotp must not raise flags";
      }
    }
  }
}

TEST_P(ExSdotp, AccumulationOrderIsObservable) {
  // Directed non-associativity probe inside wide lane 0: with
  //   w(a0)*w(b0) = -1, w(a1)*w(b1) = tiny, acc0 = 1
  // the pinned order computes (1 - 1) + tiny = tiny, while the reversed
  // order computes (1 + tiny) - 1 = 0 because tiny is absorbed into 1 at
  // the wide precision. The executed result must be the pinned chain's.
  const ExsCase& ec = kCases[GetParam()];
  const double tiny_a = ec.narrow == FpFormat::P8 ? 0x1p-24
                        : ec.w == 8               ? 0x1p-10
                                                  : 0x1p-12;
  const std::uint64_t a0 = enc(ec.narrow, 1.0), b0 = enc(ec.narrow, -1.0);
  const std::uint64_t a1 = enc(ec.narrow, tiny_a), b1 = enc(ec.narrow, tiny_a);
  const auto va = static_cast<std::uint32_t>(a0 | (a1 << ec.w));
  const auto vb = static_cast<std::uint32_t>(b0 | (b1 << ec.w));
  const auto acc = static_cast<std::uint32_t>(enc(ec.wide, 1.0));

  auto core = run_one(ec.op, va, vb, acc);
  const std::uint64_t got = lane_get(core.f_bits(reg::fa0), 0, 2 * ec.w);
  // Pinned chain: k = 0 first, then k = 1.
  Flags fl;
  const auto w = [&](std::uint64_t n) {
    return fp::rt_convert(ec.wide, ec.narrow, n, RoundingMode::RNE, fl);
  };
  std::uint64_t pinned = fp::rt_fma(ec.wide, w(a0), w(b0), acc,
                                    RoundingMode::RNE, fl);
  pinned = fp::rt_fma(ec.wide, w(a1), w(b1), pinned, RoundingMode::RNE, fl);
  std::uint64_t reversed = fp::rt_fma(ec.wide, w(a1), w(b1), acc,
                                      RoundingMode::RNE, fl);
  reversed = fp::rt_fma(ec.wide, w(a0), w(b0), reversed, RoundingMode::RNE,
                        fl);
  ASSERT_NE(pinned, reversed)
      << fp::format_name(ec.narrow)
      << ": probe failed to make the orders distinguishable";
  ASSERT_EQ(got, pinned) << fp::format_name(ec.narrow);
}

TEST_P(ExSdotp, WideIntermediateSurvivesNarrowSaturation) {
  // A product that the narrow format cannot hold (IEEE: overflows to inf
  // with OF; posit: saturates to maxpos) is exact in the wide accumulator.
  const ExsCase& ec = kCases[GetParam()];
  struct Probe {
    double a0, b0;
  };
  Probe p{};
  switch (ec.narrow) {
    case FpFormat::F8:  // 1.25*2^7 * 1.5*2^8 = 1.875*2^15: above the f8 max
      p = {160.0, 384.0};  // (57344), below the f16 max (65504)
      break;
    case FpFormat::F16:  // 2^10 * 2^10 = 2^20: far above 65504
      p = {0x1p10, 0x1p10};
      break;
    case FpFormat::F16Alt:  // 1.4140625^2 * 2^127 ~ 1.9996*2^127: above the
      p = {1.4140625 * 0x1p60, 1.4140625 * 0x1p67};  // bf16 max, inside f32
      break;
    case FpFormat::P8:  // 2^16 * 2^16 = 2^32: above maxpos8 = 2^24
      p = {0x1p16, 0x1p16};
      break;
    default:
      FAIL();
  }
  const double exact = p.a0 * p.b0;
  const auto va = static_cast<std::uint32_t>(enc(ec.narrow, p.a0));
  const auto vb = static_cast<std::uint32_t>(enc(ec.narrow, p.b0));
  // Lane 1 (and lanes 2-3 for 8-bit formats) are zero, so only the a0*b0
  // term lands in wide lane 0; acc starts at zero.
  auto core = run_one(ec.op, va, vb, 0);
  const std::uint64_t got = lane_get(core.f_bits(reg::fa0), 0, 2 * ec.w);
  ASSERT_EQ(got, enc(ec.wide, exact))
      << fp::format_name(ec.narrow) << ": wide accumulation must be exact";

  // The same product in the NARROW format is a different (saturated) value:
  // this is the property that makes the widening unit worth having.
  Flags fl;
  const std::uint64_t narrow_fma =
      fp::rt_fma(ec.narrow, static_cast<std::uint64_t>(va),
                 static_cast<std::uint64_t>(vb), 0, RoundingMode::RNE, fl);
  Flags fl2;
  const std::uint64_t narrowed_exact =
      fp::rt_convert(ec.narrow, FpFormat::F64, fp::from_host(exact).bits,
                     RoundingMode::RNE, fl2);
  if (ec.narrow == FpFormat::P8) {
    EXPECT_EQ(narrow_fma, narrowed_exact);  // both saturate to maxpos
    EXPECT_EQ(narrow_fma, 0x7fu) << "posit8 must saturate to maxpos";
    EXPECT_EQ(fl.bits, 0u);
  } else {
    EXPECT_TRUE(fl.test(Flags::OF))
        << fp::format_name(ec.narrow) << ": narrow fma must overflow";
  }
  EXPECT_NE(fp::rt_convert(ec.wide, ec.narrow, narrow_fma, RoundingMode::RNE,
                           fl2),
            got)
      << "narrow accumulation must visibly lose the product";
}

TEST_P(ExSdotp, PrecisionFuzzAgainstExactDouble) {
  // Exact-wide-intermediate property fuzz: operand significands are sized so
  // every widened product (2*(fb+1) significant bits) and every wide-lane
  // sum (product bits + exponent spread) fits the WIDE significand exactly,
  // while products regularly exceed the narrow one. The executed result must
  // then equal the exactly-computed double dot product — and the
  // narrow-format chain must diverge on a healthy fraction of trials (that
  // divergence is the precision the widening preserves).
  const ExsCase& ec = kCases[GetParam()];
  // Per-case operand shape: fb fraction bits, exponents in [0, emod).
  // f8->f16: 2*(2+1) + 5 = 11 <= 11; f16->f32: 2*(9+1) + 3 = 23 <= 24;
  // bf16->f32: 2*(7+1) + 5 = 21 <= 24; p8->p16: sums are multiples of
  // 2^-4 below 2^6 (span <= 11 bits, scale in [-4, 5], within posit16's
  // tapered significand at those scales).
  int fb = 2, emod = 3;
  if (ec.narrow == FpFormat::F16) fb = 9, emod = 2;
  if (ec.narrow == FpFormat::F16Alt) fb = 7;
  std::mt19937_64 gen(53 + GetParam());
  const int lanes = 32 / ec.w;
  int narrow_diverged = 0;
  for (int t = 0; t < 300; ++t) {
    std::vector<double> av(lanes), bv(lanes);
    std::uint32_t va = 0, vb = 0;
    const auto draw = [&] {
      const double sig =
          1.0 + static_cast<double>(gen() % (1u << fb)) / (1u << fb);
      return sig * std::ldexp(1.0, static_cast<int>(gen() % emod)) *
             (gen() % 2 ? -1 : 1);
    };
    for (int l = 0; l < lanes; ++l) {
      av[l] = draw();
      bv[l] = draw();
      va |= static_cast<std::uint32_t>(enc(ec.narrow, av[l])) << (l * ec.w);
      vb |= static_cast<std::uint32_t>(enc(ec.narrow, bv[l])) << (l * ec.w);
    }
    auto core = run_one(ec.op, va, vb, 0);
    bool all_narrow_match = true;
    for (int wl = 0; wl < lanes / 2; ++wl) {
      const double exact =
          av[2 * wl] * bv[2 * wl] + av[2 * wl + 1] * bv[2 * wl + 1];
      ASSERT_EQ(lane_get(core.f_bits(reg::fa0), wl, 2 * ec.w),
                enc(ec.wide, exact))
          << fp::format_name(ec.narrow) << " trial " << t << " lane " << wl;
      // The same dot in the narrow format (widened afterwards for
      // comparison): inexact whenever a product or sum needs more
      // significand than the narrow format has.
      Flags fl;
      std::uint64_t nacc = 0;
      for (int k = 0; k < 2; ++k) {
        const int l = 2 * wl + k;
        nacc = fp::rt_fma(ec.narrow, lane_get(va, l, ec.w),
                          lane_get(vb, l, ec.w), nacc, RoundingMode::RNE, fl);
      }
      if (fp::rt_convert(ec.wide, ec.narrow, nacc, RoundingMode::RNE, fl) !=
          lane_get(core.f_bits(reg::fa0), wl, 2 * ec.w)) {
        all_narrow_match = false;
      }
    }
    if (!all_narrow_match) ++narrow_diverged;
  }
  EXPECT_GT(narrow_diverged, 30)
      << fp::format_name(ec.narrow)
      << ": the fuzz never exercised precision the narrow format lacks";
}

INSTANTIATE_TEST_SUITE_P(AllWideningPairs, ExSdotp, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return std::string(
                               fp::format_name(kCases[info.param].narrow));
                         });

// ---- engine x backend conformance ------------------------------------------

struct Digest {
  std::uint64_t fa0, fa1, fa2, fa3;
  std::uint8_t fflags;

  bool operator==(const Digest&) const = default;
};

Digest run_matrix_program(sim::Engine e, fp::MathBackend b,
                          std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  asmb::Assembler a;
  const auto d0 = a.data_u32(static_cast<std::uint32_t>(gen()));
  a.data_u32(static_cast<std::uint32_t>(gen()));
  a.data_u32(static_cast<std::uint32_t>(gen()));
  a.data_u32(static_cast<std::uint32_t>(gen()));
  a.data_u32(static_cast<std::uint32_t>(gen()));
  a.data_u32(static_cast<std::uint32_t>(gen()));
  a.la(reg::s0, d0);
  a.flw(reg::ft0, 0, reg::s0);
  a.flw(reg::ft1, 4, reg::s0);
  a.flw(reg::fa0, 8, reg::s0);
  a.flw(reg::fa1, 12, reg::s0);
  a.flw(reg::fa2, 16, reg::s0);
  a.flw(reg::fa3, 20, reg::s0);
  // Chained exsdotp across every widening pair, accumulating in place so
  // later results depend on earlier ones (any engine/backend divergence
  // compounds instead of cancelling).
  a.fp_rrr(Op::VFEXSDOTP_H_B, reg::fa0, reg::ft0, reg::ft1);
  a.fp_rrr(Op::VFEXSDOTP_S_H, reg::fa1, reg::fa0, reg::ft1);
  a.fp_rrr(Op::VFEXSDOTP_S_AH, reg::fa2, reg::ft0, reg::fa0);
  a.fp_rrr(Op::VFEXSDOTP_P16_P8, reg::fa3, reg::ft0, reg::ft1);
  a.fp_rrr(Op::VFEXSDOTP_R_H_B, reg::fa0, reg::ft1, reg::fa3);
  a.fp_rrr(Op::VFEXSDOTP_R_P16_P8, reg::fa3, reg::ft1, reg::ft0);
  a.ebreak();

  sim::Core core;
  core.set_engine(e);
  if (e == sim::Engine::Jit) core.set_jit_threshold(0);
  core.set_backend(b);
  core.load_program(a.finish());
  EXPECT_EQ(core.run(), sim::Core::RunResult::Halted);
  return {core.f_bits(reg::fa0), core.f_bits(reg::fa1),
          core.f_bits(reg::fa2), core.f_bits(reg::fa3), core.fflags()};
}

TEST(ExSdotpConformance, BitsAndFlagsIdenticalAcrossEnginesAndBackends) {
  bool saw_flags = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Digest baseline =
        run_matrix_program(sim::Engine::Reference, fp::MathBackend::Grs, seed);
    saw_flags |= baseline.fflags != 0;
    for (const auto e : {sim::Engine::Reference, sim::Engine::Predecoded,
                         sim::Engine::Fused, sim::Engine::Jit}) {
      for (const auto b : {fp::MathBackend::Grs, fp::MathBackend::Fast}) {
        const Digest d = run_matrix_program(e, b, seed);
        ASSERT_EQ(d, baseline)
            << sim::engine_name(e) << "/" << fp::backend_name(b) << " seed "
            << seed;
      }
    }
  }
  EXPECT_TRUE(saw_flags) << "no seed raised fflags; the sweep is too tame";
}

}  // namespace
}  // namespace sfrv::test
