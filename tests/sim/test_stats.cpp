// Unit tests for Stats::cycles_in_range, which becomes load-bearing for
// cycle attribution once the post-lowering optimizer rewrites inner_ranges:
// the pre-fix version wrapped the unsigned (begin - text_base) subtraction
// when begin < text_base and strode off-grid when begin was misaligned
// relative to the text base.
#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace sfrv::test {
namespace {

constexpr std::uint32_t kBase = 0x1000;

sim::Stats make_stats() {
  sim::Stats s;
  s.pc_cycles = {1, 2, 4, 8, 16, 32};  // six text slots at kBase
  return s;
}

TEST(Stats, CyclesInRangeCoversExactSlots) {
  const auto s = make_stats();
  EXPECT_EQ(s.cycles_in_range(kBase, kBase, kBase + 24), 63u);
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 4, kBase + 12), 2u + 4u);
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 20, kBase + 24), 32u);
}

TEST(Stats, CyclesInRangeEmptyAndReversedRangesAreZero) {
  const auto s = make_stats();
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 8, kBase + 8), 0u);
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 16, kBase + 8), 0u);
}

TEST(Stats, CyclesInRangeClampsBeginBelowTextBase) {
  const auto s = make_stats();
  // begin below the text base used to wrap the unsigned subtraction; the
  // clamped range must attribute exactly the in-segment slots.
  EXPECT_EQ(s.cycles_in_range(kBase, kBase - 0x100, kBase + 8), 1u + 2u);
  EXPECT_EQ(s.cycles_in_range(kBase, 0, kBase + 4), 1u);
  // Entirely below the segment: nothing.
  EXPECT_EQ(s.cycles_in_range(kBase, 0, kBase), 0u);
}

TEST(Stats, CyclesInRangeAlignsMisalignedBegin) {
  const auto s = make_stats();
  // A begin not 4-aligned relative to text_base starts at the next whole
  // slot (partial slots are not attributed).
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 2, kBase + 12), 2u + 4u);
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 1, kBase + 4), 0u);
  // Misaligned *and* below the base: clamp happens first, so the range is
  // whole again.
  EXPECT_EQ(s.cycles_in_range(kBase, kBase - 2, kBase + 8), 1u + 2u);
}

TEST(Stats, CyclesInRangeStopsAtEndOfText) {
  const auto s = make_stats();
  EXPECT_EQ(s.cycles_in_range(kBase, kBase, kBase + 0x1000), 63u);
  EXPECT_EQ(s.cycles_in_range(kBase, kBase + 24, kBase + 0x1000), 0u);
}

TEST(Stats, CyclesInRangeNearAddressSpaceTopDoesNotWrap) {
  const auto s = make_stats();
  // Align-up of a begin near UINT32_MAX must not wrap around to low
  // addresses and start attributing slots.
  EXPECT_EQ(s.cycles_in_range(kBase, 0xffff'fffeu, 0xffff'ffffu), 0u);
}

}  // namespace
}  // namespace sfrv::test
