// Timing-model tests: memory latency, branch penalties, iterative units,
// and per-class statistics.
#include <gtest/gtest.h>

#include "sim_util.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using isa::Op;
namespace reg = asmb::reg;

std::uint64_t cycles_for(const std::function<void(Assembler&)>& body,
                         RunOptions opts = {}) {
  return run_program(body, opts).stats().cycles;
}

TEST(Timing, StraightLineAluIsOneCyclePerInstr) {
  auto core = run_program([](Assembler& a) {
    for (int i = 0; i < 10; ++i) a.addi(reg::a0, reg::a0, 1);
    a.ebreak();
  });
  EXPECT_EQ(core.stats().instructions, 11u);
  EXPECT_EQ(core.stats().cycles, 11u);
}

TEST(Timing, LoadLatencySweepMatchesConfig) {
  // The paper's L1/L2/L3 setups: loads cost 1 / 10 / 100 cycles.
  for (int lat : {1, 10, 100}) {
    RunOptions opts;
    opts.mem.load_latency = lat;
    const auto cyc = cycles_for(
        [](Assembler& a) {
          const auto d = a.data_zero(64);
          a.la(reg::s0, d);          // 1-2 instructions (li)
          for (int i = 0; i < 8; ++i) a.lw(reg::a0, i * 4, reg::s0);
          a.ebreak();
        },
        opts);
    // 8 loads at `lat` cycles each; la = li is 1 or 2 ALU ops; +ebreak.
    const std::uint64_t expected_fixed = cyc - 8ull * lat;
    EXPECT_LE(expected_fixed, 4u) << "lat=" << lat;
  }
}

TEST(Timing, StoresArePostedByDefault) {
  const auto c_store = cycles_for([](Assembler& a) {
    const auto d = a.data_zero(64);
    a.la(reg::s0, d);
    for (int i = 0; i < 8; ++i) a.sw(reg::a0, i * 4, reg::s0);
    a.ebreak();
  });
  RunOptions slow;
  slow.mem.load_latency = 100;  // store latency stays 1
  const auto c_store_slow = cycles_for(
      [](Assembler& a) {
        const auto d = a.data_zero(64);
        a.la(reg::s0, d);
        for (int i = 0; i < 8; ++i) a.sw(reg::a0, i * 4, reg::s0);
        a.ebreak();
      },
      slow);
  EXPECT_EQ(c_store, c_store_slow)
      << "store cost must not depend on load latency";
}

TEST(Timing, TakenBranchPaysPenalty) {
  // Loop with taken back-edge vs unrolled equivalent.
  const auto looped = cycles_for([](Assembler& a) {
    a.li(reg::t0, 0);
    a.li(reg::t1, 100);
    const auto loop = a.here();
    a.addi(reg::t0, reg::t0, 1);
    a.bne(reg::t0, reg::t1, loop);
    a.ebreak();
  });
  // 2 li + 100 addi + 100 bne (99 taken, 1 not) + ebreak
  EXPECT_EQ(looped, 2u + 100u + 100u + 99u + 1u);
}

TEST(Timing, IntegerDivideIsIterative) {
  const auto with_div = cycles_for([](Assembler& a) {
    a.li(reg::a0, 1000);
    a.li(reg::a1, 7);
    a.emit({.op = Op::DIV, .rd = reg::a2, .rs1 = reg::a0, .rs2 = reg::a1});
    a.ebreak();
  });
  EXPECT_EQ(with_div, 2u + 32u + 1u);
}

TEST(Timing, FpDivCyclesShrinkWithFormat) {
  sim::Timing t;
  EXPECT_GT(t.fp_div_cycles(fp::FpFormat::F32),
            t.fp_div_cycles(fp::FpFormat::F16));
  EXPECT_GT(t.fp_div_cycles(fp::FpFormat::F16),
            t.fp_div_cycles(fp::FpFormat::F8));
  EXPECT_EQ(t.fp_div_cycles(fp::FpFormat::F16),
            t.fp_div_cycles(fp::FpFormat::F16Alt));
}

TEST(Timing, FpArithIsSingleCycle) {
  const auto cyc = cycles_for([](Assembler& a) {
    a.li(reg::t0, 1);
    a.fp_rr(Op::FCVT_S_W, reg::ft0, reg::t0);
    for (int i = 0; i < 10; ++i)
      a.fp_rrr(Op::FADD_S, reg::fa0, reg::ft0, reg::ft0);
    a.ebreak();
  });
  EXPECT_EQ(cyc, 1u + 1u + 10u + 1u);
}

TEST(Stats, PerOpcodeCounts) {
  auto core = run_program([](Assembler& a) {
    a.li(reg::t0, 3);
    a.fp_rr(Op::FCVT_H_W, reg::ft0, reg::t0);
    a.fp_rrr(Op::FADD_H, reg::fa0, reg::ft0, reg::ft0);
    a.fp_rrr(Op::FADD_H, reg::fa0, reg::fa0, reg::ft0);
    a.fp_rrr(Op::VFADD_H, reg::fa1, reg::fa0, reg::fa0);
    a.ebreak();
  });
  EXPECT_EQ(core.stats().count(Op::FADD_H), 2u);
  EXPECT_EQ(core.stats().count(Op::VFADD_H), 1u);
  EXPECT_EQ(core.stats().count_class(isa::Cls::FpAdd), 3u);
  const auto vec_count = core.stats().count_where(
      [](Op op) { return isa::is_vector(op); });
  EXPECT_EQ(vec_count, 1u);
}

TEST(Stats, CycleCsrVisibleToProgram) {
  auto core = run_program([](Assembler& a) {
    a.csrrs(reg::s0, 0xc00, reg::zero);  // cycle
    for (int i = 0; i < 5; ++i) a.nop();
    a.csrrs(reg::s1, 0xc00, reg::zero);
    a.sub(reg::a0, reg::s1, reg::s0);
    a.ebreak();
  });
  EXPECT_EQ(core.x(reg::a0), 6u) << "5 nops + the first csrrs itself";
}

}  // namespace
}  // namespace sfrv::test
