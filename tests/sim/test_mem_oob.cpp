// Differential out-of-bounds semantics: the interpreter engines and the
// JIT's cached-base-pointer fast path share one bounds predicate
// (sim::mem_access_oob) and one exception (throw_mem_oob), so a faulting
// access must throw the same type with the same fully-retired state — and
// the same exception *message* — under every engine. Covers the edges that
// predicate folds together: the first byte, the last byte, the 32-bit
// address-space wrap at UINT32_MAX, and a mid-vector fault where the first
// element of a VL-governed packed access is in bounds and a later one is
// not.
#include <gtest/gtest.h>

#include <string>

#include "asmb/assembler.hpp"
#include "sim/core.hpp"
#include "sim/memory.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using isa::Op;
namespace reg = asmb::reg;

constexpr sim::Engine kEngines[] = {sim::Engine::Reference,
                                    sim::Engine::Predecoded,
                                    sim::Engine::Fused, sim::Engine::Jit};

constexpr std::uint32_t kMemSize = 8u << 20;  // MemConfig default

struct Outcome {
  bool threw = false;
  std::string message;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint32_t pc = 0;
  std::uint64_t f1 = 0;
  std::uint32_t last_byte = 0;  // memory()[kMemSize - 1] after the run
};

/// Run `body` under one engine and capture whether/where it faulted plus the
/// retired state the fault left behind.
Outcome run_one(const std::function<void(Assembler&)>& body, sim::Engine e) {
  Assembler a;
  body(a);
  sim::Core core(isa::IsaConfig::full());
  core.set_engine(e);
  if (e == sim::Engine::Jit) core.set_jit_threshold(0);  // fault mid-trace
  core.load_program(a.finish());
  Outcome o;
  try {
    core.run(1'000'000);
  } catch (const std::out_of_range& ex) {
    o.threw = true;
    o.message = ex.what();
  }
  o.instructions = core.stats().instructions;
  o.cycles = core.stats().cycles;
  o.pc = core.pc();
  o.f1 = core.f_bits(1);
  std::uint8_t last = 0;
  core.memory().read_block(kMemSize - 1, &last, 1);
  o.last_byte = last;
  return o;
}

/// Run under all engines and require identical outcomes; returns the
/// reference outcome for the caller's own assertions.
Outcome run_differential(const std::function<void(Assembler&)>& body) {
  const Outcome ref = run_one(body, kEngines[0]);
  for (std::size_t i = 1; i < std::size(kEngines); ++i) {
    const Outcome o = run_one(body, kEngines[i]);
    const char* name = sim::engine_name(kEngines[i]).data();
    EXPECT_EQ(o.threw, ref.threw) << name;
    EXPECT_EQ(o.message, ref.message) << name;
    EXPECT_EQ(o.instructions, ref.instructions) << name;
    EXPECT_EQ(o.cycles, ref.cycles) << name;
    EXPECT_EQ(o.pc, ref.pc) << name;
    EXPECT_EQ(o.f1, ref.f1) << name;
    EXPECT_EQ(o.last_byte, ref.last_byte) << name;
  }
  return ref;
}

TEST(MemOob, FirstAndLastByteInBoundsOnePastFaults) {
  // Last byte: lbu at size-1 succeeds, lbu at size faults identically.
  const Outcome ok = run_differential([](Assembler& a) {
    a.li(reg::t0, static_cast<std::int32_t>(kMemSize - 1));
    a.emit({.op = Op::LBU, .rd = reg::t1, .rs1 = reg::t0});
    a.li(reg::t0, 0);  // first byte is equally legal
    a.emit({.op = Op::LBU, .rd = reg::t2, .rs1 = reg::t0});
    a.ebreak();
  });
  EXPECT_FALSE(ok.threw) << ok.message;

  const Outcome fault = run_differential([](Assembler& a) {
    a.li(reg::t0, static_cast<std::int32_t>(kMemSize));
    a.emit({.op = Op::LBU, .rd = reg::t1, .rs1 = reg::t0});
    a.ebreak();
  });
  EXPECT_TRUE(fault.threw);

  // A word load whose final byte is one past the end faults too.
  const Outcome straddle = run_differential([](Assembler& a) {
    a.li(reg::t0, static_cast<std::int32_t>(kMemSize - 3));
    a.lw(reg::t1, 0, reg::t0);
    a.ebreak();
  });
  EXPECT_TRUE(straddle.threw);
}

TEST(MemOob, WrapAtUint32MaxFaults) {
  // addr + n overflows past UINT32_MAX: the sum wraps to a small value and
  // must still be rejected, not treated as an in-bounds low address.
  const Outcome wrap = run_differential([](Assembler& a) {
    a.li(reg::t0, -4);  // 0xFFFFFFFC
    a.lw(reg::t1, 0, reg::t0);
    a.ebreak();
  });
  EXPECT_TRUE(wrap.threw);

  const Outcome wrap_store = run_differential([](Assembler& a) {
    a.li(reg::t0, -1);  // 0xFFFFFFFF: a single byte store wraps
    a.emit({.op = Op::SB, .rs1 = reg::t0, .rs2 = reg::t1});
    a.ebreak();
  });
  EXPECT_TRUE(wrap_store.threw);
}

TEST(MemOob, MidVectorFaultLeavesLoadTargetUntouched) {
  // vflh at size-2 under vl=2: element 0 is the last legal halfword,
  // element 1 is out of bounds. The packed load writes rd only after every
  // element succeeded, so f1 must keep its previous value — identically
  // across the interpreter and the JIT's inlined fast path.
  const Outcome o = run_differential([](Assembler& a) {
    a.li(reg::t1, 4);
    a.setvl(reg::zero, reg::t1, 1, 0);  // vl = 2
    a.li(reg::t0, static_cast<std::int32_t>(kMemSize - 2));
    a.vflh(1, 0, reg::t0);
    a.ebreak();
  });
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.f1, 0u);  // untouched
}

TEST(MemOob, MidVectorStoreFaultWritesLowerElementsOnly) {
  // vfsh at size-2 under vl=2: element 0 lands on the final halfword,
  // element 1 faults. Element-ordered store semantics: the last byte of
  // memory holds element 0's high byte on every engine.
  const Outcome o = run_differential([](Assembler& a) {
    a.li(reg::t1, 4);
    a.setvl(reg::zero, reg::t1, 1, 0);  // vl = 2
    a.li(reg::t0, 0x5678);
    a.emit({.op = Op::FMV_H_X, .rd = 1, .rs1 = reg::t0});
    a.li(reg::t0, static_cast<std::int32_t>(kMemSize - 2));
    a.vfsh(1, 0, reg::t0);
    a.ebreak();
  });
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.last_byte, 0x56u);  // element 0's high byte landed
}

}  // namespace
}  // namespace sfrv::test
