// Pipeline verifier test suite (ir/verify.hpp + sim/verify.hpp).
//
//  * Positive matrix: real kernels lowered at every mode x opt level, their
//    superblock lowerings, and their compiled traces must all check clean.
//  * Negative corpus: hand-corrupted Inst streams, fused pairs, and trace
//    slots — every diagnostic class must fire, anchored at the right text
//    index, and the *_or_throw hooks must stamp the right pass name.
//  * Regression: scalar vars must be zeroed in the lowering prologue (an
//    accumulating var used to read the simulator's reset state — the first
//    latent bug this verifier flushed out).
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "asmb/assembler.hpp"
#include "ir/lower.hpp"
#include "ir/opt.hpp"
#include "ir/verify.hpp"
#include "isa/encoding.hpp"
#include "kernels/polybench.hpp"
#include "kernels/runner.hpp"
#include "sim/decode.hpp"
#include "sim/jit.hpp"
#include "sim/superblock.hpp"
#include "sim/verify.hpp"
#include "util/verify.hpp"

namespace sfrv::test {
namespace {

using asmb::Assembler;
using ir::LoweredKernel;
using ir::OptConfig;
using isa::Op;
using verify::Diag;
namespace reg = asmb::reg;

const sim::Timing kTim{};
const sim::MemConfig kMem{};

/// True when some diagnostic mentions `sub` (and, unless -2, is anchored at
/// `index`).
bool has_diag(const std::vector<Diag>& ds, std::string_view sub,
              std::int64_t index = -2) {
  for (const auto& d : ds) {
    if (d.message.find(sub) != std::string::npos &&
        (index == -2 || d.index == index)) {
      return true;
    }
  }
  return false;
}

std::string render_all(const std::vector<Diag>& ds) {
  std::string s;
  for (const auto& d : ds) s += verify::render(d) + "\n";
  return s;
}

LoweredKernel make_lk(asmb::Program prog) {
  LoweredKernel lk;
  lk.program = std::move(prog);
  lk.opt = OptConfig::O0();
  return lk;
}

/// Re-encode one instruction after corrupting it (keeps text_words in sync
/// so only the intended diagnostic fires). Only for corruptions that stay
/// encodable — out-of-range fields must NOT be re-encoded (encode asserts).
void resync(LoweredKernel& lk, std::size_t i) {
  lk.program.text_words[i] = isa::encode(lk.program.text[i]);
}

std::size_t find_op(const asmb::Program& p, Op op) {
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    if (p.text[i].op == op) return i;
  }
  ADD_FAILURE() << "op not found in text";
  return 0;
}

/// li t0, 3; loop: addi t0, t0, -1; bne t0, zero, loop; ebreak.
asmb::Program loop_program() {
  Assembler a;
  a.li(reg::t0, 3);
  const auto loop = a.here();
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
  return a.finish();
}

// ---- ir::Verifier: positive -------------------------------------------------

TEST(IrVerifier, RealKernelsCheckCleanAtEveryModeAndLevel) {
  const auto tc = kernels::TypeConfig::uniform(ir::ScalarType::F16);
  const auto spec = kernels::make_gemm(tc, 8, 8, 8);
  const ir::Verifier v;
  for (const auto mode :
       {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
        ir::CodegenMode::ManualVec}) {
    for (const auto& opt : {OptConfig::O0(), OptConfig::O1(), OptConfig::O2()}) {
      const auto lk = ir::lower(spec.kernel, mode, spec.init, opt);
      const auto ds = v.check(lk);
      EXPECT_TRUE(ds.empty()) << ir::mode_name(mode) << "/"
                              << ir::opt_name(opt) << "\n" << render_all(ds);
    }
  }
}

TEST(IrVerifier, SetvlDominatedVectorMemopIsClean) {
  Assembler a;
  const auto buf = a.data_zero(64);
  a.la(reg::t0, buf);
  a.li(reg::t1, 4);
  a.setvl(reg::t2, reg::t1, 1);
  a.vflh(reg::ft0, 0, reg::t0);
  a.ebreak();
  const auto ds = ir::Verifier().check(make_lk(a.finish()));
  EXPECT_TRUE(ds.empty()) << render_all(ds);
}

// ---- ir::Verifier: negative corpus ------------------------------------------

TEST(IrVerifier, FlagsTextWordsSizeMismatch) {
  auto lk = make_lk(loop_program());
  lk.program.text_words.pop_back();
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "text_words/text size mismatch", -1));
}

TEST(IrVerifier, FlagsStaleEncodedWord) {
  auto lk = make_lk(loop_program());
  const auto i = find_op(lk.program, Op::ADDI);
  lk.program.text[i].imm = -2;  // mutated Inst, stale word
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "text_words out of sync",
                       static_cast<std::int64_t>(i)));
}

TEST(IrVerifier, FlagsRegisterIndexOutOfRange) {
  auto lk = make_lk(loop_program());
  const auto i = find_op(lk.program, Op::ADDI);
  lk.program.text[i].rd = 40;
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "rd register index 40 out of range",
                       static_cast<std::int64_t>(i)));
}

TEST(IrVerifier, FlagsNonzeroUnusedField) {
  auto lk = make_lk(loop_program());
  const auto i = find_op(lk.program, Op::ADDI);
  lk.program.text[i].rs2 = 3;  // Iimm layout has no rs2 operand
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "unused field rs2 is 3",
                       static_cast<std::int64_t>(i)));
}

TEST(IrVerifier, FlagsReservedRoundingMode) {
  Assembler a;
  a.fp_rrr(isa::Op::FADD_S, reg::ft2, reg::ft0, reg::ft1);
  a.ebreak();
  auto lk = make_lk(a.finish());
  lk.program.text[0].rm = 5;
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "reserved rounding mode 5",
                       0));
}

TEST(IrVerifier, FlagsImmediateOutOfRange) {
  auto lk = make_lk(loop_program());
  const auto i = find_op(lk.program, Op::ADDI);
  lk.program.text[i].imm = 4096;
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "immediate 4096 out of range",
                       static_cast<std::int64_t>(i)));
}

TEST(IrVerifier, FlagsBranchTargetOutOfBounds) {
  auto lk = make_lk(loop_program());
  const auto i = find_op(lk.program, Op::BNE);
  lk.program.text[i].imm = 400;  // aligned but way past the end
  resync(lk, i);
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "outside the text segment",
                       static_cast<std::int64_t>(i)));
}

TEST(IrVerifier, FlagsMisalignedBranchTarget) {
  auto lk = make_lk(loop_program());
  const auto i = find_op(lk.program, Op::BNE);
  lk.program.text[i].imm = 2;
  resync(lk, i);
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "control-flow target not instruction-aligned",
                       static_cast<std::int64_t>(i)));
}

TEST(IrVerifier, FlagsIntUseBeforeDef) {
  Assembler a;
  a.addi(reg::t1, reg::t0, 0);  // t0 never defined
  a.ebreak();
  const auto ds = ir::Verifier().check(make_lk(a.finish()));
  EXPECT_TRUE(has_diag(ds, "no definition on some path", 0)) << render_all(ds);
  EXPECT_TRUE(has_diag(ds, "t0"));
}

TEST(IrVerifier, FlagsFpUseBeforeDef) {
  Assembler a;
  a.fp_rrr(isa::Op::FADD_S, reg::ft3, reg::ft1, reg::ft2);
  a.ebreak();
  const auto ds = ir::Verifier().check(make_lk(a.finish()));
  EXPECT_TRUE(has_diag(ds, "no definition on some path", 0)) << render_all(ds);
  EXPECT_TRUE(has_diag(ds, "ft1, ft2"));
}

TEST(IrVerifier, FlagsDefOnOnlyOnePath) {
  // The definition of t1 is skippable: must-analysis reports the use.
  Assembler a;
  a.li(reg::t0, 1);
  const auto skip = a.make_label();
  a.beq(reg::t0, reg::zero, skip);
  a.li(reg::t1, 7);
  a.bind(skip);
  a.addi(reg::t2, reg::t1, 0);
  a.ebreak();
  const auto ds = ir::Verifier().check(make_lk(a.finish()));
  EXPECT_TRUE(has_diag(ds, "no definition on some path")) << render_all(ds);
}

TEST(IrVerifier, AcceptsLoopCarriedDefinition) {
  // t0 is defined before the back-edge target: the loop-aware analysis must
  // not flag the re-use across iterations.
  const auto ds = ir::Verifier().check(make_lk(loop_program()));
  EXPECT_TRUE(ds.empty()) << render_all(ds);
}

TEST(IrVerifier, FlagsVectorMemopWithoutSetvl) {
  Assembler a;
  const auto buf = a.data_zero(64);
  a.la(reg::t0, buf);
  a.vflh(reg::ft0, 0, reg::t0);
  a.ebreak();
  const auto ds = ir::Verifier().check(make_lk(a.finish()));
  EXPECT_TRUE(has_diag(ds, "not dominated by a setvl")) << render_all(ds);
}

TEST(IrVerifier, FlagsBadInnerRanges) {
  auto lk = make_lk(loop_program());
  const std::uint32_t base = lk.program.text_base;
  lk.inner_ranges = {{base + 2, base + 6}};
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "not 4-aligned"));
  lk.inner_ranges = {{base + 4, base + 4}};
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "empty or inverted"));
  lk.inner_ranges = {{base, base + 8}, {base + 4, base + 12}};
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "overlaps or is unsorted"));
  lk.inner_ranges = {{base, base + 400}};
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "outside the text segment"));
}

TEST(IrVerifier, FlagsMemArrayCorruption) {
  Assembler a;
  const auto buf = a.data_zero(16);
  a.la(reg::t0, buf);
  a.flw(reg::ft0, 0, reg::t0);
  a.ebreak();
  auto lk = make_lk(a.finish());
  const std::size_t n = lk.program.text.size();
  lk.mem_array.assign(1, -1);  // wrong size
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "mem_array size", -1));
  lk.mem_array.assign(n, -1);
  lk.mem_array[find_op(lk.program, Op::FLW)] = 3;  // no arrays: max id is 0
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "provenance id 3 outside [-1, 0]"));
  lk.mem_array.assign(n, -1);
  lk.mem_array[0] = 0;  // la's first inst is not a memory op
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "attached to a non-memory instruction", 0));
}

TEST(IrVerifier, FlagsInvalidOptProvenance) {
  auto lk = make_lk(loop_program());
  lk.opt = OptConfig{3, false, false};  // unroll factor 3 is not a power of 2
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk),
                       "invalid OptConfig provenance", -1));
}

TEST(IrVerifier, EntryLiveWhitelistSuppressesDiagnostic) {
  Assembler a;
  a.addi(reg::t1, reg::a0, 0);  // a0 undefined unless whitelisted
  a.ebreak();
  const auto lk = make_lk(a.finish());
  EXPECT_TRUE(has_diag(ir::Verifier().check(lk), "no definition"));
  ir::Verifier v;
  v.add_entry_live(reg::a0);
  EXPECT_TRUE(v.check(lk).empty());
}

TEST(IrVerifier, VerifyOrThrowStampsPassName) {
  Assembler a;
  a.addi(reg::t1, reg::t0, 0);
  a.ebreak();
  const auto lk = make_lk(a.finish());
  try {
    ir::verify_or_throw(lk, "dead-glue-elim");
    FAIL() << "expected VerifyError";
  } catch (const verify::VerifyError& e) {
    EXPECT_EQ(e.pass(), "dead-glue-elim");
    ASSERT_FALSE(e.diags().empty());
    EXPECT_EQ(e.diags()[0].pass, "dead-glue-elim");
    EXPECT_EQ(e.diags()[0].index, 0);
    EXPECT_NE(std::string(e.what()).find("pass 'dead-glue-elim'"),
              std::string::npos);
  }
}

// ---- var zero-init regression (first latent bug the verifier found) ---------

TEST(IrVerifier, ScalarVarsAreZeroedInThePrologue) {
  // {acc += A[j]*B[j]; y[j] += A[j]*acc}: the accumulator var's home
  // register is read in its own defining loop. Lowering used to allocate it
  // without initialization — silently relying on the simulator's zeroed
  // register file — which the def-before-use analysis reports. The prologue
  // must carry an explicit fmv.s.x from x0.
  ir::Kernel k;
  k.name = "acc_read";
  const int n = 8;
  const int A = k.add_array("A", ir::ScalarType::F16, 1, n);
  const int B = k.add_array("B", ir::ScalarType::F16, 1, n);
  const int Y = k.add_array("y", ir::ScalarType::F16, 1, n);
  const int acc = k.add_var("acc", ir::ScalarType::F32);
  const int j = k.fresh_loop_var();
  auto ref = [&](int arr) {
    return ir::ArrayRef{arr, ir::Index::constant(0), ir::Index{j, 0}};
  };
  ir::Loop lj{j, 0, ir::Bound::fixed(n), {}};
  lj.body.push_back(ir::accum_var(
      acc, ir::Expr::mul(ir::Expr::load(ref(A)), ir::Expr::load(ref(B)))));
  lj.body.push_back(ir::accum(
      ref(Y), ir::Expr::mul(ir::Expr::load(ref(A)), ir::Expr::variable(acc))));
  k.body.push_back(std::move(lj));
  (void)Y;

  for (const auto mode :
       {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
        ir::CodegenMode::ManualVec}) {
    for (const auto& opt : {OptConfig::O0(), OptConfig::O2()}) {
      const auto lk = ir::lower(k, mode, {}, opt);
      const auto ds = ir::Verifier().check(lk);
      EXPECT_TRUE(ds.empty()) << ir::mode_name(mode) << "/"
                              << ir::opt_name(opt) << "\n" << render_all(ds);
      bool zeroed = false;
      for (const auto& in : lk.program.text) {
        if (in.op == Op::FMV_S_X && in.rs1 == reg::zero) zeroed = true;
      }
      EXPECT_TRUE(zeroed) << "no fmv.s.x zero-init in the prologue ("
                          << ir::mode_name(mode) << ")";
    }
  }
}

// ---- superblock checker -----------------------------------------------------

std::vector<sim::DecodedOp> decode_all(const asmb::Program& p) {
  return sim::decode_program(p.text, isa::IsaConfig::full(), kTim);
}

sim::SuperblockProgram build_sblk(const std::vector<sim::DecodedOp>& uops) {
  sim::SuperblockProgram sp;
  sp.build(uops, kTim, kMem);
  return sp;
}

std::vector<sim::FusedOp>& mutable_ops(sim::SuperblockProgram& sp) {
  return const_cast<std::vector<sim::FusedOp>&>(sp.ops());
}

TEST(SuperblockChecker, CleanBuildPasses) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  const auto ds = sim::check_superblocks(sp, uops, kTim, kMem);
  EXPECT_TRUE(ds.empty()) << render_all(ds);
  EXPECT_GE(sp.fused_pairs(), 1u);  // the addi+bne back-edge pair
}

TEST(SuperblockChecker, FlagsCorruptLen) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  mutable_ops(sp)[0].len = 3;
  EXPECT_TRUE(has_diag(sim::check_superblocks(sp, uops, kTim, kMem),
                       "must be 1 or 2", 0));
}

TEST(SuperblockChecker, FlagsBrokenTiling) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  mutable_ops(sp)[1].idx += 1;
  EXPECT_TRUE(has_diag(sim::check_superblocks(sp, uops, kTim, kMem),
                       "the tiling requires"));
}

TEST(SuperblockChecker, FlagsEmbeddedUopDrift) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  mutable_ops(sp)[0].u1.rd ^= 1;
  EXPECT_TRUE(has_diag(sim::check_superblocks(sp, uops, kTim, kMem),
                       "embedded u1 differs", 0));
}

TEST(SuperblockChecker, FlagsDroppedTerminatorFlag) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  bool found = false;
  for (auto& fo : mutable_ops(sp)) {
    if (fo.terminator) {
      fo.terminator = false;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_TRUE(has_diag(sim::check_superblocks(sp, uops, kTim, kMem),
                       "terminator flag clear"));
}

TEST(SuperblockChecker, FlagsCycleCorruption) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  bool found = false;
  for (auto& fo : mutable_ops(sp)) {
    if (fo.fixed_timing) {
      fo.c1 += 1;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_TRUE(has_diag(sim::check_superblocks(sp, uops, kTim, kMem),
                       "precomputed cycles"));
}

TEST(SuperblockChecker, FlagsNullPairHandler) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  bool found = false;
  for (auto& fo : mutable_ops(sp)) {
    if (fo.len == 2) {
      fo.fn = nullptr;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_TRUE(has_diag(sim::check_superblocks(sp, uops, kTim, kMem),
                       "null handler"));
}

TEST(SuperblockChecker, FlagsGreedyFusionMiss) {
  // Split a built pair into two singles: the checker must notice the
  // builder "forgot" an eligible fusion (plus the stale entry map).
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  auto& ops = mutable_ops(sp);
  std::size_t k = ops.size();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].len == 2) {
      k = i;
      break;
    }
  }
  ASSERT_LT(k, ops.size());
  const sim::FusedOp pair = ops[k];
  sim::FusedOp s1;
  s1.u1 = pair.u1;
  s1.idx = pair.idx;
  s1.len = 1;
  s1.fixed_timing = true;
  s1.c1 = sim::fixed_cycles(s1.u1, kTim, kMem);
  s1.cycles12 = s1.c1;
  sim::FusedOp s2;
  s2.u1 = pair.u2;
  s2.idx = pair.idx + 1;
  s2.len = 1;
  s2.terminator = pair.terminator;
  s2.fixed_timing = false;  // the bne stays on the slow path
  ops[k] = s1;
  ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(k) + 1, s2);
  const auto ds = sim::check_superblocks(sp, uops, kTim, kMem);
  EXPECT_TRUE(has_diag(ds, "eligible pair left unfused")) << render_all(ds);
}

TEST(SuperblockChecker, ThrowHookStampsFusionPass) {
  const auto uops = decode_all(loop_program());
  auto sp = build_sblk(uops);
  mutable_ops(sp)[0].u1.rd ^= 1;
  try {
    sim::verify_superblocks_or_throw(sp, uops, kTim, kMem);
    FAIL() << "expected VerifyError";
  } catch (const verify::VerifyError& e) {
    EXPECT_EQ(e.pass(), "fusion");
    EXPECT_NE(std::string(e.what()).find("pass 'fusion'"), std::string::npos);
  }
}

// ---- trace checker ----------------------------------------------------------

struct TraceFixture {
  asmb::Program prog;
  std::vector<sim::DecodedOp> uops;
  sim::jit::JitProgram jp;
  sim::Stats st;
  sim::jit::Trace* t = nullptr;

  explicit TraceFixture(asmb::Program p, std::uint32_t idx = 0,
                        std::uint32_t vl = 4)
      : prog(std::move(p)), uops(decode_all(prog)) {
    jp.on_code_change(uops.size());
    t = jp.translate(idx, uops, kTim, kMem, prog.text_base, vl, st);
  }

  [[nodiscard]] std::vector<Diag> check(const sim::jit::Trace& tr,
                                        std::uint32_t vl = 4) const {
    return sim::check_trace(tr, uops, kTim, kMem, prog.text_base, vl);
  }
};

asmb::Program straightline_program() {
  Assembler a;
  a.li(reg::t0, 1);
  a.addi(reg::t1, reg::t0, 1);
  a.add(reg::t2, reg::t0, reg::t1);
  a.ebreak();
  return a.finish();
}

asmb::Program csr_split_program() {
  Assembler a;
  a.li(reg::t0, 1);
  a.addi(reg::t1, reg::t0, 1);
  a.csrrs(reg::t3, 0x001, reg::zero);  // untranslatable: ends the trace open
  a.ebreak();
  return a.finish();
}

TEST(TraceChecker, CleanTranslationPasses) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  const auto ds = f.check(*f.t);
  EXPECT_TRUE(ds.empty()) << render_all(ds);
}

TEST(TraceChecker, FlagsWrongBasePc) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  tt.base_pc += 4;
  EXPECT_TRUE(has_diag(f.check(tt), "base_pc"));
}

TEST(TraceChecker, FlagsVlMismatch) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  tt.vl += 1;
  EXPECT_TRUE(has_diag(f.check(tt), "!= translation-time vl"));
}

TEST(TraceChecker, FlagsStartPastEndAndBadSlotCount) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  tt.start_idx = 1000;
  EXPECT_TRUE(has_diag(f.check(tt), "starts past the end"));
  tt = *f.t;
  tt.n = 0;
  EXPECT_TRUE(has_diag(f.check(tt), "retiring slot count"));
}

TEST(TraceChecker, FlagsSlotCycleCorruption) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  tt.slots[1].cycles += 1;
  EXPECT_TRUE(has_diag(f.check(tt), "precomputed slot cycles",
                       static_cast<std::int64_t>(tt.start_idx) + 1));
}

TEST(TraceChecker, FlagsWrongToken) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  ASSERT_EQ(tt.slots[1].top, sim::jit::TOp::Addi);
  tt.slots[1].top = sim::jit::TOp::Add;
  EXPECT_TRUE(has_diag(f.check(tt), "ALU token mismatch (expected Addi)"));
}

TEST(TraceChecker, FlagsFoldedBranchTargetDrift) {
  // Trace at the loop head: addi + bne terminator with folded targets.
  TraceFixture f(loop_program(), /*idx=*/1);
  ASSERT_NE(f.t, nullptr);
  ASSERT_EQ(f.t->n, 2u);
  sim::jit::Trace tt = *f.t;
  tt.slots[1].p0 += 4;
  EXPECT_TRUE(has_diag(f.check(tt), "folded branch target"));
}

TEST(TraceChecker, FlagsAggregateDrift) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  tt.n_loads += 1;
  EXPECT_TRUE(has_diag(f.check(tt), "aggregate load/store counts"));
  tt = *f.t;
  tt.sum_cycles += 1;
  EXPECT_TRUE(has_diag(f.check(tt), "aggregate sum_cycles"));
  tt = *f.t;
  ASSERT_FALSE(tt.op_counts.empty());
  tt.op_counts[0].second += 1;
  EXPECT_TRUE(has_diag(f.check(tt), "per-op retirement counts"));
  tt = *f.t;
  tt.taken_extra += 1;
  EXPECT_TRUE(has_diag(f.check(tt), "taken_extra"));
}

TEST(TraceChecker, FlagsExitSlotDrift) {
  TraceFixture f(csr_split_program());
  ASSERT_NE(f.t, nullptr);
  ASSERT_EQ(f.t->slots.size(), f.t->n + 1u);  // open trace: Exit appended
  {
    const auto ds = f.check(*f.t);
    EXPECT_TRUE(ds.empty()) << render_all(ds);
  }
  sim::jit::Trace tt = *f.t;
  tt.slots[tt.n].p1 += 4;
  EXPECT_TRUE(has_diag(f.check(tt), "Exit fall-through pc"));
  tt = *f.t;
  tt.slots.pop_back();
  EXPECT_TRUE(has_diag(f.check(tt), "missing its Exit slot"));
}

TEST(TraceChecker, ThrowHookStampsTranslationPass) {
  TraceFixture f(straightline_program());
  ASSERT_NE(f.t, nullptr);
  sim::jit::Trace tt = *f.t;
  tt.slots[1].cycles += 1;
  try {
    sim::verify_trace_or_throw(tt, f.uops, kTim, kMem, f.prog.text_base, 4);
    FAIL() << "expected VerifyError";
  } catch (const verify::VerifyError& e) {
    EXPECT_EQ(e.pass(), "translation");
    EXPECT_NE(std::string(e.what()).find("pass 'translation'"),
              std::string::npos);
  }
}

// ---- runtime switch ---------------------------------------------------------

TEST(VerifySwitch, SetEnabledOverridesEnvironment) {
  const bool before = verify::enabled();
  verify::set_enabled(false);
  EXPECT_FALSE(verify::enabled());
  verify::set_enabled(true);
  EXPECT_TRUE(verify::enabled());
  verify::set_enabled(before);
}

}  // namespace
}  // namespace sfrv::test
