// Energy-model tests: per-class ordering properties and integration with
// simulator statistics.
#include <gtest/gtest.h>

#include "energy/model.hpp"
#include "kernels/polybench.hpp"

namespace sfrv::energy {
namespace {

TEST(EnergyModel, NarrowerFormatsCostLess) {
  const EnergyModel m;
  EXPECT_LT(m.unit_energy(isa::Op::FADD_H), m.unit_energy(isa::Op::FADD_S));
  EXPECT_LT(m.unit_energy(isa::Op::FADD_B), m.unit_energy(isa::Op::FADD_H));
  EXPECT_EQ(m.unit_energy(isa::Op::FADD_AH), m.unit_energy(isa::Op::FADD_H));
}

TEST(EnergyModel, SimdCostsMoreThanScalarLessThanLanesTimesTwo) {
  const EnergyModel m;
  const double scalar16 = m.unit_energy(isa::Op::FADD_H);
  const double vec16 = m.unit_energy(isa::Op::VFADD_H);
  EXPECT_GT(vec16, scalar16);
  EXPECT_LT(vec16, 2 * 2 * scalar16);
  const double vec8 = m.unit_energy(isa::Op::VFADD_B);
  EXPECT_GT(vec8, m.unit_energy(isa::Op::FADD_B));
}

TEST(EnergyModel, IterativeUnitsCostMore) {
  const EnergyModel m;
  EXPECT_GT(m.unit_energy(isa::Op::FDIV_S), m.unit_energy(isa::Op::FMUL_S));
  EXPECT_GT(m.unit_energy(isa::Op::FMADD_S), m.unit_energy(isa::Op::FMUL_S));
}

TEST(EnergyModel, MemoryEnergyGrowsWithLevel) {
  const EnergyModel m;
  EXPECT_LT(m.mem_energy(sim::MemLevelId::L1), m.mem_energy(sim::MemLevelId::L2));
  EXPECT_LT(m.mem_energy(sim::MemLevelId::L2), m.mem_energy(sim::MemLevelId::L3));
}

TEST(EnergyModel, PresetLatencyAndLevelStayPaired) {
  // The named presets are the only place latency and billing level are
  // coupled; set_level must apply both halves.
  for (const auto& preset : {sim::kMemL1, sim::kMemL2, sim::kMemL3}) {
    sim::MemConfig cfg;
    cfg.set_level(preset);
    EXPECT_EQ(cfg.load_latency, preset.load_latency) << preset.name;
    EXPECT_EQ(cfg.level, preset.id) << preset.name;
  }
  EXPECT_EQ(sim::kMemL1.id, sim::MemLevelId::L1);
  EXPECT_EQ(sim::kMemL2.id, sim::MemLevelId::L2);
  EXPECT_EQ(sim::kMemL3.id, sim::MemLevelId::L3);
}

TEST(EnergyModel, CustomLatencyDoesNotShiftEnergyBucket) {
  // Regression: mem_energy used to infer the bucket from the load latency,
  // so a swept 5-cycle latency silently billed at L2. Billing now keys off
  // the explicit level only.
  const EnergyModel m;
  sim::MemConfig cfg;  // defaults: L1 billing
  cfg.load_latency = 5;
  sim::Stats st;
  st.instructions = 1;
  st.load_count = 1;
  const double e_l1 = m.breakdown(st, sim::MemConfig{}).memory;
  EXPECT_EQ(m.breakdown(st, cfg).memory, e_l1);
}

TEST(EnergyModel, PostedStoresBillAtStoreBufferNotLoadLevel) {
  // Regression: stores used to be billed at the *load* level even though a
  // posted store (store_latency == 1) retires through the store buffer. At
  // L3, one load books mem_l3 but one posted store still books mem_l1; an
  // explicit slow store path pays the level energy.
  const EnergyModel m;
  sim::MemConfig l3;
  l3.set_level(sim::kMemL3);
  sim::Stats st;
  st.instructions = 2;
  st.load_count = 1;
  st.store_count = 1;
  EXPECT_DOUBLE_EQ(m.breakdown(st, l3).memory, m.mem_l3 + m.mem_l1);
  l3.store_latency = 100;
  EXPECT_DOUBLE_EQ(m.breakdown(st, l3).memory, 2 * m.mem_l3);
}

TEST(EnergyModel, TotalTracksWork) {
  const EnergyModel m;
  const auto spec =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F32));
  const auto r = kernels::run_kernel(spec, ir::CodegenMode::Scalar);
  const double e = m.total_pj(r.stats, {});
  EXPECT_GT(e, 0);
  // Every instruction costs at least base + leakage.
  EXPECT_GT(e, (m.base_per_instr + m.leakage_per_cycle) *
                   static_cast<double>(r.stats.instructions));
  // Memory level raises total energy for the same instruction stream.
  sim::MemConfig l3;
  l3.set_level(sim::kMemL3);
  const auto r3 = kernels::run_kernel(spec, ir::CodegenMode::Scalar, l3);
  EXPECT_GT(m.total_pj(r3.stats, l3), e);
}

TEST(EnergyModel, SmallFloatVectorizationSavesEnergy) {
  const EnergyModel m;
  const auto base =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F32));
  const auto rb = kernels::run_kernel(base, ir::CodegenMode::Scalar);
  const auto f16 =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F16));
  const auto r16 = kernels::run_kernel(f16, ir::CodegenMode::ManualVec);
  const auto f8 =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F8));
  const auto r8 = kernels::run_kernel(f8, ir::CodegenMode::ManualVec);
  const double eb = m.total_pj(rb.stats, {});
  const double e16 = m.total_pj(r16.stats, {});
  const double e8 = m.total_pj(r8.stats, {});
  EXPECT_LT(e16, eb);
  EXPECT_LT(e8, e16);
  // Paper headline band: float16 saves roughly a third, float8 roughly half
  // or more (our speedups are somewhat higher; see EXPERIMENTS.md).
  EXPECT_GT(1 - e16 / eb, 0.25);
  EXPECT_GT(1 - e8 / eb, 0.45);
}

}  // namespace
}  // namespace sfrv::energy
