// Energy-model tests: per-class ordering properties and integration with
// simulator statistics.
#include <gtest/gtest.h>

#include "energy/model.hpp"
#include "kernels/polybench.hpp"

namespace sfrv::energy {
namespace {

TEST(EnergyModel, NarrowerFormatsCostLess) {
  const EnergyModel m;
  EXPECT_LT(m.unit_energy(isa::Op::FADD_H), m.unit_energy(isa::Op::FADD_S));
  EXPECT_LT(m.unit_energy(isa::Op::FADD_B), m.unit_energy(isa::Op::FADD_H));
  EXPECT_EQ(m.unit_energy(isa::Op::FADD_AH), m.unit_energy(isa::Op::FADD_H));
}

TEST(EnergyModel, SimdCostsMoreThanScalarLessThanLanesTimesTwo) {
  const EnergyModel m;
  const double scalar16 = m.unit_energy(isa::Op::FADD_H);
  const double vec16 = m.unit_energy(isa::Op::VFADD_H);
  EXPECT_GT(vec16, scalar16);
  EXPECT_LT(vec16, 2 * 2 * scalar16);
  const double vec8 = m.unit_energy(isa::Op::VFADD_B);
  EXPECT_GT(vec8, m.unit_energy(isa::Op::FADD_B));
}

TEST(EnergyModel, IterativeUnitsCostMore) {
  const EnergyModel m;
  EXPECT_GT(m.unit_energy(isa::Op::FDIV_S), m.unit_energy(isa::Op::FMUL_S));
  EXPECT_GT(m.unit_energy(isa::Op::FMADD_S), m.unit_energy(isa::Op::FMUL_S));
}

TEST(EnergyModel, MemoryEnergyGrowsWithLevel) {
  const EnergyModel m;
  EXPECT_LT(m.mem_energy(1), m.mem_energy(10));
  EXPECT_LT(m.mem_energy(10), m.mem_energy(100));
}

TEST(EnergyModel, TotalTracksWork) {
  const EnergyModel m;
  const auto spec =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F32));
  const auto r = kernels::run_kernel(spec, ir::CodegenMode::Scalar);
  const double e = m.total_pj(r.stats, {});
  EXPECT_GT(e, 0);
  // Every instruction costs at least base + leakage.
  EXPECT_GT(e, (m.base_per_instr + m.leakage_per_cycle) *
                   static_cast<double>(r.stats.instructions));
  // Memory level raises total energy for the same instruction stream.
  sim::MemConfig l3;
  l3.load_latency = 100;
  const auto r3 = kernels::run_kernel(spec, ir::CodegenMode::Scalar, l3);
  EXPECT_GT(m.total_pj(r3.stats, l3), e);
}

TEST(EnergyModel, SmallFloatVectorizationSavesEnergy) {
  const EnergyModel m;
  const auto base =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F32));
  const auto rb = kernels::run_kernel(base, ir::CodegenMode::Scalar);
  const auto f16 =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F16));
  const auto r16 = kernels::run_kernel(f16, ir::CodegenMode::ManualVec);
  const auto f8 =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F8));
  const auto r8 = kernels::run_kernel(f8, ir::CodegenMode::ManualVec);
  const double eb = m.total_pj(rb.stats, {});
  const double e16 = m.total_pj(r16.stats, {});
  const double e8 = m.total_pj(r8.stats, {});
  EXPECT_LT(e16, eb);
  EXPECT_LT(e8, e16);
  // Paper headline band: float16 saves roughly a third, float8 roughly half
  // or more (our speedups are somewhat higher; see EXPERIMENTS.md).
  EXPECT_GT(1 - e16 / eb, 0.25);
  EXPECT_GT(1 - e8 / eb, 0.45);
}

}  // namespace
}  // namespace sfrv::energy
