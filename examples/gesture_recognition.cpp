// Gesture-recognition case study (paper Section V-C): train a linear SVM on
// synthetic EMG-like data, then run inference on the smallFloat simulator
// under several precision schemes and compare cycles, energy and accuracy.
//
// Build & run:  ./build/examples/gesture_recognition
#include <cstdio>

#include "energy/model.hpp"
#include "kernels/qor.hpp"
#include "kernels/suite.hpp"

using namespace sfrv;
using kernels::TypeConfig;

int main() {
  const auto& fx = kernels::svm_fixture();
  std::printf("gesture SVM: %d classes, %d features, %d train / %d test samples\n",
              fx.model.classes, fx.model.features, fx.train.samples,
              fx.test.samples);

  const auto golden = kernels::svm_scores_golden(fx.model, fx.test);
  std::printf("reference (double) accuracy: %.1f%%\n\n",
              100 * kernels::classification_accuracy(golden, fx.test.labels));

  struct Scheme {
    const char* name;
    TypeConfig tc;
    ir::CodegenMode mode;
  };
  const Scheme schemes[] = {
      {"float (scalar)", TypeConfig::uniform(ir::ScalarType::F32),
       ir::CodegenMode::Scalar},
      {"float16, auto-vec", TypeConfig::uniform(ir::ScalarType::F16),
       ir::CodegenMode::AutoVec},
      {"float16, manual", TypeConfig::uniform(ir::ScalarType::F16),
       ir::CodegenMode::ManualVec},
      {"mixed f16+f32acc", {ir::ScalarType::F16, ir::ScalarType::F32},
       ir::CodegenMode::ManualVec},
      {"float16alt", TypeConfig::uniform(ir::ScalarType::F16Alt),
       ir::CodegenMode::ManualVec},
      {"float8", TypeConfig::uniform(ir::ScalarType::F8),
       ir::CodegenMode::ManualVec},
  };

  const energy::EnergyModel em;
  const sim::MemConfig mem;
  double base_cycles = 0, base_energy = 0;
  std::printf("%-20s %10s %9s %9s %10s\n", "scheme", "cycles", "speedup",
              "energy", "accuracy");
  for (const auto& s : schemes) {
    const auto spec = kernels::make_svm(s.tc, fx.model, fx.test);
    const auto r = kernels::run_kernel(spec, s.mode, mem);
    const double cyc = static_cast<double>(r.cycles());
    const double e = em.total_pj(r.stats, mem);
    if (base_cycles == 0) {
      base_cycles = cyc;
      base_energy = e;
    }
    const auto rows = kernels::reshape_scores(r.outputs.at("scores"),
                                              fx.test.samples, fx.model.classes);
    std::printf("%-20s %10.0f %8.2fx %8.2fx %9.1f%%\n", s.name, cyc,
                base_cycles / cyc, e / base_energy,
                100 * kernels::classification_accuracy(rows, fx.test.labels));
  }
  std::printf("\nthe tuned mixed scheme keeps float accuracy at float16-level "
              "cost -- the transprecision result of the paper's case study\n");
  return 0;
}
