// Domain-specific example: a separable 3-tap image blur in float16 SIMD.
//
// Image filters are one of the IoT workloads the paper's introduction
// motivates: high arithmetic density, tolerant of reduced precision. This
// example builds the horizontal blur pass as a kernel, lowers it with the
// manual vectorizer (packed vfmul.r/vfmac over binary16 rows), runs it on
// the simulator, and reports cycles/energy against the scalar float
// version plus the output PSNR.
//
// Build & run:  ./build/examples/image_filter
#include <cmath>
#include <cstdio>
#include <random>

#include "energy/model.hpp"
#include "kernels/qor.hpp"
#include "kernels/runner.hpp"

using namespace sfrv;

namespace {

/// dst[i][j] = 0.25*src[i][j-1] + 0.5*src[i][j] + 0.25*src[i][j+1]
kernels::KernelSpec make_blur(ir::ScalarType t, int rows, int cols) {
  kernels::KernelSpec spec;
  auto& k = spec.kernel;
  k.name = "blur3";
  const int SRC = k.add_array("src", t, rows, cols);
  const int DST = k.add_array("dst", t, rows, cols);
  const int i = k.fresh_loop_var();
  const int j = k.fresh_loop_var();

  using ir::Expr;
  ir::Loop lj{j, 1, ir::Bound::fixed(cols - 1), {}};
  lj.body.push_back(ir::store(
      {DST, {i, 0}, {j, 0}},
      Expr::add(
          Expr::mul(Expr::constant(0.5), Expr::load({SRC, {i, 0}, {j, 0}})),
          Expr::mul(Expr::constant(0.25),
                    Expr::add(Expr::load({SRC, {i, 0}, {j, -1}}),
                              Expr::load({SRC, {i, 0}, {j, 1}}))))));
  ir::Loop li{i, 0, ir::Bound::fixed(rows), {}};
  li.body.push_back(std::move(lj));
  k.body.push_back(std::move(li));

  // A deterministic synthetic "image" in [0, 1).
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> img(static_cast<std::size_t>(rows * cols));
  for (auto& p : img) p = dist(gen);
  spec.init.resize(2);
  spec.init[static_cast<std::size_t>(SRC)] = img;
  spec.output_arrays = {"dst"};

  std::vector<double> gold(static_cast<std::size_t>(rows * cols), 0.0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 1; c < cols - 1; ++c) {
      gold[static_cast<std::size_t>(r * cols + c)] =
          0.5 * img[static_cast<std::size_t>(r * cols + c)] +
          0.25 * (img[static_cast<std::size_t>(r * cols + c - 1)] +
                  img[static_cast<std::size_t>(r * cols + c + 1)]);
    }
  }
  spec.golden.push_back(std::move(gold));
  return spec;
}

}  // namespace

int main() {
  constexpr int kRows = 32, kCols = 48;
  const energy::EnergyModel em;
  const sim::MemConfig mem;

  struct Cfg {
    const char* name;
    ir::ScalarType t;
    ir::CodegenMode mode;
  };
  const Cfg cfgs[] = {
      {"float scalar", ir::ScalarType::F32, ir::CodegenMode::Scalar},
      {"float16 manual SIMD", ir::ScalarType::F16, ir::CodegenMode::ManualVec},
      {"float8 manual SIMD", ir::ScalarType::F8, ir::CodegenMode::ManualVec},
  };

  std::printf("3-tap horizontal blur, %dx%d image\n\n", kRows, kCols);
  std::printf("%-22s %9s %9s %9s %10s\n", "config", "cycles", "speedup",
              "energy", "SQNR (dB)");
  double base_cyc = 0, base_e = 0;
  for (const auto& c : cfgs) {
    const auto spec = make_blur(c.t, kRows, kCols);
    const auto r = kernels::run_kernel(spec, c.mode, mem);
    const double cyc = static_cast<double>(r.cycles());
    const double e = em.total_pj(r.stats, mem);
    if (base_cyc == 0) {
      base_cyc = cyc;
      base_e = e;
    }
    const double sqnr =
        kernels::sqnr_db(spec.golden[0], r.outputs.at("dst"));
    std::printf("%-22s %9.0f %8.2fx %8.2fx %10.1f\n", c.name, cyc,
                base_cyc / cyc, e / base_e, sqnr);
  }
  std::printf("\nfloat16 keeps ~60 dB fidelity (indistinguishable for 8-bit "
              "pixels) at roughly half the cycles and energy; float8 trades "
              "visible noise for another big step down\n");
  return 0;
}
