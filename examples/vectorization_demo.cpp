// Vectorization demo (the paper's Fig. 5 walk-through): one dot-product
// kernel, three code generators. Prints the inner loop each backend emits
// and the measured cycle counts.
//
// Build & run:  ./build/examples/vectorization_demo
#include <cstdio>

#include "isa/disasm.hpp"
#include "kernels/runner.hpp"

using namespace sfrv;

namespace {

kernels::KernelSpec make_dotp(int n) {
  kernels::KernelSpec spec;
  auto& k = spec.kernel;
  k.name = "dotp";
  const int A = k.add_array("a", ir::ScalarType::F16, 1, n);
  const int B = k.add_array("b", ir::ScalarType::F16, 1, n);
  const int OUT = k.add_array("out", ir::ScalarType::F32, 1, 1);
  const int sum = k.add_var("sum", ir::ScalarType::F32);
  const int i = k.fresh_loop_var();

  k.body.push_back(ir::assign_var(sum, ir::Expr::constant(0.0)));
  ir::Loop li{i, 0, ir::Bound::fixed(n), {}};
  li.body.push_back(ir::accum_var(
      sum, ir::Expr::mul(ir::Expr::load({A, ir::Index::constant(0), {i, 0}}),
                         ir::Expr::load({B, ir::Index::constant(0), {i, 0}}))));
  k.body.push_back(std::move(li));
  k.body.push_back(
      ir::store({OUT, ir::Index::constant(0), ir::Index::constant(0)},
                ir::Expr::variable(sum)));

  spec.init.resize(3);
  std::vector<double> av(static_cast<std::size_t>(n)), bv(static_cast<std::size_t>(n));
  for (int x = 0; x < n; ++x) {
    av[static_cast<std::size_t>(x)] = 0.125 * ((x % 9) - 4);
    bv[static_cast<std::size_t>(x)] = 0.25 * ((x % 5) - 2);
  }
  spec.init[static_cast<std::size_t>(A)] = av;
  spec.init[static_cast<std::size_t>(B)] = bv;
  spec.output_arrays = {"out"};
  double acc = 0;
  for (int x = 0; x < n; ++x) acc += av[static_cast<std::size_t>(x)] * bv[static_cast<std::size_t>(x)];
  spec.golden.push_back({acc});
  return spec;
}

void show(const char* title, const kernels::KernelSpec& spec,
          ir::CodegenMode mode) {
  const auto r = kernels::run_kernel(spec, mode);
  std::printf("\n--- %s ---\n", title);
  for (const auto& [beg, end] : r.lowered.inner_ranges) {
    for (std::uint32_t pc = beg; pc < end; pc += 4) {
      const auto idx = (pc - r.text_base) / 4;
      std::printf("  %s\n",
                  isa::disassemble(r.lowered.program.text[idx], pc).c_str());
    }
  }
  std::printf("cycles: %llu, instructions: %llu, result: %.6f (golden %.6f)\n",
              static_cast<unsigned long long>(r.stats.cycles),
              static_cast<unsigned long long>(r.stats.instructions),
              r.outputs.at("out")[0], spec.golden[0][0]);
}

}  // namespace

int main() {
  std::printf("float16 dot product with a float accumulator\n"
              "  float16 *a, *b;  float sum = 0;\n"
              "  for (i = 0; i < 64; i++) sum += a[i] * b[i];\n");
  const auto spec = make_dotp(64);
  show("scalar (fmacex.s.h, Xfaux)", spec, ir::CodegenMode::Scalar);
  show("auto-vectorized (vfmul.h + unpack + fcvt.s.h + fadd.s, Fig. 5 left)",
       spec, ir::CodegenMode::AutoVec);
  show("manually vectorized (vfdotpex.s.h, Fig. 5 right)", spec,
       ir::CodegenMode::ManualVec);
  return 0;
}
