// Automatic precision tuning demo (paper Section V-C): search the
// variable-to-type assignment of the SVM under a QoR constraint with the
// greedy (fpPrecisionTuning-style) and exhaustive tuners.
//
// Two cost objectives are shown:
//  * execution cycles on the smallFloat platform (what the ISA extensions
//    make cheap: the expanding Xfaux ops favour exactly the paper's
//    float16-data/float-accumulator assignment), and
//  * total variable bit-width (the fpPrecisionTuning objective).
//
// Build & run:  ./build/examples/precision_tuning
#include <cstdio>
#include <map>

#include "kernels/qor.hpp"
#include "kernels/suite.hpp"
#include "tuner/tuner.hpp"

using namespace sfrv;
using ir::ScalarType;

namespace {

struct Measured {
  double accuracy = 0;
  double cycles = 0;
};

Measured measure(const tuner::TypeVector& t) {
  static std::map<std::pair<int, int>, Measured> cache;
  const auto key = std::make_pair(static_cast<int>(t[0]), static_cast<int>(t[1]));
  if (const auto it = cache.find(key); it != cache.end()) return it->second;
  const auto& f = kernels::svm_fixture();
  const auto spec = kernels::make_svm({t[0], t[1]}, f.model, f.test);
  const auto r = kernels::run_kernel(spec, ir::CodegenMode::ManualVec);
  const auto rows = kernels::reshape_scores(r.outputs.at("scores"),
                                            f.test.samples, f.model.classes);
  Measured m;
  m.accuracy = kernels::classification_accuracy(rows, f.test.labels);
  m.cycles = static_cast<double>(r.cycles());
  cache[key] = m;
  return m;
}

tuner::Problem problem(double threshold, bool cycles_cost) {
  tuner::Problem p;
  p.slot_names = {"data (inputs/weights)", "accumulator"};
  p.slot_domains = {
      {ScalarType::F8, ScalarType::F16Alt, ScalarType::F16, ScalarType::F32},
      {ScalarType::F8, ScalarType::F16Alt, ScalarType::F16, ScalarType::F32}};
  p.qor = [](const tuner::TypeVector& t) { return measure(t).accuracy; };
  if (cycles_cost) {
    p.cost = [](const tuner::TypeVector& t) { return measure(t).cycles; };
  } else {
    p.cost = [](const tuner::TypeVector& t) {
      return static_cast<double>(ir::width_bits(t[0]) + ir::width_bits(t[1]));
    };
  }
  p.qor_threshold = threshold;
  return p;
}

void report(const char* title, const tuner::Result& r,
            const tuner::Problem& p) {
  std::printf("\n%s\n", title);
  std::printf("  evaluations: %zu\n", r.explored.size());
  if (!r.found) {
    std::printf("  no feasible configuration\n");
    return;
  }
  for (std::size_t s = 0; s < p.slot_names.size(); ++s) {
    std::printf("  %-22s -> %s\n", p.slot_names[s].c_str(),
                std::string(ir::type_name(r.best.types[s])).c_str());
  }
  const auto m = measure(r.best.types);
  std::printf("  accuracy %.1f%%, %.0f cycles\n", 100 * m.accuracy, m.cycles);
}

}  // namespace

int main() {
  std::printf("precision tuning of the gesture SVM "
              "(QoR = classification accuracy)\n");

  const auto strict_cyc = problem(1.0, true);
  report("strict constraint, cycle cost - exhaustive:",
         tuner::tune_exhaustive(strict_cyc), strict_cyc);
  report("strict constraint, cycle cost - greedy:",
         tuner::tune_greedy(strict_cyc), strict_cyc);

  const auto strict_width = problem(1.0, false);
  report("strict constraint, bit-width cost (fpPrecisionTuning objective):",
         tuner::tune_exhaustive(strict_width), strict_width);

  const auto relaxed = problem(0.95, true);
  report("relaxed constraint (>= 95% accuracy), cycle cost:",
         tuner::tune_exhaustive(relaxed), relaxed);

  std::printf(
      "\npaper Section V-C: the strict constraint assigns float to the "
      "accumulation and float16 to the other variables; tolerating ~5%% "
      "errors lets the tuner shrink the accumulator type further\n");
  return 0;
}
