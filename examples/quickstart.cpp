// Quickstart: assemble a tiny smallFloat SIMD program with the macro
// assembler, run it on the simulator, and read the results back.
//
// The program packs two binary32 scalars into a binary16 vector with the
// cast-and-pack instruction (vfcpka.h.s), squares it lane-wise with a packed
// multiply-accumulate (vfmac.h), and converts lane 0 back to binary32.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "asmb/assembler.hpp"
#include "isa/disasm.hpp"
#include "sim/core.hpp"
#include "softfloat/softfloat.hpp"

int main() {
  using namespace sfrv;
  namespace reg = asmb::reg;
  using isa::Op;

  asmb::Assembler a;

  // Two binary32 inputs in the data segment.
  const float x = 1.5f, y = -2.25f;
  const auto dx = a.data_bytes(&x, sizeof x, 4);
  const auto dy = a.data_bytes(&y, sizeof y, 4);
  const auto dout = a.data_zero(4);

  a.la(reg::s0, dx);
  a.la(reg::s1, dy);
  a.la(reg::s2, dout);
  a.flw(reg::fa0, 0, reg::s0);                       // fa0 = 1.5f
  a.flw(reg::fa1, 0, reg::s1);                       // fa1 = -2.25f
  a.fp_rrr(Op::VFCPKA_H_S, reg::fa2, reg::fa0, reg::fa1);  // fa2 = {h(1.5), h(-2.25)}
  a.fp_rr(Op::FMV_S_X, reg::fa3, reg::zero);         // fa3 = packed zeros
  a.fp_rrr(Op::VFMAC_H, reg::fa3, reg::fa2, reg::fa2);     // fa3 = fa2 * fa2
  a.fp_rr(Op::FCVT_S_H, reg::fa4, reg::fa3);         // widen lane 0
  a.fsw(reg::fa4, 0, reg::s2);
  a.ebreak();

  const auto prog = a.finish();

  std::printf("program (%zu instructions):\n", prog.text.size());
  for (std::size_t i = 0; i < prog.text.size(); ++i) {
    const auto pc = prog.text_base + static_cast<std::uint32_t>(i * 4);
    std::printf("  %04x: %08x  %s\n", pc, prog.text_words[i],
                isa::disassemble(prog.text[i], pc).c_str());
  }

  sim::Core core;  // RV32IMF + all smallFloat extensions, FLEN=32
  core.load_program(prog);
  core.run();

  float out = 0;
  core.memory().read_block(dout, &out, sizeof out);
  std::printf("\nlane0: (1.5)^2 computed via binary16 SIMD = %g\n", out);
  std::printf("lane1 bits: 0x%04llx = %g (binary16 of (-2.25)^2)\n",
              static_cast<unsigned long long>((core.f_bits(reg::fa3) >> 16) & 0xffff),
              fp::rt_to_double(fp::FpFormat::F16, (core.f_bits(reg::fa3) >> 16) & 0xffff));
  std::printf("cycles: %llu, instructions: %llu\n",
              static_cast<unsigned long long>(core.stats().cycles),
              static_cast<unsigned long long>(core.stats().instructions));
  return 0;
}
