// Table III reproduction: quality of results as SQNR (dB) per benchmark and
// smallFloat type, measured on the program outputs of the manually
// vectorized kernels against double-precision golden references.
//
// Paper reference (dB):
//            SVM   GEMM  ATAX  SYRK  SYR2K FDTD2D
//  float16   40.5  60.5  36.9  59.4  60.1  45.7
//  float16alt 25.9 43.3  39.0  42.3  42.3  31.2
//  float8   -12.1  14.0   1.0  10.1   6.8  -8.8
#include <cstdio>

#include "bench_util.hpp"

namespace sfrv::bench {
namespace {

void run_table3() {
  print_header("Table III: SQNR (dB) of smallFloat program outputs");
  const ir::ScalarType types[] = {ir::ScalarType::F16, ir::ScalarType::F16Alt,
                                  ir::ScalarType::F8};
  std::printf("%-12s", "type");
  for (const auto& b : kernels::benchmark_suite()) {
    std::printf(" %8s", b.name.c_str());
  }
  std::printf("\n");
  print_row_rule(70);
  for (const auto t : types) {
    std::printf("%-12s", std::string(ir::type_name(t)).c_str());
    for (const auto& b : kernels::benchmark_suite()) {
      const auto spec = b.make(TypeConfig::uniform(t));
      const auto r = kernels::run_kernel(spec, ir::CodegenMode::ManualVec);
      const double s =
          kernels::sqnr_db(golden_concat(spec), r.concat_outputs(spec.output_arrays));
      std::printf(" %8.1f", s);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper (dB):  float16: 40.5 60.5 36.9 59.4 60.1 45.7 | float16alt: "
      "25.9 43.3 39.0 42.3 42.3 31.2 | float8: -12.1 14.0 1.0 10.1 6.8 -8.8\n"
      "expected shape: float16 > float16alt >> float8 on every benchmark\n");
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_table3();
  return 0;
}
