// Microbenchmarks (google-benchmark): simulator throughput (simulated
// instructions per second) on representative kernels.
#include <benchmark/benchmark.h>

#include "kernels/polybench.hpp"

namespace {

using namespace sfrv;

void BM_SimGemmScalarF32(benchmark::State& state) {
  const auto spec =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F32));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = kernels::run_kernel(spec, ir::CodegenMode::Scalar);
    instructions += r.stats.instructions;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void BM_SimGemmVectorF16(benchmark::State& state) {
  const auto spec =
      kernels::make_gemm(kernels::TypeConfig::uniform(ir::ScalarType::F16));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = kernels::run_kernel(spec, ir::CodegenMode::ManualVec);
    instructions += r.stats.instructions;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void BM_SimFdtdVectorF8(benchmark::State& state) {
  const auto spec =
      kernels::make_fdtd2d(kernels::TypeConfig::uniform(ir::ScalarType::F8));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = kernels::run_kernel(spec, ir::CodegenMode::ManualVec);
    instructions += r.stats.instructions;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.counters["sim_instr_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SimGemmScalarF32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimGemmVectorF16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimFdtdVectorF8)->Unit(benchmark::kMillisecond);
BENCHMARK_MAIN();
