// Figure 2 reproduction: speedup of manually vectorized float16 / float8
// over scalar float as the memory latency grows (L1 = 1, L2 = 10, L3 = 100
// cycles per access).
//
// Paper reference points: float16 speedups grow by +7.4 % (L2) and +10.65 %
// (L3) relative to L1; float8 by +4.75 % and +8.01 %.
#include <cstdio>

#include "bench_util.hpp"

namespace sfrv::bench {
namespace {

void run_figure2() {
  print_header("Figure 2: manual-vectorization speedup vs memory latency");
  const sim::MemLevel levels[] = {sim::kMemL1, sim::kMemL2, sim::kMemL3};
  const ir::ScalarType types[] = {ir::ScalarType::F16, ir::ScalarType::F8};

  std::printf("%-8s", "bench");
  for (const auto t : types) {
    for (const auto& lv : levels) {
      std::printf(" %8s-%s", std::string(ir::type_name(t)).c_str(), lv.name);
    }
  }
  std::printf("\n");
  print_row_rule(100);

  std::vector<double> avg[2][3];
  for (const auto& b : kernels::benchmark_suite()) {
    std::printf("%-8s", b.name.c_str());
    for (int ti = 0; ti < 2; ++ti) {
      for (int li = 0; li < 3; ++li) {
        sim::MemConfig mem;
        mem.set_level(levels[li]);
        const auto base = run(b, TypeConfig::uniform(ir::ScalarType::F32),
                              ir::CodegenMode::Scalar, mem);
        const auto man = run(b, TypeConfig::uniform(types[ti]),
                             ir::CodegenMode::ManualVec, mem);
        const double s = static_cast<double>(base.cycles()) /
                         static_cast<double>(man.cycles());
        std::printf(" %11.2f", s);
        avg[ti][li].push_back(s);
      }
    }
    std::printf("\n");
  }
  print_row_rule(100);
  std::printf("%-8s", "average");
  double a16[3], a8[3];
  for (int li = 0; li < 3; ++li) a16[li] = geomean(avg[0][li]);
  for (int li = 0; li < 3; ++li) a8[li] = geomean(avg[1][li]);
  for (int li = 0; li < 3; ++li) std::printf(" %11.2f", a16[li]);
  for (int li = 0; li < 3; ++li) std::printf(" %11.2f", a8[li]);
  std::printf("\n\nfloat16 speedup growth vs L1:  L2 %+.1f%%  L3 %+.1f%%   "
              "(paper: +7.4%% / +10.65%%)\n",
              100 * (a16[1] / a16[0] - 1), 100 * (a16[2] / a16[0] - 1));
  std::printf("float8  speedup growth vs L1:  L2 %+.1f%%  L3 %+.1f%%   "
              "(paper: +4.75%% / +8.01%%)\n",
              100 * (a8[1] / a8[0] - 1), 100 * (a8[2] / a8[0] - 1));
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_figure2();
  return 0;
}
