// Figure 3 reproduction: energy of manually vectorized float16 / float8
// normalized to scalar float, for memory latencies L1/L2/L3.
//
// Paper reference points: ~30 % average saving for 16-bit types and ~50 %
// for binary8 with data in L1 memory.
#include <cstdio>

#include "bench_util.hpp"

namespace sfrv::bench {
namespace {

void run_figure3() {
  print_header("Figure 3: energy normalized to float (manual vectorization)");
  const sim::MemLevel levels[] = {sim::kMemL1, sim::kMemL2, sim::kMemL3};
  const ir::ScalarType types[] = {ir::ScalarType::F16, ir::ScalarType::F8};
  const energy::EnergyModel model;

  std::printf("%-8s", "bench");
  for (const auto t : types) {
    for (const auto& lv : levels) {
      std::printf(" %8s-%s", std::string(ir::type_name(t)).c_str(), lv.name);
    }
  }
  std::printf("\n");
  print_row_rule(100);

  std::vector<double> avg[2][3];
  for (const auto& b : kernels::benchmark_suite()) {
    std::printf("%-8s", b.name.c_str());
    for (int ti = 0; ti < 2; ++ti) {
      for (int li = 0; li < 3; ++li) {
        sim::MemConfig mem;
        mem.set_level(levels[li]);
        const auto base = run(b, TypeConfig::uniform(ir::ScalarType::F32),
                              ir::CodegenMode::Scalar, mem);
        const auto man = run(b, TypeConfig::uniform(types[ti]),
                             ir::CodegenMode::ManualVec, mem);
        const double rel =
            model.total_pj(man.stats, mem) / model.total_pj(base.stats, mem);
        std::printf(" %11.2f", rel);
        avg[ti][li].push_back(rel);
      }
    }
    std::printf("\n");
  }
  print_row_rule(100);
  std::printf("%-8s", "average");
  double a16[3], a8[3];
  for (int li = 0; li < 3; ++li) a16[li] = geomean(avg[0][li]);
  for (int li = 0; li < 3; ++li) a8[li] = geomean(avg[1][li]);
  for (int li = 0; li < 3; ++li) std::printf(" %11.2f", a16[li]);
  for (int li = 0; li < 3; ++li) std::printf(" %11.2f", a8[li]);
  std::printf("\n\nfloat16 saving at L1: %.0f%%   (paper: ~30%%)\n",
              100 * (1 - a16[0]));
  std::printf("float8  saving at L1: %.0f%%   (paper: ~50%%)\n",
              100 * (1 - a8[0]));
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_figure3();
  return 0;
}
