// Figure 5 reproduction: the dot-product vectorization example.
//
//   float16 *a, *b;  float sum = 0;
//   for (i = 0; i < n; i++) sum += a[i] * b[i];
//
// Automatic vectorization emits vfmul.h + lane unpacking + fcvt.s.h + fadd.s
// per pair; manual vectorization uses the Xfaux expanding dot product
// (vfdotpex.s.h) and removes the conversion instructions. The paper reports
// a ~25 % instruction-count reduction for the manual version.
#include <cstdio>

#include "bench_util.hpp"
#include "isa/disasm.hpp"
#include "kernels/svm.hpp"

namespace sfrv::bench {
namespace {

kernels::KernelSpec make_dotp(int n) {
  kernels::KernelSpec spec;
  auto& k = spec.kernel;
  k.name = "dotp";
  const int A = k.add_array("a", ir::ScalarType::F16, 1, n);
  const int B = k.add_array("b", ir::ScalarType::F16, 1, n);
  const int OUT = k.add_array("out", ir::ScalarType::F32, 1, 1);
  const int sum = k.add_var("sum", ir::ScalarType::F32);
  const int i = k.fresh_loop_var();

  k.body.push_back(ir::assign_var(sum, ir::Expr::constant(0.0)));
  ir::Loop li{i, 0, ir::Bound::fixed(n), {}};
  li.body.push_back(ir::accum_var(
      sum, ir::Expr::mul(ir::Expr::load({A, ir::Index::constant(0), {i, 0}}),
                         ir::Expr::load({B, ir::Index::constant(0), {i, 0}}))));
  k.body.push_back(std::move(li));
  k.body.push_back(
      ir::store({OUT, ir::Index::constant(0), ir::Index::constant(0)},
                ir::Expr::variable(sum)));

  spec.init.resize(3);
  std::vector<double> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (int x = 0; x < n; ++x) {
    a[static_cast<std::size_t>(x)] = 0.01 * (x % 17) - 0.05;
    b[static_cast<std::size_t>(x)] = 0.02 * (x % 13) - 0.1;
  }
  spec.init[static_cast<std::size_t>(A)] = a;
  spec.init[static_cast<std::size_t>(B)] = b;
  spec.output_arrays = {"out"};
  double acc = 0;
  for (int x = 0; x < n; ++x) {
    acc += a[static_cast<std::size_t>(x)] * b[static_cast<std::size_t>(x)];
  }
  spec.golden.push_back({acc});
  return spec;
}

void dump_inner_loop(const char* title, const kernels::RunResult& r) {
  std::printf("\n%s inner loop:\n", title);
  for (const auto& [beg, end] : r.lowered.inner_ranges) {
    for (std::uint32_t pc = beg; pc < end; pc += 4) {
      const auto idx = (pc - r.text_base) / 4;
      if (idx < r.lowered.program.text.size()) {
        std::printf("  %04x: %s\n", pc,
                    isa::disassemble(r.lowered.program.text[idx], pc).c_str());
      }
    }
  }
}

void run_figure5() {
  print_header("Figure 5: dot-product vectorization, auto vs manual");
  const auto spec = make_dotp(64);
  const auto autov = kernels::run_kernel(spec, ir::CodegenMode::AutoVec);
  const auto man = kernels::run_kernel(spec, ir::CodegenMode::ManualVec);

  dump_inner_loop("automatic vectorization (Fig. 5 left)", autov);
  dump_inner_loop("manual vectorization with vfdotpex (Fig. 5 right)", man);

  const auto ia = autov.stats.instructions;
  const auto im = man.stats.instructions;
  std::printf("\ndynamic instructions: auto-vec %llu, manual %llu  ->  "
              "manual saves %.0f%%   (paper: ~25%%)\n",
              static_cast<unsigned long long>(ia),
              static_cast<unsigned long long>(im),
              100.0 * (1.0 - static_cast<double>(im) / static_cast<double>(ia)));
  std::printf("conversion instructions: auto-vec %llu, manual %llu\n",
              static_cast<unsigned long long>(
                  autov.stats.count(isa::Op::FCVT_S_H) +
                  autov.stats.count(isa::Op::FMV_X_S) +
                  autov.stats.count(isa::Op::FMV_H_X)),
              static_cast<unsigned long long>(
                  man.stats.count(isa::Op::FCVT_S_H) +
                  man.stats.count(isa::Op::FMV_X_S) +
                  man.stats.count(isa::Op::FMV_H_X)));
  std::printf("result check: auto %.8f manual %.8f golden %.8f\n",
              autov.outputs.at("out")[0], man.outputs.at("out")[0],
              spec.golden[0][0]);
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_figure5();
  return 0;
}
