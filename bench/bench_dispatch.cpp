// Simulator dispatch bench: instruction throughput (MIPS) of all four
// engines -- the reference interpreter, the predecoded micro-op engine, the
// superblock-fused engine, and the jit trace-compilation engine -- on four
// loop shapes: integer-only ALU, scalar binary32 FP, packed-SIMD f8/f16,
// and a realistic vectorized kernel inner loop. The jit rows also record
// the translation-time share of wall clock and the trace-cache hit rate. The FP-capable engines are additionally measured under both
// math backends (grs = guard/round/sticky softfloat, fast = exhaustive f8
// LUTs + host-double f16/f32 path); the backend column is the speedup of
// fast over grs on the predecoded engine. Writes BENCH_dispatch.json (path
// overridable via argv[1]) so the speedups from the dispatch refactor, the
// fusion layer, and the math backend land in the bench trajectory.
// The second section measures *simulated cycles* of glue-bound lowered
// kernels at each post-lowering optimization level (ir/opt.hpp O0/O1/O2):
// unrolling + pointer strength reduction + dead-glue elimination attack the
// scalar address-generation and loop-control glue this file's wall-clock
// rows showed dominating the paper-sized kernels. The "kernel_opt" JSON
// array records the per-level cycle counts and the O2/O0 reduction.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "asmb/assembler.hpp"
#include "kernels/polybench.hpp"
#include "kernels/runner.hpp"
#include "sim/core.hpp"

namespace {

using sfrv::asmb::Assembler;
using sfrv::isa::Op;
using sfrv::sim::Core;
namespace reg = sfrv::asmb::reg;

struct Workload {
  std::string name;
  sfrv::asmb::Program prog;
};

constexpr int kIters = 400'000;

/// Wrap `body` in a kIters countdown loop (t0 is the counter).
sfrv::asmb::Program make_loop(const std::function<void(Assembler&)>& body) {
  Assembler a;
  a.li(reg::t0, kIters);
  const auto loop = a.here();
  body(a);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
  return a.finish();
}

Workload int_alu_loop() {
  return {"int_alu", make_loop([](Assembler& a) {
            a.add(reg::a0, reg::a1, reg::a2);
            a.emit({.op = Op::XOR, .rd = reg::a3, .rs1 = reg::a0, .rs2 = reg::a1});
            a.slli(reg::a4, reg::a0, 3);
            a.sub(reg::a5, reg::a4, reg::a2);
            a.emit({.op = Op::AND, .rd = reg::a6, .rs1 = reg::a5, .rs2 = reg::a3});
            a.emit({.op = Op::OR, .rd = reg::a7, .rs1 = reg::a6, .rs2 = reg::a0});
            a.emit({.op = Op::SLT, .rd = reg::t1, .rs1 = reg::a5, .rs2 = reg::a7});
            a.srli(reg::t2, reg::a7, 5);
            a.addi(reg::t3, reg::t2, 17);
            a.add(reg::t4, reg::t3, reg::t1);
            a.emit({.op = Op::SLTU, .rd = reg::t5, .rs1 = reg::t4, .rs2 = reg::a0});
            a.sub(reg::t6, reg::t4, reg::t5);
          })};
}

Workload scalar_fp_loop() {
  return {"scalar_fp", make_loop([](Assembler& a) {
            a.fp_rrr(Op::FADD_S, reg::fa0, reg::fa1, reg::fa2);
            a.fp_rrr(Op::FMUL_S, reg::fa3, reg::fa1, reg::fa2);
            a.fp_rrr(Op::FSUB_S, reg::fa4, reg::fa3, reg::fa0);
            a.fp_rrr(Op::FMIN_S, reg::fa5, reg::fa0, reg::fa3);
            a.fp_rrr(Op::FMAX_S, reg::fa6, reg::fa0, reg::fa3);
            a.fp_rrr(Op::FSGNJX_S, reg::fa7, reg::fa4, reg::fa5);
            a.fp_r4(Op::FMADD_S, reg::ft0, reg::fa1, reg::fa2, reg::fa3);
            a.fp_rrr(Op::FADD_S, reg::ft1, reg::fa6, reg::fa7);
            a.fp_rrr(Op::FMUL_S, reg::ft2, reg::fa5, reg::fa1);
            a.fp_rrr(Op::FSUB_S, reg::ft3, reg::ft2, reg::ft1);
          })};
}

/// The shape `ir::lower` actually emits for a vectorized kernel inner loop
/// (gemm/svm manual-vec: loads, one packed mac, store, address bumps,
/// back-edge) — the packed-SIMD loop the end-to-end campaign executes. The
/// pure-ALU loop below is the math-bound extreme; this one carries the
/// realistic glue-to-math ratio the fusion layer targets.
Workload packed_simd_kernel_loop() {
  Assembler a;
  const std::uint32_t buf = a.data_zero(64);
  a.la(reg::s0, buf);
  a.li(reg::t0, kIters);
  const auto loop = a.here();
  a.emit({.op = Op::FLW, .rd = reg::fs0, .rs1 = reg::s0, .imm = 0});
  a.emit({.op = Op::FLW, .rd = reg::fs1, .rs1 = reg::s0, .imm = 8});
  a.fp_rrr(Op::VFMAC_R_H, reg::fs2, reg::fs0, reg::fs1);
  a.emit({.op = Op::FSW, .rs1 = reg::s0, .rs2 = reg::fs2, .imm = 16});
  a.addi(reg::a0, reg::a0, 4);
  a.addi(reg::a1, reg::a1, 4);
  a.addi(reg::t0, reg::t0, -1);
  a.bne(reg::t0, reg::zero, loop);
  a.ebreak();
  return {"packed_simd_kernel", a.finish()};
}

Workload packed_simd_loop() {
  return {"packed_simd_f8_f16", make_loop([](Assembler& a) {
            // 4-lane binary8 block.
            a.fp_rrr(Op::VFADD_B, reg::fa0, reg::fa1, reg::fa2);
            a.fp_rrr(Op::VFMUL_B, reg::fa3, reg::fa1, reg::fa2);
            a.fp_rrr(Op::VFSUB_B, reg::fa4, reg::fa3, reg::fa0);
            a.fp_rrr(Op::VFMIN_B, reg::fa5, reg::fa0, reg::fa3);
            a.fp_rrr(Op::VFMAX_B, reg::fa6, reg::fa0, reg::fa3);
            a.fp_rrr(Op::VFSGNJ_B, reg::fa7, reg::fa4, reg::fa5);
            // 2-lane binary16 block.
            a.fp_rrr(Op::VFADD_H, reg::ft0, reg::ft1, reg::ft2);
            a.fp_rrr(Op::VFMUL_H, reg::ft3, reg::ft1, reg::ft2);
            a.fp_rrr(Op::VFSUB_H, reg::ft4, reg::ft3, reg::ft0);
            a.fp_rrr(Op::VFMIN_H, reg::ft5, reg::ft0, reg::ft3);
            a.fp_rrr(Op::VFADD_R_B, reg::ft6, reg::fa1, reg::fa2);
            a.fp_rrr(Op::VFMUL_R_H, reg::ft7, reg::ft1, reg::ft2);
          })};
}

/// Seed FP registers with benign packed values (1.0 / 2.0 patterns) so the
/// loops exercise the normal-number arithmetic paths.
void seed_fp(Core& core) {
  for (unsigned r = 0; r < 32; ++r) {
    core.set_f_bits(r, (r & 1) != 0 ? 0x3c3c3c3cull : 0x40404040ull);
  }
  core.set_f_bits(reg::ft1, 0x3c003c00ull);  // 1.0 x2 binary16
  core.set_f_bits(reg::ft2, 0x40004000ull);  // 2.0 x2 binary16
  core.set_f_bits(reg::fa1, 0x3c3c3c3cull);  // 1.0 x4 binary8
  core.set_f_bits(reg::fa2, 0x40404040ull);  // 2.0 x4 binary8
  core.set_f_bits(reg::fa2 + 1, 0x3c3c3c3cull);
}

struct Measurement {
  double mips;
  std::uint64_t instructions;
  // Engine::Jit telemetry from the best rep (zero for other engines).
  double translate_share = 0;  ///< translation wall time / total wall time
  double hit_rate = 0;         ///< trace-cache hits / block entries
};

/// Simulated cycles of a lowered kernel at one optimization level
/// (deterministic: independent of engine, backend, and host).
std::uint64_t kernel_cycles(const sfrv::kernels::KernelSpec& spec,
                            sfrv::ir::CodegenMode mode,
                            const sfrv::ir::OptConfig& opt) {
  const auto r = sfrv::kernels::run_kernel(
      spec, mode, {}, sfrv::isa::IsaConfig::full(), sfrv::sim::default_engine(),
      sfrv::fp::default_backend(), opt);
  return r.stats.cycles;
}

struct KernelOptRow {
  std::string name;
  std::uint64_t o0 = 0, o1 = 0, o2 = 0;
};

/// Glue-bound paper-sized kernels, one per code-generator story: the
/// manual-vec packed loop, the auto-vectorizer's indexed loop, and two
/// scalar pipelines (compute-heavy gemm, stencil fdtd2d).
std::vector<KernelOptRow> measure_kernel_opt() {
  using sfrv::ir::CodegenMode;
  using sfrv::ir::OptConfig;
  using sfrv::ir::ScalarType;
  using sfrv::kernels::TypeConfig;
  struct Case {
    const char* name;
    sfrv::kernels::KernelSpec spec;
    CodegenMode mode;
  };
  std::vector<Case> cases;
  cases.push_back({"gemm_f16_manualvec",
                   sfrv::kernels::make_gemm(TypeConfig::uniform(ScalarType::F16)),
                   CodegenMode::ManualVec});
  cases.push_back({"gemm_f16_autovec",
                   sfrv::kernels::make_gemm(TypeConfig::uniform(ScalarType::F16)),
                   CodegenMode::AutoVec});
  cases.push_back({"gemm_f32_scalar",
                   sfrv::kernels::make_gemm(TypeConfig::uniform(ScalarType::F32)),
                   CodegenMode::Scalar});
  cases.push_back({"atax_f16_autovec",
                   sfrv::kernels::make_atax(TypeConfig::uniform(ScalarType::F16)),
                   CodegenMode::AutoVec});
  cases.push_back({"fdtd2d_f16_scalar",
                   sfrv::kernels::make_fdtd2d(TypeConfig::uniform(ScalarType::F16)),
                   CodegenMode::Scalar});
  std::vector<KernelOptRow> rows;
  for (const auto& c : cases) {
    KernelOptRow row;
    row.name = c.name;
    row.o0 = kernel_cycles(c.spec, c.mode, OptConfig::O0());
    row.o1 = kernel_cycles(c.spec, c.mode, OptConfig::O1());
    row.o2 = kernel_cycles(c.spec, c.mode, OptConfig::O2());
    rows.push_back(std::move(row));
  }
  return rows;
}

Measurement measure(const Workload& w, Core::Engine engine,
                    sfrv::fp::MathBackend backend = sfrv::fp::MathBackend::Grs) {
  // Best-of-many short reps: each run is a few tens of milliseconds, so on
  // a contended/throttled host at least one rep per engine lands in a clean
  // scheduling window and the recorded MIPS reflects engine capability, not
  // which engine happened to overlap a throttle interval.
  Measurement m{0, 0};
  for (int rep = 0; rep < 9; ++rep) {
    Core core;
    core.set_engine(engine);
    core.set_backend(backend);
    core.load_program(w.prog);
    seed_fp(core);
    const auto t0 = std::chrono::steady_clock::now();
    if (core.run() != Core::RunResult::Halted) {
      std::fprintf(stderr, "workload %s did not halt\n", w.name.c_str());
      std::exit(1);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    m.instructions = core.stats().instructions;
    const double mips = static_cast<double>(m.instructions) / sec / 1e6;
    if (mips > m.mips) {
      m.mips = mips;
      if (engine == Core::Engine::Jit) {
        const auto& js = core.jit_stats();
        m.translate_share =
            static_cast<double>(js.translate_ns) / 1e9 / sec;
        m.hit_rate = js.hit_rate();
      }
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_dispatch.json";
  const std::vector<Workload> workloads = {int_alu_loop(), scalar_fp_loop(),
                                           packed_simd_loop(),
                                           packed_simd_kernel_loop()};

  std::printf("%-22s %9s %9s %10s %9s %9s %10s %9s %9s %9s %7s %7s\n",
              "workload", "ref MIPS", "uop MIPS", "fused MIPS", "jit MIPS",
              "uop-fast", "fused-fast", "jit-fast", "fused/uop", "jit/fused",
              "xlate%", "hit%");
  std::string json = "{\n  \"bench\": \"dispatch\",\n  \"workloads\": [\n";
  bool first = true;
  for (const auto& w : workloads) {
    using MathBackend = sfrv::fp::MathBackend;
    const auto ref = measure(w, Core::Engine::Reference);
    const auto uop = measure(w, Core::Engine::Predecoded);
    const auto fus = measure(w, Core::Engine::Fused);
    const auto jit = measure(w, Core::Engine::Jit);
    const auto uop_fast = measure(w, Core::Engine::Predecoded, MathBackend::Fast);
    const auto fus_fast = measure(w, Core::Engine::Fused, MathBackend::Fast);
    const auto jit_fast = measure(w, Core::Engine::Jit, MathBackend::Fast);
    const double speedup = uop.mips / ref.mips;
    const double fusion_gain = fus.mips / uop.mips;
    const double jit_gain = jit.mips / fus.mips;
    const double backend_gain = uop_fast.mips / uop.mips;
    std::printf(
        "%-22s %9.1f %9.1f %10.1f %9.1f %9.1f %10.1f %9.1f %8.2fx %8.2fx "
        "%6.2f%% %6.1f%%\n",
        w.name.c_str(), ref.mips, uop.mips, fus.mips, jit.mips, uop_fast.mips,
        fus_fast.mips, jit_fast.mips, fusion_gain, jit_gain,
        100 * jit.translate_share, 100 * jit.hit_rate);
    char buf[640];
    std::snprintf(buf, sizeof buf,
                  "%s    {\"name\": \"%s\", \"instructions\": %llu, "
                  "\"ref_mips\": %.1f, \"uop_mips\": %.1f, "
                  "\"fused_mips\": %.1f, \"jit_mips\": %.1f, "
                  "\"uop_fast_mips\": %.1f, \"fused_fast_mips\": %.1f, "
                  "\"jit_fast_mips\": %.1f, \"speedup\": %.3f, "
                  "\"fused_speedup\": %.3f, \"fusion_gain\": %.3f, "
                  "\"jit_gain\": %.3f, \"jit_translate_share\": %.4f, "
                  "\"jit_cache_hit_rate\": %.4f, \"backend_gain\": %.3f}",
                  first ? "" : ",\n", w.name.c_str(),
                  static_cast<unsigned long long>(uop.instructions), ref.mips,
                  uop.mips, fus.mips, jit.mips, uop_fast.mips, fus_fast.mips,
                  jit_fast.mips, speedup, fus.mips / ref.mips, fusion_gain,
                  jit_gain, jit.translate_share, jit.hit_rate, backend_gain);
    json += buf;
    first = false;
  }
  json += "\n  ],\n  \"kernel_opt\": [\n";

  std::printf("\n%-22s %12s %12s %12s %8s %8s\n", "kernel (sim cycles)",
              "O0", "O1", "O2", "O1x", "O2x");
  const auto kernel_rows = measure_kernel_opt();
  first = true;
  for (const auto& r : kernel_rows) {
    const double x1 = static_cast<double>(r.o0) / static_cast<double>(r.o1);
    const double x2 = static_cast<double>(r.o0) / static_cast<double>(r.o2);
    std::printf("%-22s %12llu %12llu %12llu %7.2fx %7.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.o0),
                static_cast<unsigned long long>(r.o1),
                static_cast<unsigned long long>(r.o2), x1, x2);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s    {\"name\": \"%s\", \"o0_cycles\": %llu, "
                  "\"o1_cycles\": %llu, \"o2_cycles\": %llu, "
                  "\"o2_cycle_reduction\": %.3f}",
                  first ? "" : ",\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.o0),
                  static_cast<unsigned long long>(r.o1),
                  static_cast<unsigned long long>(r.o2), x2);
    json += buf;
    first = false;
  }
  json += "\n  ]\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
