// Figure 4 reproduction: dynamic instruction-count breakdown for the SVM
// benchmark under mixed precision (float16 data, float accumulator):
// the original scalar float program vs automatic vs manual vectorization.
//
// Paper observations to reproduce:
//  * auto-vectorization converts float scalar ops into scalar+vector f16 ops
//    and roughly halves memory instructions, but adds ALU and conversion
//    overhead that eats the gain;
//  * manual vectorization removes the conversions (expanding Xfaux ops) and
//    the scalar f16 leftovers, and trims the ALU overhead.
#include <cstdio>

#include "bench_util.hpp"

namespace sfrv::bench {
namespace {

struct Breakdown {
  std::uint64_t mem = 0;
  std::uint64_t alu = 0;
  std::uint64_t fp32 = 0;
  std::uint64_t fp16_scalar = 0;
  std::uint64_t fp16_vector = 0;
  std::uint64_t conversions = 0;
  std::uint64_t expanding = 0;
  std::uint64_t total = 0;
};

Breakdown classify(const sim::Stats& stats) {
  Breakdown bd;
  for (std::size_t i = 0; i < isa::kNumOps; ++i) {
    const auto op = static_cast<isa::Op>(i);
    const auto n = stats.op_count[i];
    if (n == 0) continue;
    bd.total += n;
    using isa::Cls;
    switch (isa::op_class(op)) {
      case Cls::Load:
      case Cls::Store:
      case Cls::FpLoad:
      case Cls::FpStore:
        bd.mem += n;
        break;
      case Cls::IntAlu:
      case Cls::IntMul:
      case Cls::IntDiv:
      case Cls::Branch:
      case Cls::Jump:
      case Cls::Csr:
      case Cls::Sys:
        bd.alu += n;
        break;
      case Cls::FpCvt:
      case Cls::FpCvtToInt:
      case Cls::FpCvtFromInt:
      case Cls::FpMvToX:
      case Cls::FpMvFromX:
      case Cls::FpCpk:
        bd.conversions += n;
        break;
      case Cls::FpDotp:
      case Cls::FpMacEx:
      case Cls::FpMulEx:
        bd.expanding += n;
        break;
      default:
        if (isa::op_format(op) == isa::OpFmt::S) {
          bd.fp32 += n;
        } else if (isa::is_vector(op)) {
          bd.fp16_vector += n;
        } else {
          bd.fp16_scalar += n;
        }
    }
  }
  return bd;
}

void print_breakdown(const char* name, const Breakdown& b) {
  std::printf("%-14s %8llu %8llu %8llu %8llu %8llu %8llu %8llu %9llu\n", name,
              static_cast<unsigned long long>(b.mem),
              static_cast<unsigned long long>(b.alu),
              static_cast<unsigned long long>(b.fp32),
              static_cast<unsigned long long>(b.fp16_scalar),
              static_cast<unsigned long long>(b.fp16_vector),
              static_cast<unsigned long long>(b.conversions),
              static_cast<unsigned long long>(b.expanding),
              static_cast<unsigned long long>(b.total));
}

void run_figure4() {
  print_header("Figure 4: SVM instruction-count breakdown, mixed precision");
  const auto& f = kernels::svm_fixture();
  const TypeConfig mixed{ir::ScalarType::F16, ir::ScalarType::F32};
  const auto spec_float =
      kernels::make_svm(TypeConfig::uniform(ir::ScalarType::F32), f.model, f.test);
  const auto spec_mixed = kernels::make_svm(mixed, f.model, f.test);

  const auto orig = kernels::run_kernel(spec_float, ir::CodegenMode::Scalar);
  const auto autov = kernels::run_kernel(spec_mixed, ir::CodegenMode::AutoVec);
  const auto man = kernels::run_kernel(spec_mixed, ir::CodegenMode::ManualVec);

  std::printf("%-14s %8s %8s %8s %8s %8s %8s %8s %9s\n", "version", "mem",
              "alu", "fp32", "f16-scal", "f16-vec", "conv", "expand", "total");
  print_row_rule(96);
  print_breakdown("original", classify(orig.stats));
  print_breakdown("auto-vec", classify(autov.stats));
  print_breakdown("manual-vec", classify(man.stats));
  std::printf(
      "\nexpected shape (paper): auto-vec halves mem but adds conv+alu "
      "overhead; manual-vec removes conversions via Xfaux expanding ops\n");
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_figure4();
  return 0;
}
