// Table I reproduction: the operation inventory of the smallFloat
// extensions, with one concrete encoding per family to demonstrate the
// encoding scheme (fmt fields, vectorial prefix, Xfaux slots).
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace sfrv::bench {
namespace {

void run_table1() {
  print_header("Table I: smallFloat extension operation inventory");

  std::map<isa::Ext, int> counts;
  for (std::size_t i = 0; i < isa::kNumOps; ++i) {
    counts[isa::extension(static_cast<isa::Op>(i))]++;
  }
  std::printf("%-10s %6s\n", "extension", "ops");
  print_row_rule(20);
  for (const auto& [ext, n] : counts) {
    std::printf("%-10s %6d\n", std::string(isa::ext_name(ext)).c_str(), n);
  }

  std::printf("\nTable I operation families (one instance each):\n");
  struct Row {
    const char* type;
    isa::Inst inst;
    const char* semantics;
  };
  const Row rows[] = {
      {"Arithmetic", {.op = isa::Op::FADD_H, .rd = 10, .rs1 = 11, .rs2 = 12},
       "rd = rs1 + rs2"},
      {"Conversions", {.op = isa::Op::FCVT_H_S, .rd = 10, .rs1 = 11},
       "rd = (f16)rs1"},
      {"Vector Arith.", {.op = isa::Op::VFADD_H, .rd = 10, .rs1 = 11, .rs2 = 12},
       "rd[] = rs1[] + rs2[]"},
      {"Vector Conv.", {.op = isa::Op::VFCVT_X_H, .rd = 10, .rs1 = 11},
       "rd[] = (int16v)rs1[]"},
      {"Cast-and-Pack",
       {.op = isa::Op::VFCPKA_H_S, .rd = 10, .rs1 = 11, .rs2 = 12},
       "rd[] = {(f16)rs1, (f16)rs2}"},
      {"Expanding", {.op = isa::Op::FMACEX_S_H, .rd = 10, .rs1 = 11, .rs2 = 12},
       "rd = (f32)(rs1*rs2) + rd"},
      {"Other", {.op = isa::Op::VFDOTPEX_S_H, .rd = 10, .rs1 = 11, .rs2 = 12},
       "rd = (f32)dotp(rs1[], rs2[]) + rd"},
  };
  std::printf("%-14s %-28s %-10s %-8s %s\n", "op type", "instruction",
              "encoding", "ext", "semantics");
  print_row_rule(100);
  for (const auto& r : rows) {
    std::printf("%-14s %-28s 0x%08x %-8s %s\n", r.type,
                isa::disassemble(r.inst).c_str(), isa::encode(r.inst),
                std::string(isa::ext_name(isa::extension(r.inst.op))).c_str(),
                r.semantics);
  }
  std::printf(
      "\nencoding scheme: fmt=10 for binary16 (unused slot), fmt=11 for "
      "binary8 (repurposed Q), vectorial ops use the OP opcode with bit 31 "
      "set (unused prefix)\n");
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_table1();
  return 0;
}
