// Microbenchmarks (google-benchmark): throughput of the bit-accurate
// soft-float operations across formats. Not a paper figure; characterizes
// the simulator substrate itself.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "softfloat/softfloat.hpp"

namespace {

using namespace sfrv::fp;

template <class F>
std::vector<std::uint64_t> random_operands(std::size_t n) {
  std::mt19937_64 gen(42);
  std::vector<std::uint64_t> v(n);
  const std::uint64_t mask =
      F::width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << F::width) - 1);
  for (auto& x : v) x = gen() & mask;
  return v;
}

template <class F>
void BM_Add(benchmark::State& state) {
  const auto ops = random_operands<F>(4096);
  Flags fl;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = Float<F>::from_bits(ops[i & 4095]);
    const auto b = Float<F>::from_bits(ops[(i + 1) & 4095]);
    benchmark::DoNotOptimize(add(a, b, RoundingMode::RNE, fl));
    ++i;
  }
}

template <class F>
void BM_Mul(benchmark::State& state) {
  const auto ops = random_operands<F>(4096);
  Flags fl;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = Float<F>::from_bits(ops[i & 4095]);
    const auto b = Float<F>::from_bits(ops[(i + 1) & 4095]);
    benchmark::DoNotOptimize(mul(a, b, RoundingMode::RNE, fl));
    ++i;
  }
}

template <class F>
void BM_Fma(benchmark::State& state) {
  const auto ops = random_operands<F>(4096);
  Flags fl;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = Float<F>::from_bits(ops[i & 4095]);
    const auto b = Float<F>::from_bits(ops[(i + 1) & 4095]);
    const auto c = Float<F>::from_bits(ops[(i + 2) & 4095]);
    benchmark::DoNotOptimize(fma(a, b, c, RoundingMode::RNE, fl));
    ++i;
  }
}

template <class F>
void BM_Div(benchmark::State& state) {
  const auto ops = random_operands<F>(4096);
  Flags fl;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = Float<F>::from_bits(ops[i & 4095]);
    const auto b = Float<F>::from_bits(ops[(i + 1) & 4095]);
    benchmark::DoNotOptimize(div(a, b, RoundingMode::RNE, fl));
    ++i;
  }
}

template <class F>
void BM_Convert(benchmark::State& state) {
  const auto ops = random_operands<Binary32>(4096);
  Flags fl;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = Float<Binary32>::from_bits(ops[i & 4095]);
    benchmark::DoNotOptimize(convert<F>(a, RoundingMode::RNE, fl));
    ++i;
  }
}

}  // namespace

BENCHMARK(BM_Add<Binary8>);
BENCHMARK(BM_Add<Binary16>);
BENCHMARK(BM_Add<Binary16Alt>);
BENCHMARK(BM_Add<Binary32>);
BENCHMARK(BM_Add<Binary64>);
BENCHMARK(BM_Mul<Binary16>);
BENCHMARK(BM_Mul<Binary32>);
BENCHMARK(BM_Fma<Binary16>);
BENCHMARK(BM_Fma<Binary32>);
BENCHMARK(BM_Div<Binary16>);
BENCHMARK(BM_Div<Binary32>);
BENCHMARK(BM_Convert<Binary8>);
BENCHMARK(BM_Convert<Binary16>);
BENCHMARK_MAIN();
