// Figure 1 reproduction: speedup of smallFloat types over scalar float,
// per benchmark, for automatic and manual vectorization, plus the ideal
// (Amdahl) speedup.
//
// Paper reference points (Section V-B):
//   float16  auto: avg 1.34x, max 1.64x;  manual: avg 1.50x, peak 1.91x
//   float8   auto: avg 2.18x, max 3.08x;  manual: avg 2.35x, peak 3.58x
#include <cstdio>

#include "bench_util.hpp"

namespace sfrv::bench {
namespace {

void run_figure1() {
  print_header(
      "Figure 1: speedup vs scalar float (auto | manual | ideal)");
  const ir::ScalarType types[] = {ir::ScalarType::F16, ir::ScalarType::F16Alt,
                                  ir::ScalarType::F8};
  std::printf("%-8s", "bench");
  for (const auto t : types) {
    std::printf(" | %-11s auto    man  ideal", std::string(ir::type_name(t)).c_str());
  }
  std::printf("\n");
  print_row_rule(98);

  std::vector<double> avg_auto[3], avg_man[3], avg_ideal[3];
  for (const auto& b : kernels::benchmark_suite()) {
    std::printf("%-8s", b.name.c_str());
    int ti = 0;
    for (const auto t : types) {
      const auto base =
          run(b, TypeConfig::uniform(ir::ScalarType::F32), ir::CodegenMode::Scalar);
      const auto autov = run(b, TypeConfig::uniform(t), ir::CodegenMode::AutoVec);
      const auto man =
          run(b, TypeConfig::uniform(t), ir::CodegenMode::ManualVec);
      const double sa =
          static_cast<double>(base.cycles()) / static_cast<double>(autov.cycles());
      const double sm =
          static_cast<double>(base.cycles()) / static_cast<double>(man.cycles());
      // Ideal: innermost loops of the scalar-float build sped up by the lane
      // count with zero overhead.
      const int vl = ir::lanes32(t);
      const double ideal =
          static_cast<double>(base.cycles()) / base.ideal_cycles(vl);
      std::printf(" | %15.2f %6.2f %6.2f", sa, sm, ideal);
      avg_auto[ti].push_back(sa);
      avg_man[ti].push_back(sm);
      avg_ideal[ti].push_back(ideal);
      ++ti;
    }
    std::printf("\n");
  }
  print_row_rule(98);
  std::printf("%-8s", "average");
  for (int ti = 0; ti < 3; ++ti) {
    std::printf(" | %15.2f %6.2f %6.2f", geomean(avg_auto[ti]),
                geomean(avg_man[ti]), geomean(avg_ideal[ti]));
  }
  std::printf("\n\npaper:   float16 auto avg 1.34 / manual avg 1.50 (peak 1.91)"
              "; float8 auto avg 2.18 (max 3.08) / manual avg 2.35 (peak 3.58)\n");
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_figure1();
  return 0;
}
