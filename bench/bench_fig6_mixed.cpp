// Figure 6 reproduction: the mixed-precision case study. Speedup, energy
// and classification accuracy of the gesture-recognition SVM when all float
// variables are replaced by float16 / float8, versus the tuned mixed scheme
// (float16 data, float accumulator).
//
// Paper outcome: mixed precision achieves speedup and energy savings
// comparable to float16 while keeping exactly the float accuracy.
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/svm.hpp"

namespace sfrv::bench {
namespace {

void run_figure6() {
  print_header("Figure 6: SVM mixed-precision case study (manual vect.)");
  const auto& f = kernels::svm_fixture();
  const energy::EnergyModel model;
  const sim::MemConfig mem;

  struct Config {
    const char* name;
    TypeConfig tc;
    ir::CodegenMode mode;
  };
  const Config configs[] = {
      {"float", TypeConfig::uniform(ir::ScalarType::F32), ir::CodegenMode::Scalar},
      {"mixed (tuned)", {ir::ScalarType::F16, ir::ScalarType::F32},
       ir::CodegenMode::ManualVec},
      {"float16", TypeConfig::uniform(ir::ScalarType::F16),
       ir::CodegenMode::ManualVec},
      {"float8", TypeConfig::uniform(ir::ScalarType::F8),
       ir::CodegenMode::ManualVec},
  };

  double base_cycles = 0;
  double base_energy = 0;
  std::printf("%-14s %9s %10s %10s %9s %8s\n", "version", "cycles", "speedup",
              "energy", "accuracy", "errors");
  print_row_rule(70);
  for (const auto& cfg : configs) {
    const auto spec = kernels::make_svm(cfg.tc, f.model, f.test);
    const auto r = kernels::run_kernel(spec, cfg.mode, mem);
    const double cyc = static_cast<double>(r.cycles());
    const double e = model.total_pj(r.stats, mem);
    if (base_cycles == 0) {
      base_cycles = cyc;
      base_energy = e;
    }
    const auto rows = kernels::reshape_scores(r.outputs.at("scores"),
                                              f.test.samples, f.model.classes);
    const double acc = kernels::classification_accuracy(rows, f.test.labels);
    const int errors = static_cast<int>(
        std::lround((1.0 - acc) * static_cast<double>(f.test.samples)));
    std::printf("%-14s %9.0f %9.2fx %9.2fx %8.1f%% %8d\n", cfg.name, cyc,
                base_cycles / cyc, e / base_energy, 100 * acc, errors);
  }
  std::printf(
      "\nexpected shape (paper): mixed ~ float16 in speedup and energy, with "
      "float's accuracy (zero errors); float8 fastest but inaccurate\n");
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_figure6();
  return 0;
}
