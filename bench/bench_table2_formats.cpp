// Table II reproduction: supported vector lane counts per FP register-file
// width (FLEN), queried from the ISA configuration and cross-checked by
// executing a packed addition at each supported geometry.
#include <cstdio>

#include "asmb/assembler.hpp"
#include "bench_util.hpp"
#include "sim/core.hpp"
#include "softfloat/runtime.hpp"

namespace sfrv::bench {
namespace {

void run_table2() {
  print_header("Table II: vector lanes per format and FLEN");
  const fp::FpFormat fmts[] = {fp::FpFormat::F32, fp::FpFormat::F16,
                               fp::FpFormat::F16Alt, fp::FpFormat::F8};
  std::printf("%-6s %8s %8s %12s %8s\n", "FLEN", "F", "Xf16", "Xf16alt", "Xf8");
  print_row_rule(50);
  for (int flen : {64, 32, 16}) {
    std::printf("%-6d", flen);
    for (const auto f : fmts) {
      const int lanes = isa::vector_lanes(f, flen);
      if (lanes >= 2) {
        std::printf(" %*d", f == fp::FpFormat::F16Alt ? 12 : 8, lanes);
      } else {
        std::printf(" %*s", f == fp::FpFormat::F16Alt ? 12 : 8, "x");
      }
    }
    std::printf("\n");
  }

  // Execution cross-check: vfadd at FLEN=64 must process 4 f16 / 8 f8 lanes.
  asmb::Assembler a;
  a.fp_rrr(isa::Op::VFADD_B, 2, 0, 1);
  a.ebreak();
  sim::Core core(isa::IsaConfig::full(64));
  core.load_program(a.finish());
  core.set_f_bits(0, 0x3e3e3e3e3e3e3e3eull);  // 8 lanes of binary8 1.5
  core.set_f_bits(1, 0x3e3e3e3e3e3e3e3eull);
  (void)core.run();
  std::printf("\ncross-check @FLEN=64: vfadd.b over 8 lanes of 1.5 -> ");
  bool ok = true;
  for (int l = 0; l < 8; ++l) {
    const auto lane = (core.f_bits(2) >> (8 * l)) & 0xff;
    ok = ok && (fp::rt_to_double(fp::FpFormat::F8, lane) == 3.0);
  }
  std::printf("%s\n", ok ? "all lanes = 3.0 (PASS)" : "MISMATCH");
  std::printf("\npaper Table II: FLEN=64: 2/4/4/8, FLEN=32: x/2/2/4, "
              "FLEN=16: x/x/x/2\n");
}

}  // namespace
}  // namespace sfrv::bench

int main() {
  sfrv::bench::run_table2();
  return 0;
}
