// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "energy/model.hpp"
#include "kernels/qor.hpp"
#include "kernels/suite.hpp"

namespace sfrv::bench {

using kernels::Benchmark;
using kernels::KernelSpec;
using kernels::RunResult;
using kernels::TypeConfig;

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Geometric mean (the natural average for speedups).
inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double logsum = 0;
  for (double x : v) logsum += std::log(x);
  return std::exp(logsum / static_cast<double>(v.size()));
}

/// Run a benchmark at a type/mode/memory configuration.
inline RunResult run(const Benchmark& b, TypeConfig tc, ir::CodegenMode mode,
                     sim::MemConfig mem = {}) {
  const KernelSpec spec = b.make(tc);
  return kernels::run_kernel(spec, mode, mem);
}

inline std::vector<double> golden_concat(const KernelSpec& spec) {
  std::vector<double> all;
  for (const auto& g : spec.golden) all.insert(all.end(), g.begin(), g.end());
  return all;
}

}  // namespace sfrv::bench
