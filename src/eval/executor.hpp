// Sharded work-stealing executor for campaign cells.
//
// Replaces the PR 2 thread pool's single shared atomic cursor: tasks are
// dealt round-robin into per-shard deques, each worker drains its own deque
// from the front, and an idle worker steals from the *back* of the busiest
// victim — so stolen work is the work its owner would reach last, and two
// workers only contend when one of them is otherwise idle. Cells vary in
// cost by orders of magnitude (full-size SVM vs. an 8x8 smoke GEMM), which
// is exactly the imbalance stealing absorbs.
//
// Determinism: the executor only schedules; completion order is arbitrary,
// and callers must bank results by task index (the campaign writes
// `results[i]` and aggregates in matrix order afterwards — same contract as
// the old pool).
#pragma once

#include <cstddef>
#include <functional>

namespace sfrv::eval {

/// Run `task(0..n-1)` across `shards` worker threads (clamped to >= 1; one
/// shard runs inline on the calling thread). If any task throws, remaining
/// tasks are abandoned and the first exception is rethrown after all
/// workers retire.
void run_sharded(std::size_t n, int shards,
                 const std::function<void(std::size_t)>& task);

}  // namespace sfrv::eval
