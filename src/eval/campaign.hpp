// Campaign runner, split into the three layers of eval-as-a-service:
//
//  * planner   — expand_matrix / plan_campaign turn a CampaignSpec into
//                planned cells: the built kernel, its lowered program, and a
//                content-addressed CellKey (kernel digest × TypeConfig ×
//                mode × engine × backend × opt × vl × mem × schema).
//  * store     — run_campaign consults an optional CellStore before
//                simulating; hits are served in O(1) and only misses reach
//                the executor (eval/cellstore.hpp).
//  * executor  — cache-miss cells run on per-shard work-stealing deques
//                (eval/executor.hpp), streaming each completed cell through
//                a callback so clients (the service tier, progress UIs) can
//                render partial results.
//
// Determinism contract: a campaign's report is a pure function of its spec.
// Cells are executed in any order (each one builds its own kernel, Core and
// ExecContext), but results land in matrix-expansion order, and every
// aggregate is computed serially afterwards — so `-j1` and `-jN`, cold and
// warm, local and remote runs all produce byte-identical JSON.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/cellstore.hpp"
#include "eval/report.hpp"
#include "kernels/suite.hpp"
#include "sim/core.hpp"
#include "sim/memory.hpp"

namespace sfrv::eval {

/// Problem sizing: Full runs the paper-sized suite (`kernels::benchmark_suite`),
/// Smoke a reduced-size clone of it for CI and unit tests.
enum class SuiteScale { Full, Smoke };

/// A suite entry: the benchmark plus an optional QoR hook for workloads whose
/// quality metric is not SQNR alone (the SVM reports classification accuracy).
struct EvalBenchmark {
  kernels::Benchmark bench;
  std::function<double(const kernels::KernelSpec&, const kernels::RunResult&)>
      accuracy;  ///< null when accuracy is not applicable
};

/// Table III order (SVM, GEMM, ATAX, SYRK, SYR2K, FDTD2D) at either scale.
[[nodiscard]] const std::vector<EvalBenchmark>& eval_suite(SuiteScale scale);

/// A named variable-to-type assignment.
struct TypeConfigSpec {
  std::string name;
  kernels::TypeConfig tc;
};

/// The paper's evaluated configurations: float (baseline), float16,
/// float16alt, float8, and the tuned mixed scheme (float16 data / float acc).
[[nodiscard]] std::vector<TypeConfigSpec> default_type_configs();

struct CampaignSpec {
  std::string name = "table3";
  SuiteScale scale = SuiteScale::Full;
  /// Benchmarks to run, expanded in the order listed here; empty means the
  /// whole suite in Table III order.
  std::vector<std::string> benchmarks;
  std::vector<TypeConfigSpec> type_configs = default_type_configs();
  std::vector<ir::CodegenMode> modes = {ir::CodegenMode::Scalar,
                                        ir::CodegenMode::AutoVec,
                                        ir::CodegenMode::ManualVec,
                                        ir::CodegenMode::ManualVecExs};
  sim::MemConfig mem{};
  /// Simulator engine every cell (and the tuner study) executes through.
  /// The report records it; results must not depend on it — CI runs the
  /// smoke campaign under all engines and diffs the reports.
  sim::Engine engine = sim::default_engine();
  /// Softfloat math backend every cell binds its FP entry points from.
  /// Same contract as the engine: recorded for provenance, results must not
  /// depend on it (CI diffs the smoke reports across backends too).
  fp::MathBackend backend = fp::default_backend();
  /// Post-lowering optimization level every cell (and the tuner study) is
  /// lowered under. Cycle metrics depend on it; QoR metrics must not (CI
  /// diffs the QoR rows of the smoke report across levels).
  ir::OptConfig opt = ir::default_opt();
  /// VL-sweep axis (innermost after mode). Each point overrides
  /// `opt.vl_cap` for its cells; 0 keeps the legacy fixed-lane lowering.
  /// Cells at the same VL point must be bit-identical across engines,
  /// backends and thread counts; different points legitimately differ.
  std::vector<int> vls = {0};
  /// Append the tuner-driven mixed-precision case study (Fig. 6).
  bool tuner_study = true;

  /// The paper evaluation: full sizes, all benchmarks/configs/modes + tuner.
  [[nodiscard]] static CampaignSpec table3();
  /// Reduced problem sizes for CI; same matrix shape.
  [[nodiscard]] static CampaignSpec smoke();
  /// The NN inference/training tier: conv2d / fully_connected / nn_train
  /// under ExSdotp codegen, uniform float16 vs. the f8×f16 MiniFloat-NN
  /// training shape, swept over a VL axis {0, 1, 2, 4}.
  [[nodiscard]] static CampaignSpec nn(SuiteScale scale = SuiteScale::Full);

  /// Whether this campaign will run the tuner case study: it rides on the
  /// SVM, so a benchmark filter that excludes "svm" also skips the study.
  [[nodiscard]] bool runs_tuner() const;
};

/// One cell of the expanded matrix. `benchmark` points into `eval_suite`.
struct CellSpec {
  const EvalBenchmark* benchmark = nullptr;
  TypeConfigSpec type_config;
  ir::CodegenMode mode = ir::CodegenMode::Scalar;
  int vl = 0;  ///< strip-mining `setvl` cap; 0 = legacy fixed-lane lowering
};

/// Expand the campaign matrix, benchmark-major then type config then mode
/// then VL. Throws on a benchmark name not present in the suite.
[[nodiscard]] std::vector<CellSpec> expand_matrix(const CampaignSpec& spec);

/// A planner output cell: the matrix coordinates plus everything needed to
/// either serve it from the store or simulate it — the built kernel, its
/// lowered program, the effective optimizer config (campaign opt with the
/// cell's vl_cap applied), and the content address. Kernel and lowering are
/// shared_ptrs into a process-wide plan cache (keyed by suite scale,
/// benchmark name, TypeConfig, mode and opt), so a long-lived daemon plans a
/// repeated spec without re-building or re-lowering anything.
struct PlannedCell {
  CellSpec cell;
  std::shared_ptr<const kernels::KernelSpec> spec;
  std::shared_ptr<const ir::LoweredKernel> lowered;
  ir::OptConfig opt{};
  CellKey key;
};

/// The planner: expand the matrix and build/lower/digest every cell (no
/// simulation). Cheap relative to execution — this is the part a warm run
/// still pays.
[[nodiscard]] std::vector<PlannedCell> plan_campaign(const CampaignSpec& spec);

/// Execute one cell: lower, simulate, and measure.
[[nodiscard]] CellResult run_cell(
    const CellSpec& cell, const sim::MemConfig& mem,
    sim::Engine engine = sim::default_engine(),
    fp::MathBackend backend = fp::default_backend(),
    const ir::OptConfig& opt = ir::default_opt());

/// Completed-cell stream: invoked (serialized, from worker threads) as each
/// cell lands, in arbitrary completion order — store hits first, then
/// misses as the executor retires them. `index` is the matrix-expansion
/// position; `cached` tells hits from computed cells.
using CellCallback = std::function<void(
    std::size_t index, std::size_t total, const CellResult& cell, bool cached)>;

/// Run the whole campaign with `jobs` worker threads (clamped to >= 1).
/// With a `store`, cells present in it are served instead of simulated and
/// computed cells are inserted; `report.cache.{hits,misses}` record the
/// lookup outcome (serialization of that block stays opt-in via
/// `report.has_cache`). `on_cell` streams partial results.
[[nodiscard]] EvalReport run_campaign(const CampaignSpec& spec, int jobs = 1,
                                      CellStore* store = nullptr,
                                      const CellCallback& on_cell = nullptr);

/// Wire codec for campaign specs (the service protocol's request payload).
/// Round-trips exactly: a spec parsed from its own JSON plans and runs to a
/// byte-identical report.
[[nodiscard]] Json spec_to_json(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec spec_from_json(const Json& doc);

/// The Fig. 6 case study: precision tuning of the SVM slots ({data, acc}
/// over all six scalar types, narrowest first) with QoR = simulated
/// classification accuracy and cost = simulated cycles, under the strict
/// constraint of matching the float configuration's accuracy. Exhaustive
/// over the 36-config grid: lattice-ordered pairs are simulated once each
/// (memoized), unordered pairs are recorded as skipped trials.
///
/// With a `store` the tuner is a store-aware client: every simulated pair is
/// a content-addressed cell, so grid points that coincide with campaign
/// matrix cells (e.g. the "mixed" f16/f32 ManualVec SVM) are served instead
/// of re-simulated, and vice versa. `tally` (optional) accumulates the
/// lookup hits/misses into a campaign's cache telemetry.
[[nodiscard]] TunerStudy run_tuner_study(
    SuiteScale scale, const sim::MemConfig& mem,
    sim::Engine engine = sim::default_engine(),
    fp::MathBackend backend = fp::default_backend(),
    const ir::OptConfig& opt = ir::default_opt(), CellStore* store = nullptr,
    CacheTelemetry* tally = nullptr);

}  // namespace sfrv::eval
