// Campaign runner: expand a (benchmark × TypeConfig × CodegenMode) matrix,
// execute every cell through the predecoded simulator engine on a thread
// pool, and aggregate cycles, instruction/energy breakdowns, and QoR into an
// EvalReport.
//
// Determinism contract: a campaign's report is a pure function of its spec.
// Cells are executed in any order (each one builds its own kernel, Core and
// ExecContext), but results land in matrix-expansion order, and every
// aggregate is computed serially afterwards — so `-j1` and `-jN` produce
// byte-identical JSON.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "eval/report.hpp"
#include "kernels/suite.hpp"
#include "sim/core.hpp"
#include "sim/memory.hpp"

namespace sfrv::eval {

/// Problem sizing: Full runs the paper-sized suite (`kernels::benchmark_suite`),
/// Smoke a reduced-size clone of it for CI and unit tests.
enum class SuiteScale { Full, Smoke };

/// A suite entry: the benchmark plus an optional QoR hook for workloads whose
/// quality metric is not SQNR alone (the SVM reports classification accuracy).
struct EvalBenchmark {
  kernels::Benchmark bench;
  std::function<double(const kernels::KernelSpec&, const kernels::RunResult&)>
      accuracy;  ///< null when accuracy is not applicable
};

/// Table III order (SVM, GEMM, ATAX, SYRK, SYR2K, FDTD2D) at either scale.
[[nodiscard]] const std::vector<EvalBenchmark>& eval_suite(SuiteScale scale);

/// A named variable-to-type assignment.
struct TypeConfigSpec {
  std::string name;
  kernels::TypeConfig tc;
};

/// The paper's evaluated configurations: float (baseline), float16,
/// float16alt, float8, and the tuned mixed scheme (float16 data / float acc).
[[nodiscard]] std::vector<TypeConfigSpec> default_type_configs();

struct CampaignSpec {
  std::string name = "table3";
  SuiteScale scale = SuiteScale::Full;
  /// Benchmarks to run, expanded in the order listed here; empty means the
  /// whole suite in Table III order.
  std::vector<std::string> benchmarks;
  std::vector<TypeConfigSpec> type_configs = default_type_configs();
  std::vector<ir::CodegenMode> modes = {ir::CodegenMode::Scalar,
                                        ir::CodegenMode::AutoVec,
                                        ir::CodegenMode::ManualVec,
                                        ir::CodegenMode::ManualVecExs};
  sim::MemConfig mem{};
  /// Simulator engine every cell (and the tuner study) executes through.
  /// The report records it; results must not depend on it — CI runs the
  /// smoke campaign under all engines and diffs the reports.
  sim::Engine engine = sim::default_engine();
  /// Softfloat math backend every cell binds its FP entry points from.
  /// Same contract as the engine: recorded for provenance, results must not
  /// depend on it (CI diffs the smoke reports across backends too).
  fp::MathBackend backend = fp::default_backend();
  /// Post-lowering optimization level every cell (and the tuner study) is
  /// lowered under. Cycle metrics depend on it; QoR metrics must not (CI
  /// diffs the QoR rows of the smoke report across levels).
  ir::OptConfig opt = ir::default_opt();
  /// VL-sweep axis (innermost after mode). Each point overrides
  /// `opt.vl_cap` for its cells; 0 keeps the legacy fixed-lane lowering.
  /// Cells at the same VL point must be bit-identical across engines,
  /// backends and thread counts; different points legitimately differ.
  std::vector<int> vls = {0};
  /// Append the tuner-driven mixed-precision case study (Fig. 6).
  bool tuner_study = true;

  /// The paper evaluation: full sizes, all benchmarks/configs/modes + tuner.
  [[nodiscard]] static CampaignSpec table3();
  /// Reduced problem sizes for CI; same matrix shape.
  [[nodiscard]] static CampaignSpec smoke();
  /// The NN inference/training tier: conv2d / fully_connected / nn_train
  /// under ExSdotp codegen, uniform float16 vs. the f8×f16 MiniFloat-NN
  /// training shape, swept over a VL axis {0, 1, 2, 4}.
  [[nodiscard]] static CampaignSpec nn(SuiteScale scale = SuiteScale::Full);

  /// Whether this campaign will run the tuner case study: it rides on the
  /// SVM, so a benchmark filter that excludes "svm" also skips the study.
  [[nodiscard]] bool runs_tuner() const;
};

/// One cell of the expanded matrix. `benchmark` points into `eval_suite`.
struct CellSpec {
  const EvalBenchmark* benchmark = nullptr;
  TypeConfigSpec type_config;
  ir::CodegenMode mode = ir::CodegenMode::Scalar;
  int vl = 0;  ///< strip-mining `setvl` cap; 0 = legacy fixed-lane lowering
};

/// Expand the campaign matrix, benchmark-major then type config then mode
/// then VL. Throws on a benchmark name not present in the suite.
[[nodiscard]] std::vector<CellSpec> expand_matrix(const CampaignSpec& spec);

/// Execute one cell: lower, simulate, and measure.
[[nodiscard]] CellResult run_cell(
    const CellSpec& cell, const sim::MemConfig& mem,
    sim::Engine engine = sim::default_engine(),
    fp::MathBackend backend = fp::default_backend(),
    const ir::OptConfig& opt = ir::default_opt());

/// Run the whole campaign with `jobs` worker threads (clamped to >= 1).
[[nodiscard]] EvalReport run_campaign(const CampaignSpec& spec, int jobs = 1);

/// The Fig. 6 case study: precision tuning of the SVM slots ({data, acc}
/// over all six scalar types, narrowest first) with QoR = simulated
/// classification accuracy and cost = simulated cycles, under the strict
/// constraint of matching the float configuration's accuracy. Exhaustive
/// over the 36-config grid: lattice-ordered pairs are simulated once each
/// (memoized), unordered pairs are recorded as skipped trials.
[[nodiscard]] TunerStudy run_tuner_study(
    SuiteScale scale, const sim::MemConfig& mem,
    sim::Engine engine = sim::default_engine(),
    fp::MathBackend backend = fp::default_backend(),
    const ir::OptConfig& opt = ir::default_opt());

}  // namespace sfrv::eval
