#include "eval/cellstore.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "util/fnv.hpp"

namespace sfrv::eval {

namespace fs = std::filesystem;

std::string CellKey::canonical() const {
  char kern[17];
  std::snprintf(kern, sizeof(kern), "%016llx",
                static_cast<unsigned long long>(kernel_digest));
  std::ostringstream out;
  out << "schema=" << schema << '\n'
      << "kernel=" << kern << '\n'
      << "data=" << ir::type_name(data) << '\n'
      << "acc=" << ir::type_name(acc) << '\n'
      << "mode=" << ir::mode_name(mode) << '\n'
      << "vl=" << vl << '\n'
      << "engine=" << sim::engine_name(engine) << '\n'
      << "backend=" << fp::backend_name(backend) << '\n'
      << "opt=" << opt.unroll_factor << '/' << opt.ptr_strength_reduction
      << '/' << opt.dead_glue_elim << '/' << opt.vl_cap << '\n'
      << "mem=" << mem_load_latency << '/' << mem_store_latency << '/'
      << mem_level << '/' << mem_size << '\n';
  return out.str();
}

std::string CellKey::address() const {
  const std::string text = canonical();
  // Two independently seeded passes give a 128-bit address: at the cell
  // counts this store sees, accidental collision is out of the picture, and
  // deliberate collision is caught by the canonical-text check on load.
  util::Fnv1a lo;
  util::Fnv1a hi(0x9e3779b97f4a7c15ull);
  lo.bytes(text.data(), text.size());
  hi.bytes(text.data(), text.size());
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi.value()),
                static_cast<unsigned long long>(lo.value()));
  return buf;
}

CellStore::CellStore(const std::string& cache_dir) : dir_(cache_dir) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("cellstore: cannot create cache dir " + dir_ +
                             (ec ? ": " + ec.message() : ""));
  }
}

std::string CellStore::entry_path(const std::string& address) const {
  return dir_ + "/" + address + ".json";
}

std::optional<CellResult> CellStore::load_from_disk(
    const CellKey& key, const std::string& address) {
  std::ifstream in(entry_path(address), std::ios::binary);
  if (!in) return std::nullopt;  // plain miss, not corruption
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // Never serve a questionable entry: any parse error, schema drift, or
  // key-text mismatch (truncation, corruption, hash collision) is treated
  // as a miss so the cell is recomputed and the entry rewritten.
  try {
    const Json doc = Json::parse(text);
    if (doc.at("schema").as_string() != key.schema) throw std::runtime_error("schema");
    if (doc.at("key").as_string() != key.canonical()) throw std::runtime_error("key");
    return cell_from_json(doc.at("cell"));
  } catch (const std::exception&) {
    ++stats_.rejected;
    return std::nullopt;
  }
}

std::optional<CellResult> CellStore::lookup(const CellKey& key) {
  const std::string address = key.address();
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cells_.find(address);
  if (it != cells_.end()) {
    ++stats_.hits;
    return it->second;
  }
  if (!dir_.empty()) {
    if (auto cell = load_from_disk(key, address)) {
      ++stats_.hits;
      ++stats_.disk_hits;
      cells_.emplace(address, *cell);
      return cell;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void CellStore::insert(const CellKey& key, const CellResult& cell) {
  const std::string address = key.address();
  std::string disk_error;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    cells_[address] = cell;
    if (!dir_.empty()) {
      const Json entry(JsonObject{{"schema", Json(key.schema)},
                                  {"key", Json(key.canonical())},
                                  {"cell", cell_to_json(cell)}});
      // Atomic-rename publication: a reader sees either no entry or a
      // complete one, never a torn write — even with concurrent writers
      // racing on the same address (they write identical bytes anyway).
      static std::atomic<std::uint64_t> seq{0};
      const std::string tmp = entry_path(address) + ".tmp." +
                              std::to_string(::getpid()) + "." +
                              std::to_string(seq.fetch_add(1));
      std::ofstream out(tmp, std::ios::binary);
      out << entry.dump(2) << '\n';
      out.close();
      std::error_code ec;
      if (!out) {
        disk_error = "write failed";
      } else {
        fs::rename(tmp, entry_path(address), ec);
        if (ec) disk_error = ec.message();
      }
      if (!disk_error.empty()) fs::remove(tmp, ec);
    }
  }
  if (!disk_error.empty()) {
    // Persistence is best-effort (the in-memory entry is already live);
    // losing it only costs a future recomputation, so warn instead of
    // failing the campaign.
    std::fprintf(stderr, "warning: cellstore: could not persist %s: %s\n",
                 address.c_str(), disk_error.c_str());
  }
}

CellStore::Stats CellStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CellStore::reset_stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = {};
}

std::size_t CellStore::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

}  // namespace sfrv::eval
