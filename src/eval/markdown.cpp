// Markdown rendering of an EvalReport, mirroring the paper's evaluation
// artifacts: the Table III QoR/speedup matrices, the Fig. 5 auto- vs.
// manual-vectorization comparison, and the Fig. 6 mixed-precision case
// study. Missing cells (filtered campaigns) render as "—".
#include <cstdio>
#include <string>

#include "eval/report.hpp"

namespace sfrv::eval {

namespace {

std::string fmt(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_ratio(double num, double den) {
  if (den == 0) return "—";
  return fmt(num / den, 2) + "×";
}

/// First point of the VL-sweep axis: the fixed tables below are rendered at
/// this VL; the sweep section (when the axis has more points) shows the rest.
int first_vl(const EvalReport& r) { return r.vls.empty() ? 0 : r.vls.front(); }

const CellResult* scalar_float_cell(const EvalReport& r,
                                    const std::string& benchmark) {
  return r.find_cell(benchmark, "float", ir::CodegenMode::Scalar, first_vl(r));
}

void table_header(std::string& out, const std::vector<std::string>& cols) {
  out += "|";
  for (const auto& c : cols) out += " " + c + " |";
  out += "\n|";
  for (std::size_t i = 0; i < cols.size(); ++i) out += "---|";
  out += "\n";
}

void row(std::string& out, const std::vector<std::string>& cells) {
  out += "|";
  for (const auto& c : cells) out += " " + c + " |";
  out += "\n";
}

}  // namespace

std::string render_markdown(const EvalReport& r) {
  std::string out;
  out += "# sfrv-eval report — suite `" + r.suite + "`\n\n";
  out += "Schema `" + std::string(kReportSchema) + "`, engine `" + r.engine +
         "`, backend `" + r.backend + "`, opt `" + r.opt + "`. " +
         std::to_string(r.benchmarks.size()) + " benchmarks × " +
         std::to_string(r.type_configs.size()) + " type configs × " +
         std::to_string(r.modes.size()) + " codegen modes" +
         (r.vls.size() > 1
              ? " × " + std::to_string(r.vls.size()) + " VL points"
              : "") +
         " = " + std::to_string(r.cells.size()) +
         " cells. Memory: load latency " +
         std::to_string(r.mem_load_latency) + " cycle(s), store latency " +
         std::to_string(r.mem_store_latency) + " cycle(s).\n\n";

  // ---- Raw cycles ----------------------------------------------------------
  out += "## Cycles per cell\n\n";
  {
    std::vector<std::string> cols = {"benchmark", "type config"};
    cols.insert(cols.end(), r.modes.begin(), r.modes.end());
    table_header(out, cols);
    for (const auto& b : r.benchmarks) {
      for (const auto& tc : r.type_configs) {
        std::vector<std::string> cells = {b, tc};
        for (const auto& m : r.modes) {
          const CellResult* c =
              r.find_cell(b, tc, mode_from_name(m), first_vl(r));
          cells.push_back(c ? std::to_string(c->cycles) : "—");
        }
        row(out, cells);
      }
    }
    out += "\n";
  }

  // ---- VL sweep ------------------------------------------------------------
  if (r.vls.size() > 1) {
    out +=
        "## VL sweep: cycles per `setvl` cap\n\n"
        "Each column is one point of the dynamic-VL axis (`vl_cap`; 0 = "
        "legacy fixed-lane lowering, otherwise strip-mined `setvl` loops "
        "capped at that granted VL). Results at a given point are "
        "bit-identical across engines, backends, and thread counts; across "
        "points cycles legitimately differ.\n\n";
    std::vector<std::string> cols = {"benchmark", "type config", "mode"};
    for (const int vl : r.vls) {
      cols.push_back(vl == 0 ? "legacy" : "vl=" + std::to_string(vl));
    }
    table_header(out, cols);
    for (const auto& b : r.benchmarks) {
      for (const auto& tc : r.type_configs) {
        for (const auto& m : r.modes) {
          std::vector<std::string> cells = {b, tc, m};
          bool any = false;
          for (const int vl : r.vls) {
            const CellResult* c = r.find_cell(b, tc, mode_from_name(m), vl);
            if (c != nullptr) any = true;
            cells.push_back(c ? std::to_string(c->cycles) : "—");
          }
          if (any) row(out, cells);
        }
      }
    }
    out += "\n";
  }

  // ---- Speedup matrix ------------------------------------------------------
  out +=
      "## Speedup of manual vectorization over scalar float "
      "(Table III / Fig. 1 shape)\n\n"
      "Baseline: the `float` configuration under the scalar code "
      "generator.\n\n";
  {
    std::vector<std::string> cols = {"benchmark"};
    cols.insert(cols.end(), r.type_configs.begin(), r.type_configs.end());
    table_header(out, cols);
    for (const auto& b : r.benchmarks) {
      const CellResult* base = scalar_float_cell(r, b);
      std::vector<std::string> cells = {b};
      for (const auto& tc : r.type_configs) {
        const CellResult* c =
            r.find_cell(b, tc, ir::CodegenMode::ManualVec, first_vl(r));
        cells.push_back(base && c ? fmt_ratio(static_cast<double>(base->cycles),
                                              static_cast<double>(c->cycles))
                                  : "—");
      }
      row(out, cells);
    }
    out += "\n";
  }

  // ---- QoR -----------------------------------------------------------------
  out +=
      "## Quality of results: SQNR in dB (Table III)\n\n"
      "Program outputs of the manually vectorized kernels against the "
      "double-precision golden references. Paper shape: float16 > "
      "float16alt ≫ float8 on every benchmark.\n\n";
  {
    std::vector<std::string> cols = {"type config"};
    cols.insert(cols.end(), r.benchmarks.begin(), r.benchmarks.end());
    table_header(out, cols);
    for (const auto& tc : r.type_configs) {
      if (tc == "float") continue;  // the baseline defines the reference
      std::vector<std::string> cells = {tc};
      for (const auto& b : r.benchmarks) {
        const CellResult* c =
            r.find_cell(b, tc, ir::CodegenMode::ManualVec, first_vl(r));
        cells.push_back(c ? fmt(c->sqnr_db, 1) : "—");
      }
      row(out, cells);
    }
    out += "\n";
  }

  // ---- Fig. 5: auto- vs. manual vectorization ------------------------------
  out +=
      "## Auto- vs. manual vectorization (Fig. 5)\n\n"
      "Cycle overhead of the modeled auto-vectorizer (indexed addressing, "
      "prologue/epilogue guards, unpack-based reductions) over "
      "intrinsics-quality code.\n\n";
  {
    table_header(out, {"benchmark", "type config", "auto-vec cycles",
                       "manual-vec cycles", "auto/manual"});
    for (const auto& b : r.benchmarks) {
      for (const auto& tc : r.type_configs) {
        const CellResult* av =
            r.find_cell(b, tc, ir::CodegenMode::AutoVec, first_vl(r));
        const CellResult* mv =
            r.find_cell(b, tc, ir::CodegenMode::ManualVec, first_vl(r));
        if (av == nullptr || mv == nullptr) continue;
        if (ir::lanes32(av->data) < 2) continue;  // not a SIMD configuration
        row(out, {b, tc, std::to_string(av->cycles),
                  std::to_string(mv->cycles),
                  fmt_ratio(static_cast<double>(av->cycles),
                            static_cast<double>(mv->cycles))});
      }
    }
    out += "\n";
  }

  // ---- ExSdotp: packed widening accumulation -------------------------------
  {
    std::string rows;
    for (const auto& b : r.benchmarks) {
      for (const auto& tc : r.type_configs) {
        const CellResult* mv =
            r.find_cell(b, tc, ir::CodegenMode::ManualVec, first_vl(r));
        const CellResult* ex =
            r.find_cell(b, tc, ir::CodegenMode::ManualVecExs, first_vl(r));
        if (mv == nullptr || ex == nullptr) continue;
        if (mv->cycles == ex->cycles) continue;  // no widening reduction hit
        row(rows,
            {b, tc, std::to_string(mv->cycles), std::to_string(ex->cycles),
             fmt_ratio(static_cast<double>(mv->cycles),
                       static_cast<double>(ex->cycles)),
             fmt(ex->sqnr_db, 1)});
      }
    }
    if (!rows.empty()) {
      out +=
          "## ExSdotp widening accumulation "
          "(manual-vec vs. manual-vec-exsdotp)\n\n"
          "Cells whose widening reductions map onto the ExSdotp unit: the "
          "accumulator stays packed in the one-step-wider format (two "
          "chained wide FMAs per wide lane) and folds once in the "
          "epilogue.\n\n";
      table_header(out, {"benchmark", "type config", "manual-vec cycles",
                         "exsdotp cycles", "manual/exsdotp", "SQNR (dB)"});
      out += rows;
      out += "\n";
    }
  }

  // ---- Energy --------------------------------------------------------------
  out +=
      "## Energy (manual vectorization, relative to scalar float)\n\n"
      "Per-instruction energy model; the float16 row targets the paper's "
      "~30 % saving, float8 ~50 %.\n\n";
  {
    std::vector<std::string> cols = {"benchmark"};
    cols.insert(cols.end(), r.type_configs.begin(), r.type_configs.end());
    table_header(out, cols);
    for (const auto& b : r.benchmarks) {
      const CellResult* base = scalar_float_cell(r, b);
      std::vector<std::string> cells = {b};
      for (const auto& tc : r.type_configs) {
        const CellResult* c =
            r.find_cell(b, tc, ir::CodegenMode::ManualVec, first_vl(r));
        cells.push_back(base && c && base->energy.total() != 0
                            ? fmt(c->energy.total() / base->energy.total(), 2)
                            : "—");
      }
      row(out, cells);
    }
    out += "\n";
  }

  // ---- Fig. 6: mixed-precision case study ----------------------------------
  if (r.has_tuner) {
    const TunerStudy& s = r.tuner;
    out +=
        "## Mixed-precision case study (Fig. 6)\n\n"
        "Exhaustive precision tuning of the `" +
        s.benchmark + "` slots {data, acc} against simulated " + s.objective +
        ", constrained to the float configuration's accuracy (threshold " +
        fmt(100 * s.qor_threshold, 1) + " %).\n\n";
    if (s.found) {
      out += "Tuned assignment: **data = " +
             std::string(ir::type_name(s.best.data)) + ", acc = " +
             std::string(ir::type_name(s.best.acc)) + "** — accuracy " +
             fmt(100 * s.best.qor, 1) + " %, " + fmt(s.best.cost, 0) + " " +
             s.objective + ".\n\n";
    } else {
      out += "No feasible assignment found.\n\n";
    }
    out += "Configurations explored, in evaluation order:\n\n";
    table_header(out, {"data", "acc", "accuracy", s.objective, "feasible"});
    for (const auto& t : s.explored) {
      row(out, {std::string(ir::type_name(t.data)),
                std::string(ir::type_name(t.acc)), fmt(100 * t.qor, 1) + " %",
                fmt(t.cost, 0), t.feasible ? "yes" : "no"});
    }
    out += "\n";

    // Cross-reference against the fixed campaign cells, as in Fig. 6.
    const CellResult* base = scalar_float_cell(r, s.benchmark);
    if (base != nullptr) {
      out += "Campaign cells for `" + s.benchmark +
             "` (manual vectorization; speedup/energy vs. scalar float):\n\n";
      table_header(out,
                   {"type config", "speedup", "energy", "accuracy"});
      for (const auto& tc : r.type_configs) {
        const auto mode = tc == "float" ? ir::CodegenMode::Scalar
                                        : ir::CodegenMode::ManualVec;
        const CellResult* c = r.find_cell(s.benchmark, tc, mode, first_vl(r));
        if (c == nullptr) continue;
        row(out, {tc,
                  fmt_ratio(static_cast<double>(base->cycles),
                            static_cast<double>(c->cycles)),
                  base->energy.total() != 0
                      ? fmt(c->energy.total() / base->energy.total(), 2)
                      : "—",
                  c->accuracy >= 0 ? fmt(100 * c->accuracy, 1) + " %" : "—"});
      }
      out += "\n";
    }
  }

  return out;
}

}  // namespace sfrv::eval
