#include "eval/service.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "eval/report.hpp"

namespace sfrv::eval {

namespace {

/// Frames larger than this are a protocol violation, not a workload: even a
/// full table3 report is a few MB.
constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("eval service: " + what +
                           (errno != 0 ? std::string(": ") + std::strerror(errno)
                                       : std::string()));
}

struct Addr {
  bool is_unix = false;
  std::string path;        // unix
  std::string host;        // tcp, dotted IPv4
  std::uint16_t port = 0;  // tcp
};

/// "PORT" -> 127.0.0.1:PORT; "HOST:PORT" -> tcp; anything with '/' -> unix.
Addr parse_address(const std::string& address) {
  Addr a;
  if (address.find('/') != std::string::npos) {
    a.is_unix = true;
    a.path = address;
    if (a.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      errno = 0;
      fail("unix socket path too long: " + address);
    }
    return a;
  }
  const auto colon = address.rfind(':');
  std::string host = colon == std::string::npos ? std::string("127.0.0.1")
                                                : address.substr(0, colon);
  const std::string port =
      colon == std::string::npos ? address : address.substr(colon + 1);
  if (host == "localhost") host = "127.0.0.1";
  errno = 0;
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  if (port.empty() || *end != '\0' || p < 1 || p > 65535) {
    errno = 0;
    fail("invalid port in address: " + address);
  }
  a.host = host;
  a.port = static_cast<std::uint16_t>(p);
  return a;
}

/// EINTR-safe full write (MSG_NOSIGNAL: a vanished peer is an error return,
/// never a SIGPIPE that would kill the daemon).
bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// EINTR-safe full read; false on clean EOF at a frame boundary or error.
bool read_all(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool send_frame(int fd, const Json& msg) {
  const std::string body = msg.dump();
  const auto n = static_cast<std::uint32_t>(body.size());
  const std::uint8_t hdr[4] = {static_cast<std::uint8_t>(n >> 24),
                               static_cast<std::uint8_t>(n >> 16),
                               static_cast<std::uint8_t>(n >> 8),
                               static_cast<std::uint8_t>(n)};
  return write_all(fd, hdr, sizeof(hdr)) && write_all(fd, body.data(), n);
}

/// nullopt on clean EOF; throws on oversized or malformed frames.
std::optional<Json> recv_frame(int fd) {
  std::uint8_t hdr[4];
  if (!read_all(fd, hdr, sizeof(hdr))) return std::nullopt;
  const std::uint32_t n = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                          (static_cast<std::uint32_t>(hdr[1]) << 16) |
                          (static_cast<std::uint32_t>(hdr[2]) << 8) |
                          static_cast<std::uint32_t>(hdr[3]);
  if (n > kMaxFrameBytes) {
    errno = 0;
    fail("frame exceeds size cap: " + std::to_string(n));
  }
  std::string body(n, '\0');
  if (!read_all(fd, body.data(), n)) {
    errno = 0;
    fail("connection closed mid-frame");
  }
  return Json::parse(body);
}

int dial(const std::string& address) {
  const Addr a = parse_address(address);
  int fd = -1;
  if (a.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, a.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      fail("connect " + a.path);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(a.port);
    if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) != 1) {
      ::close(fd);
      errno = 0;
      fail("cannot parse host (numeric IPv4 or localhost): " + a.host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      fail("connect " + address);
    }
  }
  return fd;
}

int listen_on(const Addr& a) {
  int fd = -1;
  if (a.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    ::unlink(a.path.c_str());  // stale socket from a previous daemon
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, a.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      fail("bind " + a.path);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(a.port);
    if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) != 1) {
      ::close(fd);
      errno = 0;
      fail("cannot parse host (numeric IPv4 or localhost): " + a.host);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      fail("bind port " + std::to_string(a.port));
    }
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    fail("listen");
  }
  return fd;
}

/// Serve one "run" frame: plan + store-partition + execute, streaming cells.
void handle_run(int fd, const Json& msg, CellStore& store, int default_jobs) {
  const CampaignSpec spec = spec_from_json(msg.at("spec"));
  int jobs = default_jobs;
  if (const Json* j = msg.find("jobs")) {
    jobs = static_cast<int>(j->as_int());
  }
  const bool wall_clock =
      msg.find("wall_clock") != nullptr && msg.at("wall_clock").as_bool();

  const auto t0 = std::chrono::steady_clock::now();
  EvalReport report = run_campaign(
      spec, jobs, &store,
      [&](std::size_t index, std::size_t total, const CellResult& cell,
          bool cached) {
        // A dead client mid-stream surfaces at the "done" write; streaming
        // failures here must not abort the campaign (the store still wants
        // the remaining cells).
        (void)send_frame(fd, Json(JsonObject{
                                 {"type", Json("cell")},
                                 {"index", Json(static_cast<std::int64_t>(index))},
                                 {"total", Json(static_cast<std::int64_t>(total))},
                                 {"cached", Json(cached)},
                                 {"cell", cell_to_json(cell)},
                             }));
      });
  if (wall_clock) {
    const auto t1 = std::chrono::steady_clock::now();
    report.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    report.has_cache = true;
  }

  const std::string json = to_json(report).dump(2) + "\n";
  const std::string md = render_markdown(report);
  if (!send_frame(fd, Json(JsonObject{
                      {"type", Json("done")},
                      {"json", Json(json)},
                      {"md", Json(md)},
                      {"hits", Json(report.cache.hits)},
                      {"misses", Json(report.cache.misses)},
                      {"cells",
                       Json(static_cast<std::int64_t>(report.cells.size()))},
                  }))) {
    errno = 0;
    fail("client vanished before the report was delivered");
  }
}

}  // namespace

void serve(const ServeOptions& opts) {
  const Addr addr = parse_address(opts.address);
  const int listen_fd = listen_on(addr);
  CellStore store(opts.cache_dir);
  if (opts.verbose) {
    std::fprintf(stderr, "sfrv-eval: serving on %s (jobs=%d, cache=%s)\n",
                 opts.address.c_str(), opts.jobs,
                 opts.cache_dir.empty() ? "memory" : opts.cache_dir.c_str());
  }

  std::atomic<bool> stop{false};
  std::mutex threads_mu;
  std::vector<std::thread> threads;

  auto handle_client = [&](int fd) {
    for (;;) {
      std::optional<Json> msg;
      try {
        msg = recv_frame(fd);
      } catch (const std::exception& e) {
        if (opts.verbose) {
          std::fprintf(stderr, "sfrv-eval: dropping connection: %s\n",
                       e.what());
        }
        break;
      }
      if (!msg) break;  // clean EOF
      std::string type;
      try {
        type = msg->at("type").as_string();
        if (type == "shutdown") {
          (void)send_frame(fd, Json(JsonObject{{"type", Json("bye")}}));
          stop.store(true);
          // Break the accept loop; in-flight handlers finish their runs.
          ::shutdown(listen_fd, SHUT_RDWR);
          break;
        }
        if (type != "run") {
          errno = 0;
          fail("unknown message type: " + type);
        }
        handle_run(fd, *msg, store, opts.jobs);
      } catch (const std::exception& e) {
        // Campaign/spec errors go back to the requesting client; the daemon
        // and its store outlive any one bad request.
        (void)send_frame(fd, Json(JsonObject{{"type", Json("error")},
                                             {"message", Json(e.what())}}));
        if (type != "run") break;
      }
    }
    ::close(fd);
  };

  while (!stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop.load()) break;
      ::close(listen_fd);
      fail("accept");
    }
    const std::lock_guard<std::mutex> lock(threads_mu);
    threads.emplace_back(handle_client, fd);
  }
  {
    const std::lock_guard<std::mutex> lock(threads_mu);
    for (auto& t : threads) t.join();
  }
  ::close(listen_fd);
  if (addr.is_unix) ::unlink(addr.path.c_str());
  if (opts.verbose) {
    const auto s = store.stats();
    std::fprintf(stderr,
                 "sfrv-eval: shutting down (cells=%zu, hits=%llu, "
                 "misses=%llu)\n",
                 store.size(), static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses));
  }
}

ClientResult run_remote(const std::string& address, const CampaignSpec& spec,
                        int jobs, bool wall_clock,
                        const RemoteProgress& progress) {
  const int fd = dial(address);
  ClientResult result;
  try {
    if (!send_frame(fd, Json(JsonObject{
                        {"type", Json("run")},
                        {"spec", spec_to_json(spec)},
                        {"jobs", Json(jobs)},
                        {"wall_clock", Json(wall_clock)},
                    }))) {
      fail("send request");
    }
    for (;;) {
      std::optional<Json> msg = recv_frame(fd);
      if (!msg) {
        errno = 0;
        fail("server closed the connection before \"done\"");
      }
      const std::string& type = msg->at("type").as_string();
      if (type == "cell") {
        ++result.cells;
        if (progress) {
          progress(static_cast<std::size_t>(msg->at("index").as_int()),
                   static_cast<std::size_t>(msg->at("total").as_int()),
                   msg->at("cached").as_bool());
        }
      } else if (type == "done") {
        result.json = msg->at("json").as_string();
        result.md = msg->at("md").as_string();
        result.hits = msg->at("hits").as_uint();
        result.misses = msg->at("misses").as_uint();
        break;
      } else if (type == "error") {
        errno = 0;
        fail("server error: " + msg->at("message").as_string());
      } else {
        errno = 0;
        fail("unexpected frame type: " + type);
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return result;
}

void shutdown_remote(const std::string& address) {
  const int fd = dial(address);
  if (!send_frame(fd, Json(JsonObject{{"type", Json("shutdown")}}))) {
    ::close(fd);
    fail("send shutdown");
  }
  const auto reply = recv_frame(fd);
  ::close(fd);
  if (!reply || reply->at("type").as_string() != "bye") {
    errno = 0;
    fail("daemon did not acknowledge shutdown");
  }
}

}  // namespace sfrv::eval
