// The evaluation report: one record per (benchmark, TypeConfig, CodegenMode)
// cell of a campaign, plus the tuner-driven mixed-precision case study.
//
// The JSON form is schema-versioned (`kReportSchema`) and fully
// deterministic: cells are stored in matrix-expansion order, per-class
// instruction counts in opcode-class enum order, and doubles serialize with
// shortest-round-trip formatting. Two runs of the same campaign — at any
// thread count — produce byte-identical documents, which is what makes
// `BENCH_eval.json` usable for trend tracking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/model.hpp"
#include "eval/json.hpp"
#include "ir/lower.hpp"
#include "ir/type.hpp"

namespace sfrv::eval {

/// Bump on any structural change to the JSON layout.
/// v2: records the simulator engine the campaign executed through.
/// v3: records the softfloat math backend (`backend`: "grs" | "fast") the
///     campaign's FP entry points were bound from.
/// v4: records the post-lowering optimization level (`opt`: "O0"|"O1"|"O2")
///     every cell was lowered under. Unlike engine/backend, cycle and
///     instruction metrics legitimately depend on it; QoR metrics (sqnr_db,
///     accuracy) must not (outputs are bit-identical across levels).
/// v5: adds "jit" to the recorded engines and an *optional* `wall_ms` field
///     (campaign wall-clock milliseconds, host-dependent). `wall_ms` is
///     serialized only when explicitly measured (`--wall-clock`), so default
///     reports stay byte-deterministic across runs and thread counts.
/// v6: posit and ExSdotp axes. Scalar types gain "posit8"/"posit16" (the
///     default campaign appends both uniform TypeConfigs after "mixed"),
///     modes gain "manual-vec-exsdotp" (ManualVec with packed one-step-wider
///     ExSdotp accumulation), and the tuner domain widens to the six-type
///     grid — slot pairs the promotion lattice cannot order (the two 16-bit
///     IEEE formats against each other, posit/IEEE mixes outside float) are
///     recorded as skipped trials with qor = -1 / cost = 0 instead of being
///     simulated.
/// v7: dynamic vector length. The campaign matrix gains a VL axis (`vls`,
///     innermost after mode; the default {0} keeps the legacy fixed-lane
///     lowering) and every cell records its `vl` (the strip-mining `setvl`
///     cap, 0 = legacy). The suite gains the NN tier (conv2d,
///     fully_connected, nn_train). Results must be bit-identical across
///     engines, backends, and thread counts at every VL point; across
///     *different* VL points cycles and outputs legitimately differ (the
///     element-to-lane mapping changes with the granted VL).
/// v8: eval-as-a-service. Adds an *optional* `cache` telemetry block
///     ({hits, misses, cold_ms, warm_ms}) recording content-addressed cell
///     store reuse and warm-vs-cold campaign wall time. Like `wall_ms` it is
///     serialized only when wall-clock measurement was requested, so default
///     reports stay byte-deterministic — and byte-identity across cold,
///     warm, local, and `--connect` runs of the same spec is exactly the
///     cache-correctness contract (CI-enforced). The schema version is part
///     of every cell-store key, so a schema bump invalidates all cached
///     cells.
inline constexpr std::string_view kReportSchema = "sfrv-eval-report/v8";

/// One matrix cell: a benchmark executed at a type configuration under one
/// code generator, with its performance, breakdown, energy, and QoR.
struct CellResult {
  std::string benchmark;
  std::string type_config;  ///< display name, e.g. "float16" or "mixed"
  ir::ScalarType data = ir::ScalarType::F32;
  ir::ScalarType acc = ir::ScalarType::F32;
  ir::CodegenMode mode = ir::CodegenMode::Scalar;
  /// Dynamic-VL cap the cell was lowered under (OptConfig::vl_cap);
  /// 0 = legacy fixed-lane lowering.
  int vl = 0;

  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  /// Nonzero per-class instruction counts, in Cls enum order.
  std::vector<std::pair<std::string, std::uint64_t>> class_counts;

  energy::EnergyBreakdown energy{};

  double sqnr_db = 0;    ///< vs. the double-precision golden outputs
  double accuracy = -1;  ///< classification accuracy; negative when N/A
};

/// One configuration the precision tuner evaluated.
struct TunerTrial {
  ir::ScalarType data = ir::ScalarType::F32;
  ir::ScalarType acc = ir::ScalarType::F32;
  double qor = 0;   ///< classification accuracy
  double cost = 0;  ///< simulated cycles
  bool feasible = false;
};

/// The Fig. 6 case study: greedy precision tuning of the SVM against
/// simulated cycles under a strict accuracy constraint.
struct TunerStudy {
  std::string benchmark;
  std::string objective;  ///< what `cost` measures ("cycles")
  double qor_threshold = 0;
  bool found = false;
  TunerTrial best{};
  std::vector<TunerTrial> explored;  ///< in evaluation order
};

/// Cell-store reuse telemetry for one campaign run. `hits`/`misses` count
/// store lookups (matrix cells and tuner trials); the wall times compare a
/// cold (store-populating) pass against a warm (fully cached) rerun when
/// both were measured. Host-dependent and run-order-dependent, so the block
/// is serialized only when wall-clock measurement was requested.
struct CacheTelemetry {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double cold_ms = -1;  ///< cold-pass campaign wall time; -1 = not measured
  double warm_ms = -1;  ///< warm-rerun campaign wall time; -1 = not measured
};

struct EvalReport {
  std::string suite;   ///< campaign name ("table3", "smoke")
  /// Simulator engine the cells executed through ("predecoded", "fused",
  /// "reference", "jit"). Recorded for provenance; every metric in the
  /// report must
  /// be engine-independent (the conformance suites enforce it), so two
  /// reports that differ only here are the same measurement.
  std::string engine = "predecoded";
  /// Softfloat math backend ("grs", "fast"). Same provenance-only contract
  /// as `engine`: the backends are bit- and fflags-identical.
  std::string backend = "grs";
  /// Post-lowering optimization level ("O0", "O1", "O2") the cells were
  /// lowered under. Cycle/instruction/energy metrics depend on it (that is
  /// the optimizer's point); QoR metrics must not — the differential suite
  /// and CI's normalized report diff enforce output bit-identity.
  std::string opt = "O0";
  int mem_load_latency = 1;
  int mem_store_latency = 1;
  /// Campaign wall-clock milliseconds. Host-dependent, so it is only
  /// serialized when >= 0 (sfrv-eval --wall-clock); the default -1 keeps
  /// reports byte-identical across machines, runs, and thread counts.
  double wall_ms = -1;
  /// Cell-store telemetry. Populated in memory whenever a store was used;
  /// serialized only when `has_cache` (same opt-in as `wall_ms`).
  bool has_cache = false;
  CacheTelemetry cache{};
  std::vector<std::string> benchmarks;    ///< suite order
  std::vector<std::string> type_configs;  ///< campaign order
  std::vector<std::string> modes;         ///< campaign order
  std::vector<int> vls = {0};             ///< VL-sweep axis (0 = legacy)
  /// benchmark-major, then type config, then mode (matrix-expansion order).
  std::vector<CellResult> cells;
  bool has_tuner = false;
  TunerStudy tuner{};

  /// Cell lookup by coordinates; nullptr when the cell is not present.
  /// `vl` selects a point of the VL-sweep axis (0 = legacy lowering).
  [[nodiscard]] const CellResult* find_cell(std::string_view benchmark,
                                            std::string_view type_config,
                                            ir::CodegenMode mode,
                                            int vl = 0) const;
};

[[nodiscard]] Json to_json(const EvalReport& report);
[[nodiscard]] EvalReport report_from_json(const Json& doc);

/// Single-cell codec, exposed for the cell store's on-disk entries and the
/// service wire protocol. Round-trips exactly: dumping a parsed cell
/// reproduces the original bytes (doubles use shortest-round-trip form),
/// which is what lets a cached cell serialize bit-for-bit like a recomputed
/// one.
[[nodiscard]] Json cell_to_json(const CellResult& c);
[[nodiscard]] CellResult cell_from_json(const Json& j);

/// Human-readable report mirroring the paper's Table III, Fig. 5 and Fig. 6.
[[nodiscard]] std::string render_markdown(const EvalReport& report);

/// Name <-> enum helpers shared by the JSON codec and the CLI.
[[nodiscard]] ir::ScalarType scalar_type_from_name(std::string_view name);
[[nodiscard]] ir::CodegenMode mode_from_name(std::string_view name);

}  // namespace sfrv::eval
