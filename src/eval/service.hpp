// Eval-as-a-service wire layer: a `--serve` daemon and thin clients.
//
// Transport: TCP (address "PORT" = 127.0.0.1:PORT, or "HOST:PORT" with a
// numeric IPv4 host / "localhost") or a Unix-domain socket (any address
// containing '/'). Framing: every message is one JSON document prefixed by
// its byte length as a 4-byte big-endian unsigned integer.
//
// Protocol (client-driven; one connection may issue any number of runs):
//
//   client -> server  {"type":"run", "spec": <spec_to_json>, "jobs": N,
//                      "wall_clock": bool}
//   server -> client  {"type":"cell", "index": i, "total": n,
//                      "cached": bool, "cell": <cell_to_json>}   (streamed)
//   server -> client  {"type":"done", "json": "<report JSON text>",
//                      "md": "<report Markdown text>",
//                      "hits": h, "misses": m, "cells": n}
//   server -> client  {"type":"error", "message": "..."}         (run failed)
//   client -> server  {"type":"shutdown"}
//   server -> client  {"type":"bye"}                   (then the daemon exits)
//
// Byte-identity contract: the "done" frame carries the report exactly as the
// server serialized it, so a `--connect` client writes the same bytes a
// local run would — whether the cells came from the shared store or were
// computed on demand is invisible in the output (that is the cache contract,
// and CI diffs local vs. remote vs. warm runs to enforce it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "eval/campaign.hpp"

namespace sfrv::eval {

struct ServeOptions {
  std::string address;    ///< "PORT", "HOST:PORT", or a Unix socket path
  int jobs = 1;           ///< executor shards per campaign run
  std::string cache_dir;  ///< persistent cell store directory; empty = memory
  /// Status lines (listen address, connections, runs) to stderr.
  bool verbose = true;
};

/// Run the daemon: listen on `opts.address`, serve concurrent clients
/// (thread per connection) against one shared CellStore, and return once a
/// client sends a "shutdown" frame. Throws std::runtime_error on socket
/// setup failure.
void serve(const ServeOptions& opts);

/// What a remote campaign run hands back: the server-serialized report in
/// both formats plus the run's cell-store telemetry.
struct ClientResult {
  std::string json;          ///< report JSON text, exactly as served
  std::string md;            ///< report Markdown text, exactly as served
  std::uint64_t hits = 0;    ///< store lookups served for this run
  std::uint64_t misses = 0;  ///< cells this run had to compute
  std::size_t cells = 0;     ///< matrix size (streamed "cell" frame count)
};

/// Per-cell progress stream mirroring the "cell" frames:
/// (index, total, cached).
using RemoteProgress = std::function<void(std::size_t, std::size_t, bool)>;

/// Submit one campaign to a daemon and collect the streamed result.
/// `wall_clock` asks the server to embed its wall time + cache telemetry in
/// the report (off keeps the bytes deterministic). Throws std::runtime_error
/// on connection failure, protocol violation, or a server-side "error".
[[nodiscard]] ClientResult run_remote(const std::string& address,
                                      const CampaignSpec& spec, int jobs = 1,
                                      bool wall_clock = false,
                                      const RemoteProgress& progress = nullptr);

/// Ask the daemon to exit (waits for the "bye" acknowledgement).
void shutdown_remote(const std::string& address);

}  // namespace sfrv::eval
