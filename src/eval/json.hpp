// Minimal JSON document model for the evaluation reports.
//
// Deliberately small: objects preserve insertion order (so serialization is
// deterministic and diffs stay stable across runs), numbers are either
// int64 or shortest-round-trip doubles, and the parser accepts exactly what
// the writer emits plus standard JSON. Non-finite doubles are rejected at
// serialization time — every report metric is finite by construction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace sfrv::eval {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered key/value list (no key dedup; writers keep keys unique).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::int64_t>(u)) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {
    if (u > static_cast<std::uint64_t>(INT64_MAX)) {
      throw std::range_error("Json: uint64 value exceeds int64 range");
    }
  }
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_int() const { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_number() const { return is_int() || holds<double>(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<JsonArray>(); }
  [[nodiscard]] bool is_object() const { return holds<JsonObject>(); }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] std::int64_t as_int() const {
    return get<std::int64_t>("int");
  }
  [[nodiscard]] std::uint64_t as_uint() const {
    const auto i = as_int();
    if (i < 0) throw std::runtime_error("Json: negative value read as uint");
    return static_cast<std::uint64_t>(i);
  }
  /// Numeric value as double (accepts both int and double nodes).
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    return get<double>("number");
  }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const JsonArray& array() const {
    return get<JsonArray>("array");
  }
  [[nodiscard]] const JsonObject& object() const {
    return get<JsonObject>("object");
  }

  /// First value under `key`, or nullptr when absent (object nodes only).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// First value under `key`; throws when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Serialize. `indent < 0` emits the compact single-line form; otherwise
  /// pretty-print with `indent` spaces per nesting level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws std::runtime_error with an
  /// offset-tagged message on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(v_);
  }
  template <typename T>
  [[nodiscard]] const T& get(const char* what) const {
    if (!holds<T>()) {
      throw std::runtime_error(std::string("Json: node is not a ") + what);
    }
    return std::get<T>(v_);
  }

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      v_;
};

}  // namespace sfrv::eval
