#include "eval/campaign.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "eval/executor.hpp"
#include "kernels/qor.hpp"
#include "kernels/runner.hpp"
#include "kernels/svm.hpp"
#include "tuner/tuner.hpp"

namespace sfrv::eval {

namespace {

using kernels::KernelSpec;
using kernels::RunResult;
using kernels::TypeConfig;

/// Accuracy hook for an SVM benchmark instance.
std::function<double(const KernelSpec&, const RunResult&)> svm_accuracy_hook(
    const kernels::SvmModel& model, const kernels::SvmDataset& test) {
  return [samples = test.samples, classes = model.classes,
          labels = test.labels](const KernelSpec&, const RunResult& r) {
    const auto rows =
        kernels::reshape_scores(r.outputs.at("scores"), samples, classes);
    return kernels::classification_accuracy(rows, labels);
  };
}

/// Reduced-size SVM for the smoke suite: same inference code path as the
/// paper fixture, but a small synthetic problem (6 gestures, 32 features)
/// that trains and runs in milliseconds.
struct SmokeSvm {
  kernels::SvmModel model;
  kernels::SvmDataset test;
};

const SmokeSvm& smoke_svm() {
  static const SmokeSvm fixture = [] {
    SmokeSvm s;
    auto data = kernels::make_gesture_data(6, 32, 12, 5, 1.2, 7);
    s.model = kernels::train_svm(data.train, 6);
    s.test = std::move(data.test);
    return s;
  }();
  return fixture;
}

std::vector<EvalBenchmark> make_full_suite() {
  std::vector<EvalBenchmark> out;
  for (const auto& b : kernels::benchmark_suite()) {
    EvalBenchmark eb{b, nullptr};
    if (b.name == "svm") {
      const auto& f = kernels::svm_fixture();
      eb.accuracy = svm_accuracy_hook(f.model, f.test);
    }
    out.push_back(std::move(eb));
  }
  return out;
}

std::vector<EvalBenchmark> make_smoke_suite() {
  using kernels::Benchmark;
  std::vector<EvalBenchmark> out;
  out.push_back({Benchmark{"svm",
                           [](TypeConfig tc) {
                             const auto& f = smoke_svm();
                             return kernels::make_svm(tc, f.model, f.test);
                           }},
                 svm_accuracy_hook(smoke_svm().model, smoke_svm().test)});
  out.push_back({Benchmark{"gemm",
                           [](TypeConfig tc) {
                             return kernels::make_gemm(tc, 8, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"atax",
                           [](TypeConfig tc) {
                             return kernels::make_atax(tc, 8, 10);
                           }},
                 nullptr});
  out.push_back({Benchmark{"syrk",
                           [](TypeConfig tc) {
                             return kernels::make_syrk(tc, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"syr2k",
                           [](TypeConfig tc) {
                             return kernels::make_syr2k(tc, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"fdtd2d",
                           [](TypeConfig tc) {
                             return kernels::make_fdtd2d(tc, 2, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"conv2d",
                           [](TypeConfig tc) {
                             return kernels::make_conv2d(tc, 6, 6, 3);
                           }},
                 nullptr});
  out.push_back({Benchmark{"fully_connected",
                           [](TypeConfig tc) {
                             return kernels::make_fully_connected(tc, 6, 10);
                           }},
                 nullptr});
  out.push_back({Benchmark{"nn_train",
                           [](TypeConfig tc) {
                             return kernels::make_nn_train(tc, 5, 6);
                           }},
                 nullptr});
  return out;
}

std::vector<double> golden_concat(const KernelSpec& spec) {
  std::vector<double> all;
  for (const auto& g : spec.golden) all.insert(all.end(), g.begin(), g.end());
  return all;
}

}  // namespace

const std::vector<EvalBenchmark>& eval_suite(SuiteScale scale) {
  // Per-branch statics: smoke-only runs (CI, unit tests) must not pay for
  // training the full-size SVM fixture.
  if (scale == SuiteScale::Full) {
    static const std::vector<EvalBenchmark> full = make_full_suite();
    return full;
  }
  static const std::vector<EvalBenchmark> smoke = make_smoke_suite();
  return smoke;
}

std::vector<TypeConfigSpec> default_type_configs() {
  using ir::ScalarType;
  // Appended after the paper's five so pre-posit report rows keep their
  // matrix-expansion positions.
  return {
      {"float", TypeConfig::uniform(ScalarType::F32)},
      {"float16", TypeConfig::uniform(ScalarType::F16)},
      {"float16alt", TypeConfig::uniform(ScalarType::F16Alt)},
      {"float8", TypeConfig::uniform(ScalarType::F8)},
      {"mixed", {ScalarType::F16, ScalarType::F32}},
      {"posit8", TypeConfig::uniform(ScalarType::P8)},
      {"posit16", TypeConfig::uniform(ScalarType::P16)},
  };
}

CampaignSpec CampaignSpec::table3() {
  CampaignSpec spec;
  spec.name = "table3";
  spec.scale = SuiteScale::Full;
  return spec;
}

CampaignSpec CampaignSpec::smoke() {
  CampaignSpec spec;
  spec.name = "smoke";
  spec.scale = SuiteScale::Smoke;
  return spec;
}

CampaignSpec CampaignSpec::nn(SuiteScale scale) {
  using ir::ScalarType;
  CampaignSpec spec;
  spec.name = "nn";
  spec.scale = scale;
  spec.benchmarks = {"conv2d", "fully_connected", "nn_train"};
  // Uniform float16 is the baseline; "minifloat-nn" is the paper's training
  // shape (f8 weights/activations, f16 packed ExSdotp accumulator). Both run
  // under the ExSdotp generator — uniform f16 has no wider packed format at
  // FLEN=32 and falls back to same-type MACs, which is the fair baseline.
  spec.type_configs = {
      {"float16", TypeConfig::uniform(ScalarType::F16)},
      {"minifloat-nn", {ScalarType::F8, ScalarType::F16}},
  };
  spec.modes = {ir::CodegenMode::ManualVecExs};
  spec.vls = {0, 1, 2, 4};
  spec.tuner_study = false;
  return spec;
}

bool CampaignSpec::runs_tuner() const {
  return tuner_study &&
         (benchmarks.empty() ||
          std::find(benchmarks.begin(), benchmarks.end(), "svm") !=
              benchmarks.end());
}

std::vector<CellSpec> expand_matrix(const CampaignSpec& spec) {
  const auto& suite = eval_suite(spec.scale);
  std::vector<const EvalBenchmark*> selected;
  if (spec.benchmarks.empty()) {
    for (const auto& b : suite) selected.push_back(&b);
  } else {
    for (const auto& name : spec.benchmarks) {
      const auto it = std::find_if(
          suite.begin(), suite.end(),
          [&](const EvalBenchmark& b) { return b.bench.name == name; });
      if (it == suite.end()) {
        throw std::runtime_error("unknown benchmark: " + name);
      }
      selected.push_back(&*it);
    }
  }
  std::vector<CellSpec> cells;
  cells.reserve(selected.size() * spec.type_configs.size() *
                spec.modes.size() * spec.vls.size());
  for (const EvalBenchmark* b : selected) {
    for (const auto& tc : spec.type_configs) {
      for (const auto mode : spec.modes) {
        for (const int vl : spec.vls) {
          cells.push_back({b, tc, mode, vl});
        }
      }
    }
  }
  return cells;
}

// ---- planner ----------------------------------------------------------------

namespace {

/// Immutable planned kernel instance shared through the process-wide plan
/// cache: the built KernelSpec, one lowering of it, and the content digest.
struct PlannedKernel {
  std::shared_ptr<const KernelSpec> spec;
  std::shared_ptr<const ir::LoweredKernel> lowered;
  std::uint64_t digest = 0;
};

/// Process-wide plan cache. Sound because it only caches benchmarks of the
/// two static eval_suite() vectors, whose make() functions are deterministic
/// and fixture-backed — so (scale, benchmark name, TypeConfig, mode, opt)
/// fully determines the kernel and its lowering. This is what makes a warm
/// daemon request planning-free: repeated specs re-use both the kernel
/// build (golden reference included) and the lowering.
class PlanCache {
 public:
  PlannedKernel get(SuiteScale scale, const EvalBenchmark& bench,
                    const kernels::TypeConfig& tc, ir::CodegenMode mode,
                    const ir::OptConfig& opt) {
    const Key key{scale == SuiteScale::Full,
                  bench.bench.name,
                  static_cast<int>(tc.data),
                  static_cast<int>(tc.acc),
                  static_cast<int>(mode),
                  opt.unroll_factor,
                  opt.ptr_strength_reduction,
                  opt.dead_glue_elim,
                  opt.vl_cap};
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) return it->second;
    }
    // Build outside the lock: planning two different cells concurrently must
    // not serialize, and a duplicate build is idempotent (first insert wins).
    PlannedKernel p;
    auto spec_ptr = spec_for(scale, bench, tc);
    p.spec = spec_ptr;
    p.lowered = std::make_shared<const ir::LoweredKernel>(
        ir::lower(spec_ptr->kernel, mode, spec_ptr->init, opt));
    p.digest = kernels::lowered_digest(*p.spec, *p.lowered);
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.emplace(key, std::move(p)).first->second;
  }

 private:
  using Key = std::tuple<bool, std::string, int, int, int, int, bool, bool, int>;

  /// Kernel builds are shared across modes/VL points of the same
  /// (benchmark, TypeConfig) — the spec (inputs, golden) is mode-independent.
  std::shared_ptr<const KernelSpec> spec_for(SuiteScale scale,
                                             const EvalBenchmark& bench,
                                             const kernels::TypeConfig& tc) {
    const SpecKey key{scale == SuiteScale::Full, bench.bench.name,
                      static_cast<int>(tc.data), static_cast<int>(tc.acc)};
    {
      const std::lock_guard<std::mutex> lock(spec_mu_);
      const auto it = specs_.find(key);
      if (it != specs_.end()) return it->second;
    }
    auto built = std::make_shared<const KernelSpec>(bench.bench.make(tc));
    const std::lock_guard<std::mutex> lock(spec_mu_);
    return specs_.emplace(key, std::move(built)).first->second;
  }

  using SpecKey = std::tuple<bool, std::string, int, int>;
  std::mutex mu_;
  std::map<Key, PlannedKernel> map_;
  std::mutex spec_mu_;
  std::map<SpecKey, std::shared_ptr<const KernelSpec>> specs_;
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

/// Assemble one PlannedCell: memoized build+lower, then the content address.
PlannedCell plan_one(SuiteScale scale, const CellSpec& cell,
                     const sim::MemConfig& mem, sim::Engine engine,
                     fp::MathBackend backend, const ir::OptConfig& opt) {
  // The cell's VL-sweep point overrides the campaign-level vl_cap: each
  // point is a distinct lowering of the same kernel.
  ir::OptConfig cell_opt = opt;
  cell_opt.vl_cap = cell.vl;
  const PlannedKernel pk = plan_cache().get(scale, *cell.benchmark,
                                            cell.type_config.tc, cell.mode,
                                            cell_opt);
  PlannedCell p;
  p.cell = cell;
  p.spec = pk.spec;
  p.lowered = pk.lowered;
  p.opt = cell_opt;
  p.key.kernel_digest = pk.digest;
  p.key.data = cell.type_config.tc.data;
  p.key.acc = cell.type_config.tc.acc;
  p.key.mode = cell.mode;
  p.key.vl = cell.vl;
  p.key.engine = engine;
  p.key.backend = backend;
  p.key.opt = cell_opt;
  p.key.mem_load_latency = mem.load_latency;
  p.key.mem_store_latency = mem.store_latency;
  p.key.mem_level = static_cast<int>(mem.level);
  p.key.mem_size = mem.size;
  return p;
}

/// Presentation fields are spec-derived, not measurement-derived: they are
/// (re)stamped on every serve, which is what lets differently-labelled specs
/// (the tuner grid vs. the campaign's "mixed" column) share content cells.
void stamp_presentation(CellResult& c, const CellSpec& cell) {
  c.benchmark = cell.benchmark->bench.name;
  c.type_config = cell.type_config.name;
  c.data = cell.type_config.tc.data;
  c.acc = cell.type_config.tc.acc;
  c.mode = cell.mode;
  c.vl = cell.vl;
}

/// The execute layer: simulate a planned cell and measure everything the
/// report wants. This is exactly the work a store hit skips.
CellResult run_planned_cell(const PlannedCell& p, const sim::MemConfig& mem,
                            sim::Engine engine, fp::MathBackend backend) {
  const KernelSpec& spec = *p.spec;
  const RunResult r = kernels::run_lowered(spec, *p.lowered, mem,
                                           isa::IsaConfig::full(), engine,
                                           backend);

  CellResult c;
  stamp_presentation(c, p.cell);
  c.cycles = r.stats.cycles;
  c.instructions = r.stats.instructions;
  c.loads = r.stats.load_count;
  c.stores = r.stats.store_count;

  std::array<std::uint64_t, 64> by_cls{};
  for (std::size_t i = 0; i < isa::kNumOps; ++i) {
    by_cls[static_cast<std::size_t>(isa::op_class(static_cast<isa::Op>(i)))] +=
        r.stats.op_count[i];
  }
  for (std::size_t ci = 0; ci < by_cls.size(); ++ci) {
    if (by_cls[ci] == 0) continue;
    c.class_counts.emplace_back(
        std::string(isa::cls_name(static_cast<isa::Cls>(ci))), by_cls[ci]);
  }

  c.energy = energy::EnergyModel{}.breakdown(r.stats, mem);
  c.sqnr_db = kernels::sqnr_db(golden_concat(spec),
                               r.concat_outputs(spec.output_arrays));
  if (p.cell.benchmark->accuracy) {
    c.accuracy = p.cell.benchmark->accuracy(spec, r);
  }
  return c;
}

}  // namespace

std::vector<PlannedCell> plan_campaign(const CampaignSpec& spec) {
  const auto cells = expand_matrix(spec);
  std::vector<PlannedCell> planned;
  planned.reserve(cells.size());
  for (const auto& cell : cells) {
    planned.push_back(plan_one(spec.scale, cell, spec.mem, spec.engine,
                               spec.backend, spec.opt));
  }
  return planned;
}

CellResult run_cell(const CellSpec& cell, const sim::MemConfig& mem,
                    sim::Engine engine, fp::MathBackend backend,
                    const ir::OptConfig& opt) {
  // Ad-hoc entry point (unit tests, one-off cells): builds and lowers
  // directly, bypassing the plan cache — its memo key assumes suite-resident
  // benchmarks, which this caller does not guarantee.
  ir::OptConfig cell_opt = opt;
  cell_opt.vl_cap = cell.vl;
  PlannedCell p;
  p.cell = cell;
  p.spec = std::make_shared<const KernelSpec>(
      cell.benchmark->bench.make(cell.type_config.tc));
  p.lowered = std::make_shared<const ir::LoweredKernel>(
      ir::lower(p.spec->kernel, cell.mode, p.spec->init, cell_opt));
  p.opt = cell_opt;
  return run_planned_cell(p, mem, engine, backend);
}

EvalReport run_campaign(const CampaignSpec& spec, int jobs, CellStore* store,
                        const CellCallback& on_cell) {
  const auto planned = plan_campaign(spec);
  const std::size_t total = planned.size();

  std::vector<CellResult> results(total);
  CacheTelemetry tally;
  std::mutex cb_mu;
  auto emit = [&](std::size_t i, const CellResult& c, bool cached) {
    if (!on_cell) return;
    // Serialized: workers land cells concurrently, but clients see a clean
    // stream (the service tier writes each one straight to a socket).
    const std::lock_guard<std::mutex> lock(cb_mu);
    on_cell(i, total, c, cached);
  };

  // Store layer: partition into hits and misses up front (lookups are O(1)
  // and serial), so hits stream before any simulation starts and only the
  // misses ever reach the executor.
  std::vector<std::size_t> misses;
  if (store != nullptr) {
    for (std::size_t i = 0; i < total; ++i) {
      if (auto hit = store->lookup(planned[i].key)) {
        stamp_presentation(*hit, planned[i].cell);
        results[i] = std::move(*hit);
        ++tally.hits;
        emit(i, results[i], true);
      } else {
        misses.push_back(i);
      }
    }
    tally.misses = misses.size();
  } else {
    misses.resize(total);
    for (std::size_t i = 0; i < total; ++i) misses[i] = i;
  }

  // Executor layer: cache-miss cells on the work-stealing shards.
  run_sharded(misses.size(), std::max(1, jobs), [&](std::size_t mi) {
    const std::size_t i = misses[mi];
    CellResult c = run_planned_cell(planned[i], spec.mem, spec.engine,
                                    spec.backend);
    if (store != nullptr) store->insert(planned[i].key, c);
    emit(i, c, false);
    results[i] = std::move(c);
  });

  EvalReport report;
  report.suite = spec.name;
  report.engine = std::string(sim::engine_name(spec.engine));
  report.backend = std::string(fp::backend_name(spec.backend));
  report.opt = std::string(ir::opt_name(spec.opt));
  report.mem_load_latency = spec.mem.load_latency;
  report.mem_store_latency = spec.mem.store_latency;
  for (const auto& p : planned) {
    if (report.benchmarks.empty() ||
        report.benchmarks.back() != p.cell.benchmark->bench.name) {
      report.benchmarks.push_back(p.cell.benchmark->bench.name);
    }
  }
  for (const auto& tc : spec.type_configs) {
    report.type_configs.push_back(tc.name);
  }
  for (const auto m : spec.modes) {
    report.modes.emplace_back(ir::mode_name(m));
  }
  report.vls = spec.vls;
  report.cells = std::move(results);
  if (spec.runs_tuner()) {
    report.has_tuner = true;
    report.tuner = run_tuner_study(spec.scale, spec.mem, spec.engine,
                                   spec.backend, spec.opt, store, &tally);
  }
  // Telemetry is always populated in memory; `has_cache` (serialization)
  // stays opt-in so default reports keep their byte-determinism.
  report.cache = tally;
  return report;
}

TunerStudy run_tuner_study(SuiteScale scale, const sim::MemConfig& mem,
                           sim::Engine engine, fp::MathBackend backend,
                           const ir::OptConfig& opt, CellStore* store,
                           CacheTelemetry* tally) {
  const auto& suite = eval_suite(scale);
  const auto it = std::find_if(
      suite.begin(), suite.end(),
      [](const EvalBenchmark& b) { return b.bench.name == "svm"; });
  if (it == suite.end() || !it->accuracy) {
    throw std::runtime_error("tuner study requires the svm benchmark");
  }
  const EvalBenchmark& svm = *it;

  using ir::ScalarType;
  // Narrowest first, posits after their equally-wide IEEE formats.
  const std::vector<ScalarType> domain = {ScalarType::F8,  ScalarType::P8,
                                          ScalarType::F16Alt, ScalarType::F16,
                                          ScalarType::P16, ScalarType::F32};

  // Each configuration is simulated once; the tuner's qor/cost callbacks
  // both read the memoized outcome.
  struct Outcome {
    double qor = 0;
    double cost = 0;
  };
  std::map<std::pair<int, int>, Outcome> memo;
  auto evaluate = [&](const tuner::TypeVector& types) -> Outcome {
    // Slot pairs the promotion lattice cannot order — the two 16-bit IEEE
    // formats against each other, or posit/IEEE mixes outside float — have
    // no defined source-level typing: record them as skipped (qor below any
    // threshold, zero cost) instead of simulating.
    if (!ir::comparable(types[0], types[1])) return {-1.0, 0.0};
    const auto key = std::make_pair(static_cast<int>(types[0]),
                                    static_cast<int>(types[1]));
    const auto found = memo.find(key);
    if (found != memo.end()) return found->second;
    const TypeConfig tc{types[0], types[1]};
    // Vectorize whenever the data type packs (the paper's tuned deployment);
    // float data has no lanes at FLEN=32 and runs the scalar pipeline.
    const auto mode = ir::lanes32(tc.data) >= 2 ? ir::CodegenMode::ManualVec
                                                : ir::CodegenMode::Scalar;
    // Each grid point is a content-addressed cell like any campaign cell:
    // points that coincide with matrix cells (e.g. the "mixed" SVM) are
    // served from the store instead of re-simulated, and what the tuner
    // computes becomes servable to later campaigns.
    CellSpec cell;
    cell.benchmark = &svm;
    cell.type_config = {std::string(ir::type_name(tc.data)) + "/" +
                            std::string(ir::type_name(tc.acc)),
                        tc};
    cell.mode = mode;
    cell.vl = opt.vl_cap;  // plan_one re-applies it; keep key.vl == opt.vl_cap
    const PlannedCell p = plan_one(scale, cell, mem, engine, backend, opt);
    CellResult c;
    if (store != nullptr) {
      if (auto hit = store->lookup(p.key)) {
        c = std::move(*hit);
        if (tally != nullptr) ++tally->hits;
      } else {
        c = run_planned_cell(p, mem, engine, backend);
        store->insert(p.key, c);
        if (tally != nullptr) ++tally->misses;
      }
    } else {
      c = run_planned_cell(p, mem, engine, backend);
    }
    const Outcome out{c.accuracy, static_cast<double>(c.cycles)};
    memo.emplace(key, out);
    return out;
  };

  tuner::Problem problem;
  problem.slot_names = {"data", "acc"};
  problem.slot_domains = {domain, domain};
  problem.qor = [&](const tuner::TypeVector& t) { return evaluate(t).qor; };
  problem.cost = [&](const tuner::TypeVector& t) { return evaluate(t).cost; };
  problem.qor_threshold =
      evaluate({ScalarType::F32, ScalarType::F32}).qor;  // strict: float QoR

  // Exhaustive over the 6x6 grid (lattice-ordered pairs simulated and
  // memoized, unordered pairs recorded as skipped): the case study wants the
  // *cheapest* feasible assignment, and greedy promotion legitimately stops
  // at the first feasible one it reaches — which can be a scalar-fallback
  // combination slower than the float baseline.
  const tuner::Result result = tuner::tune_exhaustive(problem);

  TunerStudy study;
  study.benchmark = "svm";
  study.objective = "cycles";
  study.qor_threshold = problem.qor_threshold;
  study.found = result.found;
  auto to_trial = [](const tuner::Evaluation& e) {
    TunerTrial t;
    t.data = e.types[0];
    t.acc = e.types[1];
    t.qor = e.qor;
    t.cost = e.cost;
    t.feasible = e.feasible;
    return t;
  };
  study.best = to_trial(result.best);
  study.explored.reserve(result.explored.size());
  for (const auto& e : result.explored) study.explored.push_back(to_trial(e));
  return study;
}

Json spec_to_json(const CampaignSpec& spec) {
  JsonArray benchmarks;
  for (const auto& b : spec.benchmarks) benchmarks.emplace_back(b);
  JsonArray tcs;
  for (const auto& tc : spec.type_configs) {
    tcs.emplace_back(JsonObject{
        {"name", Json(tc.name)},
        {"data", Json(ir::type_name(tc.tc.data))},
        {"acc", Json(ir::type_name(tc.tc.acc))},
    });
  }
  JsonArray modes;
  for (const auto m : spec.modes) modes.emplace_back(ir::mode_name(m));
  JsonArray vls;
  for (const int vl : spec.vls) vls.emplace_back(vl);
  return Json(JsonObject{
      {"name", Json(spec.name)},
      {"scale", Json(spec.scale == SuiteScale::Full ? "full" : "smoke")},
      {"benchmarks", Json(std::move(benchmarks))},
      {"type_configs", Json(std::move(tcs))},
      {"modes", Json(std::move(modes))},
      {"mem",
       Json(JsonObject{
           {"size", Json(static_cast<std::int64_t>(spec.mem.size))},
           {"load_latency", Json(spec.mem.load_latency)},
           {"store_latency", Json(spec.mem.store_latency)},
           {"level", Json(static_cast<int>(spec.mem.level))},
       })},
      {"engine", Json(sim::engine_name(spec.engine))},
      {"backend", Json(fp::backend_name(spec.backend))},
      {"opt",
       Json(JsonObject{
           {"unroll_factor", Json(spec.opt.unroll_factor)},
           {"ptr_strength_reduction", Json(spec.opt.ptr_strength_reduction)},
           {"dead_glue_elim", Json(spec.opt.dead_glue_elim)},
           {"vl_cap", Json(spec.opt.vl_cap)},
       })},
      {"vls", Json(std::move(vls))},
      {"tuner_study", Json(spec.tuner_study)},
  });
}

CampaignSpec spec_from_json(const Json& doc) {
  CampaignSpec spec;
  spec.name = doc.at("name").as_string();
  const std::string& scale = doc.at("scale").as_string();
  if (scale == "full") {
    spec.scale = SuiteScale::Full;
  } else if (scale == "smoke") {
    spec.scale = SuiteScale::Smoke;
  } else {
    throw std::runtime_error("campaign spec: unknown scale: " + scale);
  }
  spec.benchmarks.clear();
  for (const auto& b : doc.at("benchmarks").array()) {
    spec.benchmarks.push_back(b.as_string());
  }
  spec.type_configs.clear();
  for (const auto& t : doc.at("type_configs").array()) {
    TypeConfigSpec tc;
    tc.name = t.at("name").as_string();
    tc.tc.data = scalar_type_from_name(t.at("data").as_string());
    tc.tc.acc = scalar_type_from_name(t.at("acc").as_string());
    spec.type_configs.push_back(std::move(tc));
  }
  spec.modes.clear();
  for (const auto& m : doc.at("modes").array()) {
    spec.modes.push_back(mode_from_name(m.as_string()));
  }
  const Json& mem = doc.at("mem");
  spec.mem.size = static_cast<std::uint32_t>(mem.at("size").as_uint());
  spec.mem.load_latency = static_cast<int>(mem.at("load_latency").as_int());
  spec.mem.store_latency = static_cast<int>(mem.at("store_latency").as_int());
  const auto level = mem.at("level").as_int();
  if (level < 0 || level > static_cast<int>(sim::MemLevelId::L3)) {
    throw std::runtime_error("campaign spec: unknown mem level: " +
                             std::to_string(level));
  }
  spec.mem.level = static_cast<sim::MemLevelId>(level);
  spec.engine = sim::engine_from_name(doc.at("engine").as_string());
  spec.backend = fp::backend_from_name(doc.at("backend").as_string());
  const Json& opt = doc.at("opt");
  spec.opt.unroll_factor = static_cast<int>(opt.at("unroll_factor").as_int());
  spec.opt.ptr_strength_reduction = opt.at("ptr_strength_reduction").as_bool();
  spec.opt.dead_glue_elim = opt.at("dead_glue_elim").as_bool();
  spec.opt.vl_cap = static_cast<int>(opt.at("vl_cap").as_int());
  spec.vls.clear();
  for (const auto& vl : doc.at("vls").array()) {
    spec.vls.push_back(static_cast<int>(vl.as_int()));
  }
  spec.tuner_study = doc.at("tuner_study").as_bool();
  return spec;
}

}  // namespace sfrv::eval
