#include "eval/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "kernels/qor.hpp"
#include "kernels/svm.hpp"
#include "tuner/tuner.hpp"

namespace sfrv::eval {

namespace {

using kernels::KernelSpec;
using kernels::RunResult;
using kernels::TypeConfig;

/// Accuracy hook for an SVM benchmark instance.
std::function<double(const KernelSpec&, const RunResult&)> svm_accuracy_hook(
    const kernels::SvmModel& model, const kernels::SvmDataset& test) {
  return [samples = test.samples, classes = model.classes,
          labels = test.labels](const KernelSpec&, const RunResult& r) {
    const auto rows =
        kernels::reshape_scores(r.outputs.at("scores"), samples, classes);
    return kernels::classification_accuracy(rows, labels);
  };
}

/// Reduced-size SVM for the smoke suite: same inference code path as the
/// paper fixture, but a small synthetic problem (6 gestures, 32 features)
/// that trains and runs in milliseconds.
struct SmokeSvm {
  kernels::SvmModel model;
  kernels::SvmDataset test;
};

const SmokeSvm& smoke_svm() {
  static const SmokeSvm fixture = [] {
    SmokeSvm s;
    auto data = kernels::make_gesture_data(6, 32, 12, 5, 1.2, 7);
    s.model = kernels::train_svm(data.train, 6);
    s.test = std::move(data.test);
    return s;
  }();
  return fixture;
}

std::vector<EvalBenchmark> make_full_suite() {
  std::vector<EvalBenchmark> out;
  for (const auto& b : kernels::benchmark_suite()) {
    EvalBenchmark eb{b, nullptr};
    if (b.name == "svm") {
      const auto& f = kernels::svm_fixture();
      eb.accuracy = svm_accuracy_hook(f.model, f.test);
    }
    out.push_back(std::move(eb));
  }
  return out;
}

std::vector<EvalBenchmark> make_smoke_suite() {
  using kernels::Benchmark;
  std::vector<EvalBenchmark> out;
  out.push_back({Benchmark{"svm",
                           [](TypeConfig tc) {
                             const auto& f = smoke_svm();
                             return kernels::make_svm(tc, f.model, f.test);
                           }},
                 svm_accuracy_hook(smoke_svm().model, smoke_svm().test)});
  out.push_back({Benchmark{"gemm",
                           [](TypeConfig tc) {
                             return kernels::make_gemm(tc, 8, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"atax",
                           [](TypeConfig tc) {
                             return kernels::make_atax(tc, 8, 10);
                           }},
                 nullptr});
  out.push_back({Benchmark{"syrk",
                           [](TypeConfig tc) {
                             return kernels::make_syrk(tc, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"syr2k",
                           [](TypeConfig tc) {
                             return kernels::make_syr2k(tc, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"fdtd2d",
                           [](TypeConfig tc) {
                             return kernels::make_fdtd2d(tc, 2, 8, 8);
                           }},
                 nullptr});
  out.push_back({Benchmark{"conv2d",
                           [](TypeConfig tc) {
                             return kernels::make_conv2d(tc, 6, 6, 3);
                           }},
                 nullptr});
  out.push_back({Benchmark{"fully_connected",
                           [](TypeConfig tc) {
                             return kernels::make_fully_connected(tc, 6, 10);
                           }},
                 nullptr});
  out.push_back({Benchmark{"nn_train",
                           [](TypeConfig tc) {
                             return kernels::make_nn_train(tc, 5, 6);
                           }},
                 nullptr});
  return out;
}

std::vector<double> golden_concat(const KernelSpec& spec) {
  std::vector<double> all;
  for (const auto& g : spec.golden) all.insert(all.end(), g.begin(), g.end());
  return all;
}

}  // namespace

const std::vector<EvalBenchmark>& eval_suite(SuiteScale scale) {
  // Per-branch statics: smoke-only runs (CI, unit tests) must not pay for
  // training the full-size SVM fixture.
  if (scale == SuiteScale::Full) {
    static const std::vector<EvalBenchmark> full = make_full_suite();
    return full;
  }
  static const std::vector<EvalBenchmark> smoke = make_smoke_suite();
  return smoke;
}

std::vector<TypeConfigSpec> default_type_configs() {
  using ir::ScalarType;
  // Appended after the paper's five so pre-posit report rows keep their
  // matrix-expansion positions.
  return {
      {"float", TypeConfig::uniform(ScalarType::F32)},
      {"float16", TypeConfig::uniform(ScalarType::F16)},
      {"float16alt", TypeConfig::uniform(ScalarType::F16Alt)},
      {"float8", TypeConfig::uniform(ScalarType::F8)},
      {"mixed", {ScalarType::F16, ScalarType::F32}},
      {"posit8", TypeConfig::uniform(ScalarType::P8)},
      {"posit16", TypeConfig::uniform(ScalarType::P16)},
  };
}

CampaignSpec CampaignSpec::table3() {
  CampaignSpec spec;
  spec.name = "table3";
  spec.scale = SuiteScale::Full;
  return spec;
}

CampaignSpec CampaignSpec::smoke() {
  CampaignSpec spec;
  spec.name = "smoke";
  spec.scale = SuiteScale::Smoke;
  return spec;
}

CampaignSpec CampaignSpec::nn(SuiteScale scale) {
  using ir::ScalarType;
  CampaignSpec spec;
  spec.name = "nn";
  spec.scale = scale;
  spec.benchmarks = {"conv2d", "fully_connected", "nn_train"};
  // Uniform float16 is the baseline; "minifloat-nn" is the paper's training
  // shape (f8 weights/activations, f16 packed ExSdotp accumulator). Both run
  // under the ExSdotp generator — uniform f16 has no wider packed format at
  // FLEN=32 and falls back to same-type MACs, which is the fair baseline.
  spec.type_configs = {
      {"float16", TypeConfig::uniform(ScalarType::F16)},
      {"minifloat-nn", {ScalarType::F8, ScalarType::F16}},
  };
  spec.modes = {ir::CodegenMode::ManualVecExs};
  spec.vls = {0, 1, 2, 4};
  spec.tuner_study = false;
  return spec;
}

bool CampaignSpec::runs_tuner() const {
  return tuner_study &&
         (benchmarks.empty() ||
          std::find(benchmarks.begin(), benchmarks.end(), "svm") !=
              benchmarks.end());
}

std::vector<CellSpec> expand_matrix(const CampaignSpec& spec) {
  const auto& suite = eval_suite(spec.scale);
  std::vector<const EvalBenchmark*> selected;
  if (spec.benchmarks.empty()) {
    for (const auto& b : suite) selected.push_back(&b);
  } else {
    for (const auto& name : spec.benchmarks) {
      const auto it = std::find_if(
          suite.begin(), suite.end(),
          [&](const EvalBenchmark& b) { return b.bench.name == name; });
      if (it == suite.end()) {
        throw std::runtime_error("unknown benchmark: " + name);
      }
      selected.push_back(&*it);
    }
  }
  std::vector<CellSpec> cells;
  cells.reserve(selected.size() * spec.type_configs.size() *
                spec.modes.size() * spec.vls.size());
  for (const EvalBenchmark* b : selected) {
    for (const auto& tc : spec.type_configs) {
      for (const auto mode : spec.modes) {
        for (const int vl : spec.vls) {
          cells.push_back({b, tc, mode, vl});
        }
      }
    }
  }
  return cells;
}

CellResult run_cell(const CellSpec& cell, const sim::MemConfig& mem,
                    sim::Engine engine, fp::MathBackend backend,
                    const ir::OptConfig& opt) {
  const KernelSpec spec = cell.benchmark->bench.make(cell.type_config.tc);
  // The cell's VL-sweep point overrides the campaign-level vl_cap: each
  // point is a distinct lowering of the same kernel.
  ir::OptConfig cell_opt = opt;
  cell_opt.vl_cap = cell.vl;
  const RunResult r = kernels::run_kernel(spec, cell.mode, mem,
                                          isa::IsaConfig::full(), engine,
                                          backend, cell_opt);

  CellResult c;
  c.benchmark = cell.benchmark->bench.name;
  c.type_config = cell.type_config.name;
  c.data = cell.type_config.tc.data;
  c.acc = cell.type_config.tc.acc;
  c.mode = cell.mode;
  c.vl = cell.vl;
  c.cycles = r.stats.cycles;
  c.instructions = r.stats.instructions;
  c.loads = r.stats.load_count;
  c.stores = r.stats.store_count;

  std::array<std::uint64_t, 64> by_cls{};
  for (std::size_t i = 0; i < isa::kNumOps; ++i) {
    by_cls[static_cast<std::size_t>(isa::op_class(static_cast<isa::Op>(i)))] +=
        r.stats.op_count[i];
  }
  for (std::size_t ci = 0; ci < by_cls.size(); ++ci) {
    if (by_cls[ci] == 0) continue;
    c.class_counts.emplace_back(
        std::string(isa::cls_name(static_cast<isa::Cls>(ci))), by_cls[ci]);
  }

  c.energy = energy::EnergyModel{}.breakdown(r.stats, mem);
  c.sqnr_db = kernels::sqnr_db(golden_concat(spec),
                               r.concat_outputs(spec.output_arrays));
  if (cell.benchmark->accuracy) {
    c.accuracy = cell.benchmark->accuracy(spec, r);
  }
  return c;
}

EvalReport run_campaign(const CampaignSpec& spec, int jobs) {
  const auto cells = expand_matrix(spec);

  std::vector<CellResult> results(cells.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      try {
        results[i] = run_cell(cells[i], spec.mem, spec.engine, spec.backend,
                              spec.opt);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const int n = std::max(1, jobs);
  if (n == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  EvalReport report;
  report.suite = spec.name;
  report.engine = std::string(sim::engine_name(spec.engine));
  report.backend = std::string(fp::backend_name(spec.backend));
  report.opt = std::string(ir::opt_name(spec.opt));
  report.mem_load_latency = spec.mem.load_latency;
  report.mem_store_latency = spec.mem.store_latency;
  for (const auto& c : cells) {
    if (report.benchmarks.empty() ||
        report.benchmarks.back() != c.benchmark->bench.name) {
      report.benchmarks.push_back(c.benchmark->bench.name);
    }
  }
  for (const auto& tc : spec.type_configs) {
    report.type_configs.push_back(tc.name);
  }
  for (const auto m : spec.modes) {
    report.modes.emplace_back(ir::mode_name(m));
  }
  report.vls = spec.vls;
  report.cells = std::move(results);
  if (spec.runs_tuner()) {
    report.has_tuner = true;
    report.tuner = run_tuner_study(spec.scale, spec.mem, spec.engine,
                                   spec.backend, spec.opt);
  }
  return report;
}

TunerStudy run_tuner_study(SuiteScale scale, const sim::MemConfig& mem,
                           sim::Engine engine, fp::MathBackend backend,
                           const ir::OptConfig& opt) {
  const auto& suite = eval_suite(scale);
  const auto it = std::find_if(
      suite.begin(), suite.end(),
      [](const EvalBenchmark& b) { return b.bench.name == "svm"; });
  if (it == suite.end() || !it->accuracy) {
    throw std::runtime_error("tuner study requires the svm benchmark");
  }
  const EvalBenchmark& svm = *it;

  using ir::ScalarType;
  // Narrowest first, posits after their equally-wide IEEE formats.
  const std::vector<ScalarType> domain = {ScalarType::F8,  ScalarType::P8,
                                          ScalarType::F16Alt, ScalarType::F16,
                                          ScalarType::P16, ScalarType::F32};

  // Each configuration is simulated once; the tuner's qor/cost callbacks
  // both read the memoized outcome.
  struct Outcome {
    double qor = 0;
    double cost = 0;
  };
  std::map<std::pair<int, int>, Outcome> memo;
  auto evaluate = [&](const tuner::TypeVector& types) -> Outcome {
    // Slot pairs the promotion lattice cannot order — the two 16-bit IEEE
    // formats against each other, or posit/IEEE mixes outside float — have
    // no defined source-level typing: record them as skipped (qor below any
    // threshold, zero cost) instead of simulating.
    if (!ir::comparable(types[0], types[1])) return {-1.0, 0.0};
    const auto key = std::make_pair(static_cast<int>(types[0]),
                                    static_cast<int>(types[1]));
    const auto found = memo.find(key);
    if (found != memo.end()) return found->second;
    const TypeConfig tc{types[0], types[1]};
    // Vectorize whenever the data type packs (the paper's tuned deployment);
    // float data has no lanes at FLEN=32 and runs the scalar pipeline.
    const auto mode = ir::lanes32(tc.data) >= 2 ? ir::CodegenMode::ManualVec
                                                : ir::CodegenMode::Scalar;
    const KernelSpec spec = svm.bench.make(tc);
    const RunResult r = kernels::run_kernel(spec, mode, mem,
                                            isa::IsaConfig::full(), engine,
                                            backend, opt);
    const Outcome out{svm.accuracy(spec, r), static_cast<double>(r.cycles())};
    memo.emplace(key, out);
    return out;
  };

  tuner::Problem problem;
  problem.slot_names = {"data", "acc"};
  problem.slot_domains = {domain, domain};
  problem.qor = [&](const tuner::TypeVector& t) { return evaluate(t).qor; };
  problem.cost = [&](const tuner::TypeVector& t) { return evaluate(t).cost; };
  problem.qor_threshold =
      evaluate({ScalarType::F32, ScalarType::F32}).qor;  // strict: float QoR

  // Exhaustive over the 6x6 grid (lattice-ordered pairs simulated and
  // memoized, unordered pairs recorded as skipped): the case study wants the
  // *cheapest* feasible assignment, and greedy promotion legitimately stops
  // at the first feasible one it reaches — which can be a scalar-fallback
  // combination slower than the float baseline.
  const tuner::Result result = tuner::tune_exhaustive(problem);

  TunerStudy study;
  study.benchmark = "svm";
  study.objective = "cycles";
  study.qor_threshold = problem.qor_threshold;
  study.found = result.found;
  auto to_trial = [](const tuner::Evaluation& e) {
    TunerTrial t;
    t.data = e.types[0];
    t.acc = e.types[1];
    t.qor = e.qor;
    t.cost = e.cost;
    t.feasible = e.feasible;
    return t;
  };
  study.best = to_trial(result.best);
  study.explored.reserve(result.explored.size());
  for (const auto& e : result.explored) study.explored.push_back(to_trial(e));
  return study;
}

}  // namespace sfrv::eval
