#include "eval/executor.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sfrv::eval {

namespace {

/// One worker's queue. A deque under a mutex is deliberately simple: tasks
/// here are whole simulation cells (milliseconds to seconds each), so queue
/// overhead is noise and the classic lock-free deque buys nothing.
struct Shard {
  std::mutex mu;
  std::deque<std::size_t> q;

  bool pop_front(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.front();
    q.pop_front();
    return true;
  }
  bool steal_back(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.back();
    q.pop_back();
    return true;
  }
  std::size_t size() {
    const std::lock_guard<std::mutex> lock(mu);
    return q.size();
  }
};

}  // namespace

void run_sharded(std::size_t n, int shards,
                 const std::function<void(std::size_t)>& task) {
  const int w = std::max(1, shards);
  std::vector<Shard> deques(static_cast<std::size_t>(w));
  // Round-robin deal: neighbouring cells of the expansion (same benchmark,
  // adjacent configs) land on different shards, spreading the expensive
  // benchmarks before stealing even starts.
  for (std::size_t i = 0; i < n; ++i) {
    deques[i % static_cast<std::size_t>(w)].q.push_back(i);
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&](int self) {
    const auto us = static_cast<std::size_t>(self);
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      std::size_t i = 0;
      bool got = deques[us].pop_front(i);
      if (!got) {
        // Steal from the currently longest victim queue; the snapshot can
        // go stale between the scan and the pop, but the pop re-checks.
        std::size_t best = us, best_len = 0;
        for (std::size_t v = 0; v < deques.size(); ++v) {
          if (v == us) continue;
          const std::size_t len = deques[v].size();
          if (len > best_len) {
            best_len = len;
            best = v;
          }
        }
        if (best_len > 0) got = deques[best].steal_back(i);
        if (!got) {
          // Linear sweep fallback: the snapshot may have gone stale.
          for (std::size_t v = 0; v < deques.size() && !got; ++v) {
            if (v != us) got = deques[v].steal_back(i);
          }
        }
      }
      if (!got) return;  // every deque empty: done
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (w == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(w));
    for (int t = 0; t < w; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sfrv::eval
