// Content-addressed cell store: the memoization layer of eval-as-a-service.
//
// A campaign cell is addressed by everything its result is a function of:
// the lowered-kernel content digest (text image + quantized inputs + golden
// reference, kernels::lowered_digest), the type configuration, the code
// generator, the execution engine, the math backend, the optimizer
// configuration, the VL point, the memory timing, and the report schema
// version. Display names (benchmark / type-config labels) are deliberately
// *not* part of the address — they are presentation, patched from the
// requesting spec on every hit — so the tuner's 36-pair grid and the
// campaign matrix share cells whenever their content coincides.
//
// Correctness contract: the byte-identical-report determinism the CI has
// enforced since PR 2 becomes the cache contract — a cell served from the
// store must serialize bit-for-bit like a recomputed one. The store never
// guesses: a disk entry that is missing, truncated, unparsable, from
// another schema version, or whose recorded key text does not match the
// requested address is a miss, and the cell is recomputed (and the entry
// rewritten) instead of served.
#pragma once

#include <cstdint>
#include <optional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "eval/report.hpp"
#include "ir/opt.hpp"
#include "sim/core.hpp"
#include "softfloat/runtime.hpp"

namespace sfrv::eval {

/// The content address of one evaluation cell.
struct CellKey {
  std::uint64_t kernel_digest = 0;  ///< kernels::lowered_digest
  ir::ScalarType data = ir::ScalarType::F32;
  ir::ScalarType acc = ir::ScalarType::F32;
  ir::CodegenMode mode = ir::CodegenMode::Scalar;
  int vl = 0;
  sim::Engine engine = sim::Engine::Predecoded;
  fp::MathBackend backend = fp::MathBackend::Grs;
  /// Raw optimizer fields (not the level name: "custom" configurations must
  /// not collapse onto each other). vl_cap duplicates `vl` by construction.
  ir::OptConfig opt{};
  int mem_load_latency = 1;
  int mem_store_latency = 1;
  /// Energy billing depends on the hierarchy level, not just the latency
  /// (sim::MemConfig::level), so it addresses independently.
  int mem_level = 0;
  std::uint32_t mem_size = 8u << 20;
  /// Report schema version baked into every address: a schema bump
  /// invalidates all cached cells.
  std::string schema{kReportSchema};

  /// Canonical one-line-per-field text form. This is what gets hashed, and
  /// what disk entries record verbatim so a hash collision (or a hand-edited
  /// file) is detected instead of served.
  [[nodiscard]] std::string canonical() const;

  /// 32-hex-character content address (two independently seeded FNV-1a
  /// passes over `canonical()`). Stable across processes and machines; used
  /// as the in-memory map key and the on-disk file stem.
  [[nodiscard]] std::string address() const;
};

/// Thread-safe memoization map from CellKey address to CellResult, with
/// optional on-disk persistence (one JSON blob per key under `cache_dir`,
/// written via atomic rename so concurrent writers and crashes can never
/// leave a half-written entry visible).
class CellStore {
 public:
  /// Memory-only store.
  CellStore() = default;
  /// Persistent store under `cache_dir` (created if absent; empty string
  /// means memory-only). Throws std::runtime_error when the directory
  /// cannot be created.
  explicit CellStore(const std::string& cache_dir);

  /// O(1) in-memory lookup, falling back to disk when persistent. Disk hits
  /// are promoted into memory. Returns nullopt on miss or on any invalid
  /// disk entry (counted in Stats::rejected).
  [[nodiscard]] std::optional<CellResult> lookup(const CellKey& key);

  /// Insert (or overwrite) a computed cell; persists when disk-backed.
  /// Overwrites are idempotent by the determinism contract: two computations
  /// of the same address produce identical cells.
  void insert(const CellKey& key, const CellResult& cell);

  struct Stats {
    std::uint64_t hits = 0;       ///< lookups served (memory or disk)
    std::uint64_t misses = 0;     ///< lookups that found nothing usable
    std::uint64_t disk_hits = 0;  ///< subset of hits that came from disk
    std::uint64_t rejected = 0;   ///< corrupt/foreign disk entries skipped
  };
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  [[nodiscard]] const std::string& cache_dir() const { return dir_; }
  /// Number of cells currently resident in memory.
  [[nodiscard]] std::size_t size() const;

 private:
  [[nodiscard]] std::string entry_path(const std::string& address) const;
  /// Disk read + validation; assumes mu_ is held.
  [[nodiscard]] std::optional<CellResult> load_from_disk(
      const CellKey& key, const std::string& address);

  mutable std::mutex mu_;
  std::string dir_;  ///< empty = memory-only
  std::unordered_map<std::string, CellResult> cells_;
  Stats stats_{};
};

}  // namespace sfrv::eval
