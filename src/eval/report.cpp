#include "eval/report.hpp"

#include <stdexcept>

namespace sfrv::eval {

namespace {

Json breakdown_to_json(const energy::EnergyBreakdown& e) {
  return Json(JsonObject{{"total_pj", Json(e.total())},
                         {"base_pj", Json(e.base)},
                         {"leakage_pj", Json(e.leakage)},
                         {"unit_pj", Json(e.unit)},
                         {"memory_pj", Json(e.memory)}});
}

energy::EnergyBreakdown breakdown_from_json(const Json& j) {
  energy::EnergyBreakdown e;
  e.base = j.at("base_pj").as_double();
  e.leakage = j.at("leakage_pj").as_double();
  e.unit = j.at("unit_pj").as_double();
  e.memory = j.at("memory_pj").as_double();
  return e;
}

}  // namespace

Json cell_to_json(const CellResult& c) {
  JsonObject counts;
  counts.reserve(c.class_counts.size());
  for (const auto& [cls, n] : c.class_counts) counts.emplace_back(cls, Json(n));
  JsonObject obj{
      {"benchmark", Json(c.benchmark)},
      {"type_config", Json(c.type_config)},
      {"data", Json(ir::type_name(c.data))},
      {"acc", Json(ir::type_name(c.acc))},
      {"mode", Json(ir::mode_name(c.mode))},
      {"vl", Json(c.vl)},
      {"cycles", Json(c.cycles)},
      {"instructions", Json(c.instructions)},
      {"loads", Json(c.loads)},
      {"stores", Json(c.stores)},
      {"class_counts", Json(std::move(counts))},
      {"energy", breakdown_to_json(c.energy)},
      {"sqnr_db", Json(c.sqnr_db)},
  };
  if (c.accuracy >= 0) obj.emplace_back("accuracy", Json(c.accuracy));
  return Json(std::move(obj));
}

CellResult cell_from_json(const Json& j) {
  CellResult c;
  c.benchmark = j.at("benchmark").as_string();
  c.type_config = j.at("type_config").as_string();
  c.data = scalar_type_from_name(j.at("data").as_string());
  c.acc = scalar_type_from_name(j.at("acc").as_string());
  c.mode = mode_from_name(j.at("mode").as_string());
  c.vl = static_cast<int>(j.at("vl").as_int());
  c.cycles = j.at("cycles").as_uint();
  c.instructions = j.at("instructions").as_uint();
  c.loads = j.at("loads").as_uint();
  c.stores = j.at("stores").as_uint();
  for (const auto& [cls, n] : j.at("class_counts").object()) {
    c.class_counts.emplace_back(cls, n.as_uint());
  }
  c.energy = breakdown_from_json(j.at("energy"));
  c.sqnr_db = j.at("sqnr_db").as_double();
  if (const Json* acc = j.find("accuracy")) c.accuracy = acc->as_double();
  return c;
}

namespace {

Json trial_to_json(const TunerTrial& t) {
  return Json(JsonObject{{"data", Json(ir::type_name(t.data))},
                         {"acc", Json(ir::type_name(t.acc))},
                         {"qor", Json(t.qor)},
                         {"cost", Json(t.cost)},
                         {"feasible", Json(t.feasible)}});
}

TunerTrial trial_from_json(const Json& j) {
  TunerTrial t;
  t.data = scalar_type_from_name(j.at("data").as_string());
  t.acc = scalar_type_from_name(j.at("acc").as_string());
  t.qor = j.at("qor").as_double();
  t.cost = j.at("cost").as_double();
  t.feasible = j.at("feasible").as_bool();
  return t;
}

Json strings_to_json(const std::vector<std::string>& v) {
  JsonArray arr;
  arr.reserve(v.size());
  for (const auto& s : v) arr.emplace_back(s);
  return Json(std::move(arr));
}

std::vector<std::string> strings_from_json(const Json& j) {
  std::vector<std::string> v;
  v.reserve(j.array().size());
  for (const auto& s : j.array()) v.push_back(s.as_string());
  return v;
}

Json ints_to_json(const std::vector<int>& v) {
  JsonArray arr;
  arr.reserve(v.size());
  for (const int x : v) arr.emplace_back(x);
  return Json(std::move(arr));
}

std::vector<int> ints_from_json(const Json& j) {
  std::vector<int> v;
  v.reserve(j.array().size());
  for (const auto& x : j.array()) v.push_back(static_cast<int>(x.as_int()));
  return v;
}

}  // namespace

ir::ScalarType scalar_type_from_name(std::string_view name) {
  for (const auto t : {ir::ScalarType::F32, ir::ScalarType::F16,
                       ir::ScalarType::F16Alt, ir::ScalarType::F8,
                       ir::ScalarType::P8, ir::ScalarType::P16}) {
    if (name == ir::type_name(t)) return t;
  }
  throw std::runtime_error("unknown scalar type name: " + std::string(name));
}

ir::CodegenMode mode_from_name(std::string_view name) {
  for (const auto m : {ir::CodegenMode::Scalar, ir::CodegenMode::AutoVec,
                       ir::CodegenMode::ManualVec,
                       ir::CodegenMode::ManualVecExs}) {
    if (name == ir::mode_name(m)) return m;
  }
  throw std::runtime_error("unknown codegen mode name: " + std::string(name));
}

const CellResult* EvalReport::find_cell(std::string_view benchmark,
                                        std::string_view type_config,
                                        ir::CodegenMode mode, int vl) const {
  for (const auto& c : cells) {
    if (c.benchmark == benchmark && c.type_config == type_config &&
        c.mode == mode && c.vl == vl) {
      return &c;
    }
  }
  return nullptr;
}

Json to_json(const EvalReport& report) {
  JsonArray cells;
  cells.reserve(report.cells.size());
  for (const auto& c : report.cells) cells.push_back(cell_to_json(c));

  JsonObject obj{
      {"schema", Json(kReportSchema)},
      {"suite", Json(report.suite)},
      {"engine", Json(report.engine)},
      {"backend", Json(report.backend)},
      {"opt", Json(report.opt)},
      {"mem", Json(JsonObject{{"load_latency", Json(report.mem_load_latency)},
                              {"store_latency", Json(report.mem_store_latency)}})},
      {"benchmarks", strings_to_json(report.benchmarks)},
      {"type_configs", strings_to_json(report.type_configs)},
      {"modes", strings_to_json(report.modes)},
      {"vls", ints_to_json(report.vls)},
      {"cells", Json(std::move(cells))},
  };
  // Host-dependent, opt-in: keeping it out of default reports preserves the
  // byte-determinism contract (see EvalReport::wall_ms).
  if (report.wall_ms >= 0) {
    obj.emplace_back("wall_ms", Json(report.wall_ms));
  }
  // Same opt-in: cache telemetry depends on run order (a warm rerun hits
  // where the cold pass missed), so it must stay out of the byte-compared
  // default reports.
  if (report.has_cache) {
    JsonObject cache{{"hits", Json(report.cache.hits)},
                     {"misses", Json(report.cache.misses)}};
    if (report.cache.cold_ms >= 0) {
      cache.emplace_back("cold_ms", Json(report.cache.cold_ms));
    }
    if (report.cache.warm_ms >= 0) {
      cache.emplace_back("warm_ms", Json(report.cache.warm_ms));
    }
    obj.emplace_back("cache", Json(std::move(cache)));
  }
  if (report.has_tuner) {
    JsonArray explored;
    explored.reserve(report.tuner.explored.size());
    for (const auto& t : report.tuner.explored) {
      explored.push_back(trial_to_json(t));
    }
    obj.emplace_back(
        "tuner",
        Json(JsonObject{{"benchmark", Json(report.tuner.benchmark)},
                        {"objective", Json(report.tuner.objective)},
                        {"qor_threshold", Json(report.tuner.qor_threshold)},
                        {"found", Json(report.tuner.found)},
                        {"best", trial_to_json(report.tuner.best)},
                        {"explored", Json(std::move(explored))}}));
  }
  return Json(std::move(obj));
}

EvalReport report_from_json(const Json& doc) {
  const auto& schema = doc.at("schema").as_string();
  if (schema != kReportSchema) {
    throw std::runtime_error("unsupported report schema: " + schema);
  }
  EvalReport r;
  r.suite = doc.at("suite").as_string();
  r.engine = doc.at("engine").as_string();
  r.backend = doc.at("backend").as_string();
  r.opt = doc.at("opt").as_string();
  const Json& mem = doc.at("mem");
  r.mem_load_latency = static_cast<int>(mem.at("load_latency").as_int());
  r.mem_store_latency = static_cast<int>(mem.at("store_latency").as_int());
  r.benchmarks = strings_from_json(doc.at("benchmarks"));
  r.type_configs = strings_from_json(doc.at("type_configs"));
  r.modes = strings_from_json(doc.at("modes"));
  r.vls = ints_from_json(doc.at("vls"));
  for (const auto& c : doc.at("cells").array()) {
    r.cells.push_back(cell_from_json(c));
  }
  if (const Json* wall = doc.find("wall_ms")) {
    r.wall_ms = wall->as_double();
  }
  if (const Json* cache = doc.find("cache")) {
    r.has_cache = true;
    r.cache.hits = cache->at("hits").as_uint();
    r.cache.misses = cache->at("misses").as_uint();
    if (const Json* v = cache->find("cold_ms")) r.cache.cold_ms = v->as_double();
    if (const Json* v = cache->find("warm_ms")) r.cache.warm_ms = v->as_double();
  }
  if (const Json* tuner = doc.find("tuner")) {
    r.has_tuner = true;
    r.tuner.benchmark = tuner->at("benchmark").as_string();
    r.tuner.objective = tuner->at("objective").as_string();
    r.tuner.qor_threshold = tuner->at("qor_threshold").as_double();
    r.tuner.found = tuner->at("found").as_bool();
    r.tuner.best = trial_from_json(tuner->at("best"));
    for (const auto& t : tuner->at("explored").array()) {
      r.tuner.explored.push_back(trial_from_json(t));
    }
  }
  return r;
}

}  // namespace sfrv::eval
