#include "eval/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sfrv::eval {

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    throw std::runtime_error("Json: non-finite double cannot be serialized");
  }
  char buf[32];
  // Shortest representation that round-trips; parses back bit-identical.
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return number();
    }
  }

  Json object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the report writer never emits them).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    const bool integral = tok.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      std::int64_t i = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return Json(i);
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("invalid number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("Json: missing key \"" + std::string(key) + "\"");
  }
  return *v;
}

void Json::write(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(v_) ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(v_));
  } else if (holds<double>()) {
    write_double(out, std::get<double>(v_));
  } else if (is_string()) {
    write_escaped(out, std::get<std::string>(v_));
  } else if (is_array()) {
    const auto& arr = std::get<JsonArray>(v_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out.push_back(',');
      if (indent >= 0) newline_indent(out, indent, depth + 1);
      arr[i].write(out, indent, depth + 1);
    }
    if (indent >= 0) newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = std::get<JsonObject>(v_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i != 0) out.push_back(',');
      if (indent >= 0) newline_indent(out, indent, depth + 1);
      write_escaped(out, obj[i].first);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      obj[i].second.write(out, indent, depth + 1);
    }
    if (indent >= 0) newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace sfrv::eval
