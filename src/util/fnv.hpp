// Seedable 64-bit FNV-1a, shared by the kernel-content digest
// (kernels::lowered_digest) and the eval cell store's content addresses.
// Process-stable by construction: the hash is a pure function of the fed
// bytes, never of pointers or container iteration order, which is what lets
// two processes (or two machines) agree on a cell address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace sfrv::util {

class Fnv1a {
 public:
  explicit Fnv1a(std::uint64_t seed = 0xcbf29ce484222325ull) : h_(seed) {}

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ull;
    }
  }
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
  }
  void str(const std::string& s) {
    const std::uint64_t n = s.size();
    pod(n);  // length-prefixed: "ab","c" must not collide with "a","bc"
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_;
};

}  // namespace sfrv::util
