// Shared verification primitives: the SFRV_VERIFY runtime switch, the
// diagnostic record every checker emits, and the exception that carries a
// batch of diagnostics attributed to the pipeline pass that introduced them.
//
// The checkers themselves live next to the structures they validate —
// ir/verify.{hpp,cpp} for the lowered Inst stream, sim/verify.{hpp,cpp} for
// the fused superblock stream and compiled JIT traces — and this header is
// the only thing the two layers share, so neither grows a dependency on the
// other. See docs/verification.md for the invariant catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sfrv::verify {

/// One invariant violation. `index` is the text index (pc = text_base +
/// 4 * index) of the offending instruction, or -1 when the violation is not
/// anchored to a single instruction (e.g. a malformed inner_ranges list).
/// `pass` is stamped by the thrower (the hook that knows which pipeline
/// stage produced the structure), not by the checker.
struct Diag {
  std::string pass;
  std::int64_t index = -1;
  std::string message;
};

/// Render one diagnostic the way VerifyError::what() prints it.
inline std::string render(const Diag& d) {
  std::string s = "[";
  if (!d.pass.empty()) {
    s += "pass ";
    s += d.pass;
    s += ", ";
  }
  if (d.index >= 0) {
    s += "text index " + std::to_string(d.index);
  } else {
    s += "no text anchor";
  }
  s += "] ";
  s += d.message;
  return s;
}

/// Thrown by the verification hooks when a checker reports violations. The
/// pass name identifies the pipeline stage that *introduced* the violation:
/// lower / unroll / strength-reduction / dead-glue-elim for the IR side,
/// fusion / translation for the simulator side.
class VerifyError : public std::runtime_error {
 public:
  VerifyError(std::string pass, std::vector<Diag> diags)
      : std::runtime_error(compose(pass, diags)),
        pass_(std::move(pass)),
        diags_(std::move(diags)) {
    for (Diag& d : diags_) d.pass = pass_;
  }

  [[nodiscard]] const std::string& pass() const { return pass_; }
  [[nodiscard]] const std::vector<Diag>& diags() const { return diags_; }

 private:
  static std::string compose(const std::string& pass,
                             const std::vector<Diag>& diags) {
    std::string s = "verify: invariant violation introduced by pass '" + pass +
                    "' (" + std::to_string(diags.size()) + " diagnostic" +
                    (diags.size() == 1 ? "" : "s") + ")";
    for (const Diag& d : diags) {
      Diag stamped = d;
      stamped.pass = pass;
      s += "\n  " + render(stamped);
    }
    return s;
  }

  std::string pass_;
  std::vector<Diag> diags_;
};

namespace detail {
inline std::atomic<int>& verify_state() {
  static std::atomic<int> state{-1};  // -1 = not yet read from environment
  return state;
}
}  // namespace detail

/// Whether the per-pass verification hooks run. Defaults to the SFRV_VERIFY
/// environment variable (read once); `set_enabled` (the --verify flag,
/// tests) overrides it for the rest of the process. Unrecognized values warn
/// and fall back to off, matching the SFRV_ENGINE/SFRV_BACKEND convention.
inline bool enabled() {
  int v = detail::verify_state().load(std::memory_order_relaxed);
  if (v < 0) {
    int parsed = 0;
    const char* e = std::getenv("SFRV_VERIFY");
    if (e != nullptr && *e != '\0') {
      const std::string_view s(e);
      if (s == "1" || s == "on" || s == "true") {
        parsed = 1;
      } else if (s != "0" && s != "off" && s != "false") {
        std::fprintf(stderr,
                     "sfrv: ignoring invalid SFRV_VERIFY value '%s' "
                     "(expected 0|1|on|off|true|false); verification off\n",
                     e);
      }
    }
    // A concurrent first call parses the same environment: both writes store
    // the same value, so the race is benign.
    detail::verify_state().store(parsed, std::memory_order_relaxed);
    v = parsed;
  }
  return v > 0;
}

inline void set_enabled(bool on) {
  detail::verify_state().store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace sfrv::verify
