// Shared environment-variable enum resolution.
//
// SFRV_ENGINE / SFRV_BACKEND / SFRV_OPT all follow the same contract: an
// unset or empty variable selects the built-in default, a valid value
// parses, and anything else warns on stderr and falls back to the default —
// never throws, because every resolver runs inside a static-local
// initializer reached from default arguments, long before any caller could
// catch or report an exception.
#pragma once

#include <cstdio>
#include <exception>
#include <utility>

namespace sfrv::util {

/// Resolve an environment value against `parse` (a name -> T function that
/// throws on unknown names). `var` and `expected` feed the warning message:
///   warning: ignoring invalid <var>=<value> (expected <expected>)
template <typename T, typename ParseFn>
[[nodiscard]] T parse_env_enum(const char* value, T fallback, ParseFn&& parse,
                               const char* var, const char* expected) {
  if (value == nullptr || *value == '\0') return fallback;
  try {
    return std::forward<ParseFn>(parse)(value);
  } catch (const std::exception&) {
    std::fprintf(stderr, "warning: ignoring invalid %s=%s (expected %s)\n",
                 var, value, expected);
    return fallback;
  }
}

}  // namespace sfrv::util
