#include "energy/model.hpp"

namespace sfrv::energy {

namespace {

int simd_lanes(isa::Op op) {
  if (!isa::is_vector(op)) return 1;
  return isa::vector_lanes(isa::to_fp_format(isa::op_format(op)), 32);
}

}  // namespace

double EnergyModel::unit_energy(isa::Op op) const {
  using isa::Cls;
  const Cls c = isa::op_class(op);
  switch (c) {
    case Cls::IntAlu:
    case Cls::Branch:
    case Cls::Jump:
    case Cls::Csr:
    case Cls::Sys:
      return int_alu;
    case Cls::IntMul:
      return int_mul;
    case Cls::IntDiv:
      return int_div;
    case Cls::Load:
    case Cls::Store:
    case Cls::FpLoad:
    case Cls::FpStore:
      return int_alu;  // address generation; access energy added separately
    default:
      break;
  }
  // FP operation: scale by format, fuse/divide factors, SIMD lanes.
  double per_lane = fp32_op;
  switch (isa::op_format(op)) {
    case isa::OpFmt::S: per_lane = fp32_op; break;
    case isa::OpFmt::H:
    case isa::OpFmt::AH: per_lane = fp16_op; break;
    case isa::OpFmt::B: per_lane = fp8_op; break;
    // Posit datapaths: arithmetic cost tracks the equally-wide IEEE unit
    // (same significand widths; the regime shifter replaces subnormal
    // handling, roughly energy-neutral at this granularity).
    case isa::OpFmt::P8: per_lane = fp8_op; break;
    case isa::OpFmt::P16: per_lane = fp16_op; break;
    case isa::OpFmt::None: per_lane = fp32_op; break;
  }
  double e = per_lane;
  switch (c) {
    case Cls::FpFma:
      e *= fma_factor;
      break;
    case Cls::FpDiv:
    case Cls::FpSqrt:
      e *= divsqrt_factor;
      break;
    case Cls::FpDotp:
    case Cls::FpMacEx:
      e = e * fma_factor + expanding_extra;
      break;
    case Cls::FpDotpEx:
      // Two chained wide FMAs per wide lane = one FMA per narrow lane, plus
      // the widening converters.
      e = e * fma_factor + expanding_extra;
      break;
    case Cls::FpMulEx:
      e += expanding_extra;
      break;
    default:
      break;
  }
  const int lanes = simd_lanes(op);
  if (lanes > 1) e *= lanes * simd_factor;
  return e;
}

double EnergyModel::total_pj(const sim::Stats& stats,
                             const sim::MemConfig& mem) const {
  return breakdown(stats, mem).total();
}

EnergyBreakdown EnergyModel::breakdown(const sim::Stats& stats,
                                       const sim::MemConfig& mem) const {
  EnergyBreakdown b;
  b.leakage = leakage_per_cycle * static_cast<double>(stats.cycles);
  b.base = base_per_instr * static_cast<double>(stats.instructions);
  for (std::size_t i = 0; i < isa::kNumOps; ++i) {
    const auto n = stats.op_count[i];
    if (n == 0) continue;
    b.unit += static_cast<double>(n) * unit_energy(static_cast<isa::Op>(i));
  }
  b.memory = mem_energy(mem.level) * static_cast<double>(stats.load_count) +
             store_energy(mem) * static_cast<double>(stats.store_count);
  return b;
}

}  // namespace sfrv::energy
