// Per-instruction energy model.
//
// Substitution note (DESIGN.md section 2): the paper characterizes a
// post-layout smallFloat unit in UMC 65 nm at 350 MHz. Here, per-class
// energy constants play that role. The constants are calibrated so that the
// paper's L1 headline numbers hold (~30 % saving for float16, ~50 % for
// float8 over float); everything else (latency trends of Fig. 3, the
// mixed-precision outcome of Fig. 6) follows from the model without further
// fitting. Ratios between classes track the published PULP/FPnew 65 nm data:
// narrower FP datapaths cost proportionally less, SIMD ops cost slightly
// less than (lanes x scalar) but far more than one scalar op, and memory
// access energy grows steeply with the memory level.
#pragma once

#include "isa/isa.hpp"
#include "sim/memory.hpp"
#include "sim/stats.hpp"

namespace sfrv::energy {

/// Component-wise decomposition of a run's energy (all values in pJ).
/// The eval report layer records these alongside the total so regressions
/// can be attributed to a component (compute vs. memory vs. idle).
struct EnergyBreakdown {
  double base = 0;     ///< per-instruction pipeline overhead
  double leakage = 0;  ///< per-cycle static/clock-tree energy
  double unit = 0;     ///< functional-unit increments
  double memory = 0;   ///< data-memory access energy

  [[nodiscard]] double total() const { return base + leakage + unit + memory; }
};

struct EnergyModel {
  // Core pipeline overhead charged to every instruction (fetch, decode,
  // register file) [pJ].
  double base_per_instr = 4.0;
  // Static/clock-tree energy per cycle [pJ].
  double leakage_per_cycle = 1.5;

  // Functional-unit increments [pJ].
  double int_alu = 1.2;
  double int_mul = 2.8;
  double int_div = 12.0;

  double fp32_op = 5.2;   // add/mul/cmp/cvt class, binary32
  double fp16_op = 3.1;   // binary16 / binary16alt scalar
  double fp8_op = 2.1;    // binary8 scalar
  double fma_factor = 1.6;       // fused ops switch more logic
  double divsqrt_factor = 3.0;   // iterative unit occupancy
  // A k-lane SIMD op costs k * scalar * simd_factor.
  double simd_factor = 1.10;
  // Expanding (Xfaux) ops: smallFloat lanes + an f32 accumulate path.
  double expanding_extra = 2.0;

  // Memory access energy per 32-bit (or narrower) access [pJ], by level.
  double mem_l1 = 6.5;
  double mem_l2 = 28.0;
  double mem_l3 = 130.0;

  /// Energy of one instance of `op` (excluding base/leakage/memory).
  [[nodiscard]] double unit_energy(isa::Op op) const;

  /// Memory energy per access at an explicit hierarchy level. Keyed off
  /// MemConfig::level, never the latency: a custom load latency must not
  /// shift the energy bucket (the old `int latency` overload silently
  /// billed any latency in (1, 10] at L2, and billed stores at the load
  /// level even when they retire through the 1-cycle store buffer).
  [[nodiscard]] double mem_energy(sim::MemLevelId level) const {
    switch (level) {
      case sim::MemLevelId::L1: return mem_l1;
      case sim::MemLevelId::L2: return mem_l2;
      case sim::MemLevelId::L3: return mem_l3;
    }
    __builtin_unreachable();
  }

  /// Per-store energy: a posted store (store_latency == 1) drains through
  /// the store buffer into the nearest level and pays the L1 write energy
  /// regardless of where loads are configured to hit; only an explicitly
  /// slow store path pays the full level energy.
  [[nodiscard]] double store_energy(const sim::MemConfig& mem) const {
    return mem.store_latency <= 1 ? mem_l1 : mem_energy(mem.level);
  }

  /// Total energy [pJ] for a finished run (= breakdown().total()).
  [[nodiscard]] double total_pj(const sim::Stats& stats,
                                const sim::MemConfig& mem) const;

  /// Component-wise energy for a finished run.
  [[nodiscard]] EnergyBreakdown breakdown(const sim::Stats& stats,
                                          const sim::MemConfig& mem) const;
};

}  // namespace sfrv::energy
