#include "tuner/tuner.hpp"

#include <cassert>
#include <limits>

namespace sfrv::tuner {

namespace {

Evaluation evaluate(const Problem& p, const TypeVector& types,
                    std::vector<Evaluation>& log) {
  Evaluation e;
  e.types = types;
  e.qor = p.qor(types);
  e.cost = p.cost(types);
  e.feasible = e.qor >= p.qor_threshold;
  log.push_back(e);
  return e;
}

}  // namespace

Result tune_exhaustive(const Problem& p) {
  assert(!p.slot_domains.empty());
  Result res;
  TypeVector current(p.slot_domains.size());
  std::vector<std::size_t> idx(p.slot_domains.size(), 0);
  double best_cost = std::numeric_limits<double>::infinity();
  for (;;) {
    for (std::size_t s = 0; s < idx.size(); ++s) {
      current[s] = p.slot_domains[s][idx[s]];
    }
    const Evaluation e = evaluate(p, current, res.explored);
    if (e.feasible && e.cost < best_cost) {
      best_cost = e.cost;
      res.best = e;
      res.found = true;
    }
    // Odometer increment.
    std::size_t s = 0;
    for (; s < idx.size(); ++s) {
      if (++idx[s] < p.slot_domains[s].size()) break;
      idx[s] = 0;
    }
    if (s == idx.size()) break;
  }
  return res;
}

Result tune_greedy(const Problem& p) {
  Result res;
  std::vector<std::size_t> idx(p.slot_domains.size(), 0);  // narrowest
  auto types_of = [&](const std::vector<std::size_t>& ix) {
    TypeVector t(ix.size());
    for (std::size_t s = 0; s < ix.size(); ++s) t[s] = p.slot_domains[s][ix[s]];
    return t;
  };

  Evaluation cur = evaluate(p, types_of(idx), res.explored);
  while (!cur.feasible) {
    // Try promoting each slot by one step; pick the best QoR-per-cost step.
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_slot = p.slot_domains.size();
    Evaluation best_eval;
    for (std::size_t s = 0; s < p.slot_domains.size(); ++s) {
      if (idx[s] + 1 >= p.slot_domains[s].size()) continue;
      auto trial = idx;
      ++trial[s];
      const Evaluation e = evaluate(p, types_of(trial), res.explored);
      const double dq = e.qor - cur.qor;
      const double dc = e.cost - cur.cost;
      const double score = dq - 1e-9 * dc;  // QoR first, cost as tie-break
      if (e.feasible) {
        // A feasible step wins immediately if it is the cheapest feasible.
        if (best_slot == p.slot_domains.size() || !best_eval.feasible ||
            e.cost < best_eval.cost) {
          best_slot = s;
          best_eval = e;
          best_score = std::numeric_limits<double>::infinity();
        }
        continue;
      }
      if (score > best_score && !(best_slot != p.slot_domains.size() &&
                                  best_eval.feasible)) {
        best_score = score;
        best_slot = s;
        best_eval = e;
      }
    }
    if (best_slot == p.slot_domains.size()) {
      // No promotion possible: infeasible problem.
      res.best = cur;
      res.found = false;
      return res;
    }
    ++idx[best_slot];
    cur = best_eval;
  }
  res.best = cur;
  res.found = true;
  return res;
}

}  // namespace sfrv::tuner
