// Automatic precision tuning (paper Section V-C).
//
// Substitution note: the paper drives its case study with the external
// fpPrecisionTuning tool [9], a dynamic (execution-feedback) search over
// per-variable type assignments under a QoR constraint. This module
// implements the same algorithmic family: each tunable "slot" (a group of
// program variables) has a domain of candidate types; configurations are
// evaluated by actually running the program (through the host emulation or
// the ISA simulator) and measuring QoR and cost.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace sfrv::tuner {

using TypeVector = std::vector<ir::ScalarType>;

struct Problem {
  /// One entry per tunable slot (e.g. {"data", "accumulator"}).
  std::vector<std::string> slot_names;
  /// Candidate types per slot, narrowest first.
  std::vector<std::vector<ir::ScalarType>> slot_domains;
  /// Quality of result for a configuration (higher is better).
  std::function<double(const TypeVector&)> qor;
  /// Cost to minimize (cycles, energy, ...).
  std::function<double(const TypeVector&)> cost;
  /// Configurations with qor >= threshold are feasible.
  double qor_threshold = 0;
};

struct Evaluation {
  TypeVector types;
  double qor = 0;
  double cost = 0;
  bool feasible = false;
};

struct Result {
  Evaluation best;
  bool found = false;
  /// Every configuration evaluated, in evaluation order.
  std::vector<Evaluation> explored;
};

/// Evaluate every configuration; return the cheapest feasible one.
[[nodiscard]] Result tune_exhaustive(const Problem& p);

/// fpPrecisionTuning-style greedy search: start from the narrowest
/// configuration and repeatedly promote the slot whose widening buys the
/// most QoR per unit cost until the constraint is met.
[[nodiscard]] Result tune_greedy(const Problem& p);

}  // namespace sfrv::tuner
