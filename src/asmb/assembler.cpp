#include "asmb/assembler.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace sfrv::asmb {

using isa::Inst;
using isa::Op;

Assembler::Assembler(std::uint32_t text_base, std::uint32_t data_base) {
  prog_.text_base = text_base;
  prog_.data_base = data_base;
}

Assembler::Label Assembler::make_label() {
  label_addr_.push_back(-1);
  return static_cast<Label>(label_addr_.size() - 1);
}

void Assembler::bind(Label l) {
  assert(label_addr_[static_cast<std::size_t>(l)] == -1 && "label bound twice");
  label_addr_[static_cast<std::size_t>(l)] = pc();
}

Assembler::Label Assembler::here() {
  const Label l = make_label();
  bind(l);
  return l;
}

void Assembler::emit(Inst inst) {
  assert(!finished_);
  prog_.text.push_back(inst);
}

std::uint32_t Assembler::pc() const {
  return prog_.text_base + static_cast<std::uint32_t>(prog_.text.size()) * 4;
}

// ---- integer ops ----------------------------------------------------------

void Assembler::lui(std::uint8_t rd, std::int32_t imm) {
  emit({.op = Op::LUI, .rd = rd, .imm = imm});
}
void Assembler::auipc(std::uint8_t rd, std::int32_t imm) {
  emit({.op = Op::AUIPC, .rd = rd, .imm = imm});
}
void Assembler::addi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
  assert(imm >= -2048 && imm < 2048);
  emit({.op = Op::ADDI, .rd = rd, .rs1 = rs1, .imm = imm});
}
void Assembler::add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  emit({.op = Op::ADD, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}
void Assembler::sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  emit({.op = Op::SUB, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}
void Assembler::slli(std::uint8_t rd, std::uint8_t rs1, int sh) {
  emit({.op = Op::SLLI, .rd = rd, .rs1 = rs1, .imm = sh});
}
void Assembler::srli(std::uint8_t rd, std::uint8_t rs1, int sh) {
  emit({.op = Op::SRLI, .rd = rd, .rs1 = rs1, .imm = sh});
}
void Assembler::srai(std::uint8_t rd, std::uint8_t rs1, int sh) {
  emit({.op = Op::SRAI, .rd = rd, .rs1 = rs1, .imm = sh});
}
void Assembler::mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  emit({.op = Op::MUL, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}
void Assembler::lw(std::uint8_t rd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::LW, .rd = rd, .rs1 = base, .imm = off});
}
void Assembler::sw(std::uint8_t rs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::SW, .rs1 = base, .rs2 = rs2, .imm = off});
}
void Assembler::lh(std::uint8_t rd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::LH, .rd = rd, .rs1 = base, .imm = off});
}
void Assembler::lhu(std::uint8_t rd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::LHU, .rd = rd, .rs1 = base, .imm = off});
}
void Assembler::lbu(std::uint8_t rd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::LBU, .rd = rd, .rs1 = base, .imm = off});
}
void Assembler::sh(std::uint8_t rs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::SH, .rs1 = base, .rs2 = rs2, .imm = off});
}
void Assembler::sb(std::uint8_t rs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::SB, .rs1 = base, .rs2 = rs2, .imm = off});
}

// ---- pseudo-instructions ----------------------------------------------------

void Assembler::nop() { addi(reg::zero, reg::zero, 0); }
void Assembler::mv(std::uint8_t rd, std::uint8_t rs) { addi(rd, rs, 0); }

void Assembler::li(std::uint8_t rd, std::int32_t value) {
  if (value >= -2048 && value < 2048) {
    addi(rd, reg::zero, value);
    return;
  }
  // lui loads bits [31:12]; addi adds the sign-extended low 12 bits, so the
  // upper part must be pre-compensated when bit 11 is set. Computed in
  // unsigned arithmetic: the compensation wraps modulo 2^32 near INT32_MAX,
  // exactly like the lui+addi pair it mirrors.
  const auto uvalue = static_cast<std::uint32_t>(value);
  std::uint32_t hi = uvalue & ~0xfffu;
  const std::uint32_t lo = uvalue & 0xfffu;
  if (lo >= 0x800) hi += 0x1000;
  lui(rd, static_cast<std::int32_t>(hi));
  const auto lo_signed = static_cast<std::int32_t>(uvalue - hi);
  if (lo_signed != 0) addi(rd, rd, lo_signed);
}

void Assembler::la(std::uint8_t rd, std::uint32_t address) {
  li(rd, static_cast<std::int32_t>(address));
}

void Assembler::j(Label target) { jal(reg::zero, target); }

void Assembler::ret() { jalr(reg::zero, reg::ra, 0); }

void Assembler::ebreak() { emit({.op = Op::EBREAK}); }

// ---- control flow -----------------------------------------------------------

namespace {
Inst branch(Op op, std::uint8_t rs1, std::uint8_t rs2) {
  return {.op = op, .rs1 = rs1, .rs2 = rs2};
}
}  // namespace

void Assembler::beq(std::uint8_t a, std::uint8_t b, Label t) {
  fixups_.push_back({prog_.text.size(), t});
  emit(branch(Op::BEQ, a, b));
}
void Assembler::bne(std::uint8_t a, std::uint8_t b, Label t) {
  fixups_.push_back({prog_.text.size(), t});
  emit(branch(Op::BNE, a, b));
}
void Assembler::blt(std::uint8_t a, std::uint8_t b, Label t) {
  fixups_.push_back({prog_.text.size(), t});
  emit(branch(Op::BLT, a, b));
}
void Assembler::bge(std::uint8_t a, std::uint8_t b, Label t) {
  fixups_.push_back({prog_.text.size(), t});
  emit(branch(Op::BGE, a, b));
}
void Assembler::bltu(std::uint8_t a, std::uint8_t b, Label t) {
  fixups_.push_back({prog_.text.size(), t});
  emit(branch(Op::BLTU, a, b));
}
void Assembler::bgeu(std::uint8_t a, std::uint8_t b, Label t) {
  fixups_.push_back({prog_.text.size(), t});
  emit(branch(Op::BGEU, a, b));
}

void Assembler::jal(std::uint8_t rd, Label target) {
  fixups_.push_back({prog_.text.size(), target});
  emit({.op = Op::JAL, .rd = rd});
}

void Assembler::jalr(std::uint8_t rd, std::uint8_t rs1, std::int32_t off) {
  emit({.op = Op::JALR, .rd = rd, .rs1 = rs1, .imm = off});
}

// ---- FP ---------------------------------------------------------------------

void Assembler::flw(std::uint8_t frd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::FLW, .rd = frd, .rs1 = base, .imm = off});
}
void Assembler::fsw(std::uint8_t frs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::FSW, .rs1 = base, .rs2 = frs2, .imm = off});
}
void Assembler::flh(std::uint8_t frd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::FLH, .rd = frd, .rs1 = base, .imm = off});
}
void Assembler::fsh(std::uint8_t frs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::FSH, .rs1 = base, .rs2 = frs2, .imm = off});
}
void Assembler::flb(std::uint8_t frd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::FLB, .rd = frd, .rs1 = base, .imm = off});
}
void Assembler::fsb(std::uint8_t frs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::FSB, .rs1 = base, .rs2 = frs2, .imm = off});
}

void Assembler::setvl(std::uint8_t rd, std::uint8_t rs1, int ew_log2_bytes,
                      int cap) {
  const std::int32_t imm = (ew_log2_bytes & 7) | ((cap & 63) << 3);
  emit({.op = Op::SETVL, .rd = rd, .rs1 = rs1, .imm = imm});
}
void Assembler::vflh(std::uint8_t frd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::VFLH, .rd = frd, .rs1 = base, .imm = off});
}
void Assembler::vflb(std::uint8_t frd, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::VFLB, .rd = frd, .rs1 = base, .imm = off});
}
void Assembler::vfsh(std::uint8_t frs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::VFSH, .rs1 = base, .rs2 = frs2, .imm = off});
}
void Assembler::vfsb(std::uint8_t frs2, std::int32_t off, std::uint8_t base) {
  emit({.op = Op::VFSB, .rs1 = base, .rs2 = frs2, .imm = off});
}

void Assembler::fp_rrr(Op op, std::uint8_t rd, std::uint8_t rs1,
                       std::uint8_t rs2, std::uint8_t rm) {
  Inst i{.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2};
  if (isa::layout(op) == isa::Lay::FpRrm) i.rm = rm;
  emit(i);
}

void Assembler::fp_rr(Op op, std::uint8_t rd, std::uint8_t rs1,
                      std::uint8_t rm) {
  Inst i{.op = op, .rd = rd, .rs1 = rs1};
  if (isa::layout(op) == isa::Lay::FpUnaryRm) i.rm = rm;
  emit(i);
}

void Assembler::fp_r4(Op op, std::uint8_t rd, std::uint8_t rs1,
                      std::uint8_t rs2, std::uint8_t rs3, std::uint8_t rm) {
  emit({.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2, .rs3 = rs3, .rm = rm});
}

// ---- CSR ---------------------------------------------------------------------

void Assembler::csrrw(std::uint8_t rd, std::int32_t csr, std::uint8_t rs1) {
  emit({.op = Op::CSRRW, .rd = rd, .rs1 = rs1, .imm = csr});
}
void Assembler::csrrs(std::uint8_t rd, std::int32_t csr, std::uint8_t rs1) {
  emit({.op = Op::CSRRS, .rd = rd, .rs1 = rs1, .imm = csr});
}
void Assembler::csrrwi(std::uint8_t rd, std::int32_t csr, std::uint8_t zimm) {
  emit({.op = Op::CSRRWI, .rd = rd, .rs1 = zimm, .imm = csr});
}
void Assembler::set_frm(fp::RoundingMode rm) {
  csrrwi(reg::zero, 0x002, static_cast<std::uint8_t>(rm));
}

// ---- data --------------------------------------------------------------------

std::uint32_t Assembler::data_bytes(const void* bytes, std::size_t n, int align) {
  while (prog_.data.size() % static_cast<std::size_t>(align) != 0)
    prog_.data.push_back(0);
  const auto addr = prog_.data_base + static_cast<std::uint32_t>(prog_.data.size());
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  prog_.data.insert(prog_.data.end(), p, p + n);
  return addr;
}

std::uint32_t Assembler::data_u32(std::uint32_t v) {
  return data_bytes(&v, sizeof v, 4);
}

std::uint32_t Assembler::data_zero(std::size_t n, int align) {
  while (prog_.data.size() % static_cast<std::size_t>(align) != 0)
    prog_.data.push_back(0);
  const auto addr = prog_.data_base + static_cast<std::uint32_t>(prog_.data.size());
  prog_.data.insert(prog_.data.end(), n, 0);
  return addr;
}

void Assembler::set_symbol(const std::string& name, std::uint32_t addr) {
  prog_.symbols[name] = addr;
}

// ---- finalize -------------------------------------------------------------

Program Assembler::finish() {
  for (const Fixup& f : fixups_) {
    const std::int64_t target = label_addr_[static_cast<std::size_t>(f.label)];
    if (target < 0) throw std::runtime_error("unbound label in assembler");
    const std::int64_t at =
        prog_.text_base + static_cast<std::int64_t>(f.index) * 4;
    prog_.text[f.index].imm = static_cast<std::int32_t>(target - at);
  }
  prog_.text_words.clear();
  prog_.text_words.reserve(prog_.text.size());
  for (const Inst& i : prog_.text) prog_.text_words.push_back(isa::encode(i));
  finished_ = true;
  return std::move(prog_);
}

}  // namespace sfrv::asmb
