// Macro-assembler: the programmatic interface used by the kernel compiler,
// tests and examples to build simulator programs.
//
// Register indices are plain unsigned (0-31); named ABI constants are in
// asmb::reg. Labels are forward-referenceable; finish() patches all fixups
// and encodes the final word stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asmb/program.hpp"
#include "isa/encoding.hpp"

namespace sfrv::asmb {

namespace reg {
// Integer ABI names.
inline constexpr std::uint8_t zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
inline constexpr std::uint8_t t0 = 5, t1 = 6, t2 = 7;
inline constexpr std::uint8_t s0 = 8, s1 = 9;
inline constexpr std::uint8_t a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14,
                              a5 = 15, a6 = 16, a7 = 17;
inline constexpr std::uint8_t s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22,
                              s7 = 23, s8 = 24, s9 = 25, s10 = 26, s11 = 27;
inline constexpr std::uint8_t t3 = 28, t4 = 29, t5 = 30, t6 = 31;
// FP ABI names.
inline constexpr std::uint8_t ft0 = 0, ft1 = 1, ft2 = 2, ft3 = 3, ft4 = 4,
                              ft5 = 5, ft6 = 6, ft7 = 7;
inline constexpr std::uint8_t fs0 = 8, fs1 = 9;
inline constexpr std::uint8_t fa0 = 10, fa1 = 11, fa2 = 12, fa3 = 13, fa4 = 14,
                              fa5 = 15, fa6 = 16, fa7 = 17;
inline constexpr std::uint8_t fs2 = 18, fs3 = 19, fs4 = 20, fs5 = 21, fs6 = 22,
                              fs7 = 23, fs8 = 24, fs9 = 25, fs10 = 26,
                              fs11 = 27;
inline constexpr std::uint8_t ft8 = 28, ft9 = 29, ft10 = 30, ft11 = 31;
}  // namespace reg

class Assembler {
 public:
  using Label = int;

  explicit Assembler(std::uint32_t text_base = kDefaultTextBase,
                     std::uint32_t data_base = kDefaultDataBase);

  // ---- labels -------------------------------------------------------------
  [[nodiscard]] Label make_label();
  void bind(Label l);
  /// Convenience: fresh label bound at the current position.
  Label here();

  // ---- raw emission -------------------------------------------------------
  void emit(isa::Inst inst);
  /// Current text address of the next emitted instruction.
  [[nodiscard]] std::uint32_t pc() const;

  // ---- integer ops --------------------------------------------------------
  void lui(std::uint8_t rd, std::int32_t imm20_shifted);
  void auipc(std::uint8_t rd, std::int32_t imm20_shifted);
  void addi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm);
  void add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
  void sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
  void slli(std::uint8_t rd, std::uint8_t rs1, int sh);
  void srli(std::uint8_t rd, std::uint8_t rs1, int sh);
  void srai(std::uint8_t rd, std::uint8_t rs1, int sh);
  void mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
  void lw(std::uint8_t rd, std::int32_t off, std::uint8_t base);
  void sw(std::uint8_t rs2, std::int32_t off, std::uint8_t base);
  void lh(std::uint8_t rd, std::int32_t off, std::uint8_t base);
  void lhu(std::uint8_t rd, std::int32_t off, std::uint8_t base);
  void lbu(std::uint8_t rd, std::int32_t off, std::uint8_t base);
  void sh(std::uint8_t rs2, std::int32_t off, std::uint8_t base);
  void sb(std::uint8_t rs2, std::int32_t off, std::uint8_t base);

  // ---- pseudo-instructions ------------------------------------------------
  void nop();
  void mv(std::uint8_t rd, std::uint8_t rs);
  void li(std::uint8_t rd, std::int32_t value);   // lui+addi as needed
  void la(std::uint8_t rd, std::uint32_t address);  // absolute address load
  void j(Label target);
  void ret();
  void ebreak();

  // ---- control flow -------------------------------------------------------
  void beq(std::uint8_t rs1, std::uint8_t rs2, Label target);
  void bne(std::uint8_t rs1, std::uint8_t rs2, Label target);
  void blt(std::uint8_t rs1, std::uint8_t rs2, Label target);
  void bge(std::uint8_t rs1, std::uint8_t rs2, Label target);
  void bltu(std::uint8_t rs1, std::uint8_t rs2, Label target);
  void bgeu(std::uint8_t rs1, std::uint8_t rs2, Label target);
  void jal(std::uint8_t rd, Label target);
  void jalr(std::uint8_t rd, std::uint8_t rs1, std::int32_t off = 0);

  // ---- FP loads/stores ----------------------------------------------------
  void flw(std::uint8_t frd, std::int32_t off, std::uint8_t base);
  void fsw(std::uint8_t frs2, std::int32_t off, std::uint8_t base);
  void flh(std::uint8_t frd, std::int32_t off, std::uint8_t base);
  void fsh(std::uint8_t frs2, std::int32_t off, std::uint8_t base);
  void flb(std::uint8_t frd, std::int32_t off, std::uint8_t base);
  void fsb(std::uint8_t frs2, std::int32_t off, std::uint8_t base);

  // ---- dynamic vector length ----------------------------------------------
  /// setvl rd, rs1, ew, cap: grant rd = vl = min(AVL in rs1, VLMAX for
  /// 2^ew-byte elements, cap when nonzero) and latch it in the vl CSR.
  /// `ew_log2_bytes` is 0 for byte (float8) and 1 for halfword (float16)
  /// elements; `cap` lets strip-mined loops request short chunks (0 = none).
  void setvl(std::uint8_t rd, std::uint8_t rs1, int ew_log2_bytes,
             int cap = 0);
  // VL-governed vector loads/stores: min(vl, lanes) packed elements,
  // consecutive in memory; load tails are undisturbed.
  void vflh(std::uint8_t frd, std::int32_t off, std::uint8_t base);
  void vflb(std::uint8_t frd, std::int32_t off, std::uint8_t base);
  void vfsh(std::uint8_t frs2, std::int32_t off, std::uint8_t base);
  void vfsb(std::uint8_t frs2, std::int32_t off, std::uint8_t base);

  // ---- generic FP emission (any scalar/vector op from the table) ----------
  void fp_rrr(isa::Op op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2,
              std::uint8_t rm = isa::kRmDyn);
  void fp_rr(isa::Op op, std::uint8_t rd, std::uint8_t rs1,
             std::uint8_t rm = isa::kRmDyn);
  void fp_r4(isa::Op op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2,
             std::uint8_t rs3, std::uint8_t rm = isa::kRmDyn);

  // ---- CSR ----------------------------------------------------------------
  void csrrw(std::uint8_t rd, std::int32_t csr, std::uint8_t rs1);
  void csrrs(std::uint8_t rd, std::int32_t csr, std::uint8_t rs1);
  void csrrwi(std::uint8_t rd, std::int32_t csr, std::uint8_t zimm);
  /// Set the dynamic rounding mode (frm CSR).
  void set_frm(fp::RoundingMode rm);

  // ---- data segment -------------------------------------------------------
  /// Append raw bytes; returns the absolute address.
  std::uint32_t data_bytes(const void* bytes, std::size_t n, int align = 4);
  std::uint32_t data_u32(std::uint32_t v);
  /// Reserve zero-initialized space; returns the absolute address.
  std::uint32_t data_zero(std::size_t n, int align = 4);
  void set_symbol(const std::string& name, std::uint32_t addr);

  // ---- finalize -----------------------------------------------------------
  /// Patch fixups, encode everything, and return the program image.
  [[nodiscard]] Program finish();

 private:
  struct Fixup {
    std::size_t index;  // instruction index in text
    Label label;
  };

  Program prog_;
  std::vector<std::int64_t> label_addr_;  // -1 = unbound
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace sfrv::asmb
