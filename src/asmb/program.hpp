// An assembled program image: text, data, and symbols.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hpp"

namespace sfrv::asmb {

/// Memory layout defaults (flat physical address space).
inline constexpr std::uint32_t kDefaultTextBase = 0x0000'1000;
inline constexpr std::uint32_t kDefaultDataBase = 0x0010'0000;
inline constexpr std::uint32_t kDefaultStackTop = 0x007f'fff0;

struct Program {
  std::uint32_t text_base = kDefaultTextBase;
  std::uint32_t data_base = kDefaultDataBase;
  std::vector<isa::Inst> text;            ///< decoded form (simulator input)
  std::vector<std::uint32_t> text_words;  ///< encoded form (bit-exact image)
  std::vector<std::uint8_t> data;         ///< initialized data segment
  std::unordered_map<std::string, std::uint32_t> symbols;

  [[nodiscard]] std::uint32_t entry() const { return text_base; }
  [[nodiscard]] std::uint32_t symbol(const std::string& name) const {
    return symbols.at(name);
  }
};

}  // namespace sfrv::asmb
