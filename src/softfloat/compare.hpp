// Comparisons, min/max with RISC-V NaN semantics.
#pragma once

#include "softfloat/flags.hpp"
#include "softfloat/float.hpp"

namespace sfrv::fp {

namespace detail {

/// Total order on the non-NaN subset: returns true when a < b numerically.
template <class F>
[[nodiscard]] constexpr bool lt_numeric(Float<F> a, Float<F> b) {
  if (a.is_zero() && b.is_zero()) return false;  // -0 == +0
  const bool sa = a.sign();
  const bool sb = b.sign();
  if (sa != sb) return sa;  // negative < positive (zeros handled above)
  const auto ma = static_cast<std::uint64_t>(a.bits & F::abs_mask);
  const auto mb = static_cast<std::uint64_t>(b.bits & F::abs_mask);
  return sa ? (ma > mb) : (ma < mb);
}

template <class F>
[[nodiscard]] constexpr bool eq_numeric(Float<F> a, Float<F> b) {
  if (a.is_zero() && b.is_zero()) return true;
  return a.bits == b.bits;
}

}  // namespace detail

/// FEQ: quiet comparison. NV only for signaling NaNs; NaN compares unequal.
template <class F>
[[nodiscard]] constexpr bool feq(Float<F> a, Float<F> b, Flags& fl) {
  if (a.is_nan() || b.is_nan()) {
    if (a.is_signaling_nan() || b.is_signaling_nan()) fl.raise(Flags::NV);
    return false;
  }
  return detail::eq_numeric(a, b);
}

/// FLT: signaling comparison. Any NaN operand raises NV and compares false.
template <class F>
[[nodiscard]] constexpr bool flt(Float<F> a, Float<F> b, Flags& fl) {
  if (a.is_nan() || b.is_nan()) {
    fl.raise(Flags::NV);
    return false;
  }
  return detail::lt_numeric(a, b);
}

/// FLE: signaling comparison.
template <class F>
[[nodiscard]] constexpr bool fle(Float<F> a, Float<F> b, Flags& fl) {
  if (a.is_nan() || b.is_nan()) {
    fl.raise(Flags::NV);
    return false;
  }
  return detail::eq_numeric(a, b) || detail::lt_numeric(a, b);
}

/// FMIN: IEEE 754-2008 minNum. One NaN -> other operand; both NaN ->
/// canonical NaN; signaling NaN raises NV. fmin(-0, +0) = -0.
template <class F>
[[nodiscard]] constexpr Float<F> fmin(Float<F> a, Float<F> b, Flags& fl) {
  if (a.is_signaling_nan() || b.is_signaling_nan()) fl.raise(Flags::NV);
  if (a.is_nan() && b.is_nan()) return Float<F>::quiet_nan();
  if (a.is_nan()) return b;
  if (b.is_nan()) return a;
  if (a.is_zero() && b.is_zero()) return a.sign() ? a : b;  // prefer -0
  return detail::lt_numeric(a, b) ? a : b;
}

/// FMAX: IEEE 754-2008 maxNum. fmax(-0, +0) = +0.
template <class F>
[[nodiscard]] constexpr Float<F> fmax(Float<F> a, Float<F> b, Flags& fl) {
  if (a.is_signaling_nan() || b.is_signaling_nan()) fl.raise(Flags::NV);
  if (a.is_nan() && b.is_nan()) return Float<F>::quiet_nan();
  if (a.is_nan()) return b;
  if (b.is_nan()) return a;
  if (a.is_zero() && b.is_zero()) return a.sign() ? b : a;  // prefer +0
  return detail::lt_numeric(a, b) ? b : a;
}

}  // namespace sfrv::fp
