// Umbrella header for the smallFloat soft-float library.
//
// The library implements bit-accurate IEEE-754-style arithmetic for the
// format family of the DATE 2019 smallFloat paper:
//   binary8 (1/5/2), binary16 (1/5/10), binary16alt (1/8/7, bfloat16-like),
//   binary32 and binary64.
// All operations honour the five RISC-V rounding modes and accumulate the
// standard exception flags.
#pragma once

#include "softfloat/arith.hpp"      // IWYU pragma: export
#include "softfloat/compare.hpp"    // IWYU pragma: export
#include "softfloat/convert.hpp"    // IWYU pragma: export
#include "softfloat/flags.hpp"      // IWYU pragma: export
#include "softfloat/float.hpp"      // IWYU pragma: export
#include "softfloat/formats.hpp"    // IWYU pragma: export
#include "softfloat/host.hpp"       // IWYU pragma: export
#include "softfloat/runtime.hpp"    // IWYU pragma: export
#include "softfloat/scalar.hpp"     // IWYU pragma: export
