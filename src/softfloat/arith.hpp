// Correctly rounded arithmetic for all smallFloat formats.
//
// Algorithms follow the classical guard/round/sticky construction: operands
// are unpacked to normalized significands, the operation is performed with
// three extra rounding bits (sticky computed by jamming), and results are
// packed through round_pack(). Effective subtraction can cancel at most one
// leading bit whenever sticky information exists (exponent distance >= 2),
// which is the invariant that makes 3 rounding bits sufficient.
#pragma once

#include "softfloat/flags.hpp"
#include "softfloat/float.hpp"
#include "softfloat/roundpack.hpp"

namespace sfrv::fp {

/// Sign manipulation is a raw bit operation (never signals, preserves NaN
/// payloads) as specified for RISC-V FSGNJ*.
template <class F>
[[nodiscard]] constexpr Float<F> negate(Float<F> x) {
  return Float<F>::from_bits(x.bits ^ F::sign_mask);
}
template <class F>
[[nodiscard]] constexpr Float<F> abs(Float<F> x) {
  return Float<F>::from_bits(x.bits & F::abs_mask);
}
template <class F>
[[nodiscard]] constexpr Float<F> copy_sign(Float<F> x, Float<F> y) {
  return Float<F>::from_bits((x.bits & F::abs_mask) | (y.bits & F::sign_mask));
}
template <class F>
[[nodiscard]] constexpr Float<F> copy_sign_neg(Float<F> x, Float<F> y) {
  return Float<F>::from_bits((x.bits & F::abs_mask) |
                             ((y.bits ^ F::sign_mask) & F::sign_mask));
}
template <class F>
[[nodiscard]] constexpr Float<F> copy_sign_xor(Float<F> x, Float<F> y) {
  return Float<F>::from_bits(x.bits ^ (y.bits & F::sign_mask));
}

namespace detail {

/// Canonical-NaN propagation shared by the two-operand ops.
template <class F>
[[nodiscard]] constexpr Float<F> propagate_nan(Float<F> a, Float<F> b, Flags& fl) {
  if (a.is_signaling_nan() || b.is_signaling_nan()) fl.raise(Flags::NV);
  return Float<F>::quiet_nan();
}

/// Magnitude-ordered addition core. Inputs are finite, non-zero unpacked
/// values in GRS space (sig << kGrsBits, MSB at man_bits + kGrsBits).
template <class F>
[[nodiscard]] constexpr Float<F> add_magnitudes(bool sign, int e_big, u64 sig_big,
                                                int e_small, u64 sig_small,
                                                RoundingMode rm, Flags& fl) {
  constexpr int M = F::man_bits;
  sig_small = shift_right_sticky(sig_small, e_big - e_small);
  u64 sum = sig_big + sig_small;
  int e = e_big;
  if (sum >= (u64{1} << (M + 1 + kGrsBits))) {
    sum = shift_right_sticky(sum, 1);
    ++e;
  }
  return round_pack<F>(sign, e, sum, rm, fl);
}

/// Magnitude-ordered subtraction core; |big| > |small| strictly.
template <class F>
[[nodiscard]] constexpr Float<F> sub_magnitudes(bool sign, int e_big, u64 sig_big,
                                                int e_small, u64 sig_small,
                                                RoundingMode rm, Flags& fl) {
  constexpr int M = F::man_bits;
  sig_small = shift_right_sticky(sig_small, e_big - e_small);
  u64 diff = sig_big - sig_small;
  // Normalize left; when sticky may be set (distance >= 2) at most one bit
  // of cancellation can occur, so the GRS bits stay meaningful.
  const int msb = 63 - std::countl_zero(diff);
  const int target = M + kGrsBits;
  int e = e_big;
  if (msb < target) {
    diff <<= (target - msb);
    e -= (target - msb);
  }
  return round_pack<F>(sign, e, diff, rm, fl);
}

}  // namespace detail

template <class F>
[[nodiscard]] constexpr Float<F> add(Float<F> a, Float<F> b, RoundingMode rm,
                                     Flags& fl) {
  using namespace detail;
  if (a.is_nan() || b.is_nan()) return propagate_nan(a, b, fl);
  if (a.is_inf()) {
    if (b.is_inf() && a.sign() != b.sign()) {
      fl.raise(Flags::NV);
      return Float<F>::quiet_nan();
    }
    return a;
  }
  if (b.is_inf()) return b;
  if (a.is_zero() && b.is_zero()) {
    if (a.sign() == b.sign()) return a;
    return Float<F>::zero(rm == RoundingMode::RDN);
  }
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;

  Unpacked ua = unpack_finite(a);
  Unpacked ub = unpack_finite(b);
  ua.sig <<= kGrsBits;
  ub.sig <<= kGrsBits;

  // Order by magnitude.
  const bool a_ge_b =
      (ua.e > ub.e) || (ua.e == ub.e && ua.sig >= ub.sig);
  const Unpacked& big = a_ge_b ? ua : ub;
  const Unpacked& small = a_ge_b ? ub : ua;

  if (ua.sign == ub.sign) {
    return add_magnitudes<F>(ua.sign, big.e, big.sig, small.e, small.sig, rm, fl);
  }
  if (ua.e == ub.e && ua.sig == ub.sig) {
    // Exact cancellation: +0, except -0 when rounding down.
    return Float<F>::zero(rm == RoundingMode::RDN);
  }
  return detail::sub_magnitudes<F>(big.sign, big.e, big.sig, small.e, small.sig,
                                   rm, fl);
}

template <class F>
[[nodiscard]] constexpr Float<F> sub(Float<F> a, Float<F> b, RoundingMode rm,
                                     Flags& fl) {
  return add(a, negate(b), rm, fl);
}

template <class F>
[[nodiscard]] constexpr Float<F> mul(Float<F> a, Float<F> b, RoundingMode rm,
                                     Flags& fl) {
  using namespace detail;
  if (a.is_nan() || b.is_nan()) return propagate_nan(a, b, fl);
  const bool sign = a.sign() != b.sign();
  if (a.is_inf() || b.is_inf()) {
    if (a.is_zero() || b.is_zero()) {
      fl.raise(Flags::NV);
      return Float<F>::quiet_nan();
    }
    return Float<F>::inf(sign);
  }
  if (a.is_zero() || b.is_zero()) return Float<F>::zero(sign);

  constexpr int M = F::man_bits;
  const Unpacked ua = unpack_finite(a);
  const Unpacked ub = unpack_finite(b);
  u128 prod = u128{ua.sig} * ub.sig;  // in [2^2M, 2^(2M+2))
  const int msb = 127 - clz128(prod);
  const int e = ua.e + ub.e + (msb - 2 * M);
  const int sh = msb - (M + kGrsBits);
  u64 sig = 0;
  if (sh > 0) {
    sig = static_cast<u64>(shift_right_sticky128(prod, sh));
  } else {
    sig = static_cast<u64>(prod << (-sh));
  }
  return round_pack<F>(sign, e, sig, rm, fl);
}

template <class F>
[[nodiscard]] constexpr Float<F> div(Float<F> a, Float<F> b, RoundingMode rm,
                                     Flags& fl) {
  using namespace detail;
  if (a.is_nan() || b.is_nan()) return propagate_nan(a, b, fl);
  const bool sign = a.sign() != b.sign();
  if (a.is_inf()) {
    if (b.is_inf()) {
      fl.raise(Flags::NV);
      return Float<F>::quiet_nan();
    }
    return Float<F>::inf(sign);
  }
  if (b.is_inf()) return Float<F>::zero(sign);
  if (b.is_zero()) {
    if (a.is_zero()) {
      fl.raise(Flags::NV);
      return Float<F>::quiet_nan();
    }
    fl.raise(Flags::DZ);
    return Float<F>::inf(sign);
  }
  if (a.is_zero()) return Float<F>::zero(sign);

  constexpr int M = F::man_bits;
  const Unpacked ua = unpack_finite(a);
  const Unpacked ub = unpack_finite(b);
  const u128 num = u128{ua.sig} << (M + kGrsBits + 1);
  u64 q = static_cast<u64>(num / ub.sig);
  const bool rem = (num % ub.sig) != 0;
  int e = ua.e - ub.e;
  if (q >= (u64{1} << (M + kGrsBits + 1))) {
    q = shift_right_sticky(q, 1);
  } else {
    --e;
  }
  if (rem) q |= 1;
  return round_pack<F>(sign, e, q, rm, fl);
}

namespace detail {

[[nodiscard]] constexpr u128 isqrt128(u128 n) {
  u128 rem = n;
  u128 root = 0;
  u128 bit = u128{1} << 126;
  while (bit > n) bit >>= 2;
  while (bit != 0) {
    if (rem >= root + bit) {
      rem -= root + bit;
      root = (root >> 1) + bit;
    } else {
      root >>= 1;
    }
    bit >>= 2;
  }
  return root;
}

}  // namespace detail

template <class F>
[[nodiscard]] constexpr Float<F> sqrt(Float<F> a, RoundingMode rm, Flags& fl) {
  using namespace detail;
  if (a.is_nan()) {
    if (a.is_signaling_nan()) fl.raise(Flags::NV);
    return Float<F>::quiet_nan();
  }
  if (a.is_zero()) return a;  // sqrt(+-0) = +-0
  if (a.sign()) {
    fl.raise(Flags::NV);
    return Float<F>::quiet_nan();
  }
  if (a.is_inf()) return a;

  constexpr int M = F::man_bits;
  const Unpacked ua = unpack_finite(a);
  const int r = ua.e & 1;
  const int k = (ua.e - r) >> 1;
  const u128 scaled = u128{ua.sig} << (r + M + 2 * kGrsBits);
  u64 s = static_cast<u64>(isqrt128(scaled));
  if (u128{s} * s != scaled) s |= 1;  // jam remainder into sticky
  return round_pack<F>(false, k, s, rm, fl);
}

/// Fused multiply-add: a * b + c with a single rounding.
/// Per the RISC-V spec, (0 * inf) + c raises NV even when c is a quiet NaN.
template <class F>
[[nodiscard]] constexpr Float<F> fma(Float<F> a, Float<F> b, Float<F> c,
                                     RoundingMode rm, Flags& fl) {
  using namespace detail;
  const bool mul_invalid = (a.is_inf() && b.is_zero()) || (a.is_zero() && b.is_inf());
  if (a.is_signaling_nan() || b.is_signaling_nan() || c.is_signaling_nan() ||
      mul_invalid) {
    fl.raise(Flags::NV);
    return Float<F>::quiet_nan();
  }
  if (a.is_nan() || b.is_nan() || c.is_nan()) return Float<F>::quiet_nan();

  const bool ps = a.sign() != b.sign();
  if (a.is_inf() || b.is_inf()) {
    if (c.is_inf() && c.sign() != ps) {
      fl.raise(Flags::NV);
      return Float<F>::quiet_nan();
    }
    return Float<F>::inf(ps);
  }
  if (c.is_inf()) return c;
  if (a.is_zero() || b.is_zero()) {
    if (c.is_zero()) {
      if (ps == c.sign()) return Float<F>::zero(ps);
      return Float<F>::zero(rm == RoundingMode::RDN);
    }
    return c;
  }

  constexpr int M = F::man_bits;
  constexpr int K = 2 * M + 8;  // anchor bit for the wide accumulator

  const Unpacked ua = unpack_finite(a);
  const Unpacked ub = unpack_finite(b);
  const u128 prod = u128{ua.sig} * ub.sig;
  const int pmsb = 127 - clz128(prod);
  u128 wp = prod << (K - pmsb);
  const int ep = ua.e + ub.e + (pmsb - 2 * M);  // exponent of anchor bit for product

  bool have_c = !c.is_zero();
  u128 wc = 0;
  int ec_anchor = 0;
  bool cs = c.sign();
  if (have_c) {
    const Unpacked uc = unpack_finite(c);
    wc = u128{uc.sig} << (K - M);
    ec_anchor = uc.e;
    cs = uc.sign;
  }

  bool rsign = ps;
  u128 wsum = 0;
  int e_anchor = ep;
  if (!have_c) {
    wsum = wp;
  } else {
    // Align the smaller-exponent operand under the larger one.
    u128 big = wp, small = wc;
    bool big_sign = ps, small_sign = cs;
    int d = ep - ec_anchor;
    if (d < 0 || (d == 0 && wc > wp)) {
      big = wc;
      small = wp;
      big_sign = cs;
      small_sign = ps;
      e_anchor = ec_anchor;
      d = -d;
    }
    small = shift_right_sticky128(small, d);
    if (big_sign == small_sign) {
      wsum = big + small;
      rsign = big_sign;
    } else if (big == small) {
      return Float<F>::zero(rm == RoundingMode::RDN);  // exact cancellation
    } else {
      wsum = big - small;
      rsign = big_sign;
    }
  }

  const int msb = 127 - clz128(wsum);
  const int e = e_anchor + (msb - K);
  const int sh = msb - (M + kGrsBits);
  u64 sig = 0;
  if (sh > 0) {
    sig = static_cast<u64>(shift_right_sticky128(wsum, sh));
  } else {
    sig = static_cast<u64>(wsum << (-sh));
  }
  return round_pack<F>(rsign, e, sig, rm, fl);
}

}  // namespace sfrv::fp
