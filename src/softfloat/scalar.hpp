// Host-side emulation value types: the analogue of the paper's new C type
// keywords (float8 / float16 / float16alt). Arithmetic routes through the
// bit-accurate library using a thread-local FP environment, so host code
// (golden references, the precision tuner) computes exactly what the
// simulated instruction stream computes.
#pragma once

#include "softfloat/arith.hpp"
#include "softfloat/compare.hpp"
#include "softfloat/convert.hpp"
#include "softfloat/host.hpp"

namespace sfrv::fp {

/// Thread-local floating-point environment (mirrors fcsr).
struct FpEnv {
  RoundingMode rm = RoundingMode::RNE;
  Flags flags;
};

[[nodiscard]] inline FpEnv& fp_env() {
  thread_local FpEnv env;
  return env;
}

/// Arithmetic value of format F with operator overloading.
template <class F>
class Scalar {
 public:
  constexpr Scalar() = default;
  constexpr explicit Scalar(Float<F> v) : v_(v) {}
  Scalar(double d) : v_(from_double<F>(d, fp_env().rm, fp_env().flags)) {}  // NOLINT: implicit by design, mirrors C float conversions

  [[nodiscard]] constexpr Float<F> raw() const { return v_; }
  [[nodiscard]] double to_double() const { return fp::to_double(v_); }

  friend Scalar operator+(Scalar a, Scalar b) {
    return Scalar{add(a.v_, b.v_, fp_env().rm, fp_env().flags)};
  }
  friend Scalar operator-(Scalar a, Scalar b) {
    return Scalar{sub(a.v_, b.v_, fp_env().rm, fp_env().flags)};
  }
  friend Scalar operator*(Scalar a, Scalar b) {
    return Scalar{mul(a.v_, b.v_, fp_env().rm, fp_env().flags)};
  }
  friend Scalar operator/(Scalar a, Scalar b) {
    return Scalar{div(a.v_, b.v_, fp_env().rm, fp_env().flags)};
  }
  friend Scalar operator-(Scalar a) { return Scalar{negate(a.v_)}; }

  Scalar& operator+=(Scalar o) { return *this = *this + o; }
  Scalar& operator-=(Scalar o) { return *this = *this - o; }
  Scalar& operator*=(Scalar o) { return *this = *this * o; }
  Scalar& operator/=(Scalar o) { return *this = *this / o; }

  friend bool operator==(Scalar a, Scalar b) {
    return feq(a.v_, b.v_, fp_env().flags);
  }
  friend bool operator<(Scalar a, Scalar b) {
    return flt(a.v_, b.v_, fp_env().flags);
  }
  friend bool operator<=(Scalar a, Scalar b) {
    return fle(a.v_, b.v_, fp_env().flags);
  }
  friend bool operator>(Scalar a, Scalar b) { return b < a; }
  friend bool operator>=(Scalar a, Scalar b) { return b <= a; }

  /// Fused multiply-add: *this = a * b + *this (single rounding).
  void fma_accumulate(Scalar a, Scalar b) {
    v_ = fp::fma(a.v_, b.v_, v_, fp_env().rm, fp_env().flags);
  }

  /// Convert to another format with the environment rounding mode.
  template <class To>
  [[nodiscard]] Scalar<To> to() const {
    return Scalar<To>{convert<To>(v_, fp_env().rm, fp_env().flags)};
  }

 private:
  Float<F> v_{};
};

using float8 = Scalar<Binary8>;        // paper keyword: float8
using float16 = Scalar<Binary16>;      // paper keyword: float16
using float16alt = Scalar<Binary16Alt>;  // paper keyword: float16alt
using float32 = Scalar<Binary32>;

}  // namespace sfrv::fp
