// Format descriptors for the smallFloat type family.
//
// The paper (Tagliavini et al., DATE 2019) defines three smaller-than-32-bit
// formats collectively called "smallFloat":
//   binary16    - IEEE 754 half precision      (1 sign, 5 exp, 10 mantissa)
//   binary16alt - bfloat16-style alternative   (1 sign, 8 exp,  7 mantissa)
//   binary8     - custom minifloat             (1 sign, 5 exp,  2 mantissa)
// binary32/binary64 are included as the standard F/D formats they interact
// with (conversions, expanding operations, golden references).
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>

namespace sfrv::fp {

namespace detail {
/// Terminal path for an out-of-range FpFormat tag: loud in debug builds,
/// declared unreachable in release so the dispatch switches compile to
/// straight jump tables with no fallback branch.
[[noreturn]] inline void invalid_format_tag() {
  assert(false && "invalid FpFormat tag");
  __builtin_unreachable();
}
}  // namespace detail

/// Compile-time description of a binary interchange floating-point format.
/// Every format trait below satisfies this shape; generic arithmetic in
/// arith.hpp is templated over it.
template <int Width, int ExpBits, int ManBits, typename StorageT>
struct FormatTraits {
  static constexpr int width = Width;
  static constexpr int exp_bits = ExpBits;
  static constexpr int man_bits = ManBits;
  using Storage = StorageT;

  static constexpr int bias = (1 << (ExpBits - 1)) - 1;
  static constexpr int emax = bias;              // max unbiased exponent
  static constexpr int emin = 1 - bias;          // min normal unbiased exponent
  static constexpr int exp_field_max = (1 << ExpBits) - 1;

  static constexpr std::uint64_t sign_mask = std::uint64_t{1} << (Width - 1);
  static constexpr std::uint64_t man_mask = (std::uint64_t{1} << ManBits) - 1;
  static constexpr std::uint64_t exp_mask =
      static_cast<std::uint64_t>(exp_field_max) << ManBits;
  static constexpr std::uint64_t abs_mask = exp_mask | man_mask;
  /// Quiet bit: MSB of the mantissa field.
  static constexpr std::uint64_t quiet_bit = std::uint64_t{1} << (ManBits - 1);

  static_assert(Width == 1 + ExpBits + ManBits, "format fields must fill the width");
  static_assert(sizeof(StorageT) * 8 >= static_cast<unsigned>(Width));
};

struct Binary8 : FormatTraits<8, 5, 2, std::uint8_t> {
  static constexpr std::string_view name = "binary8";
};
struct Binary16 : FormatTraits<16, 5, 10, std::uint16_t> {
  static constexpr std::string_view name = "binary16";
};
struct Binary16Alt : FormatTraits<16, 8, 7, std::uint16_t> {
  static constexpr std::string_view name = "binary16alt";
};
struct Binary32 : FormatTraits<32, 8, 23, std::uint32_t> {
  static constexpr std::string_view name = "binary32";
};
struct Binary64 : FormatTraits<64, 11, 52, std::uint64_t> {
  static constexpr std::string_view name = "binary64";
};

/// Runtime tag for the supported formats; used by the ISA layer and the
/// simulator to dispatch into the templated arithmetic. The IEEE formats
/// keep their original values (0..4) so predecoded tables, golden digests
/// and serialized reports stay stable; the posit formats (posit.hpp --
/// tapered precision, es = 2, NaR) are appended after them.
enum class FpFormat : std::uint8_t { F8, F16, F16Alt, F32, F64, P8, P16 };

/// Number of FpFormat tags. Every per-format runtime table derives its
/// dimension from this constant (see runtime.cpp / fastpath.cpp) so adding
/// a format is a compile error until each table gains a row, rather than a
/// silent out-of-bounds index.
inline constexpr int kNumFormats = 7;
static_assert(kNumFormats == static_cast<int>(FpFormat::P16) + 1,
              "kNumFormats must cover every FpFormat tag");

constexpr std::string_view format_name(FpFormat f) {
  switch (f) {
    case FpFormat::F8: return Binary8::name;
    case FpFormat::F16: return Binary16::name;
    case FpFormat::F16Alt: return Binary16Alt::name;
    case FpFormat::F32: return Binary32::name;
    case FpFormat::F64: return Binary64::name;
    case FpFormat::P8: return "posit8";
    case FpFormat::P16: return "posit16";
  }
  detail::invalid_format_tag();
}

constexpr int format_width(FpFormat f) {
  switch (f) {
    case FpFormat::F8:
    case FpFormat::P8: return 8;
    case FpFormat::F16:
    case FpFormat::F16Alt:
    case FpFormat::P16: return 16;
    case FpFormat::F32: return 32;
    case FpFormat::F64: return 64;
  }
  detail::invalid_format_tag();
}

/// True for the posit tags, whose bit patterns are NOT FormatTraits floats
/// (no dispatch_format; posit.hpp provides their arithmetic).
constexpr bool is_posit_format(FpFormat f) {
  return f == FpFormat::P8 || f == FpFormat::P16;
}

/// Invoke `fn.template operator()<F>()` with the trait type for a runtime
/// tag. IEEE formats only: posit tags have no FormatTraits instantiation and
/// take the invalid-tag path -- callers that can see posits must branch on
/// is_posit_format() first.
template <typename Fn>
constexpr decltype(auto) dispatch_format(FpFormat f, Fn&& fn) {
  switch (f) {
    case FpFormat::F8: return fn.template operator()<Binary8>();
    case FpFormat::F16: return fn.template operator()<Binary16>();
    case FpFormat::F16Alt: return fn.template operator()<Binary16Alt>();
    case FpFormat::F32: return fn.template operator()<Binary32>();
    case FpFormat::F64: return fn.template operator()<Binary64>();
    case FpFormat::P8:
    case FpFormat::P16: break;
  }
  detail::invalid_format_tag();
}

}  // namespace sfrv::fp
