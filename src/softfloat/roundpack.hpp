// Internal rounding/packing machinery shared by all arithmetic routines.
//
// Convention: intermediate results are carried as
//     value = (-1)^sign * sig * 2^(e - (F::man_bits + kGrsBits))
// with `sig` normalized so its most significant set bit is at position
// F::man_bits + kGrsBits (i.e. the value reads 1.xxx * 2^e) and the bottom
// kGrsBits holding guard/round/sticky information.
#pragma once

#include <bit>
#include <cstdint>

#include "softfloat/flags.hpp"
#include "softfloat/float.hpp"

namespace sfrv::fp::detail {

inline constexpr int kGrsBits = 3;

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Right shift preserving stickiness: any bit shifted out ORs into bit 0.
[[nodiscard]] constexpr u64 shift_right_sticky(u64 x, int n) {
  if (n <= 0) return x;
  if (n >= 64) return x != 0 ? 1 : 0;
  const u64 lost = x & ((u64{1} << n) - 1);
  return (x >> n) | (lost != 0 ? 1 : 0);
}

[[nodiscard]] constexpr u128 shift_right_sticky128(u128 x, int n) {
  if (n <= 0) return x;
  if (n >= 128) return x != 0 ? 1 : 0;
  const u128 lost = x & ((u128{1} << n) - 1);
  return (x >> n) | (lost != 0 ? 1 : 0);
}

[[nodiscard]] constexpr int clz128(u128 x) {
  const u64 hi = static_cast<u64>(x >> 64);
  if (hi != 0) return std::countl_zero(hi);
  return 64 + std::countl_zero(static_cast<u64>(x));
}

/// Should the magnitude be incremented given the rounding bits?
/// `round_bits` is the low kGrsBits of the significand, `lsb` the bit that
/// will become the result LSB.
[[nodiscard]] constexpr bool round_increment(RoundingMode rm, bool sign,
                                             unsigned round_bits, bool lsb) {
  constexpr unsigned half = 1u << (kGrsBits - 1);
  switch (rm) {
    case RoundingMode::RNE:
      return round_bits > half || (round_bits == half && lsb);
    case RoundingMode::RTZ:
      return false;
    case RoundingMode::RDN:
      return sign && round_bits != 0;
    case RoundingMode::RUP:
      return !sign && round_bits != 0;
    case RoundingMode::RMM:
      return round_bits >= half;
  }
  return false;
}

/// Round and pack a normalized intermediate (see file comment for the
/// contract). Handles overflow, subnormals and underflow. Tininess is
/// detected after rounding, matching RISC-V behaviour.
template <class F>
[[nodiscard]] constexpr Float<F> round_pack(bool sign, int e, u64 sig,
                                            RoundingMode rm, Flags& fl) {
  constexpr int M = F::man_bits;
  if (sig == 0) return Float<F>::zero(sign);

  bool subnormal_path = false;
  if (e < F::emin) {
    const int shift = F::emin - e;
    sig = shift_right_sticky(sig, shift);
    e = F::emin;
    subnormal_path = true;
  }

  const unsigned round_bits = static_cast<unsigned>(sig & ((1u << kGrsBits) - 1));
  const bool lsb = (sig >> kGrsBits) & 1;
  sig >>= kGrsBits;
  if (round_increment(rm, sign, round_bits, lsb)) ++sig;
  if (round_bits != 0) fl.raise(Flags::NX);

  if (subnormal_path) {
    // sig <= 2^M here; a carry to exactly 2^M is the smallest normal, which
    // from_parts() packs correctly (mantissa carries into the exponent field).
    if (sig < (u64{1} << M) && round_bits != 0) fl.raise(Flags::UF);
    return Float<F>::from_parts(sign, 0, sig);
  }

  if (sig >= (u64{1} << (M + 1))) {  // rounding carried into a new binade
    sig >>= 1;                       // even value, nothing lost
    ++e;
  }
  if (e > F::emax) {
    fl.raise(Flags::OF);
    fl.raise(Flags::NX);
    const bool to_inf = (rm == RoundingMode::RNE) || (rm == RoundingMode::RMM) ||
                        (rm == RoundingMode::RUP && !sign) ||
                        (rm == RoundingMode::RDN && sign);
    return to_inf ? Float<F>::inf(sign) : Float<F>::max_finite(sign);
  }
  return Float<F>::from_parts(sign, static_cast<unsigned>(e + F::bias),
                              sig - (u64{1} << M));
}

/// Unpacked finite non-zero value: value = (-1)^sign * sig * 2^(e - man_bits),
/// with sig normalized to [2^man_bits, 2^(man_bits+1)) even for subnormal
/// inputs (their exponent is decreased accordingly).
struct Unpacked {
  bool sign = false;
  int e = 0;
  u64 sig = 0;
};

template <class F>
[[nodiscard]] constexpr Unpacked unpack_finite(Float<F> x) {
  Unpacked u;
  u.sign = x.sign();
  const unsigned ef = x.exp_field();
  u64 man = x.man_field();
  if (ef == 0) {
    // Subnormal: normalize so the hidden-bit position is occupied.
    const int lead = std::countl_zero(man) - (64 - F::man_bits - 1);
    u.sig = man << lead;
    u.e = F::emin - lead;
  } else {
    u.sig = man | (u64{1} << F::man_bits);
    u.e = static_cast<int>(ef) - F::bias;
  }
  return u;
}

}  // namespace sfrv::fp::detail
