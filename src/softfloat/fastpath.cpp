// MathBackend::Fast: bit- and fflags-identical accelerated table entries.
//
// Two techniques, chosen per (operation, format) by whether identity with
// the guard/round/sticky path can be *proven*:
//
//  * binary8 -- the whole operand space is 256 patterns, so every binary
//    operation is an exhaustive 256x256 LUT per rounding mode (result byte +
//    fflags byte packed in a uint16), and unary ops / compares / converts are
//    256-entry (or 65536-entry for the f16->f8 direction) tables. The tables
//    are generated on first use FROM the Grs routines, so they are correct by
//    construction; the exhaustive equivalence suite re-checks every entry.
//
//  * f16 / f16alt / f32 -- host binary64 arithmetic with the result narrowed
//    through the library's own single-rounding converter. The argument (see
//    docs/formats.md for the full version):
//      - add/sub/mul: the double intermediate is EXACT (for a format with
//        precision p and exponent-field distance d, the sum needs p + d + 1
//        significant bits, guarded to <= 53; the product needs 2p <= 48).
//        Narrowing an exact value with one rounding is by definition the
//        single-rounding result, and the flags come from that one rounding.
//      - div/sqrt: the host result is correctly rounded to 53 >= 2p + 2 bits,
//        and quotients/roots of p-bit operands lie outside an exclusion zone
//        of relative width 2^-(2p+2) around every p-bit breakpoint unless
//        exactly representable (Figueroa), so the second rounding and the
//        NX decision are unchanged. Subnormal-range quotients fall back to
//        Grs rather than stretching the argument.
//    Specials (NaN/inf/zero operands), FMA (no exclusion zone), f64 (the
//    host width), and every unproven case delegate to the Grs entries.
//    The host FP environment must be in its default round-to-nearest mode;
//    the simulator never changes it.
#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>

#include "softfloat/arith.hpp"
#include "softfloat/compare.hpp"
#include "softfloat/convert.hpp"
#include "softfloat/host.hpp"
#include "softfloat/posit.hpp"
#include "softfloat/runtime.hpp"

namespace sfrv::fp {

namespace {

template <class F>
Float<F> as(std::uint64_t bits) {
  return Float<F>::from_bits(bits);
}

constexpr std::size_t fidx(FpFormat f) { return static_cast<std::size_t>(f); }

constexpr int kNumRm = 5;

// ---- binary8 exhaustive LUTs ------------------------------------------------
// Entry layout for 8-bit results: result byte | fflags byte << 8.

struct F8BinLut {
  std::uint16_t e[256 * 256];
};
struct F8UnRmLut {
  std::uint16_t e[kNumRm][256];
};

/// Lazily published per-rounding-mode table planes: each (op, rm) plane is
/// generated on first use (a few milliseconds each, not per-process-start)
/// and installed with a release CAS; the losing racer's copy is dropped.
/// Planes are never freed -- they back static-duration function tables.
struct LazyPlanes {
  std::atomic<const std::uint16_t*> p[kNumRm]{};

  template <class Fill>
  const std::uint16_t* get(RoundingMode rm, std::size_t n, Fill fill) {
    const int i = static_cast<int>(rm);
    if (const std::uint16_t* q = p[i].load(std::memory_order_acquire)) {
      return q;
    }
    auto fresh = std::make_unique<std::uint16_t[]>(n);
    fill(rm, fresh.get());
    const std::uint16_t* expect = nullptr;
    if (p[i].compare_exchange_strong(expect, fresh.get(),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
      return fresh.release();
    }
    return expect;
  }
};

/// Exhaustive 256x256 plane for one two-operand Grs routine in one mode.
template <auto OpFn>
const std::uint16_t* f8_bin_plane(RoundingMode rm) {
  static LazyPlanes planes;
  return planes.get(rm, 256 * 256, [](RoundingMode mode, std::uint16_t* t) {
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        Flags fl;
        const auto r = OpFn(as<Binary8>(a), as<Binary8>(b), mode, fl);
        t[(a << 8) | b] = static_cast<std::uint16_t>(r.bits | (fl.bits << 8));
      }
    }
  });
}

template <auto OpFn>
std::uint64_t f8_bin(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  const std::uint16_t e = f8_bin_plane<OpFn>(rm)[((a & 0xff) << 8) | (b & 0xff)];
  fl.bits |= static_cast<std::uint8_t>(e >> 8);
  return e & 0xff;
}

/// Rounding-mode-independent table (min/max, compares).
template <auto OpFn>
const F8BinLut& f8_norm_lut() {
  static const std::unique_ptr<const F8BinLut> lut = [] {
    auto t = std::make_unique<F8BinLut>();
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        Flags fl;
        const auto r = OpFn(as<Binary8>(a), as<Binary8>(b), fl);
        std::uint8_t res;
        if constexpr (std::is_same_v<decltype(r), const bool>) {
          res = r ? 1 : 0;
        } else {
          res = r.bits;
        }
        t->e[(a << 8) | b] = static_cast<std::uint16_t>(res | (fl.bits << 8));
      }
    }
    return t;
  }();
  return *lut;
}

// fmin/fmax have deduced non-const return; wrap them so decltype is stable.
constexpr F8 f8_min(F8 a, F8 b, Flags& fl) { return fmin(a, b, fl); }
constexpr F8 f8_max(F8 a, F8 b, Flags& fl) { return fmax(a, b, fl); }
constexpr bool f8_feq(F8 a, F8 b, Flags& fl) { return feq(a, b, fl); }
constexpr bool f8_flt(F8 a, F8 b, Flags& fl) { return flt(a, b, fl); }
constexpr bool f8_fle(F8 a, F8 b, Flags& fl) { return fle(a, b, fl); }

template <auto OpFn>
std::uint64_t f8_minmax(std::uint64_t a, std::uint64_t b, RoundingMode,
                        Flags& fl) {
  const std::uint16_t e = f8_norm_lut<OpFn>().e[((a & 0xff) << 8) | (b & 0xff)];
  fl.bits |= static_cast<std::uint8_t>(e >> 8);
  return e & 0xff;
}

template <auto CmpFn>
bool f8_cmp(std::uint64_t a, std::uint64_t b, Flags& fl) {
  const std::uint16_t e = f8_norm_lut<CmpFn>().e[((a & 0xff) << 8) | (b & 0xff)];
  fl.bits |= static_cast<std::uint8_t>(e >> 8);
  return (e & 1) != 0;
}

const F8UnRmLut& f8_sqrt_lut() {
  static const F8UnRmLut lut = [] {
    F8UnRmLut t{};
    for (int rm = 0; rm < kNumRm; ++rm) {
      for (unsigned a = 0; a < 256; ++a) {
        Flags fl;
        const F8 r = sqrt(as<Binary8>(a), static_cast<RoundingMode>(rm), fl);
        t.e[rm][a] = static_cast<std::uint16_t>(r.bits | (fl.bits << 8));
      }
    }
    return t;
  }();
  return lut;
}

std::uint64_t f8_sqrt(std::uint64_t a, RoundingMode rm, Flags& fl) {
  const std::uint16_t e = f8_sqrt_lut().e[static_cast<int>(rm)][a & 0xff];
  fl.bits |= static_cast<std::uint8_t>(e >> 8);
  return e & 0xff;
}

std::uint16_t f8_classify(std::uint64_t a) {
  static const std::array<std::uint16_t, 256> lut = [] {
    std::array<std::uint16_t, 256> t{};
    for (unsigned i = 0; i < 256; ++i) t[i] = classify(as<Binary8>(i));
    return t;
  }();
  return lut[a & 0xff];
}

/// FP -> int32/uint32: 256 inputs x 5 rounding modes, value + flags.
template <class Int, Int (*Fn)(F8, RoundingMode, Flags&)>
struct F8ToIntLut {
  Int v[kNumRm][256];
  std::uint8_t fl[kNumRm][256];

  static const F8ToIntLut& get() {
    static const F8ToIntLut lut = [] {
      F8ToIntLut t{};
      for (int rm = 0; rm < kNumRm; ++rm) {
        for (unsigned a = 0; a < 256; ++a) {
          Flags fl;
          t.v[rm][a] = Fn(as<Binary8>(a), static_cast<RoundingMode>(rm), fl);
          t.fl[rm][a] = fl.bits;
        }
      }
      return t;
    }();
    return lut;
  }
};

std::int32_t f8_to_i32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  const auto& t = F8ToIntLut<std::int32_t, &to_int32<Binary8>>::get();
  fl.bits |= t.fl[static_cast<int>(rm)][a & 0xff];
  return t.v[static_cast<int>(rm)][a & 0xff];
}

std::uint32_t f8_to_u32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  const auto& t = F8ToIntLut<std::uint32_t, &to_uint32<Binary8>>::get();
  fl.bits |= t.fl[static_cast<int>(rm)][a & 0xff];
  return t.v[static_cast<int>(rm)][a & 0xff];
}

// ---- binary8 conversion LUTs ------------------------------------------------

/// f8 -> wider format: widening is exact, so the table is rounding-mode
/// independent (flags only fire for a signaling NaN input).
template <class To>
struct F8WidenLut {
  typename To::Storage bits[256];
  std::uint8_t fl[256];

  static const F8WidenLut& get() {
    static const F8WidenLut lut = [] {
      F8WidenLut t{};
      for (unsigned a = 0; a < 256; ++a) {
        Flags fl;
        t.bits[a] = convert<To>(as<Binary8>(a), RoundingMode::RNE, fl).bits;
        t.fl[a] = fl.bits;
      }
      return t;
    }();
    return lut;
  }
};

template <class To>
std::uint64_t f8_widen_cvt(std::uint64_t a, RoundingMode, Flags& fl) {
  const auto& t = F8WidenLut<To>::get();
  fl.bits |= t.fl[a & 0xff];
  return t.bits[a & 0xff];
}

/// 16-bit format -> f8: exhaustive over the 65536 source patterns per mode.
template <class From>
const std::uint16_t* f8_narrow_plane(RoundingMode rm) {
  static LazyPlanes planes;
  return planes.get(rm, 65536, [](RoundingMode mode, std::uint16_t* t) {
    for (unsigned a = 0; a < 65536; ++a) {
      Flags fl;
      const F8 r = convert<Binary8>(as<From>(a), mode, fl);
      t[a] = static_cast<std::uint16_t>(r.bits | (fl.bits << 8));
    }
  });
}

template <class From>
std::uint64_t f8_narrow_cvt(std::uint64_t a, RoundingMode rm, Flags& fl) {
  const std::uint16_t e = f8_narrow_plane<From>(rm)[a & 0xffff];
  fl.bits |= static_cast<std::uint8_t>(e >> 8);
  return e & 0xff;
}

// ---- binary8 packed-lane entries --------------------------------------------

/// Shared lane loop over a 256x256 result+flags table.
std::uint64_t v_f8_lanes(const std::uint16_t* t, std::uint64_t a,
                         std::uint64_t b, int lanes, bool rep, Flags& fl) {
  std::uint64_t out = 0;
  unsigned acc = 0;
  const unsigned b0 = static_cast<unsigned>(b & 0xff);
  for (int l = 0; l < lanes; ++l) {
    const unsigned al = static_cast<unsigned>((a >> (8 * l)) & 0xff);
    const unsigned bl =
        rep ? b0 : static_cast<unsigned>((b >> (8 * l)) & 0xff);
    const std::uint16_t e = t[(al << 8) | bl];
    acc |= e >> 8;
    out |= static_cast<std::uint64_t>(e & 0xff) << (8 * l);
  }
  fl.bits |= static_cast<std::uint8_t>(acc);
  return out;
}

template <auto OpFn>
std::uint64_t v_f8_bin(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                       RoundingMode rm, Flags& fl) {
  return v_f8_lanes(f8_bin_plane<OpFn>(rm), a, b, lanes, rep, fl);
}

template <auto OpFn>
std::uint64_t v_f8_minmax(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                          RoundingMode, Flags& fl) {
  return v_f8_lanes(f8_norm_lut<OpFn>().e, a, b, lanes, rep, fl);
}

std::uint64_t v_f8_sqrt(std::uint64_t a, int lanes, RoundingMode rm,
                        Flags& fl) {
  const std::uint16_t* t = f8_sqrt_lut().e[static_cast<int>(rm)];
  std::uint64_t out = 0;
  unsigned acc = 0;
  for (int l = 0; l < lanes; ++l) {
    const std::uint16_t e = t[(a >> (8 * l)) & 0xff];
    acc |= e >> 8;
    out |= static_cast<std::uint64_t>(e & 0xff) << (8 * l);
  }
  fl.bits |= static_cast<std::uint8_t>(acc);
  return out;
}

template <auto CmpFn>
std::uint32_t v_f8_cmp(std::uint64_t a, std::uint64_t b, int lanes, Flags& fl) {
  const std::uint16_t* t = f8_norm_lut<CmpFn>().e;
  std::uint32_t mask = 0;
  unsigned acc = 0;
  for (int l = 0; l < lanes; ++l) {
    const unsigned al = static_cast<unsigned>((a >> (8 * l)) & 0xff);
    const unsigned bl = static_cast<unsigned>((b >> (8 * l)) & 0xff);
    const std::uint16_t e = t[(al << 8) | bl];
    acc |= e >> 8;
    if ((e & 1) != 0) mask |= 1u << l;
  }
  fl.bits |= static_cast<std::uint8_t>(acc);
  return mask;
}

// ---- host-double fast path (f16 / f16alt / f32) -----------------------------

enum class HOp : std::uint8_t { Add, Sub, Mul, Div };

template <class F>
struct FmtTag;
template <>
struct FmtTag<Binary8> {
  static constexpr FpFormat value = FpFormat::F8;
};
template <>
struct FmtTag<Binary16> {
  static constexpr FpFormat value = FpFormat::F16;
};
template <>
struct FmtTag<Binary16Alt> {
  static constexpr FpFormat value = FpFormat::F16Alt;
};
template <>
struct FmtTag<Binary32> {
  static constexpr FpFormat value = FpFormat::F32;
};

/// Exact widening to host double of a *any* bit pattern of F.
/// binary16 goes through a 64K table (its layout needs re-biasing work);
/// binary16alt is a bfloat16, i.e. the high half of a binary32; binary32 is
/// a plain host float.
template <class F>
double widen(std::uint64_t bits) {
  if constexpr (std::is_same_v<F, Binary8>) {
    static const std::array<double, 256> t = [] {
      std::array<double, 256> a{};
      for (unsigned i = 0; i < 256; ++i) a[i] = to_double(as<Binary8>(i));
      return a;
    }();
    return t[bits & 0xff];
  } else if constexpr (std::is_same_v<F, Binary16>) {
    static const std::unique_ptr<const std::array<double, 65536>> t = [] {
      auto a = std::make_unique<std::array<double, 65536>>();
      for (unsigned i = 0; i < 65536; ++i) (*a)[i] = to_double(as<Binary16>(i));
      return a;
    }();
    return (*t)[bits & 0xffff];
  } else if constexpr (std::is_same_v<F, Binary16Alt>) {
    return static_cast<double>(std::bit_cast<float>(
        static_cast<std::uint32_t>(bits & 0xffff) << 16));
  } else {
    static_assert(std::is_same_v<F, Binary32>);
    return static_cast<double>(
        std::bit_cast<float>(static_cast<std::uint32_t>(bits)));
  }
}

/// Grs recomputation for the delegated cases.
template <class F, HOp Op>
std::uint64_t grs_bin(Float<F> a, Float<F> b, RoundingMode rm, Flags& fl) {
  if constexpr (Op == HOp::Add) return add(a, b, rm, fl).bits;
  if constexpr (Op == HOp::Sub) return sub(a, b, rm, fl).bits;
  if constexpr (Op == HOp::Mul) return mul(a, b, rm, fl).bits;
  if constexpr (Op == HOp::Div) return div(a, b, rm, fl).bits;
}

/// 2^(F::emin + 1) as a host double: the fast division path delegates
/// subnormal-range quotients below this bound back to Grs.
template <class F>
constexpr double subnormal_guard() {
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(1023 + F::emin + 1) << 52);
}

template <class F, HOp Op>
std::uint64_t fast_bin(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                       Flags& fl) {
  const auto fa = as<F>(a);
  const auto fb = as<F>(b);
  // Specials take the Grs path: NaN propagation/canonicalization, inf and
  // signed-zero rules (including DZ for division) live once, there.
  if (!fa.is_finite() || !fb.is_finite() || fa.is_zero() || fb.is_zero()) {
    return grs_bin<F, Op>(fa, fb, rm, fl);
  }
  if constexpr (Op == HOp::Add || Op == HOp::Sub) {
    // The double sum must be exact: with p = man_bits + 1 significand bits
    // and exponent-field distance d it needs p + d + 1 <= 53 bits. Only the
    // wide-exponent formats (f16alt, f32) can exceed that.
    const int ea = fa.exp_field() == 0 ? 1 : static_cast<int>(fa.exp_field());
    const int eb = fb.exp_field() == 0 ? 1 : static_cast<int>(fb.exp_field());
    const int d = ea > eb ? ea - eb : eb - ea;
    if (d > 52 - (F::man_bits + 1)) return grs_bin<F, Op>(fa, fb, rm, fl);
  }
  const double da = widen<F>(a);
  const double db = widen<F>(b);
  double r;
  if constexpr (Op == HOp::Add) {
    r = da + db;
  } else if constexpr (Op == HOp::Sub) {
    r = da - db;
  } else if constexpr (Op == HOp::Mul) {
    r = da * db;
  } else {
    r = da / db;
  }
  if constexpr (Op == HOp::Add || Op == HOp::Sub) {
    // The sum is exact here, so r == 0 is exact cancellation of non-zero
    // operands: +0, except -0 when rounding down (the Grs add rule). The
    // host sign of r must not be trusted (host RNE gives +0 always).
    if (r == 0) return Float<F>::zero(rm == RoundingMode::RDN).bits;
  }
  if constexpr (Op == HOp::Div) {
    // Subnormal-range quotients: the exclusion-zone argument thins out with
    // the reduced precision; recompute rather than prove.
    if (r < subnormal_guard<F>() && r > -subnormal_guard<F>()) {
      return grs_bin<F, Op>(fa, fb, rm, fl);
    }
  }
  return from_double<F>(r, rm, fl).bits;
}

template <class F>
std::uint64_t fast_sqrt(std::uint64_t a, RoundingMode rm, Flags& fl) {
  const auto fa = as<F>(a);
  if (!fa.is_finite() || fa.is_zero() || fa.sign()) {
    return sqrt(fa, rm, fl).bits;
  }
  // Positive finite: host sqrt is correctly rounded to 53 >= 2p + 2 bits and
  // the result is always in the normal range of F.
  return from_double<F>(std::sqrt(widen<F>(a)), rm, fl).bits;
}

/// Fused multiply-add, fast when the double intermediate is provably EXACT.
/// The product of two p-bit values needs 2p <= 48 significant bits, so
/// da * db is always exact; the sum (a*b) + c is exact whenever the combined
/// bit span -- from the lower of the two scale exponents to the higher of
/// the two top bits, plus one carry bit -- fits in 53. Under the guard there
/// is no intermediate rounding at all, so narrowing the exact value is the
/// single rounding and carries the exact flags. Specials, zeros and
/// wide-span operands delegate to the Grs fma. (For binary8 the guard is
/// provably always satisfied; for binary32 it admits the accumulation case
/// |a*b| ~ |c| that dominates the kernels.)
template <class F>
std::uint64_t fast_fma(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                       RoundingMode rm, Flags& fl) {
  const auto fa = as<F>(a);
  const auto fb = as<F>(b);
  const auto fc = as<F>(c);
  if (!fa.is_finite() || !fb.is_finite() || !fc.is_finite() || fa.is_zero() ||
      fb.is_zero() || fc.is_zero()) {
    return fma(fa, fb, fc, rm, fl).bits;
  }
  constexpr int P = F::man_bits + 1;
  // Scale exponents share the offset 2 * (bias + man_bits): s1 for the
  // product, s2 for the addend. Subnormals (field 0) behave as field 1 with
  // a shorter significand, so the span bound stays an upper bound.
  const auto ee = [](unsigned f) { return f == 0 ? 1 : static_cast<int>(f); };
  const int s1 = ee(fa.exp_field()) + ee(fb.exp_field());
  const int s2 = ee(fc.exp_field()) + F::bias + F::man_bits;
  const int top = std::max(s1 + 2 * P, s2 + P);
  const int bot = std::min(s1, s2);
  if (top - bot > 52) return fma(fa, fb, fc, rm, fl).bits;
  const double r = widen<F>(a) * widen<F>(b) + widen<F>(c);
  // Exact cancellation of non-zero product and addend: Grs fma's zero rule.
  if (r == 0) return Float<F>::zero(rm == RoundingMode::RDN).bits;
  return from_double<F>(r, rm, fl).bits;
}

template <class F>
constexpr std::uint64_t lane_mask() {
  return F::width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << F::width) - 1);
}

template <class F, HOp Op>
std::uint64_t v_fast_bin(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                         RoundingMode rm, Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  const std::uint64_t b0 = b & lane_mask<F>();
  for (int l = 0; l < lanes; ++l) {
    const std::uint64_t al = (a >> (l * w)) & lane_mask<F>();
    const std::uint64_t bl = rep ? b0 : ((b >> (l * w)) & lane_mask<F>());
    out |= fast_bin<F, Op>(al, bl, rm, fl) << (l * w);
  }
  return out;
}

template <class F>
std::uint64_t v_fast_sqrt(std::uint64_t a, int lanes, RoundingMode rm,
                          Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    out |= fast_sqrt<F>((a >> (l * w)) & lane_mask<F>(), rm, fl) << (l * w);
  }
  return out;
}

template <class F>
std::uint64_t v_fast_mac(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                         int lanes, bool rep, RoundingMode rm, Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  const std::uint64_t b0 = b & lane_mask<F>();
  for (int l = 0; l < lanes; ++l) {
    const std::uint64_t al = (a >> (l * w)) & lane_mask<F>();
    const std::uint64_t bl = rep ? b0 : ((b >> (l * w)) & lane_mask<F>());
    const std::uint64_t dl = (d >> (l * w)) & lane_mask<F>();
    out |= fast_fma<F>(al, bl, dl, rm, fl) << (l * w);
  }
  return out;
}

/// Exact widening of one lane to binary32 *bits* (operand known finite).
template <class F>
std::uint32_t widen_f32_bits(std::uint64_t bits) {
  if constexpr (std::is_same_v<F, Binary16Alt>) {
    return static_cast<std::uint32_t>(bits & 0xffff) << 16;
  } else {
    return std::bit_cast<std::uint32_t>(static_cast<float>(widen<F>(bits)));
  }
}

/// Expanding dot product: the Grs path converts each lane to binary32
/// (exact, flag-free for finite lanes) and chains binary32 fmas. The fast
/// path widens through tables/casts and runs the guarded-exact binary32 fma
/// per step; any non-finite lane falls back wholesale so NaN
/// canonicalization and NV stay with the Grs code.
template <class F>
std::uint64_t v_fast_dotp(std::uint64_t a, std::uint64_t b,
                          std::uint64_t acc32, int lanes, bool rep,
                          RoundingMode rm, Flags& fl) {
  constexpr int w = F::width;
  const auto grs_dotp = rt_vec_ops(FmtTag<F>::value).dotp;
  const std::uint64_t b0 = b & lane_mask<F>();
  for (int l = 0; l < lanes; ++l) {
    const std::uint64_t al = (a >> (l * w)) & lane_mask<F>();
    const std::uint64_t bl = rep ? b0 : ((b >> (l * w)) & lane_mask<F>());
    if (!as<F>(al).is_finite() || !as<F>(bl).is_finite()) {
      return grs_dotp(a, b, acc32, lanes, rep, rm, fl);
    }
  }
  std::uint64_t acc = acc32;
  const std::uint32_t wb0 = widen_f32_bits<F>(b0);
  for (int l = 0; l < lanes; ++l) {
    const std::uint32_t wa =
        widen_f32_bits<F>((a >> (l * w)) & lane_mask<F>());
    const std::uint32_t wb =
        rep ? wb0 : widen_f32_bits<F>((b >> (l * w)) & lane_mask<F>());
    acc = fast_fma<Binary32>(wa, wb, acc, rm, fl);
  }
  return acc;
}

/// 16-bit -> binary32 widening: exact, so a host float cast of the exact
/// double suffices; NaNs delegate for canonicalization/NV.
template <class From>
std::uint64_t fast_widen_to_f32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  const auto fa = as<From>(a);
  if (fa.is_nan()) return convert<Binary32>(fa, rm, fl).bits;
  return std::bit_cast<std::uint32_t>(static_cast<float>(widen<From>(a)));
}

/// ExSdotp fast entry: the exact widening runs through the Grs converter
/// (identical flags, including NV for signaling-NaN lanes), and each wide
/// accumulation step is the guarded-exact host fma -- which delegates its own
/// special/wide-span cases to Grs internally, so no wholesale fallback is
/// needed and the lane order matches the Grs entry step for step.
template <class F, class Wide>
std::uint64_t v_fast_exsdotp(std::uint64_t a, std::uint64_t b,
                             std::uint64_t acc, int lanes, bool rep,
                             RoundingMode rm, Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  std::uint64_t wb0 = 0;
  if (rep) {
    wb0 = convert<Wide>(as<F>(b & lane_mask<F>()), RoundingMode::RNE, fl).bits;
  }
  for (int wl = 0; 2 * wl < lanes; ++wl) {
    std::uint64_t accl = (acc >> (wl * Wide::width)) & lane_mask<Wide>();
    const int k = lanes - 2 * wl < 2 ? lanes - 2 * wl : 2;
    for (int i = 0; i < k; ++i) {
      const int l = 2 * wl + i;
      const std::uint64_t wa =
          convert<Wide>(as<F>((a >> (l * w)) & lane_mask<F>()),
                        RoundingMode::RNE, fl)
              .bits;
      const std::uint64_t wb =
          rep ? wb0
              : convert<Wide>(as<F>((b >> (l * w)) & lane_mask<F>()),
                              RoundingMode::RNE, fl)
                    .bits;
      accl = fast_fma<Wide>(wa, wb, accl, rm, fl);
    }
    out |= accl << (wl * Wide::width);
  }
  return out;
}

// ---- posit8 exhaustive LUTs -------------------------------------------------
// Posit arithmetic has one rounding attitude and raises no flags, so a single
// 256x256 result plane per operation covers the entire operand space (the
// binary8 plane generator's layout, minus the per-rm and flags dimensions).
// Generated from the integer-exact posit core, so correct by construction;
// the exhaustive posit8 suite re-checks every entry against the oracle.

template <auto OpFn>
const std::uint8_t* p8_bin_lut() {
  static const std::unique_ptr<const std::uint8_t[]> lut = [] {
    auto t = std::make_unique<std::uint8_t[]>(256 * 256);
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        t[(a << 8) | b] = static_cast<std::uint8_t>(OpFn(a, b));
      }
    }
    return t;
  }();
  return lut.get();
}

template <auto OpFn>
std::uint64_t p8_bin(std::uint64_t a, std::uint64_t b, RoundingMode, Flags&) {
  return p8_bin_lut<OpFn>()[((a & 0xff) << 8) | (b & 0xff)];
}

template <auto CmpFn>
bool p8_cmp(std::uint64_t a, std::uint64_t b, Flags&) {
  return p8_bin_lut<CmpFn>()[((a & 0xff) << 8) | (b & 0xff)] != 0;
}

std::uint64_t p8_sqrt(std::uint64_t a, RoundingMode, Flags&) {
  static const std::array<std::uint8_t, 256> lut = [] {
    std::array<std::uint8_t, 256> t{};
    for (unsigned i = 0; i < 256; ++i)
      t[i] = static_cast<std::uint8_t>(posit_sqrt<Posit8>(i));
    return t;
  }();
  return lut[a & 0xff];
}

template <auto OpFn>
std::uint64_t v_p8_bin(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                       RoundingMode, Flags&) {
  const std::uint8_t* t = p8_bin_lut<OpFn>();
  std::uint64_t out = 0;
  const unsigned b0 = static_cast<unsigned>(b & 0xff);
  for (int l = 0; l < lanes; ++l) {
    const unsigned al = static_cast<unsigned>((a >> (8 * l)) & 0xff);
    const unsigned bl = rep ? b0 : static_cast<unsigned>((b >> (8 * l)) & 0xff);
    out |= static_cast<std::uint64_t>(t[(al << 8) | bl]) << (8 * l);
  }
  return out;
}

template <auto CmpFn>
std::uint32_t v_p8_cmp(std::uint64_t a, std::uint64_t b, int lanes, Flags&) {
  const std::uint8_t* t = p8_bin_lut<CmpFn>();
  std::uint32_t mask = 0;
  for (int l = 0; l < lanes; ++l) {
    const unsigned al = static_cast<unsigned>((a >> (8 * l)) & 0xff);
    const unsigned bl = static_cast<unsigned>((b >> (8 * l)) & 0xff);
    if (t[(al << 8) | bl] != 0) mask |= 1u << l;
  }
  return mask;
}

// ---- table assembly ---------------------------------------------------------

RtOps make_f8_fast_ops() {
  RtOps o = rt_ops(FpFormat::F8);  // sgnj*/from_int*: Grs entries
  o.add = &f8_bin<&add<Binary8>>;
  o.sub = &f8_bin<&sub<Binary8>>;
  o.mul = &f8_bin<&mul<Binary8>>;
  o.div = &f8_bin<&div<Binary8>>;
  o.min = &f8_minmax<&f8_min>;
  o.max = &f8_minmax<&f8_max>;
  o.fma = &fast_fma<Binary8>;  // span always fits: unconditionally exact
  o.sqrt = &f8_sqrt;
  o.feq = &f8_cmp<&f8_feq>;
  o.flt = &f8_cmp<&f8_flt>;
  o.fle = &f8_cmp<&f8_fle>;
  o.classify = &f8_classify;
  o.to_int32 = &f8_to_i32;
  o.to_uint32 = &f8_to_u32;
  return o;
}

template <class F>
RtOps make_host_fast_ops(FpFormat tag) {
  RtOps o = rt_ops(tag);  // everything unproven keeps the Grs entry
  o.add = &fast_bin<F, HOp::Add>;
  o.sub = &fast_bin<F, HOp::Sub>;
  o.mul = &fast_bin<F, HOp::Mul>;
  o.div = &fast_bin<F, HOp::Div>;
  o.fma = &fast_fma<F>;
  o.sqrt = &fast_sqrt<F>;
  return o;
}

RtVecOps make_f8_fast_vec_ops() {
  RtVecOps o = rt_vec_ops(FpFormat::F8);  // sgnj*/int-converts: Grs
  o.add = &v_f8_bin<&add<Binary8>>;
  o.sub = &v_f8_bin<&sub<Binary8>>;
  o.mul = &v_f8_bin<&mul<Binary8>>;
  o.div = &v_f8_bin<&div<Binary8>>;
  o.min = &v_f8_minmax<&f8_min>;
  o.max = &v_f8_minmax<&f8_max>;
  o.mac = &v_fast_mac<Binary8>;
  o.sqrt = &v_f8_sqrt;
  o.feq = &v_f8_cmp<&f8_feq>;
  o.flt = &v_f8_cmp<&f8_flt>;
  o.fle = &v_f8_cmp<&f8_fle>;
  o.dotp = &v_fast_dotp<Binary8>;
  o.exsdotp = &v_fast_exsdotp<Binary8, Binary16>;
  return o;
}

template <class F>
RtVecOps make_host_fast_vec_ops(FpFormat tag) {
  RtVecOps o = rt_vec_ops(tag);
  o.add = &v_fast_bin<F, HOp::Add>;
  o.sub = &v_fast_bin<F, HOp::Sub>;
  o.mul = &v_fast_bin<F, HOp::Mul>;
  o.div = &v_fast_bin<F, HOp::Div>;
  o.mac = &v_fast_mac<F>;
  o.sqrt = &v_fast_sqrt<F>;
  o.dotp = &v_fast_dotp<F>;
  o.exsdotp = &v_fast_exsdotp<F, Binary32>;  // both 16-bit formats widen to f32
  return o;
}

RtOps make_p8_fast_ops() {
  RtOps o = rt_ops(FpFormat::P8);  // fma/sgnj*/classify/int-converts: Grs
  o.add = &p8_bin<&posit_add<Posit8>>;
  o.sub = &p8_bin<&posit_sub<Posit8>>;
  o.mul = &p8_bin<&posit_mul<Posit8>>;
  o.div = &p8_bin<&posit_div<Posit8>>;
  o.min = &p8_bin<&posit_min<Posit8>>;
  o.max = &p8_bin<&posit_max<Posit8>>;
  o.sqrt = &p8_sqrt;
  o.feq = &p8_cmp<&posit_eq<Posit8>>;
  o.flt = &p8_cmp<&posit_lt<Posit8>>;
  o.fle = &p8_cmp<&posit_le<Posit8>>;
  return o;
}

RtVecOps make_p8_fast_vec_ops() {
  RtVecOps o = rt_vec_ops(FpFormat::P8);
  o.add = &v_p8_bin<&posit_add<Posit8>>;
  o.sub = &v_p8_bin<&posit_sub<Posit8>>;
  o.mul = &v_p8_bin<&posit_mul<Posit8>>;
  o.div = &v_p8_bin<&posit_div<Posit8>>;
  o.min = &v_p8_bin<&posit_min<Posit8>>;
  o.max = &v_p8_bin<&posit_max<Posit8>>;
  o.feq = &v_p8_cmp<&posit_eq<Posit8>>;
  o.flt = &v_p8_cmp<&posit_lt<Posit8>>;
  o.fle = &v_p8_cmp<&posit_le<Posit8>>;
  return o;
}

}  // namespace

namespace detail {

const RtOps& fast_ops(FpFormat f) {
  static const RtOps kFastOps[] = {
      make_f8_fast_ops(),
      make_host_fast_ops<Binary16>(FpFormat::F16),
      make_host_fast_ops<Binary16Alt>(FpFormat::F16Alt),
      make_host_fast_ops<Binary32>(FpFormat::F32),
      rt_ops(FpFormat::F64),  // binary64 IS the host width: Grs throughout
      make_p8_fast_ops(),
      // posit16: the integer-exact core is already branch-light and a 2^32
      // operand space cannot be tabled; Grs entries serve both backends.
      rt_ops(FpFormat::P16),
  };
  static_assert(std::size(kFastOps) == kNumFormats,
                "fast_ops needs one row per FpFormat tag");
  if (fidx(f) >= std::size(kFastOps)) invalid_format_tag();
  return kFastOps[fidx(f)];
}

const RtVecOps& fast_vec_ops(FpFormat f) {
  static const RtVecOps kFastVecOps[] = {
      make_f8_fast_vec_ops(),
      make_host_fast_vec_ops<Binary16>(FpFormat::F16),
      make_host_fast_vec_ops<Binary16Alt>(FpFormat::F16Alt),
      rt_vec_ops(FpFormat::F32),  // no packed ISA ops exist for f32/f64
      rt_vec_ops(FpFormat::F64),
      make_p8_fast_vec_ops(),
      rt_vec_ops(FpFormat::P16),  // see fast_ops: Grs serves posit16
  };
  static_assert(std::size(kFastVecOps) == kNumFormats,
                "fast_vec_ops needs one row per FpFormat tag");
  if (fidx(f) >= std::size(kFastVecOps)) invalid_format_tag();
  return kFastVecOps[fidx(f)];
}

RtCvtFn fast_convert_fn(FpFormat to, FpFormat from) {
  if (fidx(to) >= static_cast<std::size_t>(kNumFormats) ||
      fidx(from) >= static_cast<std::size_t>(kNumFormats))
    invalid_format_tag();
  // f8-source pairs and the 16-bit -> f8 narrowings are exhaustive tables;
  // the 16-bit widenings to f32 are exact host casts. Everything else --
  // including f32 -> f8, whose 2^32 source space cannot be tabled -- stays
  // on the Grs path.
  if (from == FpFormat::F8) {
    switch (to) {
      case FpFormat::F16: return &f8_widen_cvt<Binary16>;
      case FpFormat::F16Alt: return &f8_widen_cvt<Binary16Alt>;
      case FpFormat::F32: return &f8_widen_cvt<Binary32>;
      default: break;
    }
  }
  if (to == FpFormat::F8) {
    switch (from) {
      case FpFormat::F16: return &f8_narrow_cvt<Binary16>;
      case FpFormat::F16Alt: return &f8_narrow_cvt<Binary16Alt>;
      default: break;
    }
  }
  if (to == FpFormat::F32 && from == FpFormat::F16) {
    return &fast_widen_to_f32<Binary16>;
  }
  if (to == FpFormat::F32 && from == FpFormat::F16Alt) {
    return &fast_widen_to_f32<Binary16Alt>;
  }
  return rt_convert_fn(to, from);
}

// Direct-call entries for the JIT (runtime.hpp): thin forwarders to the same
// instantiations the tables above bind, so behavior cannot diverge.
std::uint64_t fast_add_s(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                         Flags& fl) {
  return fast_bin<Binary32, HOp::Add>(a, b, rm, fl);
}
std::uint64_t fast_sub_s(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                         Flags& fl) {
  return fast_bin<Binary32, HOp::Sub>(a, b, rm, fl);
}
std::uint64_t fast_mul_s(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                         Flags& fl) {
  return fast_bin<Binary32, HOp::Mul>(a, b, rm, fl);
}
std::uint64_t fast_vadd_h(std::uint64_t a, std::uint64_t b, int lanes,
                          bool replicate, RoundingMode rm, Flags& fl) {
  return v_fast_bin<Binary16, HOp::Add>(a, b, lanes, replicate, rm, fl);
}
std::uint64_t fast_vsub_h(std::uint64_t a, std::uint64_t b, int lanes,
                          bool replicate, RoundingMode rm, Flags& fl) {
  return v_fast_bin<Binary16, HOp::Sub>(a, b, lanes, replicate, rm, fl);
}
std::uint64_t fast_vmul_h(std::uint64_t a, std::uint64_t b, int lanes,
                          bool replicate, RoundingMode rm, Flags& fl) {
  return v_fast_bin<Binary16, HOp::Mul>(a, b, lanes, replicate, rm, fl);
}
std::uint64_t fast_vmac_h(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                          int lanes, bool replicate, RoundingMode rm,
                          Flags& fl) {
  return v_fast_mac<Binary16>(a, b, d, lanes, replicate, rm, fl);
}
std::uint64_t fast_vadd_ah(std::uint64_t a, std::uint64_t b, int lanes,
                           bool replicate, RoundingMode rm, Flags& fl) {
  return v_fast_bin<Binary16Alt, HOp::Add>(a, b, lanes, replicate, rm, fl);
}
std::uint64_t fast_vsub_ah(std::uint64_t a, std::uint64_t b, int lanes,
                           bool replicate, RoundingMode rm, Flags& fl) {
  return v_fast_bin<Binary16Alt, HOp::Sub>(a, b, lanes, replicate, rm, fl);
}
std::uint64_t fast_vmul_ah(std::uint64_t a, std::uint64_t b, int lanes,
                           bool replicate, RoundingMode rm, Flags& fl) {
  return v_fast_bin<Binary16Alt, HOp::Mul>(a, b, lanes, replicate, rm, fl);
}
std::uint64_t fast_vmac_ah(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                           int lanes, bool replicate, RoundingMode rm,
                           Flags& fl) {
  return v_fast_mac<Binary16Alt>(a, b, d, lanes, replicate, rm, fl);
}

}  // namespace detail

}  // namespace sfrv::fp
