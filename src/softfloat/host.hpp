// Bridges between smallFloat bit patterns and host float/double.
// Every supported format is a subset of binary64, so widening to double is
// exact; narrowing from double goes through the correctly rounded converter.
#pragma once

#include <bit>
#include <cstdint>

#include "softfloat/convert.hpp"
#include "softfloat/float.hpp"

namespace sfrv::fp {

[[nodiscard]] inline F64 from_host(double v) {
  return F64{std::bit_cast<std::uint64_t>(v)};
}
[[nodiscard]] inline double to_host(F64 v) { return std::bit_cast<double>(v.bits); }

[[nodiscard]] inline F32 from_host(float v) {
  return F32{std::bit_cast<std::uint32_t>(v)};
}
[[nodiscard]] inline float to_host_float(F32 v) {
  return std::bit_cast<float>(v.bits);
}

/// Exact widening of any format to host double.
template <class F>
[[nodiscard]] inline double to_double(Float<F> x) {
  if constexpr (std::is_same_v<F, Binary64>) {
    return to_host(x);
  } else {
    Flags fl;  // widening is exact; flags can only fire for signaling NaN
    return to_host(convert<Binary64>(x, RoundingMode::RNE, fl));
  }
}

/// Correctly rounded narrowing from host double.
template <class F>
[[nodiscard]] inline Float<F> from_double(double v, RoundingMode rm, Flags& fl) {
  if constexpr (std::is_same_v<F, Binary64>) {
    (void)rm;
    (void)fl;
    return from_host(v);
  } else {
    return convert<F>(from_host(v), rm, fl);
  }
}

/// Convenience: round-to-nearest-even narrowing, flags discarded.
template <class F>
[[nodiscard]] inline Float<F> from_double(double v) {
  Flags fl;
  return from_double<F>(v, RoundingMode::RNE, fl);
}

/// Quantize a host double through format F and widen back (the "store and
/// reload" effect used by golden references and the precision tuner).
template <class F>
[[nodiscard]] inline double quantize(double v) {
  return to_double(from_double<F>(v));
}

}  // namespace sfrv::fp
