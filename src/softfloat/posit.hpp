// Posit arithmetic (Posit Standard 2022, es = 2) for the posit8/posit16
// formats layered behind the FpFormat seam.
//
// Posits are NOT a FormatTraits instantiation: the exponent is split across a
// variable-length regime run and up to two explicit exponent bits, there are
// no subnormals, no signed zero, no infinities, and a single non-real pattern
// NaR (1 followed by zeros). Negation is two's complement of the whole bit
// pattern and the numeric order of posits is exactly the signed-integer order
// of their patterns. This header therefore provides a dedicated integer-exact
// implementation (decode -> wide fixed-point -> posit round-pack) mirroring
// the guard/round/sticky discipline of arith.hpp:
//
//   * decode: peel sign (2's complement), count the regime run, read the
//     exponent bits (missing low bits are zero), attach the hidden bit.
//   * arithmetic: exact 64-bit significand arithmetic; when an alignment
//     shift would overflow 64 bits the smaller operand collapses into a
//     sticky epsilon (the `mag - 1, sticky = 1` trick), which is exact with
//     respect to any rounding position the pack step can examine.
//   * round-pack: build the full regime|exponent|fraction bit string at a
//     fixed 40-bit hidden-bit position and round once at width bits with
//     round-to-nearest-even on the bit string -- which is precisely the
//     posit-standard rounding (geometric near the regime ends, arithmetic in
//     between). Saturation: results beyond +-maxpos clamp to +-maxpos and
//     nonzero results below minpos clamp to +-minpos; rounding never
//     produces zero or NaR from a nonzero real value.
//
// Per the standard, posit operations use a single rounding attitude (RNE on
// the pattern): the RoundingMode argument threaded through the runtime
// tables is ignored, and no IEEE exception flags are raised by arithmetic
// (NaR is a value, not a trap). Conversions *to* IEEE formats honour the
// requested rounding mode and raise IEEE flags; conversions to integers
// saturate and raise NV exactly like the IEEE paths so the ISA contract
// (FCVT.W semantics) is uniform across formats.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <string_view>

#include "softfloat/flags.hpp"
#include "softfloat/float.hpp"
#include "softfloat/host.hpp"

namespace sfrv::fp {

/// Compile-time description of a posit format (es is fixed at 2 by the 2022
/// standard; width is the only free parameter).
template <int Width, typename StorageT>
struct PositTraits {
  static constexpr int width = Width;
  static constexpr int es = 2;
  using Storage = StorageT;

  static constexpr std::uint64_t mask =
      (Width == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << Width) - 1);
  static constexpr std::uint64_t sign_mask = std::uint64_t{1} << (Width - 1);
  /// NaR: sign bit set, all else zero. Also the pattern of "most negative".
  static constexpr std::uint64_t nar_bits = sign_mask;
  /// maxpos = 2^(4*(width-2)): regime all ones.
  static constexpr std::uint64_t maxpos_bits = sign_mask - 1;
  static constexpr std::uint64_t minpos_bits = 1;
  static constexpr int max_scale = 4 * (Width - 2);
  static constexpr int min_scale = -4 * (Width - 2);
};

struct Posit8 : PositTraits<8, std::uint8_t> {
  static constexpr std::string_view name = "posit8";
};
struct Posit16 : PositTraits<16, std::uint16_t> {
  static constexpr std::string_view name = "posit16";
};

namespace posit_detail {

/// Hidden-bit position used by round_pack's internal fixed-point form. High
/// enough that every reachable fraction field (<= width-5 bits) plus the
/// round/guard inspection window sits strictly above the sticky region.
inline constexpr int kPackTop = 40;

/// A decoded non-zero, non-NaR posit: value = (-1)^sign * sig * 2^(scale-top)
/// with the hidden bit of `sig` at bit position `top` (top = fraction bits).
struct Unpacked {
  bool sign = false;
  int scale = 0;          ///< unbiased exponent: 4*regime + exponent field
  std::uint64_t sig = 0;  ///< 1.f significand, hidden bit at `top`
  int top = 0;            ///< fraction bit count
};

/// Decode a non-zero, non-NaR pattern. Negative patterns are two's-complement
/// negated first; the resulting positive body always has a clear sign bit.
template <class P>
[[nodiscard]] constexpr Unpacked decode(std::uint64_t bits) {
  Unpacked u;
  bits &= P::mask;
  assert(bits != 0 && bits != P::nar_bits);
  u.sign = (bits & P::sign_mask) != 0;
  const std::uint64_t body = u.sign ? ((~bits + 1) & P::mask) : bits;
  // Regime: run of identical bits starting at width-2, then a terminator.
  const int n = P::width;
  const int r0 = static_cast<int>((body >> (n - 2)) & 1);
  int run = 0;
  while (run < n - 1 && static_cast<int>((body >> (n - 2 - run)) & 1) == r0) ++run;
  const int k = (r0 == 1) ? run - 1 : -run;
  // Bits remaining after sign, regime run and (if it fits) the terminator.
  const int consumed = 1 + ((run < n - 1) ? run + 1 : run);
  const int rest = n - consumed;
  int e = 0;
  int frac_bits = 0;
  std::uint64_t frac = 0;
  if (rest >= P::es) {
    e = static_cast<int>((body >> (rest - P::es)) & 3);
    frac_bits = rest - P::es;
    frac = body & ((std::uint64_t{1} << frac_bits) - 1);
  } else if (rest == 1) {
    // One exponent bit present: it is the HIGH bit; the missing bit is zero.
    e = static_cast<int>((body & 1) << 1);
  }
  u.scale = 4 * k + e;
  u.top = frac_bits;
  u.sig = (std::uint64_t{1} << frac_bits) | frac;
  return u;
}

/// Round-pack a positive magnitude into posit format P and apply the sign.
/// `mag` is any nonzero 64-bit integer; the value is mag * 2^(scale_msb -
/// floor(log2 mag)), i.e. `scale_msb` is the unbiased exponent of mag's most
/// significant bit. `sticky` records nonzero discarded bits strictly below
/// mag's bit 0. Rounds RNE on the posit bit string and saturates to
/// maxpos/minpos (never to zero or NaR).
template <class P>
[[nodiscard]] constexpr std::uint64_t round_pack(bool sign, int scale_msb,
                                                 std::uint64_t mag, bool sticky) {
  assert(mag != 0);
  // Normalize the hidden bit to kPackTop; right shifts feed the sticky.
  int w = std::bit_width(mag) - 1;
  if (w > kPackTop) {
    const int s = w - kPackTop;
    sticky = sticky || (mag & ((std::uint64_t{1} << s) - 1)) != 0;
    mag >>= s;
  } else if (w < kPackTop) {
    mag <<= (kPackTop - w);
  }
  // Saturate outside the representable scale range. A nonzero value never
  // rounds to zero (below minpos clamps up) nor overflows into NaR.
  std::uint64_t body;
  if (scale_msb > P::max_scale) {
    body = P::maxpos_bits;
  } else if (scale_msb < P::min_scale) {
    body = P::minpos_bits;
  } else {
    // Build regime | exponent | fraction above the sticky region and round
    // once at width-1 body bits.
    const int k = (scale_msb >= 0) ? scale_msb / 4 : -((-scale_msb + 3) / 4);
    const int e = scale_msb - 4 * k;
    assert(e >= 0 && e <= 3);
    // Regime field: k >= 0 -> (k+1) ones then 0, k < 0 -> (-k) zeros then 1.
    const std::uint64_t regime =
        (k >= 0) ? (((std::uint64_t{1} << (k + 2)) - 2)) : std::uint64_t{1};
    const int regime_bits = (k >= 0) ? k + 2 : 1 - k;
    const std::uint64_t frac = mag & ((std::uint64_t{1} << kPackTop) - 1);
    const std::uint64_t str = (regime << (P::es + kPackTop)) |
                              (static_cast<std::uint64_t>(e) << kPackTop) | frac;
    const int str_bits = regime_bits + P::es + kPackTop;
    const int shift = str_bits - (P::width - 1);
    assert(shift > 0 && str_bits < 64);
    body = str >> shift;
    const bool guard = (str >> (shift - 1)) & 1;
    const bool below =
        sticky || (str & ((std::uint64_t{1} << (shift - 1)) - 1)) != 0;
    if (guard && (below || (body & 1))) ++body;
    // The only all-ones body (maxpos) has a zero guard (its regime
    // terminator), so the increment can never carry into the sign bit.
    assert(body <= P::maxpos_bits && body >= P::minpos_bits);
  }
  return (sign ? (~body + 1) : body) & P::mask;
}

/// Exact signed addition of two decoded posits (or a wider intermediate):
/// each operand is m * 2^e with m != 0 (e = exponent of bit 0). Produces
/// (sign, scale_msb, mag, sticky) for round_pack, or mag == 0 for exact zero.
struct Sum {
  bool sign = false;
  int scale_msb = 0;
  std::uint64_t mag = 0;
  bool sticky = false;
};

[[nodiscard]] constexpr Sum exact_add(bool sa, int ea, std::uint64_t ma,
                                      bool sb, int eb, std::uint64_t mb) {
  assert(ma != 0 && mb != 0);
  // Order so `hi` has the larger bit-0 exponent.
  if (ea < eb) {
    const bool ts = sa; sa = sb; sb = ts;
    const int te = ea; ea = eb; eb = te;
    const std::uint64_t tm = ma; ma = mb; mb = tm;
  }
  const int d = ea - eb;
  const int max_shift = 62 - std::bit_width(ma);
  Sum r;
  if (d <= max_shift) {
    // Alignment fits: the sum is exact in 64 bits.
    const std::int64_t v = (sa ? -1 : 1) * static_cast<std::int64_t>(ma << d) +
                           (sb ? -1 : 1) * static_cast<std::int64_t>(mb);
    if (v == 0) return r;  // exact cancellation -> posit zero
    r.sign = v < 0;
    r.mag = static_cast<std::uint64_t>(r.sign ? -v : v);
    r.scale_msb = eb + std::bit_width(r.mag) - 1;
  } else {
    // Cap the left shift of the larger operand at the 64-bit headroom and
    // right-shift the smaller one the rest of the way, folding the dropped
    // tail into a sticky epsilon. Since the shifted `ma` has its MSB at bit
    // 61 and mb' occupies far fewer bits, the sum cannot cancel: its sign is
    // sa and its magnitude stays huge, so the epsilon only ever adjusts the
    // sticky region (borrow one ulp when the tail pulls against the sum).
    const int lo_shift = d - max_shift;
    const std::uint64_t mbs = (lo_shift < 64) ? (mb >> lo_shift) : 0;
    const bool dropped =
        (lo_shift < 64) ? (mb & ((std::uint64_t{1} << lo_shift) - 1)) != 0
                        : mb != 0;
    const std::int64_t v =
        (sa ? -1 : 1) * static_cast<std::int64_t>(ma << max_shift) +
        (sb ? -1 : 1) * static_cast<std::int64_t>(mbs);
    std::uint64_t mag = static_cast<std::uint64_t>(v < 0 ? -v : v);
    if (dropped && sb != sa) --mag;
    r.sign = sa;
    r.mag = mag;
    r.scale_msb = (ea - max_shift) + std::bit_width(mag) - 1;
    r.sticky = dropped;
  }
  return r;
}

[[nodiscard]] constexpr std::uint64_t isqrt64(std::uint64_t v) {
  std::uint64_t r = 0;
  for (int s = 31; s >= 0; --s) {
    const std::uint64_t t = r | (std::uint64_t{1} << s);
    if (t * t <= v) r = t;
  }
  return r;
}

}  // namespace posit_detail

// ---- classification --------------------------------------------------------

template <class P>
[[nodiscard]] constexpr bool posit_is_nar(std::uint64_t a) {
  return (a & P::mask) == P::nar_bits;
}
template <class P>
[[nodiscard]] constexpr bool posit_is_zero(std::uint64_t a) {
  return (a & P::mask) == 0;
}

/// FCLASS for posits, reusing the IEEE mask bits: NaR reports as quiet NaN,
/// zero as +0 (posits have a single unsigned zero), everything else as a
/// normal number of its sign. No posit is subnormal, infinite or signaling.
template <class P>
[[nodiscard]] constexpr std::uint16_t posit_classify(std::uint64_t a) {
  a &= P::mask;
  if (a == P::nar_bits) return static_cast<std::uint16_t>(FpClass::QuietNan);
  if (a == 0) return static_cast<std::uint16_t>(FpClass::PosZero);
  return static_cast<std::uint16_t>((a & P::sign_mask) ? FpClass::NegNormal
                                                       : FpClass::PosNormal);
}

// ---- exact widening to double ----------------------------------------------

/// Every posit8/posit16 value is exactly representable in binary64
/// (<= 13 significand bits, |scale| <= 56), so this widening is exact.
/// NaR widens to the canonical quiet NaN.
template <class P>
[[nodiscard]] inline double posit_to_double(std::uint64_t a) {
  a &= P::mask;
  if (a == 0) return 0.0;
  if (a == P::nar_bits) return std::bit_cast<double>(F64::quiet_nan().bits);
  const auto u = posit_detail::decode<P>(a);
  double v = static_cast<double>(u.sig);
  int e = u.scale - u.top;
  // Scales stay within [-112, 112] even for wide intermediates; build the
  // power of two exactly via the binary64 exponent field.
  const double p2 = std::bit_cast<double>(
      static_cast<std::uint64_t>(1023 + e) << 52);
  v *= p2;
  return u.sign ? -v : v;
}

/// Correctly rounded conversion from any real (carried exactly in a decoded
/// triple) -- used by the IEEE->posit converts. Not exposed for doubles in
/// general: posit rounding needs exact inputs, which IEEE sources are.
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_round_from(bool sign, int scale_msb,
                                                       std::uint64_t mag,
                                                       bool sticky) {
  return posit_detail::round_pack<P>(sign, scale_msb, mag, sticky);
}

// ---- arithmetic (rounding mode ignored; no flags raised) -------------------

template <class P>
[[nodiscard]] constexpr std::uint64_t posit_add(std::uint64_t a, std::uint64_t b) {
  a &= P::mask; b &= P::mask;
  if (a == P::nar_bits || b == P::nar_bits) return P::nar_bits;
  if (a == 0) return b;
  if (b == 0) return a;
  const auto ua = posit_detail::decode<P>(a);
  const auto ub = posit_detail::decode<P>(b);
  const auto s = posit_detail::exact_add(ua.sign, ua.scale - ua.top, ua.sig,
                                         ub.sign, ub.scale - ub.top, ub.sig);
  if (s.mag == 0) return 0;
  return posit_detail::round_pack<P>(s.sign, s.scale_msb, s.mag, s.sticky);
}

template <class P>
[[nodiscard]] constexpr std::uint64_t posit_neg(std::uint64_t a) {
  return (~a + 1) & P::mask;  // NaR and zero are their own negation
}

template <class P>
[[nodiscard]] constexpr std::uint64_t posit_sub(std::uint64_t a, std::uint64_t b) {
  return posit_add<P>(a, posit_neg<P>(b));
}

template <class P>
[[nodiscard]] constexpr std::uint64_t posit_mul(std::uint64_t a, std::uint64_t b) {
  a &= P::mask; b &= P::mask;
  if (a == P::nar_bits || b == P::nar_bits) return P::nar_bits;
  if (a == 0 || b == 0) return 0;
  const auto ua = posit_detail::decode<P>(a);
  const auto ub = posit_detail::decode<P>(b);
  const std::uint64_t p = ua.sig * ub.sig;  // <= 26 bits: exact
  const int e = (ua.scale - ua.top) + (ub.scale - ub.top);
  return posit_detail::round_pack<P>(ua.sign != ub.sign,
                                     e + std::bit_width(p) - 1, p, false);
}

template <class P>
[[nodiscard]] constexpr std::uint64_t posit_div(std::uint64_t a, std::uint64_t b) {
  a &= P::mask; b &= P::mask;
  if (a == P::nar_bits || b == P::nar_bits) return P::nar_bits;
  if (b == 0) return P::nar_bits;  // x/0 is NaR (posits have no infinity)
  if (a == 0) return 0;
  const auto ua = posit_detail::decode<P>(a);
  const auto ub = posit_detail::decode<P>(b);
  // 30 extra quotient bits: quotient >= 2^29, far above any rounding cut.
  const std::uint64_t num = ua.sig << 30;
  const std::uint64_t q = num / ub.sig;
  const bool sticky = (num % ub.sig) != 0;
  const int e = (ua.scale - ua.top) - (ub.scale - ub.top) - 30;
  return posit_detail::round_pack<P>(ua.sign != ub.sign,
                                     e + std::bit_width(q) - 1, q, sticky);
}

/// Fused multiply-add a*b + c with a single posit rounding. The product is
/// exact (<= 26 bits), the addition is exact-or-sticky via exact_add.
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_fma(std::uint64_t a, std::uint64_t b,
                                                std::uint64_t c) {
  a &= P::mask; b &= P::mask; c &= P::mask;
  if (a == P::nar_bits || b == P::nar_bits || c == P::nar_bits)
    return P::nar_bits;
  if (a == 0 || b == 0) return c;
  const auto ua = posit_detail::decode<P>(a);
  const auto ub = posit_detail::decode<P>(b);
  const std::uint64_t p = ua.sig * ub.sig;
  const int ep = (ua.scale - ua.top) + (ub.scale - ub.top);
  const bool sp = ua.sign != ub.sign;
  if (c == 0)
    return posit_detail::round_pack<P>(sp, ep + std::bit_width(p) - 1, p, false);
  const auto uc = posit_detail::decode<P>(c);
  const auto s =
      posit_detail::exact_add(sp, ep, p, uc.sign, uc.scale - uc.top, uc.sig);
  if (s.mag == 0) return 0;
  return posit_detail::round_pack<P>(s.sign, s.scale_msb, s.mag, s.sticky);
}

template <class P>
[[nodiscard]] constexpr std::uint64_t posit_sqrt(std::uint64_t a) {
  a &= P::mask;
  if (a == P::nar_bits || (a & P::sign_mask)) return P::nar_bits;  // sqrt(<0)
  if (a == 0) return 0;
  const auto u = posit_detail::decode<P>(a);
  // Shift to an even bit-0 exponent with ~30 result bits: sqrt(m * 2^(2q))
  // = isqrt(m) * 2^q with the floor remainder folded into the sticky (the
  // square root of a non-square is irrational, so no exact midpoints exist).
  int e = u.scale - u.top;
  int s = 30;
  if ((e - s) & 1) ++s;
  const std::uint64_t m = u.sig << s;
  const std::uint64_t r = posit_detail::isqrt64(m);
  const bool sticky = r * r != m;
  const int eq = (e - s) / 2;
  return posit_detail::round_pack<P>(false, eq + std::bit_width(r) - 1, r,
                                     sticky);
}

// ---- comparisons and min/max -----------------------------------------------

/// Posit comparisons are exactly signed-integer comparisons of the patterns:
/// NaR (the most negative pattern) orders below every real value and equals
/// itself. No flags are raised (NaR is an ordered value, not a NaN).
template <class P>
[[nodiscard]] constexpr std::int64_t posit_signed(std::uint64_t a) {
  const std::uint64_t ext = (a & P::sign_mask) ? (~P::mask) : 0;
  return static_cast<std::int64_t>((a & P::mask) | ext);
}

template <class P>
[[nodiscard]] constexpr bool posit_eq(std::uint64_t a, std::uint64_t b) {
  return (a & P::mask) == (b & P::mask);
}
template <class P>
[[nodiscard]] constexpr bool posit_lt(std::uint64_t a, std::uint64_t b) {
  return posit_signed<P>(a) < posit_signed<P>(b);
}
template <class P>
[[nodiscard]] constexpr bool posit_le(std::uint64_t a, std::uint64_t b) {
  return posit_signed<P>(a) <= posit_signed<P>(b);
}

/// min/max follow the arithmetic convention: NaR propagates (unlike IEEE
/// fmin/fmax, which prefer the number -- posits have no quiet-NaN notion of
/// "missing data", NaR means the computation already failed).
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_min(std::uint64_t a, std::uint64_t b) {
  if (posit_is_nar<P>(a) || posit_is_nar<P>(b)) return P::nar_bits;
  return posit_lt<P>(a, b) ? (a & P::mask) : (b & P::mask);
}
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_max(std::uint64_t a, std::uint64_t b) {
  if (posit_is_nar<P>(a) || posit_is_nar<P>(b)) return P::nar_bits;
  return posit_lt<P>(a, b) ? (b & P::mask) : (a & P::mask);
}

// ---- sign manipulation -----------------------------------------------------

/// FSGNJ-family semantics under two's-complement negation: the magnitude of
/// rs1 with a sign derived from rs2's sign bit. Matches the FMV/FNEG/FABS
/// idioms (sgnj(a,a) = a, sgnjn(a,a) = -a, sgnjx(a,a) = |a|). |NaR| = NaR.
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_abs(std::uint64_t a) {
  a &= P::mask;
  return (a & P::sign_mask) && a != P::nar_bits ? posit_neg<P>(a) : a;
}
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_sgnj(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t m = posit_abs<P>(a);
  return (b & P::sign_mask) ? posit_neg<P>(m) : m;
}
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_sgnjn(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t m = posit_abs<P>(a);
  return (b & P::sign_mask) ? m : posit_neg<P>(m);
}
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_sgnjx(std::uint64_t a, std::uint64_t b) {
  a &= P::mask;
  return ((b & P::sign_mask) != 0) ? posit_neg<P>(a) : a;
}

// ---- integer conversions ---------------------------------------------------

/// FCVT.W semantics: round per rm, saturate with NV on overflow, NaR maps to
/// the most negative integer with NV (mirroring the IEEE NaN convention so
/// the ISA contract is uniform). Implemented by exact widening to binary64
/// and reusing the IEEE integer converter.
template <class P>
[[nodiscard]] inline std::int32_t posit_to_int32(std::uint64_t a, RoundingMode rm,
                                                 Flags& fl) {
  a &= P::mask;
  if (a == P::nar_bits) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::int32_t>::min();
  }
  const F64 w = from_host(posit_to_double<P>(a));
  return to_int32(w, rm, fl);
}

template <class P>
[[nodiscard]] inline std::uint32_t posit_to_uint32(std::uint64_t a,
                                                   RoundingMode rm, Flags& fl) {
  a &= P::mask;
  if (a == P::nar_bits) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::uint32_t>::max();
  }
  const F64 w = from_host(posit_to_double<P>(a));
  return to_uint32(w, rm, fl);
}

/// Integer -> posit: exact decompose then posit round-pack (RNE with
/// saturation; no flags, per the posit convention that arithmetic does not
/// trap). |v| <= 2^31 always fits posit16's scale range; posit8 saturates.
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_from_uint64(bool sign, std::uint64_t m) {
  if (m == 0) return 0;
  return posit_detail::round_pack<P>(sign, std::bit_width(m) - 1, m, false);
}
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_from_int32(std::int32_t v) {
  const bool sign = v < 0;
  const std::uint64_t m =
      sign ? (~static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) + 1) &
                 0xFFFFFFFFu
           : static_cast<std::uint64_t>(v);
  return posit_from_uint64<P>(sign, m);
}
template <class P>
[[nodiscard]] constexpr std::uint64_t posit_from_uint32(std::uint32_t v) {
  return posit_from_uint64<P>(false, v);
}

// ---- IEEE <-> posit and posit <-> posit conversions ------------------------

/// IEEE -> posit: NaN (any) and +-Inf map to NaR, +-0 to zero, every finite
/// value is decomposed exactly and posit-rounded (rm ignored, no flags).
template <class P, class F>
[[nodiscard]] constexpr std::uint64_t posit_from_ieee(Float<F> x) {
  if (x.is_nan() || x.is_inf()) return P::nar_bits;
  if (x.is_zero()) return 0;
  const bool sub = x.is_subnormal();
  const std::uint64_t m =
      x.man_field() | (sub ? 0 : (std::uint64_t{1} << F::man_bits));
  const int e = (sub ? F::emin : static_cast<int>(x.exp_field()) - F::bias) -
                F::man_bits;
  return posit_detail::round_pack<P>(x.sign(), e + std::bit_width(m) - 1, m,
                                     false);
}

/// posit -> IEEE: NaR maps to the canonical quiet NaN; finite values widen
/// exactly to binary64 then round once into F honouring rm and IEEE flags.
template <class F, class P>
[[nodiscard]] inline Float<F> posit_to_ieee(std::uint64_t a, RoundingMode rm,
                                            Flags& fl) {
  a &= P::mask;
  if (a == P::nar_bits) return Float<F>::quiet_nan();
  return from_double<F>(posit_to_double<P>(a), rm, fl);
}

/// posit -> posit resize: widening (8 -> 16) is exact; narrowing re-rounds.
template <class PTo, class PFrom>
[[nodiscard]] constexpr std::uint64_t posit_resize(std::uint64_t a) {
  a &= PFrom::mask;
  if (a == 0) return 0;
  if (a == PFrom::nar_bits) return PTo::nar_bits;
  const auto u = posit_detail::decode<PFrom>(a);
  return posit_detail::round_pack<PTo>(u.sign, u.scale, u.sig, false);
}

}  // namespace sfrv::fp
