// IEEE 754 rounding modes and exception flags with RISC-V encodings.
#pragma once

#include <cstdint>
#include <string_view>

namespace sfrv::fp {

/// Rounding modes, numbered as in the RISC-V `rm` field.
enum class RoundingMode : std::uint8_t {
  RNE = 0,  ///< round to nearest, ties to even
  RTZ = 1,  ///< round towards zero
  RDN = 2,  ///< round down (towards -inf)
  RUP = 3,  ///< round up (towards +inf)
  RMM = 4,  ///< round to nearest, ties to max magnitude
};

constexpr std::string_view rounding_mode_name(RoundingMode rm) {
  switch (rm) {
    case RoundingMode::RNE: return "rne";
    case RoundingMode::RTZ: return "rtz";
    case RoundingMode::RDN: return "rdn";
    case RoundingMode::RUP: return "rup";
    case RoundingMode::RMM: return "rmm";
  }
  return "?";
}

/// Accumulated IEEE exception flags, bit positions as in RISC-V `fflags`.
struct Flags {
  static constexpr std::uint8_t NX = 1 << 0;  ///< inexact
  static constexpr std::uint8_t UF = 1 << 1;  ///< underflow
  static constexpr std::uint8_t OF = 1 << 2;  ///< overflow
  static constexpr std::uint8_t DZ = 1 << 3;  ///< divide by zero
  static constexpr std::uint8_t NV = 1 << 4;  ///< invalid operation

  std::uint8_t bits = 0;

  constexpr void raise(std::uint8_t mask) { bits |= mask; }
  [[nodiscard]] constexpr bool any() const { return bits != 0; }
  [[nodiscard]] constexpr bool test(std::uint8_t mask) const {
    return (bits & mask) != 0;
  }
  constexpr void clear() { bits = 0; }

  friend constexpr bool operator==(const Flags&, const Flags&) = default;
};

}  // namespace sfrv::fp
