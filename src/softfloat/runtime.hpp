// Runtime-dispatched operations on raw bit patterns.
//
// The ISA simulator stores FP register contents as untyped bits and selects
// the format from the decoded instruction; these helpers bridge into the
// templated arithmetic. All values are carried in the low bits of a uint64.
//
// Two dispatch styles are offered:
//  * rt_*(FpFormat, ...) convenience wrappers that switch on the format tag
//    per call -- fine for cold paths (tracing, QoR extraction, tests).
//  * per-(op, format) function-pointer tables (rt_ops / rt_vec_ops /
//    rt_convert_fn) that resolve the format ONCE, so a hot caller (the
//    simulator's predecoded micro-op engine) binds a direct handler at decode
//    time instead of re-dispatching per lane per cycle.
#pragma once

#include <cstdint>

#include "softfloat/flags.hpp"
#include "softfloat/formats.hpp"

namespace sfrv::fp {

// ---- math backends ---------------------------------------------------------

/// Which implementation family backs the per-(op, format) tables below.
///
///  * Grs  -- the guard/round/sticky softfloat routines in arith.hpp /
///    convert.hpp. The reference implementation: every operation is computed
///    from first principles with a single rounding. Always available; the
///    per-call rt_*(FpFormat, ...) wrappers and the reference interpreter
///    use it unconditionally (they are the frozen oracle).
///  * Fast -- bit- and fflags-identical accelerated entries:
///    exhaustive precomputed LUTs for the 8-bit format (generated once from
///    the Grs path, so correct by construction) and a host-double fast path
///    for f16/f16alt/f32 add/sub/mul/div/sqrt where the single-rounding
///    argument holds (see docs/formats.md), falling back to Grs for FMA and
///    any case whose result or flags cannot be proven identical.
///
/// The contract -- enforced by exhaustive 8-bit equivalence tests,
/// randomized f16/f32 differential fuzzing, and the golden digest matrix --
/// is that the two backends are indistinguishable except in wall-clock time.
enum class MathBackend : std::uint8_t { Grs, Fast };

/// Stable lowercase backend names ("grs", "fast") used by the CLI, the eval
/// report JSON, and the SFRV_BACKEND variable.
[[nodiscard]] std::string_view backend_name(MathBackend b);
/// Parse a backend name; throws std::runtime_error on an unknown one.
[[nodiscard]] MathBackend backend_from_name(std::string_view name);
/// Resolve an SFRV_BACKEND-style environment value: null/empty selects Grs,
/// an invalid value warns on stderr and falls back to Grs (same contract as
/// SFRV_ENGINE; never throws -- it runs inside static initialization via
/// default arguments). Exposed separately from default_backend() so the
/// invalid-value contract is directly testable.
[[nodiscard]] MathBackend backend_from_env(const char* value);
/// Process-wide default backend: the SFRV_BACKEND environment variable
/// (grs|fast, read once) or MathBackend::Grs.
[[nodiscard]] MathBackend default_backend();

// ---- per-(op, format) scalar tables ----------------------------------------

/// Signature families for table entries. min/max and the sign-injection ops
/// take (and ignore) a rounding mode so that every two-operand entry shares
/// one signature and generic callers need a single code path.
using RtBinFn = std::uint64_t (*)(std::uint64_t, std::uint64_t, RoundingMode,
                                  Flags&);
using RtTernFn = std::uint64_t (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                                   RoundingMode, Flags&);
using RtUnFn = std::uint64_t (*)(std::uint64_t, RoundingMode, Flags&);
using RtCmpFn = bool (*)(std::uint64_t, std::uint64_t, Flags&);
using RtClassFn = std::uint16_t (*)(std::uint64_t);
using RtToI32Fn = std::int32_t (*)(std::uint64_t, RoundingMode, Flags&);
using RtToU32Fn = std::uint32_t (*)(std::uint64_t, RoundingMode, Flags&);
using RtFromI32Fn = std::uint64_t (*)(std::int32_t, RoundingMode, Flags&);
using RtFromU32Fn = std::uint64_t (*)(std::uint32_t, RoundingMode, Flags&);
/// Format-to-format conversion with the source/destination pair pre-bound.
using RtCvtFn = std::uint64_t (*)(std::uint64_t, RoundingMode, Flags&);

/// Every scalar operation of one format, as directly callable entry points.
/// Generalizes the old single-op RtBinaryOp hook.
struct RtOps {
  RtBinFn add, sub, mul, div;
  RtBinFn min, max;              // rm ignored
  RtBinFn sgnj, sgnjn, sgnjx;    // rm ignored
  RtTernFn fma;
  RtUnFn sqrt;
  RtCmpFn feq, flt, fle;
  RtClassFn classify;
  RtToI32Fn to_int32;
  RtToU32Fn to_uint32;
  RtFromI32Fn from_int32;
  RtFromU32Fn from_uint32;
};

/// The operation table for a format tag. The reference never dangles: tables
/// have static storage duration. The single-argument form is the Grs
/// backend (the oracle); pass a backend to bind accelerated entries.
[[nodiscard]] const RtOps& rt_ops(FpFormat f);
[[nodiscard]] const RtOps& rt_ops(FpFormat f, MathBackend b);

/// Pre-bound converter for a (destination, source) format pair.
[[nodiscard]] RtCvtFn rt_convert_fn(FpFormat to, FpFormat from);
[[nodiscard]] RtCvtFn rt_convert_fn(FpFormat to, FpFormat from, MathBackend b);

// ---- per-(op, format) packed-SIMD tables -----------------------------------

/// Lanewise operations over `lanes` elements of one format packed in a
/// 64-bit register, with the element arithmetic inlined into the lane loop
/// (one indirect call per *instruction*, zero per lane). When `replicate` is
/// set, lane 0 of `b` is broadcast to all lanes (the .R scalar-replication
/// variants). Bits above lane `lanes-1` of the result are zero.
using RtVecBinFn = std::uint64_t (*)(std::uint64_t a, std::uint64_t b,
                                     int lanes, bool replicate, RoundingMode,
                                     Flags&);
/// Fused multiply-accumulate: d[l] = a[l] * b[l] + d[l].
using RtVecTernFn = std::uint64_t (*)(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t d, int lanes,
                                      bool replicate, RoundingMode, Flags&);
using RtVecUnFn = std::uint64_t (*)(std::uint64_t a, int lanes, RoundingMode,
                                    Flags&);
/// Lanewise comparison producing a lane bitmask in an integer register.
using RtVecCmpFn = std::uint32_t (*)(std::uint64_t a, std::uint64_t b,
                                     int lanes, Flags&);
/// Expanding dot product (Xfaux): acc(f32) += sum_l widen(a[l]) * widen(b[l]),
/// accumulated with fused binary32 steps in lane order.
using RtVecDotpFn = std::uint64_t (*)(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t acc32, int lanes,
                                      bool replicate, RoundingMode, Flags&);

struct RtVecOps {
  RtVecBinFn add, sub, mul, div;
  RtVecBinFn min, max;            // rm ignored
  RtVecBinFn sgnj, sgnjn, sgnjx;  // rm ignored
  RtVecTernFn mac;
  RtVecUnFn sqrt;
  RtVecUnFn to_int;    ///< lanewise FP -> saturating signed int of lane width
  RtVecUnFn from_int;  ///< lanewise signed int of lane width -> FP
  RtVecCmpFn feq, flt, fle;
  RtVecDotpFn dotp;
  /// ExSdotp (MiniFloat-NN-style): widening sum-of-dot-products into the
  /// next-wider format. `acc` is a FULL packed register of lanes/2 wide
  /// elements (unlike `dotp`, whose accumulator is one scalar binary32);
  /// wide lane l performs two sequential wide-format FMAs in lane order:
  ///   acc[l] = fma(widen(a[2l]),   widen(b[2l]),   acc[l])
  ///   acc[l] = fma(widen(a[2l+1]), widen(b[2l+1]), acc[l])
  /// The widening step (f8->f16, f16->f32, f16alt->f32, posit8->posit16) is
  /// exact; `lanes` counts NARROW elements. Bound only for formats with an
  /// in-register wider neighbour.
  RtVecDotpFn exsdotp;
};

/// The packed-lane table for a format tag (meaningful for the sub-32-bit
/// smallFloat formats; provided for all tags for uniformity). Same backend
/// convention as rt_ops.
[[nodiscard]] const RtVecOps& rt_vec_ops(FpFormat f);
[[nodiscard]] const RtVecOps& rt_vec_ops(FpFormat f, MathBackend b);

namespace detail {
/// Fast-backend tables (fastpath.cpp); rt_ops(f, b) dispatches here.
[[nodiscard]] const RtOps& fast_ops(FpFormat f);
[[nodiscard]] const RtVecOps& fast_vec_ops(FpFormat f);
[[nodiscard]] RtCvtFn fast_convert_fn(FpFormat to, FpFormat from);

// Named direct-call entry points to the fast backend's host-double kernels
// (fastpath.cpp). Each forwards to the exact template instantiation the
// fast_ops / fast_vec_ops tables bind, so calling one is bit- and
// flags-identical to an indirect call through the table entry. The JIT
// trace translator (sim/jit.cpp) matches a micro-op's bound pointer against
// the table and, on a hit, emits a specialized trace slot that calls these
// directly — removing the per-op indirect branch without forking the math.
std::uint64_t fast_add_s(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                         Flags& fl);
std::uint64_t fast_sub_s(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                         Flags& fl);
std::uint64_t fast_mul_s(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                         Flags& fl);
std::uint64_t fast_vadd_h(std::uint64_t a, std::uint64_t b, int lanes,
                          bool replicate, RoundingMode rm, Flags& fl);
std::uint64_t fast_vsub_h(std::uint64_t a, std::uint64_t b, int lanes,
                          bool replicate, RoundingMode rm, Flags& fl);
std::uint64_t fast_vmul_h(std::uint64_t a, std::uint64_t b, int lanes,
                          bool replicate, RoundingMode rm, Flags& fl);
std::uint64_t fast_vmac_h(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                          int lanes, bool replicate, RoundingMode rm,
                          Flags& fl);
std::uint64_t fast_vadd_ah(std::uint64_t a, std::uint64_t b, int lanes,
                           bool replicate, RoundingMode rm, Flags& fl);
std::uint64_t fast_vsub_ah(std::uint64_t a, std::uint64_t b, int lanes,
                           bool replicate, RoundingMode rm, Flags& fl);
std::uint64_t fast_vmul_ah(std::uint64_t a, std::uint64_t b, int lanes,
                           bool replicate, RoundingMode rm, Flags& fl);
std::uint64_t fast_vmac_ah(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                           int lanes, bool replicate, RoundingMode rm,
                           Flags& fl);
}  // namespace detail

// ---- per-call format dispatch (cold paths) ---------------------------------

std::uint64_t rt_add(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_sub(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_mul(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_div(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_sqrt(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
/// a * b + c, single rounding.
std::uint64_t rt_fma(FpFormat f, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     RoundingMode rm, Flags& fl);
std::uint64_t rt_min(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint64_t rt_max(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint64_t rt_sgnj(FpFormat f, std::uint64_t a, std::uint64_t b);
std::uint64_t rt_sgnjn(FpFormat f, std::uint64_t a, std::uint64_t b);
std::uint64_t rt_sgnjx(FpFormat f, std::uint64_t a, std::uint64_t b);
bool rt_feq(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
bool rt_flt(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
bool rt_fle(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint16_t rt_classify(FpFormat f, std::uint64_t a);
/// Format-to-format conversion (single rounding).
std::uint64_t rt_convert(FpFormat to, FpFormat from, std::uint64_t a,
                         RoundingMode rm, Flags& fl);
std::int32_t rt_to_int32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
std::uint32_t rt_to_uint32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
std::uint64_t rt_from_int32(FpFormat f, std::int32_t v, RoundingMode rm, Flags& fl);
std::uint64_t rt_from_uint32(FpFormat f, std::uint32_t v, RoundingMode rm, Flags& fl);

/// Exact widening to host double (for tracing and QoR extraction).
double rt_to_double(FpFormat f, std::uint64_t a);
/// Correctly rounded narrowing from host double.
std::uint64_t rt_from_double(FpFormat f, double v, RoundingMode rm, Flags& fl);

}  // namespace sfrv::fp
