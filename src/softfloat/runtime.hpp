// Runtime-dispatched operations on raw bit patterns.
// The ISA simulator stores FP register contents as untyped bits and selects
// the format from the decoded instruction; these helpers bridge into the
// templated arithmetic. All values are carried in the low bits of a uint64.
#pragma once

#include <cstdint>

#include "softfloat/flags.hpp"
#include "softfloat/formats.hpp"

namespace sfrv::fp {

struct RtBinaryOp {
  std::uint64_t (*fn)(std::uint64_t, std::uint64_t, RoundingMode, Flags&);
};

std::uint64_t rt_add(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_sub(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_mul(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_div(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_sqrt(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
/// a * b + c, single rounding.
std::uint64_t rt_fma(FpFormat f, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     RoundingMode rm, Flags& fl);
std::uint64_t rt_min(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint64_t rt_max(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint64_t rt_sgnj(FpFormat f, std::uint64_t a, std::uint64_t b);
std::uint64_t rt_sgnjn(FpFormat f, std::uint64_t a, std::uint64_t b);
std::uint64_t rt_sgnjx(FpFormat f, std::uint64_t a, std::uint64_t b);
bool rt_feq(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
bool rt_flt(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
bool rt_fle(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint16_t rt_classify(FpFormat f, std::uint64_t a);
/// Format-to-format conversion (single rounding).
std::uint64_t rt_convert(FpFormat to, FpFormat from, std::uint64_t a,
                         RoundingMode rm, Flags& fl);
std::int32_t rt_to_int32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
std::uint32_t rt_to_uint32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
std::uint64_t rt_from_int32(FpFormat f, std::int32_t v, RoundingMode rm, Flags& fl);
std::uint64_t rt_from_uint32(FpFormat f, std::uint32_t v, RoundingMode rm, Flags& fl);

/// Exact widening to host double (for tracing and QoR extraction).
double rt_to_double(FpFormat f, std::uint64_t a);
/// Correctly rounded narrowing from host double.
std::uint64_t rt_from_double(FpFormat f, double v, RoundingMode rm, Flags& fl);

}  // namespace sfrv::fp
