// Runtime-dispatched operations on raw bit patterns.
//
// The ISA simulator stores FP register contents as untyped bits and selects
// the format from the decoded instruction; these helpers bridge into the
// templated arithmetic. All values are carried in the low bits of a uint64.
//
// Two dispatch styles are offered:
//  * rt_*(FpFormat, ...) convenience wrappers that switch on the format tag
//    per call -- fine for cold paths (tracing, QoR extraction, tests).
//  * per-(op, format) function-pointer tables (rt_ops / rt_vec_ops /
//    rt_convert_fn) that resolve the format ONCE, so a hot caller (the
//    simulator's predecoded micro-op engine) binds a direct handler at decode
//    time instead of re-dispatching per lane per cycle.
#pragma once

#include <cstdint>

#include "softfloat/flags.hpp"
#include "softfloat/formats.hpp"

namespace sfrv::fp {

// ---- per-(op, format) scalar tables ----------------------------------------

/// Signature families for table entries. min/max and the sign-injection ops
/// take (and ignore) a rounding mode so that every two-operand entry shares
/// one signature and generic callers need a single code path.
using RtBinFn = std::uint64_t (*)(std::uint64_t, std::uint64_t, RoundingMode,
                                  Flags&);
using RtTernFn = std::uint64_t (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                                   RoundingMode, Flags&);
using RtUnFn = std::uint64_t (*)(std::uint64_t, RoundingMode, Flags&);
using RtCmpFn = bool (*)(std::uint64_t, std::uint64_t, Flags&);
using RtClassFn = std::uint16_t (*)(std::uint64_t);
using RtToI32Fn = std::int32_t (*)(std::uint64_t, RoundingMode, Flags&);
using RtToU32Fn = std::uint32_t (*)(std::uint64_t, RoundingMode, Flags&);
using RtFromI32Fn = std::uint64_t (*)(std::int32_t, RoundingMode, Flags&);
using RtFromU32Fn = std::uint64_t (*)(std::uint32_t, RoundingMode, Flags&);
/// Format-to-format conversion with the source/destination pair pre-bound.
using RtCvtFn = std::uint64_t (*)(std::uint64_t, RoundingMode, Flags&);

/// Every scalar operation of one format, as directly callable entry points.
/// Generalizes the old single-op RtBinaryOp hook.
struct RtOps {
  RtBinFn add, sub, mul, div;
  RtBinFn min, max;              // rm ignored
  RtBinFn sgnj, sgnjn, sgnjx;    // rm ignored
  RtTernFn fma;
  RtUnFn sqrt;
  RtCmpFn feq, flt, fle;
  RtClassFn classify;
  RtToI32Fn to_int32;
  RtToU32Fn to_uint32;
  RtFromI32Fn from_int32;
  RtFromU32Fn from_uint32;
};

/// The operation table for a format tag. The reference never dangles: tables
/// have static storage duration.
[[nodiscard]] const RtOps& rt_ops(FpFormat f);

/// Pre-bound converter for a (destination, source) format pair.
[[nodiscard]] RtCvtFn rt_convert_fn(FpFormat to, FpFormat from);

// ---- per-(op, format) packed-SIMD tables -----------------------------------

/// Lanewise operations over `lanes` elements of one format packed in a
/// 64-bit register, with the element arithmetic inlined into the lane loop
/// (one indirect call per *instruction*, zero per lane). When `replicate` is
/// set, lane 0 of `b` is broadcast to all lanes (the .R scalar-replication
/// variants). Bits above lane `lanes-1` of the result are zero.
using RtVecBinFn = std::uint64_t (*)(std::uint64_t a, std::uint64_t b,
                                     int lanes, bool replicate, RoundingMode,
                                     Flags&);
/// Fused multiply-accumulate: d[l] = a[l] * b[l] + d[l].
using RtVecTernFn = std::uint64_t (*)(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t d, int lanes,
                                      bool replicate, RoundingMode, Flags&);
using RtVecUnFn = std::uint64_t (*)(std::uint64_t a, int lanes, RoundingMode,
                                    Flags&);
/// Lanewise comparison producing a lane bitmask in an integer register.
using RtVecCmpFn = std::uint32_t (*)(std::uint64_t a, std::uint64_t b,
                                     int lanes, Flags&);
/// Expanding dot product (Xfaux): acc(f32) += sum_l widen(a[l]) * widen(b[l]),
/// accumulated with fused binary32 steps in lane order.
using RtVecDotpFn = std::uint64_t (*)(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t acc32, int lanes,
                                      bool replicate, RoundingMode, Flags&);

struct RtVecOps {
  RtVecBinFn add, sub, mul, div;
  RtVecBinFn min, max;            // rm ignored
  RtVecBinFn sgnj, sgnjn, sgnjx;  // rm ignored
  RtVecTernFn mac;
  RtVecUnFn sqrt;
  RtVecUnFn to_int;    ///< lanewise FP -> saturating signed int of lane width
  RtVecUnFn from_int;  ///< lanewise signed int of lane width -> FP
  RtVecCmpFn feq, flt, fle;
  RtVecDotpFn dotp;
};

/// The packed-lane table for a format tag (meaningful for the sub-32-bit
/// smallFloat formats; provided for all tags for uniformity).
[[nodiscard]] const RtVecOps& rt_vec_ops(FpFormat f);

// ---- per-call format dispatch (cold paths) ---------------------------------

std::uint64_t rt_add(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_sub(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_mul(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_div(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm, Flags& fl);
std::uint64_t rt_sqrt(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
/// a * b + c, single rounding.
std::uint64_t rt_fma(FpFormat f, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     RoundingMode rm, Flags& fl);
std::uint64_t rt_min(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint64_t rt_max(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint64_t rt_sgnj(FpFormat f, std::uint64_t a, std::uint64_t b);
std::uint64_t rt_sgnjn(FpFormat f, std::uint64_t a, std::uint64_t b);
std::uint64_t rt_sgnjx(FpFormat f, std::uint64_t a, std::uint64_t b);
bool rt_feq(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
bool rt_flt(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
bool rt_fle(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl);
std::uint16_t rt_classify(FpFormat f, std::uint64_t a);
/// Format-to-format conversion (single rounding).
std::uint64_t rt_convert(FpFormat to, FpFormat from, std::uint64_t a,
                         RoundingMode rm, Flags& fl);
std::int32_t rt_to_int32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
std::uint32_t rt_to_uint32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl);
std::uint64_t rt_from_int32(FpFormat f, std::int32_t v, RoundingMode rm, Flags& fl);
std::uint64_t rt_from_uint32(FpFormat f, std::uint32_t v, RoundingMode rm, Flags& fl);

/// Exact widening to host double (for tracing and QoR extraction).
double rt_to_double(FpFormat f, std::uint64_t a);
/// Correctly rounded narrowing from host double.
std::uint64_t rt_from_double(FpFormat f, double v, RoundingMode rm, Flags& fl);

}  // namespace sfrv::fp
