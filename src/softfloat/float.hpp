// Bit-pattern value type and classification helpers for a floating format.
#pragma once

#include <bit>
#include <cstdint>

#include "softfloat/formats.hpp"

namespace sfrv::fp {

/// A floating-point value of format F, stored as its raw bit pattern.
/// All arithmetic lives in free functions (arith.hpp / convert.hpp /
/// compare.hpp); this type only provides packing and classification.
template <class F>
struct Float {
  using Format = F;
  using Storage = typename F::Storage;

  Storage bits = 0;

  constexpr Float() = default;
  constexpr explicit Float(Storage raw) : bits(raw) {}

  [[nodiscard]] static constexpr Float from_bits(std::uint64_t raw) {
    return Float{static_cast<Storage>(raw & ((F::width == 64)
                                                 ? ~std::uint64_t{0}
                                                 : ((std::uint64_t{1} << F::width) - 1)))};
  }

  /// Assemble from sign, biased exponent field and mantissa field.
  /// `man` may carry into the exponent field (used after rounding carries a
  /// subnormal up to the smallest normal).
  [[nodiscard]] static constexpr Float from_parts(bool sign, unsigned exp_field,
                                                  std::uint64_t man) {
    std::uint64_t raw = (std::uint64_t{sign} << (F::width - 1)) +
                        (static_cast<std::uint64_t>(exp_field) << F::man_bits) + man;
    return from_bits(raw);
  }

  [[nodiscard]] constexpr bool sign() const {
    return (bits >> (F::width - 1)) & 1;
  }
  [[nodiscard]] constexpr unsigned exp_field() const {
    return static_cast<unsigned>((bits >> F::man_bits) &
                                 static_cast<unsigned>(F::exp_field_max));
  }
  [[nodiscard]] constexpr std::uint64_t man_field() const {
    return bits & F::man_mask;
  }

  [[nodiscard]] constexpr bool is_zero() const {
    return (bits & F::abs_mask) == 0;
  }
  [[nodiscard]] constexpr bool is_subnormal() const {
    return exp_field() == 0 && man_field() != 0;
  }
  [[nodiscard]] constexpr bool is_normal() const {
    return exp_field() != 0 && exp_field() != static_cast<unsigned>(F::exp_field_max);
  }
  [[nodiscard]] constexpr bool is_finite() const {
    return exp_field() != static_cast<unsigned>(F::exp_field_max);
  }
  [[nodiscard]] constexpr bool is_inf() const {
    return exp_field() == static_cast<unsigned>(F::exp_field_max) && man_field() == 0;
  }
  [[nodiscard]] constexpr bool is_nan() const {
    return exp_field() == static_cast<unsigned>(F::exp_field_max) && man_field() != 0;
  }
  [[nodiscard]] constexpr bool is_quiet_nan() const {
    return is_nan() && (man_field() & F::quiet_bit) != 0;
  }
  [[nodiscard]] constexpr bool is_signaling_nan() const {
    return is_nan() && (man_field() & F::quiet_bit) == 0;
  }

  [[nodiscard]] static constexpr Float zero(bool sign = false) {
    return from_parts(sign, 0, 0);
  }
  [[nodiscard]] static constexpr Float inf(bool sign = false) {
    return from_parts(sign, static_cast<unsigned>(F::exp_field_max), 0);
  }
  /// Canonical quiet NaN (positive, quiet bit set, rest zero) as mandated by
  /// RISC-V for every NaN-producing operation.
  [[nodiscard]] static constexpr Float quiet_nan() {
    return from_parts(false, static_cast<unsigned>(F::exp_field_max), F::quiet_bit);
  }
  [[nodiscard]] static constexpr Float max_finite(bool sign = false) {
    return from_parts(sign, static_cast<unsigned>(F::exp_field_max) - 1, F::man_mask);
  }
  [[nodiscard]] static constexpr Float min_normal(bool sign = false) {
    return from_parts(sign, 1, 0);
  }
  [[nodiscard]] static constexpr Float min_subnormal(bool sign = false) {
    return from_parts(sign, 0, 1);
  }
  [[nodiscard]] static constexpr Float one(bool sign = false) {
    return from_parts(sign, static_cast<unsigned>(F::bias), 0);
  }

  /// Bit-pattern equality (distinguishes -0 from +0 and NaN payloads).
  friend constexpr bool operator==(const Float&, const Float&) = default;
};

using F8 = Float<Binary8>;
using F16 = Float<Binary16>;
using BF16 = Float<Binary16Alt>;
using F32 = Float<Binary32>;
using F64 = Float<Binary64>;

/// RISC-V FCLASS result mask bits.
enum class FpClass : std::uint16_t {
  NegInf = 1 << 0,
  NegNormal = 1 << 1,
  NegSubnormal = 1 << 2,
  NegZero = 1 << 3,
  PosZero = 1 << 4,
  PosSubnormal = 1 << 5,
  PosNormal = 1 << 6,
  PosInf = 1 << 7,
  SignalingNan = 1 << 8,
  QuietNan = 1 << 9,
};

template <class F>
[[nodiscard]] constexpr std::uint16_t classify(Float<F> x) {
  if (x.is_signaling_nan()) return static_cast<std::uint16_t>(FpClass::SignalingNan);
  if (x.is_nan()) return static_cast<std::uint16_t>(FpClass::QuietNan);
  const bool s = x.sign();
  if (x.is_inf())
    return static_cast<std::uint16_t>(s ? FpClass::NegInf : FpClass::PosInf);
  if (x.is_zero())
    return static_cast<std::uint16_t>(s ? FpClass::NegZero : FpClass::PosZero);
  if (x.is_subnormal())
    return static_cast<std::uint16_t>(s ? FpClass::NegSubnormal : FpClass::PosSubnormal);
  return static_cast<std::uint16_t>(s ? FpClass::NegNormal : FpClass::PosNormal);
}

}  // namespace sfrv::fp
