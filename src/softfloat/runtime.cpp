#include "softfloat/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>

#include "softfloat/arith.hpp"
#include "softfloat/compare.hpp"
#include "softfloat/convert.hpp"
#include "softfloat/host.hpp"

namespace sfrv::fp {

namespace {

template <class F>
Float<F> as(std::uint64_t bits) {
  return Float<F>::from_bits(bits);
}

constexpr std::size_t fidx(FpFormat f) { return static_cast<std::size_t>(f); }

// ---- scalar table entries --------------------------------------------------
// One instantiation per (operation, format); the templated arithmetic is
// inlined into each entry so a bound pointer goes straight to the math.

template <class F, auto OpFn>
std::uint64_t s_bin(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                    Flags& fl) {
  return OpFn(as<F>(a), as<F>(b), rm, fl).bits;
}

// Adapters giving flag-only and flag-less operations the common RtBinFn shape.
template <class F>
constexpr Float<F> min_rm(Float<F> a, Float<F> b, RoundingMode, Flags& fl) {
  return fmin(a, b, fl);
}
template <class F>
constexpr Float<F> max_rm(Float<F> a, Float<F> b, RoundingMode, Flags& fl) {
  return fmax(a, b, fl);
}
template <class F>
constexpr Float<F> sgnj_rm(Float<F> a, Float<F> b, RoundingMode, Flags&) {
  return copy_sign(a, b);
}
template <class F>
constexpr Float<F> sgnjn_rm(Float<F> a, Float<F> b, RoundingMode, Flags&) {
  return copy_sign_neg(a, b);
}
template <class F>
constexpr Float<F> sgnjx_rm(Float<F> a, Float<F> b, RoundingMode, Flags&) {
  return copy_sign_xor(a, b);
}

template <class F>
std::uint64_t s_fma(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    RoundingMode rm, Flags& fl) {
  return fma(as<F>(a), as<F>(b), as<F>(c), rm, fl).bits;
}

template <class F>
std::uint64_t s_sqrt(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return sqrt(as<F>(a), rm, fl).bits;
}

template <class F, auto CmpFn>
bool s_cmp(std::uint64_t a, std::uint64_t b, Flags& fl) {
  return CmpFn(as<F>(a), as<F>(b), fl);
}

template <class F>
std::uint16_t s_classify(std::uint64_t a) {
  return classify(as<F>(a));
}

template <class F>
std::int32_t s_to_int32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return to_int32(as<F>(a), rm, fl);
}

template <class F>
std::uint32_t s_to_uint32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return to_uint32(as<F>(a), rm, fl);
}

template <class F>
std::uint64_t s_from_int32(std::int32_t v, RoundingMode rm, Flags& fl) {
  return from_int32<F>(v, rm, fl).bits;
}

template <class F>
std::uint64_t s_from_uint32(std::uint32_t v, RoundingMode rm, Flags& fl) {
  return from_uint32<F>(v, rm, fl).bits;
}

template <class To, class From>
std::uint64_t s_convert(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return convert<To>(as<From>(a), rm, fl).bits;
}

template <class F>
constexpr RtOps make_ops() {
  return RtOps{
      .add = &s_bin<F, &add<F>>,
      .sub = &s_bin<F, &sub<F>>,
      .mul = &s_bin<F, &mul<F>>,
      .div = &s_bin<F, &div<F>>,
      .min = &s_bin<F, &min_rm<F>>,
      .max = &s_bin<F, &max_rm<F>>,
      .sgnj = &s_bin<F, &sgnj_rm<F>>,
      .sgnjn = &s_bin<F, &sgnjn_rm<F>>,
      .sgnjx = &s_bin<F, &sgnjx_rm<F>>,
      .fma = &s_fma<F>,
      .sqrt = &s_sqrt<F>,
      .feq = &s_cmp<F, &feq<F>>,
      .flt = &s_cmp<F, &flt<F>>,
      .fle = &s_cmp<F, &fle<F>>,
      .classify = &s_classify<F>,
      .to_int32 = &s_to_int32<F>,
      .to_uint32 = &s_to_uint32<F>,
      .from_int32 = &s_from_int32<F>,
      .from_uint32 = &s_from_uint32<F>,
  };
}

constexpr RtOps kOps[] = {
    make_ops<Binary8>(), make_ops<Binary16>(), make_ops<Binary16Alt>(),
    make_ops<Binary32>(), make_ops<Binary64>(),
};

#define SFRV_CVT_ROW(To)                                                   \
  {&s_convert<To, Binary8>, &s_convert<To, Binary16>,                      \
   &s_convert<To, Binary16Alt>, &s_convert<To, Binary32>,                  \
   &s_convert<To, Binary64>}

constexpr RtCvtFn kCvt[5][5] = {
    SFRV_CVT_ROW(Binary8),  SFRV_CVT_ROW(Binary16), SFRV_CVT_ROW(Binary16Alt),
    SFRV_CVT_ROW(Binary32), SFRV_CVT_ROW(Binary64),
};

#undef SFRV_CVT_ROW

// ---- packed-SIMD table entries ---------------------------------------------
// The lane loop lives inside each instantiation, so the element arithmetic is
// inlined with a compile-time lane width: one indirect call per instruction.

template <class F>
constexpr std::uint64_t lane_mask() {
  return F::width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << F::width) - 1);
}

template <class F>
Float<F> lane(std::uint64_t v, int l) {
  return as<F>((v >> (l * F::width)) & lane_mask<F>());
}

template <class F, auto OpFn>
std::uint64_t v_bin(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                    RoundingMode rm, Flags& fl) {
  std::uint64_t out = 0;
  const Float<F> b0 = lane<F>(b, 0);
  for (int l = 0; l < lanes; ++l) {
    const Float<F> bl = rep ? b0 : lane<F>(b, l);
    out |= static_cast<std::uint64_t>(OpFn(lane<F>(a, l), bl, rm, fl).bits)
           << (l * F::width);
  }
  return out;
}

template <class F>
std::uint64_t v_mac(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                    int lanes, bool rep, RoundingMode rm, Flags& fl) {
  std::uint64_t out = 0;
  const Float<F> b0 = lane<F>(b, 0);
  for (int l = 0; l < lanes; ++l) {
    const Float<F> bl = rep ? b0 : lane<F>(b, l);
    out |= static_cast<std::uint64_t>(
               fma(lane<F>(a, l), bl, lane<F>(d, l), rm, fl).bits)
           << (l * F::width);
  }
  return out;
}

template <class F>
std::uint64_t v_sqrt(std::uint64_t a, int lanes, RoundingMode rm, Flags& fl) {
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    out |= static_cast<std::uint64_t>(sqrt(lane<F>(a, l), rm, fl).bits)
           << (l * F::width);
  }
  return out;
}

/// Lanewise saturating conversion to a signed integer of the lane width.
template <class F>
std::uint64_t v_to_int(std::uint64_t a, int lanes, RoundingMode rm, Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    std::int64_t r = to_int32(lane<F>(a, l), rm, fl);
    if constexpr (w < 32) {
      constexpr std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
      constexpr std::int64_t lo = -hi - 1;
      if (r > hi) {
        r = hi;
        fl.raise(Flags::NV);
      } else if (r < lo) {
        r = lo;
        fl.raise(Flags::NV);
      }
    }
    out |= (static_cast<std::uint64_t>(r) & lane_mask<F>()) << (l * w);
  }
  return out;
}

/// Lanewise conversion from a sign-extended lane-width integer.
template <class F>
std::uint64_t v_from_int(std::uint64_t a, int lanes, RoundingMode rm,
                         Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    std::int64_t v = static_cast<std::int64_t>((a >> (l * w)) & lane_mask<F>());
    if (w < 64 && (v & (std::int64_t{1} << (w - 1))) != 0) {
      v -= std::int64_t{1} << w;
    }
    out |= static_cast<std::uint64_t>(
               from_int32<F>(static_cast<std::int32_t>(v), rm, fl).bits)
           << (l * w);
  }
  return out;
}

template <class F, auto CmpFn>
std::uint32_t v_cmp(std::uint64_t a, std::uint64_t b, int lanes, Flags& fl) {
  std::uint32_t mask = 0;
  for (int l = 0; l < lanes; ++l) {
    if (CmpFn(lane<F>(a, l), lane<F>(b, l), fl)) mask |= 1u << l;
  }
  return mask;
}

template <class F>
std::uint64_t v_dotp(std::uint64_t a, std::uint64_t b, std::uint64_t acc32,
                     int lanes, bool rep, RoundingMode rm, Flags& fl) {
  F32 acc = as<Binary32>(acc32);
  F32 wb0{};
  if (rep) wb0 = convert<Binary32>(lane<F>(b, 0), RoundingMode::RNE, fl);
  for (int l = 0; l < lanes; ++l) {
    const F32 wa = convert<Binary32>(lane<F>(a, l), RoundingMode::RNE, fl);
    const F32 wb =
        rep ? wb0 : convert<Binary32>(lane<F>(b, l), RoundingMode::RNE, fl);
    acc = fma(wa, wb, acc, rm, fl);
  }
  return acc.bits;
}

template <class F>
constexpr RtVecOps make_vec_ops() {
  return RtVecOps{
      .add = &v_bin<F, &add<F>>,
      .sub = &v_bin<F, &sub<F>>,
      .mul = &v_bin<F, &mul<F>>,
      .div = &v_bin<F, &div<F>>,
      .min = &v_bin<F, &min_rm<F>>,
      .max = &v_bin<F, &max_rm<F>>,
      .sgnj = &v_bin<F, &sgnj_rm<F>>,
      .sgnjn = &v_bin<F, &sgnjn_rm<F>>,
      .sgnjx = &v_bin<F, &sgnjx_rm<F>>,
      .mac = &v_mac<F>,
      .sqrt = &v_sqrt<F>,
      .to_int = &v_to_int<F>,
      .from_int = &v_from_int<F>,
      .feq = &v_cmp<F, &feq<F>>,
      .flt = &v_cmp<F, &flt<F>>,
      .fle = &v_cmp<F, &fle<F>>,
      .dotp = &v_dotp<F>,
  };
}

constexpr RtVecOps kVecOps[] = {
    make_vec_ops<Binary8>(), make_vec_ops<Binary16>(),
    make_vec_ops<Binary16Alt>(), make_vec_ops<Binary32>(),
    make_vec_ops<Binary64>(),
};

}  // namespace

// ---- backend selection ------------------------------------------------------

std::string_view backend_name(MathBackend b) {
  switch (b) {
    case MathBackend::Grs: return "grs";
    case MathBackend::Fast: return "fast";
  }
  return "grs";
}

MathBackend backend_from_name(std::string_view name) {
  for (const MathBackend b : {MathBackend::Grs, MathBackend::Fast}) {
    if (name == backend_name(b)) return b;
  }
  throw std::runtime_error("unknown backend name: " + std::string(name));
}

MathBackend backend_from_env(const char* value) {
  if (value == nullptr || *value == '\0') return MathBackend::Grs;
  try {
    return backend_from_name(value);
  } catch (const std::exception&) {
    std::fprintf(stderr,
                 "warning: ignoring invalid SFRV_BACKEND=%s "
                 "(expected grs|fast)\n",
                 value);
    return MathBackend::Grs;
  }
}

MathBackend default_backend() {
  static const MathBackend b = backend_from_env(std::getenv("SFRV_BACKEND"));
  return b;
}

// Same out-of-range policy as dispatch_format: assert in debug, declared
// unreachable in release (which also lets the bounds check compile away).
const RtOps& rt_ops(FpFormat f) {
  if (fidx(f) >= std::size(kOps)) detail::invalid_format_tag();
  return kOps[fidx(f)];
}

const RtVecOps& rt_vec_ops(FpFormat f) {
  if (fidx(f) >= std::size(kVecOps)) detail::invalid_format_tag();
  return kVecOps[fidx(f)];
}

RtCvtFn rt_convert_fn(FpFormat to, FpFormat from) {
  if (fidx(to) >= 5 || fidx(from) >= 5) detail::invalid_format_tag();
  return kCvt[fidx(to)][fidx(from)];
}

const RtOps& rt_ops(FpFormat f, MathBackend b) {
  return b == MathBackend::Fast ? detail::fast_ops(f) : rt_ops(f);
}

const RtVecOps& rt_vec_ops(FpFormat f, MathBackend b) {
  return b == MathBackend::Fast ? detail::fast_vec_ops(f) : rt_vec_ops(f);
}

RtCvtFn rt_convert_fn(FpFormat to, FpFormat from, MathBackend b) {
  return b == MathBackend::Fast ? detail::fast_convert_fn(to, from)
                                : rt_convert_fn(to, from);
}

// ---- per-call wrappers -----------------------------------------------------

std::uint64_t rt_add(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).add(a, b, rm, fl);
}

std::uint64_t rt_sub(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).sub(a, b, rm, fl);
}

std::uint64_t rt_mul(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).mul(a, b, rm, fl);
}

std::uint64_t rt_div(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).div(a, b, rm, fl);
}

std::uint64_t rt_sqrt(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl) {
  return rt_ops(f).sqrt(a, rm, fl);
}

std::uint64_t rt_fma(FpFormat f, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     RoundingMode rm, Flags& fl) {
  return rt_ops(f).fma(a, b, c, rm, fl);
}

std::uint64_t rt_min(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).min(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_max(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).max(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_sgnj(FpFormat f, std::uint64_t a, std::uint64_t b) {
  Flags fl;
  return rt_ops(f).sgnj(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_sgnjn(FpFormat f, std::uint64_t a, std::uint64_t b) {
  Flags fl;
  return rt_ops(f).sgnjn(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_sgnjx(FpFormat f, std::uint64_t a, std::uint64_t b) {
  Flags fl;
  return rt_ops(f).sgnjx(a, b, RoundingMode::RNE, fl);
}

bool rt_feq(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).feq(a, b, fl);
}

bool rt_flt(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).flt(a, b, fl);
}

bool rt_fle(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).fle(a, b, fl);
}

std::uint16_t rt_classify(FpFormat f, std::uint64_t a) {
  return rt_ops(f).classify(a);
}

std::uint64_t rt_convert(FpFormat to, FpFormat from, std::uint64_t a,
                         RoundingMode rm, Flags& fl) {
  return rt_convert_fn(to, from)(a, rm, fl);
}

std::int32_t rt_to_int32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl) {
  return rt_ops(f).to_int32(a, rm, fl);
}

std::uint32_t rt_to_uint32(FpFormat f, std::uint64_t a, RoundingMode rm,
                           Flags& fl) {
  return rt_ops(f).to_uint32(a, rm, fl);
}

std::uint64_t rt_from_int32(FpFormat f, std::int32_t v, RoundingMode rm,
                            Flags& fl) {
  return rt_ops(f).from_int32(v, rm, fl);
}

std::uint64_t rt_from_uint32(FpFormat f, std::uint32_t v, RoundingMode rm,
                             Flags& fl) {
  return rt_ops(f).from_uint32(v, rm, fl);
}

double rt_to_double(FpFormat f, std::uint64_t a) {
  return dispatch_format(
      f, [&]<class F>() -> double { return to_double(as<F>(a)); });
}

std::uint64_t rt_from_double(FpFormat f, double v, RoundingMode rm, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return from_double<F>(v, rm, fl).bits;
  });
}

}  // namespace sfrv::fp
