#include "softfloat/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "softfloat/arith.hpp"
#include "softfloat/compare.hpp"
#include "softfloat/convert.hpp"
#include "softfloat/host.hpp"
#include "softfloat/posit.hpp"
#include "util/env.hpp"

namespace sfrv::fp {

namespace {

template <class F>
Float<F> as(std::uint64_t bits) {
  return Float<F>::from_bits(bits);
}

constexpr std::size_t fidx(FpFormat f) { return static_cast<std::size_t>(f); }

// ---- scalar table entries --------------------------------------------------
// One instantiation per (operation, format); the templated arithmetic is
// inlined into each entry so a bound pointer goes straight to the math.

template <class F, auto OpFn>
std::uint64_t s_bin(std::uint64_t a, std::uint64_t b, RoundingMode rm,
                    Flags& fl) {
  return OpFn(as<F>(a), as<F>(b), rm, fl).bits;
}

// Adapters giving flag-only and flag-less operations the common RtBinFn shape.
template <class F>
constexpr Float<F> min_rm(Float<F> a, Float<F> b, RoundingMode, Flags& fl) {
  return fmin(a, b, fl);
}
template <class F>
constexpr Float<F> max_rm(Float<F> a, Float<F> b, RoundingMode, Flags& fl) {
  return fmax(a, b, fl);
}
template <class F>
constexpr Float<F> sgnj_rm(Float<F> a, Float<F> b, RoundingMode, Flags&) {
  return copy_sign(a, b);
}
template <class F>
constexpr Float<F> sgnjn_rm(Float<F> a, Float<F> b, RoundingMode, Flags&) {
  return copy_sign_neg(a, b);
}
template <class F>
constexpr Float<F> sgnjx_rm(Float<F> a, Float<F> b, RoundingMode, Flags&) {
  return copy_sign_xor(a, b);
}

template <class F>
std::uint64_t s_fma(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    RoundingMode rm, Flags& fl) {
  return fma(as<F>(a), as<F>(b), as<F>(c), rm, fl).bits;
}

template <class F>
std::uint64_t s_sqrt(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return sqrt(as<F>(a), rm, fl).bits;
}

template <class F, auto CmpFn>
bool s_cmp(std::uint64_t a, std::uint64_t b, Flags& fl) {
  return CmpFn(as<F>(a), as<F>(b), fl);
}

template <class F>
std::uint16_t s_classify(std::uint64_t a) {
  return classify(as<F>(a));
}

template <class F>
std::int32_t s_to_int32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return to_int32(as<F>(a), rm, fl);
}

template <class F>
std::uint32_t s_to_uint32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return to_uint32(as<F>(a), rm, fl);
}

template <class F>
std::uint64_t s_from_int32(std::int32_t v, RoundingMode rm, Flags& fl) {
  return from_int32<F>(v, rm, fl).bits;
}

template <class F>
std::uint64_t s_from_uint32(std::uint32_t v, RoundingMode rm, Flags& fl) {
  return from_uint32<F>(v, rm, fl).bits;
}

template <class To, class From>
std::uint64_t s_convert(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return convert<To>(as<From>(a), rm, fl).bits;
}

template <class F>
constexpr RtOps make_ops() {
  return RtOps{
      .add = &s_bin<F, &add<F>>,
      .sub = &s_bin<F, &sub<F>>,
      .mul = &s_bin<F, &mul<F>>,
      .div = &s_bin<F, &div<F>>,
      .min = &s_bin<F, &min_rm<F>>,
      .max = &s_bin<F, &max_rm<F>>,
      .sgnj = &s_bin<F, &sgnj_rm<F>>,
      .sgnjn = &s_bin<F, &sgnjn_rm<F>>,
      .sgnjx = &s_bin<F, &sgnjx_rm<F>>,
      .fma = &s_fma<F>,
      .sqrt = &s_sqrt<F>,
      .feq = &s_cmp<F, &feq<F>>,
      .flt = &s_cmp<F, &flt<F>>,
      .fle = &s_cmp<F, &fle<F>>,
      .classify = &s_classify<F>,
      .to_int32 = &s_to_int32<F>,
      .to_uint32 = &s_to_uint32<F>,
      .from_int32 = &s_from_int32<F>,
      .from_uint32 = &s_from_uint32<F>,
  };
}

// ---- posit scalar table entries --------------------------------------------
// Adapters giving the posit core (posit.hpp) the common Rt* signatures. Posit
// arithmetic has one rounding attitude (RNE on the pattern) and raises no
// arithmetic flags, so the RoundingMode argument is ignored throughout.

template <class P, auto OpFn>
std::uint64_t p_bin(std::uint64_t a, std::uint64_t b, RoundingMode, Flags&) {
  return OpFn(a, b);
}

template <class P>
std::uint64_t p_fma(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    RoundingMode, Flags&) {
  return posit_fma<P>(a, b, c);
}

template <class P>
std::uint64_t p_sqrt(std::uint64_t a, RoundingMode, Flags&) {
  return posit_sqrt<P>(a);
}

template <class P, auto CmpFn>
bool p_cmp(std::uint64_t a, std::uint64_t b, Flags&) {
  return CmpFn(a, b);
}

template <class P>
std::int32_t p_to_int32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return posit_to_int32<P>(a, rm, fl);
}

template <class P>
std::uint32_t p_to_uint32(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return posit_to_uint32<P>(a, rm, fl);
}

template <class P>
std::uint64_t p_from_int32(std::int32_t v, RoundingMode, Flags&) {
  return posit_from_int32<P>(v);
}

template <class P>
std::uint64_t p_from_uint32(std::uint32_t v, RoundingMode, Flags&) {
  return posit_from_uint32<P>(v);
}

// Conversion entries for the mixed rows of the convert table.
template <class To, class PFrom>
std::uint64_t p_to_ieee(std::uint64_t a, RoundingMode rm, Flags& fl) {
  return posit_to_ieee<To, PFrom>(a, rm, fl).bits;
}
template <class PTo, class From>
std::uint64_t p_from_ieee(std::uint64_t a, RoundingMode, Flags&) {
  return posit_from_ieee<PTo, From>(as<From>(a));
}
template <class PTo, class PFrom>
std::uint64_t p_resize(std::uint64_t a, RoundingMode, Flags&) {
  return posit_resize<PTo, PFrom>(a);
}

template <class P>
constexpr RtOps make_posit_ops() {
  return RtOps{
      .add = &p_bin<P, &posit_add<P>>,
      .sub = &p_bin<P, &posit_sub<P>>,
      .mul = &p_bin<P, &posit_mul<P>>,
      .div = &p_bin<P, &posit_div<P>>,
      .min = &p_bin<P, &posit_min<P>>,
      .max = &p_bin<P, &posit_max<P>>,
      .sgnj = &p_bin<P, &posit_sgnj<P>>,
      .sgnjn = &p_bin<P, &posit_sgnjn<P>>,
      .sgnjx = &p_bin<P, &posit_sgnjx<P>>,
      .fma = &p_fma<P>,
      .sqrt = &p_sqrt<P>,
      .feq = &p_cmp<P, &posit_eq<P>>,
      .flt = &p_cmp<P, &posit_lt<P>>,
      .fle = &p_cmp<P, &posit_le<P>>,
      .classify = &posit_classify<P>,
      .to_int32 = &p_to_int32<P>,
      .to_uint32 = &p_to_uint32<P>,
      .from_int32 = &p_from_int32<P>,
      .from_uint32 = &p_from_uint32<P>,
  };
}

constexpr RtOps kOps[] = {
    make_ops<Binary8>(),    make_ops<Binary16>(),     make_ops<Binary16Alt>(),
    make_ops<Binary32>(),   make_ops<Binary64>(),     make_posit_ops<Posit8>(),
    make_posit_ops<Posit16>(),
};
static_assert(std::size(kOps) == kNumFormats,
              "kOps needs one row per FpFormat tag");

// The convert table covers the full format cross product: IEEE<->IEEE via
// the templated converter, posit<->IEEE via the posit round-pack / exact
// double widening, posit<->posit via resize. Diagonal posit entries are the
// (exact) identity resize, mirroring the IEEE diagonal's exact self-convert.
#define SFRV_CVT_ROW(To)                                                   \
  {&s_convert<To, Binary8>, &s_convert<To, Binary16>,                      \
   &s_convert<To, Binary16Alt>, &s_convert<To, Binary32>,                  \
   &s_convert<To, Binary64>, &p_to_ieee<To, Posit8>,                       \
   &p_to_ieee<To, Posit16>}

#define SFRV_CVT_POSIT_ROW(To)                                             \
  {&p_from_ieee<To, Binary8>, &p_from_ieee<To, Binary16>,                  \
   &p_from_ieee<To, Binary16Alt>, &p_from_ieee<To, Binary32>,              \
   &p_from_ieee<To, Binary64>, &p_resize<To, Posit8>,                      \
   &p_resize<To, Posit16>}

constexpr RtCvtFn kCvt[kNumFormats][kNumFormats] = {
    SFRV_CVT_ROW(Binary8),        SFRV_CVT_ROW(Binary16),
    SFRV_CVT_ROW(Binary16Alt),    SFRV_CVT_ROW(Binary32),
    SFRV_CVT_ROW(Binary64),       SFRV_CVT_POSIT_ROW(Posit8),
    SFRV_CVT_POSIT_ROW(Posit16),
};

// The dimensions above derive from kNumFormats, but aggregate init would
// value-initialize (to nullptr) any rows or entries a new format forgot to
// add. Refuse to compile with holes in the matrix.
constexpr bool all_cvt_entries_bound() {
  for (const auto& row : kCvt) {
    for (const auto fn : row) {
      if (fn == nullptr) return false;
    }
  }
  return true;
}
static_assert(all_cvt_entries_bound(),
              "kCvt must bind every (to, from) format pair");

#undef SFRV_CVT_ROW
#undef SFRV_CVT_POSIT_ROW

// ---- packed-SIMD table entries ---------------------------------------------
// The lane loop lives inside each instantiation, so the element arithmetic is
// inlined with a compile-time lane width: one indirect call per instruction.

template <class F>
constexpr std::uint64_t lane_mask() {
  return F::width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << F::width) - 1);
}

template <class F>
Float<F> lane(std::uint64_t v, int l) {
  return as<F>((v >> (l * F::width)) & lane_mask<F>());
}

template <class F, auto OpFn>
std::uint64_t v_bin(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                    RoundingMode rm, Flags& fl) {
  std::uint64_t out = 0;
  const Float<F> b0 = lane<F>(b, 0);
  for (int l = 0; l < lanes; ++l) {
    const Float<F> bl = rep ? b0 : lane<F>(b, l);
    out |= static_cast<std::uint64_t>(OpFn(lane<F>(a, l), bl, rm, fl).bits)
           << (l * F::width);
  }
  return out;
}

template <class F>
std::uint64_t v_mac(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                    int lanes, bool rep, RoundingMode rm, Flags& fl) {
  std::uint64_t out = 0;
  const Float<F> b0 = lane<F>(b, 0);
  for (int l = 0; l < lanes; ++l) {
    const Float<F> bl = rep ? b0 : lane<F>(b, l);
    out |= static_cast<std::uint64_t>(
               fma(lane<F>(a, l), bl, lane<F>(d, l), rm, fl).bits)
           << (l * F::width);
  }
  return out;
}

template <class F>
std::uint64_t v_sqrt(std::uint64_t a, int lanes, RoundingMode rm, Flags& fl) {
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    out |= static_cast<std::uint64_t>(sqrt(lane<F>(a, l), rm, fl).bits)
           << (l * F::width);
  }
  return out;
}

/// Lanewise saturating conversion to a signed integer of the lane width.
template <class F>
std::uint64_t v_to_int(std::uint64_t a, int lanes, RoundingMode rm, Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    std::int64_t r = to_int32(lane<F>(a, l), rm, fl);
    if constexpr (w < 32) {
      constexpr std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
      constexpr std::int64_t lo = -hi - 1;
      if (r > hi) {
        r = hi;
        fl.raise(Flags::NV);
      } else if (r < lo) {
        r = lo;
        fl.raise(Flags::NV);
      }
    }
    out |= (static_cast<std::uint64_t>(r) & lane_mask<F>()) << (l * w);
  }
  return out;
}

/// Lanewise conversion from a sign-extended lane-width integer.
template <class F>
std::uint64_t v_from_int(std::uint64_t a, int lanes, RoundingMode rm,
                         Flags& fl) {
  constexpr int w = F::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    std::int64_t v = static_cast<std::int64_t>((a >> (l * w)) & lane_mask<F>());
    if (w < 64 && (v & (std::int64_t{1} << (w - 1))) != 0) {
      v -= std::int64_t{1} << w;
    }
    out |= static_cast<std::uint64_t>(
               from_int32<F>(static_cast<std::int32_t>(v), rm, fl).bits)
           << (l * w);
  }
  return out;
}

template <class F, auto CmpFn>
std::uint32_t v_cmp(std::uint64_t a, std::uint64_t b, int lanes, Flags& fl) {
  std::uint32_t mask = 0;
  for (int l = 0; l < lanes; ++l) {
    if (CmpFn(lane<F>(a, l), lane<F>(b, l), fl)) mask |= 1u << l;
  }
  return mask;
}

template <class F>
std::uint64_t v_dotp(std::uint64_t a, std::uint64_t b, std::uint64_t acc32,
                     int lanes, bool rep, RoundingMode rm, Flags& fl) {
  F32 acc = as<Binary32>(acc32);
  F32 wb0{};
  if (rep) wb0 = convert<Binary32>(lane<F>(b, 0), RoundingMode::RNE, fl);
  for (int l = 0; l < lanes; ++l) {
    const F32 wa = convert<Binary32>(lane<F>(a, l), RoundingMode::RNE, fl);
    const F32 wb =
        rep ? wb0 : convert<Binary32>(lane<F>(b, l), RoundingMode::RNE, fl);
    acc = fma(wa, wb, acc, rm, fl);
  }
  return acc.bits;
}

/// ExSdotp: wide lane l of the packed accumulator takes two sequential
/// chained FMAs in the next-wider format, in narrow-lane order. The widening
/// conversion is exact for every supported (narrow, wide) pair, so the only
/// roundings are the two wide FMAs -- exactly the MiniFloat-NN datapath.
template <class F, class Wide>
std::uint64_t v_exsdotp(std::uint64_t a, std::uint64_t b, std::uint64_t acc,
                        int lanes, bool rep, RoundingMode rm, Flags& fl) {
  static_assert(Wide::width == 2 * F::width);
  std::uint64_t out = 0;
  Float<Wide> wb0{};
  if (rep) wb0 = convert<Wide>(lane<F>(b, 0), RoundingMode::RNE, fl);
  for (int wl = 0; 2 * wl < lanes; ++wl) {
    Float<Wide> accl = lane<Wide>(acc, wl);
    const int k = lanes - 2 * wl < 2 ? lanes - 2 * wl : 2;
    for (int i = 0; i < k; ++i) {
      const int l = 2 * wl + i;
      const Float<Wide> wa = convert<Wide>(lane<F>(a, l), RoundingMode::RNE, fl);
      const Float<Wide> wb =
          rep ? wb0 : convert<Wide>(lane<F>(b, l), RoundingMode::RNE, fl);
      accl = fma(wa, wb, accl, rm, fl);
    }
    out |= static_cast<std::uint64_t>(accl.bits) << (wl * Wide::width);
  }
  return out;
}

/// Trap entry for formats with no in-register wider neighbour (binary64,
/// posit16): no ISA opcode binds these, so a call is a decoder bug.
std::uint64_t v_exsdotp_invalid(std::uint64_t, std::uint64_t, std::uint64_t,
                                int, bool, RoundingMode, Flags&) {
  detail::invalid_format_tag();
}

// ---- posit packed-SIMD entries ---------------------------------------------
// Same lane-loop structure over raw posit patterns.

template <class P>
std::uint64_t plane(std::uint64_t v, int l) {
  return (v >> (l * P::width)) & P::mask;
}

template <class P, auto OpFn>
std::uint64_t vp_bin(std::uint64_t a, std::uint64_t b, int lanes, bool rep,
                     RoundingMode, Flags&) {
  std::uint64_t out = 0;
  const std::uint64_t b0 = plane<P>(b, 0);
  for (int l = 0; l < lanes; ++l) {
    const std::uint64_t bl = rep ? b0 : plane<P>(b, l);
    out |= OpFn(plane<P>(a, l), bl) << (l * P::width);
  }
  return out;
}

template <class P>
std::uint64_t vp_mac(std::uint64_t a, std::uint64_t b, std::uint64_t d,
                     int lanes, bool rep, RoundingMode, Flags&) {
  std::uint64_t out = 0;
  const std::uint64_t b0 = plane<P>(b, 0);
  for (int l = 0; l < lanes; ++l) {
    const std::uint64_t bl = rep ? b0 : plane<P>(b, l);
    out |= posit_fma<P>(plane<P>(a, l), bl, plane<P>(d, l)) << (l * P::width);
  }
  return out;
}

template <class P>
std::uint64_t vp_sqrt(std::uint64_t a, int lanes, RoundingMode, Flags&) {
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    out |= posit_sqrt<P>(plane<P>(a, l)) << (l * P::width);
  }
  return out;
}

/// Lanewise posit -> saturating signed integer of the lane width (NaR maps
/// to the most negative lane value with NV, mirroring the scalar contract).
template <class P>
std::uint64_t vp_to_int(std::uint64_t a, int lanes, RoundingMode rm, Flags& fl) {
  constexpr int w = P::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    std::int64_t r = posit_to_int32<P>(plane<P>(a, l), rm, fl);
    constexpr std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
    constexpr std::int64_t lo = -hi - 1;
    if (r > hi) {
      r = hi;
      fl.raise(Flags::NV);
    } else if (r < lo) {
      r = lo;
      fl.raise(Flags::NV);
    }
    out |= (static_cast<std::uint64_t>(r) & P::mask) << (l * w);
  }
  return out;
}

template <class P>
std::uint64_t vp_from_int(std::uint64_t a, int lanes, RoundingMode, Flags&) {
  constexpr int w = P::width;
  std::uint64_t out = 0;
  for (int l = 0; l < lanes; ++l) {
    std::int64_t v = static_cast<std::int64_t>((a >> (l * w)) & P::mask);
    if ((v & (std::int64_t{1} << (w - 1))) != 0) v -= std::int64_t{1} << w;
    out |= posit_from_int32<P>(static_cast<std::int32_t>(v)) << (l * w);
  }
  return out;
}

template <class P, auto CmpFn>
std::uint32_t vp_cmp(std::uint64_t a, std::uint64_t b, int lanes, Flags&) {
  std::uint32_t mask = 0;
  for (int l = 0; l < lanes; ++l) {
    if (CmpFn(plane<P>(a, l), plane<P>(b, l))) mask |= 1u << l;
  }
  return mask;
}

/// Expanding dot product into a scalar binary32 accumulator: posit lanes
/// widen exactly to binary32 (<= 13 significand bits, |scale| <= 56), then
/// the usual fused binary32 chain. NaR widens to NaN, poisoning the sum.
template <class P>
std::uint64_t vp_dotp(std::uint64_t a, std::uint64_t b, std::uint64_t acc32,
                      int lanes, bool rep, RoundingMode rm, Flags& fl) {
  F32 acc = as<Binary32>(acc32);
  F32 wb0{};
  if (rep) wb0 = posit_to_ieee<Binary32, P>(plane<P>(b, 0), RoundingMode::RNE, fl);
  for (int l = 0; l < lanes; ++l) {
    const F32 wa = posit_to_ieee<Binary32, P>(plane<P>(a, l), RoundingMode::RNE, fl);
    const F32 wb =
        rep ? wb0 : posit_to_ieee<Binary32, P>(plane<P>(b, l), RoundingMode::RNE, fl);
    acc = fma(wa, wb, acc, rm, fl);
  }
  return acc.bits;
}

/// Posit ExSdotp: posit8 pairs into packed posit16 accumulator lanes; the
/// widening resize is exact and each wide FMA rounds once in posit16.
template <class P, class PWide>
std::uint64_t vp_exsdotp(std::uint64_t a, std::uint64_t b, std::uint64_t acc,
                         int lanes, bool rep, RoundingMode, Flags&) {
  static_assert(PWide::width == 2 * P::width);
  std::uint64_t out = 0;
  const std::uint64_t wb0 = posit_resize<PWide, P>(plane<P>(b, 0));
  for (int wl = 0; 2 * wl < lanes; ++wl) {
    std::uint64_t accl = plane<PWide>(acc, wl);
    const int k = lanes - 2 * wl < 2 ? lanes - 2 * wl : 2;
    for (int i = 0; i < k; ++i) {
      const int l = 2 * wl + i;
      const std::uint64_t wa = posit_resize<PWide, P>(plane<P>(a, l));
      const std::uint64_t wb = rep ? wb0 : posit_resize<PWide, P>(plane<P>(b, l));
      accl = posit_fma<PWide>(wa, wb, accl);
    }
    out |= accl << (wl * PWide::width);
  }
  return out;
}

template <class F>
constexpr RtVecOps make_vec_ops() {
  // The one-step-wider neighbour for the exsdotp entry; binary64 has none.
  using Wide = std::conditional_t<
      std::is_same_v<F, Binary8>, Binary16,
      std::conditional_t<std::is_same_v<F, Binary16> ||
                             std::is_same_v<F, Binary16Alt>,
                         Binary32,
                         std::conditional_t<std::is_same_v<F, Binary32>,
                                            Binary64, void>>>;
  RtVecOps ops{
      .add = &v_bin<F, &add<F>>,
      .sub = &v_bin<F, &sub<F>>,
      .mul = &v_bin<F, &mul<F>>,
      .div = &v_bin<F, &div<F>>,
      .min = &v_bin<F, &min_rm<F>>,
      .max = &v_bin<F, &max_rm<F>>,
      .sgnj = &v_bin<F, &sgnj_rm<F>>,
      .sgnjn = &v_bin<F, &sgnjn_rm<F>>,
      .sgnjx = &v_bin<F, &sgnjx_rm<F>>,
      .mac = &v_mac<F>,
      .sqrt = &v_sqrt<F>,
      .to_int = &v_to_int<F>,
      .from_int = &v_from_int<F>,
      .feq = &v_cmp<F, &feq<F>>,
      .flt = &v_cmp<F, &flt<F>>,
      .fle = &v_cmp<F, &fle<F>>,
      .dotp = &v_dotp<F>,
      .exsdotp = &v_exsdotp_invalid,
  };
  if constexpr (!std::is_same_v<Wide, void>) {
    ops.exsdotp = &v_exsdotp<F, Wide>;
  }
  return ops;
}

template <class P>
constexpr RtVecOps make_posit_vec_ops() {
  RtVecOps ops{
      .add = &vp_bin<P, &posit_add<P>>,
      .sub = &vp_bin<P, &posit_sub<P>>,
      .mul = &vp_bin<P, &posit_mul<P>>,
      .div = &vp_bin<P, &posit_div<P>>,
      .min = &vp_bin<P, &posit_min<P>>,
      .max = &vp_bin<P, &posit_max<P>>,
      .sgnj = &vp_bin<P, &posit_sgnj<P>>,
      .sgnjn = &vp_bin<P, &posit_sgnjn<P>>,
      .sgnjx = &vp_bin<P, &posit_sgnjx<P>>,
      .mac = &vp_mac<P>,
      .sqrt = &vp_sqrt<P>,
      .to_int = &vp_to_int<P>,
      .from_int = &vp_from_int<P>,
      .feq = &vp_cmp<P, &posit_eq<P>>,
      .flt = &vp_cmp<P, &posit_lt<P>>,
      .fle = &vp_cmp<P, &posit_le<P>>,
      .dotp = &vp_dotp<P>,
      .exsdotp = &v_exsdotp_invalid,
  };
  if constexpr (std::is_same_v<P, Posit8>) {
    ops.exsdotp = &vp_exsdotp<Posit8, Posit16>;
  }
  return ops;
}

constexpr RtVecOps kVecOps[] = {
    make_vec_ops<Binary8>(),          make_vec_ops<Binary16>(),
    make_vec_ops<Binary16Alt>(),      make_vec_ops<Binary32>(),
    make_vec_ops<Binary64>(),         make_posit_vec_ops<Posit8>(),
    make_posit_vec_ops<Posit16>(),
};
static_assert(std::size(kVecOps) == kNumFormats,
              "kVecOps needs one row per FpFormat tag");

}  // namespace

// ---- backend selection ------------------------------------------------------

std::string_view backend_name(MathBackend b) {
  switch (b) {
    case MathBackend::Grs: return "grs";
    case MathBackend::Fast: return "fast";
  }
  return "grs";
}

MathBackend backend_from_name(std::string_view name) {
  for (const MathBackend b : {MathBackend::Grs, MathBackend::Fast}) {
    if (name == backend_name(b)) return b;
  }
  throw std::runtime_error("unknown backend name: " + std::string(name));
}

MathBackend backend_from_env(const char* value) {
  return util::parse_env_enum(
      value, MathBackend::Grs,
      [](const char* v) { return backend_from_name(v); }, "SFRV_BACKEND",
      "grs|fast");
}

MathBackend default_backend() {
  static const MathBackend b = backend_from_env(std::getenv("SFRV_BACKEND"));
  return b;
}

// Same out-of-range policy as dispatch_format: assert in debug, declared
// unreachable in release (which also lets the bounds check compile away).
const RtOps& rt_ops(FpFormat f) {
  if (fidx(f) >= std::size(kOps)) detail::invalid_format_tag();
  return kOps[fidx(f)];
}

const RtVecOps& rt_vec_ops(FpFormat f) {
  if (fidx(f) >= std::size(kVecOps)) detail::invalid_format_tag();
  return kVecOps[fidx(f)];
}

RtCvtFn rt_convert_fn(FpFormat to, FpFormat from) {
  // Dimensions derive from kNumFormats (static_asserts above); the bounds
  // check must track them so a new format can't silently index out of range.
  if (fidx(to) >= std::size(kCvt) || fidx(from) >= std::size(kCvt[0]))
    detail::invalid_format_tag();
  return kCvt[fidx(to)][fidx(from)];
}

const RtOps& rt_ops(FpFormat f, MathBackend b) {
  return b == MathBackend::Fast ? detail::fast_ops(f) : rt_ops(f);
}

const RtVecOps& rt_vec_ops(FpFormat f, MathBackend b) {
  return b == MathBackend::Fast ? detail::fast_vec_ops(f) : rt_vec_ops(f);
}

RtCvtFn rt_convert_fn(FpFormat to, FpFormat from, MathBackend b) {
  return b == MathBackend::Fast ? detail::fast_convert_fn(to, from)
                                : rt_convert_fn(to, from);
}

// ---- per-call wrappers -----------------------------------------------------

std::uint64_t rt_add(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).add(a, b, rm, fl);
}

std::uint64_t rt_sub(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).sub(a, b, rm, fl);
}

std::uint64_t rt_mul(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).mul(a, b, rm, fl);
}

std::uint64_t rt_div(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return rt_ops(f).div(a, b, rm, fl);
}

std::uint64_t rt_sqrt(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl) {
  return rt_ops(f).sqrt(a, rm, fl);
}

std::uint64_t rt_fma(FpFormat f, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     RoundingMode rm, Flags& fl) {
  return rt_ops(f).fma(a, b, c, rm, fl);
}

std::uint64_t rt_min(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).min(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_max(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).max(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_sgnj(FpFormat f, std::uint64_t a, std::uint64_t b) {
  Flags fl;
  return rt_ops(f).sgnj(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_sgnjn(FpFormat f, std::uint64_t a, std::uint64_t b) {
  Flags fl;
  return rt_ops(f).sgnjn(a, b, RoundingMode::RNE, fl);
}

std::uint64_t rt_sgnjx(FpFormat f, std::uint64_t a, std::uint64_t b) {
  Flags fl;
  return rt_ops(f).sgnjx(a, b, RoundingMode::RNE, fl);
}

bool rt_feq(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).feq(a, b, fl);
}

bool rt_flt(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).flt(a, b, fl);
}

bool rt_fle(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return rt_ops(f).fle(a, b, fl);
}

std::uint16_t rt_classify(FpFormat f, std::uint64_t a) {
  return rt_ops(f).classify(a);
}

std::uint64_t rt_convert(FpFormat to, FpFormat from, std::uint64_t a,
                         RoundingMode rm, Flags& fl) {
  return rt_convert_fn(to, from)(a, rm, fl);
}

std::int32_t rt_to_int32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl) {
  return rt_ops(f).to_int32(a, rm, fl);
}

std::uint32_t rt_to_uint32(FpFormat f, std::uint64_t a, RoundingMode rm,
                           Flags& fl) {
  return rt_ops(f).to_uint32(a, rm, fl);
}

std::uint64_t rt_from_int32(FpFormat f, std::int32_t v, RoundingMode rm,
                            Flags& fl) {
  return rt_ops(f).from_int32(v, rm, fl);
}

std::uint64_t rt_from_uint32(FpFormat f, std::uint32_t v, RoundingMode rm,
                             Flags& fl) {
  return rt_ops(f).from_uint32(v, rm, fl);
}

double rt_to_double(FpFormat f, std::uint64_t a) {
  if (f == FpFormat::P8) return posit_to_double<Posit8>(a);
  if (f == FpFormat::P16) return posit_to_double<Posit16>(a);
  return dispatch_format(
      f, [&]<class F>() -> double { return to_double(as<F>(a)); });
}

std::uint64_t rt_from_double(FpFormat f, double v, RoundingMode rm, Flags& fl) {
  // Posit rounding needs an exact input; a host double IS exact, so decompose
  // it through binary64 and round once into the posit (rm is ignored by the
  // posit convention, flags are untouched).
  if (is_posit_format(f)) {
    const Float<Binary64> w = from_host(v);
    const std::uint64_t bits =
        (f == FpFormat::P8) ? posit_from_ieee<Posit8, Binary64>(w)
                            : posit_from_ieee<Posit16, Binary64>(w);
    (void)rm;
    return bits;
  }
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return from_double<F>(v, rm, fl).bits;
  });
}

}  // namespace sfrv::fp
