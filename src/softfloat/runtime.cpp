#include "softfloat/runtime.hpp"

#include "softfloat/arith.hpp"
#include "softfloat/compare.hpp"
#include "softfloat/convert.hpp"
#include "softfloat/host.hpp"

namespace sfrv::fp {

namespace {

template <class F>
Float<F> as(std::uint64_t bits) {
  return Float<F>::from_bits(bits);
}

}  // namespace

std::uint64_t rt_add(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return add(as<F>(a), as<F>(b), rm, fl).bits;
  });
}

std::uint64_t rt_sub(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return sub(as<F>(a), as<F>(b), rm, fl).bits;
  });
}

std::uint64_t rt_mul(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return mul(as<F>(a), as<F>(b), rm, fl).bits;
  });
}

std::uint64_t rt_div(FpFormat f, std::uint64_t a, std::uint64_t b, RoundingMode rm,
                     Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return div(as<F>(a), as<F>(b), rm, fl).bits;
  });
}

std::uint64_t rt_sqrt(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return sqrt(as<F>(a), rm, fl).bits;
  });
}

std::uint64_t rt_fma(FpFormat f, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                     RoundingMode rm, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return fma(as<F>(a), as<F>(b), as<F>(c), rm, fl).bits;
  });
}

std::uint64_t rt_min(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return fmin(as<F>(a), as<F>(b), fl).bits;
  });
}

std::uint64_t rt_max(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return fmax(as<F>(a), as<F>(b), fl).bits;
  });
}

std::uint64_t rt_sgnj(FpFormat f, std::uint64_t a, std::uint64_t b) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return copy_sign(as<F>(a), as<F>(b)).bits;
  });
}

std::uint64_t rt_sgnjn(FpFormat f, std::uint64_t a, std::uint64_t b) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return copy_sign_neg(as<F>(a), as<F>(b)).bits;
  });
}

std::uint64_t rt_sgnjx(FpFormat f, std::uint64_t a, std::uint64_t b) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return copy_sign_xor(as<F>(a), as<F>(b)).bits;
  });
}

bool rt_feq(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return dispatch_format(
      f, [&]<class F>() -> bool { return feq(as<F>(a), as<F>(b), fl); });
}

bool rt_flt(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return dispatch_format(
      f, [&]<class F>() -> bool { return flt(as<F>(a), as<F>(b), fl); });
}

bool rt_fle(FpFormat f, std::uint64_t a, std::uint64_t b, Flags& fl) {
  return dispatch_format(
      f, [&]<class F>() -> bool { return fle(as<F>(a), as<F>(b), fl); });
}

std::uint16_t rt_classify(FpFormat f, std::uint64_t a) {
  return dispatch_format(
      f, [&]<class F>() -> std::uint16_t { return classify(as<F>(a)); });
}

std::uint64_t rt_convert(FpFormat to, FpFormat from, std::uint64_t a,
                         RoundingMode rm, Flags& fl) {
  return dispatch_format(to, [&]<class To>() -> std::uint64_t {
    return dispatch_format(from, [&]<class From>() -> std::uint64_t {
      return convert<To>(as<From>(a), rm, fl).bits;
    });
  });
}

std::int32_t rt_to_int32(FpFormat f, std::uint64_t a, RoundingMode rm, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::int32_t {
    return to_int32(as<F>(a), rm, fl);
  });
}

std::uint32_t rt_to_uint32(FpFormat f, std::uint64_t a, RoundingMode rm,
                           Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint32_t {
    return to_uint32(as<F>(a), rm, fl);
  });
}

std::uint64_t rt_from_int32(FpFormat f, std::int32_t v, RoundingMode rm,
                            Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return from_int32<F>(v, rm, fl).bits;
  });
}

std::uint64_t rt_from_uint32(FpFormat f, std::uint32_t v, RoundingMode rm,
                             Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return from_uint32<F>(v, rm, fl).bits;
  });
}

double rt_to_double(FpFormat f, std::uint64_t a) {
  return dispatch_format(
      f, [&]<class F>() -> double { return to_double(as<F>(a)); });
}

std::uint64_t rt_from_double(FpFormat f, double v, RoundingMode rm, Flags& fl) {
  return dispatch_format(f, [&]<class F>() -> std::uint64_t {
    return from_double<F>(v, rm, fl).bits;
  });
}

}  // namespace sfrv::fp
