// Correctly rounded conversions: FP<->FP across all formats, FP<->int32.
// Semantics (NaN results, clamping, flag behaviour) follow the RISC-V F
// extension, which the smallFloat extensions mirror for each new format.
#pragma once

#include <cstdint>
#include <limits>

#include "softfloat/arith.hpp"
#include "softfloat/flags.hpp"
#include "softfloat/float.hpp"
#include "softfloat/roundpack.hpp"

namespace sfrv::fp {

/// Convert between any two supported formats with a single rounding.
/// Widening conversions (more precision and range) are always exact.
template <class To, class From>
[[nodiscard]] constexpr Float<To> convert(Float<From> x, RoundingMode rm,
                                          Flags& fl) {
  if (x.is_nan()) {
    if (x.is_signaling_nan()) fl.raise(Flags::NV);
    return Float<To>::quiet_nan();
  }
  if (x.is_inf()) return Float<To>::inf(x.sign());
  if (x.is_zero()) return Float<To>::zero(x.sign());

  const detail::Unpacked u = detail::unpack_finite(x);
  const int sh = From::man_bits - (To::man_bits + detail::kGrsBits);
  detail::u64 sig;
  if (sh > 0) {
    sig = detail::shift_right_sticky(u.sig, sh);
  } else {
    sig = u.sig << (-sh);
  }
  return detail::round_pack<To>(u.sign, u.e, sig, rm, fl);
}

namespace detail {

/// Round the magnitude of a finite value to an unsigned 64-bit integer.
/// Returns the rounded magnitude; sets NX in `fl` when bits are discarded.
/// Values with unbiased exponent above 62 saturate (caller range-checks).
template <class F>
[[nodiscard]] constexpr u64 round_to_integer_magnitude(Unpacked u, RoundingMode rm,
                                                       Flags& fl) {
  constexpr int M = F::man_bits;
  // value = sig * 2^(e - M); integer scale shift = e - M.
  const int shift = u.e - M;
  if (shift >= 0) {
    if (shift > 62 - M) return ~u64{0};  // saturate, caller clamps
    return u.sig << shift;
  }
  // Fractional part present: move into GRS space and round.
  u64 sig = shift_right_sticky(u.sig << kGrsBits, -shift);
  const unsigned round_bits = static_cast<unsigned>(sig & ((1u << kGrsBits) - 1));
  const bool lsb = (sig >> kGrsBits) & 1;
  sig >>= kGrsBits;
  if (round_increment(rm, u.sign, round_bits, lsb)) ++sig;
  if (round_bits != 0) fl.raise(Flags::NX);
  return sig;
}

}  // namespace detail

/// FCVT.W.fmt: convert to signed 32-bit integer. Out-of-range / NaN inputs
/// raise NV and return the RISC-V-mandated clamp values.
template <class F>
[[nodiscard]] constexpr std::int32_t to_int32(Float<F> x, RoundingMode rm,
                                              Flags& fl) {
  if (x.is_nan()) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::int32_t>::max();
  }
  if (x.is_inf()) {
    fl.raise(Flags::NV);
    return x.sign() ? std::numeric_limits<std::int32_t>::min()
                    : std::numeric_limits<std::int32_t>::max();
  }
  if (x.is_zero()) return 0;
  const detail::Unpacked u = detail::unpack_finite(x);
  Flags local;
  const detail::u64 mag = detail::round_to_integer_magnitude<F>(u, rm, local);
  if (!u.sign && mag > 0x7fffffffu) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::int32_t>::max();
  }
  if (u.sign && mag > 0x80000000u) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::int32_t>::min();
  }
  fl.bits |= local.bits;
  return u.sign ? static_cast<std::int32_t>(-static_cast<std::int64_t>(mag))
                : static_cast<std::int32_t>(mag);
}

/// FCVT.WU.fmt: convert to unsigned 32-bit integer.
template <class F>
[[nodiscard]] constexpr std::uint32_t to_uint32(Float<F> x, RoundingMode rm,
                                                Flags& fl) {
  if (x.is_nan()) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::uint32_t>::max();
  }
  if (x.is_inf()) {
    fl.raise(Flags::NV);
    return x.sign() ? 0 : std::numeric_limits<std::uint32_t>::max();
  }
  if (x.is_zero()) return 0;
  const detail::Unpacked u = detail::unpack_finite(x);
  Flags local;
  const detail::u64 mag = detail::round_to_integer_magnitude<F>(u, rm, local);
  if (u.sign) {
    if (mag != 0) {  // negative non-zero result is invalid for unsigned
      fl.raise(Flags::NV);
      return 0;
    }
    fl.bits |= local.bits;  // e.g. -0.25 rounds to 0: just inexact
    return 0;
  }
  if (mag > 0xffffffffu) {
    fl.raise(Flags::NV);
    return std::numeric_limits<std::uint32_t>::max();
  }
  fl.bits |= local.bits;
  return static_cast<std::uint32_t>(mag);
}

/// FCVT.fmt.W: convert from signed 32-bit integer.
template <class F>
[[nodiscard]] constexpr Float<F> from_int32(std::int32_t v, RoundingMode rm,
                                            Flags& fl) {
  if (v == 0) return Float<F>::zero(false);
  const bool sign = v < 0;
  const detail::u64 mag =
      sign ? static_cast<detail::u64>(-static_cast<std::int64_t>(v))
           : static_cast<detail::u64>(v);
  const int msb = 63 - std::countl_zero(mag);
  const int target = F::man_bits + detail::kGrsBits;
  detail::u64 sig = (msb <= target) ? (mag << (target - msb))
                                    : detail::shift_right_sticky(mag, msb - target);
  return detail::round_pack<F>(sign, msb, sig, rm, fl);
}

/// FCVT.fmt.WU: convert from unsigned 32-bit integer.
template <class F>
[[nodiscard]] constexpr Float<F> from_uint32(std::uint32_t v, RoundingMode rm,
                                             Flags& fl) {
  if (v == 0) return Float<F>::zero(false);
  const detail::u64 mag = v;
  const int msb = 63 - std::countl_zero(mag);
  const int target = F::man_bits + detail::kGrsBits;
  detail::u64 sig = (msb <= target) ? (mag << (target - msb))
                                    : detail::shift_right_sticky(mag, msb - target);
  return detail::round_pack<F>(false, msb, sig, rm, fl);
}

}  // namespace sfrv::fp
