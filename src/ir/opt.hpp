// Post-lowering loop optimizer for the kernel compiler.
//
// The paper-sized kernels are glue-bound (docs/dispatch.md): the packed
// SmallFloat operations of a lowered inner loop are buried under scalar
// address generation and loop control. This layer attacks exactly that glue,
// the way real toolchains do for the MiniFloat-NN/ExSdotp class of kernels:
//
//  * unrolling     - innermost lowered loops are unrolled by a factor N with
//                    a single fused back-edge (one pointer bump per stream
//                    and one induction update per N bodies); when the trip
//                    count is not statically divisible by N a step-1 epilogue
//                    loop identical to the O0 body covers the remainder.
//  * pointer
//    strength
//    reduction     - the AutoVec code generator's per-iteration indexed
//                    addressing (slli + add per access) is rewritten into
//                    pointer bumps, the ManualVec addressing discipline.
//  * dead glue
//    elimination   - a post pass over the finished instruction stream:
//                    forwards dominated loads (load/load and store/load at
//                    the same address) into register copies, merges redundant
//                    addi chains, deletes dead pure register writes, and
//                    compacts the text with branch retargeting.
//
// Invariant: every transformation preserves the per-element FP operation
// order, so outputs, fflags, and array contents are bit-identical to O0
// under every engine x backend pair (tests/kernels/test_opt.cpp enforces
// this; the golden-digest matrix pins one unrolled configuration).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asmb/program.hpp"

namespace sfrv::ir {

/// Optimization pipeline configuration. The named levels are the only
/// spellings the CLI / SFRV_OPT accept; custom combinations are for
/// programmatic use (benches, tests).
struct OptConfig {
  /// Innermost-loop unroll factor; must be a power of two in [1, 8].
  int unroll_factor = 1;
  /// Rewrite AutoVec per-iteration indexed addressing into pointer bumps.
  bool ptr_strength_reduction = false;
  /// Run the dead-glue elimination post pass over the lowered text.
  bool dead_glue_elim = false;
  /// Dynamic-VL strip mining (manual codegen modes only). 0 keeps the
  /// legacy fixed-lane lowering (byte-identical to every pre-VL program);
  /// nonzero emits a VL-agnostic strip-mined inner loop — per-iteration
  /// `setvl` requesting min(remaining, vl_cap) elements, VL-governed
  /// loads/stores, granted-VL pointer bumps, and no scalar epilogue (the
  /// final short strip IS the tail). Any value in [1, 63] is a legitimate
  /// sweep point; sub-lane grants merge tail-undisturbed.
  int vl_cap = 0;

  [[nodiscard]] static constexpr OptConfig O0() { return {1, false, false, 0}; }
  [[nodiscard]] static constexpr OptConfig O1() { return {1, true, true, 0}; }
  [[nodiscard]] static constexpr OptConfig O2() { return {4, true, true, 0}; }

  friend constexpr bool operator==(const OptConfig&, const OptConfig&) = default;
};

/// Throws std::runtime_error when the configuration is malformed (unroll
/// factor not a power of two in [1, 8]).
void validate(const OptConfig& cfg);

/// Stable level name: "O0" | "O1" | "O2", or "custom" for any other
/// combination. Used by the eval report JSON and the CLI.
[[nodiscard]] std::string_view opt_name(const OptConfig& cfg);

/// Parse a level name ("O0" | "O1" | "O2"); throws std::runtime_error on an
/// unknown one.
[[nodiscard]] OptConfig opt_from_name(std::string_view name);

/// Resolve an SFRV_OPT-style environment value: null/empty selects O0, an
/// invalid value warns on stderr and falls back to O0 (never throws - it
/// runs inside static initialization via default arguments). Mirrors
/// sim::engine_from_env / fp::backend_from_env.
[[nodiscard]] OptConfig opt_from_env(const char* value);

/// Process-wide default optimization level: the SFRV_OPT environment
/// variable (O0|O1|O2, read once) or O0. Lets CI run the whole campaign and
/// kernel stack at any level without threading flags by hand.
[[nodiscard]] OptConfig default_opt();

/// Outcome of the dead-glue pass (for the bench/doc glue accounting).
struct GlueStats {
  int loads_forwarded = 0;   ///< loads rewritten into register copies
  int addis_merged = 0;      ///< addi-chain links folded away
  int insts_deleted = 0;     ///< instructions removed by DCE / forwarding
  [[nodiscard]] bool any() const {
    return loads_forwarded + addis_merged + insts_deleted > 0;
  }
};

/// Dead-glue elimination over a *finished* program (branch immediates
/// resolved). `inner_ranges` entries are remapped to the compacted text.
/// `mem_array` optionally carries per-text-index provenance: the array id
/// each load/store touches (-1 / missing = unknown, conservatively aliased
/// with everything). Distinct ids are guaranteed-disjoint memory objects,
/// which is what lets a store to one array keep forwarding entries of
/// another alive. When provided it is compacted in lock-step with the text
/// (entries of deleted instructions removed, forwarded loads losing their
/// provenance), so it stays index-accurate for ir::Verifier.
///
/// The pass is conservative and sound: it bails out (no-op) on programs
/// containing position-dependent or indirect control flow (jal/jalr/auipc)
/// or any opcode outside the kernel compiler's emission set, never deletes
/// stores, branches, CSR accesses, or fflags-setting FP operations, and
/// treats every register as live at program exit unless
/// `regs_dead_at_exit` is set (lowered kernels: results live in memory).
GlueStats dead_glue_elim(
    asmb::Program& prog,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& inner_ranges,
    std::vector<int>* mem_array = nullptr, bool regs_dead_at_exit = false);

}  // namespace sfrv::ir
