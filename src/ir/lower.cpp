#include "ir/lower.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>

#include "asmb/assembler.hpp"
#include "ir/verify.hpp"
#include "softfloat/runtime.hpp"
#include "util/verify.hpp"

namespace sfrv::ir {

namespace {

using asmb::Assembler;
using isa::Op;
namespace reg = asmb::reg;

constexpr int log2_bytes(ScalarType t) {
  switch (width_bytes(t)) {
    case 1: return 0;
    case 2: return 1;
    default: return 2;
  }
}

/// Simple register pool with assert-on-exhaustion.
class Pool {
 public:
  explicit Pool(std::vector<std::uint8_t> regs) : free_(std::move(regs)) {}
  std::uint8_t alloc() {
    if (free_.empty()) throw std::runtime_error("register pool exhausted");
    const std::uint8_t r = free_.back();
    free_.pop_back();
    return r;
  }
  void release(std::uint8_t r) { free_.push_back(r); }

 private:
  std::vector<std::uint8_t> free_;
};

/// Type of an expression ignoring contextless constants.
std::optional<ScalarType> type_opt(const Expr& e, const Kernel& k) {
  switch (e.kind) {
    case Expr::Kind::Load:
      return k.arrays[static_cast<std::size_t>(e.ref.array)].type;
    case Expr::Kind::Var:
      return k.vars[static_cast<std::size_t>(e.var)].type;
    case Expr::Kind::Const:
      return std::nullopt;
    default: {
      const auto l = type_opt(*e.lhs, k);
      const auto r = type_opt(*e.rhs, k);
      if (l && r) {
        if (is_wider_or_equal(*l, *r)) return *l;
        if (is_wider_or_equal(*r, *l)) return *r;
        throw std::runtime_error("incomparable operand types in kernel expr");
      }
      if (l) return l;
      if (r) return r;
      return std::nullopt;
    }
  }
}

ScalarType promote(ScalarType a, ScalarType b) {
  if (is_wider_or_equal(a, b)) return a;
  if (is_wider_or_equal(b, a)) return b;
  throw std::runtime_error("incomparable types");
}

struct PtrPattern {
  int array;
  int row_var;
  int row_off;
  friend bool operator==(const PtrPattern&, const PtrPattern&) = default;
};

struct ConstKey {
  std::uint64_t bits;
  ScalarType type;
  friend bool operator==(const ConstKey&, const ConstKey&) = default;
};

class Lowerer {
 public:
  Lowerer(const Kernel& k, CodegenMode mode, const OptConfig& opt)
      : k_(k),
        mode_(mode),
        opt_(opt),
        int_pool_({reg::t0, reg::t1, reg::t2, reg::t3, reg::t4, reg::t5,
                   reg::t6, reg::a0, reg::a1, reg::a2, reg::a3, reg::a4,
                   reg::a5, reg::a6, reg::a7}),
        fp_pool_({reg::ft0, reg::ft1, reg::ft2, reg::ft3, reg::ft4, reg::ft5,
                  reg::ft6, reg::ft7, reg::fa0, reg::fa1, reg::fa2, reg::fa3,
                  reg::fa4, reg::fa5, reg::fa6, reg::fa7, reg::ft8, reg::ft9,
                  reg::ft10, reg::ft11, reg::fs0, reg::fs1, reg::fs2, reg::fs3,
                  reg::fs4, reg::fs5, reg::fs6, reg::fs7, reg::fs8, reg::fs9,
                  reg::fs10, reg::fs11}) {}

  LoweredKernel run(const std::vector<std::vector<double>>& init) {
    // --- data segment: arrays (quantized) and FP constants ---
    if (k_.arrays.size() > 12) throw std::runtime_error(">12 arrays");
    for (std::size_t ai = 0; ai < k_.arrays.size(); ++ai) {
      const auto& arr = k_.arrays[ai];
      const int esize = width_bytes(arr.type);
      std::vector<std::uint8_t> bytes(
          static_cast<std::size_t>(arr.elems()) * esize, 0);
      if (ai < init.size() && !init[ai].empty()) {
        assert(static_cast<int>(init[ai].size()) == arr.elems());
        fp::Flags fl;
        for (int e = 0; e < arr.elems(); ++e) {
          const std::uint64_t bits = fp::rt_from_double(
              fp_format(arr.type), init[ai][static_cast<std::size_t>(e)],
              fp::RoundingMode::RNE, fl);
          std::memcpy(&bytes[static_cast<std::size_t>(e) * esize], &bits,
                      static_cast<std::size_t>(esize));
        }
      }
      const auto addr = asm_.data_bytes(bytes.data(), bytes.size(), 4);
      asm_.set_symbol(arr.name, addr);
      array_addr_[arr.name] = addr;
    }

    // --- prologue: array bases and FP constants ---
    static constexpr std::uint8_t kBaseRegs[] = {
        reg::s0, reg::s1, reg::s2, reg::s3, reg::s4,  reg::s5,
        reg::s6, reg::s7, reg::s8, reg::s9, reg::s10, reg::s11};
    for (std::size_t ai = 0; ai < k_.arrays.size(); ++ai) {
      base_reg_.push_back(kBaseRegs[ai]);
      asm_.la(kBaseRegs[ai], array_addr_[k_.arrays[ai].name]);
    }
    for (const auto& v : k_.vars) {
      (void)v;
      const std::uint8_t r = fp_pool_.alloc();
      var_reg_.push_back(r);
      // Scalar vars start at +0.0 by contract. Zero the home register
      // explicitly instead of relying on the simulator's reset state — an
      // accumulating var (acc += ...) reads it before any other write.
      asm_.emit(isa::Inst{.op = Op::FMV_S_X, .rd = r, .rs1 = reg::zero});
    }
    preload_consts();

    lower_nodes(k_.body);
    asm_.ebreak();

    LoweredKernel out;
    out.program = asm_.finish();
    out.array_addr = array_addr_;
    out.inner_ranges = normalized_ranges();
    out.opt = opt_;
    // Provenance for the dead-glue alias rules and the verifier: per-text-
    // index array id (distinct arrays and the constant pool are guaranteed-
    // disjoint objects). The dead-glue pass — run by the free lower() so the
    // verifier can bracket it — compacts this in sync with the text.
    out.mem_array.assign(out.program.text.size(), -1);
    for (const auto& [idx, arr] : mem_notes_) {
      if (idx < out.mem_array.size()) out.mem_array[idx] = arr;
    }
    return out;
  }

  /// Innermost ranges sorted, empties dropped, overlaps merged — the
  /// attribution contract RunResult::ideal_cycles depends on.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> normalized_ranges() {
    auto r = inner_ranges_;
    std::sort(r.begin(), r.end());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    for (const auto& [b, e] : r) {
      if (b >= e) continue;
      if (!out.empty() && b < out.back().second) {
        out.back().second = std::max(out.back().second, e);
      } else {
        out.emplace_back(b, e);
      }
    }
    return out;
  }

 private:
  // ---------------------------------------------------------------- consts --
  ScalarType child_ctx(const Expr& parent, const Expr& child,
                       ScalarType ctx) const {
    const Expr& other = (&child == parent.lhs.get()) ? *parent.rhs : *parent.lhs;
    const auto t = type_opt(other, k_);
    return t ? *t : ctx;
  }

  void collect_consts(const Expr& e, ScalarType ctx) {
    switch (e.kind) {
      case Expr::Kind::Const: {
        fp::Flags fl;
        const auto bits =
            fp::rt_from_double(fp_format(ctx), e.cval, fp::RoundingMode::RNE, fl);
        const ConstKey key{bits, ctx};
        if (std::find(const_keys_.begin(), const_keys_.end(), key) ==
            const_keys_.end()) {
          const_keys_.push_back(key);
        }
        return;
      }
      case Expr::Kind::Load:
      case Expr::Kind::Var:
        return;
      default:
        collect_consts(*e.lhs, child_ctx(e, *e.lhs, ctx));
        collect_consts(*e.rhs, child_ctx(e, *e.rhs, ctx));
    }
  }

  void collect_consts_nodes(const std::vector<Node>& nodes) {
    for (const auto& n : nodes) {
      if (std::holds_alternative<Loop>(n)) {
        collect_consts_nodes(std::get<Loop>(n).body);
      } else {
        const Stmt& s = std::get<Stmt>(n);
        collect_consts(*s.value, stmt_dst_type(s));
      }
    }
  }

  ScalarType stmt_dst_type(const Stmt& s) const {
    if (s.kind == Stmt::Kind::AssignScalar || s.kind == Stmt::Kind::AccumScalar) {
      return k_.vars[static_cast<std::size_t>(s.dst_var)].type;
    }
    return k_.arrays[static_cast<std::size_t>(s.dst.array)].type;
  }

  void preload_consts() {
    collect_consts_nodes(k_.body);
    for (const auto& key : const_keys_) {
      const int esize = width_bits(key.type) / 8;
      const auto addr = asm_.data_bytes(&key.bits, static_cast<std::size_t>(esize), 4);
      const std::uint8_t f = fp_pool_.alloc();
      const std::uint8_t t = int_pool_.alloc();
      asm_.la(t, addr);
      note_mem(const_region_id());
      asm_.emit({.op = scalar_ops(key.type).load, .rd = f, .rs1 = t, .imm = 0});
      int_pool_.release(t);
      const_regs_.push_back(f);
    }
  }

  std::uint8_t const_reg(double v, ScalarType t) {
    fp::Flags fl;
    const auto bits = fp::rt_from_double(fp_format(t), v, fp::RoundingMode::RNE, fl);
    for (std::size_t i = 0; i < const_keys_.size(); ++i) {
      if (const_keys_[i] == ConstKey{bits, t}) return const_regs_[i];
    }
    throw std::runtime_error("constant not preloaded");
  }

  // ------------------------------------------------------------ addressing --
  std::uint8_t loop_var_reg(int var) const {
    const auto it = loop_reg_.find(var);
    assert(it != loop_reg_.end());
    return it->second;
  }

  /// Generic element address -> (reg, imm); reg may be a base register
  /// (not owned) when everything folds into the immediate.
  struct Addr {
    std::uint8_t reg;
    std::int32_t imm;
    bool owned;
  };

  Addr address_of(const ArrayRef& r) {
    const auto& arr = k_.arrays[static_cast<std::size_t>(r.array)];
    const int esize = width_bytes(arr.type);
    std::int32_t imm = 0;
    std::uint8_t cur = base_reg_[static_cast<std::size_t>(r.array)];
    bool owned = false;
    if (r.row.var >= 0) {
      const std::uint8_t t = int_pool_.alloc();
      const std::uint8_t c = int_pool_.alloc();
      if (r.row.offset != 0) {
        asm_.addi(t, loop_var_reg(r.row.var), r.row.offset);
        asm_.li(c, arr.cols * esize);
        asm_.mul(t, t, c);
      } else {
        asm_.li(c, arr.cols * esize);
        asm_.mul(t, loop_var_reg(r.row.var), c);
      }
      asm_.add(t, cur, t);
      int_pool_.release(c);
      cur = t;
      owned = true;
    } else {
      imm += r.row.offset * arr.cols * esize;
    }
    if (r.col.var >= 0) {
      const std::uint8_t t2 = owned ? cur : int_pool_.alloc();
      const std::uint8_t sh = int_pool_.alloc();
      asm_.slli(sh, loop_var_reg(r.col.var), log2_bytes(arr.type));
      asm_.add(t2, cur, sh);
      int_pool_.release(sh);
      cur = t2;
      owned = true;
      imm += r.col.offset * esize;
    } else {
      imm += r.col.offset * esize;
    }
    return {cur, imm, owned};
  }

  void release_addr(const Addr& a) {
    if (a.owned) int_pool_.release(a.reg);
  }

  // ------------------------------------------------------- scalar codegen --
  struct Val {
    std::uint8_t reg;
    ScalarType type;
    bool owned;
  };

  void free_val(const Val& v) {
    if (v.owned) fp_pool_.release(v.reg);
  }

  Val convert_to(Val v, ScalarType want) {
    if (v.type == want) return v;
    const std::uint8_t d = fp_pool_.alloc();
    asm_.fp_rr(convert_op(want, v.type), d, v.reg);
    free_val(v);
    return {d, want, true};
  }

  /// Innermost-loop pointer map: pattern -> (xreg, valid-in-scalar-loop).
  struct InnerCtx {
    int var = -1;
    std::vector<PtrPattern> patterns;
    std::vector<std::uint8_t> ptr_regs;      // valid when pointer mode active
    bool pointers_active = false;            // scalar/manual pointer bumping
    // auto-vec indexed mode: row-base registers per pattern
    std::vector<std::uint8_t> rowbase_regs;
    bool indexed_active = false;
    // invariant loads hoisted out of the loop: (array,row,col) exact refs
    std::vector<ArrayRef> inv_refs;
    std::vector<Val> inv_vals;
  };

  InnerCtx* inner_ = nullptr;

  int find_pattern(const InnerCtx& ic, const ArrayRef& r) const {
    const PtrPattern p{r.array, r.row.var, r.row.offset};
    for (std::size_t i = 0; i < ic.patterns.size(); ++i) {
      if (ic.patterns[i] == p) return static_cast<int>(i);
    }
    return -1;
  }

  std::optional<Val> find_invariant(const ArrayRef& r) const {
    if (inner_ == nullptr) return std::nullopt;
    for (std::size_t i = 0; i < inner_->inv_refs.size(); ++i) {
      const auto& ir = inner_->inv_refs[i];
      if (ir.array == r.array && ir.row.var == r.row.var &&
          ir.row.offset == r.row.offset && ir.col.var == r.col.var &&
          ir.col.offset == r.col.offset) {
        return inner_->inv_vals[i];
      }
    }
    return std::nullopt;
  }

  /// Load/store through the innermost pointer context if possible.
  Addr stream_addr(const ArrayRef& r) {
    if (inner_ != nullptr && r.col.var == inner_->var) {
      const int esize =
          width_bytes(k_.arrays[static_cast<std::size_t>(r.array)].type);
      const int pi = find_pattern(*inner_, r);
      assert(pi >= 0);
      if (inner_->pointers_active) {
        // Unrolled bodies fold the lane offset into the displacement; the
        // pointers themselves bump once per unrolled group.
        return {inner_->ptr_regs[static_cast<std::size_t>(pi)],
                (r.col.offset + unroll_off_) * esize, false};
      }
      if (inner_->indexed_active) {
        // Indexed addressing (auto-vectorizer style): recompute per access.
        const std::uint8_t t = int_pool_.alloc();
        asm_.slli(t, loop_var_reg(inner_->var),
                  log2_bytes(k_.arrays[static_cast<std::size_t>(r.array)].type));
        asm_.add(t, inner_->rowbase_regs[static_cast<std::size_t>(pi)], t);
        return {t, (r.col.offset + unroll_off_) * esize, true};
      }
    }
    return address_of(r);
  }

  Val eval(const Expr& e, ScalarType ctx) {
    switch (e.kind) {
      case Expr::Kind::Load: {
        if (auto inv = find_invariant(e.ref)) return {inv->reg, inv->type, false};
        const auto& arr = k_.arrays[static_cast<std::size_t>(e.ref.array)];
        const Addr a = stream_addr(e.ref);
        const std::uint8_t d = fp_pool_.alloc();
        note_mem(e.ref.array);
        asm_.emit({.op = scalar_ops(arr.type).load, .rd = d, .rs1 = a.reg,
                   .imm = a.imm});
        release_addr(a);
        return {d, arr.type, true};
      }
      case Expr::Kind::Var:
        return {var_reg_[static_cast<std::size_t>(e.var)],
                k_.vars[static_cast<std::size_t>(e.var)].type, false};
      case Expr::Kind::Const:
        return {const_reg(e.cval, ctx), ctx, false};
      default: {
        Val l = eval(*e.lhs, child_ctx(e, *e.lhs, ctx));
        Val r = eval(*e.rhs, child_ctx(e, *e.rhs, ctx));
        const ScalarType t = promote(l.type, r.type);
        l = convert_to(l, t);
        r = convert_to(r, t);
        const std::uint8_t d = fp_pool_.alloc();
        const auto ops = scalar_ops(t);
        Op op = ops.fadd;
        if (e.kind == Expr::Kind::Sub) op = ops.fsub;
        if (e.kind == Expr::Kind::Mul) op = ops.fmul;
        if (e.kind == Expr::Kind::Div) op = ops.fdiv;
        asm_.fp_rrr(op, d, l.reg, r.reg);
        free_val(l);
        free_val(r);
        return {d, t, true};
      }
    }
  }

  /// var += a * b with fusion: same-type fmadd, or widening via Xfaux
  /// fmacex (manual mode) / convert + fmadd (compiler-style).
  void emit_scalar_mac(std::uint8_t acc_reg, ScalarType acc_t, const Expr& mul) {
    Val l = eval(*mul.lhs, acc_t);
    Val r = eval(*mul.rhs, acc_t);
    const ScalarType t = promote(l.type, r.type);
    if (t == acc_t) {
      l = convert_to(l, t);
      r = convert_to(r, t);
      asm_.fp_r4(scalar_ops(t).fmadd, acc_reg, l.reg, r.reg, acc_reg);
    } else if (acc_t == ScalarType::F32 && l.type == r.type &&
               !is_posit(l.type) && is_manual_mode(mode_)) {
      // No posit fmacex exists; posit sources take the convert + fmadd path
      // below (exact widening, so the wide FMA still rounds once).
      asm_.fp_rrr(fmacex_op(l.type), acc_reg, l.reg, r.reg);
    } else {
      l = convert_to(l, acc_t);
      r = convert_to(r, acc_t);
      asm_.fp_r4(scalar_ops(acc_t).fmadd, acc_reg, l.reg, r.reg, acc_reg);
    }
    free_val(l);
    free_val(r);
  }

  void lower_stmt_scalar(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::AssignScalar: {
        const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
        const auto ureg = var_reg_[static_cast<std::size_t>(s.dst_var)];
        Val v = eval(*s.value, ut);
        if (v.type != ut) {
          asm_.fp_rr(convert_op(ut, v.type), ureg, v.reg);
        } else {
          asm_.fp_rrr(scalar_ops(ut).fsgnj, ureg, v.reg, v.reg);
        }
        free_val(v);
        return;
      }
      case Stmt::Kind::AccumScalar: {
        const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
        const auto ureg = var_reg_[static_cast<std::size_t>(s.dst_var)];
        if (s.value->kind == Expr::Kind::Mul) {
          emit_scalar_mac(ureg, ut, *s.value);
          return;
        }
        Val v = eval(*s.value, ut);
        v = convert_to(v, ut);
        asm_.fp_rrr(scalar_ops(ut).fadd, ureg, ureg, v.reg);
        free_val(v);
        return;
      }
      case Stmt::Kind::StoreArray: {
        const auto& arr = k_.arrays[static_cast<std::size_t>(s.dst.array)];
        Val v = eval(*s.value, arr.type);
        v = convert_to(v, arr.type);
        const Addr a = stream_addr(s.dst);
        note_mem(s.dst.array);
        asm_.emit({.op = scalar_ops(arr.type).store, .rs1 = a.reg, .rs2 = v.reg,
                   .imm = a.imm});
        release_addr(a);
        free_val(v);
        return;
      }
      case Stmt::Kind::AccumArray: {
        const auto& arr = k_.arrays[static_cast<std::size_t>(s.dst.array)];
        const Addr a = stream_addr(s.dst);
        const std::uint8_t d = fp_pool_.alloc();
        note_mem(s.dst.array);
        asm_.emit({.op = scalar_ops(arr.type).load, .rd = d, .rs1 = a.reg,
                   .imm = a.imm});
        if (s.value->kind == Expr::Kind::Mul) {
          emit_scalar_mac(d, arr.type, *s.value);
        } else if (s.value->kind == Expr::Kind::Add &&
                   s.value->lhs->kind == Expr::Kind::Mul &&
                   s.value->rhs->kind == Expr::Kind::Mul) {
          emit_scalar_mac(d, arr.type, *s.value->lhs);
          emit_scalar_mac(d, arr.type, *s.value->rhs);
        } else {
          Val v = eval(*s.value, arr.type);
          v = convert_to(v, arr.type);
          asm_.fp_rrr(scalar_ops(arr.type).fadd, d, d, v.reg);
          free_val(v);
        }
        note_mem(s.dst.array);
        asm_.emit({.op = scalar_ops(arr.type).store, .rs1 = a.reg, .rs2 = d,
                   .imm = a.imm});
        release_addr(a);
        fp_pool_.release(d);
        return;
      }
    }
  }

  // ------------------------------------------------------------- loop nest --
  void lower_nodes(const std::vector<Node>& nodes) {
    for (const auto& n : nodes) {
      if (std::holds_alternative<Loop>(n)) {
        lower_loop(std::get<Loop>(n));
      } else {
        lower_stmt_scalar(std::get<Stmt>(n));
      }
    }
  }

  static bool is_innermost(const Loop& lp) {
    if (lp.body.empty()) return false;
    return std::all_of(lp.body.begin(), lp.body.end(), [](const Node& n) {
      return std::holds_alternative<Stmt>(n);
    });
  }

  /// Upper-bound register (caller releases).
  std::uint8_t bound_reg(const Loop& lp) {
    const std::uint8_t b = int_pool_.alloc();
    if (lp.upper.is_constant()) {
      asm_.li(b, lp.upper.constant);
    } else {
      asm_.addi(b, loop_var_reg(lp.upper.var), lp.upper.offset);
    }
    return b;
  }

  void lower_loop(const Loop& lp) {
    if (is_innermost(lp)) {
      if (mode_ != CodegenMode::Scalar && vectorizable(lp)) {
        lower_vector_loop(lp);
      } else {
        lower_scalar_innermost(lp);
      }
      return;
    }
    // Outer loop: plain counted loop, statements lowered generically.
    const std::uint8_t v = int_pool_.alloc();
    loop_reg_[lp.var] = v;
    asm_.li(v, lp.lower);
    const std::uint8_t b = bound_reg(lp);
    const auto lend = asm_.make_label();
    const auto ltop = asm_.make_label();
    asm_.bge(v, b, lend);
    asm_.bind(ltop);
    lower_nodes(lp.body);
    asm_.addi(v, v, 1);
    asm_.blt(v, b, ltop);
    asm_.bind(lend);
    int_pool_.release(b);
    int_pool_.release(v);
    loop_reg_.erase(lp.var);
  }

  // -------------------------------------------------- innermost (scalar) ---
  /// Collect streaming patterns and invariant load refs for an innermost loop.
  void analyze_inner(const Loop& lp, InnerCtx& ic) {
    ic.var = lp.var;
    auto add_ref = [&](const ArrayRef& r, bool is_load) {
      assert(r.row.var != lp.var && "row index may not use the inner var");
      if (r.col.var == lp.var) {
        if (find_pattern(ic, r) < 0) {
          ic.patterns.push_back({r.array, r.row.var, r.row.offset});
        }
      } else if (is_load) {
        // Loop-invariant load: hoisted to the preheader.
        for (const auto& ir : ic.inv_refs) {
          if (ir.array == r.array && ir.row.var == r.row.var &&
              ir.row.offset == r.row.offset && ir.col.var == r.col.var &&
              ir.col.offset == r.col.offset) {
            return;
          }
        }
        ic.inv_refs.push_back(r);
      }
    };
    auto walk = [&](const Expr& e, auto&& self) -> void {
      if (e.kind == Expr::Kind::Load) {
        add_ref(e.ref, true);
      } else if (e.lhs) {
        self(*e.lhs, self);
        self(*e.rhs, self);
      }
    };
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      if (s.kind == Stmt::Kind::StoreArray || s.kind == Stmt::Kind::AccumArray) {
        add_ref(s.dst, false);
      }
      walk(*s.value, walk);
    }
  }

  /// Set up pointer registers: ptr = base + (row*cols + lower)*esize.
  void setup_pointers(const Loop& lp, InnerCtx& ic) {
    for (const auto& p : ic.patterns) {
      const auto& arr = k_.arrays[static_cast<std::size_t>(p.array)];
      const int esize = width_bytes(arr.type);
      const std::uint8_t ptr = int_pool_.alloc();
      if (p.row_var >= 0) {
        const std::uint8_t c = int_pool_.alloc();
        if (p.row_off != 0) {
          asm_.addi(ptr, loop_var_reg(p.row_var), p.row_off);
          asm_.li(c, arr.cols * esize);
          asm_.mul(ptr, ptr, c);
        } else {
          asm_.li(c, arr.cols * esize);
          asm_.mul(ptr, loop_var_reg(p.row_var), c);
        }
        asm_.add(ptr, base_reg_[static_cast<std::size_t>(p.array)], ptr);
        int_pool_.release(c);
        if (lp.lower != 0) asm_.addi(ptr, ptr, lp.lower * esize);
      } else {
        const std::int32_t off = (p.row_off * arr.cols + lp.lower) * esize;
        if (off >= -2048 && off < 2048) {
          asm_.addi(ptr, base_reg_[static_cast<std::size_t>(p.array)], off);
        } else {
          asm_.li(ptr, off);
          asm_.add(ptr, base_reg_[static_cast<std::size_t>(p.array)], ptr);
        }
      }
      ic.ptr_regs.push_back(ptr);
    }
  }

  /// Auto-vectorizer style: row-base registers only; accesses recompute
  /// base + (v << log2esize) every iteration.
  void setup_rowbases(InnerCtx& ic) {
    for (const auto& p : ic.patterns) {
      const auto& arr = k_.arrays[static_cast<std::size_t>(p.array)];
      const int esize = width_bytes(arr.type);
      const std::uint8_t rb = int_pool_.alloc();
      if (p.row_var >= 0) {
        const std::uint8_t c = int_pool_.alloc();
        if (p.row_off != 0) {
          asm_.addi(rb, loop_var_reg(p.row_var), p.row_off);
          asm_.li(c, arr.cols * esize);
          asm_.mul(rb, rb, c);
        } else {
          asm_.li(c, arr.cols * esize);
          asm_.mul(rb, loop_var_reg(p.row_var), c);
        }
        asm_.add(rb, base_reg_[static_cast<std::size_t>(p.array)], rb);
        int_pool_.release(c);
      } else if (p.row_off != 0) {
        const std::int32_t off = p.row_off * arr.cols * esize;
        asm_.li(rb, off);
        asm_.add(rb, base_reg_[static_cast<std::size_t>(p.array)], rb);
      } else {
        asm_.mv(rb, base_reg_[static_cast<std::size_t>(p.array)]);
      }
      ic.rowbase_regs.push_back(rb);
    }
  }

  void load_invariants(InnerCtx& ic) {
    for (const auto& r : ic.inv_refs) {
      const auto& arr = k_.arrays[static_cast<std::size_t>(r.array)];
      const Addr a = address_of(r);
      const std::uint8_t d = fp_pool_.alloc();
      note_mem(r.array);
      asm_.emit({.op = scalar_ops(arr.type).load, .rd = d, .rs1 = a.reg,
                 .imm = a.imm});
      release_addr(a);
      ic.inv_vals.push_back({d, arr.type, true});
    }
  }

  void release_inner(InnerCtx& ic) {
    for (auto& v : ic.inv_vals) fp_pool_.release(v.reg);
    for (auto r : ic.ptr_regs) int_pool_.release(r);
    for (auto r : ic.rowbase_regs) int_pool_.release(r);
    ic.inv_vals.clear();
    ic.ptr_regs.clear();
    ic.rowbase_regs.clear();
  }

  void bump_pointers(const InnerCtx& ic, int elems) {
    for (std::size_t i = 0; i < ic.patterns.size(); ++i) {
      const auto& arr =
          k_.arrays[static_cast<std::size_t>(ic.patterns[i].array)];
      asm_.addi(ic.ptr_regs[i], ic.ptr_regs[i], elems * width_bytes(arr.type));
    }
  }

  void lower_scalar_innermost(const Loop& lp) {
    InnerCtx ic;
    analyze_inner(lp, ic);
    const std::uint8_t v = int_pool_.alloc();
    loop_reg_[lp.var] = v;
    asm_.li(v, lp.lower);
    const std::uint8_t b = bound_reg(lp);
    load_invariants(ic);
    setup_pointers(lp, ic);
    ic.pointers_active = true;
    inner_ = &ic;

    const int U = opt_.unroll_factor;
    const bool scalar_const_trip = lp.upper.is_constant();
    const int scalar_trip =
        scalar_const_trip ? lp.upper.constant - lp.lower : -1;
    // A statically-known trip count that cannot fill one unrolled group
    // makes the unrolled loop pure overhead: fall back to the O0 shape.
    const bool do_unroll = U > 1 && !(scalar_const_trip && scalar_trip < U);
    if (do_unroll) {
      // Unrolled main loop: U bodies per back-edge, lane offsets folded into
      // the load/store displacements, one pointer bump and one induction
      // update per group. Covers lower + floor(trip / U) * U iterations.
      const bool const_trip = scalar_const_trip;
      const int trip_const = scalar_trip;
      const std::uint8_t uend = int_pool_.alloc();
      if (const_trip) {
        asm_.li(uend,
                lp.lower + (trip_const > 0 ? (trip_const / U) * U : 0));
      } else {
        // uend = v + (trip & -U); a negative trip stays negative, so the
        // guard below skips the loop exactly as the O0 guard would.
        const std::uint8_t trip = int_pool_.alloc();
        asm_.sub(trip, b, v);
        asm_.emit({.op = Op::ANDI, .rd = trip, .rs1 = trip, .imm = -U});
        asm_.add(uend, v, trip);
        int_pool_.release(trip);
      }
      const auto luend = asm_.make_label();
      const auto lutop = asm_.make_label();
      const std::uint32_t range_begin = asm_.pc();
      asm_.bge(v, uend, luend);
      asm_.bind(lutop);
      for (int u = 0; u < U; ++u) {
        unroll_off_ = u;
        for (const auto& n : lp.body) lower_stmt_scalar(std::get<Stmt>(n));
      }
      unroll_off_ = 0;
      bump_pointers(ic, U);
      asm_.addi(v, v, U);
      asm_.blt(v, uend, lutop);
      asm_.bind(luend);
      int_pool_.release(uend);
      // Step-1 epilogue, body identical to O0 (bit-identical remainder);
      // skipped when the trip count is statically divisible by U.
      if (!(const_trip && trip_const >= 0 && trip_const % U == 0)) {
        const auto lend = asm_.make_label();
        const auto ltop = asm_.make_label();
        asm_.bge(v, b, lend);
        asm_.bind(ltop);
        for (const auto& n : lp.body) lower_stmt_scalar(std::get<Stmt>(n));
        bump_pointers(ic, 1);
        asm_.addi(v, v, 1);
        asm_.blt(v, b, ltop);
        asm_.bind(lend);
      }
      inner_ranges_.emplace_back(range_begin, asm_.pc());
    } else {
      const auto lend = asm_.make_label();
      const auto ltop = asm_.make_label();
      asm_.bge(v, b, lend);
      const std::uint32_t range_begin = asm_.pc();
      asm_.bind(ltop);
      for (const auto& n : lp.body) lower_stmt_scalar(std::get<Stmt>(n));
      bump_pointers(ic, 1);
      asm_.addi(v, v, 1);
      asm_.blt(v, b, ltop);
      const std::uint32_t range_end = asm_.pc();
      asm_.bind(lend);
      inner_ranges_.emplace_back(range_begin, range_end);
    }

    inner_ = nullptr;
    release_inner(ic);
    int_pool_.release(b);
    int_pool_.release(v);
    loop_reg_.erase(lp.var);
  }

  // -------------------------------------------------- innermost (vector) ---
  /// Element type shared by all streaming accesses, if vectorizable.
  std::optional<ScalarType> vector_type(const Loop& lp) const {
    std::optional<ScalarType> t;
    bool ok = true;
    auto check_ref = [&](const ArrayRef& r, bool is_store) {
      if (r.row.var == lp.var) {
        ok = false;
        return;
      }
      if (r.col.var != lp.var) return;  // invariant
      const auto at = k_.arrays[static_cast<std::size_t>(r.array)].type;
      if (at == ScalarType::F32) ok = false;
      if (!t) {
        t = at;
      } else if (*t != at) {
        ok = false;
      }
      (void)is_store;
    };
    auto walk = [&](const Expr& e, auto&& self) -> void {
      if (e.kind == Expr::Kind::Load) {
        check_ref(e.ref, false);
      } else if (e.lhs) {
        self(*e.lhs, self);
        self(*e.rhs, self);
      }
    };
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      switch (s.kind) {
        case Stmt::Kind::StoreArray:
        case Stmt::Kind::AccumArray:
          check_ref(s.dst, true);
          break;
        case Stmt::Kind::AccumScalar: {
          const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
          // Plain (same type) or expanding (f32 acc over Mul of loads).
          if (ut == ScalarType::F32) {
            if (s.value->kind != Expr::Kind::Mul ||
                s.value->lhs->kind != Expr::Kind::Load ||
                s.value->rhs->kind != Expr::Kind::Load) {
              ok = false;
            }
          }
          break;
        }
        case Stmt::Kind::AssignScalar:
          ok = false;
          break;
      }
      walk(*s.value, walk);
    }
    if (!ok || !t) return std::nullopt;
    // Reduction accumulators must be the vector type, f32 (expanding), or —
    // under the ExSdotp generator only — the one-step-wider format, which
    // additionally requires the exsdotp operand shape (a product of two
    // streaming loads feeding the packed wide accumulator).
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      if (s.kind == Stmt::Kind::AccumScalar) {
        const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
        if (ut == *t || ut == ScalarType::F32) continue;
        const bool exs = mode_ == CodegenMode::ManualVecExs &&
                         exsdotp_wide(*t) == ut &&
                         s.value->kind == Expr::Kind::Mul &&
                         s.value->lhs->kind == Expr::Kind::Load &&
                         s.value->rhs->kind == Expr::Kind::Load;
        if (!exs) return std::nullopt;
      }
    }
    // Shapes the vector lowering can actually emit. Every reduction value
    // needs a streaming side to carry the lanes (an all-invariant value has
    // no packed register to accumulate from), the expanding dot product
    // needs two packed operands, and a variable accumulated in this loop
    // must not also be read as an operand (its lanes live in the packed
    // accumulator, not the home register). Violations fall back to scalar.
    auto streams = [&](const Expr& e) {
      auto rec = [&](const Expr& x, auto&& self) -> bool {
        if (x.kind == Expr::Kind::Load) return x.ref.col.var == lp.var;
        if (x.lhs) return self(*x.lhs, self) || self(*x.rhs, self);
        return false;
      };
      return rec(e, rec);
    };
    std::vector<int> acc_dsts;
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      if (s.kind == Stmt::Kind::AccumScalar) acc_dsts.push_back(s.dst_var);
    }
    auto reads_acc_dst = [&](const Expr& e) {
      auto rec = [&](const Expr& x, auto&& self) -> bool {
        if (x.kind == Expr::Kind::Var) {
          return std::find(acc_dsts.begin(), acc_dsts.end(), x.var) !=
                 acc_dsts.end();
        }
        if (x.lhs) return self(*x.lhs, self) || self(*x.rhs, self);
        return false;
      };
      return rec(e, rec);
    };
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      const Expr& v = *s.value;
      if (reads_acc_dst(v)) return std::nullopt;
      switch (s.kind) {
        case Stmt::Kind::StoreArray:
          break;  // invariant values are broadcast
        case Stmt::Kind::AccumArray:
          if (v.kind == Expr::Kind::Add &&
              v.lhs->kind == Expr::Kind::Mul &&
              v.rhs->kind == Expr::Kind::Mul) {
            if (!streams(*v.lhs) || !streams(*v.rhs)) return std::nullopt;
          } else if (!streams(v)) {
            return std::nullopt;
          }
          break;
        case Stmt::Kind::AccumScalar: {
          const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
          if (ut == *t) {
            if (!streams(v)) return std::nullopt;
          } else {  // expanding: vfdotpex needs two packed operands
            if (!streams(*v.lhs) || !streams(*v.rhs)) return std::nullopt;
          }
          break;
        }
        case Stmt::Kind::AssignScalar:
          break;  // already rejected above
      }
    }
    return t;
  }

  bool vectorizable(const Loop& lp) const {
    return vector_type(lp).has_value();
  }

  struct VVal {
    std::uint8_t reg;
    bool vec;
    ScalarType type;
    bool owned;
  };

  void free_vval(const VVal& v) {
    if (v.owned) fp_pool_.release(v.reg);
  }

  ScalarType vec_t_ = ScalarType::F16;  // active vector element type
  std::uint8_t zero_vec_ = 0;           // packed +0 lanes, when allocated
  bool zero_vec_valid_ = false;
  bool strip_ = false;  // emitting a VL strip-mined body (vl_cap != 0)

  /// Packed-register load for the vector body: a full-register flw in the
  /// legacy fixed-lane shape, or the VL-governed vflh/vflb (element count =
  /// granted vl, tail undisturbed) inside a strip-mined loop.
  void emit_vec_load(std::uint8_t d, std::int32_t imm, std::uint8_t base) {
    if (!strip_) {
      asm_.flw(d, imm, base);
    } else if (log2_bytes(vec_t_) == 1) {
      asm_.vflh(d, imm, base);
    } else {
      asm_.vflb(d, imm, base);
    }
  }
  void emit_vec_store(std::uint8_t r, std::int32_t imm, std::uint8_t base) {
    if (!strip_) {
      asm_.fsw(r, imm, base);
    } else if (log2_bytes(vec_t_) == 1) {
      asm_.vfsh(r, imm, base);
    } else {
      asm_.vfsb(r, imm, base);
    }
  }

  /// Vector load: packed load through pointer or indexed addressing.
  VVal vload(const ArrayRef& r) {
    const Addr a = stream_addr(r);
    const std::uint8_t d = fp_pool_.alloc();
    note_mem(r.array);
    emit_vec_load(d, a.imm, a.reg);
    release_addr(a);
    return {d, true, vec_t_, true};
  }

  std::uint8_t broadcast(std::uint8_t scalar_reg) {
    if (!zero_vec_valid_) throw std::runtime_error("broadcast without preheader");
    const std::uint8_t d = fp_pool_.alloc();
    asm_.fp_rrr(vector_ops(vec_t_).vfadd_r, d, zero_vec_, scalar_reg);
    return d;
  }

  VVal veval(const Expr& e, ScalarType ctx) {
    switch (e.kind) {
      case Expr::Kind::Load: {
        if (auto inv = find_invariant(e.ref)) {
          return {inv->reg, false, inv->type, false};
        }
        return vload(e.ref);
      }
      case Expr::Kind::Var:
        for (const auto& [vid, reg] : var_vec_regs_) {
          if (vid == e.var) return {reg, false, vec_t_, false};
        }
        return {var_reg_[static_cast<std::size_t>(e.var)], false,
                k_.vars[static_cast<std::size_t>(e.var)].type, false};
      case Expr::Kind::Const:
        return {const_reg(e.cval, ctx), false, ctx, false};
      default: {
        VVal l = veval(*e.lhs, child_ctx(e, *e.lhs, ctx));
        VVal r = veval(*e.rhs, child_ctx(e, *e.rhs, ctx));
        const auto vops = vector_ops(vec_t_);
        if (!l.vec && !r.vec) {
          // Invariant subtree: scalar computation in the vector type.
          Val sl{l.reg, l.type, l.owned};
          Val sr{r.reg, r.type, r.owned};
          const ScalarType t = promote(sl.type, sr.type);
          sl = convert_to(sl, t);
          sr = convert_to(sr, t);
          const std::uint8_t d = fp_pool_.alloc();
          const auto ops = scalar_ops(t);
          Op op = ops.fadd;
          if (e.kind == Expr::Kind::Sub) op = ops.fsub;
          if (e.kind == Expr::Kind::Mul) op = ops.fmul;
          if (e.kind == Expr::Kind::Div) op = ops.fdiv;
          asm_.fp_rrr(op, d, sl.reg, sr.reg);
          free_val(sl);
          free_val(sr);
          return {d, false, t, true};
        }
        // At least one vector side: scalars must already be the vector type.
        auto as_vec_ready = [&](VVal& s) {
          (void)s;
          assert(s.type == vec_t_ && "invariant operands are pre-converted");
        };
        if (l.vec && r.vec) {
          const std::uint8_t d = fp_pool_.alloc();
          Op op = vops.vfadd;
          if (e.kind == Expr::Kind::Sub) op = vops.vfsub;
          if (e.kind == Expr::Kind::Mul) op = vops.vfmul;
          if (e.kind == Expr::Kind::Div) op = vops.vfdiv;
          asm_.fp_rrr(op, d, l.reg, r.reg);
          free_vval(l);
          free_vval(r);
          return {d, true, vec_t_, true};
        }
        // Mixed vector/scalar.
        VVal& vecside = l.vec ? l : r;
        VVal& sclside = l.vec ? r : l;
        as_vec_ready(sclside);
        const bool scalar_is_rhs = !r.vec;
        if (e.kind == Expr::Kind::Add || e.kind == Expr::Kind::Mul ||
            scalar_is_rhs) {
          const std::uint8_t d = fp_pool_.alloc();
          Op op = vops.vfadd_r;
          if (e.kind == Expr::Kind::Sub) op = vops.vfsub_r;
          if (e.kind == Expr::Kind::Mul) op = vops.vfmul_r;
          if (e.kind == Expr::Kind::Div) op = vops.vfdiv_r;
          asm_.fp_rrr(op, d, vecside.reg, sclside.reg);
          free_vval(l);
          free_vval(r);
          return {d, true, vec_t_, true};
        }
        // scalar OP vector with non-commutative op: broadcast the scalar.
        const std::uint8_t bc = broadcast(sclside.reg);
        const std::uint8_t d = fp_pool_.alloc();
        Op op = (e.kind == Expr::Kind::Sub) ? vops.vfsub : vops.vfdiv;
        asm_.fp_rrr(op, d, bc, vecside.reg);
        fp_pool_.release(bc);
        free_vval(l);
        free_vval(r);
        return {d, true, vec_t_, true};
      }
    }
    return {0, false, vec_t_, false};  // unreachable
  }

  /// acc (vector reg) += a * b lane-wise, using vfmac / vfmac.r fusion.
  void emit_vec_mac(std::uint8_t acc, const Expr& mul, ScalarType ctx) {
    const auto vops = vector_ops(vec_t_);
    VVal l = veval(*mul.lhs, child_ctx(mul, *mul.lhs, ctx));
    VVal r = veval(*mul.rhs, child_ctx(mul, *mul.rhs, ctx));
    if (l.vec && r.vec) {
      asm_.fp_rrr(vops.vfmac, acc, l.reg, r.reg);
    } else {
      VVal& vecside = l.vec ? l : r;
      VVal& sclside = l.vec ? r : l;
      assert(vecside.vec);
      assert(sclside.type == vec_t_);
      asm_.fp_rrr(vops.vfmac_r, acc, vecside.reg, sclside.reg);
    }
    free_vval(l);
    free_vval(r);
  }

  /// Horizontal reduction of a packed register into a scalar of the vector
  /// type: extract lanes through the integer file (compiler-style epilogue).
  static Op fmv_from_x_op(ScalarType t) {
    switch (t) {
      case ScalarType::F16: return Op::FMV_H_X;
      case ScalarType::F16Alt: return Op::FMV_AH_X;
      case ScalarType::F8: return Op::FMV_B_X;
      case ScalarType::P8: return Op::FMV_P8_X;
      case ScalarType::P16: return Op::FMV_P16_X;
      default: return Op::FMV_S_X;
    }
  }

  std::uint8_t horizontal_sum(std::uint8_t vacc) {
    return horizontal_sum_typed(vacc, vec_t_, lanes32(vec_t_));
  }

  /// Lane-extraction sum of `lanes` packed elements of type `t` (also used
  /// for the ExSdotp epilogue, where the packed type is the one-step-wider
  /// format with half the element count).
  std::uint8_t horizontal_sum_typed(std::uint8_t vacc, ScalarType t,
                                    int lanes) {
    const int w = width_bits(t);
    const auto ops = scalar_ops(t);
    const Op fmv_to_x = Op::FMV_X_S;
    const Op fmv_from_x = fmv_from_x_op(t);
    const std::uint8_t x = int_pool_.alloc();
    asm_.fp_rr(fmv_to_x, x, vacc);
    const std::uint8_t sum = fp_pool_.alloc();
    asm_.fp_rr(fmv_from_x, sum, x);
    if (lanes > 1) {
      const std::uint8_t lane = fp_pool_.alloc();
      for (int l = 1; l < lanes; ++l) {
        asm_.srli(x, x, w);
        asm_.fp_rr(fmv_from_x, lane, x);
        asm_.fp_rrr(ops.fadd, sum, sum, lane);
      }
      fp_pool_.release(lane);
    }
    int_pool_.release(x);
    return sum;
  }

  /// Auto-vectorizer widening reduction (paper Fig. 5, left): unpack lanes,
  /// convert each to binary32, scalar fadd.s into the accumulator.
  void emit_auto_expanding_reduce(std::uint8_t acc_f32, std::uint8_t vprod) {
    const int w = width_bits(vec_t_);
    const int lanes = lanes32(vec_t_);
    const Op fmv_from_x = fmv_from_x_op(vec_t_);
    const Op cvt = convert_op(ScalarType::F32, vec_t_);
    const std::uint8_t t = int_pool_.alloc();
    const std::uint8_t lane = fp_pool_.alloc();
    const std::uint8_t wide = fp_pool_.alloc();
    asm_.fp_rr(Op::FMV_X_S, t, vprod);
    for (int l = 0; l < lanes; ++l) {
      if (l != 0) asm_.srli(t, t, w);
      asm_.fp_rr(fmv_from_x, lane, t);
      asm_.fp_rr(cvt, wide, lane);
      asm_.fp_rrr(Op::FADD_S, acc_f32, acc_f32, wide);
    }
    fp_pool_.release(wide);
    fp_pool_.release(lane);
    int_pool_.release(t);
  }

  void lower_vec_stmt(const Stmt& s) {
    const auto vops = vector_ops(vec_t_);
    switch (s.kind) {
      case Stmt::Kind::StoreArray: {
        VVal v = veval(*s.value, vec_t_);
        if (!v.vec) {
          const std::uint8_t bc = broadcast(v.reg);
          free_vval(v);
          v = {bc, true, vec_t_, true};
        }
        const Addr a = stream_addr(s.dst);
        note_mem(s.dst.array);
        emit_vec_store(v.reg, a.imm, a.reg);
        release_addr(a);
        free_vval(v);
        return;
      }
      case Stmt::Kind::AccumArray: {
        const Addr a = stream_addr(s.dst);
        const std::uint8_t d = fp_pool_.alloc();
        note_mem(s.dst.array);
        emit_vec_load(d, a.imm, a.reg);
        if (s.value->kind == Expr::Kind::Mul) {
          emit_vec_mac(d, *s.value, vec_t_);
        } else if (s.value->kind == Expr::Kind::Add &&
                   s.value->lhs->kind == Expr::Kind::Mul &&
                   s.value->rhs->kind == Expr::Kind::Mul) {
          emit_vec_mac(d, *s.value->lhs, vec_t_);
          emit_vec_mac(d, *s.value->rhs, vec_t_);
        } else {
          VVal v = veval(*s.value, vec_t_);
          assert(v.vec);
          asm_.fp_rrr(vops.vfadd, d, d, v.reg);
          free_vval(v);
        }
        note_mem(s.dst.array);
        emit_vec_store(d, a.imm, a.reg);
        release_addr(a);
        fp_pool_.release(d);
        return;
      }
      case Stmt::Kind::AccumScalar: {
        const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
        const auto ureg = var_reg_[static_cast<std::size_t>(s.dst_var)];
        if (ut == vec_t_) {
          // Plain reduction into the vector accumulator for this var.
          const std::uint8_t vacc = vec_acc_for(s.dst_var);
          if (s.value->kind == Expr::Kind::Mul) {
            emit_vec_mac(vacc, *s.value, vec_t_);
          } else {
            VVal v = veval(*s.value, vec_t_);
            assert(v.vec);
            asm_.fp_rrr(vops.vfadd, vacc, vacc, v.reg);
            free_vval(v);
          }
          return;
        }
        assert(s.value->kind == Expr::Kind::Mul);
        if (mode_ == CodegenMode::ManualVecExs && exsdotp_wide(vec_t_) == ut) {
          // ExSdotp reduction: the packed one-step-wider accumulator takes
          // two chained wide FMAs per wide lane; it is folded into the home
          // register by the wide horizontal sum in the loop epilogue.
          const std::uint8_t vacc = wide_acc_for(s.dst_var);
          VVal l = veval(*s.value->lhs, vec_t_);
          VVal r = veval(*s.value->rhs, vec_t_);
          assert(l.vec && r.vec);
          asm_.fp_rrr(exsdotp_op(vec_t_), vacc, l.reg, r.reg);
          free_vval(l);
          free_vval(r);
          return;
        }
        // Expanding reduction (f32 accumulator, smallFloat products).
        assert(ut == ScalarType::F32);
        if (is_manual_mode(mode_)) {
          VVal l = veval(*s.value->lhs, vec_t_);
          VVal r = veval(*s.value->rhs, vec_t_);
          assert(l.vec && r.vec);
          asm_.fp_rrr(vops.vfdotpex, ureg, l.reg, r.reg);
          free_vval(l);
          free_vval(r);
        } else {
          VVal l = veval(*s.value->lhs, vec_t_);
          VVal r = veval(*s.value->rhs, vec_t_);
          assert(l.vec && r.vec);
          const std::uint8_t prod = fp_pool_.alloc();
          asm_.fp_rrr(vops.vfmul, prod, l.reg, r.reg);
          free_vval(l);
          free_vval(r);
          emit_auto_expanding_reduce(ureg, prod);
          fp_pool_.release(prod);
        }
        return;
      }
      case Stmt::Kind::AssignScalar:
        assert(false && "scalar assignment inside vectorized loop");
        return;
    }
  }

  // Vector accumulators for same-type reductions: var id -> packed register.
  std::vector<std::pair<int, std::uint8_t>> vec_accs_;
  // ExSdotp accumulators: var id -> packed register of the one-step-wider
  // format (lanes32(vec_t_)/2 wide lanes). ManualVecExs only.
  std::vector<std::pair<int, std::uint8_t>> wide_accs_;
  std::uint8_t wide_acc_for(int var) {
    for (auto& [v, r] : wide_accs_) {
      if (v == var) return r;
    }
    throw std::runtime_error("missing exsdotp accumulator");
  }
  // Invariant scalar variables pre-converted to the element type for the
  // vector body: var id -> preheader register (see lower_vector_loop).
  std::vector<std::pair<int, std::uint8_t>> var_vec_regs_;
  std::uint8_t vec_acc_for(int var) {
    for (auto& [v, r] : vec_accs_) {
      if (v == var) return r;
    }
    throw std::runtime_error("missing vector accumulator");
  }

  void lower_vector_loop(const Loop& lp) {
    const ScalarType t = *vector_type(lp);
    vec_t_ = t;
    const int vl = lanes32(t);
    InnerCtx ic;
    analyze_inner(lp, ic);

    const std::uint8_t v = int_pool_.alloc();
    loop_reg_[lp.var] = v;
    asm_.li(v, lp.lower);
    const std::uint8_t b = bound_reg(lp);

    load_invariants(ic);
    // Invariant operands participating in vector lanes must be the vector
    // element type; pre-convert them in the preheader.
    for (auto& inv : ic.inv_vals) {
      if (inv.type != t) {
        const std::uint8_t d = fp_pool_.alloc();
        asm_.fp_rr(convert_op(t, inv.type), d, inv.reg);
        fp_pool_.release(inv.reg);
        inv.reg = d;
        inv.type = t;
      }
    }
    // Same for loop-invariant scalar variables read in the body (mixed
    // precision: e.g. atax's y[j] += A[i][j] * s with a float accumulator s
    // feeding a float16 lane operand). Reduction destinations are excluded —
    // the accumulator paths below own those. The home register stays
    // untouched so the scalar epilogue still reads the full-precision value.
    var_vec_regs_.clear();
    {
      std::vector<int> reads;
      std::vector<int> acc_dsts;
      auto note = [&](const Expr& e, auto&& self) -> void {
        if (e.kind == Expr::Kind::Var) {
          if (std::find(reads.begin(), reads.end(), e.var) == reads.end()) {
            reads.push_back(e.var);
          }
        } else if (e.lhs) {
          self(*e.lhs, self);
          self(*e.rhs, self);
        }
      };
      for (const auto& n : lp.body) {
        const Stmt& s = std::get<Stmt>(n);
        if (s.kind == Stmt::Kind::AccumScalar) acc_dsts.push_back(s.dst_var);
        note(*s.value, note);
      }
      for (const int vid : reads) {
        if (std::find(acc_dsts.begin(), acc_dsts.end(), vid) !=
            acc_dsts.end()) {
          continue;
        }
        const auto vt = k_.vars[static_cast<std::size_t>(vid)].type;
        if (vt == t) continue;
        const std::uint8_t d = fp_pool_.alloc();
        asm_.fp_rr(convert_op(t, vt), d,
                   var_reg_[static_cast<std::size_t>(vid)]);
        var_vec_regs_.emplace_back(vid, d);
      }
    }

    // Broadcast support (packed zero) if any store may need it.
    bool need_broadcast = false;
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      if (s.kind == Stmt::Kind::StoreArray) {
        // Conservatively: stores of invariant expressions need broadcasts.
        bool has_stream_load = false;
        auto walk = [&](const Expr& e, auto&& self) -> void {
          if (e.kind == Expr::Kind::Load && e.ref.col.var == lp.var) {
            has_stream_load = true;
          } else if (e.lhs) {
            self(*e.lhs, self);
            self(*e.rhs, self);
          }
        };
        walk(*s.value, walk);
        if (!has_stream_load) need_broadcast = true;
      }
      if (s.value->kind == Expr::Kind::Sub || s.value->kind == Expr::Kind::Div) {
        need_broadcast = true;  // conservative: scalar-lhs corner
      }
    }
    if (need_broadcast) {
      zero_vec_ = fp_pool_.alloc();
      asm_.fp_rr(Op::FMV_S_X, zero_vec_, reg::zero);
      zero_vec_valid_ = true;
    }

    // Same-type reduction accumulators: zero-initialized packed registers.
    vec_accs_.clear();
    for (const auto& n : lp.body) {
      const Stmt& s = std::get<Stmt>(n);
      if (s.kind == Stmt::Kind::AccumScalar &&
          k_.vars[static_cast<std::size_t>(s.dst_var)].type == t) {
        const std::uint8_t r = fp_pool_.alloc();
        asm_.fp_rr(Op::FMV_S_X, r, reg::zero);
        vec_accs_.emplace_back(s.dst_var, r);
      }
    }
    // ExSdotp accumulators: packed registers of the one-step-wider format.
    // All-zero bits are packed +0 lanes in IEEE and packed zero in posits,
    // so the same fmv.s.x x0 idiom initializes both.
    wide_accs_.clear();
    if (mode_ == CodegenMode::ManualVecExs) {
      for (const auto& n : lp.body) {
        const Stmt& s = std::get<Stmt>(n);
        if (s.kind != Stmt::Kind::AccumScalar) continue;
        const auto ut = k_.vars[static_cast<std::size_t>(s.dst_var)].type;
        if (exsdotp_wide(t) != ut) continue;
        const std::uint8_t r = fp_pool_.alloc();
        asm_.fp_rr(Op::FMV_S_X, r, reg::zero);
        wide_accs_.emplace_back(s.dst_var, r);
      }
    }

    // Trip-count split: vector part covers floor(trip / vl) * vl iterations.
    // With unrolling the split is three-way — an unrolled loop stepping
    // U * vl, a vl-stepped loop for the remaining full-width chunks, and the
    // scalar epilogue — and every element keeps the exact O0 execution shape
    // (same chunk order, same instructions per chunk), so reductions stay
    // bit-identical.
    // Dynamic-VL strip mining replaces the whole three-way split: the loop
    // asks `setvl` for min(remaining, vl_cap) elements each iteration, and
    // the final short strip IS the tail — no vecend, no scalar epilogue.
    const bool strip = opt_.vl_cap != 0 && is_manual_mode(mode_);
    const bool const_trip = lp.upper.is_constant();
    const int trip_const = const_trip ? lp.upper.constant - lp.lower : -1;
    const bool exact = const_trip && trip_const % vl == 0;
    const int U = opt_.unroll_factor;
    const int step = U * vl;
    // A statically-known trip count that cannot fill one unrolled group
    // makes the unrolled loop pure overhead: fall back to the O0 shape.
    const bool do_unroll = !strip && U > 1 && !(const_trip && trip_const < step);
    // The vl-stepped loop is statically empty when the unrolled loop already
    // covers every full-width chunk.
    const bool mid_needed =
        !strip && (!do_unroll || !const_trip ||
                   (trip_const > 0 &&
                    (trip_const / vl) * vl != (trip_const / step) * step));
    std::uint8_t vecend = 0;
    if (mid_needed) {
      if (const_trip) {
        vecend = int_pool_.alloc();
        asm_.li(vecend, lp.lower + (trip_const / vl) * vl);
      } else {
        // vecend = lower + (trip & -vl)
        vecend = int_pool_.alloc();
        const std::uint8_t trip = int_pool_.alloc();
        asm_.sub(trip, b, v);
        asm_.emit({.op = Op::ANDI, .rd = trip, .rs1 = trip, .imm = -vl});
        asm_.add(vecend, v, trip);
        int_pool_.release(trip);
      }
    }

    const bool indexed =
        (mode_ == CodegenMode::AutoVec) && !opt_.ptr_strength_reduction;
    if (indexed) {
      setup_rowbases(ic);
      ic.indexed_active = true;
    } else {
      setup_pointers(lp, ic);
      ic.pointers_active = true;
    }
    inner_ = &ic;

    const std::uint32_t range_begin = asm_.pc();
    if (strip) {
      // VL-agnostic strip-mined loop:
      //   while (v < b) { U x [ avl = b - v; gvl = setvl(avl, ew, cap);
      //                         body; ptr += gvl << ew; v += gvl ] }
      // Unrolled copies past the exhausted point self-neutralize: with
      // AVL == 0, setvl grants 0, so the body's tail-undisturbed merges, the
      // VL-governed loads/stores, the pointer bumps, and the induction update
      // are all no-ops. That makes U > 1 element-for-element identical to
      // U = 1 (same strip sequence), which is the O2 == O0 contract.
      strip_ = true;
      const int ew = log2_bytes(t);
      const std::uint8_t avl = int_pool_.alloc();
      const std::uint8_t gvl = int_pool_.alloc();
      const std::uint8_t bump = int_pool_.alloc();
      const auto lsend = asm_.make_label();
      const auto lstop = asm_.make_label();
      asm_.bge(v, b, lsend);
      asm_.bind(lstop);
      // Replicate strips only when the static strip count divides evenly by
      // U: exhausted strips are architecturally no-ops but still retire
      // their glue and masked body, so a partial final group would make the
      // unrolled loop strictly slower than U = 1.
      int copies = 1;
      if (U > 1 && const_trip && trip_const > 0) {
        const int g = vl < opt_.vl_cap ? vl : opt_.vl_cap;
        const int strips = (trip_const + g - 1) / g;
        if (strips % U == 0) copies = U;
      }
      for (int u = 0; u < copies; ++u) {
        asm_.sub(avl, b, v);
        asm_.setvl(gvl, avl, ew, opt_.vl_cap);
        for (const auto& n : lp.body) lower_vec_stmt(std::get<Stmt>(n));
        asm_.slli(bump, gvl, ew);
        for (const std::uint8_t p : ic.ptr_regs) asm_.add(p, p, bump);
        asm_.add(v, v, gvl);
      }
      asm_.blt(v, b, lstop);
      asm_.bind(lsend);
      // Restore VL to VLMAX: the horizontal reductions below (and any later
      // vector loop's preheader) use packed operations, which are
      // VL-governed. Requesting a large AVL with no cap grants VLMAX.
      asm_.li(avl, 32);
      asm_.setvl(reg::zero, avl, 0, 0);
      strip_ = false;
      int_pool_.release(bump);
      int_pool_.release(gvl);
      int_pool_.release(avl);
    }
    if (do_unroll) {
      const std::uint8_t uvend = int_pool_.alloc();
      if (const_trip) {
        asm_.li(uvend,
                lp.lower + (trip_const > 0 ? (trip_const / step) * step : 0));
      } else {
        const std::uint8_t trip = int_pool_.alloc();
        asm_.sub(trip, b, v);
        asm_.emit({.op = Op::ANDI, .rd = trip, .rs1 = trip, .imm = -step});
        asm_.add(uvend, v, trip);
        int_pool_.release(trip);
      }
      const auto luend = asm_.make_label();
      const auto lutop = asm_.make_label();
      asm_.bge(v, uvend, luend);
      asm_.bind(lutop);
      for (int u = 0; u < U; ++u) {
        unroll_off_ = u * vl;
        for (const auto& n : lp.body) lower_vec_stmt(std::get<Stmt>(n));
      }
      unroll_off_ = 0;
      if (!indexed) bump_pointers(ic, step);
      asm_.addi(v, v, step);
      asm_.blt(v, uvend, lutop);
      asm_.bind(luend);
      int_pool_.release(uvend);
    }
    if (mid_needed) {
      const auto lvend = asm_.make_label();
      const auto lvtop = asm_.make_label();
      asm_.bge(v, vecend, lvend);
      asm_.bind(lvtop);
      for (const auto& n : lp.body) lower_vec_stmt(std::get<Stmt>(n));
      if (!indexed) bump_pointers(ic, vl);
      asm_.addi(v, v, vl);
      asm_.blt(v, vecend, lvtop);
      asm_.bind(lvend);
      int_pool_.release(vecend);
    }

    // Horizontal reductions for same-type accumulators.
    for (const auto& [varid, vacc] : vec_accs_) {
      const std::uint8_t h = horizontal_sum(vacc);
      const auto ureg = var_reg_[static_cast<std::size_t>(varid)];
      asm_.fp_rrr(scalar_ops(t).fadd, ureg, ureg, h);
      fp_pool_.release(h);
      fp_pool_.release(vacc);
    }
    vec_accs_.clear();
    // Wide horizontal reductions for ExSdotp accumulators: the sum runs in
    // the accumulator (one-step-wider) format, then folds into the home
    // register with one wide fadd — no narrowing anywhere.
    for (const auto& [varid, vacc] : wide_accs_) {
      const ScalarType wt = *exsdotp_wide(t);
      const std::uint8_t h = horizontal_sum_typed(vacc, wt, vl / 2);
      const auto ureg = var_reg_[static_cast<std::size_t>(varid)];
      asm_.fp_rrr(scalar_ops(wt).fadd, ureg, ureg, h);
      fp_pool_.release(h);
      fp_pool_.release(vacc);
    }
    wide_accs_.clear();

    // Scalar epilogue for the remainder (strip mining has none: the final
    // short strip already covered it).
    if (!strip && !exact) {
      if (indexed) {
        // Materialize pointers for the scalar tail from the row bases.
        ic.indexed_active = false;
        for (std::size_t i = 0; i < ic.patterns.size(); ++i) {
          const auto& arr =
              k_.arrays[static_cast<std::size_t>(ic.patterns[i].array)];
          const std::uint8_t ptr = int_pool_.alloc();
          asm_.slli(ptr, v, log2_bytes(arr.type));
          asm_.add(ptr, ic.rowbase_regs[i], ptr);
          ic.ptr_regs.push_back(ptr);
        }
        ic.pointers_active = true;
      }
      const auto lend = asm_.make_label();
      const auto ltop = asm_.make_label();
      asm_.bge(v, b, lend);
      asm_.bind(ltop);
      for (const auto& n : lp.body) lower_stmt_scalar(std::get<Stmt>(n));
      bump_pointers(ic, 1);
      asm_.addi(v, v, 1);
      asm_.blt(v, b, ltop);
      asm_.bind(lend);
    }
    const std::uint32_t range_end = asm_.pc();
    inner_ranges_.emplace_back(range_begin, range_end);

    inner_ = nullptr;
    if (zero_vec_valid_) {
      fp_pool_.release(zero_vec_);
      zero_vec_valid_ = false;
    }
    for (const auto& [vid, reg] : var_vec_regs_) fp_pool_.release(reg);
    var_vec_regs_.clear();
    release_inner(ic);
    int_pool_.release(b);
    int_pool_.release(v);
    loop_reg_.erase(lp.var);
  }

  // ------------------------------------------------------------- provenance --
  /// Record the array id of the load/store about to be emitted (text index =
  /// current pc slot). Distinct arrays and the constant pool are disjoint
  /// memory objects, which is what the dead-glue pass's alias rules consume.
  void note_mem(int array) {
    mem_notes_.emplace_back((asm_.pc() - text_base_) / 4, array);
  }
  [[nodiscard]] int const_region_id() const {
    return static_cast<int>(k_.arrays.size());
  }

  // ------------------------------------------------------------------ state --
  const Kernel& k_;
  CodegenMode mode_;
  OptConfig opt_;
  /// Element offset of the unrolled body currently being emitted (folded
  /// into streaming load/store displacements by stream_addr).
  int unroll_off_ = 0;
  std::vector<std::pair<std::uint32_t, int>> mem_notes_;
  Assembler asm_;
  /// The assembler's text base (its pc before anything is emitted), so
  /// provenance indices stay correct under any base address.
  std::uint32_t text_base_ = asm_.pc();
  Pool int_pool_;
  Pool fp_pool_;
  std::vector<std::uint8_t> base_reg_;  // per array
  std::vector<std::uint8_t> var_reg_;   // per scalar var
  std::map<int, std::uint8_t> loop_reg_;
  std::vector<ConstKey> const_keys_;
  std::vector<std::uint8_t> const_regs_;
  std::unordered_map<std::string, std::uint32_t> array_addr_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inner_ranges_;
};

}  // namespace

namespace {

/// Attribute a pre-DGE verifier failure to the emission stage that
/// introduced it: re-lower at reduced configurations (no unroll, no
/// strength reduction — both are fused into emission, so they are not
/// separately observable on the green path) and name the first stage whose
/// addition makes the diagnostics appear. Runs only on the error path.
[[noreturn]] void attribute_and_throw(
    const Kernel& kernel, CodegenMode mode,
    const std::vector<std::vector<double>>& array_init, const OptConfig& opt,
    std::vector<verify::Diag> diags) {
  const Verifier v;
  const auto clean_under = [&](const OptConfig& reduced) {
    try {
      Lowerer lw(kernel, mode, reduced);
      return v.check(lw.run(array_init)).empty();
    } catch (const std::exception&) {
      return false;  // cannot re-lower: no attribution possible
    }
  };
  OptConfig base = opt;
  base.unroll_factor = 1;
  base.ptr_strength_reduction = false;
  base.dead_glue_elim = false;
  std::string pass = "lower";
  if (clean_under(base)) {
    OptConfig with_unroll = base;
    with_unroll.unroll_factor = opt.unroll_factor;
    pass = opt.unroll_factor > 1 && !clean_under(with_unroll)
               ? "unroll"
               : "strength-reduction";
  }
  throw verify::VerifyError(pass, std::move(diags));
}

}  // namespace

LoweredKernel lower(const Kernel& kernel, CodegenMode mode,
                    const std::vector<std::vector<double>>& array_init,
                    const OptConfig& opt) {
  validate(opt);
  Lowerer lw(kernel, mode, opt);
  LoweredKernel out = lw.run(array_init);
  if (verify::enabled()) {
    auto diags = Verifier().check(out);
    if (!diags.empty()) {
      attribute_and_throw(kernel, mode, array_init, opt, std::move(diags));
    }
  }
  if (opt.dead_glue_elim) {
    out.glue = dead_glue_elim(out.program, out.inner_ranges, &out.mem_array,
                              /*regs_dead_at_exit=*/true);
    if (verify::enabled()) verify_or_throw(out, "dead-glue-elim");
  }
  return out;
}

}  // namespace sfrv::ir
