// Scalar element types of the kernel IR and their ISA mappings.
#pragma once

#include <optional>
#include <string_view>

#include "isa/isa.hpp"
#include "softfloat/formats.hpp"

namespace sfrv::ir {

/// The paper's C-level type system: float plus the three smallFloat
/// keywords, extended with the two posit counterparts (appended so existing
/// enum values — serialized in reports — stay stable).
enum class ScalarType : std::uint8_t { F32, F16, F16Alt, F8, P8, P16 };

[[nodiscard]] constexpr fp::FpFormat fp_format(ScalarType t) {
  switch (t) {
    case ScalarType::F32: return fp::FpFormat::F32;
    case ScalarType::F16: return fp::FpFormat::F16;
    case ScalarType::F16Alt: return fp::FpFormat::F16Alt;
    case ScalarType::F8: return fp::FpFormat::F8;
    case ScalarType::P8: return fp::FpFormat::P8;
    case ScalarType::P16: return fp::FpFormat::P16;
  }
  return fp::FpFormat::F32;
}

[[nodiscard]] constexpr bool is_posit(ScalarType t) {
  return t == ScalarType::P8 || t == ScalarType::P16;
}

[[nodiscard]] constexpr int width_bits(ScalarType t) {
  return fp::format_width(fp_format(t));
}
[[nodiscard]] constexpr int width_bytes(ScalarType t) { return width_bits(t) / 8; }

[[nodiscard]] constexpr std::string_view type_name(ScalarType t) {
  switch (t) {
    case ScalarType::F32: return "float";
    case ScalarType::F16: return "float16";
    case ScalarType::F16Alt: return "float16alt";
    case ScalarType::F8: return "float8";
    case ScalarType::P8: return "posit8";
    case ScalarType::P16: return "posit16";
  }
  return "?";
}

/// True when `wide` can represent every value of `narrow` (defines the
/// implicit-promotion lattice; the two 16-bit formats are unordered).
/// Every posit8/posit16 value is exactly a binary32 value (fractions fit in
/// 24 bits, exponents within ±56), so float still tops the lattice; posit16
/// resizes posit8 exactly. IEEE narrows and posits are otherwise unordered —
/// no posit holds IEEE infinities, no IEEE narrow holds the posit tapered
/// tails — so mixing them in one expression requires going through float.
[[nodiscard]] constexpr bool is_wider_or_equal(ScalarType wide, ScalarType narrow) {
  if (wide == narrow) return true;
  if (wide == ScalarType::F32) return true;
  if ((wide == ScalarType::F16 || wide == ScalarType::F16Alt) &&
      narrow == ScalarType::F8) {
    return true;
  }
  if (wide == ScalarType::P16 && narrow == ScalarType::P8) return true;
  return false;
}

/// True when `promote(a, b)` is defined (the lattice orders the pair).
[[nodiscard]] constexpr bool comparable(ScalarType a, ScalarType b) {
  return is_wider_or_equal(a, b) || is_wider_or_equal(b, a);
}

/// SIMD lanes for a type at FLEN=32 (the evaluation configuration).
[[nodiscard]] constexpr int lanes32(ScalarType t) {
  return isa::vector_lanes(fp_format(t), 32);
}

// ---- opcode selection tables -------------------------------------------------

struct ScalarOps {
  isa::Op load, store, fadd, fsub, fmul, fdiv, fmadd, fmin, fmax, fsgnj,
      fcvt_from_w, fcvt_w, flt, fle, feq;
};

[[nodiscard]] constexpr ScalarOps scalar_ops(ScalarType t) {
  using isa::Op;
  switch (t) {
    case ScalarType::F32:
      return {Op::FLW, Op::FSW, Op::FADD_S, Op::FSUB_S, Op::FMUL_S, Op::FDIV_S,
              Op::FMADD_S, Op::FMIN_S, Op::FMAX_S, Op::FSGNJ_S, Op::FCVT_S_W,
              Op::FCVT_W_S, Op::FLT_S, Op::FLE_S, Op::FEQ_S};
    case ScalarType::F16:
      return {Op::FLH, Op::FSH, Op::FADD_H, Op::FSUB_H, Op::FMUL_H, Op::FDIV_H,
              Op::FMADD_H, Op::FMIN_H, Op::FMAX_H, Op::FSGNJ_H, Op::FCVT_H_W,
              Op::FCVT_W_H, Op::FLT_H, Op::FLE_H, Op::FEQ_H};
    case ScalarType::F16Alt:
      return {Op::FLH, Op::FSH, Op::FADD_AH, Op::FSUB_AH, Op::FMUL_AH,
              Op::FDIV_AH, Op::FMADD_AH, Op::FMIN_AH, Op::FMAX_AH, Op::FSGNJ_AH,
              Op::FCVT_AH_W, Op::FCVT_W_AH, Op::FLT_AH, Op::FLE_AH, Op::FEQ_AH};
    case ScalarType::F8:
      return {Op::FLB, Op::FSB, Op::FADD_B, Op::FSUB_B, Op::FMUL_B, Op::FDIV_B,
              Op::FMADD_B, Op::FMIN_B, Op::FMAX_B, Op::FSGNJ_B, Op::FCVT_B_W,
              Op::FCVT_W_B, Op::FLT_B, Op::FLE_B, Op::FEQ_B};
    case ScalarType::P8:
      return {Op::FLB, Op::FSB, Op::FADD_P8, Op::FSUB_P8, Op::FMUL_P8,
              Op::FDIV_P8, Op::FMADD_P8, Op::FMIN_P8, Op::FMAX_P8,
              Op::FSGNJ_P8, Op::FCVT_P8_W, Op::FCVT_W_P8, Op::FLT_P8,
              Op::FLE_P8, Op::FEQ_P8};
    case ScalarType::P16:
      return {Op::FLH, Op::FSH, Op::FADD_P16, Op::FSUB_P16, Op::FMUL_P16,
              Op::FDIV_P16, Op::FMADD_P16, Op::FMIN_P16, Op::FMAX_P16,
              Op::FSGNJ_P16, Op::FCVT_P16_W, Op::FCVT_W_P16, Op::FLT_P16,
              Op::FLE_P16, Op::FEQ_P16};
  }
  return scalar_ops(ScalarType::F32);
}

struct VectorOps {
  isa::Op vfadd, vfsub, vfmul, vfdiv, vfmac, vfadd_r, vfsub_r, vfmul_r,
      vfdiv_r, vfmac_r, vfdotpex, vfcpka;
};

/// Vector opcodes; only valid for the packing types (the three smallFloat
/// keywords and the two posits — float has a single lane at FLEN=32).
[[nodiscard]] constexpr VectorOps vector_ops(ScalarType t) {
  using isa::Op;
  switch (t) {
    case ScalarType::F16:
      return {Op::VFADD_H, Op::VFSUB_H, Op::VFMUL_H, Op::VFDIV_H, Op::VFMAC_H,
              Op::VFADD_R_H, Op::VFSUB_R_H, Op::VFMUL_R_H, Op::VFDIV_R_H,
              Op::VFMAC_R_H, Op::VFDOTPEX_S_H, Op::VFCPKA_H_S};
    case ScalarType::F16Alt:
      return {Op::VFADD_AH, Op::VFSUB_AH, Op::VFMUL_AH, Op::VFDIV_AH,
              Op::VFMAC_AH, Op::VFADD_R_AH, Op::VFSUB_R_AH, Op::VFMUL_R_AH,
              Op::VFDIV_R_AH, Op::VFMAC_R_AH, Op::VFDOTPEX_S_AH, Op::VFCPKA_AH_S};
    case ScalarType::F8:
      return {Op::VFADD_B, Op::VFSUB_B, Op::VFMUL_B, Op::VFDIV_B, Op::VFMAC_B,
              Op::VFADD_R_B, Op::VFSUB_R_B, Op::VFMUL_R_B, Op::VFDIV_R_B,
              Op::VFMAC_R_B, Op::VFDOTPEX_S_B, Op::VFCPKA_B_S};
    case ScalarType::P8:
      return {Op::VFADD_P8, Op::VFSUB_P8, Op::VFMUL_P8, Op::VFDIV_P8,
              Op::VFMAC_P8, Op::VFADD_R_P8, Op::VFSUB_R_P8, Op::VFMUL_R_P8,
              Op::VFDIV_R_P8, Op::VFMAC_R_P8, Op::VFDOTPEX_S_P8,
              Op::VFCPKA_P8_S};
    case ScalarType::P16:
      return {Op::VFADD_P16, Op::VFSUB_P16, Op::VFMUL_P16, Op::VFDIV_P16,
              Op::VFMAC_P16, Op::VFADD_R_P16, Op::VFSUB_R_P16, Op::VFMUL_R_P16,
              Op::VFDIV_R_P16, Op::VFMAC_R_P16, Op::VFDOTPEX_S_P16,
              Op::VFCPKA_P16_S};
    default:
      break;
  }
  return vector_ops(ScalarType::F16);
}

/// Conversion opcode between two scalar types (must differ).
[[nodiscard]] constexpr isa::Op convert_op(ScalarType to, ScalarType from) {
  using isa::Op;
  switch (to) {
    case ScalarType::F32:
      switch (from) {
        case ScalarType::F16: return Op::FCVT_S_H;
        case ScalarType::F16Alt: return Op::FCVT_S_AH;
        case ScalarType::F8: return Op::FCVT_S_B;
        case ScalarType::P8: return Op::FCVT_S_P8;
        case ScalarType::P16: return Op::FCVT_S_P16;
        default: break;
      }
      break;
    case ScalarType::F16:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_H_S;
        case ScalarType::F16Alt: return Op::FCVT_H_AH;
        case ScalarType::F8: return Op::FCVT_H_B;
        case ScalarType::P8: return Op::FCVT_H_P8;
        case ScalarType::P16: return Op::FCVT_H_P16;
        default: break;
      }
      break;
    case ScalarType::F16Alt:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_AH_S;
        case ScalarType::F16: return Op::FCVT_AH_H;
        case ScalarType::F8: return Op::FCVT_AH_B;
        case ScalarType::P8: return Op::FCVT_AH_P8;
        case ScalarType::P16: return Op::FCVT_AH_P16;
        default: break;
      }
      break;
    case ScalarType::F8:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_B_S;
        case ScalarType::F16: return Op::FCVT_B_H;
        case ScalarType::F16Alt: return Op::FCVT_B_AH;
        case ScalarType::P8: return Op::FCVT_B_P8;
        case ScalarType::P16: return Op::FCVT_B_P16;
        default: break;
      }
      break;
    case ScalarType::P8:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_P8_S;
        case ScalarType::F16: return Op::FCVT_P8_H;
        case ScalarType::F16Alt: return Op::FCVT_P8_AH;
        case ScalarType::F8: return Op::FCVT_P8_B;
        case ScalarType::P16: return Op::FCVT_P8_P16;
        default: break;
      }
      break;
    case ScalarType::P16:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_P16_S;
        case ScalarType::F16: return Op::FCVT_P16_H;
        case ScalarType::F16Alt: return Op::FCVT_P16_AH;
        case ScalarType::F8: return Op::FCVT_P16_B;
        case ScalarType::P8: return Op::FCVT_P16_P8;
        default: break;
      }
      break;
  }
  return Op::FCVT_S_H;  // unreachable for valid pairs
}

/// Expanding multiply-accumulate opcode (Xfaux) for a smallFloat source
/// type. No posit fmacex exists — callers must gate on !is_posit(from).
[[nodiscard]] constexpr isa::Op fmacex_op(ScalarType from) {
  using isa::Op;
  switch (from) {
    case ScalarType::F16: return Op::FMACEX_S_H;
    case ScalarType::F16Alt: return Op::FMACEX_S_AH;
    case ScalarType::F8: return Op::FMACEX_S_B;
    default: break;
  }
  return Op::FMACEX_S_H;
}

/// Accumulator type of the ExSdotp unit for an element type: the one-step-
/// wider format the widening sum-of-dot-products accumulates in. nullopt for
/// types with no exsdotp instruction (float, posit16, and binary16alt as an
/// *element* — vfexsdotp.s.ah exists, reached via F16Alt -> F32 below).
[[nodiscard]] constexpr std::optional<ScalarType> exsdotp_wide(ScalarType elem) {
  switch (elem) {
    case ScalarType::F8: return ScalarType::F16;
    case ScalarType::F16: return ScalarType::F32;
    case ScalarType::F16Alt: return ScalarType::F32;
    case ScalarType::P8: return ScalarType::P16;
    default: break;
  }
  return std::nullopt;
}

/// The vfexsdotp opcode for an element type (valid iff exsdotp_wide(elem)).
[[nodiscard]] constexpr isa::Op exsdotp_op(ScalarType elem) {
  using isa::Op;
  switch (elem) {
    case ScalarType::F8: return Op::VFEXSDOTP_H_B;
    case ScalarType::F16: return Op::VFEXSDOTP_S_H;
    case ScalarType::F16Alt: return Op::VFEXSDOTP_S_AH;
    case ScalarType::P8: return Op::VFEXSDOTP_P16_P8;
    default: break;
  }
  return Op::VFEXSDOTP_S_H;
}

}  // namespace sfrv::ir
