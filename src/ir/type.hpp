// Scalar element types of the kernel IR and their ISA mappings.
#pragma once

#include <string_view>

#include "isa/isa.hpp"
#include "softfloat/formats.hpp"

namespace sfrv::ir {

/// The paper's C-level type system: float plus the three smallFloat keywords.
enum class ScalarType : std::uint8_t { F32, F16, F16Alt, F8 };

[[nodiscard]] constexpr fp::FpFormat fp_format(ScalarType t) {
  switch (t) {
    case ScalarType::F32: return fp::FpFormat::F32;
    case ScalarType::F16: return fp::FpFormat::F16;
    case ScalarType::F16Alt: return fp::FpFormat::F16Alt;
    case ScalarType::F8: return fp::FpFormat::F8;
  }
  return fp::FpFormat::F32;
}

[[nodiscard]] constexpr int width_bits(ScalarType t) {
  return fp::format_width(fp_format(t));
}
[[nodiscard]] constexpr int width_bytes(ScalarType t) { return width_bits(t) / 8; }

[[nodiscard]] constexpr std::string_view type_name(ScalarType t) {
  switch (t) {
    case ScalarType::F32: return "float";
    case ScalarType::F16: return "float16";
    case ScalarType::F16Alt: return "float16alt";
    case ScalarType::F8: return "float8";
  }
  return "?";
}

/// True when `wide` can represent every value of `narrow` (defines the
/// implicit-promotion lattice; the two 16-bit formats are unordered).
[[nodiscard]] constexpr bool is_wider_or_equal(ScalarType wide, ScalarType narrow) {
  if (wide == narrow) return true;
  if (wide == ScalarType::F32) return true;
  if ((wide == ScalarType::F16 || wide == ScalarType::F16Alt) &&
      narrow == ScalarType::F8) {
    return true;
  }
  return false;
}

/// SIMD lanes for a type at FLEN=32 (the evaluation configuration).
[[nodiscard]] constexpr int lanes32(ScalarType t) {
  return isa::vector_lanes(fp_format(t), 32);
}

// ---- opcode selection tables -------------------------------------------------

struct ScalarOps {
  isa::Op load, store, fadd, fsub, fmul, fdiv, fmadd, fmin, fmax, fsgnj,
      fcvt_from_w, fcvt_w, flt, fle, feq;
};

[[nodiscard]] constexpr ScalarOps scalar_ops(ScalarType t) {
  using isa::Op;
  switch (t) {
    case ScalarType::F32:
      return {Op::FLW, Op::FSW, Op::FADD_S, Op::FSUB_S, Op::FMUL_S, Op::FDIV_S,
              Op::FMADD_S, Op::FMIN_S, Op::FMAX_S, Op::FSGNJ_S, Op::FCVT_S_W,
              Op::FCVT_W_S, Op::FLT_S, Op::FLE_S, Op::FEQ_S};
    case ScalarType::F16:
      return {Op::FLH, Op::FSH, Op::FADD_H, Op::FSUB_H, Op::FMUL_H, Op::FDIV_H,
              Op::FMADD_H, Op::FMIN_H, Op::FMAX_H, Op::FSGNJ_H, Op::FCVT_H_W,
              Op::FCVT_W_H, Op::FLT_H, Op::FLE_H, Op::FEQ_H};
    case ScalarType::F16Alt:
      return {Op::FLH, Op::FSH, Op::FADD_AH, Op::FSUB_AH, Op::FMUL_AH,
              Op::FDIV_AH, Op::FMADD_AH, Op::FMIN_AH, Op::FMAX_AH, Op::FSGNJ_AH,
              Op::FCVT_AH_W, Op::FCVT_W_AH, Op::FLT_AH, Op::FLE_AH, Op::FEQ_AH};
    case ScalarType::F8:
      return {Op::FLB, Op::FSB, Op::FADD_B, Op::FSUB_B, Op::FMUL_B, Op::FDIV_B,
              Op::FMADD_B, Op::FMIN_B, Op::FMAX_B, Op::FSGNJ_B, Op::FCVT_B_W,
              Op::FCVT_W_B, Op::FLT_B, Op::FLE_B, Op::FEQ_B};
  }
  return scalar_ops(ScalarType::F32);
}

struct VectorOps {
  isa::Op vfadd, vfsub, vfmul, vfdiv, vfmac, vfadd_r, vfsub_r, vfmul_r,
      vfdiv_r, vfmac_r, vfdotpex, vfcpka;
};

/// Vector opcodes; only valid for the three smallFloat types.
[[nodiscard]] constexpr VectorOps vector_ops(ScalarType t) {
  using isa::Op;
  switch (t) {
    case ScalarType::F16:
      return {Op::VFADD_H, Op::VFSUB_H, Op::VFMUL_H, Op::VFDIV_H, Op::VFMAC_H,
              Op::VFADD_R_H, Op::VFSUB_R_H, Op::VFMUL_R_H, Op::VFDIV_R_H,
              Op::VFMAC_R_H, Op::VFDOTPEX_S_H, Op::VFCPKA_H_S};
    case ScalarType::F16Alt:
      return {Op::VFADD_AH, Op::VFSUB_AH, Op::VFMUL_AH, Op::VFDIV_AH,
              Op::VFMAC_AH, Op::VFADD_R_AH, Op::VFSUB_R_AH, Op::VFMUL_R_AH,
              Op::VFDIV_R_AH, Op::VFMAC_R_AH, Op::VFDOTPEX_S_AH, Op::VFCPKA_AH_S};
    case ScalarType::F8:
      return {Op::VFADD_B, Op::VFSUB_B, Op::VFMUL_B, Op::VFDIV_B, Op::VFMAC_B,
              Op::VFADD_R_B, Op::VFSUB_R_B, Op::VFMUL_R_B, Op::VFDIV_R_B,
              Op::VFMAC_R_B, Op::VFDOTPEX_S_B, Op::VFCPKA_B_S};
    default:
      break;
  }
  return vector_ops(ScalarType::F16);
}

/// Conversion opcode between two scalar types (must differ).
[[nodiscard]] constexpr isa::Op convert_op(ScalarType to, ScalarType from) {
  using isa::Op;
  switch (to) {
    case ScalarType::F32:
      switch (from) {
        case ScalarType::F16: return Op::FCVT_S_H;
        case ScalarType::F16Alt: return Op::FCVT_S_AH;
        case ScalarType::F8: return Op::FCVT_S_B;
        default: break;
      }
      break;
    case ScalarType::F16:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_H_S;
        case ScalarType::F16Alt: return Op::FCVT_H_AH;
        case ScalarType::F8: return Op::FCVT_H_B;
        default: break;
      }
      break;
    case ScalarType::F16Alt:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_AH_S;
        case ScalarType::F16: return Op::FCVT_AH_H;
        case ScalarType::F8: return Op::FCVT_AH_B;
        default: break;
      }
      break;
    case ScalarType::F8:
      switch (from) {
        case ScalarType::F32: return Op::FCVT_B_S;
        case ScalarType::F16: return Op::FCVT_B_H;
        case ScalarType::F16Alt: return Op::FCVT_B_AH;
        default: break;
      }
      break;
  }
  return Op::FCVT_S_H;  // unreachable for valid pairs
}

/// Expanding multiply-accumulate opcode (Xfaux) for a smallFloat source type.
[[nodiscard]] constexpr isa::Op fmacex_op(ScalarType from) {
  using isa::Op;
  switch (from) {
    case ScalarType::F16: return Op::FMACEX_S_H;
    case ScalarType::F16Alt: return Op::FMACEX_S_AH;
    case ScalarType::F8: return Op::FMACEX_S_B;
    default: break;
  }
  return Op::FMACEX_S_H;
}

}  // namespace sfrv::ir
