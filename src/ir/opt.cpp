#include "ir/opt.hpp"

#include <algorithm>
#include <array>
#include <bitset>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "isa/encoding.hpp"
#include "isa/opcodes.hpp"
#include "util/env.hpp"

namespace sfrv::ir {

// ---- configuration ----------------------------------------------------------

void validate(const OptConfig& cfg) {
  const int u = cfg.unroll_factor;
  if (u < 1 || u > 8 || (u & (u - 1)) != 0) {
    throw std::runtime_error(
        "invalid unroll factor " + std::to_string(u) +
        " (must be a power of two in [1, 8])");
  }
  // The setvl cap field is 6 bits, so a strip request cannot exceed 63
  // elements. Per-format divisibility (cap % lanes == 0) is checked at
  // lowering time, where the element width is known.
  if (cfg.vl_cap < 0 || cfg.vl_cap > 63) {
    throw std::runtime_error("invalid vl_cap " + std::to_string(cfg.vl_cap) +
                             " (must be in [0, 63])");
  }
}

std::string_view opt_name(const OptConfig& cfg) {
  if (cfg == OptConfig::O0()) return "O0";
  if (cfg == OptConfig::O1()) return "O1";
  if (cfg == OptConfig::O2()) return "O2";
  return "custom";
}

OptConfig opt_from_name(std::string_view name) {
  for (const OptConfig c :
       {OptConfig::O0(), OptConfig::O1(), OptConfig::O2()}) {
    if (name == opt_name(c)) return c;
  }
  throw std::runtime_error("unknown opt level: " + std::string(name));
}

OptConfig opt_from_env(const char* value) {
  return util::parse_env_enum(
      value, OptConfig::O0(),
      [](const char* v) { return opt_from_name(v); }, "SFRV_OPT", "O0|O1|O2");
}

OptConfig default_opt() {
  static const OptConfig c = opt_from_env(std::getenv("SFRV_OPT"));
  return c;
}

// ---- dead-glue elimination --------------------------------------------------

namespace {

using isa::Cls;
using isa::Inst;
using isa::Lay;
using isa::Op;

/// Register numbering for the pass: 0-31 integer, 32-63 FP.
constexpr int kNone = -1;
constexpr int xr(unsigned r) { return static_cast<int>(r); }
constexpr int fr(unsigned r) { return 32 + static_cast<int>(r); }

/// Conservative per-instruction register/effect model. `understood == false`
/// makes the whole pass bail out (position-dependent control flow, or an
/// opcode outside the kernel compiler's emission set).
struct InstModel {
  int def = kNone;  // writes to x0 are normalized away
  int uses[4] = {kNone, kNone, kNone, kNone};
  bool understood = false;
  bool deletable = false;    // pure: no memory/fflags/control side effects
  bool is_load = false;      // FP load
  bool is_store = false;     // FP store
  bool is_branch = false;
  bool is_terminator = false;
  bool barrier = false;      // invalidates the whole forwarding table
  int width = 0;             // access bytes for FP loads/stores
};

InstModel classify(const Inst& in) {
  InstModel m;
  const Op op = in.op;
  // Position-dependent or indirect control flow: the compaction step cannot
  // preserve auipc results or jump targets, so the pass refuses the program.
  if (op == Op::JAL || op == Op::JALR || op == Op::AUIPC) return m;
  if (op == Op::EBREAK || op == Op::ECALL) {
    m.understood = true;
    m.is_terminator = true;
    return m;
  }
  const Cls c = isa::op_class(op);
  const Lay lay = isa::layout(op);
  auto def_x = [&](unsigned r) {
    if (r != 0) m.def = xr(r);
  };
  // VL-governed vector memops: the access footprint depends on the dynamic
  // vl register (invisible to this pass), and a VL load merges into its
  // destination tail-undisturbed, so rd is a *source* as well as the def.
  // Model them as opaque memory barriers — never deleted, never eligible
  // for store-to-load forwarding, and clearing the forwarding table (the
  // widths the table tracks don't describe what these ops touch).
  switch (op) {
    case Op::VFLB:
    case Op::VFLH:
      m.understood = true;
      m.barrier = true;
      m.def = fr(in.rd);
      m.uses[0] = xr(in.rs1);
      m.uses[1] = fr(in.rd);
      return m;
    case Op::VFSB:
    case Op::VFSH:
      m.understood = true;
      m.barrier = true;
      m.uses[0] = xr(in.rs1);
      m.uses[1] = fr(in.rs2);
      return m;
    default:
      break;
  }
  switch (c) {
    case Cls::IntAlu:
    case Cls::IntMul:
    case Cls::IntDiv:
      m.understood = true;
      m.deletable = true;
      def_x(in.rd);
      switch (lay) {
        case Lay::U: break;  // lui
        case Lay::Iimm:
        case Lay::Shamt:
          m.uses[0] = xr(in.rs1);
          break;
        case Lay::R:
          m.uses[0] = xr(in.rs1);
          m.uses[1] = xr(in.rs2);
          break;
        default:
          m.understood = false;
          break;
      }
      return m;
    case Cls::Branch:
      m.understood = true;
      m.is_branch = true;
      m.uses[0] = xr(in.rs1);
      m.uses[1] = xr(in.rs2);
      return m;
    case Cls::FpLoad:
      m.understood = true;
      m.is_load = true;
      m.deletable = true;  // no fflags; lowered accesses never trap
      m.def = fr(in.rd);
      m.uses[0] = xr(in.rs1);
      m.width = op == Op::FLW ? 4 : op == Op::FLH ? 2 : 1;
      return m;
    case Cls::FpStore:
      m.understood = true;
      m.is_store = true;
      m.uses[0] = xr(in.rs1);
      m.uses[1] = fr(in.rs2);
      m.width = op == Op::FSW ? 4 : op == Op::FSH ? 2 : 1;
      return m;
    case Cls::Load:
      // Integer loads: kept (never deleted), base register use.
      m.understood = true;
      m.barrier = true;
      def_x(in.rd);
      m.uses[0] = xr(in.rs1);
      return m;
    case Cls::Store:
      m.understood = true;
      m.barrier = true;
      m.uses[0] = xr(in.rs1);
      m.uses[1] = xr(in.rs2);
      return m;
    case Cls::Csr:
      // CSR traffic (frm/fflags) must stay put and pins everything around it.
      m.understood = true;
      m.barrier = true;
      def_x(in.rd);
      m.uses[0] = xr(in.rs1);
      return m;
    case Cls::Sys:
      m.understood = true;  // fence
      m.barrier = true;
      return m;
    case Cls::Jump:
      return m;  // jal/jalr handled above; anything else: bail
    default:
      break;  // FP compute, below
  }

  // FP computational ops. Operand banks come from the opcode table; rs2/rs3
  // are always FP when present. Accumulating ops (vfmac, vfdotpex, fmacex,
  // vfcpka) read rd; since no FP compute op that *sets fflags* is ever
  // deleted, conservatively treating rd as a source for all non-pure FP ops
  // is sound and costs no DCE precision.
  m.understood = true;
  m.def = isa::rd_is_int(op) ? (in.rd != 0 ? xr(in.rd) : kNone) : fr(in.rd);
  const int src1 = isa::rs1_is_int(op) ? xr(in.rs1) : fr(in.rs1);
  switch (lay) {
    case Lay::FpRrm:
    case Lay::FpR2:
    case Lay::Vec:
      m.uses[0] = src1;
      m.uses[1] = fr(in.rs2);
      break;
    case Lay::FpUnaryRm:
    case Lay::FpUnary:
    case Lay::VecUnary:
      m.uses[0] = src1;
      break;
    case Lay::FpR4:
      m.uses[0] = src1;
      m.uses[1] = fr(in.rs2);
      m.uses[2] = fr(in.rs3);
      break;
    default:
      m.understood = false;
      return m;
  }
  switch (c) {
    case Cls::FpSgnj:
    case Cls::FpMvToX:
    case Cls::FpMvFromX:
    case Cls::FpClass:
      m.deletable = true;  // bit moves: no fflags
      break;
    default:
      // May set fflags (architectural): never deleted, and rd is
      // conservatively also a source (covers the accumulating ops).
      if (m.def != kNone) m.uses[3] = m.def;
      break;
  }
  return m;
}

/// Bit-exact register copy matching an FP load width (NaN-boxing behaves
/// identically: fsgnj of a register against itself rewrites the low `width`
/// bytes and re-boxes exactly as the reload would).
Op sgnj_for_width(int width) {
  switch (width) {
    case 4: return Op::FSGNJ_S;
    case 2: return Op::FSGNJ_H;
    default: return Op::FSGNJ_B;
  }
}

struct Block {
  std::size_t begin = 0, end = 0;  // [begin, end) instruction indices
};

}  // namespace

GlueStats dead_glue_elim(
    asmb::Program& prog,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& inner_ranges,
    std::vector<int>* mem_array_io, bool regs_dead_at_exit) {
  GlueStats gs;
  auto& text = prog.text;
  const std::size_t n = text.size();
  if (n == 0) return gs;
  const std::vector<int> no_prov;
  const std::vector<int>& mem_array =
      mem_array_io != nullptr ? *mem_array_io : no_prov;

  std::vector<InstModel> models(n);
  for (std::size_t i = 0; i < n; ++i) {
    models[i] = classify(text[i]);
    if (!models[i].understood) return gs;
  }

  // ---- control-flow structure ----------------------------------------------
  std::vector<char> leader(n + 1, 0);
  leader[0] = 1;
  leader[n] = 1;
  std::vector<std::int64_t> btarget(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (models[i].is_branch) {
      if (text[i].imm % 4 != 0) return gs;
      const std::int64_t t = static_cast<std::int64_t>(i) + text[i].imm / 4;
      if (t < 0 || t > static_cast<std::int64_t>(n)) return gs;
      btarget[i] = t;
      if (t < static_cast<std::int64_t>(n)) leader[static_cast<std::size_t>(t)] = 1;
      leader[i + 1] = 1;
    } else if (models[i].is_terminator) {
      leader[i + 1] = 1;
    }
  }
  std::vector<Block> blocks;
  std::vector<std::size_t> block_of(n, 0);
  for (std::size_t i = 0; i < n;) {
    std::size_t e = i + 1;
    while (e < n && !leader[e]) ++e;
    for (std::size_t k = i; k < e; ++k) block_of[k] = blocks.size();
    blocks.push_back({i, e});
    i = e;
  }

  std::vector<char> deleted(n, 0);

  // ---- load/store forwarding (per block) -----------------------------------
  // Table entry: memory [imm, imm+width) through base register `base` holds
  // the same bits as FP register `vreg`. `array` is the provenance id
  // (distinct ids never alias); -1 aliases with everything.
  struct Entry {
    std::uint8_t base;
    std::int32_t imm;
    int width;
    std::uint8_t vreg;
    int array;
  };
  std::vector<Entry> table;
  auto kill_base = [&](std::uint8_t base) {
    std::erase_if(table, [&](const Entry& e) { return e.base == base; });
  };
  auto kill_vreg = [&](std::uint8_t v) {
    std::erase_if(table, [&](const Entry& e) { return e.vreg == v; });
  };
  auto kill_def = [&](const InstModel& m) {
    if (m.def == kNone) return;
    if (m.def < 32) {
      kill_base(static_cast<std::uint8_t>(m.def));
    } else {
      kill_vreg(static_cast<std::uint8_t>(m.def - 32));
    }
  };

  for (const Block& blk : blocks) {
    table.clear();
    for (std::size_t i = blk.begin; i < blk.end; ++i) {
      Inst& in = text[i];
      const InstModel m = models[i];
      if (m.barrier) {
        table.clear();
        kill_def(m);
        continue;
      }
      const int arr = i < mem_array.size() ? mem_array[i] : -1;
      if (m.is_load) {
        const Entry* hit = nullptr;
        for (const Entry& e : table) {
          if (e.base == in.rs1 && e.imm == in.imm && e.width == m.width) {
            hit = &e;
            break;
          }
        }
        if (hit != nullptr && hit->vreg == in.rd) {
          // The destination already holds exactly these bits: drop the load.
          deleted[i] = 1;
          ++gs.loads_forwarded;
          ++gs.insts_deleted;
          continue;
        }
        const std::uint8_t rd = in.rd;
        const std::uint8_t rs1 = in.rs1;
        const std::int32_t imm = in.imm;
        if (hit != nullptr) {
          const std::uint8_t src = hit->vreg;
          in = Inst{.op = sgnj_for_width(m.width), .rd = rd, .rs1 = src,
                    .rs2 = src};
          models[i] = classify(in);
          // The rewrite leaves a register copy: no memory provenance.
          if (mem_array_io != nullptr && i < mem_array_io->size()) {
            (*mem_array_io)[i] = -1;
          }
          ++gs.loads_forwarded;
        }
        kill_vreg(rd);
        table.push_back({rs1, imm, m.width, rd, arr});
        continue;
      }
      if (m.is_store) {
        std::erase_if(table, [&](const Entry& e) {
          if (e.array >= 0 && arr >= 0 && e.array != arr) return false;
          if (e.base == in.rs1) {
            return in.imm < e.imm + e.width && e.imm < in.imm + m.width;
          }
          return true;  // unknown base relationship: assume aliased
        });
        table.push_back({in.rs1, in.imm, m.width, in.rs2, arr});
        continue;
      }
      kill_def(m);
    }
  }

  // ---- addi-chain merging (per block) --------------------------------------
  // `addi r, r, a` ... `addi r, r, b` with no intervening read or other
  // write of r folds into a single `addi r, r, a+b`. The intermediate value
  // is unobservable (nothing reads it and nothing in between can fault).
  for (const Block& blk : blocks) {
    std::array<std::int64_t, 32> pending;  // index of an open chain head
    pending.fill(-1);
    for (std::size_t i = blk.begin; i < blk.end; ++i) {
      if (deleted[i]) continue;
      Inst& in = text[i];
      const InstModel& m = models[i];
      const bool self_addi =
          in.op == Op::ADDI && in.rd == in.rs1 && in.rd != 0;
      if (self_addi) {
        const auto r = in.rd;
        const std::int64_t head = pending[r];
        if (head >= 0) {
          const std::int64_t sum =
              static_cast<std::int64_t>(text[static_cast<std::size_t>(head)].imm) +
              in.imm;
          if (sum >= -2048 && sum < 2048) {
            deleted[static_cast<std::size_t>(head)] = 1;
            in.imm = static_cast<std::int32_t>(sum);
            ++gs.addis_merged;
            ++gs.insts_deleted;
          }
        }
        pending[r] = static_cast<std::int64_t>(i);
        continue;
      }
      for (const int u : m.uses) {
        if (u >= 0 && u < 32) pending[static_cast<std::size_t>(u)] = -1;
      }
      if (m.def >= 0 && m.def < 32) {
        pending[static_cast<std::size_t>(m.def)] = -1;
      }
    }
  }

  // ---- liveness DCE ----------------------------------------------------------
  // Backward dataflow over int+fp registers; pure writes to registers that
  // are dead on every path are deleted. Registers are conservatively live at
  // program exit unless the caller says results live in memory only.
  std::bitset<64> exit_live;
  if (!regs_dead_at_exit) exit_live.set();
  const std::size_t nb = blocks.size();
  auto successors = [&](std::size_t b, std::size_t out[2]) -> int {
    const std::size_t last = blocks[b].end - 1;
    if (models[last].is_terminator) return 0;
    int cnt = 0;
    if (models[last].is_branch) {
      const std::int64_t t = btarget[last];
      if (t < static_cast<std::int64_t>(n)) {
        out[cnt++] = block_of[static_cast<std::size_t>(t)];
      }
      // branch to end-of-text falls out of the program: exit edge, which the
      // caller below treats as exit_live when no successor covers it.
    }
    if (blocks[b].end < n) out[cnt++] = block_of[blocks[b].end];
    return cnt;
  };
  auto block_exits = [&](std::size_t b) -> bool {
    const std::size_t last = blocks[b].end - 1;
    if (models[last].is_terminator) return true;
    if (blocks[b].end == n && !models[last].is_branch) return true;
    if (models[last].is_branch &&
        (btarget[last] == static_cast<std::int64_t>(n) || blocks[b].end == n)) {
      return true;
    }
    return false;
  };

  bool deleted_any = true;
  while (deleted_any) {
    deleted_any = false;
    std::vector<std::bitset<64>> live_in(nb), live_out(nb);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = nb; b-- > 0;) {
        std::bitset<64> out;
        std::size_t succ[2];
        const int cnt = successors(b, succ);
        for (int s = 0; s < cnt; ++s) out |= live_in[succ[s]];
        if (block_exits(b)) out |= exit_live;
        live_out[b] = out;
        std::bitset<64> cur = out;
        for (std::size_t i = blocks[b].end; i-- > blocks[b].begin;) {
          if (deleted[i]) continue;
          const InstModel& m = models[i];
          if (m.def != kNone) cur.reset(static_cast<std::size_t>(m.def));
          for (const int u : m.uses) {
            if (u != kNone) cur.set(static_cast<std::size_t>(u));
          }
        }
        if (cur != live_in[b]) {
          live_in[b] = cur;
          changed = true;
        }
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      std::bitset<64> cur = live_out[b];
      for (std::size_t i = blocks[b].end; i-- > blocks[b].begin;) {
        if (deleted[i]) continue;
        const InstModel& m = models[i];
        const bool dead_def =
            m.def != kNone && !cur.test(static_cast<std::size_t>(m.def));
        const bool no_effect = m.def == kNone && !m.is_store && !m.is_branch &&
                               !m.is_terminator && !m.barrier;
        if (m.deletable && (dead_def || no_effect)) {
          deleted[i] = 1;
          ++gs.insts_deleted;
          deleted_any = true;
          continue;
        }
        if (m.def != kNone) cur.reset(static_cast<std::size_t>(m.def));
        for (const int u : m.uses) {
          if (u != kNone) cur.set(static_cast<std::size_t>(u));
        }
      }
    }
  }

  if (!gs.any()) return gs;

  // ---- compaction with branch retargeting ------------------------------------
  // new_index[i] = compacted index of i when kept, else of the next kept
  // instruction (a branch to a deleted instruction lands on the next one,
  // which is exactly the semantics of skipping a no-effect instruction).
  std::vector<std::uint32_t> new_index(n + 1);
  std::uint32_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    new_index[i] = k;
    if (!deleted[i]) ++k;
  }
  new_index[n] = k;
  for (std::size_t i = 0; i < n; ++i) {
    if (deleted[i] || !models[i].is_branch) continue;
    const auto t = static_cast<std::size_t>(btarget[i]);
    text[i].imm =
        (static_cast<std::int32_t>(new_index[t]) -
         static_cast<std::int32_t>(new_index[i])) *
        4;
  }
  auto remap_addr = [&](std::uint32_t addr) {
    if (addr < prog.text_base) return prog.text_base;
    std::size_t idx = (addr - prog.text_base) / 4;
    if (idx > n) idx = n;
    return prog.text_base + new_index[idx] * 4;
  };
  for (auto& [b, e] : inner_ranges) {
    b = remap_addr(b);
    e = remap_addr(e);
  }
  // Remapping preserves order but can collapse a fully-deleted range to
  // empty or butt adjacent ranges into overlap; re-normalize so the sorted /
  // merged / non-empty contract (ir::Verifier) survives the pass.
  {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> norm;
    for (const auto& [b, e] : inner_ranges) {
      if (b >= e) continue;
      if (!norm.empty() && b < norm.back().second) {
        norm.back().second = std::max(norm.back().second, e);
      } else {
        norm.emplace_back(b, e);
      }
    }
    inner_ranges = std::move(norm);
  }
  std::vector<Inst> compact;
  compact.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (!deleted[i]) compact.push_back(text[i]);
  }
  text = std::move(compact);
  if (mem_array_io != nullptr && mem_array_io->size() == n) {
    std::vector<int> prov_compact;
    prov_compact.reserve(k);
    for (std::size_t i = 0; i < n; ++i) {
      if (!deleted[i]) prov_compact.push_back((*mem_array_io)[i]);
    }
    *mem_array_io = std::move(prov_compact);
  }
  prog.text_words.clear();
  prog.text_words.reserve(text.size());
  for (const Inst& i : text) prog.text_words.push_back(isa::encode(i));
  return gs;
}

}  // namespace sfrv::ir
