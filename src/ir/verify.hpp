// Static verifier for lowered kernels: checks every invariant the
// post-lowering pipeline (lower -> unroll -> strength-reduction -> dead-glue
// elimination) is required to preserve, so a violation is caught at the pass
// that introduced it instead of surfacing later as an engine divergence.
//
// Checked invariants (catalogued in docs/verification.md):
//  * operand validity against the ISA opcode tables: register indices,
//    rounding modes, immediate ranges, and the "unused fields are zero"
//    round-trip contract (encode(inst) must equal text_words[i] and decode
//    back to the identical Inst);
//  * branch/jal targets in-bounds and instruction-aligned;
//  * def-before-use over the int and fp register files: a loop-aware
//    must-be-defined dataflow (intersection over predecessors) with the
//    entry-live registers (x0, sp, plus caller whitelist) seeded;
//  * the VL discipline: every VL-governed packed memop (vflb/vflh/vfsb/vfsh)
//    is dominated by a SETVL on every path from entry;
//  * inner_ranges sorted, merged, non-empty, 4-aligned, and inside the text
//    segment;
//  * mem_array provenance sized to the text with ids inside the kernel's
//    memory-object universe, and only on memory-touching instructions.
//
// The verifier is read-only and engine-independent; ir::lower() runs it
// after lowering and again after the dead-glue pass when verification is
// enabled (util/verify.hpp), bisecting the optimizer configuration to name
// the exact pass that introduced a violation.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/lower.hpp"
#include "isa/isa.hpp"
#include "util/verify.hpp"

namespace sfrv::ir {

class Verifier {
 public:
  /// `cfg` bounds the op inventory: an instruction outside the configuration
  /// is a diagnostic (the kernel compilers only emit implemented ops).
  explicit Verifier(isa::IsaConfig cfg = isa::IsaConfig::full());

  /// Mark an extra integer register as defined at program entry (x0 and sp
  /// always are; lowered kernels define everything else before use).
  void add_entry_live(std::uint8_t xreg);

  /// Run every check; an empty result means the kernel is well-formed. The
  /// diagnostics carry the text index and disassembly but no pass name —
  /// the hook that knows which stage produced `lk` stamps it (VerifyError).
  [[nodiscard]] std::vector<verify::Diag> check(const LoweredKernel& lk) const;

 private:
  isa::IsaConfig cfg_;
  std::uint64_t entry_live_x_;  ///< bit r: integer register r defined at entry
};

/// Convenience hook: check `lk` and throw verify::VerifyError attributed to
/// `pass` when any diagnostic fires.
void verify_or_throw(const LoweredKernel& lk, std::string_view pass,
                     const isa::IsaConfig& cfg = isa::IsaConfig::full());

}  // namespace sfrv::ir
