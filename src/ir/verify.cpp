#include "ir/verify.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>

#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/instruction.hpp"
#include "isa/opcodes.hpp"

namespace sfrv::ir {

namespace {

using isa::Cls;
using isa::Inst;
using isa::Lay;
using isa::Op;
using verify::Diag;

std::string disasm_at(const Inst& in, std::size_t i, std::uint32_t text_base) {
  // A corrupted register field would index past the 32-entry name tables;
  // fall back to the bare mnemonic for unprintable instructions.
  if (in.rd >= 32 || in.rs1 >= 32 || in.rs2 >= 32 || in.rs3 >= 32) {
    return std::string(isa::mnemonic(in.op)) + " <register field out of range>";
  }
  return isa::disassemble(in, text_base + 4 * static_cast<std::uint32_t>(i));
}

// ---- per-instruction operand/register model ---------------------------------

/// Which Inst fields are operands of the instruction's layout. Non-operand
/// fields must be zero (the encode/decode round-trip contract of
/// isa/instruction.hpp), operand register fields must index the 32-entry
/// files, and the rm operand must be a valid static mode or DYN.
struct FieldSpec {
  bool rd = false, rs1 = false, rs2 = false, rs3 = false, rm = false;
};

FieldSpec field_spec(Lay lay) {
  FieldSpec f;
  switch (lay) {
    case Lay::U:
    case Lay::J:
      f.rd = true;
      break;
    case Lay::Iimm:
    case Lay::Shamt:
      f.rd = f.rs1 = true;
      break;
    case Lay::Bimm:
    case Lay::Simm:
      f.rs1 = f.rs2 = true;
      break;
    case Lay::R:
    case Lay::FpR2:
    case Lay::Vec:
      f.rd = f.rs1 = f.rs2 = true;
      break;
    case Lay::FullWord:
      break;
    case Lay::Csr:
      f.rd = f.rs1 = true;  // rs1 may hold a zimm; still a 5-bit field
      break;
    case Lay::FpRrm:
      f.rd = f.rs1 = f.rs2 = f.rm = true;
      break;
    case Lay::FpR4:
      f.rd = f.rs1 = f.rs2 = f.rs3 = f.rm = true;
      break;
    case Lay::FpUnaryRm:
      f.rd = f.rs1 = f.rm = true;
      break;
    case Lay::FpUnary:
    case Lay::VecUnary:
      f.rd = f.rs1 = true;
      break;
  }
  return f;
}

/// [lo, hi] immediate bounds per layout; alignment handled separately.
bool imm_in_range(Lay lay, std::int32_t imm) {
  switch (lay) {
    case Lay::U: return (imm & 0xfff) == 0;
    case Lay::J: return imm >= -(1 << 20) && imm < (1 << 20) && imm % 2 == 0;
    case Lay::Iimm:
    case Lay::Simm: return imm >= -2048 && imm <= 2047;
    case Lay::Bimm: return imm >= -4096 && imm <= 4094 && imm % 2 == 0;
    case Lay::Shamt: return imm >= 0 && imm <= 31;
    case Lay::Csr: return imm >= 0 && imm <= 4095;
    case Lay::R:
    case Lay::FullWord:
    case Lay::FpRrm:
    case Lay::FpR2:
    case Lay::FpR4:
    case Lay::FpUnaryRm:
    case Lay::FpUnary:
    case Lay::Vec:
    case Lay::VecUnary: return imm == 0;
  }
  return false;
}

/// Dataflow facts per instruction. Registers are numbered 0-31 integer,
/// 32-63 FP; bit 64 is the "a SETVL has executed" fact for the VL
/// discipline. The model is *must*-style: `uses` lists registers whose
/// values the instruction observably reads, so only genuinely-accumulating
/// ops count rd as a source (a VL-governed load's tail merge is not
/// observable through VL-governed stores and is deliberately not modeled —
/// see docs/verification.md).
struct Flow {
  std::uint64_t defs = 0;  ///< register bits defined (bit 64 excluded)
  std::uint64_t uses = 0;  ///< register bits read
  bool sets_vl = false;    ///< SETVL: establishes the VL fact
  bool needs_vl = false;   ///< VL-governed packed memop: requires the fact
};

constexpr std::uint64_t xbit(unsigned r) { return 1ull << r; }
constexpr std::uint64_t fbit(unsigned r) { return 1ull << (32 + r); }

/// Does the op read its destination register (accumulate / partial write)?
bool reads_rd(Op op) {
  switch (isa::op_class(op)) {
    case Cls::FpDotp:
    case Cls::FpMacEx:
    case Cls::FpDotpEx:
    case Cls::FpCpk:  // cast-and-pack writes one lane pair, preserves rest
      return true;
    case Cls::FpFma:
      return isa::is_vector(op);  // vfmac accumulates in rd; scalar FMA: rs3
    default:
      return false;
  }
}

Flow flow_model(const Inst& in) {
  Flow fl;
  const Op op = in.op;
  const Lay lay = isa::layout(op);
  const auto def_x = [&](unsigned r) {
    if (r != 0) fl.defs |= xbit(r);
  };
  switch (op) {
    case Op::SETVL:
      fl.sets_vl = true;
      def_x(in.rd);
      fl.uses |= xbit(in.rs1);
      return fl;
    case Op::VFLB:
    case Op::VFLH:
      fl.needs_vl = true;
      fl.defs |= fbit(in.rd);
      fl.uses |= xbit(in.rs1);
      return fl;
    case Op::VFSB:
    case Op::VFSH:
      fl.needs_vl = true;
      fl.uses |= xbit(in.rs1) | fbit(in.rs2);
      return fl;
    default:
      break;
  }
  switch (lay) {
    case Lay::U:
    case Lay::J:
      def_x(in.rd);
      return fl;
    case Lay::Iimm:  // int ALU, loads (incl. FP), jalr
      if (isa::rd_is_int(op)) {
        def_x(in.rd);
      } else {
        fl.defs |= fbit(in.rd);
      }
      fl.uses |= xbit(in.rs1);
      return fl;
    case Lay::Shamt:
      def_x(in.rd);
      fl.uses |= xbit(in.rs1);
      return fl;
    case Lay::R:
      def_x(in.rd);
      fl.uses |= xbit(in.rs1) | xbit(in.rs2);
      return fl;
    case Lay::Bimm:
      fl.uses |= xbit(in.rs1) | xbit(in.rs2);
      return fl;
    case Lay::Simm:  // int and FP stores
      fl.uses |= xbit(in.rs1);
      fl.uses |= isa::op_class(op) == Cls::FpStore ? fbit(in.rs2)
                                                   : xbit(in.rs2);
      return fl;
    case Lay::FullWord:
      return fl;
    case Lay::Csr:
      def_x(in.rd);
      // The register-source forms read rs1; the *I forms carry a zimm there.
      if (op == Op::CSRRW || op == Op::CSRRS || op == Op::CSRRC) {
        fl.uses |= xbit(in.rs1);
      }
      return fl;
    case Lay::FpRrm:
    case Lay::FpR2:
    case Lay::Vec:
      if (isa::rd_is_int(op)) {
        def_x(in.rd);
      } else {
        fl.defs |= fbit(in.rd);
        if (reads_rd(op)) fl.uses |= fbit(in.rd);
      }
      fl.uses |= isa::rs1_is_int(op) ? xbit(in.rs1) : fbit(in.rs1);
      fl.uses |= fbit(in.rs2);
      return fl;
    case Lay::FpR4:
      fl.defs |= fbit(in.rd);
      fl.uses |= fbit(in.rs1) | fbit(in.rs2) | fbit(in.rs3);
      return fl;
    case Lay::FpUnaryRm:
    case Lay::FpUnary:
    case Lay::VecUnary:
      if (isa::rd_is_int(op)) {
        def_x(in.rd);
      } else {
        fl.defs |= fbit(in.rd);
        if (reads_rd(op)) fl.uses |= fbit(in.rd);
      }
      fl.uses |= isa::rs1_is_int(op) ? xbit(in.rs1) : fbit(in.rs1);
      return fl;
  }
  return fl;
}

std::string reg_list(std::uint64_t bits) {
  std::string s;
  for (unsigned r = 0; r < 64; ++r) {
    if ((bits & (1ull << r)) == 0) continue;
    if (!s.empty()) s += ", ";
    s += r < 32 ? std::string(isa::xreg_name(r))
                : std::string(isa::freg_name(r - 32));
  }
  return s;
}

}  // namespace

Verifier::Verifier(isa::IsaConfig cfg)
    : cfg_(cfg), entry_live_x_(xbit(0) | xbit(2)) {}  // x0, sp

void Verifier::add_entry_live(std::uint8_t xreg) {
  entry_live_x_ |= xbit(xreg & 31);
}

std::vector<Diag> Verifier::check(const LoweredKernel& lk) const {
  std::vector<Diag> diags;
  const auto& prog = lk.program;
  const auto& text = prog.text;
  const std::size_t n = text.size();
  const auto diag = [&](std::int64_t index, std::string msg) {
    diags.push_back(Diag{.pass = {}, .index = index, .message = std::move(msg)});
  };
  const auto inst_diag = [&](std::size_t i, const std::string& msg) {
    diag(static_cast<std::int64_t>(i),
         msg + ": " + disasm_at(text[i], i, prog.text_base));
  };

  try {
    validate(lk.opt);
  } catch (const std::exception& e) {
    diag(-1, std::string("invalid OptConfig provenance: ") + e.what());
  }

  // ---- operand validity and encoding round-trip -----------------------------
  if (prog.text_words.size() != n) {
    diag(-1, "text_words/text size mismatch: " +
                 std::to_string(prog.text_words.size()) + " words for " +
                 std::to_string(n) + " instructions");
  }
  std::vector<char> malformed(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Inst& in = text[i];
    const Lay lay = isa::layout(in.op);
    const FieldSpec fs = field_spec(lay);
    bool ok = true;
    const auto field_err = [&](const std::string& msg) {
      inst_diag(i, msg);
      ok = false;
    };
    if (!cfg_.supports(in.op)) {
      field_err("op not implemented by the ISA configuration");
    }
    const auto check_reg = [&](bool is_operand, std::uint8_t v,
                               const char* name) {
      if (is_operand && v >= 32) {
        field_err(std::string(name) + " register index " + std::to_string(v) +
                  " out of range");
      } else if (!is_operand && v != 0) {
        field_err("unused field " + std::string(name) + " is " +
                  std::to_string(v) + " (must be zero to round-trip)");
      }
    };
    check_reg(fs.rd, in.rd, "rd");
    check_reg(fs.rs1, in.rs1, "rs1");
    check_reg(fs.rs2, in.rs2, "rs2");
    check_reg(fs.rs3, in.rs3, "rs3");
    if (fs.rm) {
      if (in.rm > 4 && in.rm != isa::kRmDyn) {
        field_err("reserved rounding mode " + std::to_string(in.rm));
      }
    } else if (in.rm != 0) {
      field_err("unused field rm is " + std::to_string(in.rm) +
                " (must be zero to round-trip)");
    }
    if (!imm_in_range(lay, in.imm)) {
      field_err("immediate " + std::to_string(in.imm) +
                " out of range for the op's layout");
    }
    if (!ok) {
      malformed[i] = 1;
      continue;  // encode() asserts on out-of-range fields
    }
    const std::uint32_t w = isa::encode(in);
    if (i < prog.text_words.size() && w != prog.text_words[i]) {
      inst_diag(i, "text_words out of sync with text (a pass mutated "
                   "instructions without re-encoding)");
    }
    const auto back = isa::decode(w);
    if (!back || back->op != in.op || back->rd != in.rd ||
        back->rs1 != in.rs1 || back->rs2 != in.rs2 || back->rs3 != in.rs3 ||
        back->rm != in.rm || back->imm != in.imm) {
      inst_diag(i, "encode/decode round-trip changed the instruction");
    }
  }

  // ---- control flow: targets in-bounds and aligned --------------------------
  // successor lists drive the dataflow below; malformed control flow keeps a
  // conservative fall-through edge so one bad branch yields one diagnostic.
  for (std::size_t i = 0; i < n; ++i) {
    const Inst& in = text[i];
    const Cls c = isa::op_class(in.op);
    if (c != Cls::Branch && in.op != Op::JAL) continue;
    if (in.imm % 4 != 0) {
      inst_diag(i, "control-flow target not instruction-aligned");
      continue;
    }
    const std::int64_t t = static_cast<std::int64_t>(i) + in.imm / 4;
    if (t < 0 || t >= static_cast<std::int64_t>(n)) {
      inst_diag(i, "control-flow target " + std::to_string(t) +
                       " outside the text segment [0, " + std::to_string(n) +
                       ")");
    }
  }

  // ---- def-before-use + VL domination (forward must-analysis) ---------------
  // defined-in[i] = intersection of defined-out over predecessors; a use of
  // a register outside defined-in means some path reaches the instruction
  // without a definition. Loops converge because the transfer function is
  // monotone over a finite lattice. Bit 64 carries "a SETVL has executed".
  if (n > 0 && std::none_of(malformed.begin(), malformed.end(),
                            [](char m) { return m != 0; })) {
    constexpr std::uint64_t kVlBit = 0;  // tracked in a parallel bool
    (void)kVlBit;
    struct State {
      std::uint64_t regs;
      bool vl;
    };
    const State top{~0ull, true};
    std::vector<Flow> flows(n);
    for (std::size_t i = 0; i < n; ++i) flows[i] = flow_model(text[i]);

    // Successor lists. Terminators (ebreak/ecall) and jalr (dynamic target)
    // end a path; branches have two successors; jal one.
    const auto successors = [&](std::size_t i, std::size_t out[2]) -> int {
      const Inst& in = text[i];
      if (in.op == Op::EBREAK || in.op == Op::ECALL || in.op == Op::JALR) {
        return 0;
      }
      const bool is_jal = in.op == Op::JAL;
      const bool is_branch = isa::op_class(in.op) == Cls::Branch;
      int cnt = 0;
      if ((is_jal || is_branch) && in.imm % 4 == 0) {
        const std::int64_t t = static_cast<std::int64_t>(i) + in.imm / 4;
        if (t >= 0 && t < static_cast<std::int64_t>(n)) {
          out[cnt++] = static_cast<std::size_t>(t);
        }
      }
      if (!is_jal && i + 1 < n) out[cnt++] = i + 1;
      return cnt;
    };

    std::vector<State> in_state(n, top);
    // x0 reads as zero whether or not anything "defined" it.
    in_state[0] = State{entry_live_x_ | xbit(0), false};
    std::vector<char> queued(n, 0);
    std::deque<std::size_t> work;
    work.push_back(0);
    queued[0] = 1;
    while (!work.empty()) {
      const std::size_t i = work.front();
      work.pop_front();
      queued[i] = 0;
      const State out_state{(in_state[i].regs | flows[i].defs) | xbit(0),
                            in_state[i].vl || flows[i].sets_vl};
      std::size_t succ[2];
      const int cnt = successors(i, succ);
      for (int s = 0; s < cnt; ++s) {
        const std::size_t j = succ[s];
        const State met{in_state[j].regs & out_state.regs,
                        in_state[j].vl && out_state.vl};
        if (met.regs != in_state[j].regs || met.vl != in_state[j].vl) {
          in_state[j] = met;
          if (queued[j] == 0) {
            work.push_back(j);
            queued[j] = 1;
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (in_state[i].regs == top.regs && in_state[i].vl) continue;  // dead
      const std::uint64_t undef = flows[i].uses & ~in_state[i].regs;
      if (undef != 0) {
        inst_diag(i, "use of register(s) " + reg_list(undef) +
                         " with no definition on some path from entry");
      }
      if (flows[i].needs_vl && !in_state[i].vl) {
        inst_diag(i, "VL-governed vector memop not dominated by a setvl");
      }
    }
  }

  // ---- inner_ranges: sorted, merged, non-empty, aligned, in-text ------------
  const std::uint32_t text_lo = prog.text_base;
  const std::uint32_t text_hi =
      prog.text_base + 4 * static_cast<std::uint32_t>(n);
  std::uint32_t prev_end = 0;
  for (std::size_t k = 0; k < lk.inner_ranges.size(); ++k) {
    const auto [b, e] = lk.inner_ranges[k];
    const std::string where = "inner_ranges[" + std::to_string(k) + "]";
    if (b % 4 != 0 || e % 4 != 0) {
      diag(-1, where + " not 4-aligned");
    }
    if (b >= e) {
      diag(-1, where + " empty or inverted");
    }
    if (b < text_lo || e > text_hi) {
      diag(-1, where + " outside the text segment");
    }
    if (k > 0 && b < prev_end) {
      diag(-1, where + " overlaps or is unsorted against the previous range "
                       "(normalization requires sorted, merged ranges)");
    }
    prev_end = e;
  }

  // ---- mem_array provenance -------------------------------------------------
  if (!lk.mem_array.empty()) {
    if (lk.mem_array.size() != n) {
      diag(-1, "mem_array size " + std::to_string(lk.mem_array.size()) +
                   " does not match text size " + std::to_string(n));
    }
    // Valid ids: array indices plus one constant-pool region.
    const int max_id = static_cast<int>(lk.array_addr.size());
    for (std::size_t i = 0; i < lk.mem_array.size() && i < n; ++i) {
      const int id = lk.mem_array[i];
      if (id < -1 || id > max_id) {
        inst_diag(i, "mem_array provenance id " + std::to_string(id) +
                         " outside [-1, " + std::to_string(max_id) + "]");
        continue;
      }
      if (id >= 0) {
        switch (isa::op_class(text[i].op)) {
          case Cls::Load:
          case Cls::Store:
          case Cls::FpLoad:
          case Cls::FpStore:
            break;
          default:
            inst_diag(i, "mem_array provenance attached to a non-memory "
                         "instruction (compaction out of sync)");
            break;
        }
      }
    }
  }

  return diags;
}

void verify_or_throw(const LoweredKernel& lk, std::string_view pass,
                     const isa::IsaConfig& cfg) {
  auto diags = Verifier(cfg).check(lk);
  if (!diags.empty()) {
    throw verify::VerifyError(std::string(pass), std::move(diags));
  }
}

}  // namespace sfrv::ir
