// Loop-kernel intermediate representation.
//
// This is the "compiler support" substrate of the reproduction: the same
// kernel description is lowered three ways (scalar, GCC-like automatic
// vectorization, manual vectorization with Xfvec/Xfaux intrinsics), exactly
// the comparison the paper's Section IV/V draws.
//
// The IR is deliberately restricted to the affine loop nests the evaluation
// kernels need: perfectly or imperfectly nested counted loops, array accesses
// whose column index is `loopvar + constant`, per-variable element types with
// C-like implicit promotion, and reduction/elementwise statements.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ir/type.hpp"

namespace sfrv::ir {

/// Affine index: value = loop_var + offset (var = -1 means constant offset).
struct Index {
  int var = -1;
  int offset = 0;

  static Index constant(int c) { return {-1, c}; }
};

/// Reference to arrays[array] at [row][col]; 1-D arrays use row = constant 0.
struct ArrayRef {
  int array = -1;
  Index row = Index::constant(0);
  Index col;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Load, Var, Const, Add, Sub, Mul, Div };
  Kind kind;
  ArrayRef ref;       // Load
  int var = -1;       // Var (scalar variable id)
  double cval = 0;    // Const
  ExprPtr lhs, rhs;   // binary ops

  static ExprPtr load(ArrayRef r) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Load;
    e->ref = r;
    return e;
  }
  static ExprPtr variable(int v) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Var;
    e->var = v;
    return e;
  }
  static ExprPtr constant(double c) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Const;
    e->cval = c;
    return e;
  }
  static ExprPtr bin(Kind k, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
  }
  static ExprPtr add(ExprPtr l, ExprPtr r) { return bin(Kind::Add, std::move(l), std::move(r)); }
  static ExprPtr sub(ExprPtr l, ExprPtr r) { return bin(Kind::Sub, std::move(l), std::move(r)); }
  static ExprPtr mul(ExprPtr l, ExprPtr r) { return bin(Kind::Mul, std::move(l), std::move(r)); }
  static ExprPtr div(ExprPtr l, ExprPtr r) { return bin(Kind::Div, std::move(l), std::move(r)); }
};

struct Stmt {
  enum class Kind {
    StoreArray,    // dst[...] = value
    AccumArray,    // dst[...] += value
    AssignScalar,  // var = value
    AccumScalar,   // var += value
  };
  Kind kind;
  ArrayRef dst;      // array statements
  int dst_var = -1;  // scalar statements
  ExprPtr value;
};

struct Loop;
using Node = std::variant<Loop, Stmt>;

/// Loop upper bound: constant, or `loop_var + offset` (triangular nests).
struct Bound {
  int constant = 0;
  int var = -1;  // when >= 0: bound = var_value + offset
  int offset = 0;

  static Bound fixed(int n) { return {n, -1, 0}; }
  static Bound of_var(int v, int off) { return {0, v, off}; }
  [[nodiscard]] bool is_constant() const { return var < 0; }
};

struct Loop {
  int var = -1;  // loop variable id
  int lower = 0;
  Bound upper;
  std::vector<Node> body;
};

struct ArrayDecl {
  std::string name;
  ScalarType type = ScalarType::F32;
  int rows = 1;  // 1 for 1-D arrays
  int cols = 0;
  [[nodiscard]] int elems() const { return rows * cols; }
};

struct VarDecl {
  std::string name;
  ScalarType type = ScalarType::F32;
};

/// A complete kernel: declarations plus a top-level loop-nest forest.
struct Kernel {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<VarDecl> vars;
  std::vector<Node> body;
  int num_loop_vars = 0;

  int add_array(std::string n, ScalarType t, int rows, int cols) {
    arrays.push_back({std::move(n), t, rows, cols});
    return static_cast<int>(arrays.size()) - 1;
  }
  int add_var(std::string n, ScalarType t) {
    vars.push_back({std::move(n), t});
    return static_cast<int>(vars.size()) - 1;
  }
  int fresh_loop_var() { return num_loop_vars++; }

  [[nodiscard]] int array_index(std::string_view n) const {
    for (std::size_t i = 0; i < arrays.size(); ++i) {
      if (arrays[i].name == n) return static_cast<int>(i);
    }
    assert(false && "unknown array");
    return -1;
  }
};

// ---- small helpers used by the kernel builders -------------------------------

inline Stmt store(ArrayRef dst, ExprPtr v) {
  return {Stmt::Kind::StoreArray, dst, -1, std::move(v)};
}
inline Stmt accum(ArrayRef dst, ExprPtr v) {
  return {Stmt::Kind::AccumArray, dst, -1, std::move(v)};
}
inline Stmt assign_var(int var, ExprPtr v) {
  return {Stmt::Kind::AssignScalar, {}, var, std::move(v)};
}
inline Stmt accum_var(int var, ExprPtr v) {
  return {Stmt::Kind::AccumScalar, {}, var, std::move(v)};
}

}  // namespace sfrv::ir
