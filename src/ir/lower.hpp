// Lowering of kernel IR to smallFloat RISC-V programs.
//
// Three code generators, mirroring the paper's compiler story:
//  * Scalar      - optimized scalar code (pointer-incremented innermost
//                  loops, fused multiply-adds, LICM of invariant loads).
//  * AutoVec     - models the extended GCC auto-vectorizer: packed-SIMD main
//                  loops, but with the inefficiencies the paper reports --
//                  per-iteration indexed addressing instead of pointer
//                  bumping, runtime prologue guards and scalar epilogue loops
//                  for variable trip counts, and widening reductions done as
//                  unpack + fcvt + scalar fadd (Fig. 5 left).
//  * ManualVec   - intrinsics-quality code: pointer bumping, no guards when
//                  the trip count is statically divisible, and Xfaux
//                  expanding operations (vfdotpex/fmacex) for widening
//                  reductions (Fig. 5 right).
//  * ManualVecExs- ManualVec plus the ExSdotp unit: widening reductions whose
//                  accumulator is the one-step-wider format keep a *packed*
//                  wide accumulator in the loop (vfexsdotp: two chained wide
//                  FMAs per wide lane) and fold it with one horizontal sum in
//                  the epilogue. Accumulation order differs from ManualVec,
//                  so outputs are a distinct (pinned) measurement, not a
//                  bit-compatible re-lowering.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asmb/program.hpp"
#include "ir/kernel.hpp"
#include "ir/opt.hpp"

namespace sfrv::ir {

enum class CodegenMode { Scalar, AutoVec, ManualVec, ManualVecExs };

[[nodiscard]] constexpr std::string_view mode_name(CodegenMode m) {
  switch (m) {
    case CodegenMode::Scalar: return "scalar";
    case CodegenMode::AutoVec: return "auto-vec";
    case CodegenMode::ManualVec: return "manual-vec";
    case CodegenMode::ManualVecExs: return "manual-vec-exsdotp";
  }
  return "?";
}

/// Manual (intrinsics-style) generators: pointer bumping, Xfaux/ExSdotp
/// expanding operations. ManualVec and ManualVecExs differ only in how
/// widening reductions accumulate.
[[nodiscard]] constexpr bool is_manual_mode(CodegenMode m) {
  return m == CodegenMode::ManualVec || m == CodegenMode::ManualVecExs;
}

struct LoweredKernel {
  asmb::Program program;
  /// Absolute address of each array's storage.
  std::unordered_map<std::string, std::uint32_t> array_addr;
  /// Text ranges [begin, end) of innermost-loop code (for ideal-speedup
  /// attribution). Sorted, non-overlapping, and 4-aligned relative to the
  /// text base; unrolled bodies and their epilogue loops are tracked as one
  /// range, and the dead-glue pass remaps them through its compaction.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inner_ranges;
  /// The optimization pipeline this kernel was lowered under (provenance).
  OptConfig opt{};
  /// Outcome of the dead-glue pass (zeroes when it did not run).
  GlueStats glue{};
  /// Alias provenance, one entry per text instruction: the id of the memory
  /// object (array index, or arrays-count for the constant pool) a memory
  /// access touches, -1 for non-memory instructions or unknown provenance.
  /// Consumed by the dead-glue pass's alias rules (which compact it in sync
  /// with the text) and checked by ir::Verifier.
  std::vector<int> mem_array;
};

/// Lower `kernel` with the given mode. `array_init` provides initial contents
/// per array id (values are quantized to the array element type); missing or
/// empty entries are zero-initialized. `opt` selects the post-lowering loop
/// optimizer pipeline (ir/opt.hpp); every level produces bit-identical
/// outputs and fflags, only the glue instruction count and cycle totals
/// change. Defaults to O0 so direct callers (lowering-shape tests) are
/// environment-independent; the kernel runner layers SFRV_OPT on top.
[[nodiscard]] LoweredKernel lower(
    const Kernel& kernel, CodegenMode mode,
    const std::vector<std::vector<double>>& array_init,
    const OptConfig& opt = {});

}  // namespace sfrv::ir
