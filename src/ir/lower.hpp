// Lowering of kernel IR to smallFloat RISC-V programs.
//
// Three code generators, mirroring the paper's compiler story:
//  * Scalar      - optimized scalar code (pointer-incremented innermost
//                  loops, fused multiply-adds, LICM of invariant loads).
//  * AutoVec     - models the extended GCC auto-vectorizer: packed-SIMD main
//                  loops, but with the inefficiencies the paper reports --
//                  per-iteration indexed addressing instead of pointer
//                  bumping, runtime prologue guards and scalar epilogue loops
//                  for variable trip counts, and widening reductions done as
//                  unpack + fcvt + scalar fadd (Fig. 5 left).
//  * ManualVec   - intrinsics-quality code: pointer bumping, no guards when
//                  the trip count is statically divisible, and Xfaux
//                  expanding operations (vfdotpex/fmacex) for widening
//                  reductions (Fig. 5 right).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asmb/program.hpp"
#include "ir/kernel.hpp"

namespace sfrv::ir {

enum class CodegenMode { Scalar, AutoVec, ManualVec };

[[nodiscard]] constexpr std::string_view mode_name(CodegenMode m) {
  switch (m) {
    case CodegenMode::Scalar: return "scalar";
    case CodegenMode::AutoVec: return "auto-vec";
    case CodegenMode::ManualVec: return "manual-vec";
  }
  return "?";
}

struct LoweredKernel {
  asmb::Program program;
  /// Absolute address of each array's storage.
  std::unordered_map<std::string, std::uint32_t> array_addr;
  /// Text ranges [begin, end) of innermost-loop code (for ideal-speedup
  /// attribution).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inner_ranges;
};

/// Lower `kernel` with the given mode. `array_init` provides initial contents
/// per array id (values are quantized to the array element type); missing or
/// empty entries are zero-initialized.
[[nodiscard]] LoweredKernel lower(
    const Kernel& kernel, CodegenMode mode,
    const std::vector<std::vector<double>>& array_init);

}  // namespace sfrv::ir
