#include "isa/disasm.hpp"

#include <array>
#include <sstream>

namespace sfrv::isa {

namespace {

constexpr std::array<std::string_view, 32> kXNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::array<std::string_view, 32> kFNames = {
    "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

std::string_view rd_name(const Inst& i) {
  return rd_is_int(i.op) ? kXNames[i.rd] : kFNames[i.rd];
}
std::string_view rs1_name(const Inst& i) {
  return rs1_is_int(i.op) ? kXNames[i.rs1] : kFNames[i.rs1];
}
std::string_view rs2_name(const Inst& i) {
  // rs2 is an FP register for every FP-class op (including FP stores' data
  // operand); integer otherwise.
  return touches_fp_regs(i.op) ? kFNames[i.rs2] : kXNames[i.rs2];
}

std::string_view csr_name(std::int32_t addr) {
  switch (addr) {
    case 0x001: return "fflags";
    case 0x002: return "frm";
    case 0x003: return "fcsr";
    case 0xc00: return "cycle";
    case 0xc02: return "instret";
    default: return "";
  }
}

}  // namespace

std::string_view xreg_name(unsigned idx) { return kXNames[idx & 31]; }
std::string_view freg_name(unsigned idx) { return kFNames[idx & 31]; }

std::string disassemble(const Inst& i, std::uint32_t pc) {
  std::ostringstream os;
  os << mnemonic(i.op);
  auto sep = [&os, first = true]() mutable -> std::ostringstream& {
    os << (first ? " " : ", ");
    first = false;
    return os;
  };
  switch (layout(i.op)) {
    case Lay::U:
      sep() << rd_name(i);
      sep() << "0x" << std::hex << (static_cast<std::uint32_t>(i.imm) >> 12);
      break;
    case Lay::J:
      sep() << rd_name(i);
      sep() << "0x" << std::hex << pc + static_cast<std::uint32_t>(i.imm);
      break;
    case Lay::Iimm:
      if (op_class(i.op) == Cls::Load || op_class(i.op) == Cls::FpLoad) {
        sep() << rd_name(i);
        sep() << std::dec << i.imm << "(" << kXNames[i.rs1] << ")";
      } else {
        sep() << rd_name(i);
        sep() << rs1_name(i);
        sep() << std::dec << i.imm;
      }
      break;
    case Lay::Bimm:
      sep() << kXNames[i.rs1];
      sep() << kXNames[i.rs2];
      sep() << "0x" << std::hex << pc + static_cast<std::uint32_t>(i.imm);
      break;
    case Lay::Simm:
      sep() << rs2_name(i);
      sep() << std::dec << i.imm << "(" << kXNames[i.rs1] << ")";
      break;
    case Lay::Shamt:
      sep() << rd_name(i);
      sep() << rs1_name(i);
      sep() << std::dec << i.imm;
      break;
    case Lay::R:
    case Lay::FpR2:
    case Lay::FpRrm:
    case Lay::Vec:
      sep() << rd_name(i);
      sep() << rs1_name(i);
      sep() << rs2_name(i);
      break;
    case Lay::FpR4:
      sep() << rd_name(i);
      sep() << rs1_name(i);
      sep() << rs2_name(i);
      sep() << kFNames[i.rs3];
      break;
    case Lay::FpUnaryRm:
    case Lay::FpUnary:
    case Lay::VecUnary:
      sep() << rd_name(i);
      sep() << rs1_name(i);
      break;
    case Lay::FullWord:
      break;
    case Lay::Csr: {
      sep() << kXNames[i.rd];
      const auto name = csr_name(i.imm);
      if (!name.empty()) {
        sep() << name;
      } else {
        sep() << "0x" << std::hex << i.imm << std::dec;
      }
      if (i.op == Op::CSRRWI || i.op == Op::CSRRSI || i.op == Op::CSRRCI) {
        sep() << unsigned{i.rs1};
      } else {
        sep() << kXNames[i.rs1];
      }
      break;
    }
  }
  return std::move(os).str();
}

}  // namespace sfrv::isa
