// ISA configuration: enabled extensions and FLEN-dependent SIMD geometry.
#pragma once

#include <cstdint>
#include <initializer_list>

#include "isa/opcodes.hpp"
#include "softfloat/formats.hpp"

namespace sfrv::isa {

/// Width of a packed element of the given format, in bits.
[[nodiscard]] constexpr int element_width(fp::FpFormat f) {
  return fp::format_width(f);
}

/// Number of SIMD lanes for `fmt` with an FP register file of width `flen`
/// (paper Table II). Zero means "not a vector format at this FLEN" (the
/// element does not fit at least twice, or the scalar format itself does not
/// fit the register file).
[[nodiscard]] constexpr int vector_lanes(fp::FpFormat fmt, int flen) {
  const int w = element_width(fmt);
  if (w > flen) return 0;   // scalar format unsupported at this FLEN
  if (w == flen) return 0;  // fits exactly once: scalar only, no SIMD
  return flen / w;
}

/// Configuration of a hart: which extensions are implemented and the FP
/// register width. The paper's baseline is RV32IMFC + smallFloat extensions
/// with FLEN=32 (RVC omitted here: code-size only, no timing effect).
struct IsaConfig {
  std::uint16_t ext_mask = 0;
  int flen = 32;

  static constexpr std::uint16_t bit(Ext e) {
    return static_cast<std::uint16_t>(1u << static_cast<unsigned>(e));
  }

  constexpr IsaConfig() = default;
  constexpr IsaConfig(std::initializer_list<Ext> exts, int flen_bits)
      : flen(flen_bits) {
    for (Ext e : exts) ext_mask |= bit(e);
  }

  [[nodiscard]] constexpr bool has(Ext e) const {
    return (ext_mask & bit(e)) != 0;
  }

  /// Does this configuration implement the given instruction?
  /// Vector instructions additionally require a usable lane count.
  [[nodiscard]] bool supports(Op op) const {
    if (!has(extension(op))) return false;
    if (is_vector(op)) {
      if (!has(Ext::Xfvec)) return false;
      const OpFmt f = op_format(op);
      if (f == OpFmt::None) return false;
      if (vector_lanes(to_fp_format(f), flen) < 2) return false;
    }
    return true;
  }

  /// The paper's full configuration: RV32IMF + all smallFloat extensions,
  /// plus this implementation's posit counterpart.
  [[nodiscard]] static constexpr IsaConfig full(int flen_bits = 32) {
    return IsaConfig({Ext::I, Ext::M, Ext::Zicsr, Ext::F, Ext::Xf16,
                      Ext::Xf16alt, Ext::Xf8, Ext::Xfvec, Ext::Xfaux,
                      Ext::Xposit},
                     flen_bits);
  }

  /// Plain RV32IMF baseline (no smallFloat support).
  [[nodiscard]] static constexpr IsaConfig rv32imf() {
    return IsaConfig({Ext::I, Ext::M, Ext::Zicsr, Ext::F}, 32);
  }
};

}  // namespace sfrv::isa
