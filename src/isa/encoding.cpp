#include "isa/encoding.hpp"

#include <array>
#include <cassert>
#include <vector>

namespace sfrv::isa {

namespace {

struct RawEnc {
  std::int32_t opc;
  std::int32_t f3;
  std::int32_t f7;
  std::int32_t sub;
};

constexpr std::array<RawEnc, kNumOps> kRawEnc = {{
#define SFRV_ENC(NAME, MNEM, EXT, CLS, FMT, VEC, LAY, OPC, F3, F7, SUB) \
  RawEnc{OPC, F3, F7, SUB},
    SFRV_FOREACH_OP(SFRV_ENC)
#undef SFRV_ENC
}};

constexpr std::uint32_t kOpcodeMask = 0x0000007f;
constexpr std::uint32_t kF3Mask = 0x00007000;
constexpr std::uint32_t kF7Mask = 0xfe000000;
constexpr std::uint32_t kRs2Mask = 0x01f00000;
constexpr std::uint32_t kFmt2Mask = 0x06000000;  // funct2 of the R4 layout

EncPattern build_pattern(Op op) {
  const RawEnc& r = kRawEnc[static_cast<std::size_t>(op)];
  const Lay lay = layout(op);
  std::uint32_t match = static_cast<std::uint32_t>(r.opc);
  std::uint32_t mask = kOpcodeMask;
  auto add_f3 = [&] {
    match |= static_cast<std::uint32_t>(r.f3) << 12;
    mask |= kF3Mask;
  };
  auto add_f7 = [&] {
    match |= static_cast<std::uint32_t>(r.f7) << 25;
    mask |= kF7Mask;
  };
  auto add_sub = [&] {
    match |= static_cast<std::uint32_t>(r.sub) << 20;
    mask |= kRs2Mask;
  };
  switch (lay) {
    case Lay::U:
    case Lay::J:
      break;
    case Lay::Iimm:
    case Lay::Bimm:
    case Lay::Simm:
    case Lay::Csr:
      add_f3();
      break;
    case Lay::Shamt:
    case Lay::R:
      add_f3();
      add_f7();
      break;
    case Lay::FullWord:
      add_f3();
      if (r.opc == 0x73) {  // ecall/ebreak: the entire word is fixed
        match |= static_cast<std::uint32_t>(r.sub) << 20;
        mask = 0xffffffff;
      }
      break;
    case Lay::FpRrm:
      add_f7();
      break;
    case Lay::FpR2:
      add_f3();
      add_f7();
      break;
    case Lay::FpR4:
      // f7 column carries the 2-bit format field at funct2 ([26:25]).
      match |= static_cast<std::uint32_t>(r.f7) << 25;
      mask |= kFmt2Mask;
      break;
    case Lay::FpUnaryRm:
      add_f7();
      add_sub();
      break;
    case Lay::FpUnary:
      add_f3();
      add_f7();
      add_sub();
      break;
    case Lay::Vec:
      add_f3();
      add_f7();
      break;
    case Lay::VecUnary:
      add_f3();
      add_f7();
      add_sub();
      break;
  }
  return {match, mask};
}

struct Tables {
  std::array<EncPattern, kNumOps> patterns;
  // Decode acceleration: candidate ops bucketed by major opcode.
  std::array<std::vector<Op>, 128> by_opcode;

  Tables() {
    for (std::size_t i = 0; i < kNumOps; ++i) {
      const Op op = static_cast<Op>(i);
      patterns[i] = build_pattern(op);
      by_opcode[patterns[i].match & kOpcodeMask].push_back(op);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

// Immediate scatter/gather for the RISC-V B/J formats.

std::uint32_t enc_imm_b(std::int32_t imm) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 12) & 1) << 31 | ((u >> 5) & 0x3f) << 25 | ((u >> 1) & 0xf) << 8 |
         ((u >> 11) & 1) << 7;
}

std::int32_t dec_imm_b(std::uint32_t w) {
  std::uint32_t u = ((w >> 31) & 1) << 12 | ((w >> 7) & 1) << 11 |
                    ((w >> 25) & 0x3f) << 5 | ((w >> 8) & 0xf) << 1;
  if (u & 0x1000) u |= 0xffffe000;
  return static_cast<std::int32_t>(u);
}

std::uint32_t enc_imm_j(std::int32_t imm) {
  const auto u = static_cast<std::uint32_t>(imm);
  return ((u >> 20) & 1) << 31 | ((u >> 1) & 0x3ff) << 21 | ((u >> 11) & 1) << 20 |
         ((u >> 12) & 0xff) << 12;
}

std::int32_t dec_imm_j(std::uint32_t w) {
  std::uint32_t u = ((w >> 31) & 1) << 20 | ((w >> 12) & 0xff) << 12 |
                    ((w >> 20) & 1) << 11 | ((w >> 21) & 0x3ff) << 1;
  if (u & 0x100000) u |= 0xffe00000;
  return static_cast<std::int32_t>(u);
}

std::int32_t dec_imm_i(std::uint32_t w) {
  return static_cast<std::int32_t>(w) >> 20;
}

std::int32_t dec_imm_s(std::uint32_t w) {
  const std::int32_t hi = static_cast<std::int32_t>(w) >> 25;
  return (hi << 5) | static_cast<std::int32_t>((w >> 7) & 0x1f);
}

}  // namespace

EncPattern encoding_pattern(Op op) {
  return tables().patterns[static_cast<std::size_t>(op)];
}

std::uint32_t encode(const Inst& i) {
  assert(i.rd < 32 && i.rs1 < 32 && i.rs2 < 32 && i.rs3 < 32 && i.rm < 8);
  std::uint32_t w = encoding_pattern(i.op).match;
  const auto rd = static_cast<std::uint32_t>(i.rd) << 7;
  const auto rs1 = static_cast<std::uint32_t>(i.rs1) << 15;
  const auto rs2 = static_cast<std::uint32_t>(i.rs2) << 20;
  const auto rs3 = static_cast<std::uint32_t>(i.rs3) << 27;
  const auto rm = static_cast<std::uint32_t>(i.rm) << 12;
  const auto uimm = static_cast<std::uint32_t>(i.imm);
  switch (layout(i.op)) {
    case Lay::U:
      w |= rd | (uimm & 0xfffff000);
      break;
    case Lay::J:
      w |= rd | enc_imm_j(i.imm);
      break;
    case Lay::Iimm:
      w |= rd | rs1 | (uimm & 0xfff) << 20;
      break;
    case Lay::Bimm:
      w |= rs1 | rs2 | enc_imm_b(i.imm);
      break;
    case Lay::Simm:
      w |= rs1 | rs2 | (uimm & 0x1f) << 7 | ((uimm >> 5) & 0x7f) << 25;
      break;
    case Lay::Shamt:
      w |= rd | rs1 | (uimm & 0x1f) << 20;
      break;
    case Lay::R:
    case Lay::FpR2:
    case Lay::Vec:
      w |= rd | rs1 | rs2;
      break;
    case Lay::FullWord:
      break;
    case Lay::Csr:
      w |= rd | rs1 | (uimm & 0xfff) << 20;
      break;
    case Lay::FpRrm:
      w |= rd | rs1 | rs2 | rm;
      break;
    case Lay::FpR4:
      w |= rd | rs1 | rs2 | rs3 | rm;
      break;
    case Lay::FpUnaryRm:
      w |= rd | rs1 | rm;
      break;
    case Lay::FpUnary:
    case Lay::VecUnary:
      w |= rd | rs1;
      break;
  }
  return w;
}

std::optional<Inst> decode(std::uint32_t w) {
  const auto& t = tables();
  for (Op op : t.by_opcode[w & kOpcodeMask]) {
    const EncPattern& p = t.patterns[static_cast<std::size_t>(op)];
    if ((w & p.mask) != p.match) continue;
    Inst i;
    i.op = op;
    const auto rd = static_cast<std::uint8_t>((w >> 7) & 0x1f);
    const auto rs1 = static_cast<std::uint8_t>((w >> 15) & 0x1f);
    const auto rs2 = static_cast<std::uint8_t>((w >> 20) & 0x1f);
    const auto rs3 = static_cast<std::uint8_t>((w >> 27) & 0x1f);
    const auto rm = static_cast<std::uint8_t>((w >> 12) & 0x7);
    switch (layout(op)) {
      case Lay::U:
        i.rd = rd;
        i.imm = static_cast<std::int32_t>(w & 0xfffff000);
        break;
      case Lay::J:
        i.rd = rd;
        i.imm = dec_imm_j(w);
        break;
      case Lay::Iimm:
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = dec_imm_i(w);
        break;
      case Lay::Bimm:
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.imm = dec_imm_b(w);
        break;
      case Lay::Simm:
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.imm = dec_imm_s(w);
        break;
      case Lay::Shamt:
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = static_cast<std::int32_t>((w >> 20) & 0x1f);
        break;
      case Lay::R:
      case Lay::FpR2:
      case Lay::Vec:
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        break;
      case Lay::FullWord:
        break;
      case Lay::Csr:
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = static_cast<std::int32_t>((w >> 20) & 0xfff);
        break;
      case Lay::FpRrm:
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.rm = rm;
        break;
      case Lay::FpR4:
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.rs3 = rs3;
        i.rm = rm;
        break;
      case Lay::FpUnaryRm:
        i.rd = rd;
        i.rs1 = rs1;
        i.rm = rm;
        break;
      case Lay::FpUnary:
      case Lay::VecUnary:
        i.rd = rd;
        i.rs1 = rs1;
        break;
    }
    return i;
  }
  return std::nullopt;
}

}  // namespace sfrv::isa
