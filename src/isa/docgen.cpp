#include "isa/docgen.hpp"

#include <array>
#include <cstdio>
#include <vector>

#include "isa/encoding.hpp"
#include "isa/isa.hpp"
#include "sim/timing.hpp"

namespace sfrv::isa {

namespace {

/// Operand sketch of an encoding layout, in assembler order.
std::string_view layout_operands(Lay lay) {
  switch (lay) {
    case Lay::U: return "rd, imm20";
    case Lay::J: return "rd, offset21";
    case Lay::Iimm: return "rd, rs1, imm12";
    case Lay::Bimm: return "rs1, rs2, offset13";
    case Lay::Simm: return "rs2, imm12(rs1)";
    case Lay::Shamt: return "rd, rs1, shamt5";
    case Lay::R: return "rd, rs1, rs2";
    case Lay::FullWord: return "—";
    case Lay::Csr: return "rd, csr12, rs1/zimm";
    case Lay::FpRrm: return "rd, rs1, rs2 [, rm]";
    case Lay::FpR2: return "rd, rs1, rs2";
    case Lay::FpR4: return "rd, rs1, rs2, rs3 [, rm]";
    case Lay::FpUnaryRm: return "rd, rs1 [, rm]";
    case Lay::FpUnary: return "rd, rs1";
    case Lay::Vec: return "rd, rs1, rs2";
    case Lay::VecUnary: return "rd, rs1";
  }
  return "?";
}

std::string_view layout_name(Lay lay) {
  switch (lay) {
    case Lay::U: return "U";
    case Lay::J: return "J";
    case Lay::Iimm: return "I";
    case Lay::Bimm: return "B";
    case Lay::Simm: return "S";
    case Lay::Shamt: return "I-shamt";
    case Lay::R: return "R";
    case Lay::FullWord: return "full-word";
    case Lay::Csr: return "CSR";
    case Lay::FpRrm: return "FP-R+rm";
    case Lay::FpR2: return "FP-R";
    case Lay::FpR4: return "FP-R4";
    case Lay::FpUnaryRm: return "FP-unary+rm";
    case Lay::FpUnary: return "FP-unary";
    case Lay::Vec: return "vec";
    case Lay::VecUnary: return "vec-unary";
  }
  return "?";
}

std::string_view ext_description(Ext e) {
  switch (e) {
    case Ext::I: return "RV32I base integer instruction set";
    case Ext::M: return "integer multiplication and division";
    case Ext::Zicsr: return "control and status register access";
    case Ext::F: return "IEEE binary32 scalar floating point";
    case Ext::Xf16: return "smallFloat scalar binary16 (IEEE half)";
    case Ext::Xf16alt: return "smallFloat scalar binary16alt (bfloat16-style)";
    case Ext::Xf8: return "smallFloat scalar binary8 minifloat";
    case Ext::Xfvec: return "packed-SIMD vectors of smallFloat elements";
    case Ext::Xfaux: return "auxiliary expanding ops (smallFloat in, binary32 out)";
    case Ext::Xposit: return "posit8/posit16 scalar and packed-SIMD arithmetic";
  }
  return "?";
}

std::string_view format_cell(OpFmt f) {
  switch (f) {
    case OpFmt::None: return "—";
    case OpFmt::S: return "binary32";
    case OpFmt::AH: return "binary16alt";
    case OpFmt::H: return "binary16";
    case OpFmt::B: return "binary8";
    case OpFmt::P8: return "posit8";
    case OpFmt::P16: return "posit16";
  }
  return "?";
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace

std::string render_isa_reference() {
  const sim::Timing timing;
  std::string out;

  out +=
      "# ISA reference — RV32IMF + smallFloat extensions\n"
      "\n"
      "<!-- GENERATED FILE: do not edit by hand. This document is rendered\n"
      "     from the opcode tables (src/isa/opcodes.hpp) by\n"
      "     `./build/tools/gen-isa-doc docs/isa-reference.md`;\n"
      "     tests/isa/test_isa_doc_sync.cpp asserts it is in sync. -->\n"
      "\n"
      "Every instruction the simulator implements, rendered from the same\n"
      "X-macro table that drives the encoder, decoder, disassembler,\n"
      "micro-op predecoder and energy model. Encodings are given as the\n"
      "fixed-bit pattern (operand fields zero) and the mask selecting the\n"
      "fixed bits; a word `w` matches an instruction iff\n"
      "`(w & mask) == match`.\n"
      "\n"
      "## Extensions\n"
      "\n";

  constexpr std::array<Ext, 10> kExts = {
      Ext::I,   Ext::M,     Ext::Zicsr, Ext::F,     Ext::Xf16,
      Ext::Xf16alt, Ext::Xf8, Ext::Xfvec, Ext::Xfaux, Ext::Xposit};

  std::array<std::vector<Op>, kExts.size()> by_ext;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    for (std::size_t e = 0; e < kExts.size(); ++e) {
      if (extension(op) == kExts[e]) {
        by_ext[e].push_back(op);
        break;
      }
    }
  }

  out += "| extension | instructions | description |\n|---|---|---|\n";
  for (std::size_t e = 0; e < kExts.size(); ++e) {
    out += "| " + std::string(ext_name(kExts[e])) + " | " +
           std::to_string(by_ext[e].size()) + " | " +
           std::string(ext_description(kExts[e])) + " |\n";
  }

  out +=
      "\n"
      "## Timing classes\n"
      "\n"
      "The RISCY-like model is in-order single-issue: one cycle per\n"
      "instruction plus stall sources. The `cycles` column below is the\n"
      "base occupancy; loads additionally stall for the configured memory\n"
      "latency, and taken branches / jumps pay a 1-cycle refetch penalty.\n"
      "Iterative units occupy the pipe for multiple cycles, fewer for\n"
      "narrower formats (smaller mantissa → fewer radix iterations):\n"
      "\n"
      "| unit | binary8 | binary16 / binary16alt | binary32 |\n"
      "|---|---|---|---|\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof buf, "| fdiv / fsqrt | %d | %d | %d |\n",
                  timing.fp_div_cycles(fp::FpFormat::F8),
                  timing.fp_div_cycles(fp::FpFormat::F16),
                  timing.fp_div_cycles(fp::FpFormat::F32));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "\nInteger division occupies %d cycles.\n\n",
                  timing.int_div_cycles);
    out += buf;
  }

  for (std::size_t e = 0; e < kExts.size(); ++e) {
    out += "## " + std::string(ext_name(kExts[e])) + " — " +
           std::string(ext_description(kExts[e])) + "\n\n";
    out +=
        "| mnemonic | operands | layout | encoding match | mask | class | "
        "format | lanes | cycles |\n"
        "|---|---|---|---|---|---|---|---|---|\n";
    for (const Op op : by_ext[e]) {
      const EncPattern enc = encoding_pattern(op);
      const int lanes =
          is_vector(op) ? vector_lanes(to_fp_format(op_format(op)), 32) : 0;
      out += "| `" + std::string(mnemonic(op)) + "` | " +
             std::string(layout_operands(layout(op))) + " | " +
             std::string(layout_name(layout(op))) + " | `" +
             hex32(enc.match) + "` | `" + hex32(enc.mask) + "` | " +
             std::string(cls_name(op_class(op))) + " | " +
             std::string(format_cell(op_format(op))) + " | " +
             (lanes > 0 ? std::to_string(lanes) : "—") + " | " +
             std::to_string(timing.base_cycles(op)) + " |\n";
    }
    out += "\n";
  }

  return out;
}

}  // namespace sfrv::isa
