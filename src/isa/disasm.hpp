// Textual disassembly of decoded instructions (debugging / examples).
#pragma once

#include <string>

#include "isa/instruction.hpp"

namespace sfrv::isa {

/// Render one instruction, e.g. "vfmac.h f10, f11, f12" or
/// "lw a5, 12(sp)". `pc` resolves branch/jump targets to absolute addresses.
[[nodiscard]] std::string disassemble(const Inst& inst, std::uint32_t pc = 0);

/// ABI name of an integer register (x2 -> "sp").
[[nodiscard]] std::string_view xreg_name(unsigned idx);
/// ABI name of an FP register (f10 -> "fa0").
[[nodiscard]] std::string_view freg_name(unsigned idx);

}  // namespace sfrv::isa
