// Decoded instruction representation.
#pragma once

#include <cstdint>

#include "isa/opcodes.hpp"
#include "softfloat/flags.hpp"

namespace sfrv::isa {

/// Rounding-mode field values: 0-4 are the IEEE modes, 7 = DYN (use fcsr.frm).
inline constexpr std::uint8_t kRmDyn = 0b111;

/// A decoded (or to-be-encoded) instruction. Field applicability depends on
/// the layout of `op`; unused fields must be zero so that encode(decode(w))
/// round-trips bit-exactly.
struct Inst {
  Op op = Op::EBREAK;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;
  std::uint8_t rm = 0;      ///< rounding-mode field for FpRrm/FpR4/FpUnaryRm
  std::int32_t imm = 0;     ///< sign-extended immediate (csr address for Csr)

  friend constexpr bool operator==(const Inst&, const Inst&) = default;
};

}  // namespace sfrv::isa
