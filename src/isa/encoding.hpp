// 32-bit instruction word encoder/decoder.
//
// The encoder and decoder share one table derived from the opcode list, so
// they are inverses by construction; an exhaustive round-trip test pins this.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/instruction.hpp"

namespace sfrv::isa {

/// Encode a decoded instruction into its 32-bit word.
/// Precondition: register indices < 32, immediate in range for the layout.
[[nodiscard]] std::uint32_t encode(const Inst& inst);

/// Decode a 32-bit word; nullopt for unallocated encodings.
[[nodiscard]] std::optional<Inst> decode(std::uint32_t word);

/// Fixed-bit pattern of an opcode (operand fields zero) and its mask.
struct EncPattern {
  std::uint32_t match = 0;
  std::uint32_t mask = 0;
};
[[nodiscard]] EncPattern encoding_pattern(Op op);

}  // namespace sfrv::isa
