#include "isa/opcodes.hpp"

#include <array>

namespace sfrv::isa {

namespace {

struct Meta {
  std::string_view mnem;
  Ext ext;
  Cls cls;
  OpFmt fmt;
  bool vec;
  Lay lay;
};

constexpr std::array<Meta, kNumOps> kMeta = {{
#define SFRV_META(NAME, MNEM, EXT, CLS, FMT, VEC, LAY, OPC, F3, F7, SUB) \
  Meta{MNEM, EXT, CLS, FMT, VEC, LAY},
    SFRV_FOREACH_OP(SFRV_META)
#undef SFRV_META
}};

const Meta& meta(Op op) { return kMeta[static_cast<std::size_t>(op)]; }

}  // namespace

std::string_view mnemonic(Op op) { return meta(op).mnem; }
Ext extension(Op op) { return meta(op).ext; }
Cls op_class(Op op) { return meta(op).cls; }
OpFmt op_format(Op op) { return meta(op).fmt; }
bool is_vector(Op op) { return meta(op).vec; }
Lay layout(Op op) { return meta(op).lay; }

bool touches_fp_regs(Op op) {
  switch (op_class(op)) {
    case Cls::IntAlu: case Cls::IntMul: case Cls::IntDiv: case Cls::Load:
    case Cls::Store: case Cls::Branch: case Cls::Jump: case Cls::Csr:
    case Cls::Sys:
      return false;
    default:
      return true;
  }
}

bool rd_is_int(Op op) {
  switch (op_class(op)) {
    case Cls::FpCmp:
    case Cls::FpMvToX:
    case Cls::FpClass:
      return true;
    case Cls::FpCvtToInt:
      return !is_vector(op);  // vector int-conversions stay in the FP lanes
    default:
      return !touches_fp_regs(op);
  }
}

bool rs1_is_int(Op op) {
  switch (op_class(op)) {
    case Cls::FpMvFromX:
      return true;
    case Cls::FpCvtFromInt:
      return !is_vector(op);
    case Cls::FpLoad:
    case Cls::FpStore:
      return true;  // address base register
    default:
      return !touches_fp_regs(op);
  }
}

std::string_view ext_name(Ext e) {
  switch (e) {
    case Ext::I: return "I";
    case Ext::M: return "M";
    case Ext::Zicsr: return "Zicsr";
    case Ext::F: return "F";
    case Ext::Xf16: return "Xf16";
    case Ext::Xf16alt: return "Xf16alt";
    case Ext::Xf8: return "Xf8";
    case Ext::Xfvec: return "Xfvec";
    case Ext::Xfaux: return "Xfaux";
    case Ext::Xposit: return "Xposit";
  }
  return "?";
}

std::string_view cls_name(Cls c) {
  switch (c) {
    case Cls::IntAlu: return "int-alu";
    case Cls::IntMul: return "int-mul";
    case Cls::IntDiv: return "int-div";
    case Cls::Load: return "load";
    case Cls::Store: return "store";
    case Cls::Branch: return "branch";
    case Cls::Jump: return "jump";
    case Cls::Csr: return "csr";
    case Cls::Sys: return "sys";
    case Cls::FpLoad: return "fp-load";
    case Cls::FpStore: return "fp-store";
    case Cls::FpAdd: return "fp-add";
    case Cls::FpMul: return "fp-mul";
    case Cls::FpDiv: return "fp-div";
    case Cls::FpSqrt: return "fp-sqrt";
    case Cls::FpFma: return "fp-fma";
    case Cls::FpCmp: return "fp-cmp";
    case Cls::FpMinMax: return "fp-minmax";
    case Cls::FpSgnj: return "fp-sgnj";
    case Cls::FpCvt: return "fp-cvt";
    case Cls::FpCvtToInt: return "fp-cvt-to-int";
    case Cls::FpCvtFromInt: return "fp-cvt-from-int";
    case Cls::FpMvToX: return "fp-mv-to-x";
    case Cls::FpMvFromX: return "fp-mv-from-x";
    case Cls::FpClass: return "fp-class";
    case Cls::FpCpk: return "fp-cpk";
    case Cls::FpDotp: return "fp-dotp";
    case Cls::FpMulEx: return "fp-mulex";
    case Cls::FpMacEx: return "fp-macex";
    case Cls::FpDotpEx: return "fp-dotpex";
  }
  return "?";
}

}  // namespace sfrv::isa
